module lbmm

go 1.22
