package workload

import (
	"math/rand"
	"strings"
	"testing"

	"lbmm/internal/matrix"
)

func TestGeneratorsRealizeTheirClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n, d := 40, 3
	cases := []struct {
		name string
		gen  func(int, int, *rand.Rand) *matrix.Support
		cls  matrix.Class
	}{
		{"US", US, matrix.US},
		{"RS", RS, matrix.RS},
		{"CS", CS, matrix.CS},
		{"BD", BD, matrix.BD},
		{"AS", AS, matrix.AS},
		{"GM", GM, matrix.GM},
	}
	for _, c := range cases {
		for trial := 0; trial < 5; trial++ {
			s := c.gen(n, d, rng)
			if !s.InClass(c.cls, d) {
				t.Errorf("%s: generated support not in %v(%d)", c.name, c.cls, d)
			}
			if s.NNZ == 0 {
				t.Errorf("%s: empty support", c.name)
			}
		}
	}
}

func TestBDGeneratorDegeneracy(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		n := 10 + rng.Intn(40)
		d := 1 + rng.Intn(4)
		s := BD(n, d, rng)
		if got := s.Degeneracy(); got > d {
			t.Fatalf("BD(%d,%d) generated degeneracy %d", n, d, got)
		}
	}
}

func TestASBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		n, d := 30+rng.Intn(40), 1+rng.Intn(5)
		s := AS(n, d, rng)
		if s.NNZ > d*n {
			t.Fatalf("AS budget exceeded: %d > %d", s.NNZ, d*n)
		}
		// The construction must escape BD(d) whenever the budget allows a
		// block larger than d — it is then *strictly* average-sparse.
		if (d+1)*(d+1) <= d*n/2 && s.Degeneracy() <= d {
			t.Errorf("AS(%d,%d) has degeneracy %d ≤ d", n, d, s.Degeneracy())
		}
	}
}

func TestForClassDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for _, c := range []matrix.Class{matrix.US, matrix.RS, matrix.CS, matrix.BD, matrix.AS, matrix.GM} {
		s := ForClass(c, 20, 2, rng)
		if !s.InClass(c, 2) {
			t.Errorf("ForClass(%v) wrong class", c)
		}
	}
}

func TestInstanceDeterministic(t *testing.T) {
	i1 := Instance(matrix.US, matrix.BD, matrix.AS, 24, 3, 99)
	i2 := Instance(matrix.US, matrix.BD, matrix.AS, 24, 3, 99)
	if i1.Ahat.NNZ != i2.Ahat.NNZ || i1.CountTriangles() != i2.CountTriangles() {
		t.Error("Instance not deterministic for fixed seed")
	}
	i3 := Instance(matrix.US, matrix.BD, matrix.AS, 24, 3, 100)
	if i1.Ahat.NNZ == i3.Ahat.NNZ && i1.CountTriangles() == i3.CountTriangles() &&
		len(i1.Ahat.Entries()) == len(i3.Ahat.Entries()) {
		same := true
		e1, e3 := i1.Ahat.Entries(), i3.Ahat.Entries()
		for k := range e1 {
			if e1[k] != e3[k] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds gave identical instances")
		}
	}
}

func TestBlocksExtremal(t *testing.T) {
	n, d := 32, 4
	inst := Blocks(n, d)
	if got := inst.CountTriangles(); got != (n/d)*d*d*d {
		t.Errorf("blocks triangles = %d, want %d", got, (n/d)*d*d*d)
	}
	if !inst.Ahat.IsUS(d) {
		t.Error("blocks not US(d)")
	}
	sh := BlocksShifted(n, d)
	if sh.CountTriangles() == 0 {
		t.Error("shifted blocks have no triangles")
	}
}

func TestHotPair(t *testing.T) {
	inst := HotPair(50)
	if inst.CountTriangles() != 50 {
		t.Errorf("hot pair triangles = %d", inst.CountTriangles())
	}
}

func TestMixedAndDescribe(t *testing.T) {
	inst := Mixed(24, 3, 5)
	if inst.CountTriangles() == 0 {
		t.Error("mixed instance empty")
	}
	s := Describe(inst)
	if !strings.Contains(s, "n=24") || !strings.Contains(s, "|T|=") {
		t.Errorf("Describe output %q", s)
	}
}
