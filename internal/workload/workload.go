// Package workload generates the instance families the experiments run on:
// seeded random supports for every sparsity class of the paper
// (US/RS/CS/BD/AS/GM), the extremal block-diagonal instances that realize
// the d²n triangle worst case, and the skewed instances that separate
// Lemma 3.1 from the naive-routing baseline.
package workload

import (
	"fmt"
	"math/rand"

	"lbmm/internal/graph"
	"lbmm/internal/matrix"
)

// US returns a uniformly sparse support: the union of d random
// permutations, so every row and column has at most d entries (duplicates
// collapse, so some rows may have fewer).
func US(n, d int, rng *rand.Rand) *matrix.Support {
	var es [][2]int
	for t := 0; t < d; t++ {
		p := rng.Perm(n)
		for i, j := range p {
			es = append(es, [2]int{i, j})
		}
	}
	return matrix.NewSupport(n, es)
}

// RS returns a row-sparse support: every row gets exactly d entries at
// uniformly random columns; columns are unconstrained (and typically
// unbalanced).
func RS(n, d int, rng *rand.Rand) *matrix.Support {
	var es [][2]int
	for i := 0; i < n; i++ {
		for t := 0; t < d; t++ {
			es = append(es, [2]int{i, rng.Intn(n)})
		}
	}
	return matrix.NewSupport(n, es)
}

// CS returns a column-sparse support (the transpose construction of RS).
func CS(n, d int, rng *rand.Rand) *matrix.Support {
	return RS(n, d, rng).Transpose()
}

// BD returns a support with degeneracy at most d by explicit construction:
// nodes (rows and columns) are inserted in a random order, and each new
// node connects to at most d already-inserted nodes of the other side.
// Eliminating in reverse insertion order then always deletes a node with at
// most d remaining entries.
func BD(n, d int, rng *rand.Rand) *matrix.Support {
	// Node ids: rows 0..n-1, cols n..2n-1.
	order := rng.Perm(2 * n)
	var insertedRows, insertedCols []int
	var es [][2]int
	for _, v := range order {
		if v < n {
			// New row: connect to ≤ d existing columns.
			for t := 0; t < d && len(insertedCols) > 0; t++ {
				j := insertedCols[rng.Intn(len(insertedCols))]
				es = append(es, [2]int{v, j})
			}
			insertedRows = append(insertedRows, v)
		} else {
			j := v - n
			for t := 0; t < d && len(insertedRows) > 0; t++ {
				i := insertedRows[rng.Intn(len(insertedRows))]
				es = append(es, [2]int{i, j})
			}
			insertedCols = append(insertedCols, j)
		}
	}
	return matrix.NewSupport(n, es)
}

// AS returns an average-sparse support with at most d·n entries that is
// genuinely average-sparse where possible: half the budget forms a dense
// b×b block with b > d (degeneracy b, so the support escapes BD(d)), the
// other half is a thin uniform tail. This is the regime where only average
// sparsity holds.
func AS(n, d int, rng *rand.Rand) *matrix.Support {
	budget := d * n
	var es [][2]int
	// Dense block of size b with b² ≤ budget/2.
	b := 1
	for (b+1)*(b+1) <= budget/2 && b+1 <= n {
		b++
	}
	r0, c0 := 0, 0
	if n > b {
		r0, c0 = rng.Intn(n-b), rng.Intn(n-b)
	}
	for i := 0; i < b; i++ {
		for j := 0; j < b; j++ {
			es = append(es, [2]int{r0 + i, c0 + j})
		}
	}
	// Thin tail: the remaining budget spread uniformly.
	for len(es) < budget {
		es = append(es, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return matrix.NewSupport(n, es)
}

// GM returns a dense support (all n² positions).
func GM(n, _ int, _ *rand.Rand) *matrix.Support {
	var es [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			es = append(es, [2]int{i, j})
		}
	}
	return matrix.NewSupport(n, es)
}

// ForClass generates a support of the given class at parameter d.
func ForClass(c matrix.Class, n, d int, rng *rand.Rand) *matrix.Support {
	switch c {
	case matrix.US:
		return US(n, d, rng)
	case matrix.RS:
		return RS(n, d, rng)
	case matrix.CS:
		return CS(n, d, rng)
	case matrix.BD:
		return BD(n, d, rng)
	case matrix.AS:
		return AS(n, d, rng)
	default:
		return GM(n, d, rng)
	}
}

// Instance generates a supported instance whose three matrices come from
// the given classes at parameter d, seeded deterministically.
func Instance(ca, cb, cx matrix.Class, n, d int, seed int64) *graph.Instance {
	rng := rand.New(rand.NewSource(seed))
	return graph.NewInstance(d,
		ForClass(ca, n, d, rng), ForClass(cb, n, d, rng), ForClass(cx, n, d, rng))
}

// Blocks returns the extremal uniformly sparse instance: ⌊n/d⌋ disjoint
// complete d×d blocks on the diagonal of all three supports, realizing the
// d²n triangle worst case of Corollary 4.6 with perfectly clusterable
// structure.
func Blocks(n, d int) *graph.Instance {
	var es [][2]int
	for b := 0; b+d <= n; b += d {
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				es = append(es, [2]int{b + i, b + j})
			}
		}
	}
	s := matrix.NewSupport(n, es)
	return graph.NewInstance(d, s, s, s)
}

// BlocksShifted is Blocks with the B support's blocks shifted by one block
// position, breaking the perfect alignment: triangles only form where
// shifted blocks overlap, exercising partial clustering.
func BlocksShifted(n, d int) *graph.Instance {
	mk := func(off int) *matrix.Support {
		var es [][2]int
		for b := 0; b+d <= n; b += d {
			for i := 0; i < d; i++ {
				for j := 0; j < d; j++ {
					es = append(es, [2]int{b + i, (b + j + off) % n})
				}
			}
		}
		return matrix.NewSupport(n, es)
	}
	return graph.NewInstance(d, mk(0), mk(0), mk(0))
}

// HotPair returns the skewed instance separating Lemma 3.1 from the naive
// baseline: one B element participates in n triangles whose outputs are
// spread over all computers (A's column 0 and X̂'s column 0 are dense; B
// has the single entry (0,0)).
func HotPair(n int) *graph.Instance {
	var ae, xe [][2]int
	for i := 0; i < n; i++ {
		ae = append(ae, [2]int{i, 0})
		xe = append(xe, [2]int{i, 0})
	}
	return graph.NewInstance(1,
		matrix.NewSupport(n, ae),
		matrix.NewSupport(n, [][2]int{{0, 0}}),
		matrix.NewSupport(n, xe))
}

// Mixed returns an instance that is half extremal blocks and half uniform
// random US noise, so both phases of Theorem 4.2 have work to do.
func Mixed(n, d int, seed int64) *graph.Instance {
	rng := rand.New(rand.NewSource(seed))
	base := Blocks(n, d)
	noise := US(n, d, rng)
	return graph.NewInstance(2*d,
		matrix.Union(base.Ahat, noise),
		matrix.Union(base.Bhat, US(n, d, rng)),
		matrix.Union(base.Xhat, US(n, d, rng)))
}

// PowerLaw returns a skewed instance whose row degrees follow a zipf-like
// power law: the hottest row carries ≈ d·n/H(n) entries while the tail
// thins out as 1/rank, with the diagonal always present so every row
// participates in at least the (i,i,i) triangle. Each matrix draws an
// independent hot-row permutation, so hot A-rows meet hot B-rows only
// through the uniform column draws — the contention profile the
// observability layer is built to expose. Total nnz per matrix ≈ d·n.
func PowerLaw(n, d int, seed int64) *graph.Instance {
	rng := rand.New(rand.NewSource(seed))
	gen := func() *matrix.Support {
		perm := rng.Perm(n)
		// Normalize so Σ_{r=1..n} c/r ≈ the d·n budget.
		h := 0.0
		for r := 1; r <= n; r++ {
			h += 1.0 / float64(r)
		}
		c := float64(d*n) / h
		var es [][2]int
		for rank, i := range perm {
			deg := int(c / float64(rank+1))
			if deg < 1 {
				deg = 1
			}
			if deg > n {
				deg = n
			}
			es = append(es, [2]int{i, i})
			for t := 0; t < deg; t++ {
				es = append(es, [2]int{i, rng.Intn(n)})
			}
		}
		return matrix.NewSupport(n, es)
	}
	return graph.NewInstance(d, gen(), gen(), gen())
}

// Describe summarizes an instance for logs and tables.
func Describe(inst *graph.Instance) string {
	a, b, x := inst.Classify()
	return fmt.Sprintf("n=%d d=%d [%v:%v:%v] nnz=(%d,%d,%d) |T|=%d",
		inst.N, inst.D, a, b, x, inst.Ahat.NNZ, inst.Bhat.NNZ, inst.Xhat.NNZ, inst.CountTriangles())
}
