package vnet

import (
	"math/rand"
	"strings"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
)

func TestRolesAssignment(t *testing.T) {
	nt := Roles(5)
	if nt.V() != 15 || nt.MaxLoad != 3 {
		t.Fatalf("V=%d MaxLoad=%d", nt.V(), nt.MaxLoad)
	}
	if nt.Host[2] != 2 || nt.Host[5+2] != 2 || nt.Host[10+2] != 2 {
		t.Error("role hosts wrong")
	}
}

func TestCompileDeliversWithBoundedOverhead(t *testing.T) {
	// A virtual permutation round on 3n role nodes compiles into at most
	// ~2*MaxLoad real rounds and delivers correctly.
	rng := rand.New(rand.NewSource(2))
	n := 30
	nt := Roles(n)
	m := lbm.New(n, ring.Counting{})
	perm := rng.Perm(nt.V())
	var vr Round
	for v := 0; v < nt.V(); v++ {
		src := lbm.TKey(int32(v), 0, 0)
		m.Put(nt.Host[v], src, ring.Value(v+1))
		vr = append(vr, Send{
			From: int32(v), To: int32(perm[v]),
			Src: src, Dst: lbm.TKey(int32(v), 1, 0), Op: lbm.OpSet,
		})
	}
	p := &Plan{}
	p.Append(vr)
	real, err := nt.Compile(p, routing.Euler)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(real); err != nil {
		t.Fatal(err)
	}
	for v := 0; v < nt.V(); v++ {
		got, ok := m.Get(nt.Host[perm[v]], lbm.TKey(int32(v), 1, 0))
		if !ok || got != ring.Value(v+1) {
			t.Fatalf("vnode %d message lost (got %v, %v)", v, got, ok)
		}
	}
	// One virtual round with vnode degree 1 → host degree ≤ 3 → Euler uses
	// < 2*3... allow up to 2^ceil(log2 3) = 4 rounds.
	if m.Rounds() > 4 {
		t.Errorf("compiled overhead too high: %d rounds", m.Rounds())
	}
}

func TestCompileRejectsVirtualViolations(t *testing.T) {
	nt := Roles(4)
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)},
		{From: 0, To: 2, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 2)},
	})
	if _, err := nt.Compile(p, routing.Euler); err == nil || !strings.Contains(err.Error(), "sends twice") {
		t.Errorf("err = %v", err)
	}
	p2 := &Plan{}
	p2.Append(Round{
		{From: 0, To: 2, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)},
		{From: 1, To: 2, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 2)},
	})
	if _, err := nt.Compile(p2, routing.Euler); err == nil || !strings.Contains(err.Error(), "receives twice") {
		t.Errorf("err = %v", err)
	}
	p3 := &Plan{}
	p3.Append(Round{{From: -1, To: 0, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 0)}})
	if _, err := nt.Compile(p3, routing.Euler); err == nil {
		t.Error("out of range accepted")
	}
}

func TestCompileStagesConflictedSources(t *testing.T) {
	// vnodes 0 and 4 (J-role of computer 0 for n=4) share host 0. In one
	// virtual round, vnode 0 sends key K while vnode 4 receives a NEW value
	// into the same key K. The receiver of vnode 0's message must see the
	// round-start value of K, not the new one, whatever order the compiled
	// machine rounds run in.
	n := 4
	nt := Roles(n)
	k := lbm.TKey(9, 9, 9)
	m := lbm.New(n, ring.Counting{})
	m.Put(0, k, 111)                 // round-start value at host 0
	m.Put(2, lbm.TKey(2, 2, 2), 222) // the value that overwrites k
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 1, Src: k, Dst: lbm.TKey(1, 1, 1), Op: lbm.OpSet},        // host 0 reads k
		{From: 2, To: int32(n), Src: lbm.TKey(2, 2, 2), Dst: k, Op: lbm.OpSet}, // host 0 writes k
	})
	real, err := nt.Compile(p, routing.Euler)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Run(real); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(1, lbm.TKey(1, 1, 1)); v != 111 {
		t.Errorf("reader saw %v, want round-start value 111", v)
	}
	if v, _ := m.Get(0, k); v != 222 {
		t.Errorf("k = %v after round, want 222", v)
	}
	// Staging leftovers are swept by CleanupStaging.
	CleanupStaging(m)
	found := false
	m.LocalAll(func(_ lbm.NodeID, v *lbm.LocalView) {
		v.Each(func(key lbm.Key, _ ring.Value) {
			if key.Kind == lbm.KStage {
				found = true
			}
		})
	})
	if found {
		t.Error("staging keys survive CleanupStaging")
	}
}

func TestMergeParallelVirtual(t *testing.T) {
	p1 := &Plan{}
	p1.Append(Round{{From: 0, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1)}})
	p1.Append(Round{{From: 1, To: 0, Src: lbm.TKey(0, 0, 1), Dst: lbm.TKey(0, 0, 2)}})
	p2 := &Plan{}
	p2.Append(Round{{From: 2, To: 3, Src: lbm.TKey(1, 0, 0), Dst: lbm.TKey(1, 0, 1)}})
	merged := MergeParallel(p1, p2)
	if len(merged.Rounds) != 2 || len(merged.Rounds[0]) != 2 {
		t.Errorf("merge shape: %d rounds", len(merged.Rounds))
	}
}

func TestNewExplicitHosts(t *testing.T) {
	nt := New([]lbm.NodeID{0, 0, 0, 1})
	if nt.MaxLoad != 3 || nt.V() != 4 {
		t.Errorf("MaxLoad=%d V=%d", nt.MaxLoad, nt.V())
	}
}

func TestCompileErrorsPropagate(t *testing.T) {
	nt := Roles(4)
	// Missing source key at execution time.
	p := &Plan{}
	p.Append(Round{{From: 0, To: 1, Src: lbm.TKey(9, 9, 9), Dst: lbm.TKey(0, 0, 1), Op: lbm.OpSet}})
	real, err := nt.Compile(p, routing.Euler)
	if err != nil {
		t.Fatal(err)
	}
	m := lbm.New(4, ring.Counting{})
	if err := m.Run(real); err == nil {
		t.Error("missing source should fail at run time")
	}
	// OpSub over a non-field fails at run time too.
	m2 := lbm.New(4, ring.Counting{})
	m2.Put(0, lbm.TKey(1, 1, 1), 3)
	p2 := &Plan{}
	p2.Append(Round{{From: 0, To: 1, Src: lbm.TKey(1, 1, 1), Dst: lbm.TKey(0, 0, 1), Op: lbm.OpSub}})
	real2, err := nt.Compile(p2, routing.Euler)
	if err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(real2); err == nil {
		t.Error("OpSub over semiring should fail")
	}
}

func TestScheduleVirtualRoundTrip(t *testing.T) {
	msgs := []Send{
		{From: 0, To: 1, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1), Op: lbm.OpSet},
		{From: 0, To: 2, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 2), Op: lbm.OpSet},
		{From: 3, To: 3, Src: lbm.TKey(3, 0, 0), Dst: lbm.TKey(3, 0, 1), Op: lbm.OpSet},
	}
	p := ScheduleVirtual(msgs, routing.Konig)
	// vnode 0 sends twice → two rounds; local copy shares the first.
	if len(p.Rounds) != 2 {
		t.Fatalf("scheduled into %d rounds", len(p.Rounds))
	}
	total := 0
	for _, r := range p.Rounds {
		total += len(r)
	}
	if total != 3 {
		t.Fatalf("lost messages: %d", total)
	}
}
