// Package vnet provides the virtual-computer abstraction the paper's
// algorithms rely on: a set of V virtual nodes is assigned to the n real
// computers with bounded multiplicity c, and a communication plan written
// against virtual nodes is compiled into a real low-bandwidth plan. Because
// each virtual node sends and receives at most one message per virtual
// round, the induced real h-relation has degree at most c, so each virtual
// round costs O(c) real rounds (§3.2: "we can simulate their work in the
// real computer network with constant overhead").
//
// Two users: the tripartite role-nodes (every computer simulates its I, J
// and K role, c = 3), and the balanced virtual instance of Lemma 3.1
// (c ≤ 4).
package vnet

import (
	"fmt"

	"lbmm/internal/lbm"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
)

// Net assigns virtual nodes to hosts.
type Net struct {
	// Host[v] is the real computer simulating virtual node v.
	Host []lbm.NodeID
	// MaxLoad is the maximum number of virtual nodes on one host.
	MaxLoad int
}

// New builds a net from an explicit host assignment.
func New(host []lbm.NodeID) *Net {
	load := map[lbm.NodeID]int{}
	mx := 0
	for _, h := range host {
		load[h]++
		if load[h] > mx {
			mx = load[h]
		}
	}
	return &Net{Host: append([]lbm.NodeID(nil), host...), MaxLoad: mx}
}

// Roles returns the canonical 3n-node net for the tripartite view: virtual
// node v < n is the I-role of computer v, v in [n, 2n) the J-role of
// computer v-n, and v in [2n, 3n) the K-role of computer v-2n.
func Roles(n int) *Net {
	host := make([]lbm.NodeID, 3*n)
	for v := range host {
		host[v] = lbm.NodeID(v % n)
	}
	return &Net{Host: host, MaxLoad: 3}
}

// V returns the number of virtual nodes.
func (nt *Net) V() int { return len(nt.Host) }

// Send is one planned virtual message.
type Send struct {
	From, To int32
	Src, Dst lbm.Key
	Op       lbm.Op
}

// Round is the set of virtual messages of one virtual round; each virtual
// node may send at most one and receive at most one.
type Round []Send

// Plan is a sequence of virtual rounds.
type Plan struct {
	Rounds []Round
}

// Append adds a non-empty round.
func (p *Plan) Append(r Round) {
	if len(r) > 0 {
		p.Rounds = append(p.Rounds, r)
	}
}

// Extend appends all rounds of q.
func (p *Plan) Extend(q *Plan) { p.Rounds = append(p.Rounds, q.Rounds...) }

// Compile lowers a virtual plan to a real plan. Every virtual round is
// checked (each virtual node sends ≤ 1 and receives ≤ 1), mapped to host
// messages, and scheduled as an h-relation of degree ≤ MaxLoad via edge
// colouring.
//
// A virtual round executes against its round-start state, but its compiled
// form spans several machine rounds, so a message whose source slot is also
// written by the same virtual round would read a torn value. Compile keeps
// the exact semantics by snapshotting every such source into a reserved
// staging key (a free local copy executed before the round's deliveries)
// and sending from the snapshot. Staging keys are overwritten round to
// round; call CleanupStaging after running the plan to drop the leftovers.
func (nt *Net) Compile(p *Plan, strategy routing.Strategy) (*lbm.Plan, error) {
	out := &lbm.Plan{}
	sentAt := make([]int, nt.V())
	recvAt := make([]int, nt.V())
	for i := range sentAt {
		sentAt[i] = -1
		recvAt[i] = -1
	}
	for t, vr := range p.Rounds {
		msgs := make([]routing.Msg, 0, len(vr))
		written := make(map[hostKey]struct{}, len(vr))
		for _, s := range vr {
			if s.From < 0 || int(s.From) >= nt.V() || s.To < 0 || int(s.To) >= nt.V() {
				return nil, fmt.Errorf("vnet: round %d: vnode out of range in %v->%v", t, s.From, s.To)
			}
			if s.From != s.To {
				// Virtual self-sends are free local copies and exempt.
				if sentAt[s.From] == t {
					return nil, fmt.Errorf("vnet: round %d: vnode %d sends twice", t, s.From)
				}
				if recvAt[s.To] == t {
					return nil, fmt.Errorf("vnet: round %d: vnode %d receives twice", t, s.To)
				}
				sentAt[s.From] = t
				recvAt[s.To] = t
			}
			written[hostKey{nt.Host[s.To], s.Dst}] = struct{}{}
			msgs = append(msgs, routing.Msg{
				From: nt.Host[s.From], To: nt.Host[s.To],
				Src: s.Src, Dst: s.Dst, Op: s.Op,
			})
		}
		// Snapshot conflicted sources. Distinct staging slots per (host,
		// key) pair of this round; messages sharing a source share the
		// snapshot.
		var staging lbm.Round
		slot := map[hostKey]lbm.Key{}
		for i := range msgs {
			src := hostKey{msgs[i].From, msgs[i].Src}
			if _, clash := written[src]; !clash {
				continue
			}
			sk, ok := slot[src]
			if !ok {
				sk = lbm.Key{Kind: lbm.KStage, I: int32(len(slot)), J: 0, Seq: 0}
				slot[src] = sk
				staging = append(staging, lbm.Send{
					From: msgs[i].From, To: msgs[i].From,
					Src: msgs[i].Src, Dst: sk, Op: lbm.OpSet,
				})
			}
			msgs[i].Src = sk
		}
		if len(staging) > 0 {
			out.Append(staging)
		}
		out.Extend(routing.Schedule(msgs, strategy))
	}
	// One coarse span for the whole compiled plan: per-virtual-round hrel
	// spans would drown a profile in noise, and the interesting quantities
	// are the simulation overhead (real rounds per virtual round, ≤ 2·c)
	// and the multiplicity c itself.
	if len(out.Rounds) > 0 || len(p.Rounds) > 0 {
		out.Spans = nil
		out.Annotate("vnet/compiled", map[string]float64{
			"virtual_rounds": float64(len(p.Rounds)),
			"max_load":       float64(nt.MaxLoad),
		})
	}
	return out, nil
}

// CleanupStaging deletes all staging snapshots left behind by compiled
// plans (a free local sweep).
func CleanupStaging(m *lbm.Machine) {
	m.LocalAll(func(_ lbm.NodeID, v *lbm.LocalView) {
		var keys []lbm.Key
		v.Each(func(k lbm.Key, _ ring.Value) {
			if k.Kind == lbm.KStage {
				keys = append(keys, k)
			}
		})
		for _, k := range keys {
			v.Del(k)
		}
	})
}

type hostKey struct {
	host lbm.NodeID
	key  lbm.Key
}

// MergeParallel overlays virtual plans that use disjoint virtual nodes.
func MergeParallel(plans ...*Plan) *Plan {
	out := &Plan{}
	maxLen := 0
	for _, p := range plans {
		if len(p.Rounds) > maxLen {
			maxLen = len(p.Rounds)
		}
	}
	for t := 0; t < maxLen; t++ {
		var r Round
		for _, p := range plans {
			if t < len(p.Rounds) {
				r = append(r, p.Rounds[t]...)
			}
		}
		out.Append(r)
	}
	return out
}
