package vnet

import (
	"math/rand"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
)

// refExec executes a virtual plan directly on per-vnode stores with exact
// virtual-round semantics (gather all payloads against round-start state,
// then deliver). It is the specification Compile must match.
func refExec(nt *Net, p *Plan, stores []map[lbm.Key]float64, r ring.Semiring) {
	for _, round := range p.Rounds {
		type delivery struct {
			to  int32
			dst lbm.Key
			op  lbm.Op
			val float64
		}
		var ds []delivery
		for _, s := range round {
			v, ok := stores[s.From][s.Src]
			if !ok {
				continue
			}
			ds = append(ds, delivery{s.To, s.Dst, s.Op, v})
		}
		for _, d := range ds {
			switch d.op {
			case lbm.OpAcc:
				cur, ok := stores[d.to][d.dst]
				if !ok {
					cur = r.Zero()
				}
				stores[d.to][d.dst] = r.Add(cur, d.val)
			default:
				stores[d.to][d.dst] = d.val
			}
		}
	}
}

// TestCompileMatchesReference is the vnet property test: random virtual
// plans on random nets deliver exactly what the direct virtual executor
// computes, despite host multiplexing, scheduling and staging.
//
// Caveat encoded here: co-hosted virtual nodes SHARE keys on the host, so
// the generator gives every virtual node its own key namespace (Seq =
// vnode), mirroring how the algorithm packages use vnet.
func TestCompileMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	r := ring.Counting{}
	for trial := 0; trial < 40; trial++ {
		nHosts := 3 + rng.Intn(8)
		nV := nHosts * (1 + rng.Intn(3))
		host := make([]lbm.NodeID, nV)
		for v := range host {
			host[v] = lbm.NodeID(rng.Intn(nHosts))
		}
		nt := New(host)

		// Per-vnode key space: keys (vnode, slot).
		key := func(v int32, slot int32) lbm.Key { return lbm.TKey(v, slot, v) }

		m := lbm.New(nHosts, r)
		stores := make([]map[lbm.Key]float64, nV)
		const slots = 3
		for v := 0; v < nV; v++ {
			stores[v] = map[lbm.Key]float64{}
			for s := int32(0); s < slots; s++ {
				val := float64(rng.Intn(50))
				stores[v][key(int32(v), s)] = val
				m.Put(host[v], key(int32(v), s), val)
			}
		}

		// Random multi-round virtual plan respecting vnode constraints.
		p := &Plan{}
		for t2 := 0; t2 < 1+rng.Intn(6); t2++ {
			var round Round
			sent := map[int32]bool{}
			recv := map[int32]bool{}
			for attempts := 0; attempts < 2*nV; attempts++ {
				from := int32(rng.Intn(nV))
				to := int32(rng.Intn(nV))
				if from == to || sent[from] || recv[to] {
					continue
				}
				sent[from] = true
				recv[to] = true
				op := lbm.OpSet
				if rng.Intn(2) == 0 {
					op = lbm.OpAcc
				}
				round = append(round, Send{
					From: from, To: to,
					Src: key(from, int32(rng.Intn(slots))),
					Dst: key(to, int32(rng.Intn(slots))),
					Op:  op,
				})
			}
			p.Append(round)
		}

		refExec(nt, p, stores, r)
		real, err := nt.Compile(p, routing.Auto)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.Run(real); err != nil {
			t.Fatal(err)
		}
		CleanupStaging(m)
		for v := 0; v < nV; v++ {
			for k, want := range stores[v] {
				got, ok := m.Get(host[v], k)
				if !ok || got != want {
					t.Fatalf("trial %d vnode %d key %v: got %v,%v want %v",
						trial, v, k, got, ok, want)
				}
			}
		}
	}
}
