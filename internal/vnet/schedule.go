package vnet

import (
	"lbmm/internal/lbm"
	"lbmm/internal/routing"
)

// ScheduleVirtual arranges an arbitrary multiset of virtual messages into
// virtual rounds respecting the per-virtual-node one-send/one-receive
// constraint, by bipartite edge colouring over virtual node ids. The result
// still has to be compiled (which schedules the residual host contention of
// co-hosted virtual nodes).
func ScheduleVirtual(msgs []Send, strategy routing.Strategy) *Plan {
	rmsgs := make([]routing.Msg, len(msgs))
	for i, m := range msgs {
		rmsgs[i] = routing.Msg{
			From: lbm.NodeID(m.From), To: lbm.NodeID(m.To),
			Src: m.Src, Dst: m.Dst, Op: m.Op,
		}
	}
	lowered := routing.Schedule(rmsgs, strategy)
	out := &Plan{}
	for _, r := range lowered.Rounds {
		vr := make(Round, len(r))
		for i, s := range r {
			vr[i] = Send{From: int32(s.From), To: int32(s.To), Src: s.Src, Dst: s.Dst, Op: s.Op}
		}
		out.Append(vr)
	}
	return out
}
