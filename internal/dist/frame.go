// Package dist executes compiled plans over real sockets: a mesh of worker
// processes, each owning the stores of the nodes hashed to its rank, walks
// one shared plan in lockstep and exchanges every round's real messages as
// gob-framed TCP batches (docs/DIST.md). The package provides the Mesh
// transport (the lbm.Transport backend), the worker process loop, and the
// coordinator that partitions a job across workers and merges the partial
// results.
package dist

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"fmt"
	"io"

	"lbmm/internal/lbm"
)

// maxFrameBytes bounds a single frame. A round frame carries at most one
// payload per plan node; anything larger than this is a corrupt or hostile
// length prefix, not a real message batch.
const maxFrameBytes = 64 << 20

// Every connection in the protocol speaks length-prefixed gob frames: a
// 4-byte big-endian payload length followed by one gob-encoded value,
// encoded with a fresh encoder per frame so a frame is self-contained and a
// reader never depends on stream history (see docs/DIST.md for the wire
// layout).

// writeFrame writes one frame to w. It does not flush: per-peer bufio
// writers batch a round's frame with its length prefix into one syscall.
func writeFrame(w io.Writer, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("dist: encode frame: %w", err)
	}
	if buf.Len() > maxFrameBytes {
		return fmt.Errorf("dist: frame of %d bytes exceeds the %d-byte limit", buf.Len(), maxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(buf.Len()))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(buf.Bytes())
	return err
}

// readFrame reads one frame from r into v.
func readFrame(r io.Reader, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameBytes {
		return fmt.Errorf("dist: frame length %d exceeds the %d-byte limit", n, maxFrameBytes)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return err
	}
	if err := gob.NewDecoder(bytes.NewReader(body)).Decode(v); err != nil {
		return fmt.Errorf("dist: decode frame: %w", err)
	}
	return nil
}

// helloFrame is the first frame on every inbound worker connection; Kind
// routes the connection to the job handler ("job", from a coordinator) or
// parks it for a running job's mesh ("peer", from a fellow worker). Token
// is the fleet's shared secret when the worker demands one
// (WorkerOptions.AuthToken): a mismatch rejects the connection before any
// job or peer state is touched.
type helloFrame struct {
	Kind  string
	Job   string
	Rank  int
	Token string
}

// wireVal is one sparse-matrix entry on the wire (values are ring.Value =
// float64 for every built-in ring).
type wireVal struct {
	I, J int32
	V    float64
}

// wireMsg is one real message of a round: the destination node and one
// payload value per lane.
type wireMsg struct {
	Dst  int32
	Vals []float64
}

// roundFrame is one participant's message batch for one network round —
// every real message it owns whose destination lives on the receiving peer.
// An empty Msgs slice is the barrier ack: peers with nothing to say this
// round still send the frame so everyone advances together.
type roundFrame struct {
	Round int32
	Msgs  []wireMsg
}

// jobFrame assigns one worker its rank in a distributed multiplication. The
// plan ships as a core.Prepared envelope addressed by its content
// fingerprint — a worker holding Fingerprint in its plan cache skips the
// envelope decode (and a coordinator that knows its workers are warm may
// omit the envelope entirely). Values ship as Lanes, a lanePayload encoded
// once by the coordinator: rank frames differ only in Rank, so the lane
// values — by far the largest part of the frame — are serialized a single
// time and the same byte slice is copied into every rank's frame instead of
// being gob-walked per rank. Peers holds every worker's dialable address,
// indexed by rank; Table, when non-empty, is the explicit node→rank
// partition every participant must share (empty = the modulo map).
type jobFrame struct {
	Job         string
	Rank        int
	Workers     int
	Peers       []string
	Table       []uint16
	Ring        string
	N           int
	Fingerprint string
	Prepared    []byte
	Lanes       []byte
}

// lanePayload is the per-lane value sets of a job: A[l] and B[l] are lane l
// of a batched multiplication (one lane is the scalar run). It travels
// inside jobFrame.Lanes as its own gob payload so the coordinator encodes
// it exactly once per run, not once per rank.
type lanePayload struct {
	A, B [][]wireVal
}

// encodeLanes serializes the lane values once for all ranks.
func encodeLanes(a, b [][]wireVal) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&lanePayload{A: a, B: b}); err != nil {
		return nil, fmt.Errorf("dist: encode lanes: %w", err)
	}
	return buf.Bytes(), nil
}

// decodeLanes unpacks a jobFrame's lane payload.
func decodeLanes(p []byte) (a, b [][]wireVal, err error) {
	var lp lanePayload
	if err := gob.NewDecoder(bytes.NewReader(p)).Decode(&lp); err != nil {
		return nil, nil, fmt.Errorf("dist: decode lanes: %w", err)
	}
	return lp.A, lp.B, nil
}

// resultFrame is a worker's reply to its jobFrame: the output entries its
// rank owns (lane for lane), its partition of the run statistics, and its
// transport + plan-cache counters. A typed fault travels as Fault
// (provenance intact for the chaos differential); any other failure as Err.
type resultFrame struct {
	Job      string
	Rank     int
	X        [][]wireVal
	Stats    lbm.Stats
	Counters map[string]int64
	Fault    *lbm.ErrFault
	Err      string
}
