package dist

import (
	"bytes"
	"net"
	"strings"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// mustLanes encodes a lane payload or fails the test.
func mustLanes(t *testing.T, a, b [][]wireVal) []byte {
	t.Helper()
	p, err := encodeLanes(a, b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestLanePayloadRoundTrip pins the lane envelope: what the coordinator
// encodes once is exactly what every rank decodes.
func TestLanePayloadRoundTrip(t *testing.T) {
	a := [][]wireVal{{{I: 0, J: 1, V: 2}}, {{I: 3, J: 4, V: 5}, {I: 6, J: 7, V: 8}}}
	b := [][]wireVal{{{I: 1, J: 0, V: 9}}, nil}
	p := mustLanes(t, a, b)
	gotA, gotB, err := decodeLanes(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(gotA) != 2 || len(gotB) != 2 || len(gotA[1]) != 2 || gotA[0][0] != a[0][0] || gotB[0][0] != b[0][0] {
		t.Fatalf("lane payload did not round-trip: %v / %v", gotA, gotB)
	}
}

// TestJobFrameLanesEncodedOnce is the wire-bytes regression for the PR 9
// coordinator gap: the lane values are serialized a single time and every
// rank's job frame carries that same payload, so per-rank frames are
// byte-identical except for the rank number — their sizes agree to within a
// few bytes, and each is the shared payload plus a small fixed envelope,
// never a second lane encoding.
func TestJobFrameLanesEncodedOnce(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Blocks(24, 4)
	const k = 8
	aVals := make([][]wireVal, k)
	bVals := make([][]wireVal, k)
	for l := 0; l < k; l++ {
		aVals[l] = entriesOf(matrix.Random(inst.Ahat, r, int64(2*l+1)))
		bVals[l] = entriesOf(matrix.Random(inst.Bhat, r, int64(2*l+2)))
	}
	lanes := mustLanes(t, aVals, bVals)

	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{Ring: r})
	if err != nil {
		t.Fatal(err)
	}
	var plan bytes.Buffer
	if err := prep.Encode(&plan); err != nil {
		t.Fatal(err)
	}

	const workers = 4
	sizes := make([]int, workers)
	for rk := 0; rk < workers; rk++ {
		jf := jobFrame{
			Job: "wire-bytes", Rank: rk, Workers: workers,
			Peers: []string{"a:1", "b:2", "c:3", "d:4"},
			Ring:  "counting", N: inst.N,
			Prepared: plan.Bytes(),
			Lanes:    lanes,
		}
		var buf bytes.Buffer
		if err := writeFrame(&buf, &jf); err != nil {
			t.Fatal(err)
		}
		sizes[rk] = buf.Len()
	}
	for rk := 1; rk < workers; rk++ {
		if diff := sizes[rk] - sizes[0]; diff < -4 || diff > 4 {
			t.Errorf("rank %d frame is %d bytes vs rank 0's %d: frames must differ only in the rank field", rk, sizes[rk], sizes[0])
		}
	}
	// The frame is envelope + plan + the one lane payload. If lanes were
	// still encoded per rank as structured fields, the gob representation
	// would deviate from the flat payload's size; pin the byte budget so a
	// second encoding (or an accidental double-ship) cannot hide.
	overhead := sizes[0] - len(lanes) - plan.Len()
	if overhead < 0 || overhead > 512 {
		t.Errorf("frame envelope overhead = %d bytes (frame %d, lanes %d, plan %d), want a small constant",
			overhead, sizes[0], len(lanes), plan.Len())
	}
}

// TestWorkerAuthToken pins the shared-secret check on the worker port: a
// coordinator without the worker's token is refused with an unauthorized
// result (not a hang), a matching token runs normally, and an unauthorized
// peer hello is dropped without parking state.
func TestWorkerAuthToken(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	w := newWorker(WorkerOptions{AuthToken: "sesame"})
	go w.serve(l)

	t.Run("job mismatch", func(t *testing.T) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, &helloFrame{Kind: "job", Job: "j", Token: "wrong"}); err != nil {
			t.Fatal(err)
		}
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		var rf resultFrame
		if err := readFrame(conn, &rf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(rf.Err, "unauthorized") {
			t.Fatalf("result err %q, want unauthorized", rf.Err)
		}
	})

	t.Run("peer mismatch leaves nothing parked", func(t *testing.T) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, &helloFrame{Kind: "peer", Job: "j", Rank: 1, Token: "wrong"}); err != nil {
			t.Fatal(err)
		}
		// The worker closes the connection instead of parking it.
		conn.SetReadDeadline(time.Now().Add(5 * time.Second))
		if err := readFrame(conn, &resultFrame{}); err == nil {
			t.Fatal("unauthorized peer hello was answered")
		}
		deadline := time.Now().Add(2 * time.Second)
		for w.parkedConns() != 0 {
			if time.Now().After(deadline) {
				t.Fatalf("parked = %d after unauthorized peer hello", w.parkedConns())
			}
			time.Sleep(10 * time.Millisecond)
		}
	})

	t.Run("matching token park", func(t *testing.T) {
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		defer conn.Close()
		if err := writeFrame(conn, &helloFrame{Kind: "peer", Job: "ok", Rank: 1, Token: "sesame"}); err != nil {
			t.Fatal(err)
		}
		claimed, err := w.claim("ok", 1, 5*time.Second)
		if err != nil {
			t.Fatalf("authorized peer hello was not parked: %v", err)
		}
		claimed.Close()
	})
}

// TestRunAuthEndToEnd drives a coordinated multiply against token-guarded
// workers: the right token succeeds with a correct product, the wrong one
// fails fast naming the reason.
func TestRunAuthEndToEnd(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{Ring: r})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)

	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		go Serve(l, WorkerOptions{AuthToken: "sesame"})
	}

	cfg := RunConfig{
		Workers: addrs, Prep: prep, A: a, B: b, N: inst.N, Ring: "counting",
		AuthToken: "sesame", DialTimeout: 5 * time.Second, ResultTimeout: 30 * time.Second,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("authorized run: %v", err)
	}
	if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(res.X, want) {
		t.Fatal("authorized run: wrong product")
	}

	cfg.AuthToken = "wrong"
	cfg.Job = ""
	if _, err := Run(cfg); err == nil || !strings.Contains(err.Error(), "unauthorized") {
		t.Fatalf("unauthorized run: err = %v, want unauthorized", err)
	}
}
