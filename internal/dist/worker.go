package dist

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// WorkerOptions tune one worker process.
type WorkerOptions struct {
	// Log receives one line per connection event and job; nil is silent.
	Log func(format string, args ...any)
	// PeerTimeout bounds how long a job waits for its mesh to form: dialing
	// lower ranks (with retry — peers may still be starting) and claiming
	// inbound connections from higher ranks. 0 means 30s.
	PeerTimeout time.Duration
	// ReadTimeout is the mesh's per-round barrier deadline. 0 means the
	// Mesh default (60s).
	ReadTimeout time.Duration
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o WorkerOptions) peerTimeout() time.Duration {
	if o.PeerTimeout > 0 {
		return o.PeerTimeout
	}
	return 30 * time.Second
}

// worker is the per-process state shared by all connections: peer
// connections that arrived before their job claims them, parked by
// (job, rank).
type worker struct {
	opts   WorkerOptions
	mu     sync.Mutex
	cond   *sync.Cond
	parked map[string]map[int]net.Conn
}

// ListenAndServe runs a worker on addr until the listener fails. The worker
// serves any number of jobs, sequentially or concurrently; each job forms
// its own mesh.
func ListenAndServe(addr string, opts WorkerOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	opts.logf("worker listening on %s", l.Addr())
	return Serve(l, opts)
}

// Serve runs a worker on an existing listener (tests use in-process
// listeners on port 0).
func Serve(l net.Listener, opts WorkerOptions) error {
	w := &worker{opts: opts, parked: make(map[string]map[int]net.Conn)}
	w.cond = sync.NewCond(&w.mu)
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go w.handle(conn)
	}
}

// handle routes one inbound connection by its hello frame: coordinator
// connections run a job, peer connections park until that job's mesh
// formation claims them.
func (w *worker) handle(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var h helloFrame
	if err := readFrame(conn, &h); err != nil {
		w.opts.logf("rejecting connection from %s: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	switch h.Kind {
	case "peer":
		w.park(h.Job, h.Rank, conn)
	case "job":
		defer conn.Close()
		if err := w.runJob(conn); err != nil {
			w.opts.logf("job failed: %v", err)
		}
	default:
		w.opts.logf("rejecting connection from %s: unknown hello kind %q", conn.RemoteAddr(), h.Kind)
		conn.Close()
	}
}

// park stores an inbound peer connection for its job to claim.
func (w *worker) park(job string, rank int, conn net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.parked[job] == nil {
		w.parked[job] = make(map[int]net.Conn)
	}
	if old := w.parked[job][rank]; old != nil {
		old.Close()
	}
	w.parked[job][rank] = conn
	w.cond.Broadcast()
}

// claim waits for the parked peer connection of (job, rank).
func (w *worker) claim(job string, rank int, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() { w.cond.Broadcast() })
	defer wake.Stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if m := w.parked[job]; m != nil {
			if c := m[rank]; c != nil {
				delete(m, rank)
				return c, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: no peer connection from rank %d for job %s within %s", rank, job, timeout)
		}
		w.cond.Wait()
	}
}

// runJob executes one distributed multiplication: decode the job, form the
// mesh (dial lower ranks, claim higher ranks), run the prepared plan with
// the mesh transport, and reply with this rank's partial result.
func (w *worker) runJob(conn net.Conn) error {
	var jf jobFrame
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if err := readFrame(conn, &jf); err != nil {
		return fmt.Errorf("reading job frame: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	w.opts.logf("job %s: rank %d of %d, n=%d, ring %s", jf.Job, jf.Rank, jf.Workers, jf.N, jf.Ring)

	rf := resultFrame{Job: jf.Job, Rank: jf.Rank}
	counters := obsv.NewCounterSet()
	x, stats, err := w.execute(&jf, counters)
	switch {
	case err == nil:
		rf.X = entriesOf(x)
		rf.Stats = stats
		rf.Counters = counters.Snapshot()
	default:
		if f, ok := lbm.AsFault(err); ok {
			rf.Fault = f
		} else {
			rf.Err = err.Error()
		}
		rf.Counters = counters.Snapshot()
	}
	if err := writeFrame(conn, &rf); err != nil {
		return fmt.Errorf("job %s: writing result: %w", jf.Job, err)
	}
	return nil
}

// execute runs the rank's share of the job and returns its partial output.
func (w *worker) execute(jf *jobFrame, counters *obsv.CounterSet) (*matrix.Sparse, lbm.Stats, error) {
	var stats lbm.Stats
	if jf.Workers < 1 || jf.Rank < 0 || jf.Rank >= jf.Workers || len(jf.Peers) != jf.Workers {
		return nil, stats, fmt.Errorf("dist: malformed job: rank %d of %d with %d peers", jf.Rank, jf.Workers, len(jf.Peers))
	}
	prep, err := core.DecodePrepared(bytes.NewReader(jf.Prepared))
	if err != nil {
		return nil, stats, fmt.Errorf("dist: job plan: %w", err)
	}
	r, err := matrix.RingByName(jf.Ring)
	if err != nil {
		return nil, stats, err
	}
	a := sparseFrom(jf.N, r, jf.A)
	b := sparseFrom(jf.N, r, jf.B)

	conns, err := w.meshConns(jf)
	if err != nil {
		closeConns(conns)
		return nil, stats, err
	}
	mesh, err := NewMesh(Partition{Workers: jf.Workers, Rank: jf.Rank}, conns, counters)
	if err != nil {
		closeConns(conns)
		return nil, stats, err
	}
	defer mesh.Close()
	if w.opts.ReadTimeout > 0 {
		mesh.ReadTimeout = w.opts.ReadTimeout
	}
	x, rep, err := prep.MultiplyOpts(a, b, core.ExecOpts{Transport: mesh})
	if err != nil {
		return nil, stats, err
	}
	return x, rep.Stats, nil
}

// meshConns forms this rank's side of the mesh: dial every lower rank (with
// retry — the peer worker only has to be listening, not yet working on the
// job) and claim the inbound connection of every higher rank.
func (w *worker) meshConns(jf *jobFrame) ([]net.Conn, error) {
	timeout := w.opts.peerTimeout()
	conns := make([]net.Conn, jf.Workers)
	for j := 0; j < jf.Rank; j++ {
		c, err := dialRetry(jf.Peers[j], timeout)
		if err != nil {
			return conns, fmt.Errorf("dist: rank %d dialing rank %d: %w", jf.Rank, j, err)
		}
		if err := writeFrame(c, &helloFrame{Kind: "peer", Job: jf.Job, Rank: jf.Rank}); err != nil {
			c.Close()
			return conns, fmt.Errorf("dist: rank %d greeting rank %d: %w", jf.Rank, j, err)
		}
		conns[j] = c
	}
	for j := jf.Rank + 1; j < jf.Workers; j++ {
		c, err := w.claim(jf.Job, j, timeout)
		if err != nil {
			return conns, err
		}
		conns[j] = c
	}
	return conns, nil
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// dialRetry dials addr until it answers or the timeout elapses — worker
// processes of one job may start in any order.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// entriesOf flattens a sparse matrix into wire entries.
func entriesOf(m *matrix.Sparse) []wireVal {
	out := make([]wireVal, 0, m.NNZ())
	for i, row := range m.Rows {
		for _, c := range row {
			out = append(out, wireVal{I: int32(i), J: c.Col, V: c.Val})
		}
	}
	return out
}

// sparseFrom rebuilds a sparse matrix from wire entries.
func sparseFrom(n int, r ring.Semiring, vals []wireVal) *matrix.Sparse {
	m := matrix.NewSparse(n, r)
	for _, e := range vals {
		m.Set(int(e.I), int(e.J), e.V)
	}
	return m
}
