package dist

import (
	"bytes"
	"crypto/subtle"
	"fmt"
	"net"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// WorkerOptions tune one worker process.
type WorkerOptions struct {
	// Log receives one line per connection event and job; nil is silent.
	Log func(format string, args ...any)
	// PeerTimeout bounds how long a job waits for its mesh to form: dialing
	// lower ranks (with retry — peers may still be starting) and claiming
	// inbound connections from higher ranks. 0 means 30s.
	PeerTimeout time.Duration
	// ReadTimeout is the mesh's per-round barrier deadline. 0 means the
	// Mesh default (60s).
	ReadTimeout time.Duration
	// ParkTTL bounds how long an unclaimed inbound peer connection may sit
	// parked: a job that never forms (failed mesh, dead coordinator) must
	// not leak fds for the worker's lifetime. 0 means 2×PeerTimeout.
	ParkTTL time.Duration
	// PlanCache is the number of decoded prepared plans kept in the
	// worker's fingerprint-keyed LRU; repeat jobs on a warm worker skip the
	// envelope decode (dist/plan_hits). 0 means 16; negative disables.
	PlanCache int
	// AuthToken, when non-empty, is the shared secret every inbound hello
	// must carry: a coordinator or peer whose token mismatches is rejected
	// (a job hello gets an unauthorized result frame; a peer hello is
	// closed). The same token is presented on this worker's outgoing peer
	// dials, so one fleet-wide secret covers the whole mesh.
	AuthToken string
}

func (o WorkerOptions) logf(format string, args ...any) {
	if o.Log != nil {
		o.Log(format, args...)
	}
}

func (o WorkerOptions) peerTimeout() time.Duration {
	if o.PeerTimeout > 0 {
		return o.PeerTimeout
	}
	return 30 * time.Second
}

func (o WorkerOptions) parkTTL() time.Duration {
	if o.ParkTTL > 0 {
		return o.ParkTTL
	}
	return 2 * o.peerTimeout()
}

func (o WorkerOptions) planCacheSize() int {
	switch {
	case o.PlanCache > 0:
		return o.PlanCache
	case o.PlanCache < 0:
		return 0
	}
	return 16
}

// worker is the per-process state shared by all connections: peer
// connections that arrived before their job claims them, parked by
// (job, rank), and the fingerprint-keyed plan cache shared by all jobs.
type worker struct {
	opts   WorkerOptions
	mu     sync.Mutex
	cond   *sync.Cond
	parked map[string]map[int]net.Conn
	plans  *planCache
}

// newWorker builds the per-process worker state.
func newWorker(opts WorkerOptions) *worker {
	w := &worker{
		opts:   opts,
		parked: make(map[string]map[int]net.Conn),
		plans:  newPlanCache(opts.planCacheSize()),
	}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// ListenAndServe runs a worker on addr until the listener fails. The worker
// serves any number of jobs, sequentially or concurrently; each job forms
// its own mesh.
func ListenAndServe(addr string, opts WorkerOptions) error {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	opts.logf("worker listening on %s", l.Addr())
	return Serve(l, opts)
}

// Serve runs a worker on an existing listener (tests use in-process
// listeners on port 0).
func Serve(l net.Listener, opts WorkerOptions) error {
	return newWorker(opts).serve(l)
}

func (w *worker) serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go w.handle(conn)
	}
}

// handle routes one inbound connection by its hello frame: coordinator
// connections run a job, peer connections park until that job's mesh
// formation claims them.
func (w *worker) handle(conn net.Conn) {
	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	var h helloFrame
	if err := readFrame(conn, &h); err != nil {
		w.opts.logf("rejecting connection from %s: %v", conn.RemoteAddr(), err)
		conn.Close()
		return
	}
	conn.SetReadDeadline(time.Time{})
	// Constant-time compare: the check guards an open port, so equality must
	// not leak how much of a guessed token matched.
	if w.opts.AuthToken != "" && subtle.ConstantTimeCompare([]byte(h.Token), []byte(w.opts.AuthToken)) != 1 {
		w.opts.logf("rejecting %s connection from %s: auth token mismatch", h.Kind, conn.RemoteAddr())
		if h.Kind == "job" {
			// Answer the coordinator instead of letting it wait out its
			// result timeout: the run fails fast with the real reason.
			_ = writeFrame(conn, &resultFrame{Job: h.Job, Err: "dist: unauthorized: worker requires a matching auth token"})
		}
		conn.Close()
		return
	}
	switch h.Kind {
	case "peer":
		w.park(h.Job, h.Rank, conn)
	case "job":
		defer conn.Close()
		if err := w.runJob(conn); err != nil {
			w.opts.logf("job failed: %v", err)
		}
	default:
		w.opts.logf("rejecting connection from %s: unknown hello kind %q", conn.RemoteAddr(), h.Kind)
		conn.Close()
	}
}

// park stores an inbound peer connection for its job to claim, and arms a
// TTL sweep for it: a parked connection whose job never claims it — mesh
// formation failed on another rank, or the coordinator died after the peers
// dialed — would otherwise hold its fd and its parked[job] map entry for
// the worker's whole lifetime.
func (w *worker) park(job string, rank int, conn net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.parked[job] == nil {
		w.parked[job] = make(map[int]net.Conn)
	}
	if old := w.parked[job][rank]; old != nil {
		old.Close()
	}
	w.parked[job][rank] = conn
	w.cond.Broadcast()
	time.AfterFunc(w.opts.parkTTL(), func() { w.reap(job, rank, conn) })
}

// reap closes and forgets one parked connection if it is still the one
// parked under (job, rank) — a claim or a newer park already removed or
// replaced it otherwise.
func (w *worker) reap(job string, rank int, conn net.Conn) {
	w.mu.Lock()
	defer w.mu.Unlock()
	m := w.parked[job]
	if m == nil || m[rank] != conn {
		return
	}
	conn.Close()
	delete(m, rank)
	if len(m) == 0 {
		delete(w.parked, job)
	}
	w.opts.logf("job %s: reaped unclaimed peer connection from rank %d after %s", job, rank, w.opts.parkTTL())
}

// releaseJob drops every parked connection of a job — called once the
// job's mesh has formed (leftovers are duplicate dials that will never be
// claimed) or the job has errored (nothing will claim them). The TTL sweep
// is only the backstop for jobs this worker never runs.
func (w *worker) releaseJob(job string) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for _, c := range w.parked[job] {
		c.Close()
	}
	delete(w.parked, job)
}

// parkedConns reports the number of parked connections across all jobs
// (tests assert the leak fixes).
func (w *worker) parkedConns() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := 0
	for _, m := range w.parked {
		n += len(m)
	}
	return n
}

// claim waits for the parked peer connection of (job, rank).
func (w *worker) claim(job string, rank int, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	wake := time.AfterFunc(timeout, func() { w.cond.Broadcast() })
	defer wake.Stop()
	w.mu.Lock()
	defer w.mu.Unlock()
	for {
		if m := w.parked[job]; m != nil {
			if c := m[rank]; c != nil {
				delete(m, rank)
				return c, nil
			}
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("dist: no peer connection from rank %d for job %s within %s", rank, job, timeout)
		}
		w.cond.Wait()
	}
}

// runJob executes one distributed multiplication: decode the job, resolve
// the prepared plan (cache by fingerprint, else decode the envelope), form
// the mesh (dial lower ranks, claim higher ranks), run the plan with the
// mesh transport, and reply with this rank's partial result. Whatever the
// outcome, the job's parked peer connections are released — once the mesh
// has formed any leftover is a stray duplicate, and after an error nothing
// will ever claim them.
func (w *worker) runJob(conn net.Conn) error {
	var jf jobFrame
	conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	if err := readFrame(conn, &jf); err != nil {
		return fmt.Errorf("reading job frame: %w", err)
	}
	conn.SetReadDeadline(time.Time{})
	defer w.releaseJob(jf.Job)
	w.opts.logf("job %s: rank %d of %d, n=%d, ring %s, lane payload %dB", jf.Job, jf.Rank, jf.Workers, jf.N, jf.Ring, len(jf.Lanes))

	rf := resultFrame{Job: jf.Job, Rank: jf.Rank}
	counters := obsv.NewCounterSet()
	xs, stats, err := w.execute(&jf, counters)
	switch {
	case err == nil:
		rf.X = make([][]wireVal, len(xs))
		for l, x := range xs {
			rf.X[l] = entriesOf(x)
		}
		rf.Stats = stats
		rf.Counters = counters.Snapshot()
	default:
		if f, ok := lbm.AsFault(err); ok {
			rf.Fault = f
		} else {
			rf.Err = err.Error()
		}
		rf.Counters = counters.Snapshot()
	}
	if err := writeFrame(conn, &rf); err != nil {
		return fmt.Errorf("job %s: writing result: %w", jf.Job, err)
	}
	return nil
}

// plan resolves the job's prepared plan: a fingerprint held in the
// worker's cache skips the envelope decode entirely (dist/plan_hits); a
// miss decodes the shipped envelope, cross-checks its self-address against
// the requested fingerprint, and caches it for the next job.
func (w *worker) plan(jf *jobFrame, counters *obsv.CounterSet) (*core.Prepared, error) {
	if prep, ok := w.plans.get(jf.Fingerprint); ok {
		counters.Add(CounterPlanHits, 1)
		return prep, nil
	}
	counters.Add(CounterPlanMisses, 1)
	if len(jf.Prepared) == 0 {
		return nil, fmt.Errorf("dist: job plan %s not cached and no envelope shipped", jf.Fingerprint)
	}
	prep, err := core.DecodePrepared(bytes.NewReader(jf.Prepared))
	if err != nil {
		return nil, fmt.Errorf("dist: job plan: %w", err)
	}
	if jf.Fingerprint != "" {
		fp, err := prep.Fingerprint()
		if err != nil {
			return nil, fmt.Errorf("dist: job plan self-address: %w", err)
		}
		if fp != jf.Fingerprint {
			return nil, fmt.Errorf("dist: job plan fingerprint %s does not match the envelope's %s", jf.Fingerprint, fp)
		}
		w.plans.put(fp, prep)
	}
	return prep, nil
}

// execute runs the rank's share of the job and returns its per-lane
// partial outputs.
func (w *worker) execute(jf *jobFrame, counters *obsv.CounterSet) ([]*matrix.Sparse, lbm.Stats, error) {
	var stats lbm.Stats
	if jf.Workers < 1 || jf.Rank < 0 || jf.Rank >= jf.Workers || len(jf.Peers) != jf.Workers {
		return nil, stats, fmt.Errorf("dist: malformed job: rank %d of %d with %d peers", jf.Rank, jf.Workers, len(jf.Peers))
	}
	laneA, laneB, err := decodeLanes(jf.Lanes)
	if err != nil {
		return nil, stats, err
	}
	if len(laneA) == 0 || len(laneA) != len(laneB) {
		return nil, stats, fmt.Errorf("dist: malformed job: %d A lanes, %d B lanes", len(laneA), len(laneB))
	}
	if len(jf.Table) > 0 && len(jf.Table) != jf.N {
		return nil, stats, fmt.Errorf("dist: malformed job: partition table covers %d of %d nodes", len(jf.Table), jf.N)
	}
	if err := ValidateTable(jf.Table, jf.Workers); err != nil {
		return nil, stats, err
	}
	prep, err := w.plan(jf, counters)
	if err != nil {
		return nil, stats, err
	}
	r, err := matrix.RingByName(jf.Ring)
	if err != nil {
		return nil, stats, err
	}
	as := make([]*matrix.Sparse, len(laneA))
	bs := make([]*matrix.Sparse, len(laneB))
	for l := range laneA {
		as[l] = sparseFrom(jf.N, r, laneA[l])
		bs[l] = sparseFrom(jf.N, r, laneB[l])
	}

	conns, err := w.meshConns(jf)
	if err != nil {
		closeConns(conns)
		return nil, stats, err
	}
	mesh, err := NewMesh(Partition{Workers: jf.Workers, Rank: jf.Rank, Table: jf.Table}, conns, counters)
	if err != nil {
		closeConns(conns)
		return nil, stats, err
	}
	defer mesh.Close()
	if w.opts.ReadTimeout > 0 {
		mesh.ReadTimeout = w.opts.ReadTimeout
	}
	if len(as) == 1 {
		x, rep, err := prep.MultiplyOpts(as[0], bs[0], core.ExecOpts{Transport: mesh})
		if err != nil {
			return nil, stats, err
		}
		return []*matrix.Sparse{x}, rep.Stats, nil
	}
	xs, rep, err := prep.MultiplyBatch(as, bs, core.ExecOpts{Transport: mesh})
	if err != nil {
		return nil, stats, err
	}
	return xs, rep.Stats, nil
}

// meshConns forms this rank's side of the mesh: dial every lower rank (with
// retry — the peer worker only has to be listening, not yet working on the
// job) and claim the inbound connection of every higher rank.
func (w *worker) meshConns(jf *jobFrame) ([]net.Conn, error) {
	timeout := w.opts.peerTimeout()
	conns := make([]net.Conn, jf.Workers)
	for j := 0; j < jf.Rank; j++ {
		c, err := dialRetry(jf.Peers[j], timeout)
		if err != nil {
			return conns, fmt.Errorf("dist: rank %d dialing rank %d: %w", jf.Rank, j, err)
		}
		if err := writeFrame(c, &helloFrame{Kind: "peer", Job: jf.Job, Rank: jf.Rank, Token: w.opts.AuthToken}); err != nil {
			c.Close()
			return conns, fmt.Errorf("dist: rank %d greeting rank %d: %w", jf.Rank, j, err)
		}
		conns[j] = c
	}
	for j := jf.Rank + 1; j < jf.Workers; j++ {
		c, err := w.claim(jf.Job, j, timeout)
		if err != nil {
			return conns, err
		}
		conns[j] = c
	}
	return conns, nil
}

func closeConns(conns []net.Conn) {
	for _, c := range conns {
		if c != nil {
			c.Close()
		}
	}
}

// dialRetry dials addr until it answers or the timeout elapses — worker
// processes of one job may start in any order.
func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// entriesOf flattens a sparse matrix into wire entries.
func entriesOf(m *matrix.Sparse) []wireVal {
	out := make([]wireVal, 0, m.NNZ())
	for i, row := range m.Rows {
		for _, c := range row {
			out = append(out, wireVal{I: int32(i), J: c.Col, V: c.Val})
		}
	}
	return out
}

// sparseFrom rebuilds a sparse matrix from wire entries.
func sparseFrom(n int, r ring.Semiring, vals []wireVal) *matrix.Sparse {
	m := matrix.NewSparse(n, r)
	for _, e := range vals {
		m.Set(int(e.I), int(e.J), e.V)
	}
	return m
}
