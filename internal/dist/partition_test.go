package dist

import (
	"reflect"
	"testing"

	"lbmm/internal/lbm"
)

// TestBalancedTableDeterministic pins the coordination property: every
// participant must derive the identical table from the identical loads, so
// equal inputs — including ties — must produce equal tables.
func TestBalancedTableDeterministic(t *testing.T) {
	send := []int64{9, 1, 1, 9, 4, 4, 0, 0}
	recv := []int64{1, 9, 9, 1, 4, 4, 0, 0}
	first := BalancedTable(send, recv, 3)
	for i := 0; i < 10; i++ {
		if got := BalancedTable(send, recv, 3); !reflect.DeepEqual(got, first) {
			t.Fatalf("run %d produced a different table: %v vs %v", i, got, first)
		}
	}
	if len(first) != 8 {
		t.Fatalf("table covers %d nodes, want 8", len(first))
	}
	if err := ValidateTable(first, 3); err != nil {
		t.Fatalf("balanced table invalid: %v", err)
	}
}

// TestBalancedTableBeatsModuloOnSkew pins the point of the balancer: on a
// load profile concentrated on a few hub nodes that the modulo map happens
// to co-locate, the balanced max-per-rank load must come out strictly lower.
func TestBalancedTableBeatsModuloOnSkew(t *testing.T) {
	// Hubs at nodes 0 and 4: both ≡ 0 mod 2, so modulo piles them on rank 0.
	send := []int64{100, 1, 1, 1, 100, 1, 1, 1}
	recv := make([]int64, 8)
	moduloMax := maxLoad(RankLoads(nil, send, recv, 2))
	balanced := BalancedTable(send, recv, 2)
	balancedMax := maxLoad(RankLoads(balanced, send, recv, 2))
	if balancedMax >= moduloMax {
		t.Fatalf("balanced max rank load %d, modulo %d — balancer did not help", balancedMax, moduloMax)
	}
	// The two hubs must land on different ranks.
	if balanced[0] == balanced[4] {
		t.Fatalf("both hub nodes assigned to rank %d", balanced[0])
	}
}

// TestBalancedTableSpreadsZeroTail pins the secondary tie-break: nodes with
// zero load still spread across ranks by node count instead of piling onto
// one bin, so store placement stays roughly even.
func TestBalancedTableSpreadsZeroTail(t *testing.T) {
	send := make([]int64, 12)
	recv := make([]int64, 12)
	table := BalancedTable(send, recv, 4)
	counts := make([]int, 4)
	for _, rk := range table {
		counts[rk]++
	}
	for rk, c := range counts {
		if c != 3 {
			t.Fatalf("rank %d owns %d of 12 zero-load nodes, want 3 (counts %v)", rk, c, counts)
		}
	}
}

// TestPartitionRankOf pins the table lookup and the modulo fallback for
// nodes beyond the table.
func TestPartitionRankOf(t *testing.T) {
	p := Partition{Workers: 3, Rank: 1, Table: []uint16{2, 2, 0}}
	if got := p.RankOf(0); got != 2 {
		t.Errorf("RankOf(0) = %d, want 2", got)
	}
	if !p.Owns(lbm.NodeID(4)) { // beyond the table: 4 mod 3 = 1 = our rank
		t.Error("node 4 should fall back to the modulo map and land on rank 1")
	}
	if p.Owns(lbm.NodeID(0)) {
		t.Error("node 0 is tabled to rank 2, not ours")
	}
}

// TestValidateTable pins the wire-safety check: a table naming a
// nonexistent rank must be rejected before any execution starts.
func TestValidateTable(t *testing.T) {
	if err := ValidateTable(nil, 2); err != nil {
		t.Errorf("empty table rejected: %v", err)
	}
	if err := ValidateTable([]uint16{0, 1, 1}, 2); err != nil {
		t.Errorf("valid table rejected: %v", err)
	}
	if err := ValidateTable([]uint16{0, 2}, 2); err == nil {
		t.Error("table naming rank 2 of 2 was accepted")
	}
}

// TestRankLoads pins the fold: per-node loads must land on the owning rank
// under both the explicit table and the modulo fallback.
func TestRankLoads(t *testing.T) {
	send := []int64{10, 20, 30, 40}
	recv := []int64{1, 2, 3, 4}
	got := RankLoads(nil, send, recv, 2)
	if want := []int64{11 + 33, 22 + 44}; !reflect.DeepEqual(got, want) {
		t.Errorf("modulo rank loads = %v, want %v", got, want)
	}
	got = RankLoads([]uint16{1, 1, 1, 0}, send, recv, 2)
	if want := []int64{44, 11 + 22 + 33}; !reflect.DeepEqual(got, want) {
		t.Errorf("tabled rank loads = %v, want %v", got, want)
	}
}

func maxLoad(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
