package dist

import (
	"fmt"
	"sort"

	"lbmm/internal/lbm"
)

// Partition is the node-ownership map of a distributed execution. Without a
// Table, node v lives on rank int(v) mod Workers — every participant
// derives the same map from the (Workers, Rank) pair, so ownership never
// travels on the wire. With a Table, ownership is the explicit node→rank
// assignment Table[v]: a compact []uint16 shipped once in the job frame
// (docs/DIST.md), letting a coordinator bin nodes by the per-node
// SendLoad/RecvLoad recorded in the compiled plan's stats profile instead
// of by node count. Nodes beyond the table (none, for a well-formed job)
// fall back to the modulo map.
type Partition struct {
	Workers int
	Rank    int
	// Table, when non-empty, maps node → owning rank explicitly. Entries
	// must be < Workers (ValidateTable).
	Table []uint16
}

// Owns reports whether node v's store lives on this rank.
func (p Partition) Owns(v lbm.NodeID) bool { return p.RankOf(v) == p.Rank }

// RankOf returns the rank owning node v.
func (p Partition) RankOf(v lbm.NodeID) int {
	if int(v) < len(p.Table) {
		return int(p.Table[v])
	}
	return int(v) % p.Workers
}

// ValidateTable checks an explicit assignment table against a worker
// count: every entry must name an existing rank. An empty table is valid
// (the modulo map).
func ValidateTable(table []uint16, workers int) error {
	for v, rk := range table {
		if int(rk) >= workers {
			return fmt.Errorf("dist: partition table assigns node %d to rank %d of %d", v, rk, workers)
		}
	}
	return nil
}

// BalancedTable builds a load-aware node→rank assignment by greedy LPT
// (longest processing time) binning: nodes sorted by descending per-node
// load — send[v]+recv[v], the communication volume the low-bandwidth cost
// measure actually charges — are assigned one by one to the currently
// lightest rank. The modulo map balances node counts; on skewed structures
// (power-law hubs) that leaves some ranks carrying a multiple of the
// per-rank communication of others, which is exactly the quantity the
// model bounds. Ties break deterministically (lower node, then lower rank),
// so every caller derives the identical table from the identical loads.
func BalancedTable(send, recv []int64, workers int) []uint16 {
	n := len(send)
	if len(recv) > n {
		n = len(recv)
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	load := func(v int) int64 {
		var l int64
		if v < len(send) {
			l += send[v]
		}
		if v < len(recv) {
			l += recv[v]
		}
		return l
	}
	sort.SliceStable(order, func(i, j int) bool {
		li, lj := load(order[i]), load(order[j])
		if li != lj {
			return li > lj
		}
		return order[i] < order[j]
	})
	table := make([]uint16, n)
	binLoad := make([]int64, workers)
	binNodes := make([]int, workers)
	for _, v := range order {
		best := 0
		for rk := 1; rk < workers; rk++ {
			// Primary: lightest communication load. Secondary: fewest nodes,
			// so zero-load tails still spread instead of piling on rank 0.
			if binLoad[rk] < binLoad[best] ||
				(binLoad[rk] == binLoad[best] && binNodes[rk] < binNodes[best]) {
				best = rk
			}
		}
		table[v] = uint16(best)
		binLoad[best] += load(v)
		binNodes[best]++
	}
	return table
}

// RankLoads folds per-node loads through an assignment table into per-rank
// totals — the balance report `lbmm benchpr9` prints.
func RankLoads(table []uint16, send, recv []int64, workers int) []int64 {
	out := make([]int64, workers)
	p := Partition{Workers: workers, Table: table}
	n := len(send)
	if len(recv) > n {
		n = len(recv)
	}
	for v := 0; v < n; v++ {
		var l int64
		if v < len(send) {
			l += send[v]
		}
		if v < len(recv) {
			l += recv[v]
		}
		out[p.RankOf(lbm.NodeID(v))] += l
	}
	return out
}
