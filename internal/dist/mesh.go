package dist

import (
	"bufio"
	"fmt"
	"net"
	"sync"
	"time"

	"lbmm/internal/lbm"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// Counter names published by a Mesh into its obsv.CounterSet.
const (
	// CounterBytesSent is the wire bytes this endpoint wrote: payloads plus
	// all framing (length prefixes, gob type streams, barrier acks). Compare
	// with Stats.RoundBytes, the framing-free model volume.
	CounterBytesSent = "net/bytes_sent"
	// CounterRoundNS is the cumulative wall-clock time spent inside Deliver
	// barriers.
	CounterRoundNS = "net/round_ns"
	// CounterFlushes counts per-peer write-buffer flushes (one per peer per
	// network round).
	CounterFlushes = "net/flushes"
)

// peerLink is one persistent connection to a fellow participant, reused for
// every round of the execution.
type peerLink struct {
	conn net.Conn
	w    *bufio.Writer
	r    *bufio.Reader
}

// Mesh is the socket-backed lbm.Transport: one endpoint of a fully
// connected mesh of participants walking one plan in lockstep. Send buffers
// the round's outgoing messages per destination rank; Deliver frames each
// peer's batch (an empty batch is the barrier ack), flushes once per peer,
// and blocks until one round frame arrives from every peer. Connections are
// reused across rounds and across executions — the per-round cost is one
// buffered write and one read per peer, no dials.
type Mesh struct {
	part     Partition
	peers    []*peerLink // indexed by rank, nil at our own
	out      [][]wireMsg // queued sends per destination rank
	inbox    map[lbm.NodeID][]ring.Value
	counters *obsv.CounterSet
	// dead is the sticky lifecycle error: once a Deliver fails, the mesh's
	// stream positions are undefined (peers may hold unread or half-written
	// round frames), so every later Send/Deliver fails fast with the
	// original error instead of desyncing on a confusing round tag.
	dead error

	// ReadTimeout bounds the wait for each peer's round frame inside
	// Deliver; 0 waits forever. It is the rescue path when a peer dies
	// mid-run outside the fault model (see the runbook in docs/DIST.md).
	ReadTimeout time.Duration
}

// NewMesh wraps established peer connections (indexed by rank; the entry at
// part.Rank is ignored) into a transport endpoint. Counters may be nil.
func NewMesh(part Partition, conns []net.Conn, counters *obsv.CounterSet) (*Mesh, error) {
	if part.Workers < 1 || part.Rank < 0 || part.Rank >= part.Workers {
		return nil, fmt.Errorf("dist: invalid partition rank %d of %d", part.Rank, part.Workers)
	}
	if err := ValidateTable(part.Table, part.Workers); err != nil {
		return nil, err
	}
	if len(conns) != part.Workers {
		return nil, fmt.Errorf("dist: rank %d: got %d peer connections, want %d", part.Rank, len(conns), part.Workers)
	}
	if counters == nil {
		counters = obsv.NewCounterSet()
	}
	m := &Mesh{
		part:        part,
		peers:       make([]*peerLink, part.Workers),
		out:         make([][]wireMsg, part.Workers),
		counters:    counters,
		ReadTimeout: 60 * time.Second,
	}
	for rk, c := range conns {
		if rk == part.Rank {
			continue
		}
		if c == nil {
			return nil, fmt.Errorf("dist: rank %d: no connection to peer rank %d", part.Rank, rk)
		}
		m.peers[rk] = &peerLink{
			conn: c,
			w:    bufio.NewWriter(&countingWriter{w: c, counters: counters}),
			r:    bufio.NewReader(c),
		}
	}
	return m, nil
}

// Part returns the mesh's partition.
func (m *Mesh) Part() Partition { return m.part }

// Counters returns the mesh's transport counters.
func (m *Mesh) Counters() *obsv.CounterSet { return m.counters }

// Owns implements lbm.Transport.
func (m *Mesh) Owns(v lbm.NodeID) bool { return m.part.Owns(v) }

// Send implements lbm.Transport: self-owned destinations go straight to the
// inbox (no wire), everything else queues for its owner's rank until the
// Deliver barrier. A second payload for an already-stashed self-owned
// destination violates the one-receive-per-round contract and returns an
// error wrapping lbm.ErrDuplicateDelivery (remote duplicates are caught at
// the receiving rank's Deliver).
func (m *Mesh) Send(round int, dst lbm.NodeID, payload []ring.Value) error {
	if m.dead != nil {
		return fmt.Errorf("dist: rank %d: send on a dead mesh: %w", m.part.Rank, m.dead)
	}
	if m.part.Owns(dst) {
		if m.inbox == nil {
			m.inbox = make(map[lbm.NodeID][]ring.Value)
		}
		if _, dup := m.inbox[dst]; dup {
			return fmt.Errorf("dist: rank %d: round %d, node %d: %w", m.part.Rank, round, dst, lbm.ErrDuplicateDelivery)
		}
		m.inbox[dst] = payload
		return nil
	}
	rk := m.part.RankOf(dst)
	m.out[rk] = append(m.out[rk], wireMsg{Dst: int32(dst), Vals: payload})
	return nil
}

// Deliver implements lbm.Transport: it writes one round frame to every peer
// (concurrently, so large frames cannot write-write deadlock the mesh),
// reads one from every peer, verifies the round tags, and hands back the
// payloads addressed to locally-owned nodes.
//
// Error lifecycle: an early error no longer abandons the remaining peers —
// their round frames are still read (drained), so no frame lingers in a
// stream buffer. Any Deliver error additionally marks the mesh dead: the
// streams' positions are no longer trustworthy, so every later Send or
// Deliver fails fast with the original error instead of desyncing the next
// round with a confusing round-tag mismatch.
func (m *Mesh) Deliver(round int) (map[lbm.NodeID][]ring.Value, error) {
	if m.dead != nil {
		return nil, fmt.Errorf("dist: rank %d: deliver on a dead mesh: %w", m.part.Rank, m.dead)
	}
	start := time.Now()
	var wg sync.WaitGroup
	werrs := make([]error, len(m.peers))
	for rk, pl := range m.peers {
		if pl == nil {
			continue
		}
		wg.Add(1)
		go func(rk int, pl *peerLink) {
			defer wg.Done()
			f := roundFrame{Round: int32(round), Msgs: m.out[rk]}
			if err := writeFrame(pl.w, &f); err != nil {
				werrs[rk] = err
				return
			}
			werrs[rk] = pl.w.Flush()
			m.counters.Add(CounterFlushes, 1)
		}(rk, pl)
	}

	in := m.inbox
	m.inbox = nil
	var rerr error
	for rk, pl := range m.peers {
		// Keep reading after an error: every peer wrote exactly one round
		// frame, and leaving it buffered would poison a reuse of the mesh.
		if pl == nil {
			continue
		}
		if m.ReadTimeout > 0 {
			pl.conn.SetReadDeadline(time.Now().Add(m.ReadTimeout))
		}
		var f roundFrame
		if err := readFrame(pl.r, &f); err != nil {
			if rerr == nil {
				rerr = fmt.Errorf("dist: rank %d: reading round %d from rank %d: %w", m.part.Rank, round, rk, err)
			}
			continue
		}
		if int(f.Round) != round {
			if rerr == nil {
				rerr = fmt.Errorf("dist: rank %d: peer rank %d answered round %d during round %d", m.part.Rank, rk, f.Round, round)
			}
			continue
		}
		for _, msg := range f.Msgs {
			if in == nil {
				in = make(map[lbm.NodeID][]ring.Value)
			}
			if _, dup := in[lbm.NodeID(msg.Dst)]; dup {
				if rerr == nil {
					rerr = fmt.Errorf("dist: rank %d: round %d, node %d (from rank %d): %w",
						m.part.Rank, round, msg.Dst, rk, lbm.ErrDuplicateDelivery)
				}
				continue
			}
			in[lbm.NodeID(msg.Dst)] = msg.Vals
		}
	}
	wg.Wait()
	for rk, err := range werrs {
		if err != nil && rerr == nil {
			rerr = fmt.Errorf("dist: rank %d: writing round %d to rank %d: %w", m.part.Rank, round, rk, err)
		}
	}
	for rk := range m.out {
		m.out[rk] = m.out[rk][:0]
	}
	m.counters.Add(CounterRoundNS, time.Since(start).Nanoseconds())
	if rerr != nil {
		m.dead = rerr
		return nil, rerr
	}
	return in, nil
}

// Err returns the sticky lifecycle error, nil while the mesh is usable.
func (m *Mesh) Err() error { return m.dead }

// Close closes every peer connection.
func (m *Mesh) Close() error {
	var first error
	for _, pl := range m.peers {
		if pl == nil {
			continue
		}
		if err := pl.conn.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// countingWriter charges every write under the bufio layer — i.e. actual
// wire bytes, framing included — to the bytes-sent counter.
type countingWriter struct {
	w        net.Conn
	counters *obsv.CounterSet
}

func (cw *countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.counters.Add(CounterBytesSent, int64(n))
	return n, err
}

// NewLocalMesh builds a fully connected W-participant mesh over localhost
// TCP inside one process: real sockets, real frames, no worker processes.
// It is the backend of `lbmm benchpr8`, the chaos differential's transport
// axis, and the package tests. The returned stop function closes every
// connection.
func NewLocalMesh(workers int) ([]*Mesh, func(), error) {
	return NewLocalMeshTable(workers, nil)
}

// NewLocalMeshTable is NewLocalMesh with an explicit node→rank assignment
// table shared by every endpoint (nil for the modulo map) — the backend of
// `lbmm benchpr9`'s partition comparison.
func NewLocalMeshTable(workers int, table []uint16) ([]*Mesh, func(), error) {
	if workers < 2 {
		return nil, nil, fmt.Errorf("dist: a local mesh needs at least 2 participants, got %d", workers)
	}
	conns := make([][]net.Conn, workers)
	for i := range conns {
		conns[i] = make([]net.Conn, workers)
	}
	stop := func() {
		for _, row := range conns {
			for _, c := range row {
				if c != nil {
					c.Close()
				}
			}
		}
	}
	for i := 0; i < workers; i++ {
		for j := i + 1; j < workers; j++ {
			l, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				stop()
				return nil, nil, err
			}
			type accepted struct {
				c   net.Conn
				err error
			}
			ch := make(chan accepted, 1)
			go func() {
				c, err := l.Accept()
				ch <- accepted{c, err}
			}()
			cj, err := net.Dial("tcp", l.Addr().String())
			if err != nil {
				l.Close()
				stop()
				return nil, nil, err
			}
			acc := <-ch
			l.Close()
			if acc.err != nil {
				cj.Close()
				stop()
				return nil, nil, acc.err
			}
			conns[i][j] = acc.c
			conns[j][i] = cj
		}
	}
	meshes := make([]*Mesh, workers)
	for rk := 0; rk < workers; rk++ {
		m, err := NewMesh(Partition{Workers: workers, Rank: rk, Table: table}, conns[rk], nil)
		if err != nil {
			stop()
			return nil, nil, err
		}
		meshes[rk] = m
	}
	return meshes, stop, nil
}
