package dist

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestLocalMeshRouting drives a 3-participant localhost mesh by hand for
// two rounds and checks that every payload lands at its owner's inbox and
// that the wire counters move.
func TestLocalMeshRouting(t *testing.T) {
	meshes, stop, err := NewLocalMesh(3)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()

	// Round 0: rank 0 owns node 0's send targeting node 4 (rank 1), rank 1
	// owns node 1's send targeting node 3 (rank 0), rank 2 sends to itself
	// (node 5 → node 8, both rank 2: no wire).
	sends := map[int][]struct {
		dst  lbm.NodeID
		vals []ring.Value
	}{
		0: {{4, []ring.Value{1.5}}},
		1: {{3, []ring.Value{2.5}}},
		2: {{8, []ring.Value{3.5}}},
	}
	got := make([]map[lbm.NodeID][]ring.Value, 3)
	var wg sync.WaitGroup
	for rk := 0; rk < 3; rk++ {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			for _, s := range sends[rk] {
				if err := meshes[rk].Send(0, s.dst, s.vals); err != nil {
					t.Errorf("rank %d send: %v", rk, err)
				}
			}
			in, err := meshes[rk].Deliver(0)
			if err != nil {
				t.Errorf("rank %d deliver: %v", rk, err)
			}
			got[rk] = in
		}(rk)
	}
	wg.Wait()

	want := []map[lbm.NodeID][]ring.Value{
		{3: {2.5}},
		{4: {1.5}},
		{8: {3.5}},
	}
	for rk := range want {
		if !reflect.DeepEqual(got[rk], want[rk]) {
			t.Errorf("rank %d round 0 inbox = %v, want %v", rk, got[rk], want[rk])
		}
	}

	// Round 1: nothing to say — every rank still acks the barrier.
	for rk := 0; rk < 3; rk++ {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			in, err := meshes[rk].Deliver(1)
			if err != nil {
				t.Errorf("rank %d deliver round 1: %v", rk, err)
			}
			if len(in) != 0 {
				t.Errorf("rank %d round 1 inbox = %v, want empty", rk, in)
			}
		}(rk)
	}
	wg.Wait()

	for rk := 0; rk < 3; rk++ {
		c := meshes[rk].Counters()
		if c.Get(CounterBytesSent) <= 0 {
			t.Errorf("rank %d: net/bytes_sent = %d, want > 0", rk, c.Get(CounterBytesSent))
		}
		// Two rounds × two peers.
		if c.Get(CounterFlushes) != 4 {
			t.Errorf("rank %d: net/flushes = %d, want 4", rk, c.Get(CounterFlushes))
		}
		if c.Get(CounterRoundNS) <= 0 {
			t.Errorf("rank %d: net/round_ns = %d, want > 0", rk, c.Get(CounterRoundNS))
		}
	}
}

// prepCase builds one prepared workload for the distributed tests.
func prepCase(t *testing.T, alg string, r ring.Semiring, n, d int) (*core.Prepared, *matrix.Sparse, *matrix.Sparse, *matrix.Sparse) {
	t.Helper()
	inst := workload.Blocks(n, d)
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{
		Ring: r, D: d, Algorithm: alg, Engine: "compiled",
	})
	if err != nil {
		t.Fatalf("prepare %s: %v", alg, err)
	}
	a := matrix.Random(inst.Ahat, r, 11)
	b := matrix.Random(inst.Bhat, r, 22)
	want, _, err := prep.Multiply(a, b)
	if err != nil {
		t.Fatalf("in-process multiply: %v", err)
	}
	return prep, a, b, want
}

// TestMeshMatrixMultiply runs the full compile matrix over a 3-participant
// TCP mesh inside one process: each rank executes the identical prepared
// plan with its mesh endpoint, the union of the partial outputs must equal
// the single-process product, and the merged per-rank statistics must equal
// the single-process Stats exactly.
func TestMeshMatrixMultiply(t *testing.T) {
	for _, alg := range []string{"lemma31", "theorem42"} {
		for _, r := range []ring.Semiring{ring.Real{}, ring.Counting{}} {
			t.Run(fmt.Sprintf("%s/%s", alg, r.Name()), func(t *testing.T) {
				prep, a, b, want := prepCase(t, alg, r, 32, 3)
				ref, refRep, err := prep.MultiplyOpts(a, b, core.ExecOpts{Transport: &lbm.Loopback{}})
				if err != nil {
					t.Fatalf("loopback multiply: %v", err)
				}
				if !matrix.Equal(ref, want) {
					t.Fatal("loopback product differs from the plain product")
				}

				meshes, stop, err := NewLocalMesh(3)
				if err != nil {
					t.Fatal(err)
				}
				defer stop()
				outs := make([]*matrix.Sparse, 3)
				stats := make([]lbm.Stats, 3)
				errs := make([]error, 3)
				var wg sync.WaitGroup
				for rk := 0; rk < 3; rk++ {
					wg.Add(1)
					go func(rk int) {
						defer wg.Done()
						x, rep, err := prep.MultiplyOpts(a, b, core.ExecOpts{Transport: meshes[rk]})
						if err != nil {
							errs[rk] = err
							return
						}
						outs[rk] = x
						stats[rk] = rep.Stats
					}(rk)
				}
				wg.Wait()
				for rk, err := range errs {
					if err != nil {
						t.Fatalf("rank %d: %v", rk, err)
					}
				}
				merged := matrix.NewSparse(a.N, r)
				for _, x := range outs {
					for i, row := range x.Rows {
						for _, c := range row {
							merged.Set(i, int(c.Col), c.Val)
						}
					}
				}
				if !matrix.Equal(merged, want) {
					t.Error("merged distributed product differs from the single-process product")
				}
				if got := lbm.MergeStats(stats...); !reflect.DeepEqual(got, refRep.Stats) {
					t.Errorf("merged stats = %+v, want %+v", got, refRep.Stats)
				}
				for rk := 0; rk < 3; rk++ {
					if meshes[rk].Counters().Get(CounterBytesSent) <= 0 {
						t.Errorf("rank %d moved no wire bytes", rk)
					}
				}
			})
		}
	}
}

// TestWorkerCoordinator runs the whole process protocol in-process: three
// workers serving on loopback listeners, one coordinator shipping the plan
// and values, partial results merged and checked against the in-process
// product.
func TestWorkerCoordinator(t *testing.T) {
	addrs := make([]string, 3)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		go Serve(l, WorkerOptions{PeerTimeout: 10 * time.Second})
	}

	for _, alg := range []string{"lemma31", "theorem42"} {
		t.Run(alg, func(t *testing.T) {
			prep, a, b, want := prepCase(t, alg, ring.Real{}, 32, 3)
			res, err := Run(RunConfig{
				Workers: addrs,
				Prep:    prep,
				A:       a,
				B:       b,
				N:       a.N,
				Ring:    "real",
			})
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(res.X, want) {
				t.Error("distributed product differs from the in-process product")
			}
			_, rep, err := prep.Multiply(a, b)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.Stats, rep.Stats) {
				t.Errorf("merged stats = %+v, want %+v", res.Stats, rep.Stats)
			}
			if res.Counters[CounterBytesSent] <= 0 {
				t.Errorf("net/bytes_sent = %d, want > 0", res.Counters[CounterBytesSent])
			}
		})
	}
}

// TestFrameLimits pins the framing error paths: an oversized length prefix
// is rejected before any allocation, and a truncated body surfaces as an
// error rather than a hang or panic.
func TestFrameLimits(t *testing.T) {
	c1, c2 := net.Pipe()
	defer c1.Close()
	defer c2.Close()
	go func() {
		c1.Write([]byte{0xff, 0xff, 0xff, 0xff})
	}()
	c2.SetReadDeadline(time.Now().Add(time.Second))
	var f roundFrame
	if err := readFrame(c2, &f); err == nil {
		t.Fatal("oversized frame length was accepted")
	}

	c3, c4 := net.Pipe()
	defer c4.Close()
	go func() {
		// Length says 100 bytes, then the connection dies after 3.
		c3.Write([]byte{0, 0, 0, 100, 1, 2, 3})
		c3.Close()
	}()
	c4.SetReadDeadline(time.Now().Add(time.Second))
	if err := readFrame(c4, &f); err == nil {
		t.Fatal("truncated frame was accepted")
	}
}
