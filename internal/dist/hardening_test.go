package dist

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// TestPlanCacheLRU pins the cache mechanics: hits refresh recency, the
// oldest entry past the bound is evicted, and a zero bound disables the
// cache entirely.
func TestPlanCacheLRU(t *testing.T) {
	prep, _, _, _ := prepCase(t, "lemma31", ring.Real{}, 16, 2)
	c := newPlanCache(2)
	c.put("a", prep)
	c.put("b", prep)
	if _, ok := c.get("a"); !ok {
		t.Fatal("entry a missing")
	}
	// a is now most recent; adding c must evict b.
	c.put("c", prep)
	if _, ok := c.get("b"); ok {
		t.Fatal("entry b survived past the bound")
	}
	if _, ok := c.get("a"); !ok {
		t.Fatal("recently-used entry a was evicted")
	}
	if c.len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.len())
	}

	off := newPlanCache(0)
	off.put("a", prep)
	if _, ok := off.get("a"); ok || off.len() != 0 {
		t.Fatal("disabled cache stored an entry")
	}
}

// TestWorkerPlanResolution pins the worker-side cache protocol: a cached
// fingerprint skips the envelope (hit), a missing envelope on a cold cache
// is a typed failure, and an envelope whose self-address disagrees with the
// requested fingerprint is rejected.
func TestWorkerPlanResolution(t *testing.T) {
	prep, _, _, _ := prepCase(t, "lemma31", ring.Real{}, 16, 2)
	fp, err := prep.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	var env bytes.Buffer
	if err := prep.Encode(&env); err != nil {
		t.Fatal(err)
	}

	w := newWorker(WorkerOptions{})
	counters := obsv.NewCounterSet()
	if _, err := w.plan(&jobFrame{Fingerprint: fp}, counters); err == nil {
		t.Fatal("cold cache with no envelope was accepted")
	}
	if counters.Get(CounterPlanMisses) != 1 {
		t.Fatalf("plan misses = %d, want 1", counters.Get(CounterPlanMisses))
	}

	if _, err := w.plan(&jobFrame{Fingerprint: fp, Prepared: env.Bytes()}, counters); err != nil {
		t.Fatalf("decode with envelope: %v", err)
	}
	if _, err := w.plan(&jobFrame{Fingerprint: fp}, counters); err != nil {
		t.Fatalf("warm cache without envelope: %v", err)
	}
	if counters.Get(CounterPlanHits) != 1 {
		t.Fatalf("plan hits = %d, want 1", counters.Get(CounterPlanHits))
	}

	bad := strings.Repeat("0", len(fp))
	if _, err := w.plan(&jobFrame{Fingerprint: bad, Prepared: env.Bytes()}, counters); err == nil {
		t.Fatal("envelope accepted under a mismatched fingerprint")
	}
}

// TestParkReleasedOnFailedJob is the leak regression test: a peer connection
// parked for a job that then fails must be closed and forgotten when the job
// errors, not held for the worker's lifetime.
func TestParkReleasedOnFailedJob(t *testing.T) {
	w := newWorker(WorkerOptions{PeerTimeout: time.Second})
	p1, p2 := net.Pipe()
	defer p2.Close()
	w.park("j1", 1, p1)
	if w.parkedConns() != 1 {
		t.Fatalf("parked = %d, want 1", w.parkedConns())
	}

	cc, cw := net.Pipe()
	defer cw.Close()
	done := make(chan error, 1)
	go func() { done <- w.runJob(cc) }()
	// Rank out of range: the job fails validation before any mesh forms.
	jf := jobFrame{Job: "j1", Rank: 9, Workers: 2, Peers: []string{"a", "b"}, Ring: "real",
		Lanes: mustLanes(t, [][]wireVal{nil}, [][]wireVal{nil})}
	if err := writeFrame(cw, &jf); err != nil {
		t.Fatal(err)
	}
	var rf resultFrame
	cw.SetReadDeadline(time.Now().Add(5 * time.Second))
	if err := readFrame(cw, &rf); err != nil {
		t.Fatal(err)
	}
	if rf.Err == "" {
		t.Fatal("malformed job produced no error reply")
	}
	if err := <-done; err != nil {
		t.Fatalf("runJob: %v", err)
	}
	if w.parkedConns() != 0 {
		t.Fatalf("parked = %d after a failed job, want 0 (leak)", w.parkedConns())
	}
}

// TestParkTTLReap is the other half of the leak fix: a parked connection
// whose job never arrives at this worker is reaped by the TTL sweep.
func TestParkTTLReap(t *testing.T) {
	w := newWorker(WorkerOptions{ParkTTL: 30 * time.Millisecond})
	p1, p2 := net.Pipe()
	defer p2.Close()
	w.park("ghost", 1, p1)
	deadline := time.Now().Add(5 * time.Second)
	for w.parkedConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("parked = %d long past the TTL, want 0", w.parkedConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A claim after the reap times out instead of handing back a closed conn.
	if _, err := w.claim("ghost", 1, 50*time.Millisecond); err == nil {
		t.Fatal("claim returned a reaped connection")
	}
}

// TestParkReplaceClosesOld pins the duplicate-dial path: parking a second
// connection under the same (job, rank) closes the first instead of
// leaking it.
func TestParkReplaceClosesOld(t *testing.T) {
	w := newWorker(WorkerOptions{})
	p1, p2 := net.Pipe()
	defer p2.Close()
	q1, q2 := net.Pipe()
	defer q2.Close()
	w.park("j", 1, p1)
	w.park("j", 1, q1)
	if w.parkedConns() != 1 {
		t.Fatalf("parked = %d, want 1", w.parkedConns())
	}
	p1.SetReadDeadline(time.Now().Add(time.Second))
	if _, err := p1.Read(make([]byte, 1)); err == nil {
		t.Fatal("replaced connection still open")
	}
}

// TestClaimTimeoutWakes pins that a claim with no matching park returns at
// its deadline instead of blocking on the condition variable forever (run
// under -race in CI).
func TestClaimTimeoutWakes(t *testing.T) {
	w := newWorker(WorkerOptions{})
	start := time.Now()
	_, err := w.claim("nojob", 1, 100*time.Millisecond)
	if err == nil {
		t.Fatal("claim with no parked connection succeeded")
	}
	if elapsed := time.Since(start); elapsed > 3*time.Second {
		t.Fatalf("claim took %v to time out, want ~100ms", elapsed)
	}
}

// TestDialRetryDeadline pins that dialRetry gives up at its deadline when
// nothing ever listens.
func TestDialRetryDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close() // the port now refuses
	start := time.Now()
	if _, err := dialRetry(addr, 300*time.Millisecond); err == nil {
		t.Fatal("dialRetry to a dead address succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("dialRetry took %v past a 300ms deadline", elapsed)
	}
}

// TestExecuteRejectsMalformedJobs pins the job-frame validation: bad ranks,
// peer-count mismatches, lane mismatches and bad partition tables must all
// fail before any mesh forms.
func TestExecuteRejectsMalformedJobs(t *testing.T) {
	lane := func(t *testing.T) []byte { return mustLanes(t, [][]wireVal{nil}, [][]wireVal{nil}) }
	for _, tc := range []struct {
		name string
		jf   func(t *testing.T) jobFrame
	}{
		{"rank out of range", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 2, Workers: 2, Peers: []string{"a", "b"}, Lanes: lane(t)}
		}},
		{"negative rank", func(t *testing.T) jobFrame {
			return jobFrame{Rank: -1, Workers: 2, Peers: []string{"a", "b"}, Lanes: lane(t)}
		}},
		{"peer count mismatch", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 0, Workers: 3, Peers: []string{"a", "b"}, Lanes: lane(t)}
		}},
		{"no lanes", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 0, Workers: 2, Peers: []string{"a", "b"}}
		}},
		{"empty lane payload", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 0, Workers: 2, Peers: []string{"a", "b"}, Lanes: mustLanes(t, nil, nil)}
		}},
		{"lane mismatch", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 0, Workers: 2, Peers: []string{"a", "b"}, Lanes: mustLanes(t, [][]wireVal{nil, nil}, [][]wireVal{nil})}
		}},
		{"short table", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 0, Workers: 2, Peers: []string{"a", "b"}, N: 8, Table: []uint16{0, 1}, Lanes: lane(t)}
		}},
		{"table names a ghost rank", func(t *testing.T) jobFrame {
			return jobFrame{Rank: 0, Workers: 2, Peers: []string{"a", "b"}, N: 2, Table: []uint16{0, 7}, Lanes: lane(t)}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			w := newWorker(WorkerOptions{})
			jf := tc.jf(t)
			if _, _, err := w.execute(&jf, obsv.NewCounterSet()); err == nil {
				t.Fatal("malformed job frame was accepted")
			}
		})
	}
}

// TestMeshDuplicateDestination pins the one-receive-per-round contract on
// the socket transport: a duplicate self-owned destination fails at Send,
// and two remote ranks addressing the same node fail at the owner's Deliver
// with the typed error (the regression was both paths silently clobbering
// the first payload).
func TestMeshDuplicateDestination(t *testing.T) {
	t.Run("self", func(t *testing.T) {
		meshes, stop, err := NewLocalMesh(2)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		if err := meshes[0].Send(0, 0, []ring.Value{1}); err != nil {
			t.Fatal(err)
		}
		if err := meshes[0].Send(0, 0, []ring.Value{2}); !errors.Is(err, lbm.ErrDuplicateDelivery) {
			t.Fatalf("second self-owned send = %v, want ErrDuplicateDelivery", err)
		}
	})
	t.Run("remote", func(t *testing.T) {
		meshes, stop, err := NewLocalMesh(3)
		if err != nil {
			t.Fatal(err)
		}
		defer stop()
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for rk := 1; rk <= 2; rk++ {
			wg.Add(1)
			go func(rk int) {
				defer wg.Done()
				// Node 0 lives on rank 0; both remote ranks address it.
				if err := meshes[rk].Send(0, 0, []ring.Value{float64(rk)}); err != nil {
					errs[rk] = err
					return
				}
				_, errs[rk] = meshes[rk].Deliver(0)
			}(rk)
		}
		_, err = meshes[0].Deliver(0)
		wg.Wait()
		if !errors.Is(err, lbm.ErrDuplicateDelivery) {
			t.Fatalf("owner's Deliver = %v, want ErrDuplicateDelivery", err)
		}
		for rk := 1; rk <= 2; rk++ {
			if errs[rk] != nil {
				t.Errorf("rank %d: %v", rk, errs[rk])
			}
		}
		if meshes[0].Err() == nil {
			t.Error("duplicate delivery did not mark the mesh dead")
		}
	})
}

// TestMeshDeadAfterError pins the sticky lifecycle: a Deliver error leaves
// the stream positions undefined, so every later Send and Deliver on that
// endpoint must fail fast with the original error instead of desyncing the
// next round (the regression was a poisoned mesh answering later rounds
// with confusing round-tag mismatches).
func TestMeshDeadAfterError(t *testing.T) {
	meshes, stop, err := NewLocalMesh(2)
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	var wg sync.WaitGroup
	var err1 error
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Rank 1 answers with round tag 5 while rank 0 expects round 0.
		_, err1 = meshes[1].Deliver(5)
	}()
	_, err0 := meshes[0].Deliver(0)
	wg.Wait()
	if err0 == nil || err1 == nil {
		t.Fatalf("desynced rounds delivered cleanly: rank0=%v rank1=%v", err0, err1)
	}
	if meshes[0].Err() == nil {
		t.Fatal("Deliver error did not mark the mesh dead")
	}
	if err := meshes[0].Send(1, 1, []ring.Value{1}); err == nil {
		t.Fatal("Send on a dead mesh succeeded")
	}
	if _, err := meshes[0].Deliver(1); err == nil {
		t.Fatal("Deliver on a dead mesh succeeded")
	}
}

// TestCoordinatorPlanCacheAndBatch drives the full process protocol twice
// against one warm worker set: the second run must be served from the plan
// cache (dist/plan_hits ≥ 1), and — batched, under the balanced partition —
// its merged lanes must equal the per-lane in-process products.
func TestCoordinatorPlanCacheAndBatch(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		addrs[i] = l.Addr().String()
		go Serve(l, WorkerOptions{PeerTimeout: 10 * time.Second})
	}
	prep, a, b, want := prepCase(t, "lemma31", ring.Real{}, 32, 3)

	res, err := Run(RunConfig{Workers: addrs, Prep: prep, A: a, B: b, N: a.N, Ring: "real"})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(res.X, want) {
		t.Error("first run's product differs from the in-process product")
	}
	if res.Counters[CounterPlanMisses] != int64(len(addrs)) {
		t.Errorf("first run plan misses = %d, want %d", res.Counters[CounterPlanMisses], len(addrs))
	}

	// Second job, batched and balanced, same plan: every worker holds the
	// fingerprint now.
	as := []*matrix.Sparse{a, matrix.Random(a.Support(), ring.Real{}, 77)}
	bs := []*matrix.Sparse{b, matrix.Random(b.Support(), ring.Real{}, 88)}
	res2, err := Run(RunConfig{
		Workers: addrs, Prep: prep, As: as, Bs: bs, N: a.N, Ring: "real",
		Partition: PartitionBalanced,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Counters[CounterPlanHits] < 1 {
		t.Errorf("warm run plan hits = %d, want ≥ 1", res2.Counters[CounterPlanHits])
	}
	if res2.Table == nil {
		t.Error("balanced run reported no partition table")
	}
	if len(res2.Xs) != 2 {
		t.Fatalf("got %d lanes, want 2", len(res2.Xs))
	}
	for l := range as {
		wantL, _, err := prep.Multiply(as[l], bs[l])
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(res2.Xs[l], wantL) {
			t.Errorf("lane %d differs from its in-process product", l)
		}
	}
	if len(res2.PerRankCounters) != len(addrs) {
		t.Fatalf("per-rank counters cover %d ranks, want %d", len(res2.PerRankCounters), len(addrs))
	}
}

// TestRunValidation pins the coordinator's input contract: both value
// forms at once, missing lanes, and unknown partitions are rejected before
// any worker is dialed.
func TestRunValidation(t *testing.T) {
	prep, a, b, _ := prepCase(t, "lemma31", ring.Real{}, 16, 2)
	addrs := []string{"127.0.0.1:1", "127.0.0.1:2"}
	cases := []RunConfig{
		{Workers: addrs, Prep: prep, A: a, B: b, As: []*matrix.Sparse{a}, Bs: []*matrix.Sparse{b}, N: a.N, Ring: "real"},
		{Workers: addrs, Prep: prep, N: a.N, Ring: "real"},
		{Workers: addrs, Prep: prep, As: []*matrix.Sparse{a}, Bs: []*matrix.Sparse{b, b}, N: a.N, Ring: "real"},
		{Workers: addrs, Prep: prep, A: a, B: b, N: a.N, Ring: "real", Partition: "zigzag"},
		{Workers: addrs, Prep: prep, A: a, B: b, N: a.N, Ring: "real", Table: []uint16{9}},
		{Workers: addrs[:1], Prep: prep, A: a, B: b, N: a.N, Ring: "real"},
	}
	for i, cfg := range cases {
		if _, err := Run(cfg); err == nil {
			t.Errorf("case %d: invalid config was accepted", i)
		}
	}
}
