package dist

import (
	"container/list"
	"sync"

	"lbmm/internal/core"
)

// Counter names the worker charges to each job's counter set for its plan
// cache, surfaced in the coordinator's run report (dist.RunResult.Counters
// and `lbmm run` JSON).
const (
	// CounterPlanHits counts jobs whose prepared plan was served from the
	// worker's fingerprint-keyed cache, skipping the envelope gob decode.
	CounterPlanHits = "dist/plan_hits"
	// CounterPlanMisses counts jobs that had to decode the shipped envelope.
	CounterPlanMisses = "dist/plan_misses"
)

// planCache is a worker-wide LRU of decoded core.Prepared plans keyed by
// their content fingerprint. A prepared plan is immutable and safe for
// concurrent use, so one decoded instance serves every job that names the
// same fingerprint — repeat jobs skip the gob decode entirely, which for
// compiled envelopes dominates the per-job setup cost.
type planCache struct {
	mu  sync.Mutex
	max int
	ll  *list.List // front = most recently used; values are *planEntry
	idx map[string]*list.Element
}

type planEntry struct {
	fp   string
	prep *core.Prepared
}

// newPlanCache builds a cache holding at most max plans; max <= 0 disables
// caching (every lookup misses, nothing is stored).
func newPlanCache(max int) *planCache {
	return &planCache{max: max, ll: list.New(), idx: make(map[string]*list.Element)}
}

// get returns the cached plan for fp and marks it most recently used.
func (c *planCache) get(fp string) (*core.Prepared, bool) {
	if c.max <= 0 || fp == "" {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[fp]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*planEntry).prep, true
}

// put stores a decoded plan under fp, evicting the least recently used
// entry past the cache bound.
func (c *planCache) put(fp string, prep *core.Prepared) {
	if c.max <= 0 || fp == "" || prep == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[fp]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*planEntry).prep = prep
		return
	}
	c.idx[fp] = c.ll.PushFront(&planEntry{fp: fp, prep: prep})
	for c.ll.Len() > c.max {
		el := c.ll.Back()
		c.ll.Remove(el)
		delete(c.idx, el.Value.(*planEntry).fp)
	}
}

// len reports the number of cached plans.
func (c *planCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
