package dist

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
)

// RunConfig describes one coordinated distributed multiplication.
type RunConfig struct {
	// Workers are the worker addresses; worker i runs rank i. At least 2.
	Workers []string
	// Prep is the prepared multiplication to distribute (compiled engine —
	// the envelope only carries the compiled form).
	Prep *core.Prepared
	// A, B are the value sets; N their dimension; Ring the semiring name
	// the workers resolve (matrix.RingByName).
	A, B *matrix.Sparse
	N    int
	Ring string
	// Job names the run on the wire; "" draws a random ID.
	Job string
	// DialTimeout bounds the per-worker dial retry window (0 means 15s);
	// ResultTimeout the wait for each worker's result frame (0 means 120s).
	DialTimeout   time.Duration
	ResultTimeout time.Duration
}

// RunResult is the merged outcome of a distributed multiplication.
type RunResult struct {
	// X is the full product, merged from the disjoint per-rank partials.
	X *matrix.Sparse
	// Stats is the whole-run view (lbm.MergeStats over the partitions);
	// PerRank keeps each worker's own partition.
	Stats   lbm.Stats
	PerRank []lbm.Stats
	// Counters sums every worker's transport counters (net/bytes_sent,
	// net/round_ns, net/flushes).
	Counters map[string]int64
}

// Run coordinates one distributed multiplication: it ships the prepared
// plan and the values to every worker, waits for all partial results, and
// merges them. A typed fault detected by the workers comes back as the
// *lbm.ErrFault itself (all ranks must agree on it — the walk is
// deterministic and faults strike before any frame leaves a sender).
func Run(cfg RunConfig) (*RunResult, error) {
	if len(cfg.Workers) < 2 {
		return nil, fmt.Errorf("dist: a distributed run needs at least 2 workers, got %d", len(cfg.Workers))
	}
	if cfg.Prep == nil || cfg.A == nil || cfg.B == nil {
		return nil, fmt.Errorf("dist: run needs a prepared plan and both value sets")
	}
	r, err := matrix.RingByName(cfg.Ring)
	if err != nil {
		return nil, err
	}
	job := cfg.Job
	if job == "" {
		var raw [8]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, err
		}
		job = hex.EncodeToString(raw[:])
	}
	dialTO := cfg.DialTimeout
	if dialTO <= 0 {
		dialTO = 15 * time.Second
	}
	resultTO := cfg.ResultTimeout
	if resultTO <= 0 {
		resultTO = 120 * time.Second
	}

	var plan bytes.Buffer
	if err := cfg.Prep.Encode(&plan); err != nil {
		return nil, err
	}
	aVals, bVals := entriesOf(cfg.A), entriesOf(cfg.B)

	workers := len(cfg.Workers)
	results := make([]*resultFrame, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rk, addr := range cfg.Workers {
		wg.Add(1)
		go func(rk int, addr string) {
			defer wg.Done()
			results[rk], errs[rk] = runRank(cfg, job, rk, addr, plan.Bytes(), aVals, bVals, dialTO, resultTO)
		}(rk, addr)
	}
	wg.Wait()
	for rk, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d (%s): %w", rk, cfg.Workers[rk], err)
		}
	}

	// Every rank walks the identical plan, so fault detection is all-or-none
	// and the provenance must agree rank for rank.
	var fault *lbm.ErrFault
	for rk, rf := range results {
		switch {
		case rf.Err != "":
			return nil, fmt.Errorf("dist: rank %d failed: %s", rk, rf.Err)
		case rf.Fault != nil && fault == nil:
			fault = rf.Fault
		case rf.Fault != nil && *rf.Fault != *fault:
			return nil, fmt.Errorf("dist: ranks disagree on the detected fault: %+v vs %+v", fault, rf.Fault)
		case rf.Fault == nil && fault != nil:
			return nil, fmt.Errorf("dist: rank %d saw no fault while others detected %+v", rk, fault)
		}
	}
	if fault != nil {
		// Verify the trailing ranks agreed too (the loop above only checks
		// ranks after the first detection); then surface the typed fault.
		for rk, rf := range results {
			if rf.Fault == nil {
				return nil, fmt.Errorf("dist: rank %d saw no fault while others detected %+v", rk, fault)
			}
		}
		return nil, fault
	}

	out := &RunResult{
		X:        matrix.NewSparse(cfg.N, r),
		PerRank:  make([]lbm.Stats, workers),
		Counters: make(map[string]int64),
	}
	for rk, rf := range results {
		for _, e := range rf.X {
			out.X.Set(int(e.I), int(e.J), e.V)
		}
		out.PerRank[rk] = rf.Stats
		for k, v := range rf.Counters {
			out.Counters[k] += v
		}
	}
	out.Stats = lbm.MergeStats(out.PerRank...)
	return out, nil
}

// runRank ships the job to one worker and reads back its partial result.
func runRank(cfg RunConfig, job string, rk int, addr string, plan []byte, aVals, bVals []wireVal, dialTO, resultTO time.Duration) (*resultFrame, error) {
	conn, err := dialRetry(addr, dialTO)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeFrame(conn, &helloFrame{Kind: "job", Job: job}); err != nil {
		return nil, err
	}
	jf := jobFrame{
		Job:      job,
		Rank:     rk,
		Workers:  len(cfg.Workers),
		Peers:    cfg.Workers,
		Ring:     cfg.Ring,
		N:        cfg.N,
		Prepared: plan,
		A:        aVals,
		B:        bVals,
	}
	if err := writeFrame(conn, &jf); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(resultTO))
	var rf resultFrame
	if err := readFrame(conn, &rf); err != nil {
		return nil, fmt.Errorf("waiting for result: %w", err)
	}
	if rf.Job != job || rf.Rank != rk {
		return nil, fmt.Errorf("mismatched result frame: job %s rank %d", rf.Job, rf.Rank)
	}
	return &rf, nil
}
