package dist

import (
	"bytes"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
)

// PartitionModulo and PartitionBalanced name the partition strategies a
// coordinated run can request (RunConfig.Partition, `lbmm run -partition`).
const (
	PartitionModulo   = "modulo"
	PartitionBalanced = "balanced"
)

// RunConfig describes one coordinated distributed multiplication.
type RunConfig struct {
	// Workers are the worker addresses; worker i runs rank i. At least 2.
	Workers []string
	// Prep is the prepared multiplication to distribute (compiled engine —
	// the envelope only carries the compiled form).
	Prep *core.Prepared
	// A, B are the value sets; N their dimension; Ring the semiring name
	// the workers resolve (matrix.RingByName). For a batched run set As/Bs
	// instead: lane l computes As[l]·Bs[l] through one shared mesh walk.
	// Exactly one of (A, B) and (As, Bs) must be set.
	A, B   *matrix.Sparse
	As, Bs []*matrix.Sparse
	N      int
	Ring   string
	// Partition selects node ownership: "" or PartitionModulo for the
	// node-count map, PartitionBalanced to bin nodes by the per-node
	// SendLoad/RecvLoad of the compiled plan (greedy LPT, BalancedTable).
	// Table, when non-nil, overrides both with an explicit assignment.
	Partition string
	Table     []uint16
	// Job names the run on the wire; "" draws a random ID.
	Job string
	// AuthToken is the fleet's shared secret, sent in every hello frame.
	// Workers started with -auth-token reject hellos that do not carry it.
	AuthToken string
	// DialTimeout bounds the per-worker dial retry window (0 means 15s);
	// ResultTimeout the wait for each worker's result frame (0 means 120s).
	DialTimeout   time.Duration
	ResultTimeout time.Duration
}

// RunResult is the merged outcome of a distributed multiplication.
type RunResult struct {
	// X is the full product of lane 0, merged from the disjoint per-rank
	// partials; Xs holds every lane of a batched run (len 1 otherwise).
	X  *matrix.Sparse
	Xs []*matrix.Sparse
	// Stats is the whole-run view (lbm.MergeStats over the partitions);
	// PerRank keeps each worker's own partition.
	Stats   lbm.Stats
	PerRank []lbm.Stats
	// Counters sums every worker's transport and plan-cache counters
	// (net/bytes_sent, net/round_ns, net/flushes, dist/plan_hits,
	// dist/plan_misses); PerRankCounters keeps each worker's own set, so a
	// caller can see the per-rank communication balance the partition
	// achieved.
	Counters        map[string]int64
	PerRankCounters []map[string]int64
	// Table is the node→rank assignment the run used (nil = modulo).
	Table []uint16
}

// Run coordinates one distributed multiplication: it ships the prepared
// plan and the values to every worker, waits for all partial results, and
// merges them. A typed fault detected by the workers comes back as the
// *lbm.ErrFault itself (all ranks must agree on it — the walk is
// deterministic and faults strike before any frame leaves a sender).
func Run(cfg RunConfig) (*RunResult, error) {
	if len(cfg.Workers) < 2 {
		return nil, fmt.Errorf("dist: a distributed run needs at least 2 workers, got %d", len(cfg.Workers))
	}
	as, bs := cfg.As, cfg.Bs
	if cfg.A != nil || cfg.B != nil {
		if as != nil || bs != nil {
			return nil, fmt.Errorf("dist: run takes either A/B or As/Bs, not both")
		}
		as, bs = []*matrix.Sparse{cfg.A}, []*matrix.Sparse{cfg.B}
	}
	if cfg.Prep == nil || len(as) == 0 || len(as) != len(bs) {
		return nil, fmt.Errorf("dist: run needs a prepared plan and matching value-set lanes")
	}
	for l := range as {
		if as[l] == nil || bs[l] == nil {
			return nil, fmt.Errorf("dist: run lane %d is missing a value set", l)
		}
	}
	r, err := matrix.RingByName(cfg.Ring)
	if err != nil {
		return nil, err
	}
	table := cfg.Table
	if table == nil {
		switch cfg.Partition {
		case "", PartitionModulo:
		case PartitionBalanced:
			send, recv := cfg.Prep.NodeLoads()
			if send == nil {
				return nil, fmt.Errorf("dist: balanced partition needs a compiled plan with a load profile")
			}
			table = BalancedTable(send, recv, len(cfg.Workers))
		default:
			return nil, fmt.Errorf("dist: unknown partition %q (want %q or %q)", cfg.Partition, PartitionModulo, PartitionBalanced)
		}
	}
	if err := ValidateTable(table, len(cfg.Workers)); err != nil {
		return nil, err
	}
	job := cfg.Job
	if job == "" {
		var raw [8]byte
		if _, err := rand.Read(raw[:]); err != nil {
			return nil, err
		}
		job = hex.EncodeToString(raw[:])
	}
	dialTO := cfg.DialTimeout
	if dialTO <= 0 {
		dialTO = 15 * time.Second
	}
	resultTO := cfg.ResultTimeout
	if resultTO <= 0 {
		resultTO = 120 * time.Second
	}

	var plan bytes.Buffer
	if err := cfg.Prep.Encode(&plan); err != nil {
		return nil, err
	}
	fp, err := cfg.Prep.Fingerprint()
	if err != nil {
		return nil, fmt.Errorf("dist: plan fingerprint: %w", err)
	}
	aVals := make([][]wireVal, len(as))
	bVals := make([][]wireVal, len(bs))
	for l := range as {
		aVals[l], bVals[l] = entriesOf(as[l]), entriesOf(bs[l])
	}
	// Serialize the lane values exactly once: every rank's job frame carries
	// the same payload, and only Rank differs between frames.
	lanes, err := encodeLanes(aVals, bVals)
	if err != nil {
		return nil, err
	}

	workers := len(cfg.Workers)
	results := make([]*resultFrame, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for rk, addr := range cfg.Workers {
		wg.Add(1)
		go func(rk int, addr string) {
			defer wg.Done()
			results[rk], errs[rk] = runRank(cfg, job, rk, addr, table, fp, plan.Bytes(), lanes, dialTO, resultTO)
		}(rk, addr)
	}
	wg.Wait()
	for rk, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("dist: rank %d (%s): %w", rk, cfg.Workers[rk], err)
		}
	}

	// Every rank walks the identical plan, so fault detection is all-or-none
	// and the provenance must agree rank for rank.
	var fault *lbm.ErrFault
	for rk, rf := range results {
		switch {
		case rf.Err != "":
			return nil, fmt.Errorf("dist: rank %d failed: %s", rk, rf.Err)
		case rf.Fault != nil && fault == nil:
			fault = rf.Fault
		case rf.Fault != nil && *rf.Fault != *fault:
			return nil, fmt.Errorf("dist: ranks disagree on the detected fault: %+v vs %+v", fault, rf.Fault)
		case rf.Fault == nil && fault != nil:
			return nil, fmt.Errorf("dist: rank %d saw no fault while others detected %+v", rk, fault)
		}
	}
	if fault != nil {
		// Verify the trailing ranks agreed too (the loop above only checks
		// ranks after the first detection); then surface the typed fault.
		for rk, rf := range results {
			if rf.Fault == nil {
				return nil, fmt.Errorf("dist: rank %d saw no fault while others detected %+v", rk, fault)
			}
		}
		return nil, fault
	}

	out := &RunResult{
		Xs:              make([]*matrix.Sparse, len(as)),
		PerRank:         make([]lbm.Stats, workers),
		Counters:        make(map[string]int64),
		PerRankCounters: make([]map[string]int64, workers),
		Table:           table,
	}
	for l := range out.Xs {
		out.Xs[l] = matrix.NewSparse(cfg.N, r)
	}
	for rk, rf := range results {
		if len(rf.X) != len(as) {
			return nil, fmt.Errorf("dist: rank %d returned %d lanes, want %d", rk, len(rf.X), len(as))
		}
		for l, lane := range rf.X {
			for _, e := range lane {
				out.Xs[l].Set(int(e.I), int(e.J), e.V)
			}
		}
		out.PerRank[rk] = rf.Stats
		out.PerRankCounters[rk] = rf.Counters
		for k, v := range rf.Counters {
			out.Counters[k] += v
		}
	}
	out.X = out.Xs[0]
	out.Stats = lbm.MergeStats(out.PerRank...)
	return out, nil
}

// runRank ships the job to one worker and reads back its partial result.
func runRank(cfg RunConfig, job string, rk int, addr string, table []uint16, fp string, plan, lanes []byte, dialTO, resultTO time.Duration) (*resultFrame, error) {
	conn, err := dialRetry(addr, dialTO)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if err := writeFrame(conn, &helloFrame{Kind: "job", Job: job, Token: cfg.AuthToken}); err != nil {
		return nil, err
	}
	jf := jobFrame{
		Job:         job,
		Rank:        rk,
		Workers:     len(cfg.Workers),
		Peers:       cfg.Workers,
		Table:       table,
		Ring:        cfg.Ring,
		N:           cfg.N,
		Fingerprint: fp,
		Prepared:    plan,
		Lanes:       lanes,
	}
	if err := writeFrame(conn, &jf); err != nil {
		return nil, err
	}
	conn.SetReadDeadline(time.Now().Add(resultTO))
	var rf resultFrame
	if err := readFrame(conn, &rf); err != nil {
		return nil, fmt.Errorf("waiting for result: %w", err)
	}
	if rf.Job != job {
		return nil, fmt.Errorf("mismatched result frame: job %s", rf.Job)
	}
	// An error reply may predate rank assignment (an unauthorized hello is
	// refused before the job frame ships); only successful results must
	// echo the rank they computed.
	if rf.Err == "" && rf.Rank != rk {
		return nil, fmt.Errorf("mismatched result frame: rank %d, want %d", rf.Rank, rk)
	}
	return &rf, nil
}
