package obsv

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
)

// SchemaVersion identifies the trace export format. Consumers must check it
// before parsing; the schema is documented field by field in
// docs/OBSERVABILITY.md and only changes with a version bump.
const SchemaVersion = "lbmm.trace.v1"

// Export is the machine-readable form of a Profile.
type Export struct {
	Schema string `json:"schema"`
	// Meta carries caller-supplied context (algorithm, workload, seed…).
	Meta map[string]string `json:"meta,omitempty"`
	// Rounds is the total counted-round count; Messages the total real
	// messages; LocalCopies the total free copies.
	Rounds      int   `json:"rounds"`
	Messages    int64 `json:"messages"`
	LocalCopies int64 `json:"local_copies"`
	// PerRound[i] is the real-message count of counted round i.
	PerRound []int `json:"per_round"`
	// SendLoad[v] / RecvLoad[v] are cumulative per-node real-message loads.
	SendLoad []int64 `json:"send_load"`
	RecvLoad []int64 `json:"recv_load"`
	// MaxSendLoad / MaxRecvLoad are the per-node maxima (the max receive
	// load is itself a round lower bound for the execution).
	MaxSendLoad int64 `json:"max_send_load"`
	MaxRecvLoad int64 `json:"max_recv_load"`
	// Phases is the span tree. Top-level phases tile [0, Rounds) exactly:
	// gaps between instrumented phases are exported as synthetic
	// "(unphased)" entries, so the top-level round counts always sum to
	// Rounds.
	Phases []*ExportSpan `json:"phases"`
	// Marks are the legacy flat boundary labels.
	Marks []MarkEntry `json:"marks,omitempty"`
}

// ExportSpan is one phase in the export tree.
type ExportSpan struct {
	Label string `json:"label"`
	// Start/End delimit the counted-round range [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
	// Rounds == End - Start, inclusive of child phases.
	Rounds int `json:"rounds"`
	// Messages is the real-message volume of the range.
	Messages int64 `json:"messages"`
	// Counters are builder-reported structural metrics.
	Counters map[string]float64 `json:"counters,omitempty"`
	Children []*ExportSpan      `json:"phases,omitempty"`
}

// Export snapshots the profile into its machine-readable form.
func (p *Profile) Export() *Export {
	rounds := p.rounds
	e := &Export{
		Schema:   SchemaVersion,
		Rounds:   len(rounds),
		Messages: p.Messages(),
		PerRound: p.PerRoundMessages(),
		SendLoad: p.SendLoad(),
		RecvLoad: p.RecvLoad(),
		Marks:    p.Marks(),
	}
	for _, r := range rounds {
		e.LocalCopies += int64(r.LocalCopies)
	}
	for _, l := range e.SendLoad {
		if l > e.MaxSendLoad {
			e.MaxSendLoad = l
		}
	}
	for _, l := range e.RecvLoad {
		if l > e.MaxRecvLoad {
			e.MaxRecvLoad = l
		}
	}
	root := p.Root()
	for _, c := range root.Children {
		e.Phases = append(e.Phases, exportSpan(c, rounds))
	}
	e.Phases = fillGaps(e.Phases, 0, len(rounds), rounds)
	return e
}

func exportSpan(s *Span, rounds []RoundSample) *ExportSpan {
	out := &ExportSpan{
		Label:    s.Label,
		Start:    s.Start,
		End:      s.End,
		Rounds:   s.Rounds(),
		Messages: s.MessagesIn(rounds),
		Counters: s.Counters,
	}
	for _, c := range s.Children {
		out.Children = append(out.Children, exportSpan(c, rounds))
	}
	return out
}

// fillGaps inserts synthetic "(unphased)" spans so the returned list tiles
// [lo, hi) exactly. Input spans must be in order and non-overlapping (the
// machine opens them sequentially, so they are by construction).
func fillGaps(spans []*ExportSpan, lo, hi int, rounds []RoundSample) []*ExportSpan {
	var out []*ExportSpan
	at := lo
	gap := func(from, to int) {
		if to <= from {
			return
		}
		g := &ExportSpan{Label: "(unphased)", Start: from, End: to, Rounds: to - from}
		g.Messages = (&Span{Start: from, End: to}).MessagesIn(rounds)
		out = append(out, g)
	}
	for _, s := range spans {
		gap(at, s.Start)
		out = append(out, s)
		if s.End > at {
			at = s.End
		}
	}
	gap(at, hi)
	return out
}

// WriteJSON writes the export as indented JSON.
func (e *Export) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(e)
}

// WriteCSV writes the phase tree as flat CSV rows: one row per phase with
// its slash-joined path, depth, round range, round and message totals, and
// its counters as semicolon-joined key=value pairs.
func (e *Export) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"path", "depth", "start", "end", "rounds", "messages", "counters"}); err != nil {
		return err
	}
	var walk func(prefix string, depth int, spans []*ExportSpan) error
	walk = func(prefix string, depth int, spans []*ExportSpan) error {
		for _, s := range spans {
			path := s.Label
			if prefix != "" {
				path = prefix + "/" + s.Label
			}
			row := []string{
				path,
				strconv.Itoa(depth),
				strconv.Itoa(s.Start),
				strconv.Itoa(s.End),
				strconv.Itoa(s.Rounds),
				strconv.FormatInt(s.Messages, 10),
				formatCounters(s.Counters),
			}
			if err := cw.Write(row); err != nil {
				return err
			}
			if err := walk(path, depth+1, s.Children); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk("", 0, e.Phases); err != nil {
		return err
	}
	cw.Flush()
	return cw.Error()
}

func formatCounters(cs map[string]float64) string {
	if len(cs) == 0 {
		return ""
	}
	keys := sortedKeys(cs)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += ";"
		}
		out += fmt.Sprintf("%s=%g", k, cs[k])
	}
	return out
}
