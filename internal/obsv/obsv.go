// Package obsv is the observability layer of the simulator: a Collector
// interface that the lbm executor feeds per-round events into, and a
// standard Profile implementation that turns those events into a
// phase-annotated round profile with per-node load accounting,
// machine-readable JSON/CSV export, and a human-readable summary.
//
// Every claim this repository reproduces is a round count and its growth
// exponent, so the unit of observability is the *counted round* (a round
// with at least one real cross-node message — rounds of only local copies
// are free in the model and are not counted). A Profile records, per
// counted round, the message volume; per node, the cumulative send and
// receive loads; and, as a tree of phase spans, which builder or algorithm
// phase each round belongs to.
//
// Phase naming convention (documented in docs/OBSERVABILITY.md): a label is
// one short path segment such as "phase1", "lemma31", "A/anchor" or
// "routing/hrel"; the full identity of a phase is the "/"-joined path of
// its ancestry in the span tree. Packages use these prefixes:
//
//	algo     phase1, phase2, unsupported/…
//	fewtri   lemma31 with children A/anchor, A/spread, A/forward,
//	         B/…, products, out/route, out/aggregate, out/deliver
//	cluster  cluster/batch
//	dense    dense/cube, dense/strassen with children init, down.L<ℓ>,
//	         leaf, up.L<ℓ>, final
//	routing  routing/hrel, routing/broadcast, routing/convergecast
//	vnet     vnet/compiled
//
// Collectors are invoked from the machine's driving goroutine only (the
// goroutine engine parallelizes payload gathering and delivery, never the
// accounting), so implementations need not be thread-safe.
package obsv

// Collector receives execution events. All methods must tolerate being
// called in any order; a nil Collector on the machine is the documented
// zero-overhead fast path, so implementations are never wrapped in
// indirection beyond a single interface call.
type Collector interface {
	// BeginPhase opens a nested phase span at the current round position.
	BeginPhase(label string)
	// EndPhase closes the innermost open span (no-op at the root).
	EndPhase()
	// Mark attaches a flat boundary label that anchors to the *next*
	// counted round (the legacy lbm.Trace annotation style). Marks that
	// never see another counted round are preserved as trailing marks.
	Mark(label string)
	// OnRound reports one counted round: its real cross-node message count
	// (≥ 1) and the number of free local copies that rode along.
	OnRound(messages, localCopies int)
	// OnSend reports one real message of the current round, for per-node
	// load accounting.
	OnSend(from, to int32)
	// Counter adds delta to a named scalar metric on the innermost open
	// span — builder-reported structure (κ, cluster counts, tree depths)
	// that rounds alone cannot show.
	Counter(name string, delta float64)
}
