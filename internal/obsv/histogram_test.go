package obsv

import (
	"sync"
	"testing"
)

// TestHistogramBuckets pins the cumulative-bucket contract: an observation
// lands in every bucket whose bound it does not exceed, and over-range
// values appear only in count/sum.
func TestHistogramBuckets(t *testing.T) {
	set := NewCounterSet()
	h := NewHistogram(set, "batch/size", []int64{1, 4, 16})
	for _, v := range []int64{1, 3, 4, 17} {
		h.Observe(v)
	}
	want := map[string]int64{
		"batch/size/le_1":  1,
		"batch/size/le_4":  3,
		"batch/size/le_16": 3,
		"batch/size/count": 4,
		"batch/size/sum":   25,
	}
	for name, v := range want {
		if got := set.Get(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

// TestHistogramConcurrent drives Observe from many goroutines under the
// race detector; totals must be exact.
func TestHistogramConcurrent(t *testing.T) {
	set := NewCounterSet()
	h := NewHistogram(set, "h", []int64{8})
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				h.Observe(1)
			}
		}()
	}
	wg.Wait()
	if got := set.Get("h/count"); got != 3200 {
		t.Errorf("count = %d, want 3200", got)
	}
	if got := set.Get("h/le_8"); got != 3200 {
		t.Errorf("le_8 = %d, want 3200", got)
	}
}
