package obsv

import (
	"bytes"
	"encoding/csv"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestSpanNesting(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("outer")
	p.OnRound(3, 0)
	p.BeginPhase("inner")
	p.OnRound(2, 1)
	p.OnRound(1, 0)
	p.EndPhase()
	p.BeginPhase("empty")
	p.EndPhase()
	p.OnRound(4, 0)
	p.EndPhase()

	root := p.Root()
	if len(root.Children) != 1 {
		t.Fatalf("root children = %d", len(root.Children))
	}
	outer := root.Children[0]
	if outer.Label != "outer" || outer.Start != 0 || outer.End != 4 {
		t.Errorf("outer = %q [%d,%d)", outer.Label, outer.Start, outer.End)
	}
	if len(outer.Children) != 2 {
		t.Fatalf("outer children = %d", len(outer.Children))
	}
	inner := outer.Children[0]
	if inner.Label != "inner" || inner.Start != 1 || inner.End != 3 {
		t.Errorf("inner = %q [%d,%d)", inner.Label, inner.Start, inner.End)
	}
	// A zero-round phase is preserved, not dropped.
	empty := outer.Children[1]
	if empty.Label != "empty" || empty.Start != 3 || empty.End != 3 || empty.Rounds() != 0 {
		t.Errorf("empty = %q [%d,%d)", empty.Label, empty.Start, empty.End)
	}
	if got := inner.MessagesIn(p.Rounds()); got != 3 {
		t.Errorf("inner messages = %d, want 3", got)
	}
}

func TestSpanNestingNeverUnderflows(t *testing.T) {
	p := NewProfile()
	p.EndPhase() // extra EndPhase at root must be a no-op
	p.BeginPhase("a")
	p.EndPhase()
	p.EndPhase()
	p.BeginPhase("b")
	p.OnRound(1, 0)
	p.EndPhase()
	root := p.Root()
	if len(root.Children) != 2 {
		t.Fatalf("children = %d, want 2 (a and b as siblings)", len(root.Children))
	}
	if root.Children[1].Label != "b" || root.Children[1].Start != 0 {
		t.Errorf("b = %+v", root.Children[1])
	}
}

func TestRootSnapshotClosesOpenSpans(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("open")
	p.OnRound(1, 0)
	root := p.Root()
	if root.Children[0].End != 1 {
		t.Errorf("mid-run snapshot End = %d, want 1", root.Children[0].End)
	}
	// The live tree must still be open: another round extends the span.
	p.OnRound(1, 0)
	p.EndPhase()
	if got := p.Root().Children[0].End; got != 2 {
		t.Errorf("after close End = %d, want 2", got)
	}
}

func TestSendRecvLoadsSumToPerRound(t *testing.T) {
	p := NewProfile()
	send := func(pairs ...[2]int32) {
		for _, pr := range pairs {
			p.OnSend(pr[0], pr[1])
		}
		p.OnRound(len(pairs), 0)
	}
	send([2]int32{0, 1}, [2]int32{2, 3})
	send([2]int32{1, 0})
	send([2]int32{3, 0}, [2]int32{1, 2}, [2]int32{0, 3})

	var perRound int64
	for _, v := range p.PerRoundMessages() {
		perRound += int64(v)
	}
	var sent, recvd int64
	for _, v := range p.SendLoad() {
		sent += v
	}
	for _, v := range p.RecvLoad() {
		recvd += v
	}
	if sent != perRound || recvd != perRound {
		t.Errorf("send=%d recv=%d per-round=%d; all must agree", sent, recvd, perRound)
	}
	if p.SendLoad()[0] != 2 || p.RecvLoad()[0] != 2 || p.RecvLoad()[3] != 2 {
		t.Errorf("loads = %v / %v", p.SendLoad(), p.RecvLoad())
	}
}

func TestMarkCarryForward(t *testing.T) {
	p := NewProfile()
	p.Mark("a")
	p.Mark("b")
	p.OnRound(5, 0)
	p.Mark("tail")

	want := []MarkEntry{
		{Round: 0, Labels: []string{"a", "b"}},
		{Round: 1, Labels: []string{"tail"}},
	}
	if got := p.Marks(); !reflect.DeepEqual(got, want) {
		t.Errorf("marks = %+v, want %+v", got, want)
	}
	// Reading marks must not consume the pending tail.
	if got := p.Marks(); !reflect.DeepEqual(got, want) {
		t.Errorf("second read = %+v, want %+v", got, want)
	}
	// A later round resolves the tail at its recorded position.
	p.OnRound(1, 0)
	want[1] = MarkEntry{Round: 1, Labels: []string{"tail"}}
	if got := p.Marks(); !reflect.DeepEqual(got, want) {
		t.Errorf("after round, marks = %+v, want %+v", got, want)
	}
}

func TestCounterAccumulatesOnCurrentSpan(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("x")
	p.Counter("items", 2)
	p.Counter("items", 3)
	p.EndPhase()
	if got := p.Root().Children[0].Counters["items"]; got != 5 {
		t.Errorf("items = %v, want 5", got)
	}
}

func TestExportGapTiling(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("x")
	p.OnRound(2, 0)
	p.EndPhase()
	p.OnRound(7, 0) // instrumentation gap
	p.BeginPhase("y")
	p.OnRound(1, 0)
	p.EndPhase()

	e := p.Export()
	if e.Schema != SchemaVersion {
		t.Errorf("schema = %q", e.Schema)
	}
	labels := make([]string, len(e.Phases))
	sum := 0
	at := 0
	for i, s := range e.Phases {
		labels[i] = s.Label
		sum += s.Rounds
		if s.Start != at {
			t.Errorf("phase %q starts at %d, want %d (must tile)", s.Label, s.Start, at)
		}
		at = s.End
	}
	if want := []string{"x", "(unphased)", "y"}; !reflect.DeepEqual(labels, want) {
		t.Errorf("labels = %v, want %v", labels, want)
	}
	if sum != e.Rounds || at != e.Rounds {
		t.Errorf("top-level rounds sum to %d, tile to %d; total %d", sum, at, e.Rounds)
	}
	if e.Phases[1].Messages != 7 {
		t.Errorf("(unphased) messages = %d, want 7", e.Phases[1].Messages)
	}
}

func TestExportJSONRoundTrips(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("x")
	p.OnSend(0, 1)
	p.OnRound(1, 2)
	p.Counter("k", 1.5)
	p.EndPhase()
	e := p.Export()
	e.Meta = map[string]string{"algorithm": "test"}

	var buf bytes.Buffer
	if err := e.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Export
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Schema != SchemaVersion || back.Rounds != 1 || back.Messages != 1 || back.LocalCopies != 2 {
		t.Errorf("round-trip = %+v", back)
	}
	if back.Phases[0].Counters["k"] != 1.5 || back.Meta["algorithm"] != "test" {
		t.Errorf("round-trip lost details: %+v", back)
	}
}

func TestExportCSVShape(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("a")
	p.OnRound(1, 0)
	p.BeginPhase("b")
	p.Counter("z", 2)
	p.Counter("y", 1)
	p.OnRound(1, 0)
	p.EndPhase()
	p.EndPhase()

	var buf bytes.Buffer
	if err := p.Export().WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	rows, err := csv.NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 { // header + a + a/b
		t.Fatalf("rows = %d: %v", len(rows), rows)
	}
	if want := []string{"path", "depth", "start", "end", "rounds", "messages", "counters"}; !reflect.DeepEqual(rows[0], want) {
		t.Errorf("header = %v", rows[0])
	}
	if rows[2][0] != "a/b" || rows[2][1] != "1" {
		t.Errorf("nested row = %v, want path a/b at depth 1", rows[2])
	}
	// Counters render sorted, so the CSV is deterministic.
	if rows[2][6] != "y=1;z=2" {
		t.Errorf("counters = %q, want y=1;z=2", rows[2][6])
	}
}

func TestSummaryRendersPhasesAndTotals(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("alpha")
	p.OnRound(4, 0)
	p.BeginPhase("beta")
	p.OnRound(2, 0)
	p.EndPhase()
	p.EndPhase()
	s := p.Summary()
	for _, want := range []string{"alpha", "beta", "total"} {
		if !strings.Contains(s, want) {
			t.Errorf("summary missing %q:\n%s", want, s)
		}
	}
}

func TestReset(t *testing.T) {
	p := NewProfile()
	p.BeginPhase("x")
	p.OnSend(0, 1)
	p.OnRound(1, 0)
	p.Mark("m")
	p.Reset()
	if p.NumRounds() != 0 || len(p.Marks()) != 0 || len(p.SendLoad()) != 0 || len(p.Root().Children) != 0 {
		t.Errorf("reset left state: rounds=%d marks=%v", p.NumRounds(), p.Marks())
	}
	// Still usable after reset.
	p.BeginPhase("y")
	p.OnRound(1, 0)
	p.EndPhase()
	if p.Root().Children[0].Label != "y" {
		t.Error("profile unusable after reset")
	}
}
