package obsv

import (
	"sort"
	"sync"
)

// CounterSet is a thread-safe registry of named int64 metrics. It is the
// obsv-layer primitive behind long-lived components (the serving layer's
// cache and admission counters): unlike a Profile, which observes one
// machine execution from a single goroutine, a CounterSet aggregates events
// from many concurrent requests over the life of a process.
//
// Names follow the same short path-segment convention as phase labels
// (docs/OBSERVABILITY.md); the serving layer's names are documented in
// docs/SERVICE.md. Monotone counters use Add; point-in-time gauges use Set.
type CounterSet struct {
	mu     sync.RWMutex
	counts map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counts: map[string]int64{}}
}

// Add increments the named counter by delta (negative deltas are allowed;
// gauges tracking in-flight work add +1/-1 around the work).
func (s *CounterSet) Add(name string, delta int64) {
	s.mu.Lock()
	s.counts[name] += delta
	s.mu.Unlock()
}

// Set stores an absolute gauge value under the name.
func (s *CounterSet) Set(name string, v int64) {
	s.mu.Lock()
	s.counts[name] = v
	s.mu.Unlock()
}

// Get returns the current value of the named metric (0 if never touched).
func (s *CounterSet) Get(name string) int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.counts[name]
}

// Snapshot returns a copy of every metric at one instant.
func (s *CounterSet) Snapshot() map[string]int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := make(map[string]int64, len(s.counts))
	for k, v := range s.counts {
		out[k] = v
	}
	return out
}

// Names returns the sorted metric names present in the set.
func (s *CounterSet) Names() []string {
	s.mu.RLock()
	defer s.mu.RUnlock()
	names := make([]string, 0, len(s.counts))
	for k := range s.counts {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
