package obsv

import (
	"sort"
	"sync"
	"testing"
)

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Add("hits", 2)
	c.Add("hits", 3)
	c.Set("size", 7)
	if got := c.Get("hits"); got != 5 {
		t.Errorf("hits = %d, want 5", got)
	}
	if got := c.Get("absent"); got != 0 {
		t.Errorf("absent = %d, want 0", got)
	}
	snap := c.Snapshot()
	if snap["hits"] != 5 || snap["size"] != 7 || len(snap) != 2 {
		t.Errorf("snapshot = %v", snap)
	}
	snap["hits"] = 99 // snapshots are copies
	if c.Get("hits") != 5 {
		t.Error("mutating a snapshot leaked into the set")
	}
	names := c.Names()
	sort.Strings(names)
	if len(names) != 2 || names[0] != "hits" || names[1] != "size" {
		t.Errorf("names = %v", names)
	}
}

// TestCounterSetConcurrent is exercised by the CI -race job: many writers,
// one exact total.
func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Add("n", 1)
				_ = c.Snapshot()
			}
		}()
	}
	wg.Wait()
	if got := c.Get("n"); got != 8000 {
		t.Errorf("n = %d, want 8000", got)
	}
}
