package obsv

import (
	"fmt"
	"sort"
	"strings"
)

// Summary renders the profile as a per-phase table: one indented line per
// span with its round extent, message volume, a sparkline of the per-round
// message sizes, and its counters. It is the human-facing counterpart of
// Export.
func (p *Profile) Summary() string {
	rounds := p.rounds
	peak := 0
	for _, r := range rounds {
		if r.Messages > peak {
			peak = r.Messages
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-36s %7s %10s  %-24s %s\n", "phase", "rounds", "messages", "per-round profile", "counters")
	var walk func(s *Span, depth int)
	walk = func(s *Span, depth int) {
		indent := strings.Repeat("  ", depth)
		vals := make([]int, 0, s.Rounds())
		for i := s.Start; i < s.End && i < len(rounds); i++ {
			vals = append(vals, rounds[i].Messages)
		}
		fmt.Fprintf(&b, "%-36s %7d %10d  %-24s %s\n",
			indent+s.Label, s.Rounds(), s.MessagesIn(rounds), sparkline(vals, peak), formatCounters(s.Counters))
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	root := p.Root()
	for _, c := range root.Children {
		walk(c, 0)
	}
	fmt.Fprintf(&b, "%-36s %7d %10d\n", "total", len(rounds), p.Messages())
	return b.String()
}

// sparkline renders up to 24 buckets of round sizes, scaled to the global
// peak so phases are visually comparable.
func sparkline(vals []int, peak int) string {
	if len(vals) == 0 || peak == 0 {
		return ""
	}
	const width = 24
	levels := []rune("▁▂▃▄▅▆▇█")
	buckets := len(vals)
	if buckets > width {
		buckets = width
	}
	out := make([]rune, buckets)
	for i := 0; i < buckets; i++ {
		lo := i * len(vals) / buckets
		hi := (i + 1) * len(vals) / buckets
		if hi == lo {
			hi = lo + 1
		}
		mx := 0
		for _, v := range vals[lo:hi] {
			if v > mx {
				mx = v
			}
		}
		out[i] = levels[mx*(len(levels)-1)/peak]
	}
	return string(out)
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
