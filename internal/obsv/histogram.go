package obsv

import "fmt"

// Histogram counts observations into fixed cumulative buckets, publishing
// through a CounterSet so histogram data rides the same snapshot/scrape
// path as every other service metric. For a histogram named "batch/size"
// with bounds [1 2 4] the set carries:
//
//	batch/size/le_1, batch/size/le_2, batch/size/le_4  cumulative buckets
//	batch/size/count                                   all observations
//	batch/size/sum                                     sum of observed values
//
// (Prometheus-style: each le_B counts observations <= B; values above the
// last bound appear only in count/sum.) Buckets are fixed at construction —
// the CounterSet handles locking, so Observe is safe for concurrent use.
type Histogram struct {
	set    *CounterSet
	bounds []int64
	names  []string // precomputed "<name>/le_<bound>"
	count  string
	sum    string
}

// NewHistogram builds a histogram over the given cumulative bucket bounds,
// which must be sorted ascending. The zero observation set publishes
// nothing; counters appear on first Observe.
func NewHistogram(set *CounterSet, name string, bounds []int64) *Histogram {
	h := &Histogram{
		set:    set,
		bounds: bounds,
		names:  make([]string, len(bounds)),
		count:  name + "/count",
		sum:    name + "/sum",
	}
	for i, b := range bounds {
		h.names[i] = fmt.Sprintf("%s/le_%d", name, b)
	}
	return h
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	for i, b := range h.bounds {
		if v <= b {
			h.set.Add(h.names[i], 1)
		}
	}
	h.set.Add(h.count, 1)
	h.set.Add(h.sum, v)
}
