package obsv

// RoundSample is what a Profile keeps per counted round.
type RoundSample struct {
	// Messages is the number of real cross-node messages in the round.
	Messages int
	// LocalCopies is the number of free From==To copies in the round.
	LocalCopies int
}

// Span is one node of the phase tree: a labelled range of counted rounds
// with optional child spans and builder-reported counters. Start and End
// are counted-round indices, [Start, End); a zero-round phase (one that ran
// but needed no communication) has Start == End and is preserved rather
// than dropped.
type Span struct {
	Label    string
	Start    int
	End      int
	Children []*Span
	Counters map[string]float64

	parent *Span
	open   bool
}

// MarkEntry is one resolved flat mark: Labels anchored at the boundary
// before counted round Round (Round == number of counted rounds for
// trailing marks that never saw another round).
type MarkEntry struct {
	Round  int
	Labels []string
}

// Profile is the standard Collector: it accumulates the full round/phase/
// load picture of one execution. The zero value is not ready; use
// NewProfile.
type Profile struct {
	rounds   []RoundSample
	root     *Span
	cur      *Span
	sendLoad []int64
	recvLoad []int64
	marks    []MarkEntry
	pending  []string
}

// NewProfile returns an empty profile ready to collect.
func NewProfile() *Profile {
	root := &Span{Label: "", open: true}
	return &Profile{root: root, cur: root}
}

var _ Collector = (*Profile)(nil)

// BeginPhase implements Collector.
func (p *Profile) BeginPhase(label string) {
	s := &Span{Label: label, Start: len(p.rounds), End: -1, parent: p.cur, open: true}
	p.cur.Children = append(p.cur.Children, s)
	p.cur = s
}

// EndPhase implements Collector.
func (p *Profile) EndPhase() {
	if p.cur == p.root {
		return
	}
	p.cur.End = len(p.rounds)
	p.cur.open = false
	p.cur = p.cur.parent
}

// Mark implements Collector: the label is carried forward to the next
// counted round, so labels placed before rounds that end up empty (and are
// therefore never counted) merge into the next counted round's boundary
// instead of silently vanishing or mis-anchoring.
func (p *Profile) Mark(label string) {
	p.pending = append(p.pending, label)
}

// OnRound implements Collector.
func (p *Profile) OnRound(messages, localCopies int) {
	if len(p.pending) > 0 {
		p.marks = append(p.marks, MarkEntry{Round: len(p.rounds), Labels: p.pending})
		p.pending = nil
	}
	p.rounds = append(p.rounds, RoundSample{Messages: messages, LocalCopies: localCopies})
}

// OnSend implements Collector.
func (p *Profile) OnSend(from, to int32) {
	p.sendLoad = growTo(p.sendLoad, int(from))
	p.recvLoad = growTo(p.recvLoad, int(to))
	p.sendLoad[from]++
	p.recvLoad[to]++
}

func growTo(xs []int64, idx int) []int64 {
	for len(xs) <= idx {
		xs = append(xs, 0)
	}
	return xs
}

// Counter implements Collector.
func (p *Profile) Counter(name string, delta float64) {
	if p.cur.Counters == nil {
		p.cur.Counters = map[string]float64{}
	}
	p.cur.Counters[name] += delta
}

// Reset empties the profile in place (the lbm machine calls this from its
// own Reset so prepared-plan reruns start from a clean slate).
func (p *Profile) Reset() {
	root := &Span{Label: "", open: true}
	p.rounds = nil
	p.root = root
	p.cur = root
	p.sendLoad = nil
	p.recvLoad = nil
	p.marks = nil
	p.pending = nil
}

// NumRounds returns the number of counted rounds.
func (p *Profile) NumRounds() int { return len(p.rounds) }

// Messages returns the total real-message count.
func (p *Profile) Messages() int64 {
	var total int64
	for _, r := range p.rounds {
		total += int64(r.Messages)
	}
	return total
}

// Rounds returns a copy of the per-round samples.
func (p *Profile) Rounds() []RoundSample {
	return append([]RoundSample(nil), p.rounds...)
}

// PerRoundMessages returns the per-counted-round real message counts — the
// legacy lbm.Trace.PerRound view.
func (p *Profile) PerRoundMessages() []int {
	out := make([]int, len(p.rounds))
	for i, r := range p.rounds {
		out[i] = r.Messages
	}
	return out
}

// SendLoad returns a copy of the cumulative per-node send loads (indexed by
// node id; the slice only extends to the largest node that ever sent).
func (p *Profile) SendLoad() []int64 { return append([]int64(nil), p.sendLoad...) }

// RecvLoad returns a copy of the cumulative per-node receive loads.
func (p *Profile) RecvLoad() []int64 { return append([]int64(nil), p.recvLoad...) }

// Marks returns the resolved marks, including pending trailing marks
// (anchored at NumRounds) without mutating the profile.
func (p *Profile) Marks() []MarkEntry {
	out := append([]MarkEntry(nil), p.marks...)
	if len(p.pending) > 0 {
		out = append(out, MarkEntry{Round: len(p.rounds), Labels: append([]string(nil), p.pending...)})
	}
	return out
}

// Root returns a snapshot of the span tree: a copy in which every span
// still open is closed at the current round position, so exports see a
// well-formed tree even mid-run.
func (p *Profile) Root() *Span {
	return snapshotSpan(p.root, len(p.rounds))
}

func snapshotSpan(s *Span, now int) *Span {
	out := &Span{Label: s.Label, Start: s.Start, End: s.End}
	if s.open || out.End < 0 {
		out.End = now
	}
	if len(s.Counters) > 0 {
		out.Counters = make(map[string]float64, len(s.Counters))
		for k, v := range s.Counters {
			out.Counters[k] = v
		}
	}
	for _, c := range s.Children {
		cc := snapshotSpan(c, now)
		cc.parent = out
		out.Children = append(out.Children, cc)
	}
	return out
}

// Rounds returns the counted-round extent of a span.
func (s *Span) Rounds() int { return s.End - s.Start }

// MessagesIn sums the real messages of rounds [s.Start, s.End) against the
// given per-round samples.
func (s *Span) MessagesIn(rounds []RoundSample) int64 {
	var total int64
	for i := s.Start; i < s.End && i < len(rounds); i++ {
		total += int64(rounds[i].Messages)
	}
	return total
}
