// Package planstore is a disk-backed, content-addressed store of prepared
// multiplication plans — the persistence tier behind the serving layer's
// in-memory cache (docs/PLANSTORE.md).
//
// Every entry is one core.Prepared envelope (core.Encode) stored under its
// core.Fingerprint: equal fingerprints mean core.Prepare is guaranteed to
// produce an equivalent plan, so an entry written by one process can be
// served by any other process of the same build. Entries live in a two-level
// fanout layout, dir/<fp[:2]>/<fp>.prep, written atomically (temp file +
// rename) so readers — including concurrent processes sharing the directory
// — only ever observe complete envelopes.
//
// Trust model: files on disk are outside the process and may be truncated,
// bit-flipped or stored under the wrong name. Every Get re-validates the
// envelope (magic, versions, full structural checks on the embedded
// instruction streams) and re-derives the content address from the decoded
// structure, comparing it against the file name. Anything that fails is
// moved into dir/quarantine — never deleted (it is evidence), never served,
// and never picked up again by Get or GC.
//
// Concurrency: a Store is safe for concurrent use by multiple goroutines,
// and the directory may be shared by multiple processes. The only lock is
// an in-process mutex serializing GC scans with budget enforcement; all
// cross-process coordination rides on rename atomicity.
package planstore

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/obsv"
)

// Counter names published by the store (gauges noted).
const (
	MetricHits        = "store/hits"
	MetricMisses      = "store/misses"
	MetricWrites      = "store/writes"
	MetricGCEvicted   = "store/gc_evicted"
	MetricBytes       = "store/bytes" // gauge: resident entry bytes
	MetricQuarantined = "store/quarantined"
)

// ErrNotFound reports that no entry exists under the fingerprint. Callers
// compile from structure and (usually) write the result back.
var ErrNotFound = errors.New("planstore: plan not found")

// ErrCorrupt wraps any entry failure that caused a quarantine: damaged
// envelope, version from another build generation, or a content address
// that does not match the decoded structure. Like ErrNotFound the remedy is
// to recompile; unlike it, the bad file was preserved under quarantine/.
var ErrCorrupt = errors.New("planstore: entry quarantined")

const (
	entrySuffix   = ".prep"
	quarantineDir = "quarantine"
	fpLen         = 64 // hex-encoded SHA-256
)

// Store is a handle on one plan-store directory. The zero value is not
// usable; call Open.
type Store struct {
	dir string
	// budget bounds the total entry bytes; 0 disables GC.
	budget  int64
	metrics *obsv.CounterSet
	// gcMu serializes in-process GC scans. It deliberately does not cover
	// Get/Put file operations: those are already atomic at the filesystem
	// level, and holding a store-wide lock across plan decoding would
	// serialize the warm path.
	gcMu sync.Mutex
}

// Open ensures dir exists and returns a store over it. budgetBytes bounds
// the total size of resident entries (the least-recently-used entries are
// evicted past it; 0 means unbounded). The metrics set receives the store/*
// counters; nil allocates a private set.
func Open(dir string, budgetBytes int64, metrics *obsv.CounterSet) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("planstore: empty directory")
	}
	if budgetBytes < 0 {
		return nil, fmt.Errorf("planstore: negative byte budget %d", budgetBytes)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	if metrics == nil {
		metrics = obsv.NewCounterSet()
	}
	s := &Store{dir: dir, budget: budgetBytes, metrics: metrics}
	if _, err := s.publishBytes(); err != nil {
		return nil, err
	}
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

// path returns the entry path for a fingerprint (two-level fanout keeps
// directory sizes bounded under many thousands of plans).
func (s *Store) path(fp string) string {
	return filepath.Join(s.dir, fp[:2], fp+entrySuffix)
}

// validFP reports whether fp is a well-formed content address. Anything
// else never touches the filesystem — fingerprints come from request
// hashing, but defense in depth costs one scan.
func validFP(fp string) bool {
	if len(fp) != fpLen {
		return false
	}
	for i := 0; i < len(fp); i++ {
		c := fp[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Get loads, validates and returns the entry under fp. A plain absence
// returns ErrNotFound; a damaged or cross-version entry is moved to
// quarantine and returns an error wrapping ErrCorrupt (and, for version
// mismatches, core.ErrEnvelopeVersion). On success the entry's modification
// time is bumped to now, which is the recency signal GC evicts by.
func (s *Store) Get(fp string) (*core.Prepared, error) {
	if !validFP(fp) {
		return nil, fmt.Errorf("planstore: malformed fingerprint %q", fp)
	}
	f, err := os.Open(s.path(fp))
	if err != nil {
		s.metrics.Add(MetricMisses, 1)
		if errors.Is(err, fs.ErrNotExist) {
			return nil, ErrNotFound
		}
		return nil, fmt.Errorf("planstore: %w", err)
	}
	p, derr := core.DecodePrepared(f)
	f.Close()
	if derr == nil {
		var got string
		if got, derr = p.Fingerprint(); derr == nil && got != fp {
			derr = fmt.Errorf("content address %s does not match entry name", got)
		}
	}
	if derr != nil {
		s.metrics.Add(MetricMisses, 1)
		if qerr := s.quarantine(fp); qerr != nil {
			return nil, fmt.Errorf("%w: %w (quarantine failed: %v)", ErrCorrupt, derr, qerr)
		}
		return nil, fmt.Errorf("%w: %w", ErrCorrupt, derr)
	}
	// Touch for LRU. Best-effort: a failed touch (entry evicted between the
	// read and now) does not invalidate the decoded plan.
	now := time.Now()
	_ = os.Chtimes(s.path(fp), now, now)
	s.metrics.Add(MetricHits, 1)
	return p, nil
}

// Put writes p under fp atomically and enforces the byte budget. The entry
// only becomes visible under its final name once fully written and synced,
// so concurrent readers and writers — same process or not — never observe
// a torn entry; double-writes of the same fingerprint are idempotent by
// content addressing (last rename wins, both contents are equivalent).
func (s *Store) Put(fp string, p *core.Prepared) error {
	if !validFP(fp) {
		return fmt.Errorf("planstore: malformed fingerprint %q", fp)
	}
	if got, err := p.Fingerprint(); err != nil {
		return fmt.Errorf("planstore: %w", err)
	} else if got != fp {
		return fmt.Errorf("planstore: plan fingerprints to %s, refusing to store under %s", got, fp)
	}
	fan := filepath.Join(s.dir, fp[:2])
	if err := os.MkdirAll(fan, 0o755); err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	tmp, err := os.CreateTemp(fan, "."+fp+".tmp*")
	if err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if err := p.Encode(tmp); err != nil {
		tmp.Close()
		return fmt.Errorf("planstore: encode: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("planstore: sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("planstore: %w", err)
	}
	if err := os.Rename(tmp.Name(), s.path(fp)); err != nil {
		return fmt.Errorf("planstore: publish: %w", err)
	}
	syncDir(fan)
	s.metrics.Add(MetricWrites, 1)
	if _, _, err := s.GC(); err != nil {
		return fmt.Errorf("planstore: entry stored, but: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory so a rename survives power loss. Best-effort:
// some filesystems reject directory fsync, and losing a cache entry to a
// crash is recoverable by design.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
}

// quarantine moves a damaged entry aside so it is preserved for inspection
// but never scanned, served or re-validated again.
func (s *Store) quarantine(fp string) error {
	qdir := filepath.Join(s.dir, quarantineDir)
	if err := os.MkdirAll(qdir, 0o755); err != nil {
		return err
	}
	if err := os.Rename(s.path(fp), filepath.Join(qdir, fp+entrySuffix)); err != nil {
		return err
	}
	s.metrics.Add(MetricQuarantined, 1)
	return nil
}

// Entry describes one resident store entry.
type Entry struct {
	Fingerprint string
	Bytes       int64
	// ModTime is the recency stamp GC orders by: bumped on every hit.
	ModTime time.Time
}

// List returns the resident entries, most recently used first. Quarantined
// files are not listed (see Quarantined).
func (s *Store) List() ([]Entry, error) {
	var out []Entry
	fans, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("planstore: %w", err)
	}
	for _, fan := range fans {
		if !fan.IsDir() || len(fan.Name()) != 2 {
			continue
		}
		files, err := os.ReadDir(filepath.Join(s.dir, fan.Name()))
		if err != nil {
			return nil, fmt.Errorf("planstore: %w", err)
		}
		for _, f := range files {
			fp, isEntry := strings.CutSuffix(f.Name(), entrySuffix)
			if !isEntry || !validFP(fp) || fp[:2] != fan.Name() {
				continue // temp files, strays
			}
			info, err := f.Info()
			if err != nil {
				continue // lost a race with eviction
			}
			out = append(out, Entry{Fingerprint: fp, Bytes: info.Size(), ModTime: info.ModTime()})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ModTime.After(out[j].ModTime) })
	return out, nil
}

// Quarantined returns the fingerprints sitting in quarantine.
func (s *Store) Quarantined() ([]string, error) {
	files, err := os.ReadDir(filepath.Join(s.dir, quarantineDir))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, fmt.Errorf("planstore: %w", err)
	}
	var out []string
	for _, f := range files {
		if fp, isEntry := strings.CutSuffix(f.Name(), entrySuffix); isEntry && validFP(fp) {
			out = append(out, fp)
		}
	}
	sort.Strings(out)
	return out, nil
}

// GC enforces the byte budget: while the resident entries exceed it, the
// least recently used entry is removed. It returns how many entries were
// evicted and how many bytes were freed. With no budget it only refreshes
// the store/bytes gauge.
func (s *Store) GC() (evicted int, freed int64, err error) {
	s.gcMu.Lock()
	defer s.gcMu.Unlock()
	entries, err := s.List()
	if err != nil {
		return 0, 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	if s.budget > 0 {
		// entries are MRU-first; evict from the tail.
		for i := len(entries) - 1; i >= 0 && total > s.budget; i-- {
			e := entries[i]
			if rmErr := os.Remove(s.path(e.Fingerprint)); rmErr != nil && !errors.Is(rmErr, fs.ErrNotExist) {
				return evicted, freed, fmt.Errorf("planstore: evict %s: %w", e.Fingerprint, rmErr)
			}
			total -= e.Bytes
			freed += e.Bytes
			evicted++
		}
		if evicted > 0 {
			s.metrics.Add(MetricGCEvicted, int64(evicted))
		}
	}
	s.metrics.Set(MetricBytes, total)
	return evicted, freed, nil
}

// publishBytes refreshes the store/bytes gauge and returns the total.
func (s *Store) publishBytes() (int64, error) {
	entries, err := s.List()
	if err != nil {
		return 0, err
	}
	var total int64
	for _, e := range entries {
		total += e.Bytes
	}
	s.metrics.Set(MetricBytes, total)
	return total, nil
}

// Issue is one problem Verify found.
type Issue struct {
	Fingerprint string
	Err         error
}

// Verify decodes and re-validates every resident entry, reporting — and,
// when fix is set, quarantining — the ones that fail. It is the offline
// twin of the checks Get performs on the serving path; `lbmm plans verify`
// is its CLI surface.
func (s *Store) Verify(fix bool) ([]Issue, error) {
	entries, err := s.List()
	if err != nil {
		return nil, err
	}
	var issues []Issue
	for _, e := range entries {
		err := s.check(e.Fingerprint)
		if err == nil {
			continue
		}
		if fix {
			if qerr := s.quarantine(e.Fingerprint); qerr != nil {
				err = fmt.Errorf("%w (quarantine failed: %v)", err, qerr)
			}
		}
		issues = append(issues, Issue{Fingerprint: e.Fingerprint, Err: err})
	}
	if fix && len(issues) > 0 {
		if _, err := s.publishBytes(); err != nil {
			return issues, err
		}
	}
	return issues, nil
}

// check decodes one entry and re-derives its content address, without
// touching metrics or recency — Verify must not disturb the LRU order the
// serving path builds.
func (s *Store) check(fp string) error {
	f, err := os.Open(s.path(fp))
	if err != nil {
		return err
	}
	defer f.Close()
	p, err := core.DecodePrepared(f)
	if err != nil {
		return err
	}
	got, err := p.Fingerprint()
	if err != nil {
		return err
	}
	if got != fp {
		return fmt.Errorf("content address %s does not match entry name", got)
	}
	return nil
}
