package planstore_test

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/planstore"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// plan compiles a small prepared multiplication with a seed-distinguished
// structure and returns it with its fingerprint.
func plan(t *testing.T, seed int64) (*core.Prepared, string) {
	t.Helper()
	inst := workload.Mixed(20, 3, seed)
	opts := core.Options{Ring: ring.Counting{}}
	p, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	fp, err := core.Fingerprint(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	return p, fp
}

// entryPath digs out the on-disk path of an entry (the fanout layout is
// documented API, docs/PLANSTORE.md).
func entryPath(dir, fp string) string {
	return filepath.Join(dir, fp[:2], fp+".prep")
}

// envFrame mirrors core's envelope frame field for field; gob matches
// struct fields by name, so the test can re-frame entries without core
// exporting its wire struct.
type envFrame struct {
	Magic       string
	Version     int
	PlanVersion int
	Algorithm   string
	Classes     [3]matrix.Class
	Band        core.Band
	D           int
	Payload     []byte
}

// futureEnvelope rewrites the entry at path as a build one format
// generation ahead would have written it: same payload, Version+1.
func futureEnvelope(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var env envFrame
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		t.Fatalf("reframe decode: %v", err)
	}
	env.Version++
	var out bytes.Buffer
	if err := gob.NewEncoder(&out).Encode(&env); err != nil {
		t.Fatalf("reframe encode: %v", err)
	}
	if err := os.WriteFile(path, out.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestStoreRoundTrip(t *testing.T) {
	ms := obsv.NewCounterSet()
	s, err := planstore.Open(t.TempDir(), 0, ms)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p, fp := plan(t, 1)

	if _, err := s.Get(fp); !errors.Is(err, planstore.ErrNotFound) {
		t.Fatalf("get before put: err=%v, want ErrNotFound", err)
	}
	if err := s.Put(fp, p); err != nil {
		t.Fatalf("put: %v", err)
	}
	q, err := s.Get(fp)
	if err != nil {
		t.Fatalf("get: %v", err)
	}
	if q.D != p.D || q.Band != p.Band || q.Classes != p.Classes {
		t.Fatalf("restored metadata %v/%v/%d, want %v/%v/%d", q.Classes, q.Band, q.D, p.Classes, p.Band, p.D)
	}
	if got := ms.Get(planstore.MetricHits); got != 1 {
		t.Fatalf("store/hits = %d, want 1", got)
	}
	if got := ms.Get(planstore.MetricMisses); got != 1 {
		t.Fatalf("store/misses = %d, want 1", got)
	}
	if got := ms.Get(planstore.MetricWrites); got != 1 {
		t.Fatalf("store/writes = %d, want 1", got)
	}
	if got := ms.Get(planstore.MetricBytes); got <= 0 {
		t.Fatalf("store/bytes = %d, want > 0", got)
	}

	// A second store over the same directory sees the entry (warm restart).
	s2, err := planstore.Open(s.Dir(), 0, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := s2.Get(fp); err != nil {
		t.Fatalf("get after reopen: %v", err)
	}

	if err := s.Put("zz not a fingerprint", p); err == nil {
		t.Fatalf("put under malformed fingerprint succeeded")
	}
}

func TestStoreQuarantinesCorruptEntries(t *testing.T) {
	for _, tc := range []struct {
		name   string
		damage func(t *testing.T, path string)
	}{
		{"truncated", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw[:len(raw)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"bitflip", func(t *testing.T, path string) {
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			raw[len(raw)/2] ^= 0xff
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"garbage", func(t *testing.T, path string) {
			if err := os.WriteFile(path, []byte("not a plan at all"), 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			ms := obsv.NewCounterSet()
			s, err := planstore.Open(t.TempDir(), 0, ms)
			if err != nil {
				t.Fatalf("open: %v", err)
			}
			p, fp := plan(t, 2)
			if err := s.Put(fp, p); err != nil {
				t.Fatalf("put: %v", err)
			}
			tc.damage(t, entryPath(s.Dir(), fp))

			_, err = s.Get(fp)
			if !errors.Is(err, planstore.ErrCorrupt) {
				t.Fatalf("get of damaged entry: err=%v, want ErrCorrupt", err)
			}
			// The entry moved to quarantine: gone from the serving path,
			// preserved on disk.
			if _, err := s.Get(fp); !errors.Is(err, planstore.ErrNotFound) {
				t.Fatalf("second get: err=%v, want ErrNotFound (quarantined)", err)
			}
			qs, err := s.Quarantined()
			if err != nil {
				t.Fatalf("quarantined: %v", err)
			}
			if len(qs) != 1 || qs[0] != fp {
				t.Fatalf("quarantine holds %v, want [%s]", qs, fp)
			}
			if got := ms.Get(planstore.MetricQuarantined); got != 1 {
				t.Fatalf("store/quarantined = %d, want 1", got)
			}
		})
	}
}

func TestStoreRejectsWrongContentAddress(t *testing.T) {
	s, err := planstore.Open(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	pa, fpa := plan(t, 3)
	_, fpb := plan(t, 4)
	if fpa == fpb {
		t.Fatalf("distinct structures share a fingerprint")
	}
	// Put refuses to file a plan under a foreign key...
	if err := s.Put(fpb, pa); err == nil {
		t.Fatalf("put under wrong fingerprint succeeded")
	}
	// ...and Get catches an entry renamed behind the store's back.
	if err := s.Put(fpa, pa); err != nil {
		t.Fatalf("put: %v", err)
	}
	raw, err := os.ReadFile(entryPath(s.Dir(), fpa))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(entryPath(s.Dir(), fpb)), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(entryPath(s.Dir(), fpb), raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(fpb); !errors.Is(err, planstore.ErrCorrupt) {
		t.Fatalf("get of renamed entry: err=%v, want ErrCorrupt", err)
	}
}

func TestStoreCrossVersionEntryRejected(t *testing.T) {
	ms := obsv.NewCounterSet()
	s, err := planstore.Open(t.TempDir(), 0, ms)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p, fp := plan(t, 5)
	if err := s.Put(fp, p); err != nil {
		t.Fatalf("put: %v", err)
	}
	// Rewrite the entry as a future build would: same payload, version N+1.
	// (core's own tests cover the envelope mechanics; here the store-level
	// behavior is what's under test.)
	path := entryPath(s.Dir(), fp)
	futureEnvelope(t, path)

	_, err = s.Get(fp)
	if !errors.Is(err, planstore.ErrCorrupt) {
		t.Fatalf("cross-version get: err=%v, want ErrCorrupt wrapper", err)
	}
	if !errors.Is(err, core.ErrEnvelopeVersion) {
		t.Fatalf("cross-version get: err=%v, want core.ErrEnvelopeVersion cause", err)
	}
	qs, _ := s.Quarantined()
	if len(qs) != 1 {
		t.Fatalf("cross-version entry not quarantined: %v", qs)
	}
}

func TestStoreVerify(t *testing.T) {
	s, err := planstore.Open(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	pGood, fpGood := plan(t, 6)
	pBad, fpBad := plan(t, 7)
	if err := s.Put(fpGood, pGood); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(fpBad, pBad); err != nil {
		t.Fatal(err)
	}
	futureEnvelope(t, entryPath(s.Dir(), fpBad))

	issues, err := s.Verify(false)
	if err != nil {
		t.Fatalf("verify: %v", err)
	}
	if len(issues) != 1 || issues[0].Fingerprint != fpBad {
		t.Fatalf("verify found %v, want one issue on %s", issues, fpBad)
	}
	if !errors.Is(issues[0].Err, core.ErrEnvelopeVersion) {
		t.Fatalf("issue error %v, want core.ErrEnvelopeVersion", issues[0].Err)
	}
	// Dry run left the entry in place; fix quarantines it.
	if entries, _ := s.List(); len(entries) != 2 {
		t.Fatalf("dry-run verify changed the store: %v", entries)
	}
	if _, err := s.Verify(true); err != nil {
		t.Fatalf("verify -fix: %v", err)
	}
	entries, _ := s.List()
	if len(entries) != 1 || entries[0].Fingerprint != fpGood {
		t.Fatalf("after fix store holds %v, want only %s", entries, fpGood)
	}
	qs, _ := s.Quarantined()
	if len(qs) != 1 || qs[0] != fpBad {
		t.Fatalf("after fix quarantine holds %v, want [%s]", qs, fpBad)
	}
}

func TestStoreGCEvictsLRU(t *testing.T) {
	ms := obsv.NewCounterSet()
	// Open unbounded first to learn one entry's size, then set the budget.
	dir := t.TempDir()
	s, err := planstore.Open(dir, 0, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var fps []string
	for seed := int64(10); seed < 14; seed++ {
		p, fp := plan(t, seed)
		if err := s.Put(fp, p); err != nil {
			t.Fatalf("put: %v", err)
		}
		fps = append(fps, fp)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	if len(entries) != 4 {
		t.Fatalf("%d entries, want 4", len(entries))
	}
	var maxBytes int64
	for _, e := range entries {
		if e.Bytes > maxBytes {
			maxBytes = e.Bytes
		}
	}

	// Pin an explicit recency order: fps[0] oldest … fps[3] newest.
	base := time.Now().Add(-time.Hour)
	for i, fp := range fps {
		when := base.Add(time.Duration(i) * time.Minute)
		if err := os.Chtimes(entryPath(dir, fp), when, when); err != nil {
			t.Fatal(err)
		}
	}
	// Budget for roughly two entries: the two oldest must go.
	s2, err := planstore.Open(dir, 2*maxBytes+1, ms)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	evicted, freed, err := s2.GC()
	if err != nil {
		t.Fatalf("gc: %v", err)
	}
	if evicted < 1 || freed <= 0 {
		t.Fatalf("gc evicted %d (%d bytes), want evictions", evicted, freed)
	}
	left, _ := s2.List()
	for _, e := range left {
		if e.Fingerprint == fps[0] {
			t.Fatalf("LRU entry %s survived GC", fps[0])
		}
	}
	// The most recently used entry always survives.
	found := false
	for _, e := range left {
		found = found || e.Fingerprint == fps[3]
	}
	if !found {
		t.Fatalf("MRU entry %s was evicted", fps[3])
	}
	if got := ms.Get(planstore.MetricGCEvicted); got != int64(evicted) {
		t.Fatalf("store/gc_evicted = %d, want %d", got, evicted)
	}
	if got := ms.Get(planstore.MetricBytes); got > 2*maxBytes+1 {
		t.Fatalf("store/bytes = %d still above budget %d", got, 2*maxBytes+1)
	}
}

func TestStoreConcurrentWritersAndReaders(t *testing.T) {
	s, err := planstore.Open(t.TempDir(), 0, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	p, fp := plan(t, 20)
	q, fq := plan(t, 21)

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if err := s.Put(fp, p); err != nil {
					errs <- err
				}
				if err := s.Put(fq, q); err != nil {
					errs <- err
				}
			}
		}()
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 8; j++ {
				if _, err := s.Get(fp); err != nil && !errors.Is(err, planstore.ErrNotFound) {
					errs <- err
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("concurrent op: %v", err)
	}
	for _, f := range []string{fp, fq} {
		if _, err := s.Get(f); err != nil {
			t.Fatalf("entry %s unreadable after concurrent writes: %v", f, err)
		}
	}
	if qs, _ := s.Quarantined(); len(qs) != 0 {
		t.Fatalf("concurrent writes quarantined entries: %v", qs)
	}
}

// TestStoreGetTouchesLRU is the cache-fidelity regression for the mtime
// touch in Get: a HIT must count as a USE. An entry that is old on disk but
// hot in traffic has to outlive a younger entry nobody reads — without the
// touch, GC would evict by write time and throw away the hottest plans
// first on every budget squeeze.
func TestStoreGetTouchesLRU(t *testing.T) {
	dir := t.TempDir()
	s, err := planstore.Open(dir, 0, nil)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	var fps []string
	var maxBytes int64
	for seed := int64(30); seed < 33; seed++ {
		p, fp := plan(t, seed)
		if err := s.Put(fp, p); err != nil {
			t.Fatalf("put: %v", err)
		}
		fps = append(fps, fp)
	}
	entries, err := s.List()
	if err != nil {
		t.Fatalf("list: %v", err)
	}
	for _, e := range entries {
		if e.Bytes > maxBytes {
			maxBytes = e.Bytes
		}
	}
	// On-disk ages: fps[0] oldest, fps[2] newest.
	base := time.Now().Add(-3 * time.Hour)
	for i, fp := range fps {
		when := base.Add(time.Duration(i) * time.Hour)
		if err := os.Chtimes(entryPath(dir, fp), when, when); err != nil {
			t.Fatal(err)
		}
	}

	// A budgeted process serves the OLDEST entry — the hit must promote it.
	s2, err := planstore.Open(dir, 2*maxBytes+1, nil)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if _, err := s2.Get(fps[0]); err != nil {
		t.Fatalf("get: %v", err)
	}
	if evicted, _, err := s2.GC(); err != nil || evicted < 1 {
		t.Fatalf("gc evicted %d (err %v), want at least 1", evicted, err)
	}

	left, err := s2.List()
	if err != nil {
		t.Fatalf("list after gc: %v", err)
	}
	survivors := map[string]bool{}
	for _, e := range left {
		survivors[e.Fingerprint] = true
	}
	if !survivors[fps[0]] {
		t.Fatalf("hit entry %s evicted over the untouched newer %s", fps[0], fps[1])
	}
	if survivors[fps[1]] {
		t.Fatalf("untouched entry %s survived while budget forced an eviction", fps[1])
	}
	if !survivors[fps[2]] {
		t.Fatalf("newest entry %s evicted", fps[2])
	}
}
