package triangle

import (
	"fmt"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// This file grows the §1.5 application into a small graph-analytics suite:
// all the classic "count tiny subgraphs / local structure" statistics that
// reduce to masked sparse matrix products and therefore inherit the paper's
// round bounds on bounded-degree graphs.

// CommonNeighbors computes, for every edge (u,v), the number of common
// neighbours |N(u) ∩ N(v)| — one masked product X = A·A restricted to the
// edge set, over the counting semiring.
func CommonNeighbors(g *Graph, opts core.Options) (map[[2]int]int64, *core.Report, error) {
	opts.Ring = ring.Counting{}
	a := g.adjacency(opts.Ring)
	xhat := a.Support()
	x, rep, err := core.Multiply(a, a, xhat, opts)
	if err != nil {
		return nil, nil, err
	}
	out := make(map[[2]int]int64, g.NumEdges())
	for _, e := range g.Edges() {
		out[e] = int64(x.Get(e[0], e[1]))
	}
	return out, rep, nil
}

// ClusteringCoefficients returns the local clustering coefficient of every
// vertex: triangles through v divided by deg(v)·(deg(v)−1)/2, computed from
// the distributed common-neighbour counts.
func ClusteringCoefficients(g *Graph, opts core.Options) ([]float64, *core.Report, error) {
	cn, rep, err := CommonNeighbors(g, opts)
	if err != nil {
		return nil, nil, err
	}
	triPerVertex := make([]int64, g.N)
	for e, c := range cn {
		// Each triangle {u,v,w} adds 1 to the count of edge (u,v) for each
		// common neighbour w; summing over v's incident edges counts each
		// of v's triangles twice.
		triPerVertex[e[0]] += c
		triPerVertex[e[1]] += c
	}
	out := make([]float64, g.N)
	for v := 0; v < g.N; v++ {
		d := len(g.adj[v])
		if d < 2 {
			continue
		}
		out[v] = float64(triPerVertex[v]) / 2 / (float64(d) * float64(d-1) / 2)
	}
	return out, rep, nil
}

// CountPaths2 computes the number of paths of length two (wedges) between
// every requested pair — X = A·A masked to an arbitrary support. The
// support defaults to the 2-hop support when xhat is nil (can be dense for
// high-degree graphs; intended for bounded-degree graphs where it has
// ≤ d²n entries).
func CountPaths2(g *Graph, xhat *matrix.Support, opts core.Options) (*matrix.Sparse, *core.Report, error) {
	opts.Ring = ring.Counting{}
	a := g.adjacency(opts.Ring)
	if xhat == nil {
		xhat = supportSquare(a.Support())
	}
	return core.Multiply(a, a, xhat, opts)
}

// CountFourCycles counts the 4-cycles of g: C4 = (Σ_{u<w} C(p2(u,w), 2))
// where p2(u,w) is the number of length-2 paths between distinct
// non-adjacent-or-adjacent u,w — each 4-cycle contributes exactly two
// unordered pairs {u,w} (its two diagonals) with two shared paths each.
func CountFourCycles(g *Graph, opts core.Options) (int64, *core.Report, error) {
	p2, rep, err := CountPaths2(g, nil, opts)
	if err != nil {
		return 0, nil, err
	}
	var total int64
	for u := 0; u < g.N; u++ {
		for _, c := range p2.Rows[u] {
			w := int(c.Col)
			if w <= u {
				continue
			}
			k := int64(c.Val)
			total += k * (k - 1) / 2
		}
	}
	// Each 4-cycle was counted once per diagonal pair: twice.
	if total%2 != 0 {
		return 0, nil, fmt.Errorf("triangle: inconsistent 4-cycle count %d", total)
	}
	return total / 2, rep, nil
}

// supportSquare returns the boolean product support of s with itself,
// excluding the diagonal.
func supportSquare(s *matrix.Support) *matrix.Support {
	var es [][2]int
	for i, row := range s.Rows {
		seen := map[int32]bool{}
		for _, j := range row {
			for _, k := range s.Rows[j] {
				if int(k) != i && !seen[k] {
					seen[k] = true
					es = append(es, [2]int{i, int(k)})
				}
			}
		}
	}
	return matrix.NewSupport(s.N, es)
}

// CountFourCyclesLocal is the sequential reference for CountFourCycles.
func CountFourCyclesLocal(g *Graph) int64 {
	// p2 counts via wedges.
	p2 := map[[2]int]int64{}
	for mid := 0; mid < g.N; mid++ {
		row := g.adj[mid]
		for x := 0; x < len(row); x++ {
			for y := x + 1; y < len(row); y++ {
				u, w := int(row[x]), int(row[y])
				if u > w {
					u, w = w, u
				}
				p2[[2]int{u, w}]++
			}
		}
	}
	var total int64
	for _, k := range p2 {
		total += k * (k - 1) / 2
	}
	// As in the distributed version, each 4-cycle is counted once per
	// diagonal pair.
	return total / 2
}
