package triangle

import (
	"fmt"
	"math"

	"lbmm/internal/algo"
	"lbmm/internal/graph"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// PageRank runs the classic damped power iteration on g in the low-bandwidth
// model: each step is the matrix-vector product y = M·x, which in the
// paper's setting is a sparse matrix multiplication with a CS(1) right-hand
// side (a vector is an n×n matrix with a single dense column) — a class-2
// instance solved by Lemma 3.1 in O(d² + log n) rounds per iteration.
//
// Because the structure (graph + vector shape) is fixed across iterations,
// the supported-model preprocessing is computed ONCE via algo.Prepare and
// reused: the per-iteration rounds are identical by construction.
//
// Returns the rank vector, the total model rounds across iterations, and
// the rounds of one iteration.
func PageRank(g *Graph, damping float64, iters int) ([]float64, int, int, error) {
	if iters < 1 {
		return nil, 0, 0, fmt.Errorf("triangle: need at least one iteration")
	}
	n := g.N
	r := ring.Real{}

	// M = damping · A^T D^{-1}: column j of M distributes node j's rank to
	// its neighbours. Dangling nodes keep their rank mass out (standard
	// simplified treatment).
	m := matrix.NewSparse(n, r)
	for j := 0; j < n; j++ {
		deg := len(g.adj[j])
		if deg == 0 {
			continue
		}
		w := damping / float64(deg)
		for _, i := range g.adj[j] {
			m.Set(int(i), j, w)
		}
	}

	// The vector lives in column 0; x̂ = M̂'s rows × {0}.
	var vecEntries [][2]int
	for i := 0; i < n; i++ {
		vecEntries = append(vecEntries, [2]int{i, 0})
	}
	vhat := matrix.NewSupport(n, vecEntries)
	inst := graph.NewInstance(maxInt(g.MaxDegree(), 1), m.Support(), vhat, vhat)

	prep, err := algo.PrepareLemma31(r, inst)
	if err != nil {
		return nil, 0, 0, err
	}

	x := matrix.NewSparse(n, r)
	for i := 0; i < n; i++ {
		x.Set(i, 0, 1/float64(n))
	}
	base := (1 - damping) / float64(n)
	totalRounds := 0
	perIter := 0
	for t := 0; t < iters; t++ {
		y, res, err := prep.Multiply(m, x)
		if err != nil {
			return nil, 0, 0, err
		}
		totalRounds += res.Rounds
		perIter = res.Rounds
		// Free local step at each computer: add the teleport term.
		next := matrix.NewSparse(n, r)
		for i := 0; i < n; i++ {
			next.Set(i, 0, base+y.Get(i, 0))
		}
		x = next
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = x.Get(i, 0)
	}
	return out, totalRounds, perIter, nil
}

// PageRankLocal is the sequential reference power iteration.
func PageRankLocal(g *Graph, damping float64, iters int) []float64 {
	n := g.N
	x := make([]float64, n)
	for i := range x {
		x[i] = 1 / float64(n)
	}
	base := (1 - damping) / float64(n)
	for t := 0; t < iters; t++ {
		next := make([]float64, n)
		for i := range next {
			next[i] = base
		}
		for j := 0; j < n; j++ {
			deg := len(g.adj[j])
			if deg == 0 {
				continue
			}
			share := damping * x[j] / float64(deg)
			for _, i := range g.adj[j] {
				next[i] += share
			}
		}
		x = next
	}
	return x
}

// MaxRankError returns the max absolute difference of two rank vectors.
func MaxRankError(a, b []float64) float64 {
	mx := 0.0
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > mx {
			mx = d
		}
	}
	return mx
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
