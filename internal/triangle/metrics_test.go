package triangle

import (
	"math"
	"testing"

	"lbmm/internal/core"
)

func TestCommonNeighborsKnown(t *testing.T) {
	// Diamond: 0-1, 0-2, 1-2, 1-3, 2-3. Edge (1,2) has common {0,3}.
	g := NewGraph(4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {1, 3}, {2, 3}})
	cn, rep, err := CommonNeighbors(g, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("no report")
	}
	want := map[[2]int]int64{
		{0, 1}: 1, {0, 2}: 1, {1, 2}: 2, {1, 3}: 1, {2, 3}: 1,
	}
	for e, w := range want {
		if cn[e] != w {
			t.Errorf("codeg%v = %d, want %d", e, cn[e], w)
		}
	}
}

func TestClusteringCoefficients(t *testing.T) {
	// K4: every vertex has coefficient 1.
	k4 := NewGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	cc, _, err := ClusteringCoefficients(k4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, c := range cc {
		if math.Abs(c-1) > 1e-12 {
			t.Errorf("K4 vertex %d coefficient %v", v, c)
		}
	}
	// Path 0-1-2: middle vertex has coefficient 0.
	path := NewGraph(3, [][2]int{{0, 1}, {1, 2}})
	cc, _, err = ClusteringCoefficients(path, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if cc[1] != 0 {
		t.Errorf("path middle coefficient %v", cc[1])
	}
}

func TestCountFourCyclesKnown(t *testing.T) {
	// C4 itself: exactly one 4-cycle.
	c4 := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	got, _, err := CountFourCycles(c4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 1 {
		t.Errorf("C4 count = %d", got)
	}
	// K4 has three 4-cycles.
	k4 := NewGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	got, _, err = CountFourCycles(k4, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("K4 4-cycles = %d, want 3", got)
	}
	// Triangle has none.
	k3 := NewGraph(3, [][2]int{{0, 1}, {1, 2}, {2, 0}})
	got, _, err = CountFourCycles(k3, core.Options{})
	if err != nil || got != 0 {
		t.Errorf("K3 4-cycles = %d, %v", got, err)
	}
}

func TestCountFourCyclesRandomMatchesLocal(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 4} {
		g := RandomBoundedDegree(30, 4, seed)
		got, _, err := CountFourCycles(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := CountFourCyclesLocal(g); got != want {
			t.Fatalf("seed %d: distributed %d != local %d", seed, got, want)
		}
	}
}

func TestCountPaths2CustomMask(t *testing.T) {
	// Star 0-{1,2,3}: pairs of leaves have exactly one 2-path via 0.
	g := NewGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}})
	p2, _, err := CountPaths2(g, nil, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, pair := range [][2]int{{1, 2}, {1, 3}, {2, 3}} {
		if p2.Get(pair[0], pair[1]) != 1 {
			t.Errorf("p2%v = %v", pair, p2.Get(pair[0], pair[1]))
		}
	}
	if p2.Get(1, 1) != 0 {
		t.Error("diagonal must be excluded")
	}
}

func TestPageRankMatchesLocal(t *testing.T) {
	for _, seed := range []int64{1, 2} {
		g := RandomBoundedDegree(40, 4, seed)
		dist, total, perIter, err := PageRank(g, 0.85, 8)
		if err != nil {
			t.Fatal(err)
		}
		local := PageRankLocal(g, 0.85, 8)
		if e := MaxRankError(dist, local); e > 1e-9 {
			t.Fatalf("seed %d: rank error %v", seed, e)
		}
		if total != 8*perIter {
			t.Errorf("rounds not identical per iteration: %d vs 8×%d", total, perIter)
		}
		// Mass conservation up to dangling leakage: sum ≤ 1 + ε.
		sum := 0.0
		for _, v := range dist {
			sum += v
		}
		if sum > 1+1e-9 {
			t.Errorf("rank mass %v > 1", sum)
		}
	}
	if _, _, _, err := PageRank(RandomBoundedDegree(10, 2, 1), 0.85, 0); err == nil {
		t.Error("zero iterations accepted")
	}
}

func TestGeneratedGraphFamilies(t *testing.T) {
	// Preferential attachment: heavy-tailed — max degree well above the
	// mean; distributed triangle count still exact.
	ba := PreferentialAttachment(120, 3, 5)
	if ba.NumEdges() == 0 {
		t.Fatal("BA graph empty")
	}
	mean := 2 * ba.NumEdges() / ba.N
	if ba.MaxDegree() < 2*mean {
		t.Errorf("BA max degree %d not heavy-tailed (mean %d)", ba.MaxDegree(), mean)
	}
	res, err := Count(ba, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != CountLocal(ba) {
		t.Fatalf("BA count %d != %d", res.Triangles, CountLocal(ba))
	}

	// Small world: bounded degree, high clustering at beta=0.
	sw := SmallWorld(60, 4, 0, 7)
	if sw.MaxDegree() > 6 {
		t.Errorf("SW degree %d too high", sw.MaxDegree())
	}
	if CountLocal(sw) == 0 {
		t.Error("ring lattice with k=4 must have triangles")
	}
	res, err = Count(sw, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Triangles != CountLocal(sw) {
		t.Fatalf("SW count %d != %d", res.Triangles, CountLocal(sw))
	}
	// Rewired variant still counts correctly.
	swr := SmallWorld(60, 4, 0.3, 7)
	res, err = Count(swr, core.Options{})
	if err != nil || res.Triangles != CountLocal(swr) {
		t.Fatalf("rewired SW mismatch: %v", err)
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := PreferentialAttachment(80, 3, 9)
	b := PreferentialAttachment(80, 3, 9)
	if a.NumEdges() != b.NumEdges() || CountLocal(a) != CountLocal(b) {
		t.Error("PreferentialAttachment not deterministic")
	}
	ea, eb := a.Edges(), b.Edges()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatal("edge lists differ")
		}
	}
	s1 := SmallWorld(50, 4, 0.2, 3)
	s2 := SmallWorld(50, 4, 0.2, 3)
	if s1.NumEdges() != s2.NumEdges() || CountLocal(s1) != CountLocal(s2) {
		t.Error("SmallWorld not deterministic")
	}
}
