// Package triangle implements the paper's motivating application (§1.5):
// triangle detection and counting in graphs via distributed sparse matrix
// multiplication. A bounded-degree graph yields a [US:US:US] instance
// (solved in O(d^1.867) rounds), a sparse graph an [AS:AS:AS] instance —
// exactly the hardness frontier the classification maps out.
package triangle

import (
	"fmt"
	"math/rand"
	"sort"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// Graph is a simple undirected graph on vertices 0..N-1.
type Graph struct {
	N   int
	adj [][]int32 // sorted neighbour lists, both directions
}

// NewGraph builds a graph from an edge list; self-loops and duplicates are
// dropped.
func NewGraph(n int, edges [][2]int) *Graph {
	g := &Graph{N: n, adj: make([][]int32, n)}
	seen := map[[2]int]bool{}
	for _, e := range edges {
		u, v := e[0], e[1]
		if u == v || u < 0 || v < 0 || u >= n || v >= n {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if seen[[2]int{u, v}] {
			continue
		}
		seen[[2]int{u, v}] = true
		g.adj[u] = append(g.adj[u], int32(v))
		g.adj[v] = append(g.adj[v], int32(u))
	}
	for i := range g.adj {
		sort.Slice(g.adj[i], func(a, b int) bool { return g.adj[i][a] < g.adj[i][b] })
	}
	return g
}

// RandomBoundedDegree returns a random graph with maximum degree ≤ d.
func RandomBoundedDegree(n, d int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	deg := make([]int, n)
	var edges [][2]int
	attempts := 4 * n * d
	for len(edges) < n*d/2 && attempts > 0 {
		attempts--
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v || deg[u] >= d || deg[v] >= d {
			continue
		}
		edges = append(edges, [2]int{u, v})
		deg[u]++
		deg[v]++
	}
	return NewGraph(n, edges)
}

// Edges returns each undirected edge once (u < v).
func (g *Graph) Edges() [][2]int {
	var out [][2]int
	for u, row := range g.adj {
		for _, v := range row {
			if int32(u) < v {
				out = append(out, [2]int{u, int(v)})
			}
		}
	}
	return out
}

// MaxDegree returns the maximum vertex degree.
func (g *Graph) MaxDegree() int {
	m := 0
	for _, row := range g.adj {
		if len(row) > m {
			m = len(row)
		}
	}
	return m
}

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int {
	total := 0
	for _, row := range g.adj {
		total += len(row)
	}
	return total / 2
}

// adjacency returns the 0/1 adjacency matrix over the given ring.
func (g *Graph) adjacency(r ring.Semiring) *matrix.Sparse {
	m := matrix.NewSparse(g.N, r)
	for u, row := range g.adj {
		for _, v := range row {
			m.Set(u, int(v), r.One())
		}
	}
	return m
}

// CountResult reports a distributed triangle count.
type CountResult struct {
	Triangles int64
	// Report carries the underlying multiplication's measurements.
	Report *core.Report
}

// Count counts the triangles of g by computing X = A·A masked to the edges
// of g over the counting semiring: X_uv is then the number of common
// neighbours of the edge (u,v), and Σ_{(u,v)∈E, both orientations} X_uv
// counts each triangle six times.
func Count(g *Graph, opts core.Options) (*CountResult, error) {
	if opts.Ring == nil {
		opts.Ring = ring.Counting{}
	} else if _, isCounting := opts.Ring.(ring.Counting); !isCounting {
		return nil, fmt.Errorf("triangle: Count requires the counting semiring")
	}
	a := g.adjacency(opts.Ring)
	xhat := a.Support()
	x, rep, err := core.Multiply(a, a, xhat, opts)
	if err != nil {
		return nil, err
	}
	var total int64
	for u, row := range g.adj {
		for _, v := range row {
			total += int64(x.Get(u, int(v)))
		}
	}
	if total%6 != 0 {
		return nil, fmt.Errorf("triangle: inconsistent count %d", total)
	}
	return &CountResult{Triangles: total / 6, Report: rep}, nil
}

// Detect reports whether g contains a triangle, multiplying over the
// Boolean semiring (witness existence only — cheaper messages in spirit).
func Detect(g *Graph, opts core.Options) (bool, *core.Report, error) {
	opts.Ring = ring.Boolean{}
	a := g.adjacency(opts.Ring)
	xhat := a.Support()
	x, rep, err := core.Multiply(a, a, xhat, opts)
	if err != nil {
		return false, nil, err
	}
	for u, row := range g.adj {
		for _, v := range row {
			if x.Get(u, int(v)) == 1 {
				return true, rep, nil
			}
		}
	}
	return false, rep, nil
}

// CountLocal is the sequential reference count (merge-intersection over
// sorted adjacency lists).
func CountLocal(g *Graph) int64 {
	var total int64
	for u, row := range g.adj {
		for _, v := range row {
			if v <= int32(u) {
				continue
			}
			// Count common neighbours w > v to count each triangle once.
			a, b := row, g.adj[v]
			ai, bi := 0, 0
			for ai < len(a) && bi < len(b) {
				switch {
				case a[ai] < b[bi]:
					ai++
				case a[ai] > b[bi]:
					bi++
				default:
					if a[ai] > v {
						total++
					}
					ai++
					bi++
				}
			}
		}
	}
	return total
}

// PreferentialAttachment generates a Barabási–Albert style graph: vertices
// arrive one by one and attach m edges to existing vertices chosen with
// probability proportional to their current degree (plus one, so isolated
// early vertices stay reachable). The resulting degree distribution is
// heavy-tailed — the graphs are average-sparse but not uniformly sparse,
// the regime where the paper's classification matters.
func PreferentialAttachment(n, m int, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	// Repeated-vertex list: each vertex appears deg+1 times.
	var pool []int
	pool = append(pool, 0)
	for v := 1; v < n; v++ {
		targets := map[int]bool{}
		var picked []int
		for len(targets) < m && len(targets) < v {
			t := pool[rng.Intn(len(pool))]
			if t != v && !targets[t] {
				targets[t] = true
				picked = append(picked, t) // insertion order: deterministic
			}
		}
		for _, t := range picked {
			edges = append(edges, [2]int{v, t})
			pool = append(pool, t)
		}
		pool = append(pool, v)
	}
	return NewGraph(n, edges)
}

// SmallWorld generates a Watts–Strogatz style graph: a ring lattice where
// every vertex connects to its k nearest neighbours, with each edge rewired
// to a random endpoint with probability beta. Bounded degree (≈ uniformly
// sparse) with high clustering — the friendly end of the lattice.
func SmallWorld(n, k int, beta float64, seed int64) *Graph {
	rng := rand.New(rand.NewSource(seed))
	var edges [][2]int
	for v := 0; v < n; v++ {
		for off := 1; off <= k/2; off++ {
			u := (v + off) % n
			if rng.Float64() < beta {
				u = rng.Intn(n)
			}
			edges = append(edges, [2]int{v, u})
		}
	}
	return NewGraph(n, edges)
}
