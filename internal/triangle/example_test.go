package triangle_test

import (
	"fmt"

	"lbmm/internal/core"
	"lbmm/internal/triangle"
)

// ExampleCount counts triangles in K4 with the distributed pipeline.
func ExampleCount() {
	g := triangle.NewGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	res, err := triangle.Count(g, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("triangles:", res.Triangles)
	// Output:
	// triangles: 4
}

// ExampleDetect answers the existence question over the Boolean semiring.
func ExampleDetect() {
	c5 := triangle.NewGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	found, _, err := triangle.Detect(c5, core.Options{})
	if err != nil {
		panic(err)
	}
	fmt.Println("C5 has a triangle:", found)
	// Output:
	// C5 has a triangle: false
}
