package triangle

import (
	"testing"

	"lbmm/internal/core"
)

func TestNewGraphDedupAndLoops(t *testing.T) {
	g := NewGraph(4, [][2]int{{0, 1}, {1, 0}, {2, 2}, {1, 2}, {0, 1}, {-1, 3}, {3, 9}})
	if g.NumEdges() != 2 {
		t.Fatalf("edges = %d, want 2", g.NumEdges())
	}
	if g.MaxDegree() != 2 {
		t.Errorf("max degree = %d", g.MaxDegree())
	}
	if len(g.Edges()) != 2 {
		t.Errorf("Edges() = %v", g.Edges())
	}
}

func TestCountLocalKnownGraphs(t *testing.T) {
	// K4 has 4 triangles.
	k4 := NewGraph(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}})
	if got := CountLocal(k4); got != 4 {
		t.Errorf("K4 triangles = %d", got)
	}
	// C5 has none.
	c5 := NewGraph(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}})
	if got := CountLocal(c5); got != 0 {
		t.Errorf("C5 triangles = %d", got)
	}
	// Two disjoint triangles.
	two := NewGraph(6, [][2]int{{0, 1}, {1, 2}, {2, 0}, {3, 4}, {4, 5}, {5, 3}})
	if got := CountLocal(two); got != 2 {
		t.Errorf("2K3 triangles = %d", got)
	}
}

func TestDistributedCountMatchesLocal(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		g := RandomBoundedDegree(40, 5, seed)
		res, err := Count(g, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if want := CountLocal(g); res.Triangles != want {
			t.Fatalf("seed %d: distributed count %d != local %d", seed, res.Triangles, want)
		}
		if res.Report == nil || res.Report.Rounds < 0 {
			t.Error("missing report")
		}
	}
}

func TestDetect(t *testing.T) {
	k3 := NewGraph(8, [][2]int{{0, 1}, {1, 2}, {2, 0}, {4, 5}})
	found, rep, err := Detect(k3, core.Options{})
	if err != nil || !found {
		t.Fatalf("Detect(K3+) = %v, %v", found, err)
	}
	if rep == nil {
		t.Error("missing report")
	}
	c4 := NewGraph(4, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	found, _, err = Detect(c4, core.Options{})
	if err != nil || found {
		t.Fatalf("Detect(C4) = %v, %v", found, err)
	}
}

func TestCountRejectsWrongRing(t *testing.T) {
	g := RandomBoundedDegree(10, 3, 1)
	if _, err := Count(g, core.Options{Ring: nil}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomBoundedDegreeRespectsBound(t *testing.T) {
	for _, d := range []int{1, 3, 6} {
		g := RandomBoundedDegree(50, d, 7)
		if g.MaxDegree() > d {
			t.Errorf("degree %d exceeds bound %d", g.MaxDegree(), d)
		}
	}
}
