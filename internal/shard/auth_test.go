package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lbmm/internal/obsv"
)

// newAuthNode is newTestNode with a shared-secret token configured.
func newAuthNode(t *testing.T, id, token string) *testNode {
	t.Helper()
	ms := obsv.NewCounterSet()
	srv := httptest.NewUnstartedServer(nil)
	n := NewNode(Config{
		ID:             id,
		Addr:           srv.Listener.Addr().String(),
		HeartbeatEvery: 15 * time.Millisecond,
		PingTimeout:    250 * time.Millisecond,
		SuspectAfter:   2,
		ElectionMin:    20 * time.Millisecond,
		ElectionMax:    120 * time.Millisecond,
		Metrics:        ms,
		Logf:           t.Logf,
		AuthToken:      token,
	})
	srv.Config.Handler = n.Handler()
	srv.Start()
	tn := &testNode{node: n, srv: srv, ms: ms}
	t.Cleanup(tn.kill)
	return tn
}

// TestMembershipAuthToken pins the bearer check on the state-mutating
// endpoints: join/view/leave without the token (or with the wrong one) are
// refused with 403 before any membership state is touched, the right token
// is admitted, and the read-only alive-check stays open so the failure
// detector keeps working across a fleet with mixed configuration.
func TestMembershipAuthToken(t *testing.T) {
	tn := newAuthNode(t, "guarded", "sesame")
	base := "http://" + tn.node.Self().Addr

	mutating := []string{"/shard/v1/join", "/shard/v1/view", "/shard/v1/leave"}
	post := func(path, token string, body []byte) *http.Response {
		t.Helper()
		req, err := http.NewRequest(http.MethodPost, base+path, bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("Content-Type", "application/json")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { resp.Body.Close() })
		return resp
	}

	for _, path := range mutating {
		if got := post(path, "", nil).StatusCode; got != http.StatusForbidden {
			t.Errorf("POST %s without token: status %d, want 403", path, got)
		}
		if got := post(path, "wrong", nil).StatusCode; got != http.StatusForbidden {
			t.Errorf("POST %s with wrong token: status %d, want 403", path, got)
		}
	}
	if got := tn.ms.Get(MetricAuthRejected); got != int64(2*len(mutating)) {
		t.Errorf("%s = %d, want %d", MetricAuthRejected, got, 2*len(mutating))
	}
	if epoch := tn.node.View().Epoch; epoch != 1 {
		t.Errorf("view epoch %d after rejected requests, want the boot epoch 1", epoch)
	}

	// The right token is admitted and the join actually lands.
	body, _ := json.Marshal(wireJoin{Member: Member{ID: "newcomer", Addr: "127.0.0.1:1"}})
	resp := post("/shard/v1/join", "sesame", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("authorized join: status %d, want 200", resp.StatusCode)
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if len(v.Members) != 2 || !v.has("newcomer") {
		t.Fatalf("authorized join returned view %+v, want 2 members including newcomer", v)
	}

	// Read-only endpoints answer without any credentials.
	pingResp, err := http.Get(base + "/shard/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer pingResp.Body.Close()
	if pingResp.StatusCode != http.StatusOK {
		t.Errorf("GET ping without token: status %d, want 200", pingResp.StatusCode)
	}
}

// TestMembershipAuthRing proves the outgoing side: nodes configured with the
// same token present it on their own join/view/leave calls, so a guarded
// ring forms, converges, and departs exactly like an open one.
func TestMembershipAuthRing(t *testing.T) {
	var nodes []*testNode
	for i := 0; i < 3; i++ {
		nodes = append(nodes, newAuthNode(t, fmt.Sprintf("n%d", i), "sesame"))
	}
	if err := nodes[0].node.Start(""); err != nil {
		t.Fatal(err)
	}
	for _, tn := range nodes[1:] {
		if err := tn.node.Start(nodes[0].node.Self().Addr); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "guarded ring convergence", func() bool {
		return converged(nodes, "n0", "n1", "n2")
	})

	nodes[2].node.Leave()
	nodes[2].kill()
	waitFor(t, "guarded ring shrink after leave", func() bool {
		return converged(nodes[:2], "n0", "n1")
	})
	for _, tn := range nodes[:2] {
		if got := tn.ms.Get(MetricAuthRejected); got != 0 {
			t.Errorf("%s: %s = %d on a same-token ring, want 0", tn.node.Self().ID, MetricAuthRejected, got)
		}
	}
}
