// Package shard is the multi-node tier of the serving stack: a small
// membership ring plus a fingerprint router that spreads plan ownership
// across shards by consistent hashing.
//
// The low-bandwidth model is fundamentally many nodes each holding a slice
// of the work; this package applies the same shape to the serving layer
// itself. Each shard runs an ordinary service.Server, and a Router in front
// of every shard computes the core.Fingerprint of each request and proxies
// it to the owning shard, so:
//
//   - each shard's plan cache and coalescer see a dense stream of its own
//     structures (higher lane occupancy for dynamic batching, no duplicate
//     compiled plans resident across the fleet);
//   - any shard can accept any request — a non-owner forwards, an owner
//     serves — so clients need no routing knowledge;
//   - all shards point at one planstore directory, so ownership changes
//     never recompile a stored plan: the new owner warm-loads it from disk.
//
// Membership follows the classic ring shape (next / twice-next pointers,
// periodic alive-checks on the successor, ring repair through the
// twice-next pointer when the successor dies, and a minimal
// randomized-timeout leader election used only to drive anti-entropy view
// broadcasts). Ownership is a pure function of the live membership view —
// consistent hashing with virtual nodes over the fingerprint space — so no
// coordination is needed to route, and a membership change remaps only the
// keys the departed (or arrived) shard owned.
//
// docs/SHARDING.md documents the design; shard/* counters are published
// through obsv.CounterSet.
package shard

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
)

// ringDomain versions the ownership hash: any change to how members or
// fingerprints are mapped onto the ring must bump it, so two builds can
// never silently disagree about ownership while sharing a store.
const ringDomain = "lbmm.shard.v1"

// DefaultVNodes is the virtual-node count per member: enough points that
// ownership spreads within a few percent of uniform for small rings, cheap
// enough that rebuilding on every membership change is free.
const DefaultVNodes = 64

// Member is one shard of the ring: a stable identity and the HTTP address
// its router listens on. IDs order the membership ring (next / twice-next
// pointers); the hash ring spreads each ID into virtual nodes.
type Member struct {
	ID   string `json:"id"`
	Addr string `json:"addr"`
}

// point is one virtual node on the hash ring.
type point struct {
	hash  uint64
	owner int // index into HashRing.members
}

// HashRing maps fingerprints to members by consistent hashing with virtual
// nodes. It is immutable after Build — membership changes build a fresh
// ring — so lookups need no lock.
type HashRing struct {
	members []Member
	points  []point
}

// hash64 hashes a domain-separated string onto the ring's key space.
func hash64(parts ...string) uint64 {
	h := sha256.New()
	var buf [8]byte
	for _, p := range parts {
		binary.LittleEndian.PutUint64(buf[:], uint64(len(p)))
		h.Write(buf[:])
		h.Write([]byte(p))
	}
	return binary.BigEndian.Uint64(h.Sum(nil)[:8])
}

// BuildRing constructs the ownership ring for a membership snapshot.
// vnodes <= 0 uses DefaultVNodes. An empty membership yields a ring that
// owns nothing (Owner reports false).
func BuildRing(members []Member, vnodes int) *HashRing {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	r := &HashRing{members: append([]Member(nil), members...)}
	sort.Slice(r.members, func(i, j int) bool { return r.members[i].ID < r.members[j].ID })
	r.points = make([]point, 0, len(r.members)*vnodes)
	var vbuf [8]byte
	for idx, m := range r.members {
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(vbuf[:], uint64(v))
			r.points = append(r.points, point{
				hash:  hash64(ringDomain, "member", m.ID, string(vbuf[:])),
				owner: idx,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Colliding virtual nodes tie-break by member order so every build
		// agrees; with 64-bit points this is a formality.
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// KeyHash maps a plan fingerprint onto the ring's key space. Exported so
// tests and tooling can reason about placement directly.
func KeyHash(fingerprint string) uint64 {
	return hash64(ringDomain, "key", fingerprint)
}

// Owner returns the member owning the fingerprint: the first virtual node
// clockwise from the key's hash. ok is false only for an empty ring.
func (r *HashRing) Owner(fingerprint string) (m Member, ok bool) {
	if len(r.points) == 0 {
		return Member{}, false
	}
	kh := KeyHash(fingerprint)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= kh })
	if i == len(r.points) {
		i = 0 // wrap
	}
	return r.members[r.points[i].owner], true
}

// Members returns the ring's membership sorted by ID.
func (r *HashRing) Members() []Member {
	return append([]Member(nil), r.members...)
}

// OwnedPermille returns how much of the key space the member owns, in
// thousandths — the "ownership size" gauge a shard publishes. A member
// absent from the ring owns 0.
func (r *HashRing) OwnedPermille(id string) int64 {
	if len(r.points) == 0 {
		return 0
	}
	var owned uint64
	for i, p := range r.points {
		// The arc ending at point i is owned by point i's member.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arc := p.hash - prev // wraps correctly in uint64 arithmetic
		if r.members[p.owner].ID == id {
			owned += arc
		}
	}
	// owned / 2^64 * 1000, computed without overflow.
	return int64(float64(owned) / (1 << 64) * 1000)
}
