package shard

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lbmm/internal/chaos"
	"lbmm/internal/graph"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/planstore"
	"lbmm/internal/ring"
	"lbmm/internal/service"
	"lbmm/internal/workload"
)

// testShard is one full shard as `lbmm serve -ring` assembles it: a
// service.Server over the SHARED plan store directory, fronted by a Router
// whose Node speaks the membership protocol — all behind one httptest
// listener.
type testShard struct {
	id     string
	node   *Node
	server *service.Server
	srv    *httptest.Server
	ms     *obsv.CounterSet
}

func newTestShard(t *testing.T, id, storeDir string) *testShard {
	t.Helper()
	ms := obsv.NewCounterSet()
	st, err := planstore.Open(storeDir, 0, ms)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	server := service.NewServer(service.Config{Workers: 2, Metrics: ms, Store: st})
	hs := httptest.NewUnstartedServer(nil)
	node := NewNode(Config{
		ID:             id,
		Addr:           hs.Listener.Addr().String(),
		HeartbeatEvery: 15 * time.Millisecond,
		PingTimeout:    250 * time.Millisecond,
		SuspectAfter:   2,
		ElectionMin:    20 * time.Millisecond,
		ElectionMax:    120 * time.Millisecond,
		Metrics:        ms,
		Logf:           t.Logf,
	})
	hs.Config.Handler = NewRouter(node, service.NewHandler(server), nil, ms).Handler()
	hs.Start()
	sh := &testShard{id: id, node: node, server: server, srv: hs, ms: ms}
	t.Cleanup(sh.kill)
	return sh
}

// kill simulates a SIGKILL: the process vanishes without announcing a leave.
func (sh *testShard) kill() {
	sh.node.Stop()
	sh.srv.Close()
	sh.server.Close()
}

func shardsConverged(shards []*testShard, ids ...string) bool {
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, sh := range shards {
		v := sh.node.View()
		if len(v.Members) != len(ids) || !want[v.Leader] {
			return false
		}
		for _, m := range v.Members {
			if !want[m.ID] {
				return false
			}
		}
	}
	return true
}

// multiplyBody builds a /v1/multiply wire body over the counting ring for a
// workload instance, the way `lbmm plans prewarm -o` emits one.
func multiplyBody(t *testing.T, inst *graph.Instance) []byte {
	t.Helper()
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	cells := func(m *matrix.Sparse) [][3]float64 {
		out := make([][3]float64, 0, m.NNZ())
		for i, row := range m.Rows {
			for _, c := range row {
				out = append(out, [3]float64{float64(i), float64(c.Col), c.Val})
			}
		}
		return out
	}
	xhat := make([][2]int, 0, inst.Xhat.NNZ)
	for i, row := range inst.Xhat.Rows {
		for _, j := range row {
			xhat = append(xhat, [2]int{i, int(j)})
		}
	}
	body, err := json.Marshal(struct {
		N    int          `json:"n"`
		Ring string       `json:"ring"`
		A    [][3]float64 `json:"a"`
		B    [][3]float64 `json:"b"`
		Xhat [][2]int     `json:"xhat"`
	}{N: inst.N, Ring: "counting", A: cells(a), B: cells(b), Xhat: xhat})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postMultiply(t *testing.T, url string, body []byte) (*http.Response, map[string]any) {
	t.Helper()
	resp, err := http.Post(url+"/v1/multiply", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	var decoded map[string]any
	_ = json.Unmarshal(raw, &decoded)
	return resp, decoded
}

// TestFailoverServesStoredPlansWithoutRecompiling is the tier's headline
// promise (ISSUE 7): all shards share one plan store, so killing the owner
// of a plan rebalances its keys to survivors that warm-load the stored entry
// — the failover costs zero recompiles. The victim is picked by a seeded
// chaos.Drill, the same schedule the CI drill uses.
func TestFailoverServesStoredPlansWithoutRecompiling(t *testing.T) {
	dir := t.TempDir()
	shards := []*testShard{
		newTestShard(t, "fo-a", dir),
		newTestShard(t, "fo-b", dir),
		newTestShard(t, "fo-c", dir),
	}
	if err := shards[0].node.Start(""); err != nil {
		t.Fatal(err)
	}
	for _, sh := range shards[1:] {
		if err := sh.node.Start(shards[0].node.Self().Addr); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, "3-shard convergence", func() bool {
		return shardsConverged(shards, "fo-a", "fo-b", "fo-c")
	})

	// Warm the shared store with distinct structures, all posted to shard 0:
	// the router forwards each to its owner, which compiles once and writes
	// the plan back to the shared directory.
	const nStructs = 4
	bodies := make([][]byte, nStructs)
	fings := make([]string, nStructs)
	for i := range bodies {
		inst := workload.Mixed(24, 3, int64(100+i))
		bodies[i] = multiplyBody(t, inst)
		fp, err := service.RequestFingerprint("/v1/multiply", bodies[i])
		if err != nil {
			t.Fatalf("fingerprint structure %d: %v", i, err)
		}
		fings[i] = fp
		resp, decoded := postMultiply(t, shards[0].srv.URL, bodies[i])
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("warm multiply %d: %s (%v)", i, resp.Status, decoded["error"])
		}
		owner, _ := shards[0].node.Owner(fp)
		if got := resp.Header.Get(ShardHeader); got != owner.ID {
			t.Fatalf("structure %d executed on %s, owner is %s", i, got, owner.ID)
		}
		if got := decoded["fingerprint"]; got != fp {
			t.Fatalf("structure %d: server fingerprint %v, router computed %s", i, got, fp)
		}
	}

	// Every structure compiled exactly once somewhere; wait for the async
	// write-backs so the store holds all plans before the drill strikes.
	probe, err := planstore.Open(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	waitFor(t, "plan write-backs", func() bool {
		entries, err := probe.List()
		return err == nil && len(entries) == nStructs
	})
	var compiled int64
	for _, sh := range shards {
		compiled += sh.ms.Get(service.MetricCompiles)
	}
	if compiled != nStructs {
		t.Fatalf("warm phase compiled %d plans, want %d (one per structure)", compiled, nStructs)
	}

	// The drill picks which plan's owner dies.
	si := chaos.Drill{Seed: 42}.Victim(0, nStructs)
	victimMember, _ := shards[0].node.Owner(fings[si])
	var victim *testShard
	var survivors []*testShard
	for _, sh := range shards {
		if sh.id == victimMember.ID {
			victim = sh
		} else {
			survivors = append(survivors, sh)
		}
	}
	preCompiles := survivors[0].ms.Get(service.MetricCompiles) + survivors[1].ms.Get(service.MetricCompiles)
	t.Logf("drill kills %s, owner of structure %d (%s)", victim.id, si, fings[si])
	victim.kill()

	// Request the orphaned plan through a survivor immediately: whether the
	// failure detector has noticed yet or not, the request must succeed —
	// forwarding falls back to local serving on transport failure.
	resp, decoded := postMultiply(t, survivors[0].srv.URL, bodies[si])
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multiply during failover: %s (%v)", resp.Status, decoded["error"])
	}

	waitFor(t, "survivors converge on 2 members", func() bool {
		return shardsConverged(survivors, survivors[0].id, survivors[1].id)
	})
	if owner, ok := survivors[0].node.Owner(fings[si]); !ok || owner.ID == victim.id {
		t.Fatalf("orphaned plan still owned by dead %s", victim.id)
	}
	if rebal := survivors[0].ms.Get(MetricRebalances); rebal < 1 {
		t.Fatalf("survivor adopted no rebalance (%d)", rebal)
	}

	// Replay every structure against both survivors: all served, and the
	// compile counters have not moved — every plan came out of the shared
	// store or the in-memory cache, never the compiler.
	for _, sh := range survivors {
		for i, body := range bodies {
			resp, decoded := postMultiply(t, sh.srv.URL, body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("post-failover multiply %d on %s: %s (%v)", i, sh.id, resp.Status, decoded["error"])
			}
		}
	}
	postCompiles := survivors[0].ms.Get(service.MetricCompiles) + survivors[1].ms.Get(service.MetricCompiles)
	if postCompiles != preCompiles {
		t.Fatalf("failover recompiled stored plans: survivor compiles %d -> %d", preCompiles, postCompiles)
	}
}

// TestRouterForwardsAndFallsBack pins the router's three behaviors in
// isolation: forwarded requests execute on the owner, a marked request whose
// receiver disagrees about ownership is served where it landed (loop
// prevention), and a dead owner degrades to local service instead of an
// error.
func TestRouterForwardsAndFallsBack(t *testing.T) {
	dir := t.TempDir()
	a := newTestShard(t, "rt-a", dir)
	b := newTestShard(t, "rt-b", dir)
	if err := a.node.Start(""); err != nil {
		t.Fatal(err)
	}
	if err := b.node.Start(a.node.Self().Addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "2-shard convergence", func() bool {
		return shardsConverged([]*testShard{a, b}, "rt-a", "rt-b")
	})

	// Find a structure owned by b, post it to a: it must be forwarded.
	var body []byte
	var fp string
	for seed := int64(0); ; seed++ {
		inst := workload.Mixed(16, 2, 500+seed)
		cand := multiplyBody(t, inst)
		cfp, err := service.RequestFingerprint("/v1/multiply", cand)
		if err != nil {
			t.Fatal(err)
		}
		if owner, _ := a.node.Owner(cfp); owner.ID == "rt-b" {
			body, fp = cand, cfp
			break
		}
	}
	resp, decoded := postMultiply(t, a.srv.URL, body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("forwarded multiply: %s (%v)", resp.Status, decoded["error"])
	}
	if got := resp.Header.Get(ShardHeader); got != "rt-b" {
		t.Fatalf("request executed on %s, want owner rt-b", got)
	}
	if a.ms.Get(MetricForwards) < 1 {
		t.Fatalf("forward not counted on rt-a")
	}

	// A request already marked as forwarded must be served locally even
	// though rt-a's view says rt-b owns it — one hop max, never a loop.
	req, _ := http.NewRequest(http.MethodPost, a.srv.URL+"/v1/multiply", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardHeader, "rt-x")
	marked, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, marked.Body)
	marked.Body.Close()
	if marked.StatusCode != http.StatusOK {
		t.Fatalf("marked request: %s", marked.Status)
	}
	if got := marked.Header.Get(ShardHeader); got != "rt-a" {
		t.Fatalf("marked request executed on %s, want local rt-a", got)
	}
	if a.ms.Get(MetricForwardMiss) < 1 {
		t.Fatalf("ownership mismatch not counted on rt-a")
	}

	// Kill the owner without letting rt-a's view catch up, then post again:
	// the forward fails at the transport and rt-a serves it locally.
	b.node.Stop()
	b.srv.Close()
	b.server.Close()
	resp2, decoded2 := postMultiply(t, a.srv.URL, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("fallback multiply: %s (%v)", resp2.Status, decoded2["error"])
	}
	if got := resp2.Header.Get(ShardHeader); got != "rt-a" {
		t.Fatalf("fallback executed on %s, want rt-a", got)
	}
	if got := decoded2["fingerprint"]; got != fp {
		t.Fatalf("fallback served fingerprint %v, want %s", got, fp)
	}
	if a.ms.Get(MetricForwardFall) < 1 {
		t.Fatalf("forward fallback not counted on rt-a")
	}
}

// TestRouterPassesNonRoutedPathsThrough: classify, health and metrics are
// served wherever they land, with the shard header for observability.
func TestRouterPassesNonRoutedPathsThrough(t *testing.T) {
	dir := t.TempDir()
	a := newTestShard(t, "pt-a", dir)
	if err := a.node.Start(""); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(a.srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz through router: %s", resp.Status)
	}
	if got := resp.Header.Get(ShardHeader); got != "pt-a" {
		t.Fatalf("shard header %q on passthrough", got)
	}
	mresp, err := http.Get(a.srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var metrics map[string]int64
	if err := json.NewDecoder(mresp.Body).Decode(&metrics); err != nil {
		t.Fatal(err)
	}
	if _, ok := metrics[MetricMembers]; !ok {
		t.Fatalf("shard/* gauges missing from /metrics: %v", metrics)
	}
}

// TestRouterRetryAfterOnForwardedOverload: a 503 relayed from the owning
// shard must reach the client with a Retry-After header — supplied by the
// router when the upstream answer lacks one, and passed through untouched
// when the upstream already set it.
func TestRouterRetryAfterOnForwardedOverload(t *testing.T) {
	for _, upstream := range []string{"", "7"} {
		// The "owner" is a stub that sheds everything; with and without its
		// own Retry-After.
		stub := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if upstream != "" {
				w.Header().Set("Retry-After", upstream)
			}
			http.Error(w, `{"error":"overloaded"}`, http.StatusServiceUnavailable)
		}))
		defer stub.Close()

		dir := t.TempDir()
		sh := newTestShard(t, "ra-self", dir)
		if err := sh.node.Start(""); err != nil {
			t.Fatal(err)
		}
		stubMember := Member{ID: "ra-stub", Addr: stub.Listener.Addr().String()}
		sh.node.mu.Lock()
		sh.node.maybeAdoptLocked(View{
			Epoch:   2,
			Leader:  "ra-self",
			Members: []Member{sh.node.Self(), stubMember},
		}, "test")
		sh.node.mu.Unlock()

		// Find a structure the stub owns so the router must forward.
		var body []byte
		for seed := int64(0); ; seed++ {
			cand := multiplyBody(t, workload.Mixed(16, 2, 900+seed))
			fp, err := service.RequestFingerprint("/v1/multiply", cand)
			if err != nil {
				t.Fatal(err)
			}
			if owner, _ := sh.node.Owner(fp); owner.ID == stubMember.ID {
				body = cand
				break
			}
		}
		resp, _ := postMultiply(t, sh.srv.URL, body)
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("upstream %q: status %s, want 503", upstream, resp.Status)
		}
		want := upstream
		if want == "" {
			want = "1"
		}
		if got := resp.Header.Get("Retry-After"); got != want {
			t.Fatalf("upstream %q: Retry-After = %q, want %q", upstream, got, want)
		}
		sh.kill()
	}
}
