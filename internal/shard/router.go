package shard

import (
	"bytes"
	"io"
	"net/http"
	"strings"

	"lbmm/internal/obsv"
	"lbmm/internal/service"
)

const (
	// ForwardHeader marks a proxied request with the forwarding node's ID.
	// A node receiving a marked request serves it locally even when its own
	// view disagrees about ownership: one hop is allowed to be wrong during
	// a rebalance, a loop never is.
	ForwardHeader = "X-Lbmm-Forward"
	// ShardHeader names, on every response, the node that actually executed
	// the request — the observable trail of forwards for tests and drills.
	ShardHeader = "X-Lbmm-Shard"

	// maxRouteBody bounds how much of a request body the router buffers to
	// compute its fingerprint; it matches the support-size bound the wire
	// layer enforces anyway. Larger bodies are passed through locally.
	maxRouteBody = 128 << 20
)

// routedPaths are the endpoints routed by plan fingerprint. Everything else
// (classify, health, metrics, shard protocol) is served where it lands.
func routedPath(path string) bool {
	switch path {
	case "/v1/multiply", "/v1/multiply/batch", "/v1/prepare":
		return true
	}
	return false
}

// Router fronts one shard: it owns the node's membership endpoints, serves
// local traffic through the wrapped service handler, and proxies requests
// whose plan fingerprint hashes to another member. Any shard can therefore
// accept any request; forwarding is an optimization for cache locality,
// never a correctness requirement — on any forwarding trouble the router
// degrades to serving locally (the shared plan store keeps that cheap).
type Router struct {
	node    *Node
	local   http.Handler
	client  *http.Client
	metrics *obsv.CounterSet
}

// NewRouter builds the routing front-end for a node. local is the shard's
// own service handler (service.NewHandler); metrics receives the
// shard/forward* counters — pass the node's set so everything lands in one
// /metrics snapshot. client may be nil for a default.
func NewRouter(node *Node, local http.Handler, client *http.Client, metrics *obsv.CounterSet) *Router {
	if client == nil {
		client = &http.Client{}
	}
	if metrics == nil {
		metrics = obsv.NewCounterSet()
	}
	return &Router{node: node, local: local, client: client, metrics: metrics}
}

// Handler returns the shard's full HTTP surface: membership protocol under
// /shard/v1/, fingerprint-routed serving endpoints, and everything else
// served locally.
func (rt *Router) Handler() http.Handler {
	shardAPI := rt.node.Handler()
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case strings.HasPrefix(r.URL.Path, "/shard/v1/"):
			shardAPI.ServeHTTP(w, r)
		case r.Method == http.MethodPost && routedPath(r.URL.Path):
			rt.route(w, r)
		default:
			rt.serveLocal(w, r, nil)
		}
	})
}

// route buffers the body, fingerprints it, and either serves locally (we
// own it, the body defies fingerprinting, or the request already hopped
// once) or proxies to the owner.
func (rt *Router) route(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxRouteBody))
	if err != nil {
		http.Error(w, "reading request body: "+err.Error(), http.StatusBadRequest)
		return
	}
	fp, err := service.RequestFingerprint(r.URL.Path, body)
	if err != nil {
		// Let the local wire layer produce its canonical 400.
		rt.serveLocal(w, r, body)
		return
	}
	owner, ok := rt.node.Owner(fp)
	self := rt.node.Self()
	if !ok || owner.ID == self.ID {
		rt.serveLocal(w, r, body)
		return
	}
	if from := r.Header.Get(ForwardHeader); from != "" {
		// A peer routed this to us but our view says someone else owns it:
		// the views disagree mid-rebalance. Serving locally is always
		// correct (shared store); bouncing could loop.
		rt.metrics.Add(MetricForwardMiss, 1)
		rt.serveLocal(w, r, body)
		return
	}
	rt.forward(w, r, body, owner)
}

// serveLocal hands the request to the wrapped service handler, restoring
// the buffered body when one was read.
func (rt *Router) serveLocal(w http.ResponseWriter, r *http.Request, body []byte) {
	if body != nil {
		r = r.Clone(r.Context())
		r.Body = io.NopCloser(bytes.NewReader(body))
		r.ContentLength = int64(len(body))
	}
	w.Header().Set(ShardHeader, rt.node.Self().ID)
	rt.local.ServeHTTP(w, r)
}

// forward proxies the request to the owning member and relays the response.
// A transport failure (the owner died between the view and the dial, or
// mid-response) falls back to serving locally — the request must not be
// lost to a routing optimization.
func (rt *Router) forward(w http.ResponseWriter, r *http.Request, body []byte, owner Member) {
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+owner.Addr+r.URL.RequestURI(), bytes.NewReader(body))
	if err != nil {
		rt.serveLocal(w, r, body)
		return
	}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		req.Header.Set("Content-Type", ct)
	}
	req.Header.Set(ForwardHeader, rt.node.Self().ID)
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.metrics.Add(MetricForwardFall, 1)
		rt.serveLocal(w, r, body)
		return
	}
	defer resp.Body.Close()
	rt.metrics.Add(MetricForwards, 1)
	for k, vs := range resp.Header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	if resp.StatusCode == http.StatusServiceUnavailable && w.Header().Get("Retry-After") == "" {
		// A forwarded overload must still tell the client to back off, even
		// if the upstream predates the header.
		w.Header().Set("Retry-After", "1")
	}
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}
