package shard

import (
	"fmt"
	"testing"
)

func fps(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%064x", i*2654435761)
	}
	return out
}

func TestHashRingDeterministic(t *testing.T) {
	members := []Member{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	r1 := BuildRing(members, 64)
	// Same membership presented in a different order must map every key
	// identically — ownership is a pure function of the member set.
	r2 := BuildRing([]Member{{ID: "c"}, {ID: "a"}, {ID: "b"}}, 64)
	for _, fp := range fps(500) {
		o1, ok1 := r1.Owner(fp)
		o2, ok2 := r2.Owner(fp)
		if !ok1 || !ok2 {
			t.Fatalf("owner missing for %s", fp)
		}
		if o1.ID != o2.ID {
			t.Fatalf("ring order changed ownership of %s: %s vs %s", fp, o1.ID, o2.ID)
		}
	}
}

func TestHashRingEmpty(t *testing.T) {
	if _, ok := BuildRing(nil, 0).Owner("00"); ok {
		t.Fatal("empty ring claimed an owner")
	}
	if got := BuildRing(nil, 0).OwnedPermille("a"); got != 0 {
		t.Fatalf("empty ring owns %d permille", got)
	}
}

func TestHashRingBalance(t *testing.T) {
	members := []Member{{ID: "shard-1"}, {ID: "shard-2"}, {ID: "shard-3"}, {ID: "shard-4"}}
	r := BuildRing(members, 0) // default vnodes
	counts := map[string]int{}
	keys := fps(4000)
	for _, fp := range keys {
		o, _ := r.Owner(fp)
		counts[o.ID]++
	}
	var permille int64
	for _, m := range members {
		got := counts[m.ID]
		// With 64 vnodes per member the heaviest shard should stay within
		// ~2x of fair share; grossly unbalanced ownership defeats the tier.
		if fair := len(keys) / len(members); got < fair/2 || got > fair*2 {
			t.Fatalf("shard %s owns %d of %d keys (fair %d)", m.ID, got, len(keys), fair)
		}
		permille += r.OwnedPermille(m.ID)
	}
	if permille < 990 || permille > 1001 {
		t.Fatalf("ownership shares sum to %d permille", permille)
	}
}

// TestHashRingConsistency is the property the tier rebalances by: removing
// one member remaps only the keys it owned — every key owned by a survivor
// keeps its owner, so caches on surviving shards stay warm.
func TestHashRingConsistency(t *testing.T) {
	members := []Member{{ID: "a"}, {ID: "b"}, {ID: "c"}}
	before := BuildRing(members, 64)
	after := BuildRing([]Member{{ID: "a"}, {ID: "b"}}, 64)
	moved := 0
	for _, fp := range fps(2000) {
		was, _ := before.Owner(fp)
		is, _ := after.Owner(fp)
		if was.ID == "c" {
			moved++
			continue // c's keys must land somewhere else, anywhere is fine
		}
		if was.ID != is.ID {
			t.Fatalf("key %s owned by survivor %s moved to %s", fp, was.ID, is.ID)
		}
	}
	if moved == 0 {
		t.Fatal("removed member owned no keys — balance test should have caught this")
	}
}

func TestKeyHashMatchesOwnerArcs(t *testing.T) {
	r := BuildRing([]Member{{ID: "x"}, {ID: "y"}}, 8)
	// Owner must be stable across repeated calls (immutable ring).
	for _, fp := range fps(50) {
		a, _ := r.Owner(fp)
		b, _ := r.Owner(fp)
		if a != b {
			t.Fatalf("owner of %s unstable", fp)
		}
	}
}
