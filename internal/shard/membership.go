package shard

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"lbmm/internal/obsv"
)

// Counter names published by the shard tier (gauges noted).
const (
	MetricMembers      = "shard/members"           // gauge: live members in this node's view
	MetricEpoch        = "shard/epoch"             // gauge: view epoch
	MetricOwnPermille  = "shard/own_permille"      // gauge: share of the key space owned
	MetricIsLeader     = "shard/is_leader"         // gauge: 1 when this node leads
	MetricRebalances   = "shard/rebalances"        // membership changes adopted (ownership remapped)
	MetricRepairs      = "shard/repairs"           // successor deaths this node detected and repaired
	MetricElections    = "shard/elections"         // leader claims this node made
	MetricJoins        = "shard/joins"             // join requests handled
	MetricPings        = "shard/pings"             // alive-checks sent
	MetricPingFails    = "shard/ping_fails"        // alive-checks that failed
	MetricForwards     = "shard/forwards"          // requests proxied to their owner
	MetricForwardMiss  = "shard/forward_mismatch"  // forwarded-to requests we did not own
	MetricForwardFall  = "shard/forward_fallbacks" // forwards that failed and were served locally
	MetricAuthRejected = "shard/auth_rejected"     // membership changes refused for a missing/wrong token
)

// View is an epoch-stamped membership snapshot. Higher epochs win
// everywhere; equal epochs are tie-broken by a canonical digest so two
// nodes that bump concurrently still converge on one view.
type View struct {
	Epoch   uint64   `json:"epoch"`
	Leader  string   `json:"leader"`
	Members []Member `json:"members"`
}

// digest canonically hashes a view for the equal-epoch tiebreak.
func (v View) digest() uint64 {
	var b bytes.Buffer
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v.Epoch)
	b.Write(buf[:])
	b.WriteString(v.Leader)
	ms := append([]Member(nil), v.Members...)
	sort.Slice(ms, func(i, j int) bool { return ms[i].ID < ms[j].ID })
	for _, m := range ms {
		b.WriteString("\x00")
		b.WriteString(m.ID)
		b.WriteString("\x01")
		b.WriteString(m.Addr)
	}
	return hash64(ringDomain, "view", b.String())
}

// has reports whether id is a member of the view.
func (v View) has(id string) bool {
	for _, m := range v.Members {
		if m.ID == id {
			return true
		}
	}
	return false
}

// sameMembers reports whether two views list the same (ID, Addr) set.
func sameMembers(a, b View) bool {
	if len(a.Members) != len(b.Members) {
		return false
	}
	for _, m := range a.Members {
		found := false
		for _, o := range b.Members {
			if o == m {
				found = true
				break
			}
		}
		if !found {
			return false
		}
	}
	return true
}

// Config tunes a membership node. The zero value of every field gets a
// sensible default.
type Config struct {
	// ID is the node's stable identity (default: Addr). Ring order — and
	// therefore next/twice-next pointers — is ID order.
	ID string
	// Addr is the advertised HTTP address peers dial, host:port.
	Addr string
	// VNodes is the virtual-node count per member (default DefaultVNodes).
	VNodes int
	// HeartbeatEvery is the alive-check period (default 250ms).
	HeartbeatEvery time.Duration
	// PingTimeout bounds one alive-check round trip (default 1s).
	PingTimeout time.Duration
	// SuspectAfter is how many consecutive failed alive-checks declare the
	// successor dead (default 2: one lost ping is weather, two is a corpse).
	SuspectAfter int
	// ElectionMin/ElectionMax bound the randomized wait before a node
	// claims a vacant leadership (defaults 150ms / 600ms). The jitter makes
	// one claimant likely; the epoch/digest rule resolves the rest.
	ElectionMin, ElectionMax time.Duration
	// Metrics receives the shard/* counters; a fresh set when nil.
	Metrics *obsv.CounterSet
	// Logf, when non-nil, receives membership events (joins, repairs,
	// elections) — the operator trail.
	Logf func(format string, args ...any)
	// Client performs peer HTTP calls (default: a client with PingTimeout).
	Client *http.Client
	// AuthToken, when non-empty, guards the state-mutating membership
	// endpoints (POST /shard/v1/join|view|leave): requests must carry
	// "Authorization: Bearer <token>" or are refused with 403. The node
	// presents the same token on its own outgoing membership calls, so one
	// shared secret covers the whole ring. Read-only endpoints (ping,
	// owner, info) stay open — they leak topology, not membership control.
	AuthToken string
}

func (c Config) withDefaults() Config {
	if c.ID == "" {
		c.ID = c.Addr
	}
	if c.VNodes <= 0 {
		c.VNodes = DefaultVNodes
	}
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 250 * time.Millisecond
	}
	if c.PingTimeout <= 0 {
		c.PingTimeout = time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.ElectionMin <= 0 {
		c.ElectionMin = 150 * time.Millisecond
	}
	if c.ElectionMax <= c.ElectionMin {
		c.ElectionMax = c.ElectionMin + 450*time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewCounterSet()
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	if c.Client == nil {
		c.Client = &http.Client{Timeout: c.PingTimeout}
	}
	return c
}

// Node is one member of the shard ring: it tracks the membership view,
// derives the ownership ring from it, alive-checks its successor, repairs
// the ring through the twice-next pointer when the successor dies, and
// participates in the minimal leader election. All methods are safe for
// concurrent use.
type Node struct {
	cfg  Config
	self Member

	mu       sync.Mutex
	view     View
	ring     *HashRing
	failures int         // consecutive alive-check failures on the current successor
	suspect  string      // the successor the failures count against
	electAt  *time.Timer // pending leadership claim, nil when none

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
	rng      *rand.Rand
	metrics  *obsv.CounterSet
}

// NewNode builds a node; it does not join anything until Start.
func NewNode(cfg Config) *Node {
	cfg = cfg.withDefaults()
	n := &Node{
		cfg:     cfg,
		self:    Member{ID: cfg.ID, Addr: cfg.Addr},
		stop:    make(chan struct{}),
		metrics: cfg.Metrics,
		// Seeded from the node identity: distinct jitter per node, and a
		// deterministic replay for a given ID (no wall-clock in the seed).
		rng: rand.New(rand.NewSource(int64(hash64(ringDomain, "jitter", cfg.ID)))),
	}
	n.adoptLocked(View{Epoch: 1, Leader: n.self.ID, Members: []Member{n.self}}, "boot")
	return n
}

// Self returns this node's member record.
func (n *Node) Self() Member { return n.self }

// View returns the current membership view.
func (n *Node) View() View {
	n.mu.Lock()
	defer n.mu.Unlock()
	return View{Epoch: n.view.Epoch, Leader: n.view.Leader, Members: append([]Member(nil), n.view.Members...)}
}

// Owner returns the member owning a fingerprint under the current view.
func (n *Node) Owner(fingerprint string) (Member, bool) {
	n.mu.Lock()
	r := n.ring
	n.mu.Unlock()
	return r.Owner(fingerprint)
}

// IsLeader reports whether this node currently leads the ring.
func (n *Node) IsLeader() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.view.Leader == n.self.ID
}

// Start begins the alive-check loop. When join is non-empty the node first
// announces itself to that address (any existing member) and adopts the
// returned view; an empty join boots a fresh single-node ring, leader self.
// The join is retried for a short window so a fleet whose processes start
// simultaneously (systemd, a test harness) does not die on the race between
// the seed binding its listener and the joiners dialing it.
func (n *Node) Start(join string) error {
	if join != "" {
		var v View
		var err error
		for attempt := 0; attempt < 8; attempt++ {
			if v, err = n.callJoin(join); err == nil {
				break
			}
			select {
			case <-n.stop:
				return fmt.Errorf("shard: join %s: %w", join, err)
			case <-time.After(time.Duration(attempt+1) * 50 * time.Millisecond):
			}
		}
		if err != nil {
			return fmt.Errorf("shard: join %s: %w", join, err)
		}
		n.mu.Lock()
		n.maybeAdoptLocked(v, "join")
		n.mu.Unlock()
	}
	n.wg.Add(1)
	go n.heartbeatLoop()
	return nil
}

// Stop halts the alive-check loop and any pending election timer. It does
// not announce a leave — a stopped node looks exactly like a crashed one,
// which is the failure path the ring is built to absorb. Use Leave for a
// graceful departure first.
func (n *Node) Stop() {
	n.stopOnce.Do(func() { close(n.stop) })
	n.mu.Lock()
	if n.electAt != nil {
		n.electAt.Stop()
		n.electAt = nil
	}
	n.mu.Unlock()
	n.wg.Wait()
}

// Leave gracefully removes this node from the ring: it bumps the epoch,
// hands leadership to the lowest surviving ID when it held it, and
// broadcasts the view so survivors rebalance immediately instead of
// waiting out an alive-check.
func (n *Node) Leave() {
	n.mu.Lock()
	next := View{Epoch: n.view.Epoch + 1, Leader: n.view.Leader}
	for _, m := range n.view.Members {
		if m.ID != n.self.ID {
			next.Members = append(next.Members, m)
		}
	}
	if next.Leader == n.self.ID {
		next.Leader = ""
		if len(next.Members) > 0 {
			next.Leader = next.Members[0].ID // members are ID-sorted
		}
	}
	peers := n.peersLocked()
	n.mu.Unlock()
	n.cfg.Logf("shard %s: leaving ring (epoch %d)", n.self.ID, next.Epoch)
	n.broadcast(next, peers)
}

// ---------------------------------------------------------------------------
// view adoption

// adoptLocked installs a view unconditionally and rebuilds the ownership
// ring. Caller holds n.mu.
func (n *Node) adoptLocked(v View, why string) {
	sort.Slice(v.Members, func(i, j int) bool { return v.Members[i].ID < v.Members[j].ID })
	membersChanged := !sameMembers(n.view, v)
	n.view = v
	if membersChanged || n.ring == nil {
		n.ring = BuildRing(v.Members, n.cfg.VNodes)
		if why != "boot" {
			n.metrics.Add(MetricRebalances, 1)
		}
		// Membership changed under the failure detector: restart the count
		// against whoever the successor is now.
		n.failures, n.suspect = 0, ""
	}
	n.metrics.Set(MetricMembers, int64(len(v.Members)))
	n.metrics.Set(MetricEpoch, int64(v.Epoch))
	n.metrics.Set(MetricOwnPermille, n.ring.OwnedPermille(n.self.ID))
	lead := int64(0)
	if v.Leader == n.self.ID {
		lead = 1
	}
	n.metrics.Set(MetricIsLeader, lead)
	n.cfg.Logf("shard %s: view epoch %d, %d members, leader %q (%s)",
		n.self.ID, v.Epoch, len(v.Members), v.Leader, why)
}

// maybeAdoptLocked applies the convergence rule: higher epoch wins, equal
// epochs tie-break on the canonical digest. It schedules an election when
// the adopted view has no live leader, and re-joins when this node was
// dropped from a view it is plainly alive to receive. Caller holds n.mu.
// Returns whether v was adopted.
func (n *Node) maybeAdoptLocked(v View, why string) bool {
	cur := n.view
	if v.Epoch < cur.Epoch || (v.Epoch == cur.Epoch && v.digest() <= cur.digest()) {
		return false
	}
	n.adoptLocked(v, why)
	if !v.has(n.self.ID) {
		// A failure detector somewhere declared us dead while we are alive
		// (a stalled heartbeat, a partition that healed). Re-announce rather
		// than wedge: bump the epoch with ourselves restored.
		rejoined := View{Epoch: v.Epoch + 1, Leader: v.Leader, Members: append(v.Members, n.self)}
		if rejoined.Leader == "" {
			rejoined.Leader = n.self.ID
		}
		n.adoptLocked(rejoined, "rejoin")
		peers := n.peersLocked()
		go n.broadcast(rejoined, peers)
		return true
	}
	if v.Leader == "" || !v.has(v.Leader) {
		n.scheduleElectionLocked()
	} else if n.electAt != nil {
		// A leader emerged while we were waiting to claim: stand down.
		n.electAt.Stop()
		n.electAt = nil
	}
	return true
}

// ---------------------------------------------------------------------------
// ring pointers + alive-check loop

// successorsLocked returns the next and twice-next members after self in ID
// order, skipping self. ok is false when the node is alone. Caller holds
// n.mu.
func (n *Node) successorsLocked() (next, twiceNext Member, ok bool) {
	ms := n.view.Members // ID-sorted by adoptLocked
	if len(ms) < 2 {
		return Member{}, Member{}, false
	}
	i := 0
	for ; i < len(ms); i++ {
		if ms[i].ID == n.self.ID {
			break
		}
	}
	next = ms[(i+1)%len(ms)]
	twiceNext = ms[(i+2)%len(ms)]
	return next, twiceNext, true
}

// peersLocked returns every member except self. Caller holds n.mu.
func (n *Node) peersLocked() []Member {
	out := make([]Member, 0, len(n.view.Members))
	for _, m := range n.view.Members {
		if m.ID != n.self.ID {
			out = append(out, m)
		}
	}
	return out
}

// heartbeatLoop is the ring's failure detector: every HeartbeatEvery it
// alive-checks the successor; SuspectAfter consecutive failures declare it
// dead and repair the ring through the twice-next pointer. The ping
// response carries the peer's whole view, so heartbeats double as
// anti-entropy (a node that missed a broadcast converges on the next beat).
func (n *Node) heartbeatLoop() {
	defer n.wg.Done()
	tick := time.NewTicker(n.cfg.HeartbeatEvery)
	defer tick.Stop()
	for {
		select {
		case <-n.stop:
			return
		case <-tick.C:
			n.checkSuccessor()
		}
	}
}

func (n *Node) checkSuccessor() {
	n.mu.Lock()
	next, twiceNext, ok := n.successorsLocked()
	if !ok {
		n.failures, n.suspect = 0, ""
		n.mu.Unlock()
		return
	}
	if n.suspect != next.ID {
		n.failures, n.suspect = 0, next.ID
	}
	n.mu.Unlock()

	n.metrics.Add(MetricPings, 1)
	v, err := n.callPing(next.Addr)
	if err == nil {
		n.mu.Lock()
		n.failures = 0
		n.maybeAdoptLocked(v, "gossip")
		n.mu.Unlock()
		return
	}
	n.metrics.Add(MetricPingFails, 1)

	n.mu.Lock()
	if n.suspect != next.ID || !n.view.has(next.ID) {
		// Membership moved under us while the ping was in flight.
		n.mu.Unlock()
		return
	}
	n.failures++
	if n.failures < n.cfg.SuspectAfter {
		n.mu.Unlock()
		return
	}
	// The successor is dead: close the ring over it (the classic repair —
	// our new successor is the old twice-next) and tell everyone.
	repaired := View{Epoch: n.view.Epoch + 1, Leader: n.view.Leader}
	for _, m := range n.view.Members {
		if m.ID != next.ID {
			repaired.Members = append(repaired.Members, m)
		}
	}
	if repaired.Leader == next.ID {
		repaired.Leader = "" // the dead node led; an election will follow
	}
	n.metrics.Add(MetricRepairs, 1)
	n.cfg.Logf("shard %s: successor %s dead after %d failed checks, repairing ring toward %s (epoch %d)",
		n.self.ID, next.ID, n.failures, twiceNext.ID, repaired.Epoch)
	n.maybeAdoptLocked(repaired, "repair")
	peers := n.peersLocked()
	n.mu.Unlock()
	n.broadcast(repaired, peers)
}

// ---------------------------------------------------------------------------
// leader election

// scheduleElectionLocked arms a randomized-timeout leadership claim — the
// minimal election the ring needs: leadership only drives anti-entropy
// broadcasts, so the cost of a transient double-claim is one extra epoch
// bump, and the epoch/digest rule resolves it. Caller holds n.mu.
func (n *Node) scheduleElectionLocked() {
	if n.electAt != nil {
		return
	}
	jitter := n.cfg.ElectionMin +
		time.Duration(n.rng.Int63n(int64(n.cfg.ElectionMax-n.cfg.ElectionMin)))
	n.electAt = time.AfterFunc(jitter, func() {
		select {
		case <-n.stop:
			return
		default:
		}
		n.mu.Lock()
		n.electAt = nil
		if n.view.Leader != "" && n.view.has(n.view.Leader) {
			n.mu.Unlock()
			return // someone claimed while we waited
		}
		claimed := View{Epoch: n.view.Epoch + 1, Leader: n.self.ID, Members: n.view.Members}
		n.metrics.Add(MetricElections, 1)
		n.cfg.Logf("shard %s: claiming leadership (epoch %d)", n.self.ID, claimed.Epoch)
		n.adoptLocked(claimed, "elected")
		peers := n.peersLocked()
		n.mu.Unlock()
		n.broadcast(claimed, peers)
	})
}

// ---------------------------------------------------------------------------
// peer HTTP protocol

// wireJoin is the body of POST /shard/v1/join.
type wireJoin struct {
	Member Member `json:"member"`
}

// broadcast pushes a view to peers concurrently. A peer holding a newer
// view answers with it and the node converges on the reply; unreachable
// peers are the failure detector's problem, not broadcast's.
func (n *Node) broadcast(v View, peers []Member) {
	var wg sync.WaitGroup
	for _, p := range peers {
		wg.Add(1)
		go func(p Member) {
			defer wg.Done()
			reply, err := n.postView(p.Addr, v)
			if err != nil {
				return
			}
			n.mu.Lock()
			n.maybeAdoptLocked(reply, "broadcast-reply")
			n.mu.Unlock()
		}(p)
	}
	wg.Wait()
}

func (n *Node) callJoin(addr string) (View, error) {
	body, _ := json.Marshal(wireJoin{Member: n.self})
	return n.postJSON(addr, "/shard/v1/join", body)
}

func (n *Node) postView(addr string, v View) (View, error) {
	body, _ := json.Marshal(v)
	return n.postJSON(addr, "/shard/v1/view", body)
}

func (n *Node) callPing(addr string) (View, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PingTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+addr+"/shard/v1/ping", nil)
	if err != nil {
		return View{}, err
	}
	return n.doView(req)
}

func (n *Node) postJSON(addr, path string, body []byte) (View, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.PingTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, "http://"+addr+path, bytes.NewReader(body))
	if err != nil {
		return View{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	if n.cfg.AuthToken != "" {
		req.Header.Set("Authorization", "Bearer "+n.cfg.AuthToken)
	}
	return n.doView(req)
}

func (n *Node) doView(req *http.Request) (View, error) {
	resp, err := n.cfg.Client.Do(req)
	if err != nil {
		return View{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return View{}, fmt.Errorf("%s: %s", resp.Status, bytes.TrimSpace(b))
	}
	var v View
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		return View{}, err
	}
	return v, nil
}

// Handler returns the membership protocol endpoints, to be mounted under
// /shard/v1/ by the router:
//
//	POST /shard/v1/join   a new (or returning) member announces itself
//	POST /shard/v1/view   epoch-stamped view propagation (returns ours)
//	POST /shard/v1/leave  graceful departure of a member
//	GET  /shard/v1/ping   alive-check; the reply carries the full view
//	GET  /shard/v1/owner  ?fp=… → owning member under the current view
//	GET  /shard/v1/info   membership + ownership introspection
func (n *Node) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /shard/v1/join", n.authorized(func(w http.ResponseWriter, r *http.Request) {
		var jr wireJoin
		if err := json.NewDecoder(r.Body).Decode(&jr); err != nil || jr.Member.ID == "" || jr.Member.Addr == "" {
			http.Error(w, "join needs {member:{id,addr}}", http.StatusBadRequest)
			return
		}
		n.metrics.Add(MetricJoins, 1)
		n.mu.Lock()
		joined := View{Epoch: n.view.Epoch + 1, Leader: n.view.Leader}
		for _, m := range n.view.Members {
			if m.ID != jr.Member.ID {
				joined.Members = append(joined.Members, m)
			}
		}
		joined.Members = append(joined.Members, jr.Member)
		if joined.Leader == "" || !joined.has(joined.Leader) {
			joined.Leader = n.self.ID
		}
		n.cfg.Logf("shard %s: %s joined at %s (epoch %d)", n.self.ID, jr.Member.ID, jr.Member.Addr, joined.Epoch)
		n.adoptLocked(joined, "member-join")
		peers := n.peersLocked()
		n.mu.Unlock()
		go n.broadcast(joined, peers)
		writeView(w, joined)
	}))
	mux.HandleFunc("POST /shard/v1/view", n.authorized(func(w http.ResponseWriter, r *http.Request) {
		var v View
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			http.Error(w, "bad view body", http.StatusBadRequest)
			return
		}
		n.mu.Lock()
		n.maybeAdoptLocked(v, "peer-view")
		cur := n.view
		n.mu.Unlock()
		writeView(w, cur)
	}))
	mux.HandleFunc("POST /shard/v1/leave", n.authorized(func(w http.ResponseWriter, r *http.Request) {
		var v View
		if err := json.NewDecoder(r.Body).Decode(&v); err != nil {
			http.Error(w, "bad leave body", http.StatusBadRequest)
			return
		}
		n.mu.Lock()
		n.maybeAdoptLocked(v, "member-leave")
		cur := n.view
		n.mu.Unlock()
		writeView(w, cur)
	}))
	mux.HandleFunc("GET /shard/v1/ping", func(w http.ResponseWriter, r *http.Request) {
		writeView(w, n.View())
	})
	mux.HandleFunc("GET /shard/v1/owner", func(w http.ResponseWriter, r *http.Request) {
		fp := r.URL.Query().Get("fp")
		if fp == "" {
			http.Error(w, "owner needs ?fp=<fingerprint>", http.StatusBadRequest)
			return
		}
		owner, ok := n.Owner(fp)
		if !ok {
			http.Error(w, "empty ring", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"fingerprint": fp, "id": owner.ID, "addr": owner.Addr,
		})
	})
	mux.HandleFunc("GET /shard/v1/info", func(w http.ResponseWriter, r *http.Request) {
		n.mu.Lock()
		info := struct {
			Self        Member `json:"self"`
			View        View   `json:"view"`
			OwnPermille int64  `json:"own_permille"`
			VNodes      int    `json:"vnodes"`
		}{
			Self:        n.self,
			View:        n.view,
			OwnPermille: n.ring.OwnedPermille(n.self.ID),
			VNodes:      n.cfg.VNodes,
		}
		n.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(info)
	})
	return mux
}

// authorized wraps a state-mutating handler with the shared-secret check:
// with an AuthToken configured, the request must present it as a bearer
// token or is refused before any membership state is read.
func (n *Node) authorized(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if n.cfg.AuthToken != "" {
			// Constant-time compare: the check guards an open port, so
			// equality must not leak how much of a guessed token matched.
			got, ok := strings.CutPrefix(r.Header.Get("Authorization"), "Bearer ")
			if !ok || subtle.ConstantTimeCompare([]byte(got), []byte(n.cfg.AuthToken)) != 1 {
				n.metrics.Add(MetricAuthRejected, 1)
				http.Error(w, "shard: membership change requires a matching auth token", http.StatusForbidden)
				return
			}
		}
		h(w, r)
	}
}

func writeView(w http.ResponseWriter, v View) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}
