package shard

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lbmm/internal/obsv"
)

// testNode is one in-process ring member: a Node plus the httptest server
// that exposes its membership protocol — the same wiring `lbmm serve -ring`
// does, minus the service handler (router_test covers that layering).
type testNode struct {
	node *Node
	srv  *httptest.Server
	ms   *obsv.CounterSet
}

func (tn *testNode) kill() {
	tn.srv.Close()
	tn.node.Stop()
}

// newTestNode builds a node with drill-speed timers: deaths are detected in
// tens of milliseconds so the scenarios below finish in a couple of seconds.
func newTestNode(t *testing.T, id string) *testNode {
	t.Helper()
	ms := obsv.NewCounterSet()
	srv := httptest.NewUnstartedServer(nil)
	n := NewNode(Config{
		ID:             id,
		Addr:           srv.Listener.Addr().String(),
		HeartbeatEvery: 15 * time.Millisecond,
		PingTimeout:    250 * time.Millisecond,
		SuspectAfter:   2,
		ElectionMin:    20 * time.Millisecond,
		ElectionMax:    120 * time.Millisecond,
		Metrics:        ms,
		Logf:           t.Logf,
	})
	srv.Config.Handler = n.Handler()
	srv.Start()
	tn := &testNode{node: n, srv: srv, ms: ms}
	t.Cleanup(tn.kill)
	return tn
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(8 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// converged reports whether every listed node sees exactly the given member
// IDs and a leader drawn from them.
func converged(nodes []*testNode, ids ...string) bool {
	want := map[string]bool{}
	for _, id := range ids {
		want[id] = true
	}
	for _, tn := range nodes {
		v := tn.node.View()
		if len(v.Members) != len(ids) || !want[v.Leader] {
			return false
		}
		for _, m := range v.Members {
			if !want[m.ID] {
				return false
			}
		}
	}
	return true
}

// TestMembershipLifecycle walks the full drill: three nodes join and
// converge on one view, agree on ownership; the leader is killed and the
// survivors repair the ring and elect a replacement; the dead identity
// rejoins at a new address and the ring re-converges without wedging.
func TestMembershipLifecycle(t *testing.T) {
	a := newTestNode(t, "node-a")
	b := newTestNode(t, "node-b")
	c := newTestNode(t, "node-c")

	if err := a.node.Start(""); err != nil {
		t.Fatal(err)
	}
	if err := b.node.Start(a.node.Self().Addr); err != nil {
		t.Fatal(err)
	}
	// Joining through a non-founding member must work the same: any member
	// can admit a new one.
	if err := c.node.Start(b.node.Self().Addr); err != nil {
		t.Fatal(err)
	}

	all := []*testNode{a, b, c}
	waitFor(t, "3-node convergence", func() bool {
		return converged(all, "node-a", "node-b", "node-c")
	})

	// Ownership must agree across replicas of the same view.
	for _, fp := range fps(64) {
		oa, _ := a.node.Owner(fp)
		ob, _ := b.node.Owner(fp)
		oc, _ := c.node.Owner(fp)
		if oa.ID != ob.ID || ob.ID != oc.ID {
			t.Fatalf("nodes disagree on owner of %s: %s/%s/%s", fp, oa.ID, ob.ID, oc.ID)
		}
	}

	// Kill the leader — the worst single failure: the ring loses both a
	// member and its election anchor at once.
	leader := a.node.View().Leader
	var dead *testNode
	var survivors []*testNode
	for _, tn := range all {
		if tn.node.Self().ID == leader {
			dead = tn
		} else {
			survivors = append(survivors, tn)
		}
	}
	t.Logf("killing leader %s", leader)
	dead.kill()

	survivorIDs := []string{survivors[0].node.Self().ID, survivors[1].node.Self().ID}
	waitFor(t, "repair + election after leader death", func() bool {
		return converged(survivors, survivorIDs...)
	})
	if repairs := survivors[0].ms.Get(MetricRepairs) + survivors[1].ms.Get(MetricRepairs); repairs < 1 {
		t.Fatalf("no survivor counted a ring repair (got %d)", repairs)
	}
	if elections := survivors[0].ms.Get(MetricElections) + survivors[1].ms.Get(MetricElections); elections < 1 {
		t.Fatalf("leader died but nobody counted an election (got %d)", elections)
	}

	// The dead identity comes back on a fresh port (a restarted process) and
	// joins through a survivor; the ring must fold it back in.
	reborn := newTestNode(t, leader)
	if err := reborn.node.Start(survivors[0].node.Self().Addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "rejoin convergence", func() bool {
		return converged([]*testNode{survivors[0], survivors[1], reborn}, "node-a", "node-b", "node-c")
	})
	if p := reborn.ms.Get(MetricOwnPermille); p <= 0 {
		t.Fatalf("rejoined node owns %d permille — rebalance did not restore its arcs", p)
	}
}

// TestMembershipGracefulLeave checks the fast path: a leaving node
// broadcasts its own removal, so survivors rebalance immediately instead of
// burning alive-check rounds on a corpse.
func TestMembershipGracefulLeave(t *testing.T) {
	a := newTestNode(t, "left-a")
	b := newTestNode(t, "left-b")
	c := newTestNode(t, "left-c")
	if err := a.node.Start(""); err != nil {
		t.Fatal(err)
	}
	if err := b.node.Start(a.node.Self().Addr); err != nil {
		t.Fatal(err)
	}
	if err := c.node.Start(a.node.Self().Addr); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "3-node convergence", func() bool {
		return converged([]*testNode{a, b, c}, "left-a", "left-b", "left-c")
	})

	c.node.Leave()
	c.node.Stop()
	c.srv.Close()
	waitFor(t, "survivors adopt the leave", func() bool {
		return converged([]*testNode{a, b}, "left-a", "left-b")
	})
}

// TestRejoinOnDroppedView exercises the anti-wedge rule directly: a node
// that receives a newer view not listing itself must re-announce instead of
// serving forever as a ghost no ring member routes to.
func TestRejoinOnDroppedView(t *testing.T) {
	n := NewNode(Config{ID: "ghost", Addr: "127.0.0.1:0", Metrics: obsv.NewCounterSet()})
	defer n.Stop()
	h := n.Handler()

	dropped := View{Epoch: 5, Leader: "other", Members: []Member{{ID: "other", Addr: "127.0.0.1:1"}}}
	body, _ := json.Marshal(dropped)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/shard/v1/view", bytes.NewReader(body)))
	if rec.Code != http.StatusOK {
		t.Fatalf("view post: %d", rec.Code)
	}

	v := n.View()
	if !v.has("ghost") {
		t.Fatalf("node accepted a view dropping itself: %+v", v)
	}
	if v.Epoch <= dropped.Epoch {
		t.Fatalf("rejoin must outbid the dropping view: epoch %d <= %d", v.Epoch, dropped.Epoch)
	}
	if !v.has("other") {
		t.Fatalf("rejoin lost the other member: %+v", v)
	}
}

// TestViewConvergenceRule pins the epoch/digest ordering the whole protocol
// rests on: older epochs never win, equal epochs resolve identically on both
// sides of a concurrent bump.
func TestViewConvergenceRule(t *testing.T) {
	n := NewNode(Config{ID: "r", Addr: "127.0.0.1:0", Metrics: obsv.NewCounterSet()})
	defer n.Stop()

	newer := View{Epoch: 3, Leader: "r", Members: []Member{{ID: "r", Addr: "127.0.0.1:0"}, {ID: "s", Addr: "x"}}}
	n.mu.Lock()
	if !n.maybeAdoptLocked(newer, "test") {
		n.mu.Unlock()
		t.Fatal("newer epoch rejected")
	}
	stale := View{Epoch: 2, Leader: "s", Members: []Member{{ID: "s", Addr: "x"}, {ID: "r", Addr: "127.0.0.1:0"}}}
	if n.maybeAdoptLocked(stale, "test") {
		n.mu.Unlock()
		t.Fatal("stale epoch adopted")
	}
	same := n.view
	if n.maybeAdoptLocked(same, "test") {
		n.mu.Unlock()
		t.Fatal("identical view re-adopted (digest tie must be stable)")
	}
	n.mu.Unlock()

	// Equal epoch, different digest: exactly one of the two orderings wins,
	// and both nodes agree which — that is all convergence needs.
	va := View{Epoch: 9, Leader: "a", Members: []Member{{ID: "a"}, {ID: "b"}}}
	vb := View{Epoch: 9, Leader: "b", Members: []Member{{ID: "a"}, {ID: "b"}}}
	if (va.digest() <= vb.digest()) == (vb.digest() <= va.digest()) {
		t.Fatalf("digest tiebreak not a strict order: %d vs %d", va.digest(), vb.digest())
	}
}

// TestOwnerEndpoint covers the introspection route `lbmm fingerprint -via`
// relies on.
func TestOwnerEndpoint(t *testing.T) {
	a := newTestNode(t, "solo")
	if err := a.node.Start(""); err != nil {
		t.Fatal(err)
	}
	fp := fmt.Sprintf("%064x", 7)
	resp, err := http.Get(a.srv.URL + "/shard/v1/owner?fp=" + fp)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Fingerprint string `json:"fingerprint"`
		ID          string `json:"id"`
		Addr        string `json:"addr"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "solo" || got.Fingerprint != fp || got.Addr != a.node.Self().Addr {
		t.Fatalf("owner endpoint answered %+v", got)
	}
	bad, err := http.Get(a.srv.URL + "/shard/v1/owner")
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("owner without fp: %s", bad.Status)
	}
}
