package exper

import (
	"fmt"
	"strings"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// Table2Row is one measured row of the classification table.
type Table2Row struct {
	Classes   [3]matrix.Class
	Band      core.Band
	Upper     string
	Lower     string
	Rounds    int // measured rounds of the auto-selected algorithm
	Triangles int
	N, D      int
}

// Table2 regenerates the paper's Table 2: for every multiset of
// {US, BD, AS, GM} it generates a representative instance, runs the
// dispatcher's algorithm on it (verified), and reports the classification
// band with its bounds plus the measured rounds.
func Table2(scale Scale) ([]Table2Row, error) {
	n, d := 36, 3
	if scale == Full {
		n, d = 72, 4
	}
	var rows []Table2Row
	for _, tr := range core.Table2() {
		inst := workload.Instance(tr.Classes[0], tr.Classes[1], tr.Classes[2], n, d, 7)
		a := matrix.Random(inst.Ahat, ring.Counting{}, 1)
		b := matrix.Random(inst.Bhat, ring.Counting{}, 2)
		x, rep, err := core.Multiply(a, b, inst.Xhat, core.Options{Ring: ring.Counting{}, D: d})
		if err != nil {
			return nil, fmt.Errorf("row %v: %w", tr.Classes, err)
		}
		want := matrix.MulReference(a, b, inst.Xhat)
		if !matrix.Equal(x, want) {
			return nil, fmt.Errorf("row %v: wrong product", tr.Classes)
		}
		rows = append(rows, Table2Row{
			Classes: tr.Classes, Band: tr.Band, Upper: tr.Upper, Lower: tr.Lower,
			Rounds: rep.Rounds, Triangles: rep.Triangles, N: n, D: d,
		})
	}
	return rows, nil
}

// FormatTable2 renders the measured classification table.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	b.WriteString("Table 2 — classification (measured on generated instances)\n\n")
	fmt.Fprintf(&b, "%-14s %-12s %-38s %-28s %8s %8s\n",
		"Sparsity", "Band", "Upper bound", "Lower bound", "|T|", "rounds")
	for _, r := range rows {
		name := fmt.Sprintf("[%v:%v:%v]", r.Classes[0], r.Classes[1], r.Classes[2])
		fmt.Fprintf(&b, "%-14s %-12s %-38s %-28s %8d %8d\n",
			name, r.Band, r.Upper, r.Lower, r.Triangles, r.Rounds)
	}
	return b.String()
}
