package exper

import (
	"encoding/json"

	"lbmm/internal/params"
)

// AllResults bundles every experiment's data for machine consumption
// (plotting, regression tracking).
type AllResults struct {
	Table1     []Series
	Table2     []Table2Row
	Table3     []params.Step
	Table4     []params.Step
	Strassen   []params.Step
	Milestones []params.Milestone
	Lower      []LowerRow
	Ablation   []AblationRow
	Support    []SupportRow
}

// All runs every experiment at the given scale.
func All(scale Scale) (*AllResults, error) {
	out := &AllResults{
		Table3:     params.TableSemiring(),
		Table4:     params.TableField(),
		Strassen:   params.TableStrassen(),
		Milestones: params.Milestones(),
	}
	var err error
	if out.Table1, err = Table1(scale); err != nil {
		return nil, err
	}
	if out.Table2, err = Table2(scale); err != nil {
		return nil, err
	}
	if out.Lower, err = LowerBounds(scale); err != nil {
		return nil, err
	}
	if err = CheckLowerRows(out.Lower); err != nil {
		return nil, err
	}
	if out.Ablation, err = AblationLemma31(scale); err != nil {
		return nil, err
	}
	if out.Support, err = SupportCost(scale); err != nil {
		return nil, err
	}
	return out, nil
}

// JSON renders all experiments as indented JSON.
func JSON(scale Scale) ([]byte, error) {
	all, err := All(scale)
	if err != nil {
		return nil, err
	}
	return json.MarshalIndent(all, "", "  ")
}
