package exper

import (
	"fmt"
	"strings"

	"lbmm/internal/algo"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// SupportRow compares the supported and unsupported models on one instance.
type SupportRow struct {
	N, D                int
	Words               int // structure words disseminated
	SupportedRounds     int
	UnsupportedRounds   int
	DisseminationRounds int
}

// SupportCost measures what knowing the sparsity structure in advance is
// worth (the paper's §1.6 open direction, baselined): the same instances
// solved in the supported model and in the trivial unsupported protocol
// (structure gathered and pipeline-broadcast, then the supported algorithm).
// The dissemination's Θ(nnz) rounds dwarf the supported O(d²+log n) —
// quantifying why the supported model is the interesting regime.
func SupportCost(scale Scale) ([]SupportRow, error) {
	ns := []int{32, 64, 128}
	if scale == Full {
		ns = []int{32, 128, 512}
	}
	r := ring.Counting{}
	var rows []SupportRow
	for _, n := range ns {
		d := 3
		inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, int64(n))
		sup, err := runVerified(r, inst, algo.LemmaOnly, 1)
		if err != nil {
			return nil, err
		}
		unsup, err := runVerified(r, inst, algo.Unsupported(algo.LemmaOnly), 1)
		if err != nil {
			return nil, err
		}
		rows = append(rows, SupportRow{
			N: n, D: d,
			Words:               unsup.SupportWords,
			SupportedRounds:     sup.Rounds,
			UnsupportedRounds:   unsup.Rounds,
			DisseminationRounds: unsup.DisseminationRounds,
		})
	}
	return rows, nil
}

// FormatSupportCost renders the supported-vs-unsupported comparison.
func FormatSupportCost(rows []SupportRow) string {
	var b strings.Builder
	b.WriteString("Cost of the support (§1.6 baseline) — supported vs run-time structure dissemination\n\n")
	fmt.Fprintf(&b, "%6s %4s %8s %12s %14s %16s\n", "n", "d", "words", "supported", "dissemination", "unsupported total")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %4d %8d %12d %14d %16d\n",
			r.N, r.D, r.Words, r.SupportedRounds, r.DisseminationRounds, r.UnsupportedRounds)
	}
	return b.String()
}
