package exper

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestTable1ShapeClaims(t *testing.T) {
	rows, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Series{}
	for i := range rows {
		byName[rows[i].Name] = &rows[i]
	}

	// The trivial algorithms must measure their exact exponents.
	if e := byName["trivial dense gather"].FittedExponent(); math.Abs(e-2.0) > 0.15 {
		t.Errorf("trivial dense slope %.3f, want ~2", e)
	}
	// On block instances the exact trivial cost is d(d−1) remote fetches.
	for _, p := range byName["trivial sparse"].Points {
		d := int(p.X)
		if p.Rounds != d*(d-1) {
			t.Errorf("trivial sparse at d=%d: %d rounds, want exactly %d", d, p.Rounds, d*(d-1))
		}
	}
	// The 3D semiring algorithm must be clearly subquadratic in n.
	if e := byName["dense 3D semiring [3]"].FittedExponent(); e > 1.7 {
		t.Errorf("3D dense slope %.3f, want well below 2", e)
	}
	// The sparse cube must be strongly sublinear in n at fixed d.
	if e := byName["sparse 3D cube [2], fixed d"].FittedExponent(); e > 0.8 {
		t.Errorf("sparse cube slope %.3f, want ~1/3", e)
	}
	// Theorem 4.2 must grow strictly slower than the trivial d².
	if e := byName["this work semiring (Thm 4.2)"].TailExponent(); e >= 1.95 {
		t.Errorf("theorem42 tail slope %.3f, want < d^2 growth", e)
	}
	// The prior-work phase-2 reconstruction behaves like d² on extremal
	// blocks — the bottleneck Lemma 3.1 removes.
	if e := byName["naive phase 2 ([13]'s bottleneck)"].FittedExponent(); e < 1.9 {
		t.Errorf("baseline slope %.3f, want ~d² growth", e)
	}
	out := FormatTable1(rows, "")
	if !strings.Contains(out, "Table 1") {
		t.Error("format broken")
	}
}

func TestTable2AllRowsVerified(t *testing.T) {
	rows, err := Table2(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("%d rows, want 20", len(rows))
	}
	out := FormatTable2(rows)
	for _, frag := range []string{"[US:US:US]", "[GM:GM:GM]", "outlier", "conditional"} {
		if !strings.Contains(out, frag) {
			t.Errorf("table 2 output missing %q", frag)
		}
	}
}

func TestLowerBoundsRespected(t *testing.T) {
	rows, err := LowerBounds(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckLowerRows(rows); err != nil {
		t.Fatal(err)
	}
	// The √n rows must show max receive load ≥ bound (the certification).
	found := false
	for _, r := range rows {
		if strings.Contains(r.Name, "outer product") {
			found = true
			if r.MaxRecv < int64(r.Bound) {
				t.Errorf("%s n=%d: receive load %d below forced %d", r.Name, r.N, r.MaxRecv, r.Bound)
			}
		}
	}
	if !found {
		t.Error("no outer product rows")
	}
	if out := FormatLowerBounds(rows); !strings.Contains(out, "deg(OR_8) = 8") {
		t.Error("degree block missing")
	}
}

func TestAblationSeparation(t *testing.T) {
	rows, err := AblationLemma31(Quick)
	if err != nil {
		t.Fatal(err)
	}
	// On hot-pair instances the separation must grow with n.
	var speedups []float64
	for _, r := range rows {
		if r.Name == "hot pair" {
			speedups = append(speedups, float64(r.BaselineRounds)/float64(r.LemmaRounds))
		}
	}
	if len(speedups) < 2 {
		t.Fatal("missing hot pair rows")
	}
	for i := 1; i < len(speedups); i++ {
		if speedups[i] <= speedups[i-1] {
			t.Errorf("hot-pair speedup not growing: %v", speedups)
		}
	}
	if speedups[0] < 4 {
		t.Errorf("hot-pair speedup too small: %v", speedups)
	}
	if out := FormatAblation(rows); !strings.Contains(out, "hot pair") {
		t.Error("format broken")
	}
}

func TestFigure1Content(t *testing.T) {
	rows, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := Figure1(rows)
	for _, frag := range []string{"1.927", "1.867", "1.832", "1.157", "Table 3", "Table 4", "0.13319", "0.16854"} {
		if !strings.Contains(out, frag) {
			t.Errorf("figure output missing %q", frag)
		}
	}
}

func TestSeriesFitting(t *testing.T) {
	s := Series{Points: []Point{{X: 2, Rounds: 4}, {X: 4, Rounds: 16}, {X: 8, Rounds: 64}}}
	if e := s.FittedExponent(); math.Abs(e-2) > 1e-9 {
		t.Errorf("fit %v", e)
	}
	if e := s.TailExponent(); math.Abs(e-2) > 1e-9 {
		t.Errorf("tail %v", e)
	}
	empty := Series{}
	if !math.IsNaN(empty.FittedExponent()) || !math.IsNaN(empty.TailExponent()) {
		t.Error("empty series should fit NaN")
	}
}

func TestJSONRoundTrips(t *testing.T) {
	data, err := JSON(Quick)
	if err != nil {
		t.Fatal(err)
	}
	var back AllResults
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Table1) == 0 || len(back.Table2) != 20 || len(back.Table3) != 4 ||
		len(back.Table4) != 4 || len(back.Lower) == 0 || len(back.Ablation) == 0 ||
		len(back.Support) == 0 || len(back.Milestones) == 0 {
		t.Fatalf("JSON payload incomplete: %+v", back)
	}
	// Class names marshal as strings.
	if !strings.Contains(string(data), `"US"`) || !strings.Contains(string(data), "1:fast") {
		t.Error("class/band names not marshaled as strings")
	}
}

func TestAblationStrassenVariant(t *testing.T) {
	rows, err := AblationStrassenVariant(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatal("too few rows")
	}
	for _, r := range rows {
		if r.ClassicRounds <= 0 || r.WinogradRounds <= 0 {
			t.Fatalf("degenerate row %+v", r)
		}
	}
	if out := FormatVariantAblation(rows); !strings.Contains(out, "winograd") {
		t.Error("format broken")
	}
}

// TestDeterminism guards the supported-model property that everything is a
// deterministic function of the support: two fresh runs of the whole
// Table 1 harness must measure identical round counts (this catches any
// map-iteration order leaking into plans).
// TestTable1Profiling checks the WithProfiling wiring: the sparse algorithm
// rows must carry per-point phase breakdowns that tile the measured round
// count exactly (the export invariant), and the formatter must render them.
func TestTable1Profiling(t *testing.T) {
	rows, err := Table1(Quick, WithProfiling())
	if err != nil {
		t.Fatal(err)
	}
	profiled := 0
	for _, s := range rows {
		for _, p := range s.Points {
			if len(p.Phases) == 0 {
				continue
			}
			profiled++
			sum := 0
			for _, ph := range p.Phases {
				sum += ph.Rounds
			}
			if sum != p.Rounds {
				t.Errorf("%s x=%g: phases sum to %d, rounds %d", s.Name, p.X, sum, p.Rounds)
			}
		}
	}
	if profiled == 0 {
		t.Fatal("no profiled points — WithProfiling not wired through")
	}
	out := FormatTable1(rows, "")
	if !strings.Contains(out, "phases:") {
		t.Error("FormatTable1 does not render phase breakdowns")
	}
}

func TestDeterminism(t *testing.T) {
	r1, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Table1(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1) != len(r2) {
		t.Fatal("row counts differ")
	}
	for i := range r1 {
		for j := range r1[i].Points {
			if !reflect.DeepEqual(r1[i].Points[j], r2[i].Points[j]) {
				t.Fatalf("%s point %d: %v vs %v — nondeterministic rounds",
					r1[i].Name, j, r1[i].Points[j], r2[i].Points[j])
			}
		}
	}
}
