package exper

import (
	"fmt"
	"strings"

	"lbmm/internal/algo"
	"lbmm/internal/lower"
	"lbmm/internal/ring"
)

// LowerRow is one measured lower-bound experiment.
type LowerRow struct {
	Name     string
	N        int
	Bound    int // the proven lower bound value
	Rounds   int // measured rounds of our algorithm on the hard instance
	MaxRecv  int64
	UpperOK  bool // whether the measured rounds also meet the paper's upper bound shape
	UpperCap int  // the sanity cap used for UpperOK
}

// LowerBounds runs the §6 hard instances and reports proven bound vs
// measured cost. Every row must satisfy bound ≤ measured (the bound is
// unconditional); class-2 rows must also stay under an O(d²+log n)-flavoured
// cap (the matching upper bound).
func LowerBounds(scale Scale) ([]LowerRow, error) {
	ns := []int{16, 64, 256}
	if scale == Full {
		ns = []int{16, 64, 256, 1024}
	}
	var rows []LowerRow
	r := ring.Counting{}

	for _, n := range ns {
		// Sum (Theorem 6.15 via Corollary 6.10).
		inst := lower.SumInstance(n)
		res, err := runVerified(r, inst, algo.LemmaOnly, int64(n))
		if err != nil {
			return nil, fmt.Errorf("sum n=%d: %w", n, err)
		}
		cap := 12*lower.SumBound(n) + 40
		rows = append(rows, LowerRow{
			Name: "sum (BD×BD=US, d=1)", N: n, Bound: lower.SumBound(n),
			Rounds: res.Rounds, MaxRecv: res.Stats.MaxRecvLoad(),
			UpperOK: res.Rounds <= cap, UpperCap: cap,
		})

		// Broadcast (Lemma 6.13).
		inst = lower.BroadcastInstance(n)
		res, err = runVerified(r, inst, algo.LemmaOnly, int64(n))
		if err != nil {
			return nil, fmt.Errorf("broadcast n=%d: %w", n, err)
		}
		cap = 12*lower.BroadcastFanInBound(n) + 40
		rows = append(rows, LowerRow{
			Name: "broadcast (BD×US=BD, d=1)", N: n, Bound: lower.BroadcastFanInBound(n),
			Rounds: res.Rounds, MaxRecv: res.Stats.MaxRecvLoad(),
			UpperOK: res.Rounds <= cap, UpperCap: cap,
		})
	}

	// √n routing hardness (Theorem 6.27) — smaller n, the instances are
	// dense in X̂.
	sqrtNs := []int{16, 36, 64}
	if scale == Full {
		sqrtNs = []int{16, 64, 144, 256}
	}
	for _, n := range sqrtNs {
		inst := lower.RSCSInstance(n)
		res, err := runVerified(r, inst, algo.LemmaOnly, int64(n))
		if err != nil {
			return nil, fmt.Errorf("rscs n=%d: %w", n, err)
		}
		rows = append(rows, LowerRow{
			Name: "outer product (RS×CS=GM, d=1)", N: n, Bound: lower.SqrtBound(n) - 1,
			Rounds: res.Rounds, MaxRecv: res.Stats.MaxRecvLoad(), UpperOK: true,
		})

		inst = lower.USGMInstance(n)
		res, err = runVerified(r, inst, algo.LemmaOnly, int64(n))
		if err != nil {
			return nil, fmt.Errorf("usgm n=%d: %w", n, err)
		}
		rows = append(rows, LowerRow{
			Name: "band×dense (US×GM=GM, d=2)", N: n, Bound: lower.SqrtBound(n) - 1,
			Rounds: res.Rounds, MaxRecv: res.Stats.MaxRecvLoad(), UpperOK: true,
		})
	}

	// Theorem 6.19 packing reduction, executed.
	for _, m := range []int{4, 6} {
		inst := lower.PackDense(m)
		res, err := runVerified(r, inst, algo.LemmaOnly, int64(m))
		if err != nil {
			return nil, fmt.Errorf("packing m=%d: %w", m, err)
		}
		rows = append(rows, LowerRow{
			Name:    fmt.Sprintf("packing reduction T'(m)=m·T(m²), m=%d", m),
			N:       inst.N,
			Bound:   0,
			Rounds:  lower.ReductionRounds(m, res.Rounds),
			MaxRecv: res.Stats.MaxRecvLoad(),
			UpperOK: true,
		})
	}
	return rows, nil
}

// CheckLowerRows verifies the invariant bound ≤ rounds on every row.
func CheckLowerRows(rows []LowerRow) error {
	for _, row := range rows {
		if row.Rounds < row.Bound {
			return fmt.Errorf("%s n=%d: measured %d rounds below proven bound %d",
				row.Name, row.N, row.Rounds, row.Bound)
		}
		if !row.UpperOK {
			return fmt.Errorf("%s n=%d: %d rounds exceeds upper-bound cap %d",
				row.Name, row.N, row.Rounds, row.UpperCap)
		}
	}
	return nil
}

// FormatLowerBounds renders the lower-bound experiments.
func FormatLowerBounds(rows []LowerRow) string {
	var b strings.Builder
	b.WriteString("Section 6 — lower bounds: proven bound vs measured cost of our algorithms\n\n")
	fmt.Fprintf(&b, "%-42s %6s %8s %8s %9s\n", "experiment", "n", "bound", "rounds", "maxRecv")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-42s %6d %8d %8d %9d\n", r.Name, r.N, r.Bound, r.Rounds, r.MaxRecv)
	}
	b.WriteString("\nBoolean-degree machinery (Lemma 6.5): deg(OR_n) computed by Möbius inversion\n")
	for _, n := range []int{4, 8, 12} {
		deg := lower.BooleanDegree(func(m uint32) bool { return m != 0 }, n)
		fmt.Fprintf(&b, "  deg(OR_%d) = %d  ⇒  T ≥ %d\n", n, deg, lower.DegreeBound(deg))
	}
	return b.String()
}
