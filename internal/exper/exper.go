// Package exper is the experiment harness: it regenerates every table and
// figure of the paper from live simulations and the analytic machinery.
// The cmd/lbmm CLI and the repository benchmarks are thin wrappers around
// this package, so "the numbers in EXPERIMENTS.md" and "what the benches
// print" are by construction the same code path.
package exper

import (
	"fmt"
	"math"
	"strings"

	"lbmm/internal/algo"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// Point is one measurement of a scaling series.
type Point struct {
	X      float64 // the swept parameter (n or d)
	Rounds int
	// Phases is the top-level phase breakdown of the run (present only when
	// the sweep ran with WithProfiling). The counts tile the round budget:
	// they sum exactly to Rounds, with gaps reported as "(unphased)".
	Phases []PhaseCount `json:",omitempty"`
}

// PhaseCount is one top-level phase's share of a point's round budget.
type PhaseCount struct {
	Label  string
	Rounds int
}

// Opt tunes an experiment sweep.
type Opt func(*sweepOptions)

type sweepOptions struct {
	profiling bool
}

// WithProfiling attaches an observability collector to every verified
// algorithm run of the sweep and records each point's top-level phase
// breakdown (Point.Phases). Dense black-box rows, which bypass the
// algorithm harness, are unaffected.
func WithProfiling() Opt {
	return func(o *sweepOptions) { o.profiling = true }
}

func resolveOpts(opts []Opt) sweepOptions {
	var o sweepOptions
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Series is a named measurement series with its theoretical exponent.
type Series struct {
	Name   string
	Theory string  // the bound as printed in the paper
	Expo   float64 // theoretical exponent of the swept parameter (0 = n/a)
	Points []Point
}

// FittedExponent least-squares fits log(rounds) = e·log(x) + c and returns
// e. Series with fewer than two points return NaN.
func (s *Series) FittedExponent() float64 {
	if len(s.Points) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for _, p := range s.Points {
		lx := math.Log(p.X)
		ly := math.Log(math.Max(float64(p.Rounds), 1))
		sx += lx
		sy += ly
		sxx += lx * lx
		sxy += lx * ly
	}
	n := float64(len(s.Points))
	den := n*sxx - sx*sx
	if den == 0 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// TailExponent fits only the last two points — a better estimate of the
// asymptotic slope when small sizes are constant-dominated.
func (s *Series) TailExponent() float64 {
	if len(s.Points) < 2 {
		return math.NaN()
	}
	a := s.Points[len(s.Points)-2]
	b := s.Points[len(s.Points)-1]
	return math.Log(float64(b.Rounds)/math.Max(float64(a.Rounds), 1)) / math.Log(b.X/a.X)
}

// Format renders a series as a table block.
func (s *Series) Format(param string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-34s theory %-22s", s.Name, s.Theory)
	fmt.Fprintf(&b, " fit %.3f (tail %.3f)\n", s.FittedExponent(), s.TailExponent())
	for _, p := range s.Points {
		fmt.Fprintf(&b, "    %s=%-6.0f rounds=%d\n", param, p.X, p.Rounds)
		if len(p.Phases) > 0 {
			b.WriteString("        phases:")
			for _, ph := range p.Phases {
				fmt.Fprintf(&b, " %s=%d", ph.Label, ph.Rounds)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}

// runVerified executes an algorithm on an instance with random values over
// r, verifies the product, and returns the result. The goroutine engine is
// enabled; it only engages on rounds big enough to amortize (ParBatch) and
// is equivalence-tested against the sequential engine.
func runVerified(r ring.Semiring, inst *graph.Instance, alg algo.Algorithm, seed int64, extra ...lbm.Option) (*algo.Result, error) {
	a := matrix.Random(inst.Ahat, r, seed)
	b := matrix.Random(inst.Bhat, r, seed+1)
	mopts := append([]lbm.Option{lbm.WithAutoWorkers()}, extra...)
	res, got, err := algo.Solve(r, inst, a, b, alg, mopts...)
	if err != nil {
		return nil, err
	}
	if err := algo.Verify(got, a, b, inst.Xhat); err != nil {
		return nil, fmt.Errorf("%s on %s: %w", res.Name, describe(inst), err)
	}
	return res, nil
}

func describe(inst *graph.Instance) string {
	return fmt.Sprintf("n=%d d=%d", inst.N, inst.D)
}

// phaseCounts extracts a result's top-level phase breakdown from its
// observability profile (nil when the run was not profiled). The export
// layer guarantees the counts tile [0, Rounds), so they sum to the total.
func phaseCounts(res *algo.Result) []PhaseCount {
	if res.Profile == nil {
		return nil
	}
	e := res.Profile.Export()
	out := make([]PhaseCount, 0, len(e.Phases))
	for _, s := range e.Phases {
		out = append(out, PhaseCount{Label: s.Label, Rounds: s.Rounds})
	}
	return out
}
