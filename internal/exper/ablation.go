package exper

import (
	"fmt"
	"strings"

	"lbmm/internal/algo"
	"lbmm/internal/dense"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/vnet"
	"lbmm/internal/workload"
)

// AblationRow compares Lemma 3.1 against the prior work's naive-routing
// phase 2 on one instance.
type AblationRow struct {
	Name           string
	N              int
	Kappa          int
	LemmaRounds    int
	BaselineRounds int
}

// AblationLemma31 is the paper's key internal claim made measurable:
// processing the same triangle sets, Lemma 3.1's anchor/broadcast-tree
// routing pays O(κ + d + log m) where the naive duplication routing pays
// the hot-value fan-out. The hot-pair family makes the gap Θ(n / log n);
// the uniform family shows the two are comparable when nothing is hot
// (the lemma's overhead is a constant factor).
func AblationLemma31(scale Scale) ([]AblationRow, error) {
	ns := []int{64, 128, 256}
	if scale == Full {
		ns = []int{64, 256, 1024}
	}
	r := ring.Counting{}
	var rows []AblationRow

	for _, n := range ns {
		inst := workload.HotPair(n)
		lem, err := runVerified(r, inst, algo.LemmaOnlyKappa(1), int64(n))
		if err != nil {
			return nil, err
		}
		base, err := runVerified(r, inst, algo.BaselineNaiveVirtual(1), int64(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "hot pair", N: n, Kappa: 1,
			LemmaRounds: lem.Rounds, BaselineRounds: base.Rounds,
		})
	}

	for _, n := range ns {
		inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, 4, int64(n))
		lem, err := runVerified(r, inst, algo.LemmaOnly, int64(n))
		if err != nil {
			return nil, err
		}
		base, err := runVerified(r, inst, algo.BaselineNaiveVirtual(0), int64(n))
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationRow{
			Name: "uniform US(4)", N: n, Kappa: lem.Kappa,
			LemmaRounds: lem.Rounds, BaselineRounds: base.Rounds,
		})
	}
	return rows, nil
}

// FormatAblation renders the Lemma 3.1 ablation.
func FormatAblation(rows []AblationRow) string {
	var b strings.Builder
	b.WriteString("Lemma 3.1 ablation — anchored broadcast-tree routing vs naive duplication\n\n")
	fmt.Fprintf(&b, "%-16s %6s %6s %14s %16s %8s\n", "family", "n", "κ", "lemma rounds", "baseline rounds", "speedup")
	for _, r := range rows {
		speed := float64(r.BaselineRounds) / float64(maxInt(r.LemmaRounds, 1))
		fmt.Fprintf(&b, "%-16s %6d %6d %14d %16d %7.2fx\n",
			r.Name, r.N, r.Kappa, r.LemmaRounds, r.BaselineRounds, speed)
	}
	return b.String()
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// VariantRow compares the two bilinear schemes of the distributed field
// multiplier.
type VariantRow struct {
	N                             int
	ClassicRounds, WinogradRounds int
}

// AblationStrassenVariant measures classic Strassen vs Strassen–Winograd on
// dense field instances. Winograd saves local additions — free in this
// model — while its denser block combinations cost more combination
// messages, so classic is expected to win on rounds: an instructive
// inversion of the sequential trade-off.
func AblationStrassenVariant(scale Scale) ([]VariantRow, error) {
	ns := []int{16, 32}
	if scale == Full {
		ns = []int{16, 32, 64}
	}
	var rows []VariantRow
	for _, n := range ns {
		inst := denseInstance(n)
		run := func(variant bool) (int, error) {
			return runDense(inst, ring.NewGFp(1009), func(m *lbm.Machine, l *lbm.Layout) error {
				spec := &dense.StrassenSpec{
					N: inst.N, Procs: denseAll(3 * inst.N),
					I: denseAll(inst.N), J: denseAll(inst.N), K: denseAll(inst.N),
					SA: inst.Ahat, SB: inst.Bhat, SX: inst.Xhat, Layout: l,
				}
				if variant {
					spec.Variant = dense.VariantWinograd()
				}
				net := vnet.Roles(inst.N)
				job, err := dense.PlanStrassen(net, spec)
				if err != nil {
					return err
				}
				return dense.RunStrassenJobs(m, net, []*dense.StrassenJob{job})
			})
		}
		classic, err := run(false)
		if err != nil {
			return nil, err
		}
		winograd, err := run(true)
		if err != nil {
			return nil, err
		}
		rows = append(rows, VariantRow{N: n, ClassicRounds: classic, WinogradRounds: winograd})
	}
	return rows, nil
}

func denseAll(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// FormatVariantAblation renders the bilinear-scheme comparison.
func FormatVariantAblation(rows []VariantRow) string {
	var b strings.Builder
	b.WriteString("\nBilinear-scheme ablation — classic Strassen vs Strassen–Winograd (dense, GF(p))\n\n")
	fmt.Fprintf(&b, "%6s %16s %16s\n", "n", "classic rounds", "winograd rounds")
	for _, r := range rows {
		fmt.Fprintf(&b, "%6d %16d %16d\n", r.N, r.ClassicRounds, r.WinogradRounds)
	}
	return b.String()
}
