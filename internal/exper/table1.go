package exper

import (
	"strings"

	"lbmm/internal/algo"
	"lbmm/internal/dense"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// Scale selects experiment sizes.
type Scale int

const (
	// Quick sizes finish in seconds (used by tests and default benches).
	Quick Scale = iota
	// Full sizes take minutes and give cleaner tail exponents.
	Full
)

// Table1 reproduces Table 1 ("Complexity of distributed sparse matrix
// multiplication"): every row's algorithm is executed at a sweep of sizes
// and the measured round counts are reported next to the theoretical bound.
//
// Dense rows sweep n on dense instances; sparse rows sweep d on the
// extremal block instances (the d²n-triangle worst case of Corollary 4.6,
// where the paper's exponents are the binding ones). Absolute constants
// include the simulation overheads (role multiplexing ≤3×, Euler colouring
// <2×); the claim under reproduction is the growth exponent.
// Passing WithProfiling attaches an observability collector to the sparse
// algorithm rows and fills every such Point's Phases breakdown.
func Table1(scale Scale, opts ...Opt) ([]Series, error) {
	o := resolveOpts(opts)
	var mopts []lbm.Option
	if o.profiling {
		mopts = append(mopts, lbm.WithTrace())
	}
	denseNs := []int{9, 18, 36}
	sparseDs := []int{4, 8, 16}
	strassenNs := []int{8, 16, 32}
	if scale == Full {
		denseNs = []int{16, 32, 64, 96}
		sparseDs = []int{4, 8, 16, 32}
		strassenNs = []int{16, 32, 64, 128}
	}

	var out []Series

	// Row 1: trivial dense O(n²).
	row1 := Series{Name: "trivial dense gather", Theory: "O(n^2)", Expo: 2}
	for _, n := range denseNs {
		inst := denseInstance(n)
		rounds, err := runDense(inst, ring.Counting{}, func(m *lbm.Machine, l *lbm.Layout) error {
			return dense.TrivialGather(m, l, inst)
		})
		if err != nil {
			return nil, err
		}
		row1.Points = append(row1.Points, Point{X: float64(n), Rounds: rounds})
	}
	out = append(out, row1)

	// Row 2: semiring dense cube O(n^{4/3}).
	row2 := Series{Name: "dense 3D semiring [3]", Theory: "O(n^{4/3})", Expo: 4.0 / 3.0}
	for _, n := range denseNs {
		inst := denseInstance(n)
		rounds, err := runDense(inst, ring.MinPlus{}, func(m *lbm.Machine, l *lbm.Layout) error {
			return dense.RunWholeCube(m, l, inst)
		})
		if err != nil {
			return nil, err
		}
		row2.Points = append(row2.Points, Point{X: float64(n), Rounds: rounds})
	}
	out = append(out, row2)

	// Row 3: field dense Strassen O(n^{2-2/log2 7}) (paper: O(n^{1.157})
	// with galactic fast MM; our executable stand-in achieves 1.288).
	row3 := Series{Name: "dense Strassen field (this repo)", Theory: "O(n^{1.288}) [paper: n^{1.157}]", Expo: 1.288}
	for _, n := range strassenNs {
		inst := denseInstance(n)
		rounds, err := runDense(inst, ring.NewGFp(1009), func(m *lbm.Machine, l *lbm.Layout) error {
			return dense.RunWholeStrassen(m, l, inst)
		})
		if err != nil {
			return nil, err
		}
		row3.Points = append(row3.Points, Point{X: float64(n), Rounds: rounds})
	}
	out = append(out, row3)

	// Row 4: O(d·n^{1/3}) sparse cube [2] — sweep n at fixed d.
	row4 := Series{Name: "sparse 3D cube [2], fixed d", Theory: "O(d n^{1/3})", Expo: 1.0 / 3.0}
	ns := []int{64, 216, 512}
	if scale == Full {
		ns = []int{64, 216, 512, 1000}
	}
	for _, n := range ns {
		inst := workload.Blocks(n, 4)
		rounds, err := runDense(inst, ring.Boolean{}, func(m *lbm.Machine, l *lbm.Layout) error {
			return dense.RunWholeCube(m, l, inst)
		})
		if err != nil {
			return nil, err
		}
		row4.Points = append(row4.Points, Point{X: float64(n), Rounds: rounds})
	}
	out = append(out, row4)

	// Rows 5–7: the sparse ladder on extremal block instances, d sweep.
	type sparseRow struct {
		name   string
		theory string
		expo   float64
		r      ring.Semiring
		alg    algo.Algorithm
	}
	sparseRows := []sparseRow{
		{"trivial sparse", "O(d^2)", 2, ring.Boolean{}, algo.TrivialSparse},
		{"naive phase 2 ([13]'s bottleneck)", "O(d^{2-ε/2}) per residual", 2, ring.Boolean{}, algo.BaselineNaiveVirtual(0)},
		{"prior work full ([13] reconstr.)", "O(d^{1.927})", 1.927, ring.Boolean{}, algo.Theorem42(algo.Theorem42Opts{NaivePhase2: true})},
		{"this work semiring (Thm 4.2)", "O(d^{1.867})", 1.867, ring.Boolean{}, algo.Theorem42(algo.Theorem42Opts{})},
		{"this work field (Thm 4.2)", "O(d^{1.832}) [repo: d^{1.858}]", 1.858, ring.NewGFp(1009), algo.Theorem42(algo.Theorem42Opts{})},
	}
	for _, sr := range sparseRows {
		s := Series{Name: sr.name, Theory: sr.theory, Expo: sr.expo}
		for _, d := range sparseDs {
			inst := workload.Blocks(8*d, d)
			res, err := runVerified(sr.r, inst, sr.alg, int64(d), mopts...)
			if err != nil {
				return nil, err
			}
			s.Points = append(s.Points, Point{X: float64(d), Rounds: res.Rounds, Phases: phaseCounts(res)})
		}
		out = append(out, s)
	}

	// Extra row: Theorem 4.2 on the mixed workload (dense pockets + uniform
	// noise), where both phases carry real work.
	mixed := Series{Name: "this work semiring (mixed)", Theory: "O(d^{1.867})", Expo: 1.867}
	for _, d := range sparseDs {
		inst := workload.Mixed(8*d, d, int64(d))
		res, err := runVerified(ring.Boolean{}, inst, algo.Theorem42(algo.Theorem42Opts{}), int64(d), mopts...)
		if err != nil {
			return nil, err
		}
		mixed.Points = append(mixed.Points, Point{X: float64(d), Rounds: res.Rounds, Phases: phaseCounts(res)})
	}
	out = append(out, mixed)
	return out, nil
}

func denseInstance(n int) *graph.Instance {
	var es [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			es = append(es, [2]int{i, j})
		}
	}
	s := matrix.NewSupport(n, es)
	return graph.NewInstance(n, s, s, s)
}

// runDense loads a random instance, runs the given in-model routine and
// verifies the product.
func runDense(inst *graph.Instance, r ring.Semiring, run func(*lbm.Machine, *lbm.Layout) error) (int, error) {
	a := matrix.Random(inst.Ahat, r, 11)
	b := matrix.Random(inst.Bhat, r, 12)
	m := lbm.New(inst.N, r)
	l := algo.ChooseLayout(inst)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	if err := run(m, l); err != nil {
		return 0, err
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		return 0, err
	}
	if err := algo.Verify(got, a, b, inst.Xhat); err != nil {
		return 0, err
	}
	return m.Rounds(), nil
}

// FormatTable1 renders the Table 1 reproduction.
func FormatTable1(rows []Series, param string) string {
	var b strings.Builder
	b.WriteString("Table 1 — complexity of distributed sparse matrix multiplication (measured)\n")
	b.WriteString("dense rows sweep n; sparse rows sweep d on extremal block instances\n\n")
	for _, s := range rows {
		p := "n"
		if strings.Contains(s.Theory, "d^") {
			p = "d"
		}
		if param != "" {
			p = param
		}
		b.WriteString(s.Format(p))
	}
	return b.String()
}
