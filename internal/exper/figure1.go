package exper

import (
	"fmt"
	"math"
	"strings"

	"lbmm/internal/params"
)

// Figure1 renders the §1.2 progress figure: the exponent ladder from the
// trivial O(d²) down to the conditional milestones, for semirings and
// fields, optionally annotated with measured tail exponents from a Table 1
// run. It is a text rendering of the paper's bar illustration.
func Figure1(measured []Series) string {
	var b strings.Builder
	b.WriteString("Figure (§1.2) — progress towards the conditional milestones\n\n")
	b.WriteString("exponent of d in the round complexity (lower is better)\n\n")

	scale := func(e float64) int {
		// Map exponent range [1.0, 2.0] to a 50-char bar.
		w := int((e - 1.0) / 1.0 * 50)
		if w < 0 {
			w = 0
		}
		if w > 50 {
			w = 50
		}
		return w
	}
	for _, m := range params.Milestones() {
		fmt.Fprintf(&b, "%-34s semiring %.3f |%s\n", m.Label, m.Semiring, strings.Repeat("#", scale(m.Semiring)))
		fmt.Fprintf(&b, "%-34s field    %.3f |%s\n", "", m.Field, strings.Repeat("=", scale(m.Field)))
	}

	if len(measured) > 0 {
		b.WriteString("\nmeasured tail exponents (block-instance d sweep):\n")
		for _, s := range measured {
			if !strings.Contains(s.Theory, "d^") {
				continue
			}
			te := s.TailExponent()
			if math.IsNaN(te) {
				continue
			}
			fmt.Fprintf(&b, "  %-34s theory %-28s measured %.3f\n", s.Name, s.Theory, te)
		}
	}
	b.WriteString("\nparameter tables driving the exponents:\n\nTable 3 (semirings, λ=4/3):\n")
	b.WriteString(params.Format(params.TableSemiring()))
	b.WriteString("\nTable 4 (fields, λ=1.156671):\n")
	b.WriteString(params.Format(params.TableField()))
	b.WriteString("\nExecutable-field variant (λ=2−2/log₂7 ≈ 1.2876):\n")
	b.WriteString(params.Format(params.TableStrassen()))
	return b.String()
}
