package routing

import (
	"fmt"

	"lbmm/internal/lbm"
)

// This file provides in-model sorting. The paper's §3.3 sorts its triple
// arrays during free preprocessing — legitimate because the supported model
// fixes the sparsity structure in advance. The unsupported direction the
// paper poses as future work (§1.6) would have to sort at run time; this
// odd–even transposition sort is that primitive: p computers, each holding
// one value, sort them in exactly p rounds of neighbour exchanges, each
// round one send and one receive per computer.

// sortScratch is the reserved scratch slot for the neighbour's value.
func sortScratch(key lbm.Key) lbm.Key {
	return lbm.Key{Kind: lbm.KT, I: -1 - key.I, J: -1 - key.J, Seq: -9991 - key.Seq}
}

// SortOddEven sorts, in the low-bandwidth model, the values held by the
// given computers under key: after the call, nodes[i] holds the i-th
// smallest value (by the natural order of ring.Value). The nodes must be
// pairwise distinct and each must hold key. Costs exactly len(nodes) rounds
// (⌈p/2⌉ exchanges of 2 messages each, alternating parity).
func SortOddEven(m *lbm.Machine, nodes []lbm.NodeID, key lbm.Key) error {
	p := len(nodes)
	if p <= 1 {
		return nil
	}
	seen := make(map[lbm.NodeID]bool, p)
	for _, v := range nodes {
		if seen[v] {
			return fmt.Errorf("routing: SortOddEven nodes must be distinct (%d repeats)", v)
		}
		seen[v] = true
	}
	scratch := sortScratch(key)
	for phase := 0; phase < p; phase++ {
		var round lbm.Round
		type pair struct{ lo, hi lbm.NodeID }
		var pairs []pair
		for i := phase % 2; i+1 < p; i += 2 {
			lo, hi := nodes[i], nodes[i+1]
			pairs = append(pairs, pair{lo, hi})
			round = append(round,
				lbm.Send{From: lo, To: hi, Src: key, Dst: scratch, Op: lbm.OpSet},
				lbm.Send{From: hi, To: lo, Src: key, Dst: scratch, Op: lbm.OpSet},
			)
		}
		if len(round) == 0 {
			continue
		}
		if err := m.RunRound(round); err != nil {
			return fmt.Errorf("routing: sort phase %d: %w", phase, err)
		}
		// Free local compare-exchange: the lower-index node keeps the min,
		// the higher keeps the max.
		for _, pr := range pairs {
			mine, _ := m.Get(pr.lo, key)
			other, _ := m.Get(pr.lo, scratch)
			if other < mine {
				m.Put(pr.lo, key, other)
			}
			mineHi, _ := m.Get(pr.hi, key)
			otherHi, _ := m.Get(pr.hi, scratch)
			if otherHi > mineHi {
				m.Put(pr.hi, key, otherHi)
			}
			m.Del(pr.lo, scratch)
			m.Del(pr.hi, scratch)
		}
	}
	return nil
}
