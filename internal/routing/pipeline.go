package routing

import (
	"lbmm/internal/lbm"
)

// PipelinedBroadcast builds a plan that streams k items held by a source
// computer to every other computer: item t is injected into a binary tree
// one round after item t−1, so the whole stream arrives everywhere in
// k + O(log n) rounds instead of the k·log n of item-by-item tree
// broadcasts. This is the workhorse of the unsupported mode's support
// dissemination (every computer must learn Θ(nnz) structure words, and
// k + log n rounds is optimal to within a constant for k items).
//
// Keys: the source holds items under keyOf(0..k-1); every receiver ends up
// holding the same keys.
//
// The tree is laid over nodes in index order (node 0 = source); node i's
// children are 2i+1 and 2i+2. In each round every node forwards the oldest
// item its children still miss — since a node receives item t exactly
// depth+t rounds in, it can forward item t to one child at depth+t+1 and
// the other at depth+t+2... to keep one-send-per-round we interleave:
// child c gets item t at round depth(c) + 2t + (c parity). The factor 2
// (each parent serves 2 children) keeps the schedule within the model's
// single send per round: total rounds ≤ 2k + depth.
func PipelinedBroadcast(nodes []lbm.NodeID, k int, keyOf func(t int) lbm.Key) *lbm.Plan {
	n := len(nodes)
	plan := &lbm.Plan{}
	if n <= 1 || k == 0 {
		return plan
	}
	// arrive[i][t] = round at which node index i has item t available.
	// Node 0 has everything at round 0. Child c of parent p receives items
	// in order; the parent alternates between its (up to) two children, so
	// child c receives item t at round recv(p, t') + 1 + 2t + offset where
	// offset serializes the two children.
	arrive := make([][]int, n)
	arrive[0] = make([]int, k)
	type send struct {
		round    int
		from, to int
		item     int
	}
	var sends []send
	maxRound := 0
	for i := 1; i < n; i++ {
		arrive[i] = make([]int, k)
		parent := (i - 1) / 2
		// Which child am I (0 or 1)?
		childIdx := (i - 1) % 2
		for t := 0; t < k; t++ {
			// Earliest the parent can forward item t to this child: after
			// the parent has it, after the child's previous item, and not
			// in the same round as a send to the sibling. Serialize:
			// parent's sending slots alternate children; child childIdx
			// gets slots of parity childIdx.
			earliest := arrive[parent][t] + 1
			if t > 0 && arrive[i][t-1]+1 > earliest {
				earliest = arrive[i][t-1] + 1
			}
			// Avoid colliding with the sibling: force distinct parity per
			// child so the parent never sends twice in a round.
			if (earliest+childIdx)%2 == 1 {
				earliest++
			}
			arrive[i][t] = earliest
			sends = append(sends, send{round: earliest, from: parent, to: i, item: t})
			if earliest > maxRound {
				maxRound = earliest
			}
		}
	}
	rounds := make([]lbm.Round, maxRound+1)
	for _, s := range sends {
		rounds[s.round] = append(rounds[s.round], lbm.Send{
			From: nodes[s.from], To: nodes[s.to],
			Src: keyOf(s.item), Dst: keyOf(s.item), Op: lbm.OpSet,
		})
	}
	for _, r := range rounds {
		plan.Append(r)
	}
	return plan
}
