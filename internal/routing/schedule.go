package routing

import (
	"lbmm/internal/lbm"
)

// Msg is one pending message of an h-relation.
type Msg struct {
	From, To lbm.NodeID
	Src, Dst lbm.Key
	Op       lbm.Op
}

// Strategy selects the edge-colouring backend used to schedule h-relations.
type Strategy uint8

const (
	// Euler uses recursive Euler splitting: at most 2^⌈log₂ Δ⌉ < 2Δ rounds
	// in O(E log Δ) time. The default.
	Euler Strategy = iota
	// Konig uses exact Δ-round schedules in O(E·(V+Δ)) time; right for
	// small instances and for measuring the model's exact constants.
	Konig
	// Auto picks König when its O(E·Δ) cost is affordable and Euler
	// otherwise. Exact schedules avoid the ≤2^⌈log₂Δ⌉ rounding of the
	// Euler split, which otherwise staircases measured round counts.
	Auto
)

// autoKonigBudget caps the König work E·Δ (colour scans) Auto will accept.
const autoKonigBudget = 1 << 27

// Schedule arranges an arbitrary set of messages into rounds that respect
// the one-send/one-receive constraint, using bipartite edge colouring on the
// sender/receiver multigraph. The number of rounds is O(S + R) where S and R
// are the maximum per-node send and receive multiplicities — the h-relation
// bound used throughout the paper's §3.3.
//
// Self-messages (From == To) are free local copies; they are all placed in
// the first round.
func Schedule(msgs []Msg, strategy Strategy) *lbm.Plan {
	var local []Msg
	var remote []Msg
	for _, m := range msgs {
		if m.From == m.To {
			local = append(local, m)
		} else {
			remote = append(remote, m)
		}
	}

	// Compact the node ids appearing as senders/receivers so colouring
	// works on dense indices.
	lIdx := map[lbm.NodeID]int32{}
	rIdx := map[lbm.NodeID]int32{}
	edges := make([]edge, len(remote))
	for i, m := range remote {
		l, ok := lIdx[m.From]
		if !ok {
			l = int32(len(lIdx))
			lIdx[m.From] = l
		}
		r, ok := rIdx[m.To]
		if !ok {
			r = int32(len(rIdx))
			rIdx[m.To] = r
		}
		edges[i] = edge{l: l, r: r}
	}

	if strategy == Auto {
		delta := maxDegree(edges, len(lIdx), len(rIdx))
		if delta > 0 && len(edges)*delta <= autoKonigBudget {
			strategy = Konig
		} else {
			strategy = Euler
		}
	}
	var classes [][]int32
	if strategy == Konig {
		classes = konigColor(edges, len(lIdx), len(rIdx))
	} else {
		classes = eulerColor(edges, len(lIdx), len(rIdx))
	}

	plan := &lbm.Plan{}
	for ci, class := range classes {
		round := make(lbm.Round, 0, len(class)+len(local))
		if ci == 0 {
			for _, m := range local {
				round = append(round, lbm.Send{From: m.From, To: m.To, Src: m.Src, Dst: m.Dst, Op: m.Op})
			}
		}
		for _, ei := range class {
			m := remote[ei]
			round = append(round, lbm.Send{From: m.From, To: m.To, Src: m.Src, Dst: m.Dst, Op: m.Op})
		}
		plan.Append(round)
	}
	if len(classes) == 0 && len(local) > 0 {
		round := make(lbm.Round, 0, len(local))
		for _, m := range local {
			round = append(round, lbm.Send{From: m.From, To: m.To, Src: m.Src, Dst: m.Dst, Op: m.Op})
		}
		plan.Append(round)
	}
	if len(msgs) > 0 {
		maxSend, maxRecv := MaxDegrees(msgs)
		plan.Annotate("routing/hrel", map[string]float64{
			"messages":   float64(len(remote)),
			"local":      float64(len(local)),
			"delta_send": float64(maxSend),
			"delta_recv": float64(maxRecv),
		})
	}
	return plan
}

// MaxDegrees returns the maximum per-node send and receive multiplicities of
// a message set — the lower bound any schedule of it must pay.
func MaxDegrees(msgs []Msg) (maxSend, maxRecv int) {
	s := map[lbm.NodeID]int{}
	r := map[lbm.NodeID]int{}
	for _, m := range msgs {
		if m.From == m.To {
			continue
		}
		s[m.From]++
		r[m.To]++
		if s[m.From] > maxSend {
			maxSend = s[m.From]
		}
		if r[m.To] > maxRecv {
			maxRecv = r[m.To]
		}
	}
	return maxSend, maxRecv
}

// ---------------------------------------------------------------------------
// Broadcast and convergecast trees (§3.3's spread and aggregation steps)

// Group is an ordered set of distinct computers cooperating in a broadcast
// or convergecast. Groups passed to the plan builders must be pairwise
// disjoint; they execute in parallel.
type Group struct {
	Nodes []lbm.NodeID
	// Key is the store key the broadcast value lives under (same key at
	// every node), or the per-node partial-sum key for convergecast.
	Key lbm.Key
}

// BroadcastPlan builds a plan in which, for every group, the value held by
// Nodes[0] under Key is spread to all other members by binary doubling:
// round t doubles the informed prefix, so ⌈log₂ |group|⌉ rounds suffice —
// the O(log m) term of Lemma 3.1.
func BroadcastPlan(groups []Group) *lbm.Plan {
	plan := &lbm.Plan{}
	for t := 0; ; t++ {
		stride := 1 << t
		var round lbm.Round
		for _, g := range groups {
			for idx := 0; idx < stride && idx < len(g.Nodes); idx++ {
				dst := idx + stride
				if dst >= len(g.Nodes) {
					continue
				}
				round = append(round, lbm.Send{
					From: g.Nodes[idx], To: g.Nodes[dst],
					Src: g.Key, Dst: g.Key, Op: lbm.OpSet,
				})
			}
		}
		if len(round) == 0 {
			break
		}
		plan.Append(round)
	}
	annotateTreePlan(plan, "routing/broadcast", groups)
	return plan
}

// annotateTreePlan attaches the tree-phase span: depth (= rounds), group
// count and largest group — the O(log m) term made visible.
func annotateTreePlan(plan *lbm.Plan, label string, groups []Group) {
	if len(groups) == 0 {
		return
	}
	maxGroup := 0
	for _, g := range groups {
		if len(g.Nodes) > maxGroup {
			maxGroup = len(g.Nodes)
		}
	}
	plan.Annotate(label, map[string]float64{
		"groups":    float64(len(groups)),
		"depth":     float64(len(plan.Rounds)),
		"max_group": float64(maxGroup),
	})
}

// ConvergecastPlan builds a plan in which, for every group, the partial
// values held under Key by all members are summed (ring addition) into
// Nodes[0] by a binary reduction tree in ⌈log₂ |group|⌉ rounds. Every member
// must hold Key before the plan runs.
func ConvergecastPlan(groups []Group) *lbm.Plan {
	plan := &lbm.Plan{}
	maxLen := 0
	for _, g := range groups {
		if len(g.Nodes) > maxLen {
			maxLen = len(g.Nodes)
		}
	}
	for stride := 1; stride < maxLen; stride <<= 1 {
		var round lbm.Round
		for _, g := range groups {
			for idx := stride; idx < len(g.Nodes); idx += 2 * stride {
				round = append(round, lbm.Send{
					From: g.Nodes[idx], To: g.Nodes[idx-stride],
					Src: g.Key, Dst: g.Key, Op: lbm.OpAcc,
				})
			}
		}
		plan.Append(round)
	}
	annotateTreePlan(plan, "routing/convergecast", groups)
	return plan
}
