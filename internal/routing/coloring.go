// Package routing provides the communication-scheduling primitives the
// paper's algorithms are built from: bipartite edge colouring (to realize an
// h-relation — "each computer has at most S outgoing and R incoming
// messages" — in O(S+R) rounds, as in the proof of Lemma 3.1), and
// broadcast / convergecast trees over disjoint groups of computers (the
// spread and aggregation steps of §3.3).
package routing

// This file implements bipartite multigraph edge colouring two ways:
//
//   - EulerColor: recursive Euler splitting. Each level splits the edge set
//     into two halves whose maximum degree is ⌈Δ/2⌉, so the recursion depth
//     is ⌈log₂ Δ⌉ and the number of colours is at most 2^⌈log₂ Δ⌉ < 2Δ.
//     Runs in O(E log Δ) time — this is the default scheduler.
//
//   - KonigColor: exact Δ-edge-colouring by alternating-path augmentation
//     (König's theorem). O(E·(V+Δ)) worst case; used for small instances
//     and as the optimality oracle in tests.

// edge is an edge of a bipartite multigraph between left node L and right
// node R (both 0-based within their side).
type edge struct {
	l, r int32
}

// maxDegree returns the maximum degree over all left and right nodes.
func maxDegree(edges []edge, nl, nr int) int {
	dl := make([]int, nl)
	dr := make([]int, nr)
	m := 0
	for _, e := range edges {
		dl[e.l]++
		dr[e.r]++
		if dl[e.l] > m {
			m = dl[e.l]
		}
		if dr[e.r] > m {
			m = dr[e.r]
		}
	}
	return m
}

// eulerColor colours edge indices (into edges) with colours such that no two
// edges sharing an endpoint get the same colour. It returns colour classes
// as slices of edge indices.
func eulerColor(edges []edge, nl, nr int) [][]int32 {
	idx := make([]int32, len(edges))
	for i := range idx {
		idx[i] = int32(i)
	}
	return eulerSplit(edges, idx, nl, nr)
}

func eulerSplit(edges []edge, idx []int32, nl, nr int) [][]int32 {
	if len(idx) == 0 {
		return nil
	}
	// Compute max degree of the sub-multigraph induced by idx.
	deg := 0
	dl := make([]int32, nl)
	dr := make([]int32, nr)
	for _, ei := range idx {
		e := edges[ei]
		dl[e.l]++
		dr[e.r]++
		if int(dl[e.l]) > deg {
			deg = int(dl[e.l])
		}
		if int(dr[e.r]) > deg {
			deg = int(dr[e.r])
		}
	}
	if deg <= 1 {
		// Already a matching: one colour class.
		return [][]int32{append([]int32(nil), idx...)}
	}
	half1, half2 := eulerPartition(edges, idx, nl, nr)
	out := eulerSplit(edges, half1, nl, nr)
	out = append(out, eulerSplit(edges, half2, nl, nr)...)
	return out
}

// eulerPartition decomposes the sub-multigraph given by idx into trails and
// assigns edges alternately to two halves, so each node's degree is split
// ⌈d/2⌉ / ⌊d/2⌋ up to the open-trail endpoints. Starting trails at
// odd-degree nodes first guarantees the ⌈Δ/2⌉ bound on both halves.
// Everything is slice-backed CSR over compacted node ids (left l -> l,
// right r -> nl+r) for planning speed.
func eulerPartition(edges []edge, idx []int32, nl, nr int) (half1, half2 []int32) {
	nNodes := nl + nr
	deg := make([]int32, nNodes)
	for _, ei := range idx {
		e := edges[ei]
		deg[e.l]++
		deg[int(e.r)+nl]++
	}
	// CSR offsets.
	start := make([]int32, nNodes+1)
	for v := 0; v < nNodes; v++ {
		start[v+1] = start[v] + deg[v]
	}
	incEdge := make([]int32, 2*len(idx))  // local edge position
	incOther := make([]int32, 2*len(idx)) // other endpoint node id
	fill := make([]int32, nNodes)
	copy(fill, start[:nNodes])
	for pos, ei := range idx {
		e := edges[ei]
		u := int32(e.l)
		v := e.r + int32(nl)
		incEdge[fill[u]] = int32(pos)
		incOther[fill[u]] = v
		fill[u]++
		incEdge[fill[v]] = int32(pos)
		incOther[fill[v]] = u
		fill[v]++
	}
	used := make([]bool, len(idx))
	cursor := make([]int32, nNodes)
	copy(cursor, start[:nNodes])

	half1 = make([]int32, 0, (len(idx)+1)/2)
	half2 = make([]int32, 0, len(idx)/2)
	walk := func(startNode int32) {
		u := startNode
		parity := 0
		for {
			c := cursor[u]
			for c < start[u+1] && used[incEdge[c]] {
				c++
			}
			cursor[u] = c
			if c >= start[u+1] {
				return
			}
			pos := incEdge[c]
			used[pos] = true
			cursor[u] = c + 1
			if parity == 0 {
				half1 = append(half1, idx[pos])
			} else {
				half2 = append(half2, idx[pos])
			}
			parity ^= 1
			u = incOther[c]
		}
	}

	// Odd-degree nodes first (open trails), then leftover circuits. Only
	// nodes incident to this sub-multigraph matter (deg > 0).
	for v := int32(0); int(v) < nNodes; v++ {
		if deg[v]%2 == 1 {
			walk(v)
		}
	}
	for v := int32(0); int(v) < nNodes; v++ {
		if deg[v] > 0 {
			walk(v)
		}
	}
	return half1, half2
}

// konigColor computes an exact Δ-edge-colouring of the bipartite multigraph
// via alternating-path augmentation.
func konigColor(edges []edge, nl, nr int) [][]int32 {
	delta := maxDegree(edges, nl, nr)
	if delta == 0 {
		return nil
	}
	// colourAtL[u][c] = edge index using colour c at left node u, -1 if free.
	colourAtL := make([][]int32, nl)
	colourAtR := make([][]int32, nr)
	for u := range colourAtL {
		colourAtL[u] = filled(delta, -1)
	}
	for v := range colourAtR {
		colourAtR[v] = filled(delta, -1)
	}
	colourOf := filled(len(edges), -1)

	freeAt := func(slots []int32) int32 {
		for c, e := range slots {
			if e == -1 {
				return int32(c)
			}
		}
		return -1
	}

	for ei := range edges {
		e := edges[ei]
		cl := freeAt(colourAtL[e.l])
		cr := freeAt(colourAtR[e.r])
		if cl == cr {
			assign(colourAtL, colourAtR, colourOf, edges, int32(ei), cl)
			continue
		}
		// Collect the alternating (cl, cr)-path starting at the right node
		// (edges coloured cl, cr, cl, ... on the original colouring), then
		// swap the two colours along it. This frees cl at e.r while keeping
		// it free at e.l (the path cannot reach e.l: it would have to arrive
		// by an edge coloured cl, but cl is free at e.l).
		var path []int32
		u, vSide := e.r, true // current node; vSide=true means right side
		cur, oth := cl, cr
		for {
			var slots []int32
			if vSide {
				slots = colourAtR[u]
			} else {
				slots = colourAtL[u]
			}
			next := slots[cur]
			if next == -1 {
				break
			}
			path = append(path, next)
			ne := edges[next]
			if vSide {
				u, vSide = ne.l, false
			} else {
				u, vSide = ne.r, true
			}
			cur, oth = oth, cur
		}
		// Two-pass flip: clear every path edge's old slot first, then set the
		// new slots. Interleaving the two would clobber slots shared by
		// consecutive path edges mid-flip.
		for _, pe := range path {
			ne := edges[pe]
			c := colourOf[pe]
			colourAtL[ne.l][c] = -1
			colourAtR[ne.r][c] = -1
		}
		for _, pe := range path {
			ne := edges[pe]
			nc := cl
			if colourOf[pe] == cl {
				nc = cr
			}
			colourOf[pe] = nc
			colourAtL[ne.l][nc] = pe
			colourAtR[ne.r][nc] = pe
		}
		assign(colourAtL, colourAtR, colourOf, edges, int32(ei), cl)
		_ = oth
	}

	classes := make([][]int32, delta)
	for ei, c := range colourOf {
		classes[c] = append(classes[c], int32(ei))
	}
	// Drop empty classes (possible when delta > needed for tiny graphs).
	out := classes[:0]
	for _, cl := range classes {
		if len(cl) > 0 {
			out = append(out, cl)
		}
	}
	return out
}

func assign(colourAtL, colourAtR [][]int32, colourOf []int32, edges []edge, ei, c int32) {
	e := edges[ei]
	colourAtL[e.l][c] = ei
	colourAtR[e.r][c] = ei
	colourOf[ei] = c
}

func filled(n int, v int32) []int32 {
	s := make([]int32, n)
	for i := range s {
		s[i] = v
	}
	return s
}
