package routing

import (
	"math/rand"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// properColoring checks that no two edges in a class share an endpoint and
// that every edge is coloured exactly once.
func properColoring(t *testing.T, edges []edge, classes [][]int32) {
	t.Helper()
	seen := make([]bool, len(edges))
	for _, class := range classes {
		l := map[int32]bool{}
		r := map[int32]bool{}
		for _, ei := range class {
			if seen[ei] {
				t.Fatalf("edge %d coloured twice", ei)
			}
			seen[ei] = true
			e := edges[ei]
			if l[e.l] || r[e.r] {
				t.Fatalf("colour class reuses endpoint of edge %d", ei)
			}
			l[e.l] = true
			r[e.r] = true
		}
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("edge %d not coloured", i)
		}
	}
}

func randomEdges(rng *rand.Rand, nl, nr, m int) []edge {
	es := make([]edge, m)
	for i := range es {
		es[i] = edge{l: int32(rng.Intn(nl)), r: int32(rng.Intn(nr))}
	}
	return es
}

func TestEulerColorProperAndBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 50; trial++ {
		nl, nr := 1+rng.Intn(20), 1+rng.Intn(20)
		es := randomEdges(rng, nl, nr, rng.Intn(120))
		classes := eulerColor(es, nl, nr)
		properColoring(t, es, classes)
		delta := maxDegree(es, nl, nr)
		// 2^ceil(log2 delta) <= 2*delta - 1 for delta >= 1.
		if delta > 0 && len(classes) >= 2*delta {
			t.Fatalf("euler used %d colours for Δ=%d", len(classes), delta)
		}
	}
}

func TestKonigColorOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 50; trial++ {
		nl, nr := 1+rng.Intn(15), 1+rng.Intn(15)
		es := randomEdges(rng, nl, nr, rng.Intn(100))
		classes := konigColor(es, nl, nr)
		properColoring(t, es, classes)
		delta := maxDegree(es, nl, nr)
		if len(classes) != 0 && len(classes) > delta {
			t.Fatalf("könig used %d colours for Δ=%d", len(classes), delta)
		}
	}
}

func TestColoringEmptyAndParallelEdges(t *testing.T) {
	if got := eulerColor(nil, 3, 3); len(got) != 0 {
		t.Error("empty euler")
	}
	if got := konigColor(nil, 3, 3); len(got) != 0 {
		t.Error("empty könig")
	}
	// 5 parallel edges between the same pair need 5 colours.
	es := []edge{{0, 0}, {0, 0}, {0, 0}, {0, 0}, {0, 0}}
	if got := konigColor(es, 1, 1); len(got) != 5 {
		t.Errorf("parallel edges könig: %d colours", len(got))
	}
	ec := eulerColor(es, 1, 1)
	properColoring(t, es, ec)
}

func runSchedule(t *testing.T, msgs []Msg, strategy Strategy, n int) (*lbm.Machine, *lbm.Plan) {
	t.Helper()
	m := lbm.New(n, ring.Counting{})
	for _, msg := range msgs {
		m.Put(msg.From, msg.Src, ring.Value(1+int(msg.From)))
	}
	plan := Schedule(msgs, strategy)
	if err := m.Run(plan); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	return m, plan
}

func TestScheduleDeliversEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, strategy := range []Strategy{Euler, Konig} {
		for trial := 0; trial < 30; trial++ {
			n := 4 + rng.Intn(20)
			var msgs []Msg
			for i := 0; i < rng.Intn(80); i++ {
				from := lbm.NodeID(rng.Intn(n))
				to := lbm.NodeID(rng.Intn(n))
				msgs = append(msgs, Msg{
					From: from, To: to,
					Src: lbm.TKey(int32(from), int32(i), 0),
					Dst: lbm.TKey(int32(from), int32(i), 1),
					Op:  lbm.OpSet,
				})
			}
			m := lbm.New(n, ring.Counting{})
			for _, msg := range msgs {
				m.Put(msg.From, msg.Src, ring.Value(int(msg.Src.J)+7))
			}
			plan := Schedule(msgs, strategy)
			if err := m.Run(plan); err != nil {
				t.Fatal(err)
			}
			for _, msg := range msgs {
				v, ok := m.Get(msg.To, msg.Dst)
				if !ok || v != ring.Value(int(msg.Src.J)+7) {
					t.Fatalf("message %v not delivered (got %v,%v)", msg, v, ok)
				}
			}
			// Round bound: König pays exactly max(S,R)+[has local]; Euler
			// pays < 2*max(S,R) rounds (+1 for a local-only extra round).
			s, r := MaxDegrees(msgs)
			delta := s
			if r > delta {
				delta = r
			}
			if strategy == Konig && m.Rounds() > delta {
				t.Fatalf("könig schedule used %d rounds for Δ=%d", m.Rounds(), delta)
			}
			if strategy == Euler && delta > 0 && m.Rounds() >= 2*delta {
				t.Fatalf("euler schedule used %d rounds for Δ=%d", m.Rounds(), delta)
			}
		}
	}
}

func TestScheduleLocalOnly(t *testing.T) {
	msgs := []Msg{{From: 2, To: 2, Src: lbm.TKey(0, 0, 0), Dst: lbm.TKey(0, 0, 1), Op: lbm.OpSet}}
	m := lbm.New(4, ring.Counting{})
	m.Put(2, lbm.TKey(0, 0, 0), 9)
	plan := Schedule(msgs, Euler)
	if err := m.Run(plan); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() != 0 {
		t.Errorf("local-only schedule used %d rounds", m.Rounds())
	}
	if v, _ := m.Get(2, lbm.TKey(0, 0, 1)); v != 9 {
		t.Error("local copy missing")
	}
}

func TestMaxDegrees(t *testing.T) {
	msgs := []Msg{
		{From: 0, To: 1}, {From: 0, To: 2}, {From: 3, To: 2}, {From: 4, To: 4},
	}
	s, r := MaxDegrees(msgs)
	if s != 2 || r != 2 {
		t.Errorf("MaxDegrees = %d,%d", s, r)
	}
}

func TestBroadcastPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		n := 40
		m := lbm.New(n, ring.Counting{})
		// Three disjoint groups of random sizes.
		perm := rng.Perm(n)
		sizes := []int{1 + rng.Intn(12), 1 + rng.Intn(12), 1 + rng.Intn(12)}
		var groups []Group
		off := 0
		for gi, sz := range sizes {
			nodes := make([]lbm.NodeID, sz)
			for i := range nodes {
				nodes[i] = lbm.NodeID(perm[off+i])
			}
			off += sz
			key := lbm.TKey(int32(gi), 0, 0)
			m.Put(nodes[0], key, ring.Value(100+gi))
			groups = append(groups, Group{Nodes: nodes, Key: key})
		}
		plan := BroadcastPlan(groups)
		if err := m.Run(plan); err != nil {
			t.Fatal(err)
		}
		maxSize := 0
		for gi, g := range groups {
			if len(g.Nodes) > maxSize {
				maxSize = len(g.Nodes)
			}
			for _, node := range g.Nodes {
				if v, ok := m.Get(node, g.Key); !ok || v != ring.Value(100+gi) {
					t.Fatalf("group %d node %d missing broadcast value", gi, node)
				}
			}
		}
		if m.Rounds() > ceilLog2(maxSize) {
			t.Fatalf("broadcast used %d rounds for max group %d", m.Rounds(), maxSize)
		}
	}
}

func TestConvergecastPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for trial := 0; trial < 20; trial++ {
		n := 40
		m := lbm.New(n, ring.Counting{})
		perm := rng.Perm(n)
		sizes := []int{1 + rng.Intn(12), 1 + rng.Intn(12)}
		var groups []Group
		want := make([]ring.Value, len(sizes))
		off := 0
		for gi, sz := range sizes {
			nodes := make([]lbm.NodeID, sz)
			key := lbm.TKey(int32(gi), 1, 0)
			for i := range nodes {
				nodes[i] = lbm.NodeID(perm[off+i])
				v := ring.Value(rng.Intn(50))
				m.Put(nodes[i], key, v)
				want[gi] += v
			}
			off += sz
			groups = append(groups, Group{Nodes: nodes, Key: key})
		}
		plan := ConvergecastPlan(groups)
		if err := m.Run(plan); err != nil {
			t.Fatal(err)
		}
		maxSize := 0
		for gi, g := range groups {
			if len(g.Nodes) > maxSize {
				maxSize = len(g.Nodes)
			}
			if v, _ := m.Get(g.Nodes[0], g.Key); v != want[gi] {
				t.Fatalf("group %d sum = %v, want %v", gi, v, want[gi])
			}
		}
		if m.Rounds() > ceilLog2(maxSize) {
			t.Fatalf("convergecast used %d rounds for max group %d", m.Rounds(), maxSize)
		}
	}
}

func TestConvergecastTropical(t *testing.T) {
	// Reduction over MinPlus computes the minimum.
	m := lbm.New(8, ring.MinPlus{})
	key := lbm.TKey(0, 0, 0)
	vals := []ring.Value{9, 3, 7, 5, 11, 2, 8, 6}
	nodes := make([]lbm.NodeID, 8)
	for i := range nodes {
		nodes[i] = lbm.NodeID(i)
		m.Put(nodes[i], key, vals[i])
	}
	if err := m.Run(ConvergecastPlan([]Group{{Nodes: nodes, Key: key}})); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(0, key); v != 2 {
		t.Errorf("tropical convergecast = %v, want 2", v)
	}
}

func ceilLog2(n int) int {
	r := 0
	for (1 << r) < n {
		r++
	}
	return r
}

// TestStrategyAblation compares the two colouring backends on random
// h-relations: König is exact (Δ rounds), Euler pays at most the
// next power of two, and Auto never does worse than Euler.
func TestStrategyAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 25; trial++ {
		n := 8 + rng.Intn(24)
		var msgs []Msg
		for i := 0; i < 20+rng.Intn(200); i++ {
			from := lbm.NodeID(rng.Intn(n))
			to := lbm.NodeID(rng.Intn(n))
			if from == to {
				continue
			}
			msgs = append(msgs, Msg{From: from, To: to,
				Src: lbm.TKey(int32(i), 0, 0), Dst: lbm.TKey(int32(i), 1, 0)})
		}
		s, r := MaxDegrees(msgs)
		delta := s
		if r > delta {
			delta = r
		}
		konig := Schedule(msgs, Konig).NumRounds()
		euler := Schedule(msgs, Euler).NumRounds()
		auto := Schedule(msgs, Auto).NumRounds()
		if konig != delta && delta > 0 {
			t.Fatalf("könig %d != Δ %d", konig, delta)
		}
		if euler < delta || (delta > 0 && euler >= 2*delta) {
			t.Fatalf("euler %d outside [Δ, 2Δ) for Δ=%d", euler, delta)
		}
		if auto > euler {
			t.Fatalf("auto %d worse than euler %d", auto, euler)
		}
	}
}

func TestSortOddEven(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	key := lbm.TKey(5, 5, 5)
	for trial := 0; trial < 30; trial++ {
		n := 32
		p := 1 + rng.Intn(20)
		m := lbm.New(n, ring.MinPlus{})
		perm := rng.Perm(n)
		nodes := make([]lbm.NodeID, p)
		vals := make([]ring.Value, p)
		for i := range nodes {
			nodes[i] = lbm.NodeID(perm[i])
			vals[i] = ring.Value(rng.Intn(40))
			m.Put(nodes[i], key, vals[i])
		}
		if err := SortOddEven(m, nodes, key); err != nil {
			t.Fatal(err)
		}
		var prev ring.Value = -1
		for i, node := range nodes {
			v, ok := m.Get(node, key)
			if !ok {
				t.Fatalf("node %d lost its value", node)
			}
			if v < prev {
				t.Fatalf("not sorted at position %d: %v < %v", i, v, prev)
			}
			prev = v
			// No scratch leftovers.
			if _, leak := m.Get(node, sortScratch(key)); leak {
				t.Fatal("scratch leaked")
			}
		}
		// Multiset preserved.
		var got []float64
		for _, node := range nodes {
			v, _ := m.Get(node, key)
			got = append(got, v)
		}
		want := append([]float64(nil), vals...)
		sortFloats(want)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("multiset changed: %v vs %v", got, want)
			}
		}
		if p > 1 && m.Rounds() > p {
			t.Fatalf("sort of %d values took %d rounds", p, m.Rounds())
		}
	}
	// Duplicate nodes rejected.
	m := lbm.New(4, ring.Counting{})
	m.Put(0, key, 1)
	if err := SortOddEven(m, []lbm.NodeID{0, 0}, key); err == nil {
		t.Error("duplicate nodes accepted")
	}
}

func sortFloats(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func TestRedistribute(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	n := 24
	entries := func(nnz int) [][2]int {
		var es [][2]int
		for len(es) < nnz {
			es = append(es, [2]int{rng.Intn(n), rng.Intn(n)})
		}
		return es
	}
	ahat := matrix.NewSupport(n, entries(3*n))
	bhat := matrix.NewSupport(n, entries(3*n))
	xhat := matrix.NewSupport(n, entries(n))
	a := matrix.Random(ahat, ring.Counting{}, 1)
	b := matrix.Random(bhat, ring.Counting{}, 2)

	m := lbm.New(n, ring.Counting{})
	rowL := lbm.RowLayout(ahat, bhat, xhat)
	balL := lbm.BalancedLayout(ahat, bhat, xhat)
	lbm.LoadInputs(m, rowL, a, b)
	if err := Redistribute(m, rowL, balL, ahat, bhat); err != nil {
		t.Fatal(err)
	}
	// Every element is now at its balanced owner (and only there if moved).
	for i, row := range ahat.Rows {
		for _, j := range row {
			v, ok := m.Get(balL.OwnerA(int32(i), j), lbm.AKey(int32(i), j))
			if !ok || v != a.Get(i, int(j)) {
				t.Fatalf("A(%d,%d) not at balanced owner", i, j)
			}
			if src := rowL.OwnerA(int32(i), j); src != balL.OwnerA(int32(i), j) {
				if _, stale := m.Get(src, lbm.AKey(int32(i), j)); stale {
					t.Fatalf("A(%d,%d) left behind at old owner", i, j)
				}
			}
		}
	}
	// Cost is O(max per-node elements): generous constant.
	ra, rb, _ := rowL.MaxPerNode()
	if m.Rounds() > 4*(ra+rb)+8 {
		t.Errorf("redistribute took %d rounds for loads %d/%d", m.Rounds(), ra, rb)
	}
	// Dimension mismatch rejected.
	other := lbm.RowLayout(matrix.NewSupport(4, nil), matrix.NewSupport(4, nil), matrix.NewSupport(4, nil))
	if err := Redistribute(m, rowL, other, ahat, bhat); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestPipelinedBroadcast(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(30)
		k := 1 + rng.Intn(60)
		nodes := make([]lbm.NodeID, n)
		for i := range nodes {
			nodes[i] = lbm.NodeID(i)
		}
		m := lbm.New(n, ring.Counting{})
		keyOf := func(t int) lbm.Key { return lbm.TKey(int32(t), 77, 0) }
		for t := 0; t < k; t++ {
			m.Put(0, keyOf(t), ring.Value(1000+t))
		}
		plan := PipelinedBroadcast(nodes, k, keyOf)
		if err := m.Run(plan); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for tt := 0; tt < k; tt++ {
				v, ok := m.Get(lbm.NodeID(i), keyOf(tt))
				if !ok || v != ring.Value(1000+tt) {
					t.Fatalf("n=%d k=%d: node %d missing item %d", n, k, i, tt)
				}
			}
		}
		// Pipelining bound: ≤ 2k + 2·⌈log₂ n⌉ + 4, far below the k·log n of
		// item-by-item broadcasts for large k.
		bound := 2*k + 2*ceilLog2(n) + 4
		if m.Rounds() > bound {
			t.Errorf("n=%d k=%d: %d rounds > pipeline bound %d", n, k, m.Rounds(), bound)
		}
	}
	// Degenerate cases cost nothing.
	if PipelinedBroadcast([]lbm.NodeID{3}, 5, func(int) lbm.Key { return lbm.TKey(0, 0, 0) }).NumRounds() != 0 {
		t.Error("single node broadcast should be free")
	}
}
