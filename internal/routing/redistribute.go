package routing

import (
	"fmt"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
)

// Redistribute moves the loaded input elements of A and B from one layout
// to another — the paper's §2 remark made executable: "it does not matter
// how the input and output is distributed among the computers — with an
// additional O(d) time we can permute the input and output as appropriate."
// The cost is one h-relation whose degree is the maximum per-computer
// element count of the two layouts, i.e. O(d) rounds for d-per-computer
// distributions.
func Redistribute(m *lbm.Machine, from, to *lbm.Layout, ahat, bhat *matrix.Support) error {
	if from.N != to.N {
		return fmt.Errorf("routing: layout dimension mismatch %d vs %d", from.N, to.N)
	}
	var msgs []Msg
	for i, row := range ahat.Rows {
		for _, j := range row {
			src := from.OwnerA(int32(i), j)
			dst := to.OwnerA(int32(i), j)
			msgs = append(msgs, Msg{From: src, To: dst, Src: lbm.AKey(int32(i), j), Dst: lbm.AKey(int32(i), j), Op: lbm.OpSet})
		}
	}
	for j, row := range bhat.Rows {
		for _, k := range row {
			src := from.OwnerB(int32(j), k)
			dst := to.OwnerB(int32(j), k)
			msgs = append(msgs, Msg{From: src, To: dst, Src: lbm.BKey(int32(j), k), Dst: lbm.BKey(int32(j), k), Op: lbm.OpSet})
		}
	}
	if err := m.Run(Schedule(msgs, Auto)); err != nil {
		return fmt.Errorf("routing: redistribute: %w", err)
	}
	// Free cleanup: drop the copies at the old owners (only where the
	// element actually moved).
	for i, row := range ahat.Rows {
		for _, j := range row {
			if src := from.OwnerA(int32(i), j); src != to.OwnerA(int32(i), j) {
				m.Del(src, lbm.AKey(int32(i), j))
			}
		}
	}
	for j, row := range bhat.Rows {
		for _, k := range row {
			if src := from.OwnerB(int32(j), k); src != to.OwnerB(int32(j), k) {
				m.Del(src, lbm.BKey(int32(j), k))
			}
		}
	}
	return nil
}
