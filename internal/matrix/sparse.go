package matrix

import (
	"fmt"
	"math/rand"
	"sort"

	"lbmm/internal/ring"
)

// Cell is a single stored entry of a sparse matrix row.
type Cell struct {
	Col int32
	Val ring.Value
}

// Sparse is an n×n sparse matrix over a semiring, stored by rows with sorted
// column indices. Positions outside the stored cells are the ring's Zero.
type Sparse struct {
	N    int
	R    ring.Semiring
	Rows [][]Cell
}

// NewSparse returns the n×n zero matrix over r.
func NewSparse(n int, r ring.Semiring) *Sparse {
	return &Sparse{N: n, R: r, Rows: make([][]Cell, n)}
}

// Set stores value v at (i, j), replacing any existing value. Setting the
// ring Zero removes the entry so supports stay minimal.
func (m *Sparse) Set(i, j int, v ring.Value) {
	row := m.Rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k].Col >= int32(j) })
	present := k < len(row) && row[k].Col == int32(j)
	if m.R.Eq(v, m.R.Zero()) {
		if present {
			m.Rows[i] = append(row[:k], row[k+1:]...)
		}
		return
	}
	if present {
		row[k].Val = v
		return
	}
	row = append(row, Cell{})
	copy(row[k+1:], row[k:])
	row[k] = Cell{Col: int32(j), Val: v}
	m.Rows[i] = row
}

// Get returns the value at (i, j), which is the ring Zero for absent cells.
func (m *Sparse) Get(i, j int) ring.Value {
	row := m.Rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k].Col >= int32(j) })
	if k < len(row) && row[k].Col == int32(j) {
		return row[k].Val
	}
	return m.R.Zero()
}

// Add accumulates v into (i, j) with the ring addition.
func (m *Sparse) Add(i, j int, v ring.Value) {
	m.Set(i, j, m.R.Add(m.Get(i, j), v))
}

// NNZ returns the number of stored entries.
func (m *Sparse) NNZ() int {
	total := 0
	for _, row := range m.Rows {
		total += len(row)
	}
	return total
}

// Support returns the indicator of the stored entries.
func (m *Sparse) Support() *Support {
	entries := make([][2]int, 0, m.NNZ())
	for i, row := range m.Rows {
		for _, c := range row {
			entries = append(entries, [2]int{i, int(c.Col)})
		}
	}
	return NewSupport(m.N, entries)
}

// Clone returns a deep copy of the matrix.
func (m *Sparse) Clone() *Sparse {
	c := NewSparse(m.N, m.R)
	for i, row := range m.Rows {
		c.Rows[i] = append([]Cell(nil), row...)
	}
	return c
}

// Random fills the given support with random nonzero values of r, seeded
// deterministically. Every support position receives a value, so the value
// matrix realizes the support exactly.
func Random(s *Support, r ring.Semiring, seed int64) *Sparse {
	rng := rand.New(rand.NewSource(seed))
	m := NewSparse(s.N, r)
	for i, row := range s.Rows {
		cells := make([]Cell, len(row))
		for k, j := range row {
			cells[k] = Cell{Col: j, Val: r.Rand(rng)}
		}
		m.Rows[i] = cells
	}
	return m
}

// Masked returns a copy of m restricted to the entries of s.
func (m *Sparse) Masked(s *Support) *Sparse {
	out := NewSparse(m.N, m.R)
	for i, row := range m.Rows {
		for _, c := range row {
			if s.Has(i, int(c.Col)) {
				out.Set(i, int(c.Col), c.Val)
			}
		}
	}
	return out
}

// MulReference computes the masked product X = A·B restricted to the output
// support xhat, using plain sequential semiring arithmetic. It is the
// correctness oracle for every distributed algorithm in this module.
func MulReference(a, b *Sparse, xhat *Support) *Sparse {
	if a.N != b.N || a.N != xhat.N {
		panic("matrix: MulReference dimension mismatch")
	}
	r := a.R
	x := NewSparse(a.N, r)
	for i := 0; i < a.N; i++ {
		if len(xhat.Rows[i]) == 0 || len(a.Rows[i]) == 0 {
			continue
		}
		// acc accumulates row i of the product over the columns of interest.
		acc := make(map[int32]ring.Value, len(xhat.Rows[i]))
		wanted := make(map[int32]bool, len(xhat.Rows[i]))
		for _, k := range xhat.Rows[i] {
			wanted[k] = true
		}
		for _, ac := range a.Rows[i] {
			j := int(ac.Col)
			for _, bc := range b.Rows[j] {
				if !wanted[bc.Col] {
					continue
				}
				prod := r.Mul(ac.Val, bc.Val)
				if cur, ok := acc[bc.Col]; ok {
					acc[bc.Col] = r.Add(cur, prod)
				} else {
					acc[bc.Col] = prod
				}
			}
		}
		// Every requested output position is reported, including explicit
		// zeros: the model requires each computer to learn its X values.
		for _, k := range xhat.Rows[i] {
			if v, ok := acc[k]; ok {
				x.Set(i, int(k), v)
			}
		}
	}
	return x
}

// Equal reports whether a and b agree on every position, using the ring
// equality of a (tolerant for Real).
func Equal(a, b *Sparse) bool {
	if a.N != b.N {
		return false
	}
	r := a.R
	for i := 0; i < a.N; i++ {
		cols := map[int32]bool{}
		for _, c := range a.Rows[i] {
			cols[c.Col] = true
		}
		for _, c := range b.Rows[i] {
			cols[c.Col] = true
		}
		for j := range cols {
			if !r.Eq(a.Get(i, int(j)), b.Get(i, int(j))) {
				return false
			}
		}
	}
	return true
}

// String renders small matrices for debugging; large ones are summarized.
func (m *Sparse) String() string {
	if m.N > 16 {
		return fmt.Sprintf("Sparse{n=%d nnz=%d ring=%s}", m.N, m.NNZ(), m.R.Name())
	}
	out := ""
	for i := 0; i < m.N; i++ {
		for j := 0; j < m.N; j++ {
			out += fmt.Sprintf("%6v ", m.Get(i, j))
		}
		out += "\n"
	}
	return out
}
