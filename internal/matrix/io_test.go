package matrix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"lbmm/internal/ring"
)

func TestSupportRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 10; trial++ {
		s := randomSupport(rng, 6+rng.Intn(30), rng.Intn(80))
		var buf bytes.Buffer
		if err := WriteSupport(&buf, s); err != nil {
			t.Fatal(err)
		}
		got, err := ReadSupport(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got.N != s.N || got.NNZ != s.NNZ {
			t.Fatalf("roundtrip shape: %d/%d vs %d/%d", got.N, got.NNZ, s.N, s.NNZ)
		}
		for _, e := range s.Entries() {
			if !got.Has(e[0], e[1]) {
				t.Fatalf("missing entry %v", e)
			}
		}
	}
}

func TestSparseRoundTripAllRings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, r := range ring.All() {
		s := randomSupport(rng, 12, 30)
		m := Random(s, r, 7)
		var buf bytes.Buffer
		if err := WriteSparse(&buf, m); err != nil {
			t.Fatal(err)
		}
		// Read with the explicit ring.
		got, err := ReadSparse(bytes.NewReader(buf.Bytes()), r)
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		if !Equal(got, m) {
			t.Fatalf("%s: roundtrip mismatch", r.Name())
		}
		// Read with the ring inferred from the banner.
		got2, err := ReadSparse(bytes.NewReader(buf.Bytes()), nil)
		if err != nil {
			t.Fatalf("%s infer: %v", r.Name(), err)
		}
		if got2.R.Name() != r.Name() {
			t.Fatalf("inferred ring %s, want %s", got2.R.Name(), r.Name())
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	cases := []string{
		"",                                   // empty
		"junk\n1 1\n",                        // bad banner
		"%%lbmm support\n",                   // missing dims
		"%%lbmm support\n4 1\n9 9\n",         // out of range
		"%%lbmm support\n4 2\n1 1\n",         // nnz mismatch
		"%%lbmm matrix counting\n4 1\nx\n",   // bad entry
		"%%lbmm support\n4 0\n",              // support read as matrix (below)
		"%%lbmm matrix nosuch\n1 0\n",        // unknown ring
		"%%lbmm matrix counting\n4 1\n0 0\n", // matrix entry missing value
	}
	for i, c := range cases {
		if i == 6 {
			if _, err := ReadSparse(strings.NewReader(c), nil); err == nil {
				t.Errorf("case %d: matrix reader accepted support", i)
			}
			continue
		}
		_, errS := ReadSupport(strings.NewReader(c))
		_, errM := ReadSparse(strings.NewReader(c), nil)
		if errS == nil && errM == nil {
			t.Errorf("case %d accepted by both readers: %q", i, c)
		}
	}
}

func TestRingByName(t *testing.T) {
	for _, r := range ring.All() {
		got, err := RingByName(r.Name())
		if err != nil || got.Name() != r.Name() {
			t.Errorf("RingByName(%s) = %v, %v", r.Name(), got, err)
		}
	}
	if _, err := RingByName("bogus"); err == nil {
		t.Error("bogus ring accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	in := "%%lbmm support\n% a comment\n\n3 2\n% another\n0 1\n\n2 2\n"
	s, err := ReadSupport(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Has(0, 1) || !s.Has(2, 2) || s.NNZ != 2 {
		t.Error("comment handling broken")
	}
}

func TestReadRejectsHostileHeaders(t *testing.T) {
	cases := []string{
		"%%lbmm support\n99993999 1\n0 0\n",              // dimension OOM vector
		"%%lbmm support\n-5 0\n",                         // negative n
		"%%lbmm support\n4 -1\n",                         // negative nnz
		"%%lbmm support\n4 17\n",                         // nnz > n²
		"%%lbmm matrix counting\n4194304 999999999999\n", // absurd nnz claim
	}
	for i, c := range cases {
		if _, err := ReadSupport(strings.NewReader(c)); err == nil {
			if _, err2 := ReadSparse(strings.NewReader(c), nil); err2 == nil {
				t.Errorf("case %d accepted: %q", i, c)
			}
		}
	}
}
