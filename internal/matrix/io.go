package matrix

// Plain-text serialization of supports and sparse matrices, in the spirit
// of the Matrix Market exchange format:
//
//	%%lbmm support|matrix <ring>
//	n nnz
//	i j [value]        (0-based, one entry per line)
//
// Lines starting with '%' are comments. The format exists so the CLI can
// run the algorithms on user-supplied instances and so experiment inputs
// can be archived.

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"lbmm/internal/ring"
)

// WriteSupport serializes a support.
func WriteSupport(w io.Writer, s *Support) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%%%%lbmm support\n%d %d\n", s.N, s.NNZ)
	for i, row := range s.Rows {
		for _, j := range row {
			fmt.Fprintf(bw, "%d %d\n", i, j)
		}
	}
	return bw.Flush()
}

// WriteSparse serializes a sparse matrix with its ring name.
func WriteSparse(w io.Writer, m *Sparse) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "%%%%lbmm matrix %s\n%d %d\n", m.R.Name(), m.N, m.NNZ())
	for i, row := range m.Rows {
		for _, c := range row {
			fmt.Fprintf(bw, "%d %d %v\n", i, c.Col, c.Val)
		}
	}
	return bw.Flush()
}

// maxReadDim caps the matrix dimension a file header may declare: the
// reader allocates O(n) row headers before seeing any entries, so an
// unvalidated header is an out-of-memory vector. 2^22 computers is far
// beyond what the simulator can usefully run anyway.
const maxReadDim = 1 << 22

type header struct {
	kind string
	ring string
	n    int
	nnz  int
}

func readHeader(sc *bufio.Scanner) (*header, error) {
	h := &header{}
	// First non-empty line: the banner.
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if !strings.HasPrefix(line, "%%lbmm ") {
			return nil, fmt.Errorf("matrix: bad banner %q", line)
		}
		fields := strings.Fields(line)
		h.kind = fields[1]
		if len(fields) > 2 {
			h.ring = fields[2]
		}
		break
	}
	// Dimensions line (skipping comments).
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		if _, err := fmt.Sscanf(line, "%d %d", &h.n, &h.nnz); err != nil {
			return nil, fmt.Errorf("matrix: bad dimensions line %q", line)
		}
		if h.n < 0 || h.n > maxReadDim {
			return nil, fmt.Errorf("matrix: dimension %d outside [0, %d]", h.n, maxReadDim)
		}
		if h.nnz < 0 || int64(h.nnz) > int64(h.n)*int64(h.n) {
			return nil, fmt.Errorf("matrix: %d entries impossible for n=%d", h.nnz, h.n)
		}
		return h, nil
	}
	return nil, fmt.Errorf("matrix: missing dimensions line")
}

// ReadSupport parses a support file.
func ReadSupport(r io.Reader) (*Support, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	h, err := readHeader(sc)
	if err != nil {
		return nil, err
	}
	if h.kind != "support" {
		return nil, fmt.Errorf("matrix: expected support, found %q", h.kind)
	}
	// Preallocation is capped independently of the header: nnz can claim up
	// to n², far beyond what a ≤64KiB..file can actually contain; the slice
	// grows to the real entry count either way.
	capHint := h.nnz
	if capHint > 1<<20 {
		capHint = 1 << 20
	}
	entries := make([][2]int, 0, capHint)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		var i, j int
		if _, err := fmt.Sscanf(line, "%d %d", &i, &j); err != nil {
			return nil, fmt.Errorf("matrix: bad entry %q", line)
		}
		if i < 0 || i >= h.n || j < 0 || j >= h.n {
			return nil, fmt.Errorf("matrix: entry (%d,%d) out of range for n=%d", i, j, h.n)
		}
		entries = append(entries, [2]int{i, j})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(entries) != h.nnz {
		return nil, fmt.Errorf("matrix: header says %d entries, found %d", h.nnz, len(entries))
	}
	return NewSupport(h.n, entries), nil
}

// RingByName resolves a ring name as written by WriteSparse.
func RingByName(name string) (ring.Semiring, error) {
	switch name {
	case "boolean":
		return ring.Boolean{}, nil
	case "counting":
		return ring.Counting{}, nil
	case "minplus":
		return ring.MinPlus{}, nil
	case "maxplus":
		return ring.MaxPlus{}, nil
	case "gfp":
		return ring.NewGFp(1009), nil
	case "real":
		return ring.Real{}, nil
	}
	return nil, fmt.Errorf("matrix: unknown ring %q", name)
}

// ReadSparse parses a matrix file. If r0 is nil the ring named in the file
// is used (GF(p) defaults to p=1009).
func ReadSparse(rd io.Reader, r0 ring.Semiring) (*Sparse, error) {
	sc := bufio.NewScanner(rd)
	sc.Buffer(make([]byte, 1<<16), 1<<24)
	h, err := readHeader(sc)
	if err != nil {
		return nil, err
	}
	if h.kind != "matrix" {
		return nil, fmt.Errorf("matrix: expected matrix, found %q", h.kind)
	}
	r := r0
	if r == nil {
		if r, err = RingByName(h.ring); err != nil {
			return nil, err
		}
	}
	m := NewSparse(h.n, r)
	count := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return nil, fmt.Errorf("matrix: bad entry %q", line)
		}
		i, err1 := strconv.Atoi(fields[0])
		j, err2 := strconv.Atoi(fields[1])
		v, err3 := strconv.ParseFloat(fields[2], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			return nil, fmt.Errorf("matrix: bad entry %q", line)
		}
		if i < 0 || i >= h.n || j < 0 || j >= h.n {
			return nil, fmt.Errorf("matrix: entry (%d,%d) out of range for n=%d", i, j, h.n)
		}
		m.Set(i, j, v)
		count++
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if count != h.nnz {
		return nil, fmt.Errorf("matrix: header says %d entries, found %d", h.nnz, count)
	}
	return m, nil
}
