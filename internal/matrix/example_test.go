package matrix_test

import (
	"fmt"

	"lbmm/internal/matrix"
)

// ExampleSupport_Classify shows the sparsity lattice in action: one dense
// row plus one dense column is 1-degenerate (class BD) even though neither
// rows nor columns are uniformly sparse.
func ExampleSupport_Classify() {
	n := 8
	var entries [][2]int
	for i := 0; i < n; i++ {
		entries = append(entries, [2]int{0, i}, [2]int{i, 0})
	}
	s := matrix.NewSupport(n, entries)
	fmt.Println("degeneracy:", s.Degeneracy())
	fmt.Println("class at d=1:", s.Classify(1))
	// Output:
	// degeneracy: 1
	// class at d=1: BD
}

// ExampleSupport_SplitRSCS demonstrates the BD = RS + CS decomposition of
// §1.3 that Theorem 5.11 builds on.
func ExampleSupport_SplitRSCS() {
	n := 4
	s := matrix.NewSupport(n, [][2]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {2, 0}})
	rs, cs, ok := s.SplitRSCS(1)
	fmt.Println(ok, rs.IsRS(1), cs.IsCS(1), rs.NNZ+cs.NNZ == s.NNZ)
	// Output:
	// true true true true
}
