package matrix

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbmm/internal/ring"
)

func randomSupport(rng *rand.Rand, n, nnz int) *Support {
	entries := make([][2]int, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return NewSupport(n, entries)
}

func TestSupportBasics(t *testing.T) {
	s := NewSupport(4, [][2]int{{0, 1}, {0, 3}, {2, 1}, {0, 1}}) // duplicate collapses
	if s.NNZ != 3 {
		t.Fatalf("NNZ = %d, want 3", s.NNZ)
	}
	if !s.Has(0, 1) || !s.Has(2, 1) || s.Has(1, 1) {
		t.Fatal("Has gives wrong membership")
	}
	if got := s.MaxRowNNZ(); got != 2 {
		t.Errorf("MaxRowNNZ = %d", got)
	}
	if got := s.MaxColNNZ(); got != 2 {
		t.Errorf("MaxColNNZ = %d", got)
	}
	tr := s.Transpose()
	if !tr.Has(1, 0) || !tr.Has(3, 0) || !tr.Has(1, 2) || tr.NNZ != 3 {
		t.Error("Transpose wrong")
	}
	u := Union(s, tr)
	if u.NNZ != 5 { // (0,1),(0,3),(2,1),(1,0),(3,0),(1,2) minus shared none => 6? (0,1)&(1,0) distinct; check
		// entries: s = {(0,1),(0,3),(2,1)}; tr = {(1,0),(3,0),(1,2)}; union = 6.
		if u.NNZ != 6 {
			t.Errorf("Union NNZ = %d, want 6", u.NNZ)
		}
	}
}

func TestSupportOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for out-of-range entry")
		}
	}()
	NewSupport(2, [][2]int{{0, 2}})
}

func TestClassContainment(t *testing.T) {
	order := []Class{US, RS, CS, BD, AS, GM}
	for _, big := range order {
		if !big.Contains(big) {
			t.Errorf("%v must contain itself", big)
		}
	}
	if !GM.Contains(US) || !AS.Contains(BD) || !BD.Contains(RS) || !BD.Contains(CS) ||
		!RS.Contains(US) || !CS.Contains(US) {
		t.Error("containment lattice broken")
	}
	if RS.Contains(CS) || CS.Contains(RS) {
		t.Error("RS and CS must be incomparable")
	}
	if US.Contains(RS) || BD.Contains(AS) || AS.Contains(GM) {
		t.Error("reverse containments must fail")
	}
}

func TestParseClass(t *testing.T) {
	for _, c := range []Class{US, RS, CS, BD, AS, GM} {
		got, err := ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%v) = %v, %v", c, got, err)
		}
	}
	if _, err := ParseClass("XX"); err == nil {
		t.Error("ParseClass must reject unknown names")
	}
}

func TestClassifyExamples(t *testing.T) {
	n := 8
	// Diagonal: US(1).
	diag := make([][2]int, n)
	for i := range diag {
		diag[i] = [2]int{i, i}
	}
	if got := NewSupport(n, diag).Classify(1); got != US {
		t.Errorf("diagonal classified %v", got)
	}
	// One dense row: RS(n) but at d=1 it is row n-dense: with d=1 it is CS(1)?
	// A single dense row has every column with exactly 1 entry, so it is
	// CS(1) but not RS(1); classification at d=1 must say CS.
	denseRow := make([][2]int, n)
	for j := range denseRow {
		denseRow[j] = [2]int{0, j}
	}
	if got := NewSupport(n, denseRow).Classify(1); got != CS {
		t.Errorf("dense row classified %v, want CS", got)
	}
	// One dense column: RS(1).
	denseCol := make([][2]int, n)
	for i := range denseCol {
		denseCol[i] = [2]int{i, 0}
	}
	if got := NewSupport(n, denseCol).Classify(1); got != RS {
		t.Errorf("dense column classified %v, want RS", got)
	}
	// Dense row + dense column: BD(1) (peel row then column) but neither RS(1)
	// nor CS(1).
	cross := append(append([][2]int{}, denseRow...), denseCol...)
	crossS := NewSupport(n, cross)
	if got := crossS.Classify(1); got != BD {
		t.Errorf("cross classified %v, want BD (degeneracy=%d)", got, crossS.Degeneracy())
	}
	// Full matrix at small d: GM.
	var full [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			full = append(full, [2]int{i, j})
		}
	}
	if got := NewSupport(n, full).Classify(1); got != GM {
		t.Errorf("full classified %v, want GM", got)
	}
	// n entries concentrated in one d×d block with d=4: AS(1)? 16 entries on
	// n=8 => nnz=16 ≤ 1·8? no. Use a block of 2x2=4 entries plus scattering:
	// simplest AS example: d+? Use a (d+1)-degenerate core: complete 3x3
	// block on n=9 with d=1: nnz=9 ≤ 9 => AS(1), degeneracy 3 > 1.
	var blk [][2]int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			blk = append(blk, [2]int{i, j})
		}
	}
	if got := NewSupport(9, blk).Classify(1); got != AS {
		t.Errorf("block classified %v, want AS", got)
	}
}

func TestDegeneracySmall(t *testing.T) {
	// Complete k×k block has degeneracy k (delete anything: k entries).
	for k := 1; k <= 5; k++ {
		var entries [][2]int
		for i := 0; i < k; i++ {
			for j := 0; j < k; j++ {
				entries = append(entries, [2]int{i, j})
			}
		}
		s := NewSupport(k, entries)
		if got := s.Degeneracy(); got != k {
			t.Errorf("K%d,%d degeneracy = %d, want %d", k, k, got, k)
		}
	}
	// Empty support.
	if got := NewSupport(4, nil).Degeneracy(); got != 0 {
		t.Errorf("empty degeneracy = %d", got)
	}
	// Dense row ∪ dense column from 6.1: degeneracy 1.
	n := 6
	var cross [][2]int
	for i := 0; i < n; i++ {
		cross = append(cross, [2]int{0, i}, [2]int{i, 0})
	}
	if got := NewSupport(n, cross).Degeneracy(); got != 1 {
		t.Errorf("cross degeneracy = %d, want 1", got)
	}
}

// TestEliminationOrderWitness checks that the elimination order really
// deletes everything and never exceeds the reported degeneracy.
func TestEliminationOrderWitness(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	prop := func(seed int64) bool {
		n := 4 + rng.Intn(24)
		s := randomSupport(rng, n, rng.Intn(4*n))
		deg, order := s.EliminationOrder()

		rowAlive := make([]bool, n)
		colAlive := make([]bool, n)
		for i := range rowAlive {
			rowAlive[i] = true
			colAlive[i] = true
		}
		remaining := s.NNZ
		for _, st := range order {
			cnt := 0
			if st.IsRow {
				if !rowAlive[st.Index] {
					return false
				}
				rowAlive[st.Index] = false
				for _, j := range s.Rows[st.Index] {
					if colAlive[j] {
						cnt++
					}
				}
			} else {
				if !colAlive[st.Index] {
					return false
				}
				colAlive[st.Index] = false
				for _, i := range s.Cols[st.Index] {
					if rowAlive[i] {
						cnt++
					}
				}
			}
			if cnt != st.Degree || cnt > deg {
				return false
			}
			remaining -= cnt
		}
		return remaining == 0 && len(order) == 2*n
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// TestDegeneracyBounds checks degeneracy ≤ min(maxRow, maxCol) — peeling the
// denser side last can always fall back to row-by-row deletion — and that
// degeneracy is monotone under entry removal (on samples).
func TestDegeneracyBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 40; trial++ {
		n := 4 + rng.Intn(20)
		s := randomSupport(rng, n, rng.Intn(5*n))
		d := s.Degeneracy()
		if mr := s.MaxRowNNZ(); d > mr {
			t.Fatalf("degeneracy %d > max row nnz %d", d, mr)
		}
		if mc := s.MaxColNNZ(); d > mc {
			t.Fatalf("degeneracy %d > max col nnz %d", d, mc)
		}
		if s.NNZ > 0 && d == 0 {
			t.Fatal("nonempty support cannot have degeneracy 0")
		}
	}
}

func TestSplitRSCS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		n := 4 + rng.Intn(24)
		s := randomSupport(rng, n, rng.Intn(4*n))
		d := s.Degeneracy()
		rs, cs, ok := s.SplitRSCS(d)
		if !ok {
			t.Fatalf("SplitRSCS at exact degeneracy %d failed", d)
		}
		if !rs.IsRS(d) {
			t.Fatalf("RS part has max row %d > d=%d", rs.MaxRowNNZ(), d)
		}
		if !cs.IsCS(d) {
			t.Fatalf("CS part has max col %d > d=%d", cs.MaxColNNZ(), d)
		}
		if rs.NNZ+cs.NNZ != s.NNZ {
			t.Fatalf("split loses entries: %d + %d != %d", rs.NNZ, cs.NNZ, s.NNZ)
		}
		for _, e := range rs.Entries() {
			if !s.Has(e[0], e[1]) || cs.Has(e[0], e[1]) {
				t.Fatal("RS part not a sub-support or overlaps CS part")
			}
		}
		for _, e := range cs.Entries() {
			if !s.Has(e[0], e[1]) {
				t.Fatal("CS part not a sub-support")
			}
		}
		// Below the degeneracy the split must refuse.
		if d > 0 {
			if _, _, ok := s.SplitRSCS(d - 1); ok {
				t.Fatal("SplitRSCS below degeneracy must fail")
			}
		}
	}
}

func TestSparseSetGet(t *testing.T) {
	m := NewSparse(4, ring.Counting{})
	m.Set(1, 2, 5)
	m.Set(1, 0, 3)
	m.Set(1, 2, 7) // overwrite
	if got := m.Get(1, 2); got != 7 {
		t.Errorf("Get = %v", got)
	}
	if got := m.Get(0, 0); got != 0 {
		t.Errorf("absent Get = %v", got)
	}
	if m.NNZ() != 2 {
		t.Errorf("NNZ = %d", m.NNZ())
	}
	m.Set(1, 2, 0) // setting zero removes
	if m.NNZ() != 1 || m.Get(1, 2) != 0 {
		t.Error("Set(zero) should remove entry")
	}
	m.Add(1, 0, 4)
	if got := m.Get(1, 0); got != 7 {
		t.Errorf("Add = %v", got)
	}
	sup := m.Support()
	if sup.NNZ != 1 || !sup.Has(1, 0) {
		t.Error("Support wrong")
	}
}

func TestSparseMinPlusZeroHandling(t *testing.T) {
	// For MinPlus the ring zero is +Inf; storing it must not create entries.
	m := NewSparse(2, ring.MinPlus{})
	m.Add(0, 0, 5)
	m.Add(0, 0, 3)
	if got := m.Get(0, 0); got != 3 {
		t.Errorf("tropical Add = %v", got)
	}
}

func TestRandomRealizesSupport(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range ring.All() {
		s := randomSupport(rng, 12, 30)
		m := Random(s, r, 99)
		got := m.Support()
		if got.NNZ != s.NNZ {
			t.Fatalf("%s: support nnz %d != %d", r.Name(), got.NNZ, s.NNZ)
		}
		for _, e := range s.Entries() {
			if !got.Has(e[0], e[1]) {
				t.Fatalf("%s: missing entry %v", r.Name(), e)
			}
		}
	}
	// Determinism.
	s := randomSupport(rng, 10, 20)
	a := Random(s, ring.Counting{}, 7)
	b := Random(s, ring.Counting{}, 7)
	if !Equal(a, b) {
		t.Error("Random is not deterministic for a fixed seed")
	}
}

// denseMul is an independent O(n^3) oracle for MulReference.
func denseMul(a, b *Sparse, xhat *Support) *Sparse {
	r := a.R
	x := NewSparse(a.N, r)
	for i := 0; i < a.N; i++ {
		for k := 0; k < a.N; k++ {
			if !xhat.Has(i, k) {
				continue
			}
			acc := r.Zero()
			for j := 0; j < a.N; j++ {
				acc = r.Add(acc, r.Mul(a.Get(i, j), b.Get(j, k)))
			}
			x.Set(i, k, acc)
		}
	}
	return x
}

func TestMulReferenceAgainstDense(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, r := range ring.All() {
		for trial := 0; trial < 10; trial++ {
			n := 3 + rng.Intn(10)
			ahat := randomSupport(rng, n, rng.Intn(3*n))
			bhat := randomSupport(rng, n, rng.Intn(3*n))
			xhat := randomSupport(rng, n, rng.Intn(3*n))
			a := Random(ahat, r, int64(trial))
			b := Random(bhat, r, int64(trial+100))
			got := MulReference(a, b, xhat)
			want := denseMul(a, b, xhat)
			if !Equal(got, want) {
				t.Fatalf("%s n=%d: MulReference mismatch\ngot:\n%v\nwant:\n%v", r.Name(), n, got, want)
			}
		}
	}
}

func TestMaskedAndClone(t *testing.T) {
	s := NewSupport(4, [][2]int{{0, 0}, {1, 1}, {2, 2}})
	m := Random(s, ring.Counting{}, 3)
	mask := NewSupport(4, [][2]int{{0, 0}, {3, 3}})
	got := m.Masked(mask)
	if got.NNZ() != 1 || got.Get(0, 0) != m.Get(0, 0) {
		t.Error("Masked wrong")
	}
	c := m.Clone()
	c.Set(1, 1, 99)
	if m.Get(1, 1) == 99 {
		t.Error("Clone aliases original")
	}
}

func TestEqualDifferentShapes(t *testing.T) {
	a := NewSparse(2, ring.Counting{})
	b := NewSparse(3, ring.Counting{})
	if Equal(a, b) {
		t.Error("different n must not be equal")
	}
	c := NewSparse(2, ring.Counting{})
	c.Set(0, 1, 1)
	d := NewSparse(2, ring.Counting{})
	if Equal(c, d) {
		t.Error("different entries must not be equal")
	}
	d.Set(0, 1, 1)
	if !Equal(c, d) {
		t.Error("identical matrices must be equal")
	}
}
