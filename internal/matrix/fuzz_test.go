package matrix

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadSupport checks the parser never panics and that everything it
// accepts round-trips.
func FuzzReadSupport(f *testing.F) {
	f.Add("%%lbmm support\n3 2\n0 1\n2 2\n")
	f.Add("%%lbmm support\n0 0\n")
	f.Add("junk")
	f.Add("%%lbmm support\n4 1\n-1 0\n")
	f.Add("%%lbmm support\n99999999 1\n0 0\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		s, err := ReadSupport(strings.NewReader(in))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteSupport(&buf, s); err != nil {
			t.Fatal(err)
		}
		back, err := ReadSupport(&buf)
		if err != nil {
			t.Fatalf("accepted input fails roundtrip: %v", err)
		}
		if back.N != s.N || back.NNZ != s.NNZ {
			t.Fatalf("roundtrip changed shape")
		}
	})
}

// FuzzReadSparse checks the matrix parser never panics.
func FuzzReadSparse(f *testing.F) {
	f.Add("%%lbmm matrix counting\n3 1\n0 1 5\n")
	f.Add("%%lbmm matrix real\n2 1\n0 0 -1.5\n")
	f.Add("%%lbmm matrix minplus\n2 0\n")
	f.Add("%%lbmm matrix bogus\n2 0\n")
	f.Add("%%lbmm matrix counting\n2 1\n0 0 NaN\n")
	f.Fuzz(func(t *testing.T, in string) {
		if len(in) > 1<<16 {
			return
		}
		m, err := ReadSparse(strings.NewReader(in), nil)
		if err != nil {
			return
		}
		_ = m.NNZ()
	})
}
