package matrix

// This file implements the bounded-degeneracy machinery of the paper's §1.3:
// a matrix A is in BD(d) if we can recursively delete a row or column with
// at most d remaining entries. Interpreting A as a bipartite graph (rows on
// one side, columns on the other, an edge per entry), this is exactly graph
// d-degeneracy, computed by the classic min-degree peeling with a bucket
// queue in O(nnz + n) time.

// ElimStep records one step of a degeneracy elimination order.
type ElimStep struct {
	// IsRow reports whether a row (true) or a column (false) was deleted.
	IsRow bool
	// Index is the row or column index deleted.
	Index int
	// Degree is the number of entries still present when it was deleted.
	Degree int
}

// Degeneracy returns the degeneracy of the support: the smallest d such that
// s ∈ BD(d). An empty support has degeneracy 0.
func (s *Support) Degeneracy() int {
	d, _ := s.EliminationOrder()
	return d
}

// EliminationOrder runs min-degree peeling over the bipartite row/column
// graph and returns the degeneracy together with the full elimination order.
// The order is a witness: replaying it deletes every entry, and every step's
// Degree is at most the returned degeneracy.
func (s *Support) EliminationOrder() (int, []ElimStep) {
	n := s.N
	// Node ids: rows are 0..n-1, columns are n..2n-1.
	deg := make([]int, 2*n)
	for i, row := range s.Rows {
		deg[i] = len(row)
	}
	for j, col := range s.Cols {
		deg[n+j] = len(col)
	}

	// Bucket queue over degrees. Degrees only decrease between removals, so
	// scanning upward from a cursor that only moves down on decrease keeps
	// the total work linear.
	maxDeg := 0
	for _, d := range deg {
		if d > maxDeg {
			maxDeg = d
		}
	}
	buckets := make([][]int32, maxDeg+1)
	where := make([]int32, 2*n) // position of node within its bucket
	for v := 0; v < 2*n; v++ {
		b := deg[v]
		where[v] = int32(len(buckets[b]))
		buckets[b] = append(buckets[b], int32(v))
	}
	removed := make([]bool, 2*n)

	moveBucket := func(v int, from, to int) {
		bucket := buckets[from]
		pos := where[v]
		last := bucket[len(bucket)-1]
		bucket[pos] = last
		where[last] = pos
		buckets[from] = bucket[:len(bucket)-1]
		where[v] = int32(len(buckets[to]))
		buckets[to] = append(buckets[to], int32(v))
	}

	degeneracy := 0
	order := make([]ElimStep, 0, 2*n)
	cursor := 0
	for step := 0; step < 2*n; step++ {
		// Find the minimum non-empty bucket.
		for cursor <= maxDeg && len(buckets[cursor]) == 0 {
			cursor++
		}
		if cursor > maxDeg {
			break
		}
		bucket := buckets[cursor]
		v := int(bucket[len(bucket)-1])
		buckets[cursor] = bucket[:len(bucket)-1]
		removed[v] = true
		if cursor > degeneracy {
			degeneracy = cursor
		}
		st := ElimStep{IsRow: v < n, Index: v, Degree: deg[v]}
		if !st.IsRow {
			st.Index = v - n
		}
		order = append(order, st)

		// Decrement neighbours that are still present.
		var neigh []int32
		var offset int
		if v < n {
			neigh = s.Rows[v]
			offset = n
		} else {
			neigh = s.Cols[v-n]
			offset = 0
		}
		for _, w := range neigh {
			u := int(w) + offset
			if removed[u] {
				continue
			}
			moveBucket(u, deg[u], deg[u]-1)
			deg[u]--
			if deg[u] < cursor {
				cursor = deg[u]
			}
		}
	}
	return degeneracy, order
}

// SplitRSCS decomposes s ∈ BD(d) as the disjoint union of a row-sparse part
// (≤ d entries per row) and a column-sparse part (≤ d entries per column),
// following the paper's §1.3: replay a degeneracy-d elimination; entries
// deleted with a row go to the RS part, entries deleted with a column go to
// the CS part. ok is false if the degeneracy of s exceeds d, in which case
// both parts are nil.
func (s *Support) SplitRSCS(d int) (rs, cs *Support, ok bool) {
	degeneracy, order := s.EliminationOrder()
	if degeneracy > d {
		return nil, nil, false
	}
	n := s.N
	// Replay the order, tracking which counterpart nodes are still alive.
	rowAlive := make([]bool, n)
	colAlive := make([]bool, n)
	for i := range rowAlive {
		rowAlive[i] = true
		colAlive[i] = true
	}
	var rsEntries, csEntries [][2]int
	for _, st := range order {
		if st.IsRow {
			i := st.Index
			rowAlive[i] = false
			for _, j := range s.Rows[i] {
				if colAlive[j] {
					rsEntries = append(rsEntries, [2]int{i, int(j)})
				}
			}
		} else {
			j := st.Index
			colAlive[j] = false
			for _, i := range s.Cols[j] {
				if rowAlive[i] {
					csEntries = append(csEntries, [2]int{int(i), j})
				}
			}
		}
	}
	return NewSupport(n, rsEntries), NewSupport(n, csEntries), true
}
