// Package matrix provides sparse matrices over a semiring together with the
// machinery the paper's supported model needs: indicator ("support")
// matrices that are known in advance, the sparsity classes
// US ⊆ {RS,CS} ⊆ BD ⊆ AS ⊆ GM, degeneracy orders, and the BD = RS + CS
// decomposition used by Theorem 5.11.
package matrix

import (
	"fmt"
	"sort"
	"strings"
)

// Support is an n×n 0/1 indicator matrix à la the paper's Â, B̂, X̂: it
// records which positions are potentially nonzero (for inputs) or of
// interest (for the output). The support is what the supported model reveals
// in advance; all communication plans are functions of supports only.
type Support struct {
	N int
	// Rows[i] lists the column indices of row i's entries, sorted ascending.
	Rows [][]int32
	// Cols[j] lists the row indices of column j's entries, sorted ascending.
	Cols [][]int32
	// NNZ is the total number of entries.
	NNZ int
}

// NewSupport builds a support from a list of (row, col) entries. Duplicate
// entries collapse; out-of-range entries panic.
func NewSupport(n int, entries [][2]int) *Support {
	s := &Support{
		N:    n,
		Rows: make([][]int32, n),
		Cols: make([][]int32, n),
	}
	seen := make(map[[2]int]struct{}, len(entries))
	for _, e := range entries {
		i, j := e[0], e[1]
		if i < 0 || i >= n || j < 0 || j >= n {
			panic(fmt.Sprintf("matrix: entry (%d,%d) out of range for n=%d", i, j, n))
		}
		if _, dup := seen[e]; dup {
			continue
		}
		seen[e] = struct{}{}
		s.Rows[i] = append(s.Rows[i], int32(j))
		s.Cols[j] = append(s.Cols[j], int32(i))
		s.NNZ++
	}
	for i := range s.Rows {
		sortInt32(s.Rows[i])
	}
	for j := range s.Cols {
		sortInt32(s.Cols[j])
	}
	return s
}

func sortInt32(xs []int32) {
	sort.Slice(xs, func(a, b int) bool { return xs[a] < xs[b] })
}

// SupportFromRows rebuilds a support from its row lists — the inverse of
// reading s.Rows, used when supports are decoded from serialized plans.
// Unlike NewSupport it validates instead of panicking, because decoded rows
// cross a trust boundary: every index must lie in [0, n) and every row must
// be strictly ascending (the sortedness invariant the rest of the package
// relies on).
func SupportFromRows(n int, rows [][]int32) (*Support, error) {
	if n < 1 {
		return nil, fmt.Errorf("matrix: support dimension %d", n)
	}
	if len(rows) != n {
		return nil, fmt.Errorf("matrix: %d row lists for dimension %d", len(rows), n)
	}
	s := &Support{N: n, Rows: make([][]int32, n), Cols: make([][]int32, n)}
	for i, row := range rows {
		prev := int32(-1)
		for _, j := range row {
			if j < 0 || int(j) >= n {
				return nil, fmt.Errorf("matrix: support entry (%d,%d) out of range for n=%d", i, j, n)
			}
			if j <= prev {
				return nil, fmt.Errorf("matrix: support row %d not strictly ascending at column %d", i, j)
			}
			prev = j
		}
		s.Rows[i] = append([]int32(nil), row...)
		s.NNZ += len(row)
		for _, j := range row {
			s.Cols[j] = append(s.Cols[j], int32(i))
		}
	}
	// Column lists inherit sortedness from the row-major fill (rows are
	// visited in ascending i), so no per-column sort is needed.
	return s, nil
}

// Has reports whether position (i, j) is in the support.
func (s *Support) Has(i, j int) bool {
	row := s.Rows[i]
	k := sort.Search(len(row), func(k int) bool { return row[k] >= int32(j) })
	return k < len(row) && row[k] == int32(j)
}

// Entries returns all (row, col) entries in row-major order.
func (s *Support) Entries() [][2]int {
	out := make([][2]int, 0, s.NNZ)
	for i, row := range s.Rows {
		for _, j := range row {
			out = append(out, [2]int{i, int(j)})
		}
	}
	return out
}

// Transpose returns the support of the transposed matrix.
func (s *Support) Transpose() *Support {
	t := &Support{N: s.N, NNZ: s.NNZ, Rows: make([][]int32, s.N), Cols: make([][]int32, s.N)}
	for i := range s.Rows {
		t.Cols[i] = append([]int32(nil), s.Rows[i]...)
	}
	for j := range s.Cols {
		t.Rows[j] = append([]int32(nil), s.Cols[j]...)
	}
	return t
}

// Union returns the support containing the entries of both arguments. The
// two supports must have equal N.
func Union(a, b *Support) *Support {
	if a.N != b.N {
		panic("matrix: Union dimension mismatch")
	}
	entries := a.Entries()
	entries = append(entries, b.Entries()...)
	return NewSupport(a.N, entries)
}

// MaxRowNNZ returns the maximum number of entries in any row.
func (s *Support) MaxRowNNZ() int {
	m := 0
	for _, row := range s.Rows {
		if len(row) > m {
			m = len(row)
		}
	}
	return m
}

// MaxColNNZ returns the maximum number of entries in any column.
func (s *Support) MaxColNNZ() int {
	m := 0
	for _, col := range s.Cols {
		if len(col) > m {
			m = len(col)
		}
	}
	return m
}

// ---------------------------------------------------------------------------
// Sparsity classes

// Class enumerates the paper's sparsity families, ordered by containment
// where comparable: US ⊆ {RS, CS} ⊆ BD ⊆ AS ⊆ GM.
type Class uint8

const (
	// US = uniformly sparse: at most d entries per row and per column.
	US Class = iota
	// RS = row-sparse: at most d entries per row.
	RS
	// CS = column-sparse: at most d entries per column.
	CS
	// BD = bounded degeneracy: the matrix can be eliminated by repeatedly
	// deleting a row or column with at most d remaining entries.
	BD
	// AS = average-sparse: at most d·n entries in total.
	AS
	// GM = general matrix: no sparsity constraint.
	GM
)

func (c Class) String() string {
	switch c {
	case US:
		return "US"
	case RS:
		return "RS"
	case CS:
		return "CS"
	case BD:
		return "BD"
	case AS:
		return "AS"
	case GM:
		return "GM"
	}
	return fmt.Sprintf("Class(%d)", uint8(c))
}

// ParseClass parses a class name as printed by Class.String.
func ParseClass(s string) (Class, error) {
	for _, c := range []Class{US, RS, CS, BD, AS, GM} {
		if c.String() == s {
			return c, nil
		}
	}
	return GM, fmt.Errorf("matrix: unknown sparsity class %q", s)
}

// Contains reports whether class c contains class o (every matrix of class o
// at parameter d is also in class c at parameter d). RS and CS are
// incomparable with each other.
func (c Class) Contains(o Class) bool {
	if c == o {
		return true
	}
	switch c {
	case GM:
		return true
	case AS:
		return o != GM
	case BD:
		return o == US || o == RS || o == CS
	case RS, CS:
		return o == US
	default: // US
		return false
	}
}

// IsUS reports whether s is uniformly sparse at parameter d.
func (s *Support) IsUS(d int) bool { return s.IsRS(d) && s.IsCS(d) }

// IsRS reports whether s is row-sparse at parameter d.
func (s *Support) IsRS(d int) bool { return s.MaxRowNNZ() <= d }

// IsCS reports whether s is column-sparse at parameter d.
func (s *Support) IsCS(d int) bool { return s.MaxColNNZ() <= d }

// IsBD reports whether s has degeneracy at most d.
func (s *Support) IsBD(d int) bool { return s.Degeneracy() <= d }

// IsAS reports whether s is average-sparse at parameter d (≤ d·n entries).
func (s *Support) IsAS(d int) bool { return s.NNZ <= d*s.N }

// InClass reports whether s belongs to class c at parameter d.
func (s *Support) InClass(c Class, d int) bool {
	switch c {
	case US:
		return s.IsUS(d)
	case RS:
		return s.IsRS(d)
	case CS:
		return s.IsCS(d)
	case BD:
		return s.IsBD(d)
	case AS:
		return s.IsAS(d)
	default:
		return true
	}
}

// Classify returns the smallest class containing s at parameter d, with US
// preferred, then RS, then CS, then BD, AS, GM.
func (s *Support) Classify(d int) Class {
	switch {
	case s.IsUS(d):
		return US
	case s.IsRS(d):
		return RS
	case s.IsCS(d):
		return CS
	case s.IsBD(d):
		return BD
	case s.IsAS(d):
		return AS
	default:
		return GM
	}
}

// MarshalJSON encodes the class by name.
func (c Class) MarshalJSON() ([]byte, error) {
	return []byte(`"` + c.String() + `"`), nil
}

// UnmarshalJSON decodes a class name.
func (c *Class) UnmarshalJSON(b []byte) error {
	s := strings.Trim(string(b), `"`)
	got, err := ParseClass(s)
	if err != nil {
		return err
	}
	*c = got
	return nil
}
