package dense

import "lbmm/internal/ring"

// localStrassenCutoff is the block size below which LocalMul falls back to
// the schoolbook product. Local computation is free in the model; Strassen
// here only speeds up the host simulation for larger leaves.
const localStrassenCutoff = 64

// LocalMul multiplies two size×size row-major matrices over a field,
// using local Strassen recursion above a cutoff. Inputs are read-only.
func LocalMul(f ring.Field, a, b []ring.Value, size int) []ring.Value {
	c := make([]ring.Value, size*size)
	if size == 0 {
		return c
	}
	zero := f.Zero()
	for i := range c {
		c[i] = zero
	}
	if size < localStrassenCutoff || size%2 != 0 {
		naiveMulInto(f, a, b, c, size)
		return c
	}
	strassenMulInto(f, a, b, c, size)
	return c
}

func naiveMulInto(f ring.Field, a, b, c []ring.Value, size int) {
	for i := 0; i < size; i++ {
		arow := a[i*size : (i+1)*size]
		crow := c[i*size : (i+1)*size]
		for l := 0; l < size; l++ {
			av := arow[l]
			if f.Eq(av, f.Zero()) {
				continue
			}
			brow := b[l*size : (l+1)*size]
			for j := 0; j < size; j++ {
				crow[j] = f.Add(crow[j], f.Mul(av, brow[j]))
			}
		}
	}
}

// quad extracts quadrant q (0=11,1=12,2=21,3=22) of an s×s matrix.
func quad(m []ring.Value, s, q int) []ring.Value {
	h := s / 2
	r0, c0 := (q/2)*h, (q%2)*h
	out := make([]ring.Value, h*h)
	for i := 0; i < h; i++ {
		copy(out[i*h:(i+1)*h], m[(r0+i)*s+c0:(r0+i)*s+c0+h])
	}
	return out
}

func addVec(f ring.Field, a, b []ring.Value) []ring.Value {
	out := make([]ring.Value, len(a))
	for i := range a {
		out[i] = f.Add(a[i], b[i])
	}
	return out
}

func subVec(f ring.Field, a, b []ring.Value) []ring.Value {
	out := make([]ring.Value, len(a))
	for i := range a {
		out[i] = f.Sub(a[i], b[i])
	}
	return out
}

func strassenMulInto(f ring.Field, a, b, c []ring.Value, s int) {
	h := s / 2
	a11, a12, a21, a22 := quad(a, s, 0), quad(a, s, 1), quad(a, s, 2), quad(a, s, 3)
	b11, b12, b21, b22 := quad(b, s, 0), quad(b, s, 1), quad(b, s, 2), quad(b, s, 3)

	m1 := LocalMul(f, addVec(f, a11, a22), addVec(f, b11, b22), h)
	m2 := LocalMul(f, addVec(f, a21, a22), b11, h)
	m3 := LocalMul(f, a11, subVec(f, b12, b22), h)
	m4 := LocalMul(f, a22, subVec(f, b21, b11), h)
	m5 := LocalMul(f, addVec(f, a11, a12), b22, h)
	m6 := LocalMul(f, subVec(f, a21, a11), addVec(f, b11, b12), h)
	m7 := LocalMul(f, subVec(f, a12, a22), addVec(f, b21, b22), h)

	c11 := addVec(f, subVec(f, addVec(f, m1, m4), m5), m7)
	c12 := addVec(f, m3, m5)
	c21 := addVec(f, m2, m4)
	c22 := addVec(f, addVec(f, subVec(f, m1, m2), m3), m6)

	for i := 0; i < h; i++ {
		copy(c[i*s:i*s+h], c11[i*h:(i+1)*h])
		copy(c[i*s+h:(i+1)*s], c12[i*h:(i+1)*h])
		copy(c[(h+i)*s:(h+i)*s+h], c21[i*h:(i+1)*h])
		copy(c[(h+i)*s+h:(h+i+1)*s], c22[i*h:(i+1)*h])
	}
}
