package dense

// This file implements a message-level recursive distributed Strassen
// multiplication for fields: the executable stand-in for the congested
// clique O(n^{1-2/ω}) field algorithm of Censor-Hillel et al. [3] that the
// paper invokes (via simulation, O(n^{2-2/ω}) low-bandwidth rounds) in
// Lemma 2.1 and Table 1. With Strassen's ω̃ = log₂ 7 the communication
// volume per computer — and hence the round count — scales as
// O(m^{2-2/ω̃}) = O(m^{1.2876}) for an m×m product on ~m computers.
//
// Scheme. Pad the problem to D = 2^⌈log₂ m⌉. At level ℓ there are 7^ℓ
// subproblems of size D/2^ℓ, each owned by a contiguous group of processors
// (elements round-robin within the group). A downward phase per level
// computes the 7 Strassen input combinations of every subproblem with
// signed accumulation messages (OpAcc/OpSub); at the leaf level each
// subproblem sits on a single processor and is multiplied locally (free
// local computation); an upward phase combines the children's products into
// the parent's C quadrants; the final phase accumulates the level-0 product
// into the X owners, restricted to the output mask.
//
// Sparsity of inputs is honoured at plan time: element presence is tracked
// per level (an absent element is an exact zero and sends no message), so
// the routine runs unchanged on the pair-masked sub-instances of the
// clustered phase of Theorem 4.2's field variant.

import (
	"fmt"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
	"lbmm/internal/vnet"
)

// Strassen coefficient tables. Quadrants: 0=(1,1), 1=(1,2), 2=(2,1), 3=(2,2).
type term struct {
	idx  int  // quadrant (down phase) or child (up phase)
	sign int8 // +1 or -1
}

// bilinear is a 2×2 block bilinear multiplication algorithm with 7
// products: quadrant combinations for the two inputs and the product
// recombination for the output quadrants.
type bilinear struct {
	name string
	a, b [7][]term
	c    [4][]term
}

var (
	// strassenA[c] lists the A-quadrant terms of child product M_{c+1}.
	strassenA = [7][]term{
		{{0, 1}, {3, 1}},  // M1 = (A11+A22)(B11+B22)
		{{2, 1}, {3, 1}},  // M2 = (A21+A22) B11
		{{0, 1}},          // M3 = A11 (B12-B22)
		{{3, 1}},          // M4 = A22 (B21-B11)
		{{0, 1}, {1, 1}},  // M5 = (A11+A12) B22
		{{2, 1}, {0, -1}}, // M6 = (A21-A11)(B11+B12)
		{{1, 1}, {3, -1}}, // M7 = (A12-A22)(B21+B22)
	}
	strassenB = [7][]term{
		{{0, 1}, {3, 1}},
		{{0, 1}},
		{{1, 1}, {3, -1}},
		{{2, 1}, {0, -1}},
		{{3, 1}},
		{{0, 1}, {1, 1}},
		{{2, 1}, {3, 1}},
	}
	// strassenC[q] lists the child terms of C quadrant q.
	strassenC = [4][]term{
		{{0, 1}, {3, 1}, {4, -1}, {6, 1}}, // C11 = M1+M4-M5+M7
		{{2, 1}, {4, 1}},                  // C12 = M3+M5
		{{1, 1}, {3, 1}},                  // C21 = M2+M4
		{{0, 1}, {1, -1}, {2, 1}, {5, 1}}, // C22 = M1-M2+M3+M6
	}

	// Classic is Strassen's original 1969 scheme.
	Classic = &bilinear{name: "strassen", a: strassenA, b: strassenB, c: strassenC}

	// Winograd is the Strassen–Winograd variant (flattened to bilinear
	// form): P1=A11·B11, P2=A12·B21, P3=(A11+A12−A21−A22)·B22,
	// P4=A22·(B11−B12−B21+B22), P5=(A21+A22)·(B12−B11),
	// P6=(A21+A22−A11)·(B11−B12+B22), P7=(A11−A21)·(B22−B12);
	// C11=P1+P2, C12=P1+P3+P5+P6, C21=P1−P4+P6+P7, C22=P1+P5+P6+P7.
	Winograd = &bilinear{
		name: "winograd",
		a: [7][]term{
			{{0, 1}},                           // P1: A11
			{{1, 1}},                           // P2: A12
			{{0, 1}, {1, 1}, {2, -1}, {3, -1}}, // P3
			{{3, 1}},                           // P4: A22
			{{2, 1}, {3, 1}},                   // P5
			{{2, 1}, {3, 1}, {0, -1}},          // P6
			{{0, 1}, {2, -1}},                  // P7
		},
		b: [7][]term{
			{{0, 1}},                           // P1: B11
			{{2, 1}},                           // P2: B21
			{{3, 1}},                           // P3: B22
			{{0, 1}, {1, -1}, {2, -1}, {3, 1}}, // P4
			{{1, 1}, {0, -1}},                  // P5
			{{0, 1}, {1, -1}, {3, 1}},          // P6
			{{3, 1}, {1, -1}},                  // P7
		},
		c: [4][]term{
			{{0, 1}, {1, 1}},                  // C11 = P1+P2
			{{0, 1}, {2, 1}, {4, 1}, {5, 1}},  // C12 = P1+P3+P5+P6
			{{0, 1}, {3, -1}, {5, 1}, {6, 1}}, // C21 = P1-P4+P6+P7
			{{0, 1}, {4, 1}, {5, 1}, {6, 1}},  // C22 = P1+P5+P6+P7
		},
	}
)

// StrassenSpec describes one distributed Strassen batch over a field.
type StrassenSpec struct {
	// N is the global matrix dimension (for role vnode addressing).
	N int
	// Procs are the virtual processors available to the batch.
	Procs []int32
	// I, J, K are the (equal-length) global index sets of the batch.
	I, J, K []int32
	// SA, SB restrict which input positions may be nonzero (global
	// indices); nil means all of I×J (resp. J×K) may be nonzero.
	SA, SB *matrix.Support
	// SX restricts which outputs are accumulated into X owners; nil means
	// all of I×K.
	SX *matrix.Support
	// Tag namespaces this batch's scratch keys so that concurrently-run
	// batches whose processors share hosts cannot collide. Must be unique
	// per concurrent batch and < 2^15.
	Tag int32
	// Layout locates the inputs and outputs, as in CubeSpec.
	Layout *lbm.Layout
	// Variant selects the bilinear scheme (nil = Classic Strassen;
	// Winograd is the alternative with fewer additions in sequential
	// implementations — here it validates the table-driven design).
	Variant *bilinear
}

// VariantWinograd returns the Strassen–Winograd coefficient tables.
func VariantWinograd() *bilinear { return Winograd }

// StrassenJob is a planned batch.
type StrassenJob struct {
	down  []*vnet.Plan // one per level transition, A and B combined
	up    []*vnet.Plan // one per level transition (reverse order: deepest first)
	final *vnet.Plan   // C(0) -> X owners
	init  *vnet.Plan   // A,B -> level-0 element owners
	leafs []leafTask
	// cleanup: every scratch element key created, to delete after the run.
	cleanup []hostKeyPair
}

type leafTask struct {
	host lbm.NodeID
	s    int32 // subproblem id at leaf level
	size int32
	lvl  int
	// presA/presB/presC are flattened size×size presence bitmaps.
	presA, presB, presC []bool
}

// Scratch key kinds: each level ℓ uses three kinds for its A, B, C
// elements. Key{kind, u, v, s} addresses element (u,v) of subproblem s.
func kindA(lvl int) lbm.Kind { return lbm.KindUser + lbm.Kind(3*lvl) }
func kindB(lvl int) lbm.Kind { return lbm.KindUser + lbm.Kind(3*lvl) + 1 }
func kindC(lvl int) lbm.Kind { return lbm.KindUser + lbm.Kind(3*lvl) + 2 }

func elemKey(kind lbm.Kind, u, v int32, s int32) lbm.Key {
	return lbm.Key{Kind: kind, I: u, J: v, Seq: s}
}

// seqOf packs (batch tag, subproblem id) into a key Seq so concurrent
// batches on shared hosts cannot collide.
func seqOf(tag int32, s int) int32 { return tag<<16 | int32(s) }

// pow7 returns 7^ℓ.
func pow7(l int) int {
	p := 1
	for i := 0; i < l; i++ {
		p *= 7
	}
	return p
}

// nextPow2 returns the smallest power of two ≥ x (and ≥ 1).
func nextPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// strassenDepth picks the recursion depth: limited by the processor count
// (need 7^k groups) and by the matrix size (blocks cannot shrink below 1).
func strassenDepth(p, D int) int {
	k := 0
	for pow7(k+1) <= p && (D>>(k+1)) >= 1 {
		k++
	}
	return k
}

// group returns the processor id range [lo, hi) of subproblem s at level l.
func group(procs []int32, l, s int) (lo, hi int) {
	g := pow7(l)
	lo = s * len(procs) / g
	hi = (s + 1) * len(procs) / g
	return lo, hi
}

// owner returns the virtual processor owning element (u,v) of subproblem s
// at level l. At the leaf level the whole subproblem is concentrated on the
// first group member so the leaf product is a purely local computation.
func owner(procs []int32, l, maxLvl, s int, u, v, size int32) int32 {
	lo, hi := group(procs, l, s)
	if l == maxLvl || hi-lo == 1 {
		return procs[lo]
	}
	return procs[lo+int(u*size+v)%(hi-lo)]
}

// PlanStrassen preprocesses one distributed Strassen batch. The machine's
// ring must be a field (checked at execution).
func PlanStrassen(net *vnet.Net, spec *StrassenSpec) (*StrassenJob, error) {
	m0 := len(spec.I)
	if len(spec.J) != m0 || len(spec.K) != m0 {
		return nil, fmt.Errorf("dense: strassen needs equal index set sizes, got %d/%d/%d", len(spec.I), len(spec.J), len(spec.K))
	}
	if len(spec.Procs) == 0 {
		return nil, fmt.Errorf("dense: strassen batch needs processors")
	}
	if m0 == 0 {
		return &StrassenJob{}, nil
	}
	D := nextPow2(m0)
	k := strassenDepth(len(spec.Procs), D)
	if pow7(k) >= 1<<16 || spec.Tag < 0 || spec.Tag >= 1<<15 {
		return nil, fmt.Errorf("dense: strassen batch too large or tag %d out of range", spec.Tag)
	}
	procs := spec.Procs
	n := int32(spec.N)
	bl := spec.Variant
	if bl == nil {
		bl = Classic
	}
	job := &StrassenJob{}

	// Presence bitmaps per level: pres[which][level][s][u*size+v].
	presA := make([][][]bool, k+1)
	presB := make([][][]bool, k+1)
	for l := 0; l <= k; l++ {
		cnt := pow7(l)
		presA[l] = make([][]bool, cnt)
		presB[l] = make([][]bool, cnt)
	}
	presA[0][0] = make([]bool, D*D)
	presB[0][0] = make([]bool, D*D)

	// Level 0 init: route A(i,j) and B(j,k) from their RowLayout owners to
	// the level-0 element owners.
	var initMsgs []vnet.Send
	addInit := func(pres []bool, sup *matrix.Support, rowSet, colSet []int32,
		srcOf func(g1, g2 int32) (int32, lbm.Key), kind lbm.Kind) {
		for up, g1 := range rowSet {
			for vp, g2 := range colSet {
				if sup != nil && !sup.Has(int(g1), int(g2)) {
					continue
				}
				u, v := int32(up), int32(vp)
				pres[u*int32(D)+v] = true
				from, src := srcOf(g1, g2)
				to := owner(procs, 0, k, 0, u, v, int32(D))
				dst := elemKey(kind, u, v, seqOf(spec.Tag, 0))
				initMsgs = append(initMsgs, vnet.Send{From: from, To: to, Src: src, Dst: dst, Op: lbm.OpSet})
				job.cleanup = append(job.cleanup, hostKeyPair{net.Host[to], dst})
			}
		}
	}
	addInit(presA[0][0], spec.SA, spec.I, spec.J, func(g1, g2 int32) (int32, lbm.Key) {
		return int32(spec.Layout.OwnerA(g1, g2)), lbm.AKey(g1, g2)
	}, kindA(0))
	addInit(presB[0][0], spec.SB, spec.J, spec.K, func(g1, g2 int32) (int32, lbm.Key) {
		return n + int32(spec.Layout.OwnerB(g1, g2)), lbm.BKey(g1, g2)
	}, kindB(0))
	sortSends(initMsgs)
	job.init = vnet.ScheduleVirtual(initMsgs, routing.Auto)

	// Downward phases.
	for l := 0; l < k; l++ {
		size := int32(D >> l)
		half := size / 2
		var msgs []vnet.Send
		for s := 0; s < pow7(l); s++ {
			pa := presA[l][s]
			pb := presB[l][s]
			if pa == nil && pb == nil {
				continue
			}
			for c := 0; c < 7; c++ {
				child := s*7 + c
				var cpa, cpb []bool
				for u := int32(0); u < half; u++ {
					for v := int32(0); v < half; v++ {
						// A side.
						for _, t := range bl.a[c] {
							qr, qc := int32(t.idx/2), int32(t.idx%2)
							pu, pv := u+qr*half, v+qc*half
							if pa == nil || !pa[pu*size+pv] {
								continue
							}
							if cpa == nil {
								cpa = make([]bool, half*half)
							}
							cpa[u*half+v] = true
							op := lbm.OpAcc
							if t.sign < 0 {
								op = lbm.OpSub
							}
							from := owner(procs, l, k, s, pu, pv, size)
							to := owner(procs, l+1, k, child, u, v, half)
							dst := elemKey(kindA(l+1), u, v, seqOf(spec.Tag, child))
							msgs = append(msgs, vnet.Send{
								From: from, To: to,
								Src: elemKey(kindA(l), pu, pv, seqOf(spec.Tag, s)), Dst: dst, Op: op,
							})
							job.cleanup = append(job.cleanup, hostKeyPair{net.Host[to], dst})
						}
						// B side.
						for _, t := range bl.b[c] {
							qr, qc := int32(t.idx/2), int32(t.idx%2)
							pu, pv := u+qr*half, v+qc*half
							if pb == nil || !pb[pu*size+pv] {
								continue
							}
							if cpb == nil {
								cpb = make([]bool, half*half)
							}
							cpb[u*half+v] = true
							op := lbm.OpAcc
							if t.sign < 0 {
								op = lbm.OpSub
							}
							from := owner(procs, l, k, s, pu, pv, size)
							to := owner(procs, l+1, k, child, u, v, half)
							dst := elemKey(kindB(l+1), u, v, seqOf(spec.Tag, child))
							msgs = append(msgs, vnet.Send{
								From: from, To: to,
								Src: elemKey(kindB(l), pu, pv, seqOf(spec.Tag, s)), Dst: dst, Op: op,
							})
							job.cleanup = append(job.cleanup, hostKeyPair{net.Host[to], dst})
						}
					}
				}
				presA[l+1][child] = cpa
				presB[l+1][child] = cpb
			}
		}
		sortSends(msgs)
		job.down = append(job.down, vnet.ScheduleVirtual(msgs, routing.Auto))
	}

	// Leaf products and their C presence (support product of presA, presB).
	presC := make([][][]bool, k+1)
	for l := 0; l <= k; l++ {
		presC[l] = make([][]bool, pow7(l))
	}
	leafSize := int32(D >> k)
	for s := 0; s < pow7(k); s++ {
		pa, pb := presA[k][s], presB[k][s]
		if pa == nil || pb == nil {
			continue
		}
		pc := make([]bool, leafSize*leafSize)
		any := false
		for u := int32(0); u < leafSize; u++ {
			for v := int32(0); v < leafSize; v++ {
				for w := int32(0); w < leafSize; w++ {
					if pa[u*leafSize+w] && pb[w*leafSize+v] {
						pc[u*leafSize+v] = true
						any = true
						break
					}
				}
			}
		}
		if !any {
			continue
		}
		presC[k][s] = pc
		lo, _ := group(procs, k, s)
		host := net.Host[procs[lo]]
		job.leafs = append(job.leafs, leafTask{
			host: host, s: seqOf(spec.Tag, s), size: leafSize, lvl: k,
			presA: pa, presB: pb, presC: pc,
		})
		for u := int32(0); u < leafSize; u++ {
			for v := int32(0); v < leafSize; v++ {
				if pc[u*leafSize+v] {
					job.cleanup = append(job.cleanup, hostKeyPair{host, elemKey(kindC(k), u, v, seqOf(spec.Tag, s))})
				}
			}
		}
	}

	// Upward phases: deepest transition first.
	for l := k - 1; l >= 0; l-- {
		size := int32(D >> l)
		half := size / 2
		var msgs []vnet.Send
		for s := 0; s < pow7(l); s++ {
			var pc []bool
			for q := 0; q < 4; q++ {
				qr, qc := int32(q/2), int32(q%2)
				for _, t := range bl.c[q] {
					child := s*7 + t.idx
					cpc := presC[l+1][child]
					if cpc == nil {
						continue
					}
					for u := int32(0); u < half; u++ {
						for v := int32(0); v < half; v++ {
							if !cpc[u*half+v] {
								continue
							}
							if pc == nil {
								pc = make([]bool, size*size)
							}
							pu, pv := u+qr*half, v+qc*half
							pc[pu*size+pv] = true
							op := lbm.OpAcc
							if t.sign < 0 {
								op = lbm.OpSub
							}
							from := owner(procs, l+1, k, child, u, v, half)
							to := owner(procs, l, k, s, pu, pv, size)
							dst := elemKey(kindC(l), pu, pv, seqOf(spec.Tag, s))
							msgs = append(msgs, vnet.Send{
								From: from, To: to,
								Src: elemKey(kindC(l+1), u, v, seqOf(spec.Tag, child)), Dst: dst, Op: op,
							})
							job.cleanup = append(job.cleanup, hostKeyPair{net.Host[to], dst})
						}
					}
				}
			}
			presC[l][s] = pc
		}
		sortSends(msgs)
		job.up = append(job.up, vnet.ScheduleVirtual(msgs, routing.Auto))
	}

	// Final phase: C(0) elements -> X owners, masked by SX.
	var finals []vnet.Send
	pc := presC[0][0]
	if pc != nil {
		for up, gi := range spec.I {
			for vp, gk := range spec.K {
				u, v := int32(up), int32(vp)
				if !pc[u*int32(D)+v] {
					continue
				}
				if spec.SX != nil && !spec.SX.Has(int(gi), int(gk)) {
					continue
				}
				from := owner(procs, 0, k, 0, u, v, int32(D))
				finals = append(finals, vnet.Send{
					From: from, To: int32(spec.Layout.OwnerX(gi, gk)),
					Src: elemKey(kindC(0), u, v, seqOf(spec.Tag, 0)), Dst: lbm.XKey(gi, gk), Op: lbm.OpAcc,
				})
			}
		}
	}
	sortSends(finals)
	job.final = vnet.ScheduleVirtual(finals, routing.Auto)
	return job, nil
}

// StrassenProgram is a batch of Strassen jobs with every per-level merged
// communication phase lowered to a real plan once, at plan time (the jobs'
// processor sets and index rows must be disjoint).
type StrassenProgram struct {
	Init, Final *lbm.Plan
	Down, Up    []*lbm.Plan
}

// PlanStrassenProgram merges each phase of the jobs' virtual plans and
// compiles them to real plans.
func PlanStrassenProgram(net *vnet.Net, jobs []*StrassenJob) (*StrassenProgram, error) {
	compilePhase := func(pick func(*StrassenJob) *vnet.Plan, what string) (*lbm.Plan, error) {
		var plans []*vnet.Plan
		for _, j := range jobs {
			if p := pick(j); p != nil {
				plans = append(plans, p)
			}
		}
		real, err := net.Compile(vnet.MergeParallel(plans...), routing.Auto)
		if err != nil {
			return nil, fmt.Errorf("dense: strassen %s: %w", what, err)
		}
		return real, nil
	}
	maxDown, maxUp := 0, 0
	for _, j := range jobs {
		if len(j.down) > maxDown {
			maxDown = len(j.down)
		}
		if len(j.up) > maxUp {
			maxUp = len(j.up)
		}
	}
	prog := &StrassenProgram{}
	var err error
	if prog.Init, err = compilePhase(func(j *StrassenJob) *vnet.Plan { return j.init }, "init"); err != nil {
		return nil, err
	}
	for l := 0; l < maxDown; l++ {
		l := l
		p, err := compilePhase(func(j *StrassenJob) *vnet.Plan {
			if l < len(j.down) {
				return j.down[l]
			}
			return nil
		}, fmt.Sprintf("down.L%d", l+1))
		if err != nil {
			return nil, err
		}
		prog.Down = append(prog.Down, p)
	}
	for l := 0; l < maxUp; l++ {
		l := l
		p, err := compilePhase(func(j *StrassenJob) *vnet.Plan {
			if l < len(j.up) {
				return j.up[l]
			}
			return nil
		}, fmt.Sprintf("up.L%d", maxUp-l))
		if err != nil {
			return nil, err
		}
		prog.Up = append(prog.Up, p)
	}
	if prog.Final, err = compilePhase(func(j *StrassenJob) *vnet.Plan { return j.final }, "final"); err != nil {
		return nil, err
	}
	return prog, nil
}

// RunStrassenJobs executes a batch of Strassen jobs concurrently (their
// processor sets and index rows must be disjoint). The machine's ring must
// be a field.
func RunStrassenJobs(m *lbm.Machine, net *vnet.Net, jobs []*StrassenJob) error {
	if _, ok := ring.AsField(m.R); !ok {
		return fmt.Errorf("dense: strassen requires a field, ring %s is not one", m.R.Name())
	}
	prog, err := PlanStrassenProgram(net, jobs)
	if err != nil {
		return err
	}
	return RunStrassenJobsWith(m, jobs, prog)
}

// RunStrassenJobsWith executes a batch of Strassen jobs against the
// preplanned program of their merged communication phases.
func RunStrassenJobsWith(m *lbm.Machine, jobs []*StrassenJob, prog *StrassenProgram) error {
	if _, ok := ring.AsField(m.R); !ok {
		return fmt.Errorf("dense: strassen requires a field, ring %s is not one", m.R.Name())
	}
	runPhase := func(p *lbm.Plan, what string) error {
		m.BeginPhase(what)
		err := m.Run(p)
		m.EndPhase()
		if err != nil {
			return fmt.Errorf("dense: strassen %s: %w", what, err)
		}
		return nil
	}

	m.BeginPhase("dense/strassen")
	defer m.EndPhase()
	m.Counter("jobs", float64(len(jobs)))
	// len(prog.Down) is the recursion depth k: each level transition is one
	// down (and later one up) phase, labelled with its level.
	m.Counter("levels", float64(len(prog.Down)))
	if err := runPhase(prog.Init, "init"); err != nil {
		return err
	}
	for l, p := range prog.Down {
		if err := runPhase(p, fmt.Sprintf("down.L%d", l+1)); err != nil {
			return err
		}
	}
	// Leaf products (free local computation).
	m.BeginPhase("leaf")
	f, _ := ring.AsField(m.R)
	for _, j := range jobs {
		m.Counter("leaf_products", float64(len(j.leafs)))
		for _, lt := range j.leafs {
			if !m.Owns(lt.host) {
				continue
			}
			runLeaf(m, f, lt)
		}
	}
	m.EndPhase()
	maxUp := len(prog.Up)
	for l, p := range prog.Up {
		if err := runPhase(p, fmt.Sprintf("up.L%d", maxUp-l)); err != nil {
			return err
		}
	}
	if err := runPhase(prog.Final, "final"); err != nil {
		return err
	}
	for _, j := range jobs {
		for _, ck := range j.cleanup {
			m.Del(ck.host, ck.key)
		}
	}
	return nil
}

// compiledLeaf is a leaf product task lowered to arena addressing: per
// flattened element a slot index at the host, or -1 for a structurally
// absent element.
type compiledLeaf struct {
	host    lbm.NodeID
	size    int32
	a, b, c []int32
}

// CompiledStrassenProgram is a Strassen program lowered to the
// slot-addressed executable form.
type CompiledStrassenProgram struct {
	njobs       int
	init, final *lbm.CompiledPlan
	down, up    []*lbm.CompiledPlan
	// leafJobs keeps the per-job grouping so counter replay matches the map
	// engine's one Counter("leaf_products") per job.
	leafJobs [][]compiledLeaf
	cleanup  []lbm.SlotRef
}

// CompileStrassenProgram lowers a Strassen program and its jobs' local work
// into the shared slot space.
func CompileStrassenProgram(sp *lbm.SlotSpace, jobs []*StrassenJob, prog *StrassenProgram) (*CompiledStrassenProgram, error) {
	csp := &CompiledStrassenProgram{njobs: len(jobs)}
	var err error
	if csp.init, err = lbm.CompileInto(sp, prog.Init); err != nil {
		return nil, fmt.Errorf("dense: compile strassen init: %w", err)
	}
	for l, p := range prog.Down {
		cp, err := lbm.CompileInto(sp, p)
		if err != nil {
			return nil, fmt.Errorf("dense: compile strassen down.L%d: %w", l+1, err)
		}
		csp.down = append(csp.down, cp)
	}
	for _, j := range jobs {
		leafs := make([]compiledLeaf, 0, len(j.leafs))
		for _, lt := range j.leafs {
			cl := compiledLeaf{host: lt.host, size: lt.size}
			cl.a = make([]int32, lt.size*lt.size)
			cl.b = make([]int32, lt.size*lt.size)
			cl.c = make([]int32, lt.size*lt.size)
			for u := int32(0); u < lt.size; u++ {
				for v := int32(0); v < lt.size; v++ {
					i := u*lt.size + v
					cl.a[i], cl.b[i], cl.c[i] = -1, -1, -1
					if lt.presA[i] {
						cl.a[i] = sp.Slot(lt.host, elemKey(kindA(lt.lvl), u, v, lt.s))
					}
					if lt.presB[i] {
						cl.b[i] = sp.Slot(lt.host, elemKey(kindB(lt.lvl), u, v, lt.s))
					}
					if lt.presC[i] {
						cl.c[i] = sp.Slot(lt.host, elemKey(kindC(lt.lvl), u, v, lt.s))
					}
				}
			}
			leafs = append(leafs, cl)
		}
		csp.leafJobs = append(csp.leafJobs, leafs)
	}
	for l, p := range prog.Up {
		cp, err := lbm.CompileInto(sp, p)
		if err != nil {
			return nil, fmt.Errorf("dense: compile strassen up.L%d: %w", len(prog.Up)-l, err)
		}
		csp.up = append(csp.up, cp)
	}
	if csp.final, err = lbm.CompileInto(sp, prog.Final); err != nil {
		return nil, fmt.Errorf("dense: compile strassen final: %w", err)
	}
	for _, j := range jobs {
		for _, ck := range j.cleanup {
			csp.cleanup = append(csp.cleanup, sp.Ref(ck.host, ck.key))
		}
	}
	return csp, nil
}

// MemoryBytes estimates the resident size of the compiled program.
func (csp *CompiledStrassenProgram) MemoryBytes() int64 {
	if csp == nil {
		return 0
	}
	n := csp.init.MemoryBytes() + csp.final.MemoryBytes()
	for _, cp := range csp.down {
		n += cp.MemoryBytes()
	}
	for _, cp := range csp.up {
		n += cp.MemoryBytes()
	}
	for _, leafs := range csp.leafJobs {
		for _, cl := range leafs {
			n += int64(len(cl.a)+len(cl.b)+len(cl.c)) * 4
		}
	}
	return n + int64(len(csp.cleanup))*8
}

// AddNodeLoads accumulates the program's per-node real-message loads over
// every communication phase (init, down sweeps, up sweeps, final); leaf
// products are local work and move no messages.
func (csp *CompiledStrassenProgram) AddNodeLoads(send, recv []int64) {
	if csp == nil {
		return
	}
	csp.init.AddNodeLoads(send, recv)
	for _, cp := range csp.down {
		cp.AddNodeLoads(send, recv)
	}
	for _, cp := range csp.up {
		cp.AddNodeLoads(send, recv)
	}
	csp.final.AddNodeLoads(send, recv)
}

// Run executes the compiled Strassen program, mirroring RunStrassenJobsWith
// phase for phase.
func (csp *CompiledStrassenProgram) Run(x *lbm.Exec) error {
	f, ok := ring.AsField(x.R)
	if !ok {
		return fmt.Errorf("dense: strassen requires a field, ring %s is not one", x.R.Name())
	}
	runPhase := func(cp *lbm.CompiledPlan, what string) error {
		x.BeginPhase(what)
		err := x.Run(cp)
		x.EndPhase()
		if err != nil {
			return fmt.Errorf("dense: strassen %s: %w", what, err)
		}
		return nil
	}

	x.BeginPhase("dense/strassen")
	defer x.EndPhase()
	x.Counter("jobs", float64(csp.njobs))
	x.Counter("levels", float64(len(csp.down)))
	if err := runPhase(csp.init, "init"); err != nil {
		return err
	}
	for l, cp := range csp.down {
		if err := runPhase(cp, fmt.Sprintf("down.L%d", l+1)); err != nil {
			return err
		}
	}
	x.BeginPhase("leaf")
	for _, leafs := range csp.leafJobs {
		x.Counter("leaf_products", float64(len(leafs)))
		for _, cl := range leafs {
			if !x.Owns(cl.host) {
				continue
			}
			runCompiledLeaf(x, f, cl)
		}
	}
	x.EndPhase()
	maxUp := len(csp.up)
	for l, cp := range csp.up {
		if err := runPhase(cp, fmt.Sprintf("up.L%d", maxUp-l)); err != nil {
			return err
		}
	}
	if err := runPhase(csp.final, "final"); err != nil {
		return err
	}
	for _, ref := range csp.cleanup {
		x.ClearSlot(ref)
	}
	return nil
}

// runCompiledLeaf multiplies one leaf subproblem locally at its host,
// reading and writing arena slots instead of map keys. On a lane-strided
// executor the local product runs once per lane (local math is free in the
// model either way); every lane of each output slot is written, as PutLane
// requires.
func runCompiledLeaf(x *lbm.Exec, f ring.Field, cl compiledLeaf) {
	size := cl.size
	a := make([]ring.Value, size*size)
	b := make([]ring.Value, size*size)
	for lane := 0; lane < x.Lanes(); lane++ {
		for i := range a {
			a[i], b[i] = 0, 0
			if cl.a[i] >= 0 {
				if v, ok := x.GetLane(lbm.SlotRef{Node: cl.host, Slot: cl.a[i]}, lane); ok {
					a[i] = v
				}
			}
			if cl.b[i] >= 0 {
				if v, ok := x.GetLane(lbm.SlotRef{Node: cl.host, Slot: cl.b[i]}, lane); ok {
					b[i] = v
				}
			}
		}
		c := LocalMul(f, a, b, int(size))
		for i := range c {
			if cl.c[i] >= 0 {
				x.PutLane(lbm.SlotRef{Node: cl.host, Slot: cl.c[i]}, lane, c[i])
			}
		}
	}
}

// runLeaf multiplies one leaf subproblem locally at its host. Local
// computation is free in the model; we use local Strassen above a small
// cutoff purely for host wall-clock speed.
func runLeaf(m *lbm.Machine, f ring.Field, lt leafTask) {
	size := lt.size
	a := make([]ring.Value, size*size)
	b := make([]ring.Value, size*size)
	for u := int32(0); u < size; u++ {
		for v := int32(0); v < size; v++ {
			if lt.presA[u*size+v] {
				if val, ok := m.Get(lt.host, elemKey(kindA(lt.lvl), u, v, lt.s)); ok {
					a[u*size+v] = val
				}
			}
			if lt.presB[u*size+v] {
				if val, ok := m.Get(lt.host, elemKey(kindB(lt.lvl), u, v, lt.s)); ok {
					b[u*size+v] = val
				}
			}
		}
	}
	c := LocalMul(f, a, b, int(size))
	for u := int32(0); u < size; u++ {
		for v := int32(0); v < size; v++ {
			if lt.presC[u*size+v] {
				m.Put(lt.host, elemKey(kindC(lt.lvl), u, v, lt.s), c[u*size+v])
			}
		}
	}
}
