package dense

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lbmm/internal/lbm"
)

// This file makes the compiled dense programs serializable. The compiled
// forms are pure data — slot-addressed instruction streams plus slot-ref
// tables — so a program computed once can be written into the persistent
// plan store (internal/planstore) and reloaded by a later process without
// redoing the Lemma 2.1 / Strassen planning.
//
// The wire structs exist because the runtime structs keep their fields
// unexported (nothing outside this package should poke at a lowered
// program). GobEncode/GobDecode convert through them, and decoding
// re-validates every embedded lbm.CompiledPlan: serialized programs cross
// the same trust boundary as serialized Plans, so a decoded program is
// never handed to an executor unchecked.

// wireSlotProd is the exported form of slotProd.
type wireSlotProd struct {
	A, B, Dst lbm.SlotRef
}

// wireCubeProgram is the exported gob form of CompiledCubeProgram.
type wireCubeProgram struct {
	NJobs     int
	Dist, Agg *lbm.CompiledPlan
	Prods     []wireSlotProd
	Cleanup   []lbm.SlotRef
}

// GobEncode implements gob.GobEncoder.
func (ccp *CompiledCubeProgram) GobEncode() ([]byte, error) {
	w := wireCubeProgram{
		NJobs:   ccp.njobs,
		Dist:    ccp.dist,
		Agg:     ccp.agg,
		Prods:   make([]wireSlotProd, len(ccp.prods)),
		Cleanup: ccp.cleanup,
	}
	for i, p := range ccp.prods {
		w.Prods[i] = wireSlotProd{A: p.a, B: p.b, Dst: p.dst}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, re-validating the embedded compiled
// plans.
func (ccp *CompiledCubeProgram) GobDecode(data []byte) error {
	var w wireCubeProgram
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	for _, cp := range []*lbm.CompiledPlan{w.Dist, w.Agg} {
		if cp == nil {
			return fmt.Errorf("dense: decode cube program: missing communication phase")
		}
		if err := cp.Validate(); err != nil {
			return fmt.Errorf("dense: decode cube program: %w", err)
		}
	}
	ccp.njobs = w.NJobs
	ccp.dist, ccp.agg = w.Dist, w.Agg
	ccp.prods = make([]slotProd, len(w.Prods))
	for i, p := range w.Prods {
		ccp.prods[i] = slotProd{a: p.A, b: p.B, dst: p.Dst}
	}
	ccp.cleanup = w.Cleanup
	return nil
}

// ValidateRefs checks every slot reference the cube program's local work
// touches against the per-node arena sizes it will execute in. The embedded
// plans validate their own instructions; the products and cleanup refs are
// only checked here, where the full arena geometry is known.
func (ccp *CompiledCubeProgram) ValidateRefs(sizes []int32) error {
	if ccp == nil {
		return nil
	}
	for _, cp := range []*lbm.CompiledPlan{ccp.dist, ccp.agg} {
		if err := checkPlanFits(cp, sizes); err != nil {
			return fmt.Errorf("dense: cube program: %w", err)
		}
	}
	for _, p := range ccp.prods {
		if err := checkRefs(sizes, p.a, p.b, p.dst); err != nil {
			return fmt.Errorf("dense: cube program product: %w", err)
		}
	}
	if err := checkRefs(sizes, ccp.cleanup...); err != nil {
		return fmt.Errorf("dense: cube program cleanup: %w", err)
	}
	return nil
}

// wireLeaf is the exported form of compiledLeaf.
type wireLeaf struct {
	Host    lbm.NodeID
	Size    int32
	A, B, C []int32
}

// wireStrassenProgram is the exported gob form of CompiledStrassenProgram.
type wireStrassenProgram struct {
	NJobs       int
	Init, Final *lbm.CompiledPlan
	Down, Up    []*lbm.CompiledPlan
	LeafJobs    [][]wireLeaf
	Cleanup     []lbm.SlotRef
}

// GobEncode implements gob.GobEncoder.
func (csp *CompiledStrassenProgram) GobEncode() ([]byte, error) {
	w := wireStrassenProgram{
		NJobs:    csp.njobs,
		Init:     csp.init,
		Final:    csp.final,
		Down:     csp.down,
		Up:       csp.up,
		LeafJobs: make([][]wireLeaf, len(csp.leafJobs)),
		Cleanup:  csp.cleanup,
	}
	for j, leafs := range csp.leafJobs {
		w.LeafJobs[j] = make([]wireLeaf, len(leafs))
		for i, l := range leafs {
			w.LeafJobs[j][i] = wireLeaf{Host: l.host, Size: l.size, A: l.a, B: l.b, C: l.c}
		}
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&w); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder, re-validating the embedded compiled
// plans and the leaf tables' internal consistency.
func (csp *CompiledStrassenProgram) GobDecode(data []byte) error {
	var w wireStrassenProgram
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	plans := []*lbm.CompiledPlan{w.Init, w.Final}
	plans = append(plans, w.Down...)
	plans = append(plans, w.Up...)
	for _, cp := range plans {
		if cp == nil {
			return fmt.Errorf("dense: decode strassen program: missing communication phase")
		}
		if err := cp.Validate(); err != nil {
			return fmt.Errorf("dense: decode strassen program: %w", err)
		}
	}
	csp.njobs = w.NJobs
	csp.init, csp.final = w.Init, w.Final
	csp.down, csp.up = w.Down, w.Up
	csp.leafJobs = make([][]compiledLeaf, len(w.LeafJobs))
	for j, leafs := range w.LeafJobs {
		csp.leafJobs[j] = make([]compiledLeaf, len(leafs))
		for i, l := range leafs {
			want := int(l.Size) * int(l.Size)
			if l.Size < 0 || len(l.A) != want || len(l.B) != want || len(l.C) != want {
				return fmt.Errorf("dense: decode strassen program: leaf table size mismatch (size %d, %d/%d/%d entries)",
					l.Size, len(l.A), len(l.B), len(l.C))
			}
			csp.leafJobs[j][i] = compiledLeaf{host: l.Host, size: l.Size, a: l.A, b: l.B, c: l.C}
		}
	}
	csp.cleanup = w.Cleanup
	return nil
}

// ValidateRefs checks every slot index the Strassen program's leaf products
// and cleanup touch against the per-node arena sizes (-1 marks a
// structurally absent element and is always legal).
func (csp *CompiledStrassenProgram) ValidateRefs(sizes []int32) error {
	if csp == nil {
		return nil
	}
	plans := []*lbm.CompiledPlan{csp.init, csp.final}
	plans = append(plans, csp.down...)
	plans = append(plans, csp.up...)
	for _, cp := range plans {
		if err := checkPlanFits(cp, sizes); err != nil {
			return fmt.Errorf("dense: strassen program: %w", err)
		}
	}
	for _, leafs := range csp.leafJobs {
		for _, l := range leafs {
			if l.host < 0 || int(l.host) >= len(sizes) {
				return fmt.Errorf("dense: strassen leaf host %d out of range (n=%d)", l.host, len(sizes))
			}
			for _, slots := range [][]int32{l.a, l.b, l.c} {
				for _, sl := range slots {
					if sl != -1 && (sl < 0 || sl >= sizes[l.host]) {
						return fmt.Errorf("dense: strassen leaf slot %d out of range at node %d (%d slots)",
							sl, l.host, sizes[l.host])
					}
				}
			}
		}
	}
	if err := checkRefs(sizes, csp.cleanup...); err != nil {
		return fmt.Errorf("dense: strassen cleanup: %w", err)
	}
	return nil
}

// checkRefs validates slot refs against per-node arena sizes.
func checkRefs(sizes []int32, refs ...lbm.SlotRef) error {
	for _, r := range refs {
		if r.Node < 0 || int(r.Node) >= len(sizes) {
			return fmt.Errorf("node %d out of range (n=%d)", r.Node, len(sizes))
		}
		if r.Slot < 0 || r.Slot >= sizes[r.Node] {
			return fmt.Errorf("slot %d out of range at node %d (%d slots)", r.Slot, r.Node, sizes[r.Node])
		}
	}
	return nil
}

// checkPlanFits checks that a compiled plan's arena demands fit within the
// executor arenas it will run in. The plan's own Validate bounds every
// instruction by its NumSlots snapshot, so NumSlots ≤ sizes is sufficient.
func checkPlanFits(cp *lbm.CompiledPlan, sizes []int32) error {
	if cp == nil {
		return nil
	}
	if cp.N != len(sizes) {
		return fmt.Errorf("plan compiled for %d nodes, arenas have %d", cp.N, len(sizes))
	}
	for v, sz := range cp.NumSlots {
		if sz > sizes[v] {
			return fmt.Errorf("plan needs %d slots at node %d, arenas have %d", sz, v, sizes[v])
		}
	}
	return nil
}
