package dense

import (
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/vnet"
)

// allIndices returns [0, n) as int32s.
func allIndices(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(i)
	}
	return out
}

// RunWholeCube executes the masked cube algorithm on the entire instance,
// using all 3n role virtual nodes as processors. On a uniformly sparse
// instance this is the O(d·n^{1/3})-round algorithm attributed to [2] in
// Table 1; on a dense instance it is the O(n^{4/3}) semiring algorithm of
// [3]. Inputs must be loaded in RowLayout and outputs zeroed.
func RunWholeCube(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) error {
	net := vnet.Roles(inst.N)
	spec := &CubeSpec{
		N:      inst.N,
		Procs:  allIndices(3 * inst.N),
		I:      allIndices(inst.N),
		J:      allIndices(inst.N),
		K:      allIndices(inst.N),
		Tris:   inst.Triangles(),
		Layout: l,
	}
	job, err := PlanCube(net, spec)
	if err != nil {
		return err
	}
	return RunCubeJobs(m, net, []*CubeJob{job})
}

// RunWholeStrassen executes the distributed Strassen algorithm on the
// entire instance over a field, using all 3n role virtual nodes as
// processors: the executable O(n^{2-2/log₂7}) dense field algorithm of
// Table 1. Inputs must be loaded in RowLayout and outputs zeroed.
func RunWholeStrassen(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) error {
	net := vnet.Roles(inst.N)
	spec := &StrassenSpec{
		N:      inst.N,
		Procs:  allIndices(3 * inst.N),
		I:      allIndices(inst.N),
		J:      allIndices(inst.N),
		K:      allIndices(inst.N),
		SA:     inst.Ahat,
		SB:     inst.Bhat,
		SX:     inst.Xhat,
		Layout: l,
	}
	job, err := PlanStrassen(net, spec)
	if err != nil {
		return err
	}
	return RunStrassenJobs(m, net, []*StrassenJob{job})
}
