package dense

import (
	"fmt"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/ring"
)

// TrivialGather is the paper's O(n²)-round baseline (§1.1): every computer
// ships all of its input elements to computer 0, which multiplies locally
// and ships each requested output to its owner. The round count is exactly
// the number of foreign elements computer 0 receives plus the number of
// outputs it distributes — Θ(nnz(A)+nnz(B)+nnz(X̂)), i.e. Θ(n²) on dense
// inputs, because computer 0 can receive only one message per round.
func TrivialGather(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) error {
	const sink lbm.NodeID = 0

	// Phase 1: gather. One foreign element per round.
	var gather []lbm.Send
	for i, row := range inst.Ahat.Rows {
		for _, j := range row {
			from := l.OwnerA(int32(i), j)
			gather = append(gather, lbm.Send{From: from, To: sink, Src: lbm.AKey(int32(i), j), Dst: lbm.AKey(int32(i), j), Op: lbm.OpSet})
		}
	}
	for j, row := range inst.Bhat.Rows {
		for _, k := range row {
			from := l.OwnerB(int32(j), k)
			gather = append(gather, lbm.Send{From: from, To: sink, Src: lbm.BKey(int32(j), k), Dst: lbm.BKey(int32(j), k), Op: lbm.OpSet})
		}
	}
	for _, s := range gather {
		if err := m.RunRound(lbm.Round{s}); err != nil {
			return fmt.Errorf("dense: trivial gather: %w", err)
		}
	}

	// Phase 2: computer 0 multiplies locally (free). On a partitioned
	// machine only the participant hosting the sink computes.
	if m.Owns(sink) {
		r := m.R
		for i, arow := range inst.Ahat.Rows {
			xrow := inst.Xhat.Rows[i]
			if len(xrow) == 0 {
				continue
			}
			acc := make(map[int32]ring.Value, len(xrow))
			for _, k := range xrow {
				acc[k] = r.Zero()
			}
			for _, j := range arow {
				av := m.MustGet(sink, lbm.AKey(int32(i), j))
				for _, k := range inst.Bhat.Rows[j] {
					if cur, wanted := acc[k]; wanted {
						bv := m.MustGet(sink, lbm.BKey(int32(j), k))
						acc[k] = r.Add(cur, r.Mul(av, bv))
					}
				}
			}
			for _, k := range xrow {
				m.Put(sink, lbm.XKey(int32(i), k), acc[k])
			}
		}
	}

	// Phase 3: distribute outputs, one per round.
	for i, row := range inst.Xhat.Rows {
		for _, k := range row {
			to := l.OwnerX(int32(i), k)
			s := lbm.Send{From: sink, To: to, Src: lbm.XKey(int32(i), k), Dst: lbm.XKey(int32(i), k), Op: lbm.OpSet}
			if err := m.RunRound(lbm.Round{s}); err != nil {
				return fmt.Errorf("dense: trivial distribute: %w", err)
			}
		}
	}

	// Free cleanup of the gathered copies at computer 0 (inputs whose owner
	// is computer 0 itself are kept).
	for i, row := range inst.Ahat.Rows {
		for _, j := range row {
			if l.OwnerA(int32(i), j) != sink {
				m.Del(sink, lbm.AKey(int32(i), j))
			}
		}
	}
	for j, row := range inst.Bhat.Rows {
		for _, k := range row {
			if l.OwnerB(int32(j), k) != sink {
				m.Del(sink, lbm.BKey(int32(j), k))
			}
		}
	}
	for i, row := range inst.Xhat.Rows {
		for _, k := range row {
			if l.OwnerX(int32(i), k) != sink {
				m.Del(sink, lbm.XKey(int32(i), k))
			}
		}
	}
	return nil
}
