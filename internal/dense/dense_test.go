package dense

import (
	"math"
	"math/rand"
	"testing"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/vnet"
)

func randomSupport(rng *rand.Rand, n, nnz int) *matrix.Support {
	entries := make([][2]int, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return matrix.NewSupport(n, entries)
}

func fullSupport(n int) *matrix.Support {
	var es [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			es = append(es, [2]int{i, j})
		}
	}
	return matrix.NewSupport(n, es)
}

// runAndVerify loads a random instance, runs alg, and checks the collected
// output against the reference product. Returns rounds used.
func runAndVerify(t *testing.T, r ring.Semiring, inst *graph.Instance, seed int64,
	alg func(m *lbm.Machine, l *lbm.Layout) error) int {
	t.Helper()
	a := matrix.Random(inst.Ahat, r, seed)
	b := matrix.Random(inst.Bhat, r, seed+1)
	want := matrix.MulReference(a, b, inst.Xhat)

	m := lbm.New(inst.N, r)
	l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	if err := alg(m, l); err != nil {
		t.Fatal(err)
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want) {
		t.Fatalf("%s: wrong product (n=%d)", r.Name(), inst.N)
	}
	return m.Rounds()
}

func TestTrivialGatherCorrectAndExactRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, r := range ring.All() {
		n := 8 + rng.Intn(8)
		inst := graph.NewInstance(n,
			randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n), randomSupport(rng, n, 2*n))
		rounds := runAndVerify(t, r, inst, 42, func(m *lbm.Machine, l *lbm.Layout) error {
			return TrivialGather(m, l, inst)
		})
		// Exactly one round per foreign element in/out of computer 0.
		want := 0
		for i, row := range inst.Ahat.Rows {
			_ = row
			if i != 0 {
				want += len(row)
			}
		}
		for j, row := range inst.Bhat.Rows {
			if j != 0 {
				want += len(row)
			}
		}
		for i, row := range inst.Xhat.Rows {
			if i != 0 {
				want += len(row)
			}
		}
		if rounds != want {
			t.Errorf("%s: trivial used %d rounds, want %d", r.Name(), rounds, want)
		}
	}
}

func TestWholeCubeCorrectAllRings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, r := range ring.All() {
		for trial := 0; trial < 3; trial++ {
			n := 6 + rng.Intn(14)
			inst := graph.NewInstance(n,
				randomSupport(rng, n, 4*n), randomSupport(rng, n, 4*n), randomSupport(rng, n, 3*n))
			runAndVerify(t, r, inst, int64(trial), func(m *lbm.Machine, l *lbm.Layout) error {
				return RunWholeCube(m, l, inst)
			})
		}
	}
}

func TestWholeCubeDense(t *testing.T) {
	n := 9
	full := fullSupport(n)
	inst := graph.NewInstance(n, full, full, full)
	for _, r := range []ring.Semiring{ring.Counting{}, ring.MinPlus{}} {
		runAndVerify(t, r, inst, 7, func(m *lbm.Machine, l *lbm.Layout) error {
			return RunWholeCube(m, l, inst)
		})
	}
}

func TestWholeStrassenDense(t *testing.T) {
	for _, f := range ring.Fields() {
		for _, n := range []int{4, 7, 8, 12, 16} {
			full := fullSupport(n)
			inst := graph.NewInstance(n, full, full, full)
			runAndVerify(t, f, inst, int64(n), func(m *lbm.Machine, l *lbm.Layout) error {
				return RunWholeStrassen(m, l, inst)
			})
		}
	}
}

func TestWholeStrassenSparseMasked(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, f := range ring.Fields() {
		for trial := 0; trial < 4; trial++ {
			n := 5 + rng.Intn(12)
			inst := graph.NewInstance(n,
				randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n), randomSupport(rng, n, 2*n))
			runAndVerify(t, f, inst, int64(trial+50), func(m *lbm.Machine, l *lbm.Layout) error {
				return RunWholeStrassen(m, l, inst)
			})
		}
	}
}

func TestCubeClusterBatchParallel(t *testing.T) {
	// Two disjoint clusters processed as one batch; triangles split between
	// them; a residual triangle left out must NOT be processed.
	n := 12
	r := ring.Counting{}
	// Cluster 1: I={0,1}, J={2,3}, K={4,5}; cluster 2: I={6,7}, J={8,9}, K={10,11}.
	var es [][2]int
	ahat := matrix.NewSupport(n, [][2]int{{0, 2}, {1, 3}, {6, 8}, {7, 9}, {0, 3}})
	bhat := matrix.NewSupport(n, [][2]int{{2, 4}, {3, 5}, {8, 10}, {9, 11}, {3, 4}})
	xhat := matrix.NewSupport(n, [][2]int{{0, 4}, {1, 5}, {6, 10}, {7, 11}, {0, 5}})
	_ = es
	inst := graph.NewInstance(n, ahat, bhat, xhat)
	tris := inst.Triangles()
	c1 := graph.Cluster{I: []int32{0, 1}, J: []int32{2, 3}, K: []int32{4, 5}}
	c2 := graph.Cluster{I: []int32{6, 7}, J: []int32{8, 9}, K: []int32{10, 11}}
	in1 := c1.Induced(tris)
	in2 := c2.Induced(tris)
	if len(in1) == 0 || len(in2) == 0 {
		t.Fatalf("test construction broken: %d/%d triangles", len(in1), len(in2))
	}

	a := matrix.Random(ahat, r, 1)
	b := matrix.Random(bhat, r, 2)
	m := lbm.New(n, r)
	l := lbm.RowLayout(ahat, bhat, xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, xhat)

	net := vnet.Roles(n)
	mkProcs := func(c graph.Cluster) []int32 {
		var ps []int32
		for _, i := range c.I {
			ps = append(ps, i)
		}
		for _, j := range c.J {
			ps = append(ps, int32(n)+j)
		}
		for _, k := range c.K {
			ps = append(ps, 2*int32(n)+k)
		}
		return ps
	}
	j1, err := PlanCube(net, &CubeSpec{N: n, Procs: mkProcs(c1), I: c1.I, J: c1.J, K: c1.K, Tris: in1, Layout: l})
	if err != nil {
		t.Fatal(err)
	}
	j2, err := PlanCube(net, &CubeSpec{N: n, Procs: mkProcs(c2), I: c2.I, J: c2.J, K: c2.K, Tris: in2, Layout: l})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunCubeJobs(m, net, []*CubeJob{j1, j2}); err != nil {
		t.Fatal(err)
	}
	// Verify: exactly the induced triangles processed.
	processed := append(append([]graph.Triangle{}, in1...), in2...)
	want := matrix.NewSparse(n, r)
	for i, row := range xhat.Rows {
		for _, k := range row {
			want.Set(i, int(k), r.Zero())
		}
	}
	for _, tr := range processed {
		want.Add(int(tr.I), int(tr.K), r.Mul(a.Get(int(tr.I), int(tr.J)), b.Get(int(tr.J), int(tr.K))))
	}
	got, err := lbm.CollectX(m, l, xhat)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want) {
		t.Fatalf("cluster batch processed wrong triangle set:\ngot\n%v\nwant\n%v", got, want)
	}
}

func TestCubeMaskedExcludesUnassigned(t *testing.T) {
	// Give the cube only HALF the triangles; the result must include only
	// those products (the masked local multiply must not process the rest).
	rng := rand.New(rand.NewSource(3))
	n := 10
	r := ring.Counting{}
	inst := graph.NewInstance(n,
		randomSupport(rng, n, 4*n), randomSupport(rng, n, 4*n), randomSupport(rng, n, 3*n))
	tris := inst.Triangles()
	if len(tris) < 2 {
		t.Skip("instance too small")
	}
	half := tris[:len(tris)/2]
	a := matrix.Random(inst.Ahat, r, 9)
	b := matrix.Random(inst.Bhat, r, 10)
	m := lbm.New(n, r)
	l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	net := vnet.Roles(n)
	job, err := PlanCube(net, &CubeSpec{
		N: n, Procs: allIndices(3 * n),
		I: allIndices(n), J: allIndices(n), K: allIndices(n), Tris: half, Layout: l,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := RunCubeJobs(m, net, []*CubeJob{job}); err != nil {
		t.Fatal(err)
	}
	want := matrix.NewSparse(n, r)
	for _, tr := range half {
		want.Add(int(tr.I), int(tr.K), r.Mul(a.Get(int(tr.I), int(tr.J)), b.Get(int(tr.J), int(tr.K))))
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(got, want) {
		t.Fatal("masked cube processed unassigned triangles")
	}
}

func TestLocalMulMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, f := range ring.Fields() {
		for _, size := range []int{0, 1, 3, 64, 96, 128} {
			a := make([]ring.Value, size*size)
			b := make([]ring.Value, size*size)
			for i := range a {
				a[i] = f.Rand(rng)
				b[i] = f.Rand(rng)
			}
			got := LocalMul(f, a, b, size)
			want := make([]ring.Value, size*size)
			for i := range want {
				want[i] = f.Zero()
			}
			naiveMulInto(f, a, b, want, size)
			for i := range want {
				if !f.Eq(got[i], want[i]) {
					t.Fatalf("%s size %d: LocalMul[%d] = %v, want %v", f.Name(), size, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGridDimAndChunk(t *testing.T) {
	cases := map[int]int{1: 1, 7: 1, 8: 2, 26: 2, 27: 3, 63: 3, 64: 4}
	for p, want := range cases {
		if got := gridDim(p); got != want {
			t.Errorf("gridDim(%d) = %d, want %d", p, got, want)
		}
	}
	// chunkIndex covers [0,q) and is monotone.
	for _, q := range []int{1, 2, 3, 5} {
		size := 17
		prev := 0
		seen := map[int]bool{}
		for pos := 0; pos < size; pos++ {
			c := chunkIndex(pos, size, q)
			if c < prev || c >= q {
				t.Fatalf("chunkIndex(%d,%d,%d) = %d", pos, size, q, c)
			}
			prev = c
			seen[c] = true
		}
		if len(seen) != q {
			t.Errorf("chunkIndex misses chunks for q=%d", q)
		}
	}
}

func TestStrassenDepthAndGroups(t *testing.T) {
	if strassenDepth(1, 64) != 0 || strassenDepth(7, 64) != 1 || strassenDepth(49, 64) != 2 {
		t.Error("strassenDepth wrong")
	}
	if strassenDepth(1000, 2) != 1 { // size-limited
		t.Errorf("strassenDepth(1000,2) = %d", strassenDepth(1000, 2))
	}
	procs := allIndices(20)
	for l := 0; l <= 1; l++ {
		covered := 0
		for s := 0; s < pow7(l); s++ {
			lo, hi := group(procs, l, s)
			if hi < lo {
				t.Fatal("empty-reversed group")
			}
			covered += hi - lo
		}
		if covered != len(procs) {
			t.Errorf("level %d groups cover %d procs", l, covered)
		}
	}
}

func TestStrassenRejectsNonField(t *testing.T) {
	n := 4
	full := fullSupport(n)
	inst := graph.NewInstance(n, full, full, full)
	m := lbm.New(n, ring.Counting{})
	l := lbm.RowLayout(full, full, full)
	lbm.LoadInputs(m, l, matrix.Random(full, ring.Counting{}, 1), matrix.Random(full, ring.Counting{}, 2))
	if err := RunWholeStrassen(m, l, inst); err == nil {
		t.Error("strassen over a semiring must be rejected")
	}
}

func TestCubeRoundsScaleLikeDN13(t *testing.T) {
	// On US(d) instances with fixed d, rounds should grow ~ n^{1/3}, far
	// below the trivial algorithm's ~n growth. Check a crude ratio.
	r := ring.Boolean{}
	d := 3
	rounds := map[int]int{}
	for _, n := range []int{64, 512} {
		rng := rand.New(rand.NewSource(int64(n)))
		us := func() *matrix.Support {
			var es [][2]int
			for t := 0; t < d; t++ {
				p := rng.Perm(n)
				for i, j := range p {
					es = append(es, [2]int{i, j})
				}
			}
			return matrix.NewSupport(n, es)
		}
		inst := graph.NewInstance(d, us(), us(), us())
		rounds[n] = runAndVerify(t, r, inst, int64(n), func(m *lbm.Machine, l *lbm.Layout) error {
			return RunWholeCube(m, l, inst)
		})
	}
	// n grew by 8, n^{1/3} by 2; allow generous slack but demand clearly
	// sublinear growth.
	ratio := float64(rounds[512]) / math.Max(float64(rounds[64]), 1)
	if ratio > 4.0 {
		t.Errorf("cube rounds grew by %.2fx for 8x n (want ~2x)", ratio)
	}
}

func TestWholeStrassenDeepRecursion(t *testing.T) {
	// n=120 gives 3n=360 ≥ 7³ processors: recursion depth 3, exercising
	// multi-level down/up phases.
	if testing.Short() {
		t.Skip("deep recursion instance")
	}
	n := 120
	full := fullSupport(n)
	inst := graph.NewInstance(n, full, full, full)
	rounds := runAndVerify(t, ring.NewGFp(1009), inst, 3, func(m *lbm.Machine, l *lbm.Layout) error {
		return RunWholeStrassen(m, l, inst)
	})
	if rounds == 0 {
		t.Fatal("no rounds")
	}
}

func TestWholeStrassenWinogradVariant(t *testing.T) {
	// The Strassen–Winograd coefficient tables must compute the same
	// products as the classic scheme on dense and sparse instances.
	for _, f := range ring.Fields() {
		for _, n := range []int{5, 8, 13} {
			full := fullSupport(n)
			inst := graph.NewInstance(n, full, full, full)
			runAndVerify(t, f, inst, int64(n), func(m *lbm.Machine, l *lbm.Layout) error {
				job, err := PlanStrassen(vnet.Roles(inst.N), &StrassenSpec{
					N: inst.N, Procs: allIndices(3 * inst.N),
					I: allIndices(inst.N), J: allIndices(inst.N), K: allIndices(inst.N),
					SA: inst.Ahat, SB: inst.Bhat, SX: inst.Xhat,
					Layout: l, Variant: VariantWinograd(),
				})
				if err != nil {
					return err
				}
				return RunStrassenJobs(m, vnet.Roles(inst.N), []*StrassenJob{job})
			})
		}
	}
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 3; trial++ {
		n := 6 + rng.Intn(10)
		inst := graph.NewInstance(n,
			randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n), randomSupport(rng, n, 2*n))
		runAndVerify(t, ring.NewGFp(1009), inst, int64(trial), func(m *lbm.Machine, l *lbm.Layout) error {
			job, err := PlanStrassen(vnet.Roles(inst.N), &StrassenSpec{
				N: inst.N, Procs: allIndices(3 * inst.N),
				I: allIndices(inst.N), J: allIndices(inst.N), K: allIndices(inst.N),
				SA: inst.Ahat, SB: inst.Bhat, SX: inst.Xhat,
				Layout: l, Variant: VariantWinograd(),
			})
			if err != nil {
				return err
			}
			return RunStrassenJobs(m, vnet.Roles(inst.N), []*StrassenJob{job})
		})
	}
}
