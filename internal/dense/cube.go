// Package dense implements the in-model dense (and dense-batch) matrix
// multiplication routines the paper uses as black boxes:
//
//   - TrivialGather: the O(n²)-round baseline of §1.1 (ship everything to
//     computer 1, solve locally, ship results back).
//   - Cube: the semiring "3D" algorithm in the style of Censor-Hillel et
//     al. [3], O(p^{... }) communication realized as h-relations; on a
//     d-cluster it gives Lemma 2.1's O(d^{4/3}) rounds, and on a full
//     uniformly sparse instance it gives the O(d·n^{1/3}) bound of [2].
//   - Strassen: message-level recursive distributed Strassen for fields
//     (see strassen.go), the executable stand-in for the O(n^{2-2/ω})
//     field algorithm.
//
// The Cube routine is *triangle-masked*: the communication pattern is the
// dense 3D pattern, but the free local block multiplications consult the
// exact set of triangles assigned to the batch, so a batch never processes
// a triangle that belongs to another batch. This is what makes the
// two-phase Theorem 4.2 algorithm exact over semirings without subtraction.
package dense

import (
	"fmt"
	"sort"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
	"lbmm/internal/vnet"
)

// CubeSpec describes one masked cube multiplication batch.
type CubeSpec struct {
	// N is the global matrix dimension (needed to address role vnodes).
	N int
	// Procs are the virtual processors available to this batch; they must
	// be pairwise distinct and, across concurrently-run batches, disjoint.
	Procs []int32
	// I, J, K are the global index sets of the batch (a cluster's I', J',
	// K', or the full 0..n-1 for a whole-instance run).
	I, J, K []int32
	// Tris is the exact set of triangles this batch must process. All its
	// indices must lie in I × J × K.
	Tris []graph.Triangle
	// Layout locates the inputs and outputs. Senders use their owning
	// computer's I-role (for A) or J-role (for B) virtual node; outputs
	// accumulate at the owner's I-role virtual node.
	Layout *lbm.Layout
}

// CubeJob is a planned batch: two virtual communication phases with a free
// local multiplication step between them.
type CubeJob struct {
	distribute *vnet.Plan
	aggregate  *vnet.Plan
	// prods are the free local products: host computes a*b into dst.
	prods []prodTask
	// cleanup lists staged copies to delete after the batch (the original
	// input copies are never deleted).
	cleanup []hostKeyPair
	// Rounds3D estimates nothing; exact rounds come from the machine.
}

type prodTask struct {
	host     lbm.NodeID
	a, b, ds lbm.Key
}

type hostKeyPair struct {
	host lbm.NodeID
	key  lbm.Key
}

// gridDim returns the largest q with q³ ≤ p.
func gridDim(p int) int {
	q := 1
	for (q+1)*(q+1)*(q+1) <= p {
		q++
	}
	return q
}

// chunkIndex maps a position in [0,size) to one of q balanced contiguous
// chunks.
func chunkIndex(pos, size, q int) int {
	c := pos * q / size
	if c >= q {
		c = q - 1
	}
	return c
}

// PlanCube preprocesses one masked cube batch. All routing decisions depend
// only on the support (the triangle set), per the supported model.
//
// Data layout convention (RowLayout over role vnodes): A(i,j) at vnode i,
// B(j,k) at vnode N+j, X(i,k) owned by vnode i.
func PlanCube(net *vnet.Net, spec *CubeSpec) (*CubeJob, error) {
	if len(spec.Procs) == 0 {
		return nil, fmt.Errorf("dense: cube batch needs processors")
	}
	if len(spec.Tris) == 0 {
		return &CubeJob{}, nil
	}
	// A cubic grid: rectangular grids use more of the processor budget but
	// inflate the per-side copy factors (each A element is copied q_c
	// times, each B element q_a times), which measurably hurts on the
	// block workloads; the cubic floor keeps all three factors at q.
	q := gridDim(len(spec.Procs))
	qa, qb, qc := q, q, q
	n := int32(spec.N)

	// Positions of global indices within the batch index sets, passed
	// through a deterministic pseudorandom permutation before chunking.
	// Without it, correlated inputs (e.g. block-diagonal supports, where
	// i ≈ j ≈ k for every triangle) collapse onto the q diagonal cells of
	// the grid and leave q³−q processors idle; the permutation is
	// support-independent randomization of the kind the model's free
	// preprocessing may always apply.
	posI := permutedPositionMap(spec.I, 0x9e3779b9)
	posJ := permutedPositionMap(spec.J, 0x85ebca6b)
	posK := permutedPositionMap(spec.K, 0xc2b2ae35)

	proc := func(a, b, c int) int32 {
		return spec.Procs[(a*qb+b)*qc+c]
	}

	// For every assigned triangle, its grid cell.
	type pairDst struct {
		key  lbm.Key
		dst  int32
		from int32
	}
	needA := map[pairDst]struct{}{}
	needB := map[pairDst]struct{}{}
	// partials[{i,k,b}] marks which partial keys will exist at which proc.
	type partial struct {
		i, k int32
		b    int
	}
	partialProc := map[partial]int32{}
	var prods []prodTask

	for _, t := range spec.Tris {
		pi, ok := posI[t.I]
		if !ok {
			return nil, fmt.Errorf("dense: triangle %v has I outside batch", t)
		}
		pj, ok := posJ[t.J]
		if !ok {
			return nil, fmt.Errorf("dense: triangle %v has J outside batch", t)
		}
		pk, ok := posK[t.K]
		if !ok {
			return nil, fmt.Errorf("dense: triangle %v has K outside batch", t)
		}
		a := chunkIndex(int(pi), len(spec.I), qa)
		b := chunkIndex(int(pj), len(spec.J), qb)
		c := chunkIndex(int(pk), len(spec.K), qc)
		p := proc(a, b, c)
		needA[pairDst{key: lbm.AKey(t.I, t.J), dst: p, from: int32(spec.Layout.OwnerA(t.I, t.J))}] = struct{}{}
		needB[pairDst{key: lbm.BKey(t.J, t.K), dst: p, from: n + int32(spec.Layout.OwnerB(t.J, t.K))}] = struct{}{}
		partialProc[partial{i: t.I, k: t.K, b: b}] = p
		prods = append(prods, prodTask{
			host: net.Host[p],
			a:    lbm.AKey(t.I, t.J),
			b:    lbm.BKey(t.J, t.K),
			ds:   lbm.PKey(t.I, t.K, int32(b)),
		})
	}

	job := &CubeJob{prods: prods}

	// Phase 1: distribute the needed A and B copies (one h-relation).
	var dist []vnet.Send
	for nd := range needA {
		dist = append(dist, vnet.Send{From: nd.from, To: nd.dst, Src: nd.key, Dst: nd.key, Op: lbm.OpSet})
		if net.Host[nd.from] != net.Host[nd.dst] {
			job.cleanup = append(job.cleanup, hostKeyPair{net.Host[nd.dst], nd.key})
		}
	}
	for nd := range needB {
		dist = append(dist, vnet.Send{From: nd.from, To: nd.dst, Src: nd.key, Dst: nd.key, Op: lbm.OpSet})
		if net.Host[nd.from] != net.Host[nd.dst] {
			job.cleanup = append(job.cleanup, hostKeyPair{net.Host[nd.dst], nd.key})
		}
	}
	sortSends(dist)
	job.distribute = vnet.ScheduleVirtual(dist, routing.Auto)

	// Phase 2: aggregate partials into the X owners.
	var agg []vnet.Send
	for pt, p := range partialProc {
		key := lbm.PKey(pt.i, pt.k, int32(pt.b))
		agg = append(agg, vnet.Send{
			From: p, To: int32(spec.Layout.OwnerX(pt.i, pt.k)),
			Src: key, Dst: lbm.XKey(pt.i, pt.k), Op: lbm.OpAcc,
		})
		job.cleanup = append(job.cleanup, hostKeyPair{net.Host[p], key})
	}
	sortSends(agg)
	job.aggregate = vnet.ScheduleVirtual(agg, routing.Auto)
	return job, nil
}

// sortSends orders virtual messages deterministically so that plans built
// from map iteration are reproducible run to run.
func sortSends(msgs []vnet.Send) {
	sort.Slice(msgs, func(a, b int) bool {
		x, y := msgs[a], msgs[b]
		if x.From != y.From {
			return x.From < y.From
		}
		if x.To != y.To {
			return x.To < y.To
		}
		if x.Src != y.Src {
			return keyLess(x.Src, y.Src)
		}
		return keyLess(x.Dst, y.Dst)
	})
}

func keyLess(a, b lbm.Key) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.I != b.I {
		return a.I < b.I
	}
	if a.J != b.J {
		return a.J < b.J
	}
	return a.Seq < b.Seq
}

// permutedPositionMap maps each global index of xs to a position under a
// deterministic Fisher–Yates shuffle of 0..len(xs)-1 driven by a fixed-seed
// splitmix64 stream.
func permutedPositionMap(xs []int32, seed uint64) map[int32]int32 {
	perm := make([]int32, len(xs))
	for i := range perm {
		perm[i] = int32(i)
	}
	state := seed ^ uint64(len(xs))*0x9e3779b97f4a7c15
	next := func() uint64 {
		state += 0x9e3779b97f4a7c15
		z := state
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := len(perm) - 1; i > 0; i-- {
		j := int(next() % uint64(i+1))
		perm[i], perm[j] = perm[j], perm[i]
	}
	m := make(map[int32]int32, len(xs))
	for p, x := range xs {
		m[x] = perm[p]
	}
	return m
}

// CubeProgram is a batch of cube jobs with the merged distribute/aggregate
// communication lowered to real plans once, at plan time. Before the
// program form, RunCubeJobs re-ran the vnet compilation on every execution
// — per-request work the supported model says is free preprocessing.
type CubeProgram struct {
	Dist, Agg *lbm.Plan
}

// PlanCubeProgram merges the jobs' virtual phases (they must use disjoint
// processors and disjoint input rows — true for the disjoint clusters of
// one clustering) and compiles them to real plans.
func PlanCubeProgram(net *vnet.Net, jobs []*CubeJob) (*CubeProgram, error) {
	var distPlans, aggPlans []*vnet.Plan
	for _, j := range jobs {
		if j.distribute != nil {
			distPlans = append(distPlans, j.distribute)
		}
		if j.aggregate != nil {
			aggPlans = append(aggPlans, j.aggregate)
		}
	}
	dist, err := net.Compile(vnet.MergeParallel(distPlans...), routing.Auto)
	if err != nil {
		return nil, fmt.Errorf("dense: distribute: %w", err)
	}
	agg, err := net.Compile(vnet.MergeParallel(aggPlans...), routing.Auto)
	if err != nil {
		return nil, fmt.Errorf("dense: aggregate: %w", err)
	}
	return &CubeProgram{Dist: dist, Agg: agg}, nil
}

// RunCubeJobs executes a batch of cube jobs concurrently: the merged
// distribute plan, then all local products, then the merged aggregation
// plan.
func RunCubeJobs(m *lbm.Machine, net *vnet.Net, jobs []*CubeJob) error {
	prog, err := PlanCubeProgram(net, jobs)
	if err != nil {
		return err
	}
	return RunCubeJobsWith(m, jobs, prog)
}

// RunCubeJobsWith executes a batch of cube jobs against its preplanned
// program.
func RunCubeJobsWith(m *lbm.Machine, jobs []*CubeJob, prog *CubeProgram) error {
	m.BeginPhase("dense/cube")
	defer m.EndPhase()
	m.Counter("jobs", float64(len(jobs)))
	m.BeginPhase("distribute")
	err := m.Run(prog.Dist)
	m.EndPhase()
	if err != nil {
		return fmt.Errorf("dense: distribute: %w", err)
	}
	for _, j := range jobs {
		for _, p := range j.prods {
			if !m.Owns(p.host) {
				continue
			}
			av := m.MustGet(p.host, p.a)
			bv := m.MustGet(p.host, p.b)
			m.Acc(p.host, p.ds, m.R.Mul(av, bv))
		}
	}
	m.BeginPhase("aggregate")
	err = m.Run(prog.Agg)
	m.EndPhase()
	if err != nil {
		return fmt.Errorf("dense: aggregate: %w", err)
	}
	for _, j := range jobs {
		for _, ck := range j.cleanup {
			m.Del(ck.host, ck.key)
		}
	}
	return nil
}

// slotProd is a local product lowered to arena addressing: dst += a*b.
type slotProd struct {
	a, b, dst lbm.SlotRef
}

// CompiledCubeProgram is a cube program lowered to the slot-addressed
// executable form: compiled communication phases plus slot-resolved local
// products and cleanup.
type CompiledCubeProgram struct {
	njobs     int
	dist, agg *lbm.CompiledPlan
	prods     []slotProd
	cleanup   []lbm.SlotRef
}

// CompileCubeProgram lowers a cube program and its jobs' local work into
// the shared slot space.
func CompileCubeProgram(sp *lbm.SlotSpace, jobs []*CubeJob, prog *CubeProgram) (*CompiledCubeProgram, error) {
	ccp := &CompiledCubeProgram{njobs: len(jobs)}
	var err error
	if ccp.dist, err = lbm.CompileInto(sp, prog.Dist); err != nil {
		return nil, fmt.Errorf("dense: compile distribute: %w", err)
	}
	for _, j := range jobs {
		for _, p := range j.prods {
			ccp.prods = append(ccp.prods, slotProd{
				a:   sp.Ref(p.host, p.a),
				b:   sp.Ref(p.host, p.b),
				dst: sp.Ref(p.host, p.ds),
			})
		}
	}
	if ccp.agg, err = lbm.CompileInto(sp, prog.Agg); err != nil {
		return nil, fmt.Errorf("dense: compile aggregate: %w", err)
	}
	for _, j := range jobs {
		for _, ck := range j.cleanup {
			ccp.cleanup = append(ccp.cleanup, sp.Ref(ck.host, ck.key))
		}
	}
	return ccp, nil
}

// MemoryBytes estimates the resident size of the compiled program.
func (ccp *CompiledCubeProgram) MemoryBytes() int64 {
	if ccp == nil {
		return 0
	}
	return ccp.dist.MemoryBytes() + ccp.agg.MemoryBytes() +
		int64(len(ccp.prods))*24 + int64(len(ccp.cleanup))*8
}

// AddNodeLoads accumulates the program's per-node real-message loads
// (distribute and aggregate phases; local products move no messages).
func (ccp *CompiledCubeProgram) AddNodeLoads(send, recv []int64) {
	if ccp == nil {
		return
	}
	ccp.dist.AddNodeLoads(send, recv)
	ccp.agg.AddNodeLoads(send, recv)
}

// Run executes the compiled cube program, mirroring RunCubeJobsWith phase
// for phase.
func (ccp *CompiledCubeProgram) Run(x *lbm.Exec) error {
	x.BeginPhase("dense/cube")
	defer x.EndPhase()
	x.Counter("jobs", float64(ccp.njobs))
	x.BeginPhase("distribute")
	err := x.Run(ccp.dist)
	x.EndPhase()
	if err != nil {
		return fmt.Errorf("dense: distribute: %w", err)
	}
	if K := x.Lanes(); K == 1 {
		for _, p := range ccp.prods {
			if !x.Owns(p.a.Node) {
				continue
			}
			av := x.MustGetSlot(p.a)
			bv := x.MustGetSlot(p.b)
			x.AccSlot(p.dst, x.R.Mul(av, bv))
		}
	} else {
		buf := make([]ring.Value, K)
		for _, p := range ccp.prods {
			if !x.Owns(p.a.Node) {
				continue
			}
			as := x.MustLanes(p.a)
			bs := x.MustLanes(p.b)
			for l := 0; l < K; l++ {
				buf[l] = x.R.Mul(as[l], bs[l])
			}
			x.AccLanes(p.dst, buf)
		}
	}
	x.BeginPhase("aggregate")
	err = x.Run(ccp.agg)
	x.EndPhase()
	if err != nil {
		return fmt.Errorf("dense: aggregate: %w", err)
	}
	for _, ref := range ccp.cleanup {
		x.ClearSlot(ref)
	}
	return nil
}
