// Package batch implements dynamic request coalescing for the serving
// layer: in-flight multiplies that share one prepared structure (same
// core.Fingerprint) are grouped into lanes of a single batched run, so the
// compiled engine walks its instruction stream once for the whole group.
//
// The policy is the classic max-batch-size + max-delay pair from
// continuous-batching inference servers: a request waits at most MaxDelay
// for lane-mates, and a group launches early the moment it reaches
// MaxBatch. Grouping is by an opaque string key — the batcher knows nothing
// about plans or matrices, which keeps it independently testable.
package batch

import (
	"errors"
	"sync"
	"time"
)

// ErrClosed is returned by Submit after Close: the batcher is draining and
// accepts no new work.
var ErrClosed = errors.New("batch: coalescer closed")

// Reason says why a group launched. Serving metrics split launches by
// reason: a fleet that only ever launches on Timeout with one lane is
// paying the coalesce delay for nothing.
type Reason string

const (
	// ReasonFull: the group hit MaxBatch lanes.
	ReasonFull Reason = "full"
	// ReasonTimeout: the group's oldest request waited MaxDelay.
	ReasonTimeout Reason = "timeout"
	// ReasonImmediate: batching is effectively off (MaxBatch <= 1 or
	// MaxDelay <= 0), so every submission launches alone.
	ReasonImmediate Reason = "immediate"
	// ReasonFlush: Close drained the group.
	ReasonFlush Reason = "flush"
	// ReasonShrink: a policy decision dropped the group's lane cap below the
	// lanes it already held, launching the group at that arrival. The launch
	// is policy-driven, not demand-driven — feedback consumers must not read
	// it as evidence the key filled a batch the way ReasonFull is.
	ReasonShrink Reason = "shrink"
)

// Policy is one launch decision: the lane cap and delay window governing a
// key right now. MaxBatch <= 1 or MaxDelay <= 0 means launch immediately.
type Policy struct {
	MaxBatch int
	MaxDelay time.Duration
}

// Config tunes a Coalescer.
type Config struct {
	// MaxBatch is the lane cap per group; a group launches the moment it
	// holds this many items. Values <= 1 disable coalescing (every item
	// launches immediately, alone).
	MaxBatch int
	// MaxDelay bounds how long the first item of a group waits for
	// lane-mates before the group launches anyway. Values <= 0 disable
	// coalescing.
	MaxDelay time.Duration
	// Decide, when non-nil, is consulted on every Submit and overrides the
	// static MaxBatch/MaxDelay pair for that key — the hook an adaptive
	// controller (internal/control) closes its loop through. The delay
	// window of a pending group was armed by the decision that opened it;
	// the lane cap always tracks the latest decision, so a policy that
	// shrinks mid-group launches the group at the next arrival (with
	// ReasonShrink, so the launch is not mistaken for demand).
	Decide func(key string) Policy
}

// Coalescer groups submitted items by key and hands each group to the run
// callback on its own goroutine. All methods are safe for concurrent use.
type Coalescer[T any] struct {
	cfg Config
	run func(key string, items []T, why Reason)

	mu     sync.Mutex
	groups map[string]*group[T]
	closed bool
	wg     sync.WaitGroup
}

type group[T any] struct {
	items []T
	max   int // lane cap from the latest decision governing this group
	timer *time.Timer
}

// New builds a coalescer. run is invoked once per launched group, on a
// fresh goroutine, with the items in submission order; it must fan results
// back to the submitters itself (the coalescer imposes no result shape).
func New[T any](cfg Config, run func(key string, items []T, why Reason)) *Coalescer[T] {
	return &Coalescer[T]{cfg: cfg, run: run, groups: map[string]*group[T]{}}
}

// Submit adds one item to the group of the given key, creating the group
// (and arming its delay timer) if none is pending. It never blocks on the
// run callback.
func (c *Coalescer[T]) Submit(key string, item T) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	pol := Policy{MaxBatch: c.cfg.MaxBatch, MaxDelay: c.cfg.MaxDelay}
	if c.cfg.Decide != nil {
		pol = c.cfg.Decide(key)
	}
	g := c.groups[key]
	if g == nil {
		if pol.MaxBatch <= 1 || pol.MaxDelay <= 0 {
			c.launchLocked(key, &group[T]{items: []T{item}}, ReasonImmediate)
			return nil
		}
		g = &group[T]{}
		c.groups[key] = g
		// The timer closure re-checks identity under the lock: if the group
		// already launched full (or was flushed), the map no longer points at
		// g and the firing is a no-op.
		g.timer = time.AfterFunc(pol.MaxDelay, func() {
			c.mu.Lock()
			if c.groups[key] == g {
				c.launchLocked(key, g, ReasonTimeout)
			}
			c.mu.Unlock()
		})
	}
	// A pending group accepts the item even when the latest decision says
	// "immediate" — lane-mates are free throughput — but the cap tracks the
	// decision, so a shrunk policy launches the group right here.
	oldMax := g.max
	g.items = append(g.items, item)
	g.max = pol.MaxBatch
	if len(g.items) >= g.max {
		why := ReasonFull
		if g.max < oldMax && len(g.items) < oldMax {
			// Under the previous cap this arrival would have kept waiting:
			// only the shrunk policy made it a launch.
			why = ReasonShrink
		}
		c.launchLocked(key, g, why)
	}
	return nil
}

// launchLocked detaches the group and starts its run. Caller holds c.mu.
func (c *Coalescer[T]) launchLocked(key string, g *group[T], why Reason) {
	delete(c.groups, key)
	if g.timer != nil {
		g.timer.Stop()
	}
	items := g.items
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		c.run(key, items, why)
	}()
}

// Pending reports how many items are parked waiting for lane-mates
// (introspection for tests and metrics; racy by nature).
func (c *Coalescer[T]) Pending() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, g := range c.groups {
		n += len(g.items)
	}
	return n
}

// Close launches every pending group immediately (ReasonFlush), waits for
// all in-flight runs to finish, and makes further Submits fail with
// ErrClosed. Safe to call more than once.
func (c *Coalescer[T]) Close() {
	c.mu.Lock()
	if !c.closed {
		c.closed = true
		for key, g := range c.groups {
			c.launchLocked(key, g, ReasonFlush)
		}
	}
	c.mu.Unlock()
	c.wg.Wait()
}
