package batch

import (
	"sync"
	"testing"
	"time"
)

// sink collects launched groups for assertions.
type sink struct {
	mu     sync.Mutex
	groups [][]int
	keys   []string
	whys   []Reason
}

func (s *sink) run(key string, items []int, why Reason) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.groups = append(s.groups, items)
	s.keys = append(s.keys, key)
	s.whys = append(s.whys, why)
}

// TestCoalescerFull pins the size trigger: MaxBatch submissions to one key
// launch exactly one group of MaxBatch, ReasonFull, in submission order.
func TestCoalescerFull(t *testing.T) {
	s := &sink{}
	c := New[int](Config{MaxBatch: 3, MaxDelay: time.Hour}, s.run)
	for i := 0; i < 3; i++ {
		if err := c.Submit("k", i); err != nil {
			t.Fatal(err)
		}
	}
	c.Close()
	if len(s.groups) != 1 || len(s.groups[0]) != 3 || s.whys[0] != ReasonFull {
		t.Fatalf("groups %v whys %v", s.groups, s.whys)
	}
	for i, v := range s.groups[0] {
		if v != i {
			t.Fatalf("submission order lost: %v", s.groups[0])
		}
	}
}

// TestCoalescerTimeout pins the delay trigger: a lone submission launches
// after MaxDelay with ReasonTimeout.
func TestCoalescerTimeout(t *testing.T) {
	s := &sink{}
	done := make(chan struct{})
	c := New[int](Config{MaxBatch: 8, MaxDelay: 5 * time.Millisecond},
		func(key string, items []int, why Reason) {
			s.run(key, items, why)
			close(done)
		})
	if err := c.Submit("k", 42); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("timeout launch never fired")
	}
	c.Close()
	if len(s.groups) != 1 || s.whys[0] != ReasonTimeout || s.groups[0][0] != 42 {
		t.Fatalf("groups %v whys %v", s.groups, s.whys)
	}
}

// TestCoalescerKeys pins that different keys never share a group.
func TestCoalescerKeys(t *testing.T) {
	s := &sink{}
	c := New[int](Config{MaxBatch: 2, MaxDelay: time.Hour}, s.run)
	c.Submit("a", 1)
	c.Submit("b", 2)
	c.Submit("a", 3)
	c.Submit("b", 4)
	c.Close()
	if len(s.groups) != 2 {
		t.Fatalf("want 2 groups, got %v", s.groups)
	}
	for i, g := range s.groups {
		if len(g) != 2 {
			t.Errorf("group %d (%s): %v", i, s.keys[i], g)
		}
	}
}

// TestCoalescerImmediate pins that MaxBatch <= 1 or MaxDelay <= 0 degrade
// to immediate singleton launches (batching off).
func TestCoalescerImmediate(t *testing.T) {
	for _, cfg := range []Config{
		{MaxBatch: 1, MaxDelay: time.Hour},
		{MaxBatch: 8, MaxDelay: 0},
	} {
		s := &sink{}
		c := New[int](cfg, s.run)
		c.Submit("k", 1)
		c.Submit("k", 2)
		c.Close()
		if len(s.groups) != 2 {
			t.Errorf("cfg %+v: want 2 singleton launches, got %v", cfg, s.groups)
		}
		for _, why := range s.whys {
			if why != ReasonImmediate {
				t.Errorf("cfg %+v: reason %s", cfg, why)
			}
		}
	}
}

// TestCoalescerClose pins the drain contract: Close flushes pending groups
// (ReasonFlush), waits for them, and rejects later submissions.
func TestCoalescerClose(t *testing.T) {
	s := &sink{}
	c := New[int](Config{MaxBatch: 8, MaxDelay: time.Hour}, s.run)
	c.Submit("k", 1)
	c.Submit("k", 2)
	if got := c.Pending(); got != 2 {
		t.Fatalf("Pending = %d, want 2", got)
	}
	c.Close()
	if len(s.groups) != 1 || s.whys[0] != ReasonFlush || len(s.groups[0]) != 2 {
		t.Fatalf("groups %v whys %v", s.groups, s.whys)
	}
	if err := c.Submit("k", 3); err != ErrClosed {
		t.Fatalf("Submit after Close: %v", err)
	}
}

// TestCoalescerConcurrent hammers one key from many goroutines under the
// race detector: every submission must land in exactly one group and group
// sizes must never exceed MaxBatch.
func TestCoalescerConcurrent(t *testing.T) {
	s := &sink{}
	c := New[int](Config{MaxBatch: 4, MaxDelay: time.Millisecond}, s.run)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c.Submit("k", i)
		}(i)
	}
	wg.Wait()
	c.Close()
	seen := map[int]bool{}
	for _, g := range s.groups {
		if len(g) > 4 {
			t.Errorf("group over MaxBatch: %v", g)
		}
		for _, v := range g {
			if seen[v] {
				t.Errorf("item %d launched twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != n {
		t.Errorf("launched %d of %d items", len(seen), n)
	}
}

// TestCoalescerCloseRaceExactlyOnce races Submit against Close from many
// goroutines, repeatedly, under the race detector. The contract it pins is
// the shutdown half of coalescing: every submission that was ACCEPTED
// (Submit returned nil) is delivered to run exactly once — the closing
// flush neither drops a parked item nor launches its group twice — and
// every rejected submission got ErrClosed, nothing else.
func TestCoalescerCloseRaceExactlyOnce(t *testing.T) {
	const n = 32
	for round := 0; round < 25; round++ {
		var mu sync.Mutex
		delivered := map[int]int{}
		c := New[int](Config{MaxBatch: 4, MaxDelay: time.Hour}, func(key string, items []int, why Reason) {
			mu.Lock()
			for _, v := range items {
				delivered[v]++
			}
			mu.Unlock()
		})
		accepted := make([]bool, n)
		start := make(chan struct{})
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				<-start
				switch err := c.Submit("k", i); err {
				case nil:
					accepted[i] = true
				case ErrClosed:
				default:
					t.Errorf("round %d: Submit returned %v", round, err)
				}
			}(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			c.Close()
		}()
		close(start)
		wg.Wait()
		c.Close() // idempotent, and guarantees every launched run finished

		mu.Lock()
		for i := 0; i < n; i++ {
			if accepted[i] && delivered[i] != 1 {
				t.Fatalf("round %d: accepted item %d delivered %d times", round, i, delivered[i])
			}
			if !accepted[i] && delivered[i] != 0 {
				t.Fatalf("round %d: rejected item %d delivered %d times", round, i, delivered[i])
			}
		}
		mu.Unlock()
	}
}
