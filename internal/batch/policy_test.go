package batch

import (
	"sync"
	"testing"
	"time"
)

// TestPolicyHookPerKey pins the Decide hook: each key gets the policy the
// hook returns — an immediate key launches singletons while a batched key
// coalesces, under one coalescer.
func TestPolicyHookPerKey(t *testing.T) {
	s := &sink{}
	c := New[int](Config{
		Decide: func(key string) Policy {
			if key == "cold" {
				return Policy{MaxBatch: 1}
			}
			return Policy{MaxBatch: 2, MaxDelay: time.Hour}
		},
	}, s.run)
	c.Submit("cold", 1)
	c.Submit("hot", 2)
	c.Submit("cold", 3)
	c.Submit("hot", 4)
	c.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	byKey := map[string][]int{}
	for i, g := range s.groups {
		byKey[s.keys[i]] = append(byKey[s.keys[i]], len(g))
		switch s.keys[i] {
		case "cold":
			if s.whys[i] != ReasonImmediate {
				t.Errorf("cold launch reason %s, want immediate", s.whys[i])
			}
		case "hot":
			if s.whys[i] != ReasonFull {
				t.Errorf("hot launch reason %s, want full", s.whys[i])
			}
		}
	}
	if got := byKey["cold"]; len(got) != 2 || got[0] != 1 || got[1] != 1 {
		t.Errorf("cold launches %v, want two singletons", got)
	}
	if got := byKey["hot"]; len(got) != 1 || got[0] != 2 {
		t.Errorf("hot launches %v, want one pair", got)
	}
}

// TestPolicyHookShrinkLaunchesPending pins the mid-group shrink: a policy
// that drops below a pending group's size launches the group at the next
// arrival instead of stranding it behind a stale cap.
func TestPolicyHookShrinkLaunchesPending(t *testing.T) {
	s := &sink{}
	cap := 8
	var mu sync.Mutex
	c := New[int](Config{
		Decide: func(key string) Policy {
			mu.Lock()
			defer mu.Unlock()
			return Policy{MaxBatch: cap, MaxDelay: time.Hour}
		},
	}, s.run)
	c.Submit("k", 1)
	c.Submit("k", 2)
	mu.Lock()
	cap = 2 // the controller cooled the key while two lanes sat parked
	mu.Unlock()
	c.Submit("k", 3)
	c.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.groups) != 1 || len(s.groups[0]) != 3 || s.whys[0] != ReasonShrink {
		t.Fatalf("groups %v whys %v: the shrunk cap must launch the pending group with ReasonShrink", s.groups, s.whys)
	}
}

// TestPolicyHookJoinsPendingGroupWhenImmediate pins that an "immediate"
// decision still joins an already-pending group rather than jumping the
// queue: lane-mates are free throughput, and ordering is preserved.
func TestPolicyHookJoinsPendingGroupWhenImmediate(t *testing.T) {
	s := &sink{}
	hot := true
	var mu sync.Mutex
	c := New[int](Config{
		Decide: func(key string) Policy {
			mu.Lock()
			defer mu.Unlock()
			if hot {
				return Policy{MaxBatch: 3, MaxDelay: time.Hour}
			}
			return Policy{MaxBatch: 1}
		},
	}, s.run)
	c.Submit("k", 1)
	mu.Lock()
	hot = false
	mu.Unlock()
	// The cooled policy (MaxBatch 1) joins the parked lane and, at cap,
	// launches both together.
	c.Submit("k", 2)
	c.Close()

	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.groups) != 1 || len(s.groups[0]) != 2 {
		t.Fatalf("groups %v: cooled arrival must join and launch the pending group", s.groups)
	}
	if s.groups[0][0] != 1 || s.groups[0][1] != 2 {
		t.Fatalf("submission order lost: %v", s.groups[0])
	}
}

// TestPolicyHookConcurrentAccounting is the launch-reason ledger under a
// concurrent hammer with a dynamic policy attached: every launch carries
// exactly one reason, so the per-reason counts must sum to the number of
// launches, and every accepted item is delivered exactly once — including
// the lanes Close drains.
func TestPolicyHookConcurrentAccounting(t *testing.T) {
	var mu sync.Mutex
	launches := 0
	byReason := map[Reason]int{}
	delivered := map[int]int{}
	c := New[int](Config{
		Decide: func(key string) Policy {
			// Key-dependent: one immediate key, one batching key — both
			// hammered at once.
			if key == "cold" {
				return Policy{MaxBatch: 1}
			}
			return Policy{MaxBatch: 4, MaxDelay: time.Millisecond}
		},
	}, func(key string, items []int, why Reason) {
		mu.Lock()
		launches++
		byReason[why]++
		for _, v := range items {
			delivered[v]++
		}
		mu.Unlock()
	})

	const n = 200
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := "hot"
			if i%5 == 0 {
				key = "cold"
			}
			if err := c.Submit(key, i); err != nil {
				t.Errorf("submit %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	c.Close()

	mu.Lock()
	defer mu.Unlock()
	total := 0
	for _, v := range byReason {
		total += v
	}
	if total != launches {
		t.Fatalf("launch reasons sum to %d, launches = %d (%v)", total, launches, byReason)
	}
	for i := 0; i < n; i++ {
		if delivered[i] != 1 {
			t.Fatalf("item %d delivered %d times", i, delivered[i])
		}
	}
	if byReason[ReasonImmediate] < n/5 {
		t.Fatalf("immediate launches %d, want at least the %d cold submissions", byReason[ReasonImmediate], n/5)
	}
}
