package cluster

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"lbmm/internal/dense"
)

// wireBatch is the exported gob form of CompiledBatch. The dense programs
// carry their own GobEncode/GobDecode, so the batch only records which of
// the two routines the clustering used.
type wireBatch struct {
	Strassen *dense.CompiledStrassenProgram
	Cube     *dense.CompiledCubeProgram
}

// GobEncode implements gob.GobEncoder so compiled phase-1 batches can be
// written into the persistent plan store and restored without re-running
// the Lemma 4.13 clustering or the dense planning.
func (cb *CompiledBatch) GobEncode() ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&wireBatch{Strassen: cb.strassen, Cube: cb.cube}); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// GobDecode implements gob.GobDecoder.
func (cb *CompiledBatch) GobDecode(data []byte) error {
	var w wireBatch
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&w); err != nil {
		return err
	}
	if w.Strassen == nil && w.Cube == nil {
		return fmt.Errorf("cluster: decode batch: empty batch (no cube or strassen program)")
	}
	cb.strassen, cb.cube = w.Strassen, w.Cube
	return nil
}

// ValidateRefs checks every slot reference the batch touches against the
// per-node arena sizes it will execute in.
func (cb *CompiledBatch) ValidateRefs(sizes []int32) error {
	if err := cb.strassen.ValidateRefs(sizes); err != nil {
		return err
	}
	return cb.cube.ValidateRefs(sizes)
}
