package cluster

import (
	"math/rand"
	"testing"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/vnet"
)

func randomSupport(rng *rand.Rand, n, nnz int) *matrix.Support {
	entries := make([][2]int, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return matrix.NewSupport(n, entries)
}

func randomInstance(rng *rand.Rand, n, nnz int) *graph.Instance {
	return graph.NewInstance(n,
		randomSupport(rng, n, nnz), randomSupport(rng, n, nnz), randomSupport(rng, n, nnz))
}

func TestFindClusterDensePocket(t *testing.T) {
	// A complete d×d×d pocket plus noise: the greedy extraction must find a
	// cluster containing (a large part of) the pocket.
	n, d := 32, 4
	var ae, be, xe [][2]int
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			ae = append(ae, [2]int{i, j})
			be = append(be, [2]int{j, i}) // all pairs within [0,d)
			xe = append(xe, [2]int{i, j})
		}
	}
	// Noise far away.
	rng := rand.New(rand.NewSource(3))
	for l := 0; l < 10; l++ {
		ae = append(ae, [2]int{d + rng.Intn(n-d), d + rng.Intn(n-d)})
	}
	inst := graph.NewInstance(n,
		matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe))
	tris := inst.Triangles()
	pocket := d * d * d
	if len(tris) < pocket {
		t.Fatalf("construction: %d triangles < pocket %d", len(tris), pocket)
	}
	got, ok := FindCluster(tris, n, d, nil)
	if !ok {
		t.Fatal("no cluster found")
	}
	if len(got.Tris) < pocket/2 {
		t.Errorf("greedy cluster has %d of %d pocket triangles", len(got.Tris), pocket)
	}
	if !got.Cluster.Valid(d) {
		t.Error("cluster is not valid")
	}
}

func TestExtractBatchDisjointAndConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n, d := 24, 3
	inst := randomInstance(rng, n, 5*n)
	tris := inst.Triangles()
	batch, rest := ExtractBatch(tris, n, d, 1)
	// Clusters pairwise disjoint per side.
	seenI := map[int32]bool{}
	seenJ := map[int32]bool{}
	seenK := map[int32]bool{}
	total := 0
	for _, a := range batch.Clusters {
		if !a.Cluster.Valid(d) {
			t.Fatal("invalid cluster in batch")
		}
		for _, v := range a.Cluster.I {
			if seenI[v] {
				t.Fatal("I nodes overlap across clusters")
			}
			seenI[v] = true
		}
		for _, v := range a.Cluster.J {
			if seenJ[v] {
				t.Fatal("J nodes overlap")
			}
			seenJ[v] = true
		}
		for _, v := range a.Cluster.K {
			if seenK[v] {
				t.Fatal("K nodes overlap")
			}
			seenK[v] = true
		}
		total += len(a.Tris)
	}
	if total+len(rest) != len(tris) {
		t.Fatalf("batch loses triangles: %d + %d != %d", total, len(rest), len(tris))
	}
	if batch.Size() != total {
		t.Error("Size() wrong")
	}
	// Assigned sets and residual must partition tris (no duplicates).
	seen := map[graph.Triangle]int{}
	for _, a := range batch.Clusters {
		for _, tr := range a.Tris {
			seen[tr]++
		}
	}
	for _, tr := range rest {
		seen[tr]++
	}
	for tr, cnt := range seen {
		if cnt != 1 {
			t.Fatalf("triangle %v appears %d times", tr, cnt)
		}
	}
}

func TestPartitionTerminatesAndPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n, d := 30, 3
	inst := randomInstance(rng, n, 6*n)
	tris := inst.Triangles()
	batches, rest := Partition(tris, n, d, PartitionOpts{MinGain: 2, TargetResidual: 0})
	total := len(rest)
	for _, b := range batches {
		total += b.Size()
	}
	if total != len(tris) {
		t.Fatalf("partition loses triangles: %d != %d", total, len(tris))
	}
	// With MinGain 2, every cluster in every batch carries ≥ 2 triangles.
	for _, b := range batches {
		for _, a := range b.Clusters {
			if len(a.Tris) < 2 {
				t.Fatal("undersized cluster accepted")
			}
		}
	}
	// MaxBatches honoured.
	b1, _ := Partition(tris, n, d, PartitionOpts{MinGain: 1, TargetResidual: 0, MaxBatches: 1})
	if len(b1) > 1 {
		t.Error("MaxBatches ignored")
	}
}

func TestMaskProductExact(t *testing.T) {
	// Exact: a full pocket.
	var tris []graph.Triangle
	for i := int32(0); i < 2; i++ {
		for j := int32(0); j < 2; j++ {
			for k := int32(0); k < 2; k++ {
				tris = append(tris, graph.Triangle{I: i, J: j, K: k})
			}
		}
	}
	if !maskProductExact(Assigned{Tris: tris}) {
		t.Error("full pocket must be exact")
	}
	// Dropping one triangle whose pairs all remain active breaks exactness.
	if maskProductExact(Assigned{Tris: tris[:len(tris)-1]}) {
		t.Error("punctured pocket must be inexact")
	}
	// A single triangle is exact.
	if !maskProductExact(Assigned{Tris: tris[:1]}) {
		t.Error("singleton must be exact")
	}
}

// runBatchesAndVerify processes the FULL triangle set of an instance purely
// with clustered batches (TargetResidual 0, MinGain 1 — every triangle ends
// in some cluster or remains; remaining ones go into singleton batches via
// a final sweep) and checks the product.
func TestRunBatchesCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for _, r := range []ring.Semiring{ring.Counting{}, ring.MinPlus{}, ring.NewGFp(1009), ring.Real{}} {
		for trial := 0; trial < 3; trial++ {
			n := 18
			d := 3
			inst := randomInstance(rng, n, 4*n)
			tris := inst.Triangles()
			batches, rest := Partition(tris, n, d, PartitionOpts{MinGain: 1, TargetResidual: 0})

			a := matrix.Random(inst.Ahat, r, int64(trial))
			b := matrix.Random(inst.Bhat, r, int64(trial+9))
			m := lbm.New(n, r)
			l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
			lbm.LoadInputs(m, l, a, b)
			lbm.ZeroOutputs(m, l, inst.Xhat)
			net := vnet.Roles(n)
			if _, err := RunBatches(m, net, n, l, batches); err != nil {
				t.Fatal(err)
			}
			// Expected: only the batched triangles processed.
			want := matrix.NewSparse(n, r)
			for i, row := range inst.Xhat.Rows {
				for _, k := range row {
					want.Set(i, int(k), r.Zero())
				}
			}
			for _, bt := range batches {
				for _, as := range bt.Clusters {
					for _, tr := range as.Tris {
						want.Add(int(tr.I), int(tr.K), r.Mul(a.Get(int(tr.I), int(tr.J)), b.Get(int(tr.J), int(tr.K))))
					}
				}
			}
			got, err := lbm.CollectX(m, l, inst.Xhat)
			if err != nil {
				t.Fatal(err)
			}
			if !matrix.Equal(got, want) {
				t.Fatalf("%s: clustered batches processed wrong set (rest=%d)", r.Name(), len(rest))
			}
		}
	}
}

func TestRunBatchUsesStrassenOverFields(t *testing.T) {
	// First batch over a field: its clusters' mask products are exact by
	// construction, so at least one Strassen cluster should appear when a
	// dense pocket exists.
	n, d := 16, 4
	var ae, be, xe [][2]int
	for i := 0; i < d; i++ {
		for j := 0; j < d; j++ {
			ae = append(ae, [2]int{i, j})
			be = append(be, [2]int{i, j})
			xe = append(xe, [2]int{i, j})
		}
	}
	inst := graph.NewInstance(n,
		matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe))
	tris := inst.Triangles()
	batch, _ := ExtractBatch(tris, n, d, 1)
	if len(batch.Clusters) == 0 {
		t.Fatal("no clusters extracted")
	}

	r := ring.NewGFp(997)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	m := lbm.New(n, r)
	l := lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	net := vnet.Roles(n)
	st, err := RunBatch(m, net, n, l, batch)
	if err != nil {
		t.Fatal(err)
	}
	if st.StrassenClusters == 0 {
		t.Error("field batch used no Strassen clusters")
	}
	vnet.CleanupStaging(m)
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		t.Fatal(err)
	}
	want := matrix.NewSparse(n, r)
	for i, row := range inst.Xhat.Rows {
		for _, k := range row {
			want.Set(i, int(k), r.Zero())
		}
	}
	for _, as := range batch.Clusters {
		for _, tr := range as.Tris {
			want.Add(int(tr.I), int(tr.K), r.Mul(a.Get(int(tr.I), int(tr.J)), b.Get(int(tr.J), int(tr.K))))
		}
	}
	if !matrix.Equal(got, want) {
		t.Fatal("strassen batch computed wrong products")
	}
}

func TestFindClusterSampledAtLeastGreedy(t *testing.T) {
	// By construction the sampled strategy returns something at least as
	// dense as the greedy pass.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 15; trial++ {
		n, d := 24, 3
		inst := randomInstance(rng, n, 5*n)
		tris := inst.Triangles()
		if len(tris) == 0 {
			continue
		}
		greedy, gok := FindCluster(tris, n, d, nil)
		sampled, sok := FindClusterSampled(tris, n, d, nil, 12, int64(trial))
		if gok != sok && gok {
			t.Fatal("sampled missed a cluster greedy found")
		}
		if sok && len(sampled.Tris) < len(greedy.Tris) {
			t.Fatalf("sampled (%d) worse than greedy (%d)", len(sampled.Tris), len(greedy.Tris))
		}
		if sok && !sampled.Cluster.Valid(d) {
			t.Fatal("invalid sampled cluster")
		}
	}
}

func TestSampledDeterministicForSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	inst := randomInstance(rng, 30, 120)
	tris := inst.Triangles()
	a1, _ := FindClusterSampled(tris, 30, 3, nil, 10, 99)
	a2, _ := FindClusterSampled(tris, 30, 3, nil, 10, 99)
	if len(a1.Tris) != len(a2.Tris) {
		t.Fatal("sampled extraction not deterministic for fixed seed")
	}
}
