// Package cluster implements the clustering machinery of the paper's phase
// 1 (§4.2): finding dense clusters in the triangle set (Lemma 4.7),
// partitioning the triangles into clustered batches plus a residual
// (Lemmas 4.9 and 4.11), and executing a clustered batch by running a dense
// multiplication per cluster in parallel (Lemma 2.1).
//
// The existence lemmas are proved by counting arguments; any constructive
// extraction is legitimate because preprocessing is free in the supported
// model (the support is known in advance). We use a greedy extraction that
// repeatedly picks the d most triangle-loaded nodes per side; its achieved
// densities are measured, and the driver falls through to phase 2 when
// extraction stalls — exactly the paper's control flow.
package cluster

import (
	"math/rand"
	"sort"

	"lbmm/internal/graph"
)

// Assigned couples a cluster with the exact triangle set it must process.
type Assigned struct {
	Cluster graph.Cluster
	Tris    []graph.Triangle
}

// Batch is one clustering 𝒫_i: pairwise-disjoint clusters processed in
// parallel.
type Batch struct {
	Clusters []Assigned
}

// Size returns the number of triangles the batch processes.
func (b *Batch) Size() int {
	total := 0
	for _, a := range b.Clusters {
		total += len(a.Tris)
	}
	return total
}

// topNodes returns up to d node indices with the highest counts, ignoring
// excluded and zero-count nodes, ordered by decreasing count.
func topNodes(counts map[int32]int, excluded map[int32]bool, d int) []int32 {
	type nc struct {
		node int32
		cnt  int
	}
	var all []nc
	for node, cnt := range counts {
		if cnt > 0 && !excluded[node] {
			all = append(all, nc{node, cnt})
		}
	}
	sort.Slice(all, func(a, b int) bool {
		if all[a].cnt != all[b].cnt {
			return all[a].cnt > all[b].cnt
		}
		return all[a].node < all[b].node
	})
	if len(all) > d {
		all = all[:d]
	}
	out := make([]int32, len(all))
	for i, x := range all {
		out[i] = x.node
	}
	return out
}

// padTo extends nodes with arbitrary unused indices from [0, n) so the side
// has exactly d members (the cluster definition of §2.3 requires equal
// sizes d). Returns nil if that is impossible.
func padTo(nodes []int32, excluded map[int32]bool, n, d int) []int32 {
	have := map[int32]bool{}
	for _, v := range nodes {
		have[v] = true
	}
	for cand := int32(0); len(nodes) < d && int(cand) < n; cand++ {
		if !have[cand] && !excluded[cand] {
			nodes = append(nodes, cand)
			have[cand] = true
		}
	}
	if len(nodes) < d {
		return nil
	}
	return nodes
}

// exclusions tracks per-side node sets already used by clusters of the
// current batch.
type exclusions struct {
	i, j, k map[int32]bool
}

func newExclusions() *exclusions {
	return &exclusions{i: map[int32]bool{}, j: map[int32]bool{}, k: map[int32]bool{}}
}

func (e *exclusions) add(c graph.Cluster) {
	for _, v := range c.I {
		e.i[v] = true
	}
	for _, v := range c.J {
		e.j[v] = true
	}
	for _, v := range c.K {
		e.k[v] = true
	}
}

// FindCluster greedily extracts a dense cluster from tris, avoiding the
// excluded nodes: pick the d most loaded I nodes, then the d most loaded J
// nodes among the surviving triangles, then the d most loaded K nodes. All
// three side orders are tried and the densest result returned, with its
// induced triangle set. Returns ok=false if no cluster with at least one
// induced triangle exists (or n < d leaves no room to pad).
func FindCluster(tris []graph.Triangle, n, d int, excl *exclusions) (Assigned, bool) {
	if excl == nil {
		excl = newExclusions()
	}
	best := Assigned{}
	for order := 0; order < 3; order++ {
		cand, ok := greedyOrder(tris, n, d, excl, order)
		if ok && len(cand.Tris) > len(best.Tris) {
			best = cand
		}
	}
	return best, len(best.Tris) > 0
}

func greedyOrder(tris []graph.Triangle, n, d int, excl *exclusions, order int) (Assigned, bool) {
	live := tris
	sides := [3]struct {
		of   func(graph.Triangle) int32
		excl map[int32]bool
	}{
		{func(t graph.Triangle) int32 { return t.I }, excl.i},
		{func(t graph.Triangle) int32 { return t.J }, excl.j},
		{func(t graph.Triangle) int32 { return t.K }, excl.k},
	}
	seq := [3][3]int{{0, 1, 2}, {1, 2, 0}, {2, 0, 1}}[order]
	var chosen [3][]int32
	for _, side := range seq {
		counts := map[int32]int{}
		for _, t := range live {
			counts[sides[side].of(t)]++
		}
		nodes := topNodes(counts, sides[side].excl, d)
		nodes = padTo(nodes, sides[side].excl, n, d)
		if nodes == nil {
			return Assigned{}, false
		}
		chosen[side] = nodes
		in := map[int32]bool{}
		for _, v := range nodes {
			in[v] = true
		}
		filtered := live[:0:0]
		for _, t := range live {
			if in[sides[side].of(t)] {
				filtered = append(filtered, t)
			}
		}
		live = filtered
	}
	c := graph.Cluster{I: chosen[0], J: chosen[1], K: chosen[2]}
	return Assigned{Cluster: c, Tris: c.Induced(tris)}, true
}

// ExtractBatch builds one clustering 𝒫 (Lemma 4.9): repeatedly extract a
// cluster disjoint from the batch's earlier clusters, accepting it while
// its induced set has at least minGain triangles. The accepted triangles
// are removed from the working set; the remainder is returned.
func ExtractBatch(tris []graph.Triangle, n, d, minGain int) (Batch, []graph.Triangle) {
	if minGain < 1 {
		minGain = 1
	}
	var batch Batch
	excl := newExclusions()
	remaining := append([]graph.Triangle(nil), tris...)
	for {
		cand, ok := FindCluster(remaining, n, d, excl)
		if !ok || len(cand.Tris) < minGain {
			break
		}
		batch.Clusters = append(batch.Clusters, cand)
		excl.add(cand.Cluster)
		_, outside := cand.Cluster.Partition(remaining)
		remaining = outside
	}
	return batch, remaining
}

// PartitionOpts controls the Lemma 4.11 partition loop.
type PartitionOpts struct {
	// MinGain is the minimum induced-triangle count for a cluster to be
	// worth a dense batch (the d^{3-4ε}/24 of Lemma 4.7; any positive
	// threshold is correct, only the round budget changes).
	MinGain int
	// TargetResidual stops the loop once at most this many triangles
	// remain (the d^{2-ε}·n of Lemma 4.11).
	TargetResidual int
	// MaxBatches caps the number of clusterings L.
	MaxBatches int
}

// Partition applies ExtractBatch repeatedly (Lemma 4.11): it returns the
// clusterings 𝒫_1..𝒫_L and the residual triangle set 𝒯' for phase 2.
func Partition(tris []graph.Triangle, n, d int, opts PartitionOpts) ([]Batch, []graph.Triangle) {
	if opts.MaxBatches <= 0 {
		opts.MaxBatches = 1 << 20
	}
	var batches []Batch
	remaining := tris
	for len(batches) < opts.MaxBatches && len(remaining) > opts.TargetResidual {
		batch, rest := ExtractBatch(remaining, n, d, opts.MinGain)
		if len(batch.Clusters) == 0 {
			break
		}
		batches = append(batches, batch)
		remaining = rest
	}
	return batches, remaining
}

// ---------------------------------------------------------------------------
// Sampling-based extraction (the alternative strategy to the greedy one)

// FindClusterSampled extracts a cluster by weighted random restarts: each
// attempt samples d nodes per side with probability proportional to their
// triangle counts, and the densest induced set over all restarts wins.
// With enough restarts this approaches the counting argument behind
// Lemma 4.7 more closely than a single greedy pass on adversarial inputs;
// it costs more preprocessing time (free in the model).
func FindClusterSampled(tris []graph.Triangle, n, d int, excl *exclusions, restarts int, seed int64) (Assigned, bool) {
	if excl == nil {
		excl = newExclusions()
	}
	if restarts < 1 {
		restarts = 8
	}
	rng := rand.New(rand.NewSource(seed))
	best := Assigned{}
	for attempt := 0; attempt < restarts; attempt++ {
		cand, ok := sampleOnce(tris, n, d, excl, rng)
		if ok && len(cand.Tris) > len(best.Tris) {
			best = cand
		}
	}
	// The greedy pass competes too; keep whichever is denser.
	if greedy, ok := FindCluster(tris, n, d, excl); ok && len(greedy.Tris) > len(best.Tris) {
		best = greedy
	}
	return best, len(best.Tris) > 0
}

func sampleOnce(tris []graph.Triangle, n, d int, excl *exclusions, rng *rand.Rand) (Assigned, bool) {
	pick := func(count map[int32]int, excluded map[int32]bool) []int32 {
		type wnode struct {
			node int32
			w    int
		}
		var pool []wnode
		total := 0
		for node, c := range count {
			if c > 0 && !excluded[node] {
				pool = append(pool, wnode{node, c})
				total += c
			}
		}
		sort.Slice(pool, func(a, b int) bool { return pool[a].node < pool[b].node })
		var out []int32
		chosen := map[int32]bool{}
		for len(out) < d && len(pool) > 0 && total > 0 {
			x := rng.Intn(total)
			idx := 0
			for ; idx < len(pool); idx++ {
				if x < pool[idx].w {
					break
				}
				x -= pool[idx].w
			}
			nd := pool[idx]
			out = append(out, nd.node)
			chosen[nd.node] = true
			total -= nd.w
			pool = append(pool[:idx], pool[idx+1:]...)
		}
		out = padTo(out, merge(excluded, chosen), n, d)
		return out
	}
	ci := map[int32]int{}
	cj := map[int32]int{}
	ck := map[int32]int{}
	for _, t := range tris {
		ci[t.I]++
		cj[t.J]++
		ck[t.K]++
	}
	is := pick(ci, excl.i)
	js := pick(cj, excl.j)
	ks := pick(ck, excl.k)
	if is == nil || js == nil || ks == nil {
		return Assigned{}, false
	}
	c := graph.Cluster{I: is, J: js, K: ks}
	return Assigned{Cluster: c, Tris: c.Induced(tris)}, true
}

// merge returns the union view of two exclusion sets (read-only use).
func merge(a, b map[int32]bool) map[int32]bool {
	out := make(map[int32]bool, len(a)+len(b))
	for k := range a {
		out[k] = true
	}
	for k := range b {
		out[k] = true
	}
	return out
}
