package cluster

import (
	"fmt"

	"lbmm/internal/dense"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/vnet"
)

// ExecStats reports how a batch was executed.
type ExecStats struct {
	// CubeClusters were processed with the masked 3D semiring routine.
	CubeClusters int
	// StrassenClusters were processed with the distributed Strassen field
	// routine (only clusters whose mask-product closure equals their
	// assigned triangle set — see maskProductExact — are eligible, since
	// Strassen cannot mask individual triples).
	StrassenClusters int
}

// procsOf returns the 3d role virtual nodes of a cluster.
func procsOf(c graph.Cluster, n int) []int32 {
	out := make([]int32, 0, len(c.I)+len(c.J)+len(c.K))
	out = append(out, c.I...)
	for _, j := range c.J {
		out = append(out, int32(n)+j)
	}
	for _, k := range c.K {
		out = append(out, 2*int32(n)+k)
	}
	return out
}

// maskProductExact reports whether the assigned triangle set equals the
// mask product of its own pair projections — the condition under which a
// genuinely dense (bilinear) routine processes exactly the assigned set.
// It always holds for the first batch (the projections come from the full
// support), and can fail for later batches when an earlier batch already
// consumed a triangle whose pairs are still active.
func maskProductExact(a Assigned) bool {
	saRows := map[int32][]int32{}
	sb := map[[2]int32]bool{}
	sx := map[[2]int32]bool{}
	inP := map[graph.Triangle]bool{}
	for _, t := range a.Tris {
		saRows[t.I] = append(saRows[t.I], t.J)
		sb[[2]int32{t.J, t.K}] = true
		sx[[2]int32{t.I, t.K}] = true
		inP[t] = true
	}
	// Dedup SA rows.
	for i, js := range saRows {
		seen := map[int32]bool{}
		out := js[:0]
		for _, j := range js {
			if !seen[j] {
				seen[j] = true
				out = append(out, j)
			}
		}
		saRows[i] = out
	}
	for ik := range sx {
		i, k := ik[0], ik[1]
		for _, j := range saRows[i] {
			if sb[[2]int32{j, k}] && !inP[graph.Triangle{I: i, J: j, K: k}] {
				return false
			}
		}
	}
	return true
}

// pairSupports builds the n×n supports of the assigned set's projections.
func pairSupports(a Assigned, n int) (sa, sb, sx *matrix.Support) {
	var ae, be, xe [][2]int
	for _, t := range a.Tris {
		ae = append(ae, [2]int{int(t.I), int(t.J)})
		be = append(be, [2]int{int(t.J), int(t.K)})
		xe = append(xe, [2]int{int(t.I), int(t.K)})
	}
	return matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe)
}

// PlannedBatch is a clustering with its per-cluster dense jobs already
// planned — reusable across value sets, since plans depend only on the
// support (the supported model's preprocessing as a first-class artifact).
type PlannedBatch struct {
	cubeJobs     []*dense.CubeJob
	strassenJobs []*dense.StrassenJob
	cubeProg     *dense.CubeProgram
	strassenProg *dense.StrassenProgram
	Stats        ExecStats
}

// PlanBatch preprocesses one clustering: every cluster gets a dense batch
// plan on its own 3d virtual processors (Lemma 2.1). When field is true,
// clusters satisfying maskProductExact use distributed Strassen; all other
// clusters (and every cluster over a plain semiring) use the
// triangle-masked cube.
func PlanBatch(net *vnet.Net, n int, l *lbm.Layout, batch Batch, field bool) (*PlannedBatch, error) {
	pb := &PlannedBatch{}
	for ci, a := range batch.Clusters {
		if len(a.Tris) == 0 {
			continue
		}
		if field && maskProductExact(a) {
			sa, sb, sx := pairSupports(a, n)
			job, err := dense.PlanStrassen(net, &dense.StrassenSpec{
				N: n, Procs: procsOf(a.Cluster, n),
				I: a.Cluster.I, J: a.Cluster.J, K: a.Cluster.K,
				SA: sa, SB: sb, SX: sx, Tag: int32(ci % (1 << 15)), Layout: l,
			})
			if err != nil {
				return nil, fmt.Errorf("cluster: strassen plan: %w", err)
			}
			pb.strassenJobs = append(pb.strassenJobs, job)
			pb.Stats.StrassenClusters++
			continue
		}
		job, err := dense.PlanCube(net, &dense.CubeSpec{
			N: n, Procs: procsOf(a.Cluster, n),
			I: a.Cluster.I, J: a.Cluster.J, K: a.Cluster.K, Tris: a.Tris, Layout: l,
		})
		if err != nil {
			return nil, fmt.Errorf("cluster: cube plan: %w", err)
		}
		pb.cubeJobs = append(pb.cubeJobs, job)
		pb.Stats.CubeClusters++
	}
	// Lower the merged per-phase communication to real plans now: plans
	// depend only on the support, so this is free preprocessing and Run does
	// no vnet compilation.
	var err error
	if len(pb.strassenJobs) > 0 {
		if pb.strassenProg, err = dense.PlanStrassenProgram(net, pb.strassenJobs); err != nil {
			return nil, err
		}
	}
	if len(pb.cubeJobs) > 0 {
		if pb.cubeProg, err = dense.PlanCubeProgram(net, pb.cubeJobs); err != nil {
			return nil, err
		}
	}
	return pb, nil
}

// Run executes a planned batch. The two sub-batches run back to back.
func (pb *PlannedBatch) Run(m *lbm.Machine) error {
	if len(pb.strassenJobs) > 0 {
		if err := dense.RunStrassenJobsWith(m, pb.strassenJobs, pb.strassenProg); err != nil {
			return err
		}
	}
	if len(pb.cubeJobs) > 0 {
		if err := dense.RunCubeJobsWith(m, pb.cubeJobs, pb.cubeProg); err != nil {
			return err
		}
	}
	return nil
}

// CompiledBatch is a planned batch lowered to the slot-addressed executable
// form.
type CompiledBatch struct {
	strassen *dense.CompiledStrassenProgram
	cube     *dense.CompiledCubeProgram
}

// Compile lowers a planned batch into the shared slot space.
func (pb *PlannedBatch) Compile(sp *lbm.SlotSpace) (*CompiledBatch, error) {
	cb := &CompiledBatch{}
	var err error
	if len(pb.strassenJobs) > 0 {
		if cb.strassen, err = dense.CompileStrassenProgram(sp, pb.strassenJobs, pb.strassenProg); err != nil {
			return nil, err
		}
	}
	if len(pb.cubeJobs) > 0 {
		if cb.cube, err = dense.CompileCubeProgram(sp, pb.cubeJobs, pb.cubeProg); err != nil {
			return nil, err
		}
	}
	return cb, nil
}

// MemoryBytes estimates the resident size of the compiled batch.
func (cb *CompiledBatch) MemoryBytes() int64 {
	return cb.strassen.MemoryBytes() + cb.cube.MemoryBytes()
}

// AddNodeLoads accumulates the batch's per-node real-message loads.
func (cb *CompiledBatch) AddNodeLoads(send, recv []int64) {
	cb.strassen.AddNodeLoads(send, recv)
	cb.cube.AddNodeLoads(send, recv)
}

// Run executes a compiled batch, mirroring PlannedBatch.Run.
func (cb *CompiledBatch) Run(x *lbm.Exec) error {
	if cb.strassen != nil {
		if err := cb.strassen.Run(x); err != nil {
			return err
		}
	}
	if cb.cube != nil {
		if err := cb.cube.Run(x); err != nil {
			return err
		}
	}
	return nil
}

// RunBatch plans and executes one clustering in a single call.
func RunBatch(m *lbm.Machine, net *vnet.Net, n int, l *lbm.Layout, batch Batch) (ExecStats, error) {
	_, isField := ring.AsField(m.R)
	pb, err := PlanBatch(net, n, l, batch, isField)
	if err != nil {
		return ExecStats{}, err
	}
	m.BeginPhase("cluster/batch")
	defer m.EndPhase()
	m.Counter("clusters", float64(len(batch.Clusters)))
	m.Counter("cube_clusters", float64(pb.Stats.CubeClusters))
	m.Counter("strassen_clusters", float64(pb.Stats.StrassenClusters))
	m.Counter("triangles", float64(batch.Size()))
	var volume float64
	for _, a := range batch.Clusters {
		volume += float64(len(a.Cluster.I)) * float64(len(a.Cluster.J)) * float64(len(a.Cluster.K))
	}
	if volume > 0 {
		// Density = assigned triangles per unit of cluster volume: Lemma
		// 4.7's gain criterion in measurable form.
		m.Counter("density", float64(batch.Size())/volume)
	}
	return pb.Stats, pb.Run(m)
}

// RunBatches executes a sequence of clusterings and sweeps compiler staging
// keys afterwards.
func RunBatches(m *lbm.Machine, net *vnet.Net, n int, l *lbm.Layout, batches []Batch) (ExecStats, error) {
	var total ExecStats
	for _, b := range batches {
		st, err := RunBatch(m, net, n, l, b)
		total.CubeClusters += st.CubeClusters
		total.StrassenClusters += st.StrassenClusters
		if err != nil {
			return total, err
		}
	}
	vnet.CleanupStaging(m)
	return total, nil
}
