package graph

import (
	"math/rand"
	"testing"

	"lbmm/internal/matrix"
)

func randomSupport(rng *rand.Rand, n, nnz int) *matrix.Support {
	entries := make([][2]int, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return matrix.NewSupport(n, entries)
}

// bruteTriangles is the O(n^3) oracle.
func bruteTriangles(inst *Instance) []Triangle {
	var out []Triangle
	for i := 0; i < inst.N; i++ {
		for j := 0; j < inst.N; j++ {
			if !inst.Ahat.Has(i, j) {
				continue
			}
			for k := 0; k < inst.N; k++ {
				if inst.Bhat.Has(j, k) && inst.Xhat.Has(i, k) {
					out = append(out, Triangle{int32(i), int32(j), int32(k)})
				}
			}
		}
	}
	return out
}

func sameTriangles(a, b []Triangle) bool {
	if len(a) != len(b) {
		return false
	}
	SortTriangles(a)
	SortTriangles(b)
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestTrianglesAgainstBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 40; trial++ {
		n := 3 + rng.Intn(12)
		inst := NewInstance(n,
			randomSupport(rng, n, rng.Intn(3*n)),
			randomSupport(rng, n, rng.Intn(3*n)),
			randomSupport(rng, n, rng.Intn(3*n)))
		got := inst.Triangles()
		want := bruteTriangles(inst)
		if !sameTriangles(got, want) {
			t.Fatalf("trial %d: got %v want %v", trial, got, want)
		}
		if cnt := inst.CountTriangles(); cnt != len(want) {
			t.Fatalf("CountTriangles = %d, want %d", cnt, len(want))
		}
	}
}

func TestTrianglesDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	n := 10
	inst := NewInstance(n,
		randomSupport(rng, n, 25), randomSupport(rng, n, 25), randomSupport(rng, n, 25))
	ts := inst.Triangles()
	for i := 1; i < len(ts); i++ {
		a, b := ts[i-1], ts[i]
		if a.I > b.I || (a.I == b.I && a.J > b.J) ||
			(a.I == b.I && a.J == b.J && a.K >= b.K) {
			t.Fatalf("not lexicographic at %d: %v, %v", i, a, b)
		}
	}
}

func TestUSTriangleBound(t *testing.T) {
	// Corollary 4.6: a [US:US:AS] instance has at most d^2·n triangles;
	// Lemma 4.3: each node touches at most d^2.
	rng := rand.New(rand.NewSource(8))
	n, d := 24, 3
	// Build US(d) supports: union of d random permutations.
	perm := func() [][2]int {
		var es [][2]int
		for t := 0; t < d; t++ {
			p := rng.Perm(n)
			for i, j := range p {
				es = append(es, [2]int{i, j})
			}
		}
		return es
	}
	ahat := matrix.NewSupport(n, perm())
	bhat := matrix.NewSupport(n, perm())
	xhat := randomSupport(rng, n, d*n) // AS(d)
	inst := NewInstance(d, ahat, bhat, xhat)
	tris := inst.Triangles()
	if len(tris) > d*d*n {
		t.Fatalf("|T| = %d > d^2 n = %d", len(tris), d*d*n)
	}
	for v, c := range NodeCounts(tris, n) {
		if c > d*d {
			t.Fatalf("node %d touches %d > d^2 triangles", v, c)
		}
	}
	if m := PairMultiplicity(tris); m > d*d {
		t.Fatalf("pair multiplicity %d > d^2", m)
	}
}

func TestNodeAddressing(t *testing.T) {
	n := 7
	for _, side := range []Side{SideI, SideJ, SideK} {
		for idx := 0; idx < n; idx++ {
			v := NodeOf(side, idx, n)
			gs, gi := SideIdx(v, n)
			if gs != side || gi != idx {
				t.Fatalf("roundtrip (%v,%d) -> %d -> (%v,%d)", side, idx, v, gs, gi)
			}
		}
	}
	tr := Triangle{1, 2, 3}
	nodes := tr.Nodes(n)
	if nodes != [3]int{1, 7 + 2, 14 + 3} {
		t.Fatalf("Nodes = %v", nodes)
	}
	if SideI.String() != "I" || SideJ.String() != "J" || SideK.String() != "K" {
		t.Error("Side names")
	}
}

func TestNodeCountsAndMax(t *testing.T) {
	n := 4
	tris := []Triangle{{0, 1, 2}, {0, 1, 3}, {1, 1, 2}}
	counts := NodeCounts(tris, n)
	if counts[0] != 2 || counts[1] != 1 {
		t.Errorf("I counts wrong: %v", counts[:n])
	}
	if counts[n+1] != 3 {
		t.Errorf("J count wrong: %d", counts[n+1])
	}
	if counts[2*n+2] != 2 || counts[2*n+3] != 1 {
		t.Errorf("K counts wrong")
	}
	if MaxNodeCount(tris, n) != 3 {
		t.Errorf("MaxNodeCount = %d", MaxNodeCount(tris, n))
	}
	if MaxNodeCount(nil, n) != 0 {
		t.Error("empty MaxNodeCount")
	}
}

func TestPairMultiplicity(t *testing.T) {
	tris := []Triangle{{0, 1, 2}, {0, 1, 3}, {0, 1, 4}, {5, 1, 4}}
	if m := PairMultiplicity(tris); m != 3 { // pair (I=0,J=1) in 3 triangles
		t.Errorf("PairMultiplicity = %d, want 3", m)
	}
	if m := PairMultiplicity(nil); m != 0 {
		t.Errorf("empty PairMultiplicity = %d", m)
	}
}

func TestClusterInducedPartition(t *testing.T) {
	c := Cluster{I: []int32{0, 1}, J: []int32{2, 3}, K: []int32{4, 5}}
	if !c.Valid(2) || c.Valid(3) {
		t.Error("Valid wrong")
	}
	dup := Cluster{I: []int32{0, 0}, J: []int32{2, 3}, K: []int32{4, 5}}
	if dup.Valid(2) {
		t.Error("duplicate members must be invalid")
	}
	tris := []Triangle{
		{0, 2, 4}, // inside
		{1, 3, 5}, // inside
		{0, 2, 6}, // K outside
		{7, 2, 4}, // I outside
	}
	inside, outside := c.Partition(tris)
	if len(inside) != 2 || len(outside) != 2 {
		t.Fatalf("Partition: %d inside, %d outside", len(inside), len(outside))
	}
	ind := c.Induced(tris)
	if !sameTriangles(ind, inside) {
		t.Error("Induced != Partition inside")
	}
	if len(inside)+len(outside) != len(tris) {
		t.Error("Partition loses triangles")
	}
}

func TestInstanceClassify(t *testing.T) {
	n, d := 8, 2
	diag := make([][2]int, n)
	for i := range diag {
		diag[i] = [2]int{i, i}
	}
	us := matrix.NewSupport(n, diag)
	var dense [][2]int
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			dense = append(dense, [2]int{i, j})
		}
	}
	gm := matrix.NewSupport(n, dense)
	inst := NewInstance(d, us, us, gm)
	a, b, x := inst.Classify()
	if a != matrix.US || b != matrix.US || x != matrix.GM {
		t.Errorf("Classify = %v %v %v", a, b, x)
	}
}

func TestNewInstancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	NewInstance(1, matrix.NewSupport(2, nil), matrix.NewSupport(3, nil), matrix.NewSupport(2, nil))
}
