// Package graph implements the tripartite triangle view of a sparse matrix
// multiplication instance (paper §2.2): indices live in three disjoint sets
// I, J, K of size n; a triangle is a triple {i, j, k} with Â_ij ≠ 0,
// B̂_jk ≠ 0 and X̂_ik ≠ 0. Processing a triangle means accumulating
// A_ij·B_jk into X_ik, and processing all triangles is exactly computing the
// masked product.
package graph

import (
	"fmt"
	"sort"

	"lbmm/internal/matrix"
)

// Instance is a supported sparse multiplication instance: the three
// indicator matrices plus the sparsity parameter d they are measured at.
type Instance struct {
	N    int
	D    int
	Ahat *matrix.Support
	Bhat *matrix.Support
	Xhat *matrix.Support
}

// NewInstance validates dimensions and returns the instance.
func NewInstance(d int, ahat, bhat, xhat *matrix.Support) *Instance {
	if ahat.N != bhat.N || ahat.N != xhat.N {
		panic("graph: support dimension mismatch")
	}
	return &Instance{N: ahat.N, D: d, Ahat: ahat, Bhat: bhat, Xhat: xhat}
}

// Classify returns the sparsity classes of Â, B̂ and X̂ at parameter D.
func (inst *Instance) Classify() (a, b, x matrix.Class) {
	return inst.Ahat.Classify(inst.D), inst.Bhat.Classify(inst.D), inst.Xhat.Classify(inst.D)
}

// Triangle is a support triangle {i, j, k}: the product A_ij·B_jk
// contributes to the output of interest X_ik.
type Triangle struct {
	I, J, K int32
}

func (t Triangle) String() string { return fmt.Sprintf("{%d,%d,%d}", t.I, t.J, t.K) }

// Triangles enumerates every triangle of the instance, in deterministic
// (i, j, k) lexicographic order. For each entry (i, j) of Â the sorted B̂
// row j is merge-intersected with the sorted X̂ row i, so the total work is
// O(Σ_(i,j)∈Â (|B̂ row j| + |X̂ row i|)) plus the output size.
func (inst *Instance) Triangles() []Triangle {
	var out []Triangle
	for i, arow := range inst.Ahat.Rows {
		xrow := inst.Xhat.Rows[i]
		if len(xrow) == 0 {
			continue
		}
		for _, j := range arow {
			brow := inst.Bhat.Rows[j]
			ai, bi := 0, 0
			for ai < len(xrow) && bi < len(brow) {
				switch {
				case xrow[ai] < brow[bi]:
					ai++
				case xrow[ai] > brow[bi]:
					bi++
				default:
					out = append(out, Triangle{I: int32(i), J: j, K: xrow[ai]})
					ai++
					bi++
				}
			}
		}
	}
	return out
}

// CountTriangles returns |T̂| without materializing the set.
func (inst *Instance) CountTriangles() int {
	total := 0
	for i, row := range inst.Ahat.Rows {
		for _, j := range row {
			xrow := inst.Xhat.Rows[i]
			brow := inst.Bhat.Rows[j]
			ai, bi := 0, 0
			for ai < len(xrow) && bi < len(brow) {
				switch {
				case xrow[ai] < brow[bi]:
					ai++
				case xrow[ai] > brow[bi]:
					bi++
				default:
					total++
					ai++
					bi++
				}
			}
		}
	}
	return total
}

// ---------------------------------------------------------------------------
// Node addressing over V = I ∪ J ∪ K

// Side identifies which of the three index sets a node belongs to.
type Side uint8

const (
	SideI Side = iota
	SideJ
	SideK
)

func (s Side) String() string { return [...]string{"I", "J", "K"}[s] }

// NodeOf packs (side, index) into a single id in [0, 3n).
func NodeOf(s Side, idx int, n int) int { return int(s)*n + idx }

// SideIdx unpacks a node id.
func SideIdx(v, n int) (Side, int) { return Side(v / n), v % n }

// Nodes returns the three node ids of a triangle.
func (t Triangle) Nodes(n int) [3]int {
	return [3]int{int(t.I), n + int(t.J), 2*n + int(t.K)}
}

// NodeCounts returns t(v) — the number of triangles touching each node
// v ∈ V, indexed by packed node id (length 3n).
func NodeCounts(tris []Triangle, n int) []int {
	t := make([]int, 3*n)
	for _, tri := range tris {
		t[tri.I]++
		t[n+int(tri.J)]++
		t[2*n+int(tri.K)]++
	}
	return t
}

// MaxNodeCount returns max_v t(v), the imbalance the virtualization of
// Lemma 3.1 removes.
func MaxNodeCount(tris []Triangle, n int) int {
	m := 0
	for _, c := range NodeCounts(tris, n) {
		if c > m {
			m = c
		}
	}
	return m
}

// PairKind identifies the three edge types of the tripartite graph.
type PairKind uint8

const (
	PairIJ PairKind = iota // an entry of Â
	PairJK                 // an entry of B̂
	PairIK                 // an entry of X̂
)

// PairMultiplicity returns the maximum, over all node pairs {u, v}, of the
// number of triangles containing that pair — the parameter m of Lemma 3.1.
func PairMultiplicity(tris []Triangle) int {
	ij := map[[2]int32]int{}
	jk := map[[2]int32]int{}
	ik := map[[2]int32]int{}
	m := 0
	bump := func(mp map[[2]int32]int, a, b int32) {
		k := [2]int32{a, b}
		mp[k]++
		if mp[k] > m {
			m = mp[k]
		}
	}
	for _, t := range tris {
		bump(ij, t.I, t.J)
		bump(jk, t.J, t.K)
		bump(ik, t.I, t.K)
	}
	return m
}

// ---------------------------------------------------------------------------
// Clusters (paper §2.3)

// Cluster is a set U = I' ∪ J' ∪ K' with |I'| = |J'| = |K'| = d.
type Cluster struct {
	I, J, K []int32
}

// Valid reports whether the cluster has the required equal part sizes and no
// duplicate members.
func (c Cluster) Valid(d int) bool {
	if len(c.I) != d || len(c.J) != d || len(c.K) != d {
		return false
	}
	for _, part := range [][]int32{c.I, c.J, c.K} {
		seen := map[int32]bool{}
		for _, v := range part {
			if seen[v] {
				return false
			}
			seen[v] = true
		}
	}
	return true
}

// Induced returns T[U]: the triangles of tris fully contained in the
// cluster.
func (c Cluster) Induced(tris []Triangle) []Triangle {
	inI := int32Set(c.I)
	inJ := int32Set(c.J)
	inK := int32Set(c.K)
	var out []Triangle
	for _, t := range tris {
		if inI[t.I] && inJ[t.J] && inK[t.K] {
			out = append(out, t)
		}
	}
	return out
}

// Partition splits tris into (inside, outside) relative to the cluster,
// preserving order. A triangle is inside only if all three nodes belong to
// the cluster.
func (c Cluster) Partition(tris []Triangle) (inside, outside []Triangle) {
	inI := int32Set(c.I)
	inJ := int32Set(c.J)
	inK := int32Set(c.K)
	for _, t := range tris {
		if inI[t.I] && inJ[t.J] && inK[t.K] {
			inside = append(inside, t)
		} else {
			outside = append(outside, t)
		}
	}
	return inside, outside
}

func int32Set(xs []int32) map[int32]bool {
	s := make(map[int32]bool, len(xs))
	for _, x := range xs {
		s[x] = true
	}
	return s
}

// SortTriangles orders triangles lexicographically by (I, J, K) in place.
func SortTriangles(ts []Triangle) {
	sort.Slice(ts, func(a, b int) bool {
		if ts[a].I != ts[b].I {
			return ts[a].I < ts[b].I
		}
		if ts[a].J != ts[b].J {
			return ts[a].J < ts[b].J
		}
		return ts[a].K < ts[b].K
	})
}
