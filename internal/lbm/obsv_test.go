package lbm

import (
	"strings"
	"testing"

	"lbmm/internal/ring"
)

// TestMarkCarryForwardRegression pins the fix for the classic trace bug:
// labels placed before rounds that end up free (local-only or empty) used to
// vanish or mis-anchor; they must merge into the next counted round's
// boundary, and trailing labels must survive at r == len(PerRound).
func TestMarkCarryForwardRegression(t *testing.T) {
	m := New(4, ring.Counting{}, WithTrace())
	m.Put(0, AKey(0, 0), 1)
	m.Put(1, AKey(1, 1), 2)

	m.Mark("before-free")
	// A local-only round: free, not counted.
	if err := m.RunRound(Round{{From: 0, To: 0, Src: AKey(0, 0), Dst: TKey(0, 0, 0), Op: OpSet}}); err != nil {
		t.Fatal(err)
	}
	m.Mark("before-real")
	if err := m.RunRound(Round{{From: 1, To: 2, Src: AKey(1, 1), Dst: TKey(1, 1, 0), Op: OpSet}}); err != nil {
		t.Fatal(err)
	}
	m.Mark("trailing")

	tr := m.Trace()
	if len(tr.PerRound) != 1 {
		t.Fatalf("PerRound = %v, want one counted round", tr.PerRound)
	}
	if got := tr.Marks[0]; len(got) != 2 || got[0] != "before-free" || got[1] != "before-real" {
		t.Errorf("Marks[0] = %v, want both labels carried to the counted round", got)
	}
	if got := tr.Marks[1]; len(got) != 1 || got[0] != "trailing" {
		t.Errorf("Marks[1] = %v, want the trailing label preserved", got)
	}

	tl := tr.Timeline()
	if !strings.Contains(tl, "before-free+before-real") {
		t.Errorf("timeline lost the merged labels:\n%s", tl)
	}
	if !strings.Contains(tl, "trailing") {
		t.Errorf("timeline lost the trailing label:\n%s", tl)
	}
}

// TestPlanSpanReplay checks that spans attached to a plan by a builder are
// replayed into the collector's phase tree by Run, anchored at the machine's
// current round position.
func TestPlanSpanReplay(t *testing.T) {
	m := New(4, ring.Counting{}, WithTrace())
	m.Put(0, AKey(0, 0), 1)
	m.Put(1, AKey(1, 1), 2)

	// One counted round before the plan shifts its spans.
	if err := m.RunRound(Round{{From: 0, To: 3, Src: AKey(0, 0), Dst: TKey(0, 0, 0), Op: OpSet}}); err != nil {
		t.Fatal(err)
	}

	p := &Plan{}
	p.Append(Round{{From: 1, To: 2, Src: AKey(1, 1), Dst: TKey(1, 1, 0), Op: OpSet}})
	p.Append(Round{{From: 2, To: 0, Src: TKey(1, 1, 0), Dst: TKey(1, 1, 1), Op: OpSet}})
	p.Annotate("planned", map[string]float64{"k": 3})
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}

	root := m.Profile().Root()
	if len(root.Children) != 1 {
		t.Fatalf("spans = %d, want the plan's span replayed", len(root.Children))
	}
	s := root.Children[0]
	if s.Label != "planned" || s.Start != 1 || s.End != 3 {
		t.Errorf("span = %q [%d,%d), want planned [1,3)", s.Label, s.Start, s.End)
	}
	if s.Counters["k"] != 3 {
		t.Errorf("counters = %v", s.Counters)
	}
}

// TestPlanSpanExtendShifts checks that Extend re-anchors the extension's
// spans after the receiver's rounds.
func TestPlanSpanExtendShifts(t *testing.T) {
	p := &Plan{}
	p.Append(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0), Op: OpSet}})
	p.Annotate("first", nil)
	q := &Plan{}
	q.Append(Round{{From: 1, To: 2, Src: AKey(0, 0), Dst: AKey(0, 0), Op: OpSet}})
	q.Annotate("second", nil)
	p.Extend(q)
	if len(p.Spans) != 2 {
		t.Fatalf("spans = %+v", p.Spans)
	}
	if p.Spans[1].Label != "second" || p.Spans[1].Start != 1 || p.Spans[1].End != 2 {
		t.Errorf("extended span = %+v, want second [1,2)", p.Spans[1])
	}
}

// TestPhaseRoundAttribution checks that rounds run inside Begin/EndPhase are
// attributed to the open span and that per-node loads agree with Stats.
func TestPhaseRoundAttribution(t *testing.T) {
	m := New(4, ring.Counting{}, WithTrace())
	m.Put(0, AKey(0, 0), 1)
	m.BeginPhase("work")
	if err := m.RunRound(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0), Op: OpSet}}); err != nil {
		t.Fatal(err)
	}
	m.EndPhase()

	prof := m.Profile()
	s := prof.Root().Children[0]
	if s.Label != "work" || s.Rounds() != 1 {
		t.Errorf("span = %q rounds=%d", s.Label, s.Rounds())
	}
	st := m.Stats()
	for i, v := range prof.SendLoad() {
		if st.SendLoad[i] != v {
			t.Errorf("send load mismatch at %d: stats=%d profile=%d", i, st.SendLoad[i], v)
		}
	}
	for i, v := range prof.RecvLoad() {
		if st.RecvLoad[i] != v {
			t.Errorf("recv load mismatch at %d: stats=%d profile=%d", i, st.RecvLoad[i], v)
		}
	}
}

// benchPlan builds a shift-by-one plan with r rounds on n nodes.
func benchPlan(m *Machine, n, rounds int) *Plan {
	for i := 0; i < n; i++ {
		m.Put(NodeID(i), AKey(int32(i), 0), ring.Value(i))
	}
	p := &Plan{}
	for t := 0; t < rounds; t++ {
		var r Round
		for i := 0; i < n; i++ {
			r = append(r, Send{
				From: NodeID(i), To: NodeID((i + 1) % n),
				Src: AKey(int32(i), 0), Dst: TKey(int32(i), int32(t), 0), Op: OpSet,
			})
		}
		p.Append(r)
	}
	return p
}

// The pair below backs the zero-overhead acceptance check: run
//
//	go test -bench 'Collector' -run - ./internal/lbm/
//
// and compare; the nil-collector path must not measurably regress against
// the pre-observability executor.
func BenchmarkRunNoCollector(b *testing.B) {
	m := New(64, ring.Counting{})
	p := benchPlan(m, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunWithCollector(b *testing.B) {
	m := New(64, ring.Counting{}, WithTrace())
	p := benchPlan(m, 64, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Run(p); err != nil {
			b.Fatal(err)
		}
	}
}
