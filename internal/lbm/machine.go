package lbm

import (
	"encoding/gob"
	"fmt"
	"io"
	"runtime"
	"sort"
	"sync"

	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// NodeID identifies one of the n computers.
type NodeID = int32

// Op says how a delivered payload combines with the destination key.
type Op uint8

const (
	// OpSet stores the payload, replacing any existing value.
	OpSet Op = iota
	// OpAcc adds the payload to the existing value with the ring addition
	// (a free local computation at the receiver; missing values read as the
	// ring Zero).
	OpAcc
	// OpSub subtracts the payload from the existing value. Valid only when
	// the machine's ring is a Field; used by the distributed Strassen
	// multiplier's signed block combinations.
	OpSub
)

// Send is one planned message: node From transmits the value stored under
// Src to node To, which stores it under Dst according to Op. A Send with
// From == To is a free local copy (no communication happens), so routing
// code need not special-case data that is already in place.
type Send struct {
	From, To NodeID
	Src, Dst Key
	Op       Op
}

// Round is the set of messages exchanged in one synchronous round.
type Round []Send

// Plan is a sequence of rounds, precomputed from the support.
type Plan struct {
	Rounds []Round
	// Spans are builder-attached phase annotations over round index ranges
	// of this plan; when the plan runs on a machine with a collector, the
	// executor replays them as phase spans (see Machine.Run).
	Spans []PhaseSpan
}

// PhaseSpan annotates rounds [Start, End) of a plan with a builder phase
// and optional structural metrics (κ, tree depth, Δ, …). Start == End marks
// a zero-round phase, which the executor still reports so phases that
// happened to need no communication stay visible.
type PhaseSpan struct {
	Label      string
	Start, End int
	Metrics    map[string]float64
}

// Append adds a round to the plan. Empty rounds are dropped: a round in
// which nobody communicates costs nothing in the model.
func (p *Plan) Append(r Round) {
	if len(r) > 0 {
		p.Rounds = append(p.Rounds, r)
	}
}

// Annotate attaches a phase span covering every round currently in the
// plan. Builders call it on a finished sub-plan; Extend keeps the span
// anchored when plans are composed.
func (p *Plan) Annotate(label string, metrics map[string]float64) {
	p.Spans = append(p.Spans, PhaseSpan{Label: label, Start: 0, End: len(p.Rounds), Metrics: metrics})
}

// Extend appends all rounds of q after the rounds of p (sequential
// composition). Phase spans of q shift with its rounds.
func (p *Plan) Extend(q *Plan) {
	off := len(p.Rounds)
	p.Rounds = append(p.Rounds, q.Rounds...)
	for _, s := range q.Spans {
		s.Start += off
		s.End += off
		p.Spans = append(p.Spans, s)
	}
}

// NumRounds returns the number of (non-empty) rounds in the plan.
func (p *Plan) NumRounds() int { return len(p.Rounds) }

// MergeParallel overlays several plans that use disjoint sets of computers:
// round t of the result is the union of round t of every input. The
// machine's validator still checks the per-node constraints, so an invalid
// overlay (shared computers) is caught at execution time. Phase spans of the
// inputs are carried over, prefixed with the input's position ("p3/label"),
// so overlaid plans stay visible to the observability layer; span endpoints
// are remapped when the union drops empty rounds.
func MergeParallel(plans ...*Plan) *Plan {
	out := &Plan{}
	maxLen := 0
	for _, p := range plans {
		if len(p.Rounds) > maxLen {
			maxLen = len(p.Rounds)
		}
	}
	// outAt[t] is the index in the merged plan of the union round t; a
	// dropped (all-empty) union round maps to the next kept one, so spans
	// over it collapse to zero rounds instead of shifting onto neighbours.
	outAt := make([]int, maxLen+1)
	for t := 0; t < maxLen; t++ {
		outAt[t] = len(out.Rounds)
		var r Round
		for _, p := range plans {
			if t < len(p.Rounds) {
				r = append(r, p.Rounds[t]...)
			}
		}
		out.Append(r)
	}
	outAt[maxLen] = len(out.Rounds)
	for pi, p := range plans {
		for _, s := range p.Spans {
			if s.Start < 0 || s.End < s.Start || s.End > len(p.Rounds) {
				continue // malformed span; validation reports it elsewhere
			}
			out.Spans = append(out.Spans, PhaseSpan{
				Label:   fmt.Sprintf("p%d/%s", pi, s.Label),
				Start:   outAt[s.Start],
				End:     outAt[s.End],
				Metrics: s.Metrics,
			})
		}
	}
	return out
}

// Stats aggregates everything measured about an execution.
type Stats struct {
	// Rounds is the number of communication rounds executed.
	Rounds int
	// Messages is the total number of real (cross-node) messages.
	Messages int64
	// LocalCopies counts From==To sends, which are free in the model.
	LocalCopies int64
	// SendLoad and RecvLoad are per-node totals of real messages. The
	// maximum receive load is itself a lower bound on rounds for this
	// execution, which the lower-bound experiments exploit.
	SendLoad, RecvLoad []int64
	// RoundBytes is the model-level payload volume of each counted round:
	// real messages × 8 bytes (one ring value), indexed by the Rounds
	// counter. It is lane-invariant — a batched execution reports the same
	// per-round bytes as a scalar one — and backend-invariant: loopback and
	// TCP runs of one plan report identical RoundBytes, while the wire cost
	// including framing is measured separately by the transport's net/*
	// counters.
	RoundBytes []int64
	// PeakStore is the maximum number of values simultaneously held by any
	// single node (memory realism: O(d) for the sparse algorithms).
	PeakStore int
}

// MaxSendLoad returns max_v SendLoad[v].
func (s *Stats) MaxSendLoad() int64 { return maxInt64(s.SendLoad) }

// MaxRecvLoad returns max_v RecvLoad[v].
func (s *Stats) MaxRecvLoad() int64 { return maxInt64(s.RecvLoad) }

func maxInt64(xs []int64) int64 {
	var m int64
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Machine is a low-bandwidth machine with N computers over ring R.
type Machine struct {
	N int
	R ring.Semiring
	// Workers sets the execution engine: ≤1 means the deterministic
	// sequential engine, larger values use that many goroutines per round
	// phase. Rounds are natural barriers, mirroring the bulk-synchronous
	// structure of the model.
	Workers int
	// ParBatch is the minimum round size worth parallelizing; smaller
	// rounds run sequentially even under the goroutine engine.
	ParBatch int
	// StoreLimit, when positive, makes the executor fail a round whose
	// deliveries would push any computer's store beyond this many values —
	// an opt-in check of the model's per-computer memory assumption
	// (O(d) for sparse inputs, O(n) for dense ones, §2).
	StoreLimit int

	stores []map[Key]ring.Value
	stats  Stats
	field  ring.Field // non-nil iff R is a Field; required by OpSub
	// collector receives observability events; nil (the default) is the
	// zero-overhead path — every hook is behind a single nil check.
	collector obsv.Collector
	// injector, when non-nil, subjects every round to fault injection (see
	// fault.go); netRound is the global network round counter it is indexed
	// by.
	injector Injector
	netRound int
	// transport, when non-nil, routes every real message of every round
	// through the communication seam (transport.go) and restricts this
	// machine to the stores the transport owns. nil is the original
	// single-process fast path.
	transport Transport

	// round-scoped scratch for O(1) constraint checks
	sentAt, recvAt []int32
	roundStamp     int32
}

// Option configures a Machine.
type Option func(*Machine)

// WithWorkers selects the goroutine engine with w workers.
func WithWorkers(w int) Option { return func(m *Machine) { m.Workers = w } }

// WithAutoWorkers selects the goroutine engine sized to the host CPU.
func WithAutoWorkers() Option {
	return func(m *Machine) { m.Workers = runtime.GOMAXPROCS(0) }
}

// WithParBatch lowers the minimum per-round send count before the Workers
// engine parallelizes (default 4096). Tests use small values to force the
// parallel path on small instances.
func WithParBatch(b int) Option {
	return func(m *Machine) {
		if b > 0 {
			m.ParBatch = b
		}
	}
}

// WithStoreLimit enables the per-computer memory check at the given number
// of simultaneously stored values.
func WithStoreLimit(limit int) Option {
	return func(m *Machine) { m.StoreLimit = limit }
}

// WithCollector attaches an observability collector to a new machine.
func WithCollector(c obsv.Collector) Option {
	return func(m *Machine) { m.collector = c }
}

// SetCollector attaches (or, with nil, detaches) a collector.
func (m *Machine) SetCollector(c obsv.Collector) { m.collector = c }

// Collector returns the attached collector, or nil.
func (m *Machine) Collector() obsv.Collector { return m.collector }

// Profile returns the attached collector as an *obsv.Profile when it is
// one (the WithTrace/EnableTrace default), and nil otherwise.
func (m *Machine) Profile() *obsv.Profile {
	if p, ok := m.collector.(*obsv.Profile); ok {
		return p
	}
	return nil
}

// BeginPhase opens a nested phase span on the collector (free no-op when
// observability is off).
func (m *Machine) BeginPhase(label string) {
	if m.collector != nil {
		m.collector.BeginPhase(label)
	}
}

// EndPhase closes the innermost open phase span.
func (m *Machine) EndPhase() {
	if m.collector != nil {
		m.collector.EndPhase()
	}
}

// Counter adds delta to a named metric on the current phase span.
func (m *Machine) Counter(name string, delta float64) {
	if m.collector != nil {
		m.collector.Counter(name, delta)
	}
}

// New returns a machine with n computers, all stores empty.
func New(n int, r ring.Semiring, opts ...Option) *Machine {
	m := &Machine{
		N:        n,
		R:        r,
		ParBatch: 4096,
		stores:   make([]map[Key]ring.Value, n),
		sentAt:   make([]int32, n),
		recvAt:   make([]int32, n),
	}
	for i := range m.stores {
		m.stores[i] = make(map[Key]ring.Value)
	}
	if f, ok := ring.AsField(r); ok {
		m.field = f
	}
	m.stats.SendLoad = make([]int64, n)
	m.stats.RecvLoad = make([]int64, n)
	for i := range m.sentAt {
		m.sentAt[i] = -1
		m.recvAt[i] = -1
	}
	for _, o := range opts {
		o(m)
	}
	return m
}

// Stats returns a snapshot of the execution statistics so far.
func (m *Machine) Stats() Stats {
	s := m.stats
	s.SendLoad = append([]int64(nil), m.stats.SendLoad...)
	s.RecvLoad = append([]int64(nil), m.stats.RecvLoad...)
	s.RoundBytes = append([]int64(nil), m.stats.RoundBytes...)
	return s
}

// Rounds returns the number of rounds executed so far.
func (m *Machine) Rounds() int { return m.stats.Rounds }

// Get reads the value stored at node under key.
func (m *Machine) Get(node NodeID, k Key) (ring.Value, bool) {
	v, ok := m.stores[node][k]
	return v, ok
}

// MustGet reads a value that must be present.
func (m *Machine) MustGet(node NodeID, k Key) ring.Value {
	v, ok := m.stores[node][k]
	if !ok {
		panic(fmt.Sprintf("lbm: node %d missing key %v", node, k))
	}
	return v
}

// Put stores a value at node. Intended for input loading and free local
// computation; it never moves data between nodes. Under a transport, writes
// to non-owned stores are dropped: every participant drives the same loading
// code and keeps only its own share.
func (m *Machine) Put(node NodeID, k Key, v ring.Value) {
	if m.transport != nil && !m.transport.Owns(node) {
		return
	}
	st := m.stores[node]
	st[k] = v
	if len(st) > m.stats.PeakStore {
		m.stats.PeakStore = len(st)
	}
}

// Acc adds v into the value at node under k (missing reads as Zero). Like
// Put, it is a no-op on stores the transport does not own.
func (m *Machine) Acc(node NodeID, k Key, v ring.Value) {
	if m.transport != nil && !m.transport.Owns(node) {
		return
	}
	st := m.stores[node]
	cur, ok := st[k]
	if !ok {
		cur = m.R.Zero()
	}
	st[k] = m.R.Add(cur, v)
	if len(st) > m.stats.PeakStore {
		m.stats.PeakStore = len(st)
	}
}

// Del removes a key from a node's store (free local computation).
func (m *Machine) Del(node NodeID, k Key) { delete(m.stores[node], k) }

// StoreLen returns the number of values currently held by node.
func (m *Machine) StoreLen(node NodeID) int { return len(m.stores[node]) }

// checkRound validates the model constraints for one round and returns the
// number of real messages, or an error naming the offending send.
func (m *Machine) checkRound(r Round) (int64, error) {
	m.roundStamp++
	stamp := m.roundStamp
	var real int64
	for _, s := range r {
		if s.From < 0 || int(s.From) >= m.N || s.To < 0 || int(s.To) >= m.N {
			return 0, fmt.Errorf("lbm: send %v -> %v out of range (n=%d)", s.From, s.To, m.N)
		}
		if s.Op == OpSub && m.field == nil {
			return 0, fmt.Errorf("lbm: OpSub requires a field, ring %s is not one", m.R.Name())
		}
		if s.From == s.To {
			continue
		}
		if m.sentAt[s.From] == stamp {
			return 0, fmt.Errorf("lbm: node %d sends twice in one round (key %v)", s.From, s.Src)
		}
		if m.recvAt[s.To] == stamp {
			return 0, fmt.Errorf("lbm: node %d receives twice in one round (key %v)", s.To, s.Dst)
		}
		m.sentAt[s.From] = stamp
		m.recvAt[s.To] = stamp
		real++
	}
	return real, nil
}

// RunRound executes one synchronous round: all payloads are read from the
// senders' stores against the round-start state, then delivered. It returns
// an error if the round violates the model — including a StoreLimit
// violation, which is detected against the prospective post-delivery store
// sizes *before* any value is delivered — leaving both stats and stores
// untouched.
func (m *Machine) RunRound(r Round) error {
	if m.transport != nil {
		return m.runRoundVia(r)
	}
	real, err := m.checkRound(r)
	if err != nil {
		return err
	}
	if m.injector != nil {
		if err := m.injectRound(r); err != nil {
			return err
		}
	}
	payloads, err := m.gather(r)
	if err != nil {
		return err
	}
	if m.StoreLimit > 0 {
		if err := m.checkStoreLimit(r); err != nil {
			return err
		}
	}
	m.deliver(r, payloads)
	if real > 0 {
		m.stats.Rounds++
		m.stats.Messages += real
		m.stats.RoundBytes = append(m.stats.RoundBytes, real*valueWireBytes)
		c := m.collector
		var locals int64
		for _, s := range r {
			if s.From != s.To {
				m.stats.SendLoad[s.From]++
				m.stats.RecvLoad[s.To]++
				if c != nil {
					c.OnSend(s.From, s.To)
				}
			} else {
				locals++
			}
		}
		m.stats.LocalCopies += locals
		if c != nil {
			c.OnRound(int(real), int(locals))
		}
	} else if len(r) > 0 {
		// A round of only local copies costs nothing.
		m.stats.LocalCopies += int64(len(r))
	}
	return nil
}

// checkStoreLimit verifies that delivering the round would keep every
// receiver's store within StoreLimit, without mutating anything. Distinct
// new destination keys are counted per node (every Op creates a missing
// destination), so the check sees exactly the post-delivery store sizes.
func (m *Machine) checkStoreLimit(r Round) error {
	type nodeKey struct {
		node NodeID
		k    Key
	}
	var seen map[nodeKey]struct{}
	add := map[NodeID]int{}
	for _, s := range r {
		if m.transport != nil && !m.transport.Owns(s.To) {
			// Non-owned stores live (and are limit-checked) elsewhere.
			continue
		}
		if _, ok := m.stores[s.To][s.Dst]; ok {
			continue
		}
		nk := nodeKey{s.To, s.Dst}
		if seen == nil {
			seen = map[nodeKey]struct{}{}
		} else if _, dup := seen[nk]; dup {
			continue
		}
		seen[nk] = struct{}{}
		add[s.To]++
		if after := len(m.stores[s.To]) + add[s.To]; after > m.StoreLimit {
			return fmt.Errorf("lbm: node %d exceeds the store limit (%d > %d values)",
				s.To, after, m.StoreLimit)
		}
	}
	return nil
}

func (m *Machine) gather(r Round) ([]ring.Value, error) {
	payloads := make([]ring.Value, len(r))
	read := func(lo, hi int) error {
		for idx := lo; idx < hi; idx++ {
			s := r[idx]
			v, ok := m.stores[s.From][s.Src]
			if !ok {
				return fmt.Errorf("lbm: node %d cannot send missing key %v", s.From, s.Src)
			}
			payloads[idx] = v
		}
		return nil
	}
	if m.Workers <= 1 || len(r) < m.ParBatch {
		return payloads, read(0, len(r))
	}
	var wg sync.WaitGroup
	errs := make([]error, m.Workers)
	chunk := (len(r) + m.Workers - 1) / m.Workers
	for w := 0; w < m.Workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(r) {
			hi = len(r)
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			errs[w] = read(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return nil, e
		}
	}
	return payloads, nil
}

func (m *Machine) deliver(r Round, payloads []ring.Value) {
	write := func(lo, hi int) {
		for idx := lo; idx < hi; idx++ {
			s := r[idx]
			st := m.stores[s.To]
			m.applyOp(st, s.Dst, s.Op, payloads[idx])
			if len(st) > m.stats.PeakStore {
				m.stats.PeakStore = len(st)
			}
		}
	}
	// Receivers are unique within a valid round except for local copies;
	// local copies share From==To with at most ... still unique To? A node
	// may appear as To of a local copy and of a real message in the same
	// round. To stay race-free, the parallel engine shards by receiver.
	if m.Workers <= 1 || len(r) < m.ParBatch {
		write(0, len(r))
		return
	}
	var wg sync.WaitGroup
	var peakMu sync.Mutex
	peak := m.stats.PeakStore
	for w := 0; w < m.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localPeak := 0
			for idx := range r {
				s := r[idx]
				if int(s.To)%m.Workers != w {
					continue
				}
				st := m.stores[s.To]
				m.applyOp(st, s.Dst, s.Op, payloads[idx])
				if len(st) > localPeak {
					localPeak = len(st)
				}
			}
			peakMu.Lock()
			if localPeak > peak {
				peak = localPeak
			}
			peakMu.Unlock()
		}(w)
	}
	wg.Wait()
	m.stats.PeakStore = peak
}

// applyOp merges a delivered payload into a store slot.
func (m *Machine) applyOp(st map[Key]ring.Value, dst Key, op Op, payload ring.Value) {
	switch op {
	case OpAcc:
		cur, ok := st[dst]
		if !ok {
			cur = m.R.Zero()
		}
		st[dst] = m.R.Add(cur, payload)
	case OpSub:
		cur, ok := st[dst]
		if !ok {
			cur = m.R.Zero()
		}
		st[dst] = m.field.Sub(cur, payload)
	default:
		st[dst] = payload
	}
}

// Run executes every round of the plan in order. When a collector is
// attached and the plan carries builder phase spans, the spans are replayed
// as phases around the rounds they cover.
func (m *Machine) Run(p *Plan) error {
	if m.collector == nil || len(p.Spans) == 0 {
		for t, r := range p.Rounds {
			if err := m.RunRound(r); err != nil {
				return fmt.Errorf("round %d: %w", t, err)
			}
		}
		return nil
	}
	return m.runSpanned(p)
}

// runSpanned executes a plan while opening and closing its phase spans on
// the collector. Spans must be non-overlapping or properly nested (builders
// produce them that way); they are replayed outermost-first.
func (m *Machine) runSpanned(p *Plan) error {
	return runWithSpans(m.collector, p.Spans, len(p.Rounds), func(t int) error {
		return m.RunRound(p.Rounds[t])
	})
}

// runWithSpans drives a round executor while replaying phase spans on a
// collector. It is shared by the map engine (Machine.runSpanned) and the
// compiled engine (Exec.Run), so both report byte-identical span trees.
func runWithSpans(c obsv.Collector, planSpans []PhaseSpan, rounds int, runRound func(t int) error) error {
	spans := append([]PhaseSpan(nil), planSpans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].Start != spans[j].Start {
			return spans[i].Start < spans[j].Start
		}
		return spans[i].End > spans[j].End
	})
	si := 0
	var stack []PhaseSpan
	closeTo := func(t int) {
		for len(stack) > 0 && stack[len(stack)-1].End <= t {
			c.EndPhase()
			stack = stack[:len(stack)-1]
		}
	}
	emit := func(sp PhaseSpan) {
		c.BeginPhase(sp.Label)
		for _, k := range sortedMetricKeys(sp.Metrics) {
			c.Counter(k, sp.Metrics[k])
		}
	}
	for t := 0; t <= rounds; t++ {
		closeTo(t)
		for si < len(spans) && spans[si].Start == t {
			sp := spans[si]
			si++
			if sp.End <= sp.Start {
				// Zero-round phase: report and close immediately.
				emit(sp)
				c.EndPhase()
				continue
			}
			emit(sp)
			stack = append(stack, sp)
		}
		if t == rounds {
			break
		}
		if err := runRound(t); err != nil {
			closeTo(rounds + 1)
			return fmt.Errorf("round %d: %w", t, err)
		}
	}
	closeTo(rounds + 1)
	return nil
}

func sortedMetricKeys(m map[string]float64) []string {
	if len(m) == 0 {
		return nil
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// LocalAll applies a free local-computation step to every node. The callback
// receives a view restricted to that node. With the goroutine engine the
// nodes are processed in parallel.
func (m *Machine) LocalAll(f func(node NodeID, v *LocalView)) {
	if m.Workers <= 1 {
		for i := 0; i < m.N; i++ {
			lv := LocalView{m: m, node: NodeID(i)}
			f(NodeID(i), &lv)
		}
		m.refreshPeak()
		return
	}
	var wg sync.WaitGroup
	chunk := (m.N + m.Workers - 1) / m.Workers
	for w := 0; w < m.Workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > m.N {
			hi = m.N
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				lv := LocalView{m: m, node: NodeID(i)}
				f(NodeID(i), &lv)
			}
		}(lo, hi)
	}
	wg.Wait()
	m.refreshPeak()
}

func (m *Machine) refreshPeak() {
	for i := range m.stores {
		if len(m.stores[i]) > m.stats.PeakStore {
			m.stats.PeakStore = len(m.stores[i])
		}
	}
}

// LocalView is a node-restricted store handle passed to local steps. Local
// steps must only touch their own node's data; the view makes that the path
// of least resistance.
type LocalView struct {
	m    *Machine
	node NodeID
}

// Node returns the node this view belongs to.
func (v *LocalView) Node() NodeID { return v.node }

// Get reads a local value.
func (v *LocalView) Get(k Key) (ring.Value, bool) { return v.m.Get(v.node, k) }

// Put writes a local value.
func (v *LocalView) Put(k Key, val ring.Value) {
	// Peak tracking happens in LocalAll's refresh; write directly.
	v.m.stores[v.node][k] = val
}

// Acc accumulates into a local value.
func (v *LocalView) Acc(k Key, val ring.Value) {
	st := v.m.stores[v.node]
	cur, ok := st[k]
	if !ok {
		cur = v.m.R.Zero()
	}
	st[k] = v.m.R.Add(cur, val)
}

// Del removes a local value.
func (v *LocalView) Del(k Key) { delete(v.m.stores[v.node], k) }

// Each iterates over the node's current store. Mutating during iteration is
// not allowed; collect keys first.
func (v *LocalView) Each(f func(k Key, val ring.Value)) {
	for k, val := range v.m.stores[v.node] {
		f(k, val)
	}
}

// Ring returns the machine's ring.
func (v *LocalView) Ring() ring.Semiring { return v.m.R }

// ---------------------------------------------------------------------------
// Plan serialization

// PlanFormatVersion tags every serialized plan. Bump it on any change to
// the Plan layout so old bytes fail loudly at decode time instead of
// misdecoding into a structurally wrong (and then misbehaving) plan.
const PlanFormatVersion = 1

// planMagic guards against feeding arbitrary gob streams to DecodePlan.
const planMagic = "lbmm.plan"

// planEnvelope is the on-disk form: a versioned wrapper around the plan.
type planEnvelope struct {
	Magic   string
	Version int
	Plan    Plan
}

// Encode writes the plan in versioned gob form; DecodePlan reads it back.
// Plans are pure data (the supported-model preprocessing), so expensive
// schedules — deep Strassen recursions, big clusterings — can be computed
// once and cached on disk.
func (p *Plan) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(planEnvelope{Magic: planMagic, Version: PlanFormatVersion, Plan: *p})
}

// DecodePlan reads a plan written by Encode and validates it for a machine
// with n computers. Serialized plans cross a trust boundary (disk caches,
// the serving layer), so a decoded plan is never handed to an executor
// unchecked: the version must match, every send must respect the model
// constraints (node IDs in range, one send and one receive per node per
// round), and the phase spans must be sane round ranges.
func DecodePlan(r io.Reader, n int) (*Plan, error) {
	var env planEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("lbm: decode plan: %w", err)
	}
	if env.Magic != planMagic {
		return nil, fmt.Errorf("lbm: decode plan: bad magic %q (not a serialized plan)", env.Magic)
	}
	if env.Version != PlanFormatVersion {
		return nil, fmt.Errorf("lbm: decode plan: format version %d, this build reads only %d",
			env.Version, PlanFormatVersion)
	}
	p := &env.Plan
	if err := ValidatePlan(p, n); err != nil {
		return nil, err
	}
	return p, nil
}

// ValidatePlan statically checks a plan against a machine size: the model
// constraints via AnalyzePlan (out-of-range or negative node IDs, duplicate
// senders or receivers within a round) and well-formed phase spans
// (0 ≤ Start ≤ End ≤ rounds). The executor re-checks constraints round by
// round; validating up front keeps malformed plans out of caches and
// long-lived services entirely.
func ValidatePlan(p *Plan, n int) error {
	if n < 1 {
		return fmt.Errorf("lbm: validate plan: machine size %d", n)
	}
	a := AnalyzePlan(p, n)
	if !a.Valid() {
		return fmt.Errorf("lbm: invalid plan: %s (%d violation(s) total)", a.Violations[0], len(a.Violations))
	}
	for _, s := range p.Spans {
		if s.Start < 0 || s.End < s.Start || s.End > len(p.Rounds) {
			return fmt.Errorf("lbm: invalid plan: span %q covers rounds [%d,%d) of a %d-round plan",
				s.Label, s.Start, s.End, len(p.Rounds))
		}
	}
	return nil
}

// Reset clears all stores and statistics, returning the machine to its
// freshly-constructed state (engine settings are kept). Prepared-plan
// workloads reuse one machine across many value sets without reallocating
// the n stores.
func (m *Machine) Reset() {
	for i := range m.stores {
		clear(m.stores[i])
	}
	m.stats = Stats{
		SendLoad:   m.stats.SendLoad,
		RecvLoad:   m.stats.RecvLoad,
		RoundBytes: m.stats.RoundBytes[:0],
	}
	for i := range m.stats.SendLoad {
		m.stats.SendLoad[i] = 0
		m.stats.RecvLoad[i] = 0
	}
	m.netRound = 0
	if p := m.Profile(); p != nil {
		p.Reset()
	}
}
