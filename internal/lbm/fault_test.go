package lbm

import (
	"errors"
	"testing"

	"lbmm/internal/ring"
)

// scriptInjector is a hand-written injector for exact-position tests: it
// strikes the message at (round, ord) with kind, and straggles the listed
// nodes at straggleRound.
type scriptInjector struct {
	round, ord    int
	kind          FaultKind
	straggleRound int
	stragglers    map[NodeID]bool
}

func (s *scriptInjector) Decide(round, ord int, from, to NodeID) FaultKind {
	if round == s.round && ord == s.ord {
		return s.kind
	}
	return FaultNone
}

func (s *scriptInjector) Straggles(round int, node NodeID) bool {
	return round == s.straggleRound && s.stragglers[node]
}

// faultTestPlan builds a 4-node, 3-network-round plan with a local-copy
// round in the middle (which must NOT advance the network round counter)
// and two real messages per real round.
func faultTestPlan() *Plan {
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0), Op: OpSet},
		{From: 2, To: 3, Src: AKey(2, 0), Dst: TKey(2, 0, 0), Op: OpSet},
	})
	p.Append(Round{ // free local copies only: not a network round
		{From: 1, To: 1, Src: TKey(0, 0, 0), Dst: TKey(0, 0, 1), Op: OpSet},
	})
	p.Append(Round{
		{From: 1, To: 0, Src: TKey(0, 0, 0), Dst: TKey(9, 9, 0), Op: OpSet},
		{From: 3, To: 2, Src: TKey(2, 0, 0), Dst: TKey(9, 9, 0), Op: OpAcc},
	})
	p.Append(Round{
		{From: 0, To: 2, Src: TKey(9, 9, 0), Dst: TKey(8, 8, 0), Op: OpSet},
	})
	return p
}

func loadFaultTestInputs(put func(node NodeID, k Key, v ring.Value)) {
	put(0, AKey(0, 0), 1)
	put(2, AKey(2, 0), 2)
}

// runFaultPlanMap executes the test plan on the map engine under inj.
func runFaultPlanMap(inj Injector) error {
	var opts []Option
	if inj != nil {
		opts = append(opts, WithInjector(inj))
	}
	m := New(4, ring.Counting{}, opts...)
	loadFaultTestInputs(m.Put)
	return m.Run(faultTestPlan())
}

// runFaultPlanCompiled executes the same plan on the compiled engine.
func runFaultPlanCompiled(inj Injector) error {
	cp, err := Compile(faultTestPlan())
	if err != nil {
		return err
	}
	var opts []Option
	if inj != nil {
		opts = append(opts, WithInjector(inj))
	}
	x := NewExec(cp.NumSlots, ring.Counting{}, opts...)
	loadFaultTestInputs(func(node NodeID, k Key, v ring.Value) {
		for slot, key := range cp.Keys[node] {
			if key == k {
				x.PutSlot(SlotRef{Node: node, Slot: int32(slot)}, v)
				return
			}
		}
	})
	return x.Run(cp)
}

// TestFaultDetectionParity drives every fault kind through both engines at
// every (network round, ordinal) position of the test plan and requires
// byte-identical typed detections: same kind, same round, same node.
func TestFaultDetectionParity(t *testing.T) {
	kinds := []FaultKind{FaultDrop, FaultDuplicate, FaultCorrupt, FaultDelay}
	// (round, ord) positions with a real message; round 1 of the plan is
	// local-only, so network rounds are 0, 1, 2 with ords {0,1},{0,1},{0}.
	positions := []struct{ round, ord int }{{0, 0}, {0, 1}, {1, 0}, {1, 1}, {2, 0}}
	for _, k := range kinds {
		for _, pos := range positions {
			inj := &scriptInjector{round: pos.round, ord: pos.ord, kind: k, straggleRound: -1}
			errMap := runFaultPlanMap(inj)
			errComp := runFaultPlanCompiled(inj)
			fm, okm := AsFault(errMap)
			fc, okc := AsFault(errComp)
			if !okm || !okc {
				t.Fatalf("%v@r%d#%d: map err = %v, compiled err = %v (want typed faults)",
					k, pos.round, pos.ord, errMap, errComp)
			}
			if *fm != *fc {
				t.Errorf("%v@r%d#%d: engines disagree: map %+v, compiled %+v", k, pos.round, pos.ord, fm, fc)
			}
			if fm.Kind != k || fm.Round != pos.round {
				t.Errorf("%v@r%d#%d: detected %+v at the wrong position", k, pos.round, pos.ord, fm)
			}
			if fm.Node != fm.To {
				t.Errorf("%v@r%d#%d: fault attributed to node %d, want receiver %d", k, pos.round, pos.ord, fm.Node, fm.To)
			}
		}
	}
}

// TestFaultStragglerAttribution checks straggler masks: the fault names the
// straggling sender, not its receiver, and both engines agree.
func TestFaultStragglerAttribution(t *testing.T) {
	inj := &scriptInjector{round: -1, straggleRound: 1, stragglers: map[NodeID]bool{3: true}}
	errMap := runFaultPlanMap(inj)
	errComp := runFaultPlanCompiled(inj)
	fm, okm := AsFault(errMap)
	fc, okc := AsFault(errComp)
	if !okm || !okc {
		t.Fatalf("map err = %v, compiled err = %v (want typed faults)", errMap, errComp)
	}
	if *fm != *fc {
		t.Errorf("engines disagree: map %+v, compiled %+v", fm, fc)
	}
	if fm.Kind != FaultStraggle || fm.Round != 1 || fm.Node != 3 {
		t.Errorf("straggler fault = %+v, want straggle at network round 1 by node 3", fm)
	}
}

// TestFaultNetRoundSkipsLocalRounds pins the network round numbering: the
// plan's local-copy-only round must not consume a round index, so a fault
// scheduled for network round 2 strikes the plan's *fourth* round.
func TestFaultNetRoundSkipsLocalRounds(t *testing.T) {
	inj := &scriptInjector{round: 2, ord: 0, kind: FaultDrop, straggleRound: -1}
	err := runFaultPlanMap(inj)
	f, ok := AsFault(err)
	if !ok {
		t.Fatalf("err = %v, want a typed fault", err)
	}
	if f.From != 0 || f.To != 2 {
		t.Errorf("network round 2 fault struck message %d→%d, want 0→2 (the fourth plan round)", f.From, f.To)
	}
}

// TestFaultCleanRunUnaffected checks the seam is inert when the injector
// never strikes, and absent entirely when no injector is attached.
func TestFaultCleanRunUnaffected(t *testing.T) {
	quiet := &scriptInjector{round: -1, straggleRound: -1}
	for name, run := range map[string]func(Injector) error{
		"map": runFaultPlanMap, "compiled": runFaultPlanCompiled,
	} {
		if err := run(quiet); err != nil {
			t.Errorf("%s with quiet injector: %v", name, err)
		}
		if err := run(nil); err != nil {
			t.Errorf("%s without injector: %v", name, err)
		}
	}
}

// TestFaultAbortsBeforeStateChange checks that a faulted round mutates
// neither stores nor statistics: the barrier either completes or the run
// stops where it stood.
func TestFaultAbortsBeforeStateChange(t *testing.T) {
	m := New(4, ring.Counting{}, WithInjector(&scriptInjector{round: 1, ord: 0, kind: FaultDrop, straggleRound: -1}))
	loadFaultTestInputs(m.Put)
	err := m.Run(faultTestPlan())
	if !IsFault(err) {
		t.Fatalf("err = %v, want a typed fault", err)
	}
	st := m.Stats()
	if st.Rounds != 1 || st.Messages != 2 {
		t.Errorf("stats after mid-plan fault = %d rounds / %d messages, want 1 / 2 (only the clean round counted)",
			st.Rounds, st.Messages)
	}
	if _, ok := m.Get(0, TKey(9, 9, 0)); ok {
		t.Error("faulted round delivered its payload")
	}
}

// TestFaultErrorsUnwrap checks the error chain survives the executors'
// round wrapping so supervisors can errors.As their way to the fault.
func TestFaultErrorsUnwrap(t *testing.T) {
	err := runFaultPlanMap(&scriptInjector{round: 0, ord: 0, kind: FaultCorrupt, straggleRound: -1})
	if !IsFault(err) {
		t.Fatalf("IsFault = false for %v", err)
	}
	var f *ErrFault
	if !errors.As(err, &f) || f.Kind != FaultCorrupt {
		t.Fatalf("errors.As failed on %v", err)
	}
	if IsFault(nil) {
		t.Error("IsFault matched nil")
	}
	if IsFault(errors.New("plain")) {
		t.Error("IsFault matched a plain error")
	}
}
