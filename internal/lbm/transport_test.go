package lbm

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"lbmm/internal/ring"
)

// compareMachines checks that two map machines hold exactly the same stores
// (restricted, for a partitioned machine, to the nodes it owns).
func compareMachineOwned(t *testing.T, ref, got *Machine) {
	t.Helper()
	for node := range ref.stores {
		if !got.Owns(NodeID(node)) {
			if len(got.stores[node]) != 0 {
				t.Errorf("node %d: partitioned machine holds %d values it does not own", node, len(got.stores[node]))
			}
			continue
		}
		if len(ref.stores[node]) != len(got.stores[node]) {
			t.Errorf("node %d: %d values vs %d", node, len(ref.stores[node]), len(got.stores[node]))
		}
		for k, v := range ref.stores[node] {
			if gv, ok := got.stores[node][k]; !ok || gv != v {
				t.Errorf("node %d key %v: want %v, got (%v,%v)", node, k, v, gv, ok)
			}
		}
	}
}

// TestLoopbackParityMachine holds the loopback transport to bit-identical
// stores and Stats against the nil-transport map engine on random plans.
func TestLoopbackParityMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for trial := 0; trial < 40; trial++ {
		p, loads := randomPlan(rng, 6, 1+rng.Intn(6), true)
		ref, err := runMap(t, p, loads, ring.Real{})
		if err != nil {
			t.Fatalf("trial %d: nil transport: %v", trial, err)
		}
		lb, err := runMap(t, p, loads, ring.Real{}, WithTransport(&Loopback{}))
		if err != nil {
			t.Fatalf("trial %d: loopback: %v", trial, err)
		}
		compareMachineOwned(t, ref, lb)
		if !reflect.DeepEqual(ref.Stats(), lb.Stats()) {
			t.Fatalf("trial %d: stats diverge:\n nil      %+v\n loopback %+v", trial, ref.Stats(), lb.Stats())
		}
	}
}

// TestLoopbackParityExec does the same for the compiled engine, including a
// multi-lane executor.
func TestLoopbackParityExec(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		p, loads := randomPlan(rng, 6, 1+rng.Intn(6), true)
		sp, ref, err := runCompiled(t, p, loads, ring.Real{})
		if err != nil {
			t.Fatalf("trial %d: nil transport: %v", trial, err)
		}
		_, lb, err := runCompiled(t, p, loads, ring.Real{}, WithTransport(&Loopback{}))
		if err != nil {
			t.Fatalf("trial %d: loopback: %v", trial, err)
		}
		sp.EachKey(func(node NodeID, k Key, slot int32) {
			rv, rok := ref.GetSlot(SlotRef{Node: node, Slot: slot})
			lv, lok := lb.GetSlot(SlotRef{Node: node, Slot: slot})
			if rok != lok || rv != lv {
				t.Errorf("trial %d node %d key %v: nil (%v,%v) vs loopback (%v,%v)", trial, node, k, rv, rok, lv, lok)
			}
		})
		if !reflect.DeepEqual(ref.Stats(), lb.Stats()) {
			t.Fatalf("trial %d: stats diverge:\n nil      %+v\n loopback %+v", trial, ref.Stats(), lb.Stats())
		}
	}
}

// TestLoopbackRoundBytes pins the RoundBytes accounting: one value is 8
// bytes, rounds of only local copies are not counted, and the nil and
// loopback paths agree.
func TestLoopbackRoundBytes(t *testing.T) {
	m := New(3, ring.Real{})
	m.Put(0, AKey(0, 0), 7)
	m.Put(1, AKey(1, 1), 8)
	r := Round{
		{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 1, 0), Op: OpSet},
		{From: 1, To: 2, Src: AKey(1, 1), Dst: TKey(0, 2, 0), Op: OpSet},
	}
	if err := m.RunRound(r); err != nil {
		t.Fatal(err)
	}
	if err := m.RunRound(Round{{From: 2, To: 2, Src: TKey(0, 2, 0), Dst: TKey(1, 2, 0), Op: OpSet}}); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if want := []int64{16}; !reflect.DeepEqual(st.RoundBytes, want) {
		t.Fatalf("RoundBytes = %v, want %v", st.RoundBytes, want)
	}
}

// ---------------------------------------------------------------------------
// In-process partitioned transport for testing: P participants over shared
// memory with a real per-round barrier, the semantics dist.Mesh implements
// over sockets.

type testRouter struct {
	mu      sync.Mutex
	cond    *sync.Cond
	ranks   int
	arrived int
	gen     int
	pool    map[NodeID][]ring.Value
	ready   map[NodeID][]ring.Value
}

func newTestRouter(ranks int) *testRouter {
	r := &testRouter{ranks: ranks, pool: map[NodeID][]ring.Value{}}
	r.cond = sync.NewCond(&r.mu)
	return r
}

func (r *testRouter) deliver(sent map[NodeID][]ring.Value) map[NodeID][]ring.Value {
	r.mu.Lock()
	defer r.mu.Unlock()
	gen := r.gen
	for k, v := range sent {
		r.pool[k] = v
	}
	r.arrived++
	if r.arrived == r.ranks {
		r.ready = r.pool
		r.pool = map[NodeID][]ring.Value{}
		r.arrived = 0
		r.gen++
		r.cond.Broadcast()
	} else {
		for gen == r.gen {
			r.cond.Wait()
		}
	}
	return r.ready
}

type testTransport struct {
	router *testRouter
	rank   int
	sent   map[NodeID][]ring.Value
}

func (tt *testTransport) Owns(v NodeID) bool { return int(v)%tt.router.ranks == tt.rank }

func (tt *testTransport) Send(round int, dst NodeID, payload []ring.Value) error {
	if tt.sent == nil {
		tt.sent = map[NodeID][]ring.Value{}
	}
	tt.sent[dst] = payload
	return nil
}

func (tt *testTransport) Deliver(round int) (map[NodeID][]ring.Value, error) {
	sent := tt.sent
	tt.sent = nil
	return tt.router.deliver(sent), nil
}

// TestPartitionedParityMachine runs the map engine split across 3 in-process
// participants and checks that the union of their owned stores and the merge
// of their Stats equal the single-process run.
func TestPartitionedParityMachine(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	const ranks = 3
	for trial := 0; trial < 25; trial++ {
		p, loads := randomPlan(rng, 6, 1+rng.Intn(6), true)
		ref, err := runMap(t, p, loads, ring.Real{})
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		router := newTestRouter(ranks)
		ms := make([]*Machine, ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for rank := 0; rank < ranks; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				m := New(6, ring.Real{}, WithTransport(&testTransport{router: router, rank: rank}))
				for _, l := range loads {
					m.Put(l.node, l.key, l.val) // dropped unless owned
				}
				ms[rank] = m
				errs[rank] = m.Run(p)
			}(rank)
		}
		wg.Wait()
		for rank, err := range errs {
			if err != nil {
				t.Fatalf("trial %d rank %d: %v", trial, rank, err)
			}
		}
		for _, m := range ms {
			compareMachineOwned(t, ref, m)
		}
		merged := MergeStats(ms[0].Stats(), ms[1].Stats(), ms[2].Stats())
		if !reflect.DeepEqual(ref.Stats(), merged) {
			t.Fatalf("trial %d: merged stats diverge:\n single %+v\n merged %+v", trial, ref.Stats(), merged)
		}
	}
}

// TestPartitionedParityExec is the compiled-engine twin of
// TestPartitionedParityMachine, with 2 lanes to cover multi-value payloads.
func TestPartitionedParityExec(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	const ranks, lanes = 3, 2
	for trial := 0; trial < 25; trial++ {
		p, loads := randomPlan(rng, 6, 1+rng.Intn(6), true)
		sp := NewSlotSpace(6)
		for _, l := range loads {
			sp.Slot(l.node, l.key)
		}
		cp, err := CompileInto(sp, p)
		if err != nil {
			t.Fatalf("trial %d: compile: %v", trial, err)
		}
		run := func(opts ...Option) (*Exec, error) {
			x := NewExecBatch(sp.Sizes(), lanes, ring.Real{}, opts...)
			for _, l := range loads {
				for lane := 0; lane < lanes; lane++ {
					x.PutLane(sp.Ref(l.node, l.key), lane, l.val+ring.Value(lane))
				}
			}
			return x, x.Run(cp)
		}
		ref, err := run()
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		router := newTestRouter(ranks)
		xs := make([]*Exec, ranks)
		errs := make([]error, ranks)
		var wg sync.WaitGroup
		for rank := 0; rank < ranks; rank++ {
			wg.Add(1)
			go func(rank int) {
				defer wg.Done()
				xs[rank], errs[rank] = run(WithTransport(&testTransport{router: router, rank: rank}))
			}(rank)
		}
		wg.Wait()
		var stats []Stats
		for rank := 0; rank < ranks; rank++ {
			if errs[rank] != nil {
				t.Fatalf("trial %d rank %d: %v", trial, rank, errs[rank])
			}
			stats = append(stats, xs[rank].Stats())
		}
		sp.EachKey(func(node NodeID, k Key, slot int32) {
			owner := int(node) % ranks
			for lane := 0; lane < lanes; lane++ {
				rv, rok := ref.GetLane(SlotRef{Node: node, Slot: slot}, lane)
				gv, gok := xs[owner].GetLane(SlotRef{Node: node, Slot: slot}, lane)
				if rok != gok || rv != gv {
					t.Errorf("trial %d node %d key %v lane %d: single (%v,%v) vs owner (%v,%v)",
						trial, node, k, lane, rv, rok, gv, gok)
				}
			}
		})
		if merged := MergeStats(stats...); !reflect.DeepEqual(ref.Stats(), merged) {
			t.Fatalf("trial %d: merged stats diverge:\n single %+v\n merged %+v", trial, ref.Stats(), merged)
		}
	}
}

// TestPartitionedFaultIdentity checks that under a shared injector every
// participant aborts with the same typed fault, before any frame is sent —
// the property that keeps a real mesh from stranding peers at the barrier.
func TestPartitionedFaultIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	p, loads := randomPlan(rng, 6, 5, false)
	inj := dropAt{round: 1, ord: 0}
	ref, err := runMap(t, p, loads, ring.Real{}, WithInjector(inj))
	rf, ok := AsFault(err)
	if !ok {
		t.Fatalf("reference run: want fault, got %v", err)
	}
	const ranks = 3
	router := newTestRouter(ranks)
	errs := make([]error, ranks)
	var wg sync.WaitGroup
	for rank := 0; rank < ranks; rank++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			m := New(6, ring.Real{},
				WithTransport(&testTransport{router: router, rank: rank}),
				WithInjector(inj))
			for _, l := range loads {
				m.Put(l.node, l.key, l.val)
			}
			errs[rank] = m.Run(p)
		}(rank)
	}
	wg.Wait()
	for rank, err := range errs {
		f, ok := AsFault(err)
		if !ok {
			t.Fatalf("rank %d: want fault, got %v", rank, err)
		}
		if *f != *rf {
			t.Errorf("rank %d: fault %+v, reference %+v", rank, *f, *rf)
		}
	}
	_ = ref
}

// dropAt drops the ord-th message of one round (test injector).
type dropAt struct{ round, ord int }

func (d dropAt) Decide(round, ord int, from, to NodeID) FaultKind {
	if round == d.round && ord == d.ord {
		return FaultDrop
	}
	return FaultNone
}

func (d dropAt) Straggles(int, NodeID) bool { return false }
