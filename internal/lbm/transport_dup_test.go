package lbm

import (
	"errors"
	"testing"

	"lbmm/internal/ring"
)

// TestLoopbackDuplicateDelivery pins the one-receive-per-round contract at
// the loopback seam: a second payload for an already-stashed destination
// within one round is a typed error, not a silent clobber (the regression
// was Send overwriting the first payload, so a buggy plan's second message
// silently won).
func TestLoopbackDuplicateDelivery(t *testing.T) {
	lb := &Loopback{}
	if err := lb.Send(0, 3, []ring.Value{1}); err != nil {
		t.Fatalf("first send: %v", err)
	}
	err := lb.Send(0, 3, []ring.Value{2})
	if !errors.Is(err, ErrDuplicateDelivery) {
		t.Fatalf("second send to the same destination = %v, want ErrDuplicateDelivery", err)
	}
	// The first payload must survive the rejected duplicate.
	in, derr := lb.Deliver(0)
	if derr != nil {
		t.Fatalf("deliver: %v", derr)
	}
	if len(in) != 1 || len(in[3]) != 1 || in[3][0] != 1 {
		t.Fatalf("round inbox = %v, want node 3 holding the first payload", in)
	}
	// A new round may address the same destination again.
	if err := lb.Send(1, 3, []ring.Value{9}); err != nil {
		t.Fatalf("send in the next round: %v", err)
	}
}
