package lbm

import (
	"strings"
	"testing"

	"lbmm/internal/ring"
)

func TestAnalyzePlanMatchesExecution(t *testing.T) {
	m := New(4, ring.Counting{})
	m.Put(0, AKey(0, 0), 1)
	m.Put(1, AKey(1, 0), 2)
	m.Put(2, AKey(2, 0), 3)
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0)},
		{From: 1, To: 2, Src: AKey(1, 0), Dst: TKey(1, 0, 0)},
		{From: 3, To: 3, Src: AKey(0, 0), Dst: AKey(0, 0)}, // local (3 lacks it, but analysis is static)
	})
	p.Append(Round{
		{From: 2, To: 0, Src: AKey(2, 0), Dst: TKey(2, 0, 0)},
	})
	a := AnalyzePlan(p, 4)
	if !a.Valid() {
		t.Fatalf("violations: %v", a.Violations)
	}
	if a.Rounds != 2 || a.Messages != 3 || a.LocalCopies != 1 || a.MaxRoundSize != 2 {
		t.Errorf("analysis = %+v", a)
	}
	if a.MaxSendLoad() != 1 || a.MaxRecvLoad() != 1 {
		t.Errorf("loads = %d/%d", a.MaxSendLoad(), a.MaxRecvLoad())
	}

	// Execute (after fixing node 3's local source) and compare.
	m.Put(3, AKey(0, 0), 9)
	if err := m.Run(p); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rounds != a.Rounds || st.Messages != a.Messages || st.LocalCopies != a.LocalCopies {
		t.Errorf("executed %+v vs analyzed %+v", st, a)
	}
}

func TestAnalyzePlanFindsViolations(t *testing.T) {
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)},
		{From: 0, To: 2, Src: AKey(0, 1), Dst: AKey(0, 1)},
		{From: 3, To: 2, Src: AKey(3, 0), Dst: AKey(3, 0)},
		{From: 9, To: 0, Src: AKey(9, 0), Dst: AKey(9, 0)},
	})
	a := AnalyzePlan(p, 4)
	if a.Valid() || len(a.Violations) != 3 {
		t.Fatalf("violations = %v", a.Violations)
	}
	joined := strings.Join(a.Violations, ";")
	for _, want := range []string{"sends twice", "receives twice", "out of range"} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing %q in %v", want, a.Violations)
		}
	}
}

func TestTraceTimeline(t *testing.T) {
	m := New(4, ring.Counting{}, WithTrace())
	m.Put(0, AKey(0, 0), 1)
	m.Put(1, AKey(1, 0), 2)
	m.Mark("alpha")
	_ = m.RunRound(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	_ = m.RunRound(Round{{From: 1, To: 2, Src: AKey(1, 0), Dst: TKey(1, 0, 0)}})
	m.Mark("beta")
	_ = m.RunRound(Round{{From: 1, To: 0, Src: AKey(1, 0), Dst: TKey(9, 0, 0)}})
	tr := m.Trace()
	if tr == nil || len(tr.PerRound) != 3 {
		t.Fatalf("trace = %+v", tr)
	}
	out := tr.Timeline()
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta") {
		t.Errorf("timeline missing labels:\n%s", out)
	}
	// A machine without tracing marks freely and returns a nil trace.
	m2 := New(2, ring.Counting{})
	m2.Mark("noop")
	if m2.Trace() != nil {
		t.Error("trace should be nil when disabled")
	}
	var nilTrace *Trace
	if !strings.Contains(nilTrace.Timeline(), "disabled") {
		t.Error("nil trace timeline")
	}
}

func TestSparkShapes(t *testing.T) {
	if spark(nil, 0) != "" {
		t.Error("empty spark")
	}
	s := spark([]int{1, 2, 4, 8}, 8)
	if len([]rune(s)) != 4 {
		t.Errorf("spark %q", s)
	}
	// Long inputs compress to 40 buckets.
	long := make([]int, 200)
	for i := range long {
		long[i] = i
	}
	if got := len([]rune(spark(long, 199))); got != 40 {
		t.Errorf("compressed spark length %d", got)
	}
}

func TestCutTraffic(t *testing.T) {
	p := &Plan{}
	p.Append(Round{
		{From: 0, To: 2, Src: AKey(0, 0), Dst: AKey(0, 0)}, // A -> B
		{From: 3, To: 1, Src: AKey(3, 0), Dst: AKey(3, 0)}, // B -> A
		{From: 0, To: 0, Src: AKey(0, 0), Dst: TKey(0, 0, 0)},
	})
	p.Append(Round{
		{From: 1, To: 0, Src: AKey(3, 0), Dst: TKey(1, 0, 0)}, // A -> A
		{From: 2, To: 3, Src: AKey(0, 0), Dst: TKey(2, 0, 0)}, // B -> B
	})
	alice := map[NodeID]bool{0: true, 1: true}
	ab, ba := CutTraffic(p, alice)
	if ab != 1 || ba != 1 {
		t.Errorf("cut = %d/%d, want 1/1", ab, ba)
	}
}
