package lbm

import (
	"bytes"
	"encoding/gob"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

func TestRunRoundDeliversAndCounts(t *testing.T) {
	m := New(4, ring.Counting{})
	m.Put(0, AKey(0, 1), 5)
	m.Put(1, AKey(1, 2), 7)
	r := Round{
		{From: 0, To: 2, Src: AKey(0, 1), Dst: TKey(0, 0, 0), Op: OpSet},
		{From: 1, To: 3, Src: AKey(1, 2), Dst: TKey(0, 0, 0), Op: OpSet},
	}
	if err := m.RunRound(r); err != nil {
		t.Fatal(err)
	}
	if v, ok := m.Get(2, TKey(0, 0, 0)); !ok || v != 5 {
		t.Errorf("node 2 got %v,%v", v, ok)
	}
	if v, ok := m.Get(3, TKey(0, 0, 0)); !ok || v != 7 {
		t.Errorf("node 3 got %v,%v", v, ok)
	}
	st := m.Stats()
	if st.Rounds != 1 || st.Messages != 2 {
		t.Errorf("stats = %+v", st)
	}
	if st.SendLoad[0] != 1 || st.RecvLoad[2] != 1 || st.RecvLoad[0] != 0 {
		t.Errorf("loads wrong: %v %v", st.SendLoad, st.RecvLoad)
	}
}

func TestRunRoundRejectsDoubleSend(t *testing.T) {
	m := New(4, ring.Counting{})
	m.Put(0, AKey(0, 0), 1)
	m.Put(0, AKey(0, 1), 2)
	r := Round{
		{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)},
		{From: 0, To: 2, Src: AKey(0, 1), Dst: AKey(0, 1)},
	}
	err := m.RunRound(r)
	if err == nil || !strings.Contains(err.Error(), "sends twice") {
		t.Fatalf("err = %v", err)
	}
	if m.Rounds() != 0 {
		t.Error("failed round must not count")
	}
}

func TestRunRoundRejectsDoubleReceive(t *testing.T) {
	m := New(4, ring.Counting{})
	m.Put(0, AKey(0, 0), 1)
	m.Put(1, AKey(1, 0), 2)
	r := Round{
		{From: 0, To: 3, Src: AKey(0, 0), Dst: TKey(0, 0, 0)},
		{From: 1, To: 3, Src: AKey(1, 0), Dst: TKey(1, 0, 0)},
	}
	if err := m.RunRound(r); err == nil || !strings.Contains(err.Error(), "receives twice") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRoundRejectsMissingKeyAndRange(t *testing.T) {
	m := New(2, ring.Counting{})
	if err := m.RunRound(Round{{From: 0, To: 1, Src: AKey(9, 9)}}); err == nil {
		t.Error("missing source key must error")
	}
	if err := m.RunRound(Round{{From: 0, To: 5, Src: AKey(0, 0)}}); err == nil {
		t.Error("out-of-range node must error")
	}
}

func TestSelfSendIsFreeLocalCopy(t *testing.T) {
	m := New(2, ring.Counting{})
	m.Put(0, AKey(0, 0), 9)
	r := Round{{From: 0, To: 0, Src: AKey(0, 0), Dst: TKey(1, 1, 1), Op: OpSet}}
	if err := m.RunRound(r); err != nil {
		t.Fatal(err)
	}
	st := m.Stats()
	if st.Rounds != 0 || st.Messages != 0 || st.LocalCopies != 1 {
		t.Errorf("local copy should be free: %+v", st)
	}
	if v, _ := m.Get(0, TKey(1, 1, 1)); v != 9 {
		t.Error("local copy did not happen")
	}
	// A node may do a local copy and receive a real message in one round.
	m.Put(1, AKey(1, 1), 4)
	r2 := Round{
		{From: 0, To: 0, Src: AKey(0, 0), Dst: TKey(2, 2, 2), Op: OpSet},
		{From: 1, To: 0, Src: AKey(1, 1), Dst: TKey(3, 3, 3), Op: OpSet},
	}
	if err := m.RunRound(r2); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() != 1 {
		t.Error("mixed round should count once")
	}
}

func TestOpAccAccumulates(t *testing.T) {
	m := New(3, ring.Counting{})
	m.Put(0, AKey(0, 0), 5)
	m.Put(1, AKey(1, 0), 3)
	dst := XKey(0, 0)
	if err := m.RunRound(Round{{From: 0, To: 2, Src: AKey(0, 0), Dst: dst, Op: OpAcc}}); err != nil {
		t.Fatal(err)
	}
	if err := m.RunRound(Round{{From: 1, To: 2, Src: AKey(1, 0), Dst: dst, Op: OpAcc}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(2, dst); v != 8 {
		t.Errorf("acc = %v", v)
	}
	// Tropical accumulate: missing reads as +Inf.
	mt := New(2, ring.MinPlus{})
	mt.Put(0, AKey(0, 0), 5)
	if err := mt.RunRound(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: dst, Op: OpAcc}}); err != nil {
		t.Fatal(err)
	}
	if v, _ := mt.Get(1, dst); v != 5 {
		t.Errorf("tropical acc = %v", v)
	}
}

func TestRoundStartSemantics(t *testing.T) {
	// A value forwarded along a chain in one round must use the round-start
	// state: 0 -> 1 and 1 -> 2 in the same round means node 2 sees node 1's
	// OLD value.
	m := New(3, ring.Counting{})
	k := TKey(0, 0, 0)
	m.Put(0, k, 100)
	m.Put(1, k, 200)
	r := Round{
		{From: 0, To: 1, Src: k, Dst: k, Op: OpSet},
		{From: 1, To: 2, Src: k, Dst: k, Op: OpSet},
	}
	if err := m.RunRound(r); err != nil {
		t.Fatal(err)
	}
	if v, _ := m.Get(2, k); v != 200 {
		t.Errorf("node 2 got %v, want round-start value 200", v)
	}
	if v, _ := m.Get(1, k); v != 100 {
		t.Errorf("node 1 got %v, want 100", v)
	}
}

func TestPlanComposition(t *testing.T) {
	p := &Plan{}
	p.Append(nil) // empty rounds dropped
	p.Append(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)}})
	q := &Plan{}
	q.Append(Round{{From: 1, To: 0, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	p.Extend(q)
	if p.NumRounds() != 2 {
		t.Errorf("NumRounds = %d", p.NumRounds())
	}
}

func TestMergeParallel(t *testing.T) {
	// Two plans on disjoint computers merge round-wise.
	p1 := &Plan{}
	p1.Append(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)}})
	p1.Append(Round{{From: 1, To: 0, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	p2 := &Plan{}
	p2.Append(Round{{From: 2, To: 3, Src: AKey(2, 0), Dst: AKey(2, 0)}})
	merged := MergeParallel(p1, p2)
	if merged.NumRounds() != 2 {
		t.Fatalf("merged rounds = %d, want 2", merged.NumRounds())
	}
	if len(merged.Rounds[0]) != 2 || len(merged.Rounds[1]) != 1 {
		t.Errorf("merge shape wrong: %d, %d", len(merged.Rounds[0]), len(merged.Rounds[1]))
	}
	m := New(4, ring.Counting{})
	m.Put(0, AKey(0, 0), 1)
	m.Put(2, AKey(2, 0), 2)
	if err := m.Run(merged); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() != 2 {
		t.Errorf("rounds = %d", m.Rounds())
	}
	// Conflicting merge is caught at run time.
	p3 := &Plan{}
	p3.Append(Round{{From: 0, To: 3, Src: AKey(0, 0), Dst: AKey(0, 0)}})
	bad := MergeParallel(p1, p3)
	m2 := New(4, ring.Counting{})
	m2.Put(0, AKey(0, 0), 1)
	if err := m2.Run(bad); err == nil {
		t.Error("conflicting merged plan must fail validation")
	}
}

func TestLocalAllAndViews(t *testing.T) {
	m := New(8, ring.Counting{})
	for i := int32(0); i < 8; i++ {
		m.Put(i, AKey(i, 0), ring.Value(i))
	}
	m.LocalAll(func(node NodeID, v *LocalView) {
		if v.Node() != node {
			t.Error("view node mismatch")
		}
		val, _ := v.Get(AKey(node, 0))
		v.Put(TKey(node, 0, 0), v.Ring().Mul(val, 2))
		v.Acc(TKey(node, 0, 0), 1)
	})
	for i := int32(0); i < 8; i++ {
		if v, _ := m.Get(i, TKey(i, 0, 0)); v != ring.Value(2*i+1) {
			t.Errorf("node %d: %v", i, v)
		}
	}
	if m.Rounds() != 0 {
		t.Error("local steps are free")
	}
	// Each + Del.
	m.LocalAll(func(node NodeID, v *LocalView) {
		var keys []Key
		v.Each(func(k Key, _ ring.Value) {
			if k.Kind == KT {
				keys = append(keys, k)
			}
		})
		for _, k := range keys {
			v.Del(k)
		}
	})
	for i := int32(0); i < 8; i++ {
		if _, ok := m.Get(i, TKey(i, 0, 0)); ok {
			t.Error("Del failed")
		}
	}
}

func TestParallelEngineMatchesSequential(t *testing.T) {
	// A random big round executed by both engines must give identical
	// stores and stats.
	rng := rand.New(rand.NewSource(123))
	n := 200
	build := func(workers int) (*Machine, *Plan) {
		var opts []Option
		if workers > 1 {
			opts = append(opts, WithWorkers(workers))
		}
		m := New(n, ring.Counting{}, opts...)
		m.ParBatch = 1 // force the parallel path even for small rounds
		for i := 0; i < n; i++ {
			m.Put(NodeID(i), AKey(int32(i), 0), ring.Value(i+1))
		}
		p := &Plan{}
		for t := 0; t < 30; t++ {
			perm := rng.Perm(n)
			r := make(Round, 0, n)
			for i := 0; i < n; i++ {
				r = append(r, Send{
					From: NodeID(i), To: NodeID(perm[i]),
					Src: AKey(int32(i), 0), Dst: PKey(int32(t), int32(i), 0), Op: OpAcc,
				})
			}
			p.Append(r)
		}
		return m, p
	}
	rng = rand.New(rand.NewSource(123))
	m1, p1 := build(1)
	rng = rand.New(rand.NewSource(123))
	m2, p2 := build(8)
	if err := m1.Run(p1); err != nil {
		t.Fatal(err)
	}
	if err := m2.Run(p2); err != nil {
		t.Fatal(err)
	}
	s1, s2 := m1.Stats(), m2.Stats()
	if s1.Rounds != s2.Rounds || s1.Messages != s2.Messages {
		t.Fatalf("stats differ: %+v vs %+v", s1, s2)
	}
	for i := 0; i < n; i++ {
		for k, v := range m1.stores[i] {
			if v2, ok := m2.stores[i][k]; !ok || v2 != v {
				t.Fatalf("store mismatch at node %d key %v: %v vs %v", i, k, v, v2)
			}
		}
		if len(m1.stores[i]) != len(m2.stores[i]) {
			t.Fatalf("store size mismatch at node %d", i)
		}
	}
}

func TestWithAutoWorkers(t *testing.T) {
	m := New(2, ring.Counting{}, WithAutoWorkers())
	if m.Workers < 1 {
		t.Error("auto workers must be >= 1")
	}
}

func TestStatsMaxLoads(t *testing.T) {
	m := New(3, ring.Counting{})
	m.Put(0, AKey(0, 0), 1)
	m.Put(0, AKey(0, 1), 2)
	_ = m.RunRound(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)}})
	_ = m.RunRound(Round{{From: 0, To: 2, Src: AKey(0, 1), Dst: AKey(0, 1)}})
	st := m.Stats()
	if st.MaxSendLoad() != 2 || st.MaxRecvLoad() != 1 {
		t.Errorf("max loads: %d %d", st.MaxSendLoad(), st.MaxRecvLoad())
	}
}

func TestKeysAndKindStrings(t *testing.T) {
	if AKey(1, 2).String() != "A(1,2)" {
		t.Error(AKey(1, 2).String())
	}
	if PKey(1, 2, 3).String() != "P(1,2)#3" {
		t.Error(PKey(1, 2, 3).String())
	}
	if KindUser.String() != "U16" {
		t.Error(KindUser.String())
	}
	if BKey(1, 2).Kind != KB || XKey(1, 2).Kind != KX || TKey(1, 2, 3).Kind != KT {
		t.Error("key constructors")
	}
}

func TestMustGetPanics(t *testing.T) {
	m := New(1, ring.Counting{})
	defer func() {
		if recover() == nil {
			t.Error("MustGet on missing key must panic")
		}
	}()
	m.MustGet(0, AKey(0, 0))
}

func TestLayoutsAndLoading(t *testing.T) {
	n := 6
	ahat := matrix.NewSupport(n, [][2]int{{0, 1}, {0, 2}, {3, 4}})
	bhat := matrix.NewSupport(n, [][2]int{{1, 5}, {2, 0}})
	xhat := matrix.NewSupport(n, [][2]int{{0, 5}, {0, 0}})
	rl := RowLayout(ahat, bhat, xhat)
	if rl.OwnerA(0, 1) != 0 || rl.OwnerA(3, 4) != 3 || rl.OwnerB(2, 0) != 2 || rl.OwnerX(0, 5) != 0 {
		t.Error("RowLayout owners wrong")
	}
	a, b, x := rl.MaxPerNode()
	if a != 2 || b != 1 || x != 2 {
		t.Errorf("MaxPerNode = %d %d %d", a, b, x)
	}
	bl := BalancedLayout(ahat, bhat, xhat)
	ba, bb, bx := bl.MaxPerNode()
	if ba != 1 || bb != 1 || bx != 1 {
		t.Errorf("BalancedLayout MaxPerNode = %d %d %d", ba, bb, bx)
	}

	am := matrix.Random(ahat, ring.Counting{}, 1)
	bm := matrix.Random(bhat, ring.Counting{}, 2)
	m := New(n, ring.Counting{})
	LoadInputs(m, rl, am, bm)
	if v, ok := m.Get(0, AKey(0, 1)); !ok || v != am.Get(0, 1) {
		t.Error("LoadInputs A failed")
	}
	if v, ok := m.Get(2, BKey(2, 0)); !ok || v != bm.Get(2, 0) {
		t.Error("LoadInputs B failed")
	}

	// CollectX errors on missing outputs, succeeds once present.
	if _, err := CollectX(m, rl, xhat); err == nil {
		t.Error("CollectX must fail before outputs delivered")
	}
	ZeroOutputs(m, rl, xhat)
	got, err := CollectX(m, rl, xhat)
	if err != nil {
		t.Fatal(err)
	}
	if got.NNZ() != 0 { // zeros are not stored
		t.Error("zeroed outputs should collect as zero matrix")
	}
	m.Put(rl.OwnerX(0, 5), XKey(0, 5), 42)
	got, err = CollectX(m, rl, xhat)
	if err != nil || got.Get(0, 5) != 42 {
		t.Errorf("CollectX = %v, %v", got, err)
	}
}

func TestLayoutMissingOwnerPanics(t *testing.T) {
	l := RowLayout(matrix.NewSupport(2, nil), matrix.NewSupport(2, nil), matrix.NewSupport(2, nil))
	defer func() {
		if recover() == nil {
			t.Error("missing owner must panic")
		}
	}()
	l.OwnerA(0, 0)
}

func TestPeakStoreTracking(t *testing.T) {
	m := New(2, ring.Counting{})
	m.Put(0, AKey(0, 0), 1)
	m.Put(0, AKey(0, 1), 1)
	m.Put(1, AKey(1, 0), 1)
	if st := m.Stats(); st.PeakStore != 2 {
		t.Errorf("PeakStore = %d", st.PeakStore)
	}
}

func TestStoreLimitEnforced(t *testing.T) {
	m := New(3, ring.Counting{}, WithStoreLimit(2))
	m.Put(0, AKey(0, 0), 1)
	m.Put(0, AKey(0, 1), 2)
	m.Put(2, AKey(2, 2), 9) // node 2 holds 1 value
	// Two deliveries to node 2: second pushes it to 3 > limit 2.
	if err := m.RunRound(Round{{From: 0, To: 2, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}}); err != nil {
		t.Fatal(err)
	}
	err := m.RunRound(Round{{From: 0, To: 2, Src: AKey(0, 1), Dst: TKey(0, 0, 1)}})
	if err == nil || !strings.Contains(err.Error(), "store limit") {
		t.Fatalf("err = %v", err)
	}
}

func TestPlanEncodeDecode(t *testing.T) {
	p := &Plan{}
	p.Append(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(1, 2, 3), Op: OpAcc}})
	p.Append(Round{{From: 1, To: 0, Src: BKey(4, 5), Dst: XKey(6, 7), Op: OpSub}})
	p.Annotate("roundtrip", map[string]float64{"kappa": 2})
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodePlan(&buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRounds() != 2 || back.Rounds[0][0] != p.Rounds[0][0] || back.Rounds[1][0] != p.Rounds[1][0] {
		t.Fatalf("roundtrip mismatch: %+v", back)
	}
	if len(back.Spans) != 1 || back.Spans[0].Label != "roundtrip" {
		t.Fatalf("spans lost in roundtrip: %+v", back.Spans)
	}
	if _, err := DecodePlan(bytes.NewReader([]byte("garbage")), 2); err == nil {
		t.Error("garbage decoded")
	}
}

// TestDecodePlanRejectsInvalid covers the trust boundary: a plan that
// decodes cleanly but violates the model (or the declared machine size)
// must be rejected before any executor sees it.
func TestDecodePlanRejectsInvalid(t *testing.T) {
	encode := func(p *Plan) *bytes.Buffer {
		var buf bytes.Buffer
		if err := p.Encode(&buf); err != nil {
			t.Fatal(err)
		}
		return &buf
	}
	// Node ID out of range for the declared machine size.
	big := &Plan{}
	big.Append(Round{{From: 0, To: 7, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	if _, err := DecodePlan(encode(big), 4); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("oversized node accepted: %v", err)
	}
	// Negative node ID.
	neg := &Plan{}
	neg.Append(Round{{From: -1, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	if _, err := DecodePlan(encode(neg), 4); err == nil {
		t.Error("negative node accepted")
	}
	// Duplicate sender within one round.
	dup := &Plan{}
	dup.Append(Round{
		{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0)},
		{From: 0, To: 2, Src: AKey(0, 1), Dst: TKey(0, 0, 1)},
	})
	if _, err := DecodePlan(encode(dup), 4); err == nil || !strings.Contains(err.Error(), "sends twice") {
		t.Errorf("duplicate sender accepted: %v", err)
	}
	// Span range outside the plan's rounds.
	spanned := &Plan{}
	spanned.Append(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	spanned.Spans = append(spanned.Spans, PhaseSpan{Label: "bogus", Start: 0, End: 9})
	if _, err := DecodePlan(encode(spanned), 4); err == nil || !strings.Contains(err.Error(), "span") {
		t.Errorf("bogus span accepted: %v", err)
	}
}

// TestDecodePlanVersionGate checks that a future format version fails
// loudly instead of misdecoding.
func TestDecodePlanVersionGate(t *testing.T) {
	var buf bytes.Buffer
	env := planEnvelope{Magic: planMagic, Version: PlanFormatVersion + 1}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(&buf, 2); err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("future version accepted: %v", err)
	}
	buf.Reset()
	env = planEnvelope{Magic: "not-a-plan", Version: PlanFormatVersion}
	if err := gob.NewEncoder(&buf).Encode(env); err != nil {
		t.Fatal(err)
	}
	if _, err := DecodePlan(&buf, 2); err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic accepted: %v", err)
	}
}

func TestReset(t *testing.T) {
	m := New(3, ring.Counting{}, WithTrace())
	m.Put(0, AKey(0, 0), 5)
	_ = m.RunRound(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)}})
	m.Reset()
	if m.Rounds() != 0 || m.Stats().Messages != 0 || m.Stats().PeakStore != 0 {
		t.Errorf("stats survive reset: %+v", m.Stats())
	}
	if _, ok := m.Get(0, AKey(0, 0)); ok {
		t.Error("store survives reset")
	}
	st := m.Stats()
	if st.MaxSendLoad() != 0 {
		t.Error("loads survive reset")
	}
	if tr := m.Trace(); tr == nil || len(tr.PerRound) != 0 {
		t.Error("trace survives reset")
	}
	// The machine is usable again.
	m.Put(0, AKey(0, 0), 7)
	if err := m.RunRound(Round{{From: 0, To: 2, Src: AKey(0, 0), Dst: AKey(0, 0)}}); err != nil {
		t.Fatal(err)
	}
	if m.Rounds() != 1 {
		t.Error("machine unusable after reset")
	}
}

func TestMergeParallelCarriesSpans(t *testing.T) {
	p1 := &Plan{}
	p1.Append(Round{{From: 0, To: 1, Src: AKey(0, 0), Dst: AKey(0, 0)}})
	p1.Append(Round{{From: 1, To: 0, Src: AKey(0, 0), Dst: TKey(0, 0, 0)}})
	p1.Annotate("shuffle", map[string]float64{"kappa": 2})
	p2 := &Plan{}
	p2.Append(Round{{From: 2, To: 3, Src: AKey(2, 0), Dst: AKey(2, 0)}})
	p2.Annotate("copy", nil)
	merged := MergeParallel(p1, p2)
	if len(merged.Spans) != 2 {
		t.Fatalf("spans = %+v", merged.Spans)
	}
	if s := merged.Spans[0]; s.Label != "p0/shuffle" || s.Start != 0 || s.End != 2 || s.Metrics["kappa"] != 2 {
		t.Errorf("span 0 = %+v", s)
	}
	if s := merged.Spans[1]; s.Label != "p1/copy" || s.Start != 0 || s.End != 1 {
		t.Errorf("span 1 = %+v", s)
	}
	// A span over a round that the union drops (both inputs empty there)
	// collapses to zero rounds instead of swallowing a neighbour's round.
	p3 := &Plan{Rounds: []Round{}, Spans: []PhaseSpan{{Label: "empty", Start: 0, End: 0}}}
	m2 := MergeParallel(p1, p3)
	if s := m2.Spans[1]; s.Label != "p1/empty" || s.Start != s.End {
		t.Errorf("empty-phase span = %+v", s)
	}
}

func TestStoreLimitPreDelivery(t *testing.T) {
	// The limit check runs before any delivery: a round that would push a
	// node over its limit must leave every store and all stats untouched,
	// including deliveries to other, non-offending nodes in the same round.
	m := New(4, ring.Counting{}, WithStoreLimit(2))
	m.Put(0, AKey(0, 0), 1)
	m.Put(1, AKey(1, 0), 2)
	m.Put(2, AKey(2, 0), 3)
	m.Put(2, AKey(2, 1), 4) // node 2 is at the limit
	before := m.Stats()
	r := Round{
		{From: 0, To: 3, Src: AKey(0, 0), Dst: TKey(0, 0, 0), Op: OpSet}, // fine on its own
		{From: 1, To: 2, Src: AKey(1, 0), Dst: TKey(0, 0, 1), Op: OpSet}, // pushes node 2 over
	}
	err := m.RunRound(r)
	if err == nil || !strings.Contains(err.Error(), "store limit") {
		t.Fatalf("err = %v", err)
	}
	if !reflect.DeepEqual(before, m.Stats()) {
		t.Errorf("failed round changed stats:\n before %+v\n after  %+v", before, m.Stats())
	}
	if _, ok := m.Get(3, TKey(0, 0, 0)); ok {
		t.Error("failed round delivered to the non-offending node")
	}
	if _, ok := m.Get(2, TKey(0, 0, 1)); ok {
		t.Error("failed round delivered to the offending node")
	}
	// Overwrites of keys a node already holds do not create new values and
	// must pass the limit check.
	ok := Round{{From: 0, To: 2, Src: AKey(0, 0), Dst: AKey(2, 0), Op: OpSet}}
	if err := m.RunRound(ok); err != nil {
		t.Fatalf("overwrite at the limit must be legal: %v", err)
	}
	if v, _ := m.Get(2, AKey(2, 0)); v != 1 {
		t.Errorf("overwrite lost: %v", v)
	}
}
