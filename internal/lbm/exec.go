package lbm

import (
	"fmt"
	"sync"

	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// Exec is the compiled engine: the run-time counterpart of CompiledPlan.
// Where Machine resolves every Send through per-node map[Key]ring.Value
// lookups, Exec holds one dense []ring.Value arena per node and executes
// the flat instruction stream with array indexing only — no hashing, no
// per-delivery allocation. Presence (a store "holding" a value) is tracked
// with per-slot epoch stamps, so Reset is O(1) bookkeeping plus stat
// clearing rather than an arena sweep, which is what makes pooled reuse by
// the serving layer allocation-free in steady state.
//
// Exec mirrors the Machine's accounting exactly: the same Stats fields, the
// same collector events, the same phase-span replay (via the shared
// runWithSpans walk) and the same StoreLimit semantics. The map engine
// stays the reference oracle; the differential tests in internal/algo hold
// the two to identical outputs and identical Stats.
//
// An executor may carry more than one lane (NewExecBatch): each slot then
// holds lanes contiguous values, one per value-assignment, and a single
// instruction-stream walk moves all lanes of every slot. Presence is a
// function of the structure alone — every lane realizes the same support —
// so stamps, live counts, StoreLimit and fault injection stay per-slot and
// are checked once per instruction, not once per lane. That is the batching
// win: the walk, the presence bookkeeping and the stats replay amortize
// over lanes, leaving only the per-lane value arithmetic.
type Exec struct {
	N int
	R ring.Semiring
	// Workers, ParBatch and StoreLimit have Machine's semantics.
	Workers    int
	ParBatch   int
	StoreLimit int

	field     ring.Field
	collector obsv.Collector
	// injector and netRound mirror Machine's fault-injection seam (fault.go).
	injector Injector
	netRound int
	// transport mirrors Machine's communication seam (transport.go); nil is
	// the original single-process fast path.
	transport Transport

	lanes int            // values per slot (≥1); see NewExecBatch
	arena [][]ring.Value // lane-strided: slot s lane l at s*lanes+l
	stamp [][]uint32     // slot present iff stamp == epoch
	epoch uint32
	live  []int32 // per-node count of present slots (the map engine's len(store))

	stats   Stats
	payload []ring.Value // gather scratch, reused across rounds
}

// NewExec returns a single-lane executor with the given per-node arena
// sizes over ring r. Machine options (WithWorkers, WithStoreLimit,
// WithCollector, WithTrace) apply with identical meaning.
func NewExec(sizes []int32, r ring.Semiring, opts ...Option) *Exec {
	return NewExecBatch(sizes, 1, r, opts...)
}

// NewExecBatch returns an executor whose every slot holds lanes values —
// one per value-assignment of a batched run. One Run walks the instruction
// stream once and moves all lanes; lane l of the arenas is loaded and read
// through PutLane/GetLane. lanes < 1 is treated as 1.
func NewExecBatch(sizes []int32, lanes int, r ring.Semiring, opts ...Option) *Exec {
	if lanes < 1 {
		lanes = 1
	}
	var probe Machine
	probe.ParBatch = 4096
	for _, o := range opts {
		o(&probe)
	}
	x := &Exec{
		N:          len(sizes),
		R:          r,
		Workers:    probe.Workers,
		ParBatch:   probe.ParBatch,
		StoreLimit: probe.StoreLimit,
		collector:  probe.collector,
		injector:   probe.injector,
		transport:  probe.transport,
		lanes:      lanes,
		arena:      make([][]ring.Value, len(sizes)),
		stamp:      make([][]uint32, len(sizes)),
		epoch:      1,
		live:       make([]int32, len(sizes)),
	}
	for i, sz := range sizes {
		x.arena[i] = make([]ring.Value, int(sz)*lanes)
		x.stamp[i] = make([]uint32, sz)
	}
	if f, ok := ring.AsField(r); ok {
		x.field = f
	}
	x.stats.SendLoad = make([]int64, len(sizes))
	x.stats.RecvLoad = make([]int64, len(sizes))
	return x
}

// Lanes returns the number of values each slot holds (1 for NewExec).
func (x *Exec) Lanes() int { return x.lanes }

// Configure re-applies Machine options to a (typically pooled) executor
// before a run. Unspecified options revert to their New defaults, so a
// recycled executor behaves exactly like a fresh one.
func (x *Exec) Configure(opts ...Option) {
	var probe Machine
	probe.ParBatch = 4096
	for _, o := range opts {
		o(&probe)
	}
	x.Workers = probe.Workers
	x.ParBatch = probe.ParBatch
	x.StoreLimit = probe.StoreLimit
	x.collector = probe.collector
	x.injector = probe.injector
	x.transport = probe.transport
}

// SetCollector attaches (or, with nil, detaches) a collector.
func (x *Exec) SetCollector(c obsv.Collector) { x.collector = c }

// Collector returns the attached collector, or nil.
func (x *Exec) Collector() obsv.Collector { return x.collector }

// Profile returns the attached collector as an *obsv.Profile when it is
// one, mirroring Machine.Profile.
func (x *Exec) Profile() *obsv.Profile {
	if p, ok := x.collector.(*obsv.Profile); ok {
		return p
	}
	return nil
}

// Trace returns a snapshot of the recorded trace, or nil when no profile
// collector is attached (mirrors Machine.Trace).
func (x *Exec) Trace() *Trace {
	p := x.Profile()
	if p == nil {
		return nil
	}
	tr := &Trace{PerRound: p.PerRoundMessages(), Marks: map[int][]string{}}
	for _, mk := range p.Marks() {
		tr.Marks[mk.Round] = append(tr.Marks[mk.Round], mk.Labels...)
	}
	return tr
}

// BeginPhase opens a nested phase span on the collector.
func (x *Exec) BeginPhase(label string) {
	if x.collector != nil {
		x.collector.BeginPhase(label)
	}
}

// EndPhase closes the innermost open phase span.
func (x *Exec) EndPhase() {
	if x.collector != nil {
		x.collector.EndPhase()
	}
}

// Counter adds delta to a named metric on the current phase span.
func (x *Exec) Counter(name string, delta float64) {
	if x.collector != nil {
		x.collector.Counter(name, delta)
	}
}

// Mark annotates the round timeline with a flat phase label.
func (x *Exec) Mark(label string) {
	if x.collector != nil {
		x.collector.Mark(label)
	}
}

// Stats returns a snapshot of the execution statistics so far.
func (x *Exec) Stats() Stats {
	s := x.stats
	s.SendLoad = append([]int64(nil), x.stats.SendLoad...)
	s.RecvLoad = append([]int64(nil), x.stats.RecvLoad...)
	s.RoundBytes = append([]int64(nil), x.stats.RoundBytes...)
	return s
}

// Rounds returns the number of counted rounds executed so far.
func (x *Exec) Rounds() int { return x.stats.Rounds }

// StoreLen returns the number of values currently held by node.
func (x *Exec) StoreLen(node NodeID) int { return int(x.live[node]) }

// present reports whether a slot currently holds a value.
func (x *Exec) present(node int32, slot int32) bool {
	return x.stamp[node][slot] == x.epoch
}

// markPresent flags a slot as holding a value, maintaining the live count
// and the peak-store statistic exactly as the map engine's applyOp does.
func (x *Exec) markPresent(node int32, slot int32) {
	if x.stamp[node][slot] != x.epoch {
		x.stamp[node][slot] = x.epoch
		x.live[node]++
		if int(x.live[node]) > x.stats.PeakStore {
			x.stats.PeakStore = int(x.live[node])
		}
	}
}

// GetSlot reads the lane-0 value at a slot, reporting presence. On a
// multi-lane executor use GetLane for the other lanes.
func (x *Exec) GetSlot(r SlotRef) (ring.Value, bool) { return x.GetLane(r, 0) }

// GetLane reads the value of one lane of a slot, reporting presence (which
// is per-slot: every lane realizes the same structure).
func (x *Exec) GetLane(r SlotRef, lane int) (ring.Value, bool) {
	if !x.present(int32(r.Node), r.Slot) {
		var zero ring.Value
		return zero, false
	}
	return x.arena[r.Node][int(r.Slot)*x.lanes+lane], true
}

// MustGetSlot reads a lane-0 value that must be present.
func (x *Exec) MustGetSlot(r SlotRef) ring.Value { return x.MustGetLane(r, 0) }

// MustGetLane reads one lane of a slot that must be present.
func (x *Exec) MustGetLane(r SlotRef, lane int) ring.Value {
	if !x.present(int32(r.Node), r.Slot) {
		panic(fmt.Sprintf("lbm: node %d missing slot %d", r.Node, r.Slot))
	}
	return x.arena[r.Node][int(r.Slot)*x.lanes+lane]
}

// PutSlot stores a lane-0 value at a slot (free local computation).
func (x *Exec) PutSlot(r SlotRef, v ring.Value) { x.PutLane(r, 0, v) }

// PutLane stores one lane of a slot. Loading a multi-lane executor must put
// every lane of a slot: presence is per-slot, so a partially loaded slot
// would expose stale values on its unwritten lanes. Under a transport,
// writes to non-owned stores are dropped (see Machine.Put).
func (x *Exec) PutLane(r SlotRef, lane int, v ring.Value) {
	if x.transport != nil && !x.transport.Owns(r.Node) {
		return
	}
	x.arena[r.Node][int(r.Slot)*x.lanes+lane] = v
	x.markPresent(int32(r.Node), r.Slot)
}

// PutLanes stores every lane of a slot at once (len(vs) = Lanes), with one
// presence update — the bulk form of PutLane for batched loading.
func (x *Exec) PutLanes(r SlotRef, vs []ring.Value) {
	if x.transport != nil && !x.transport.Owns(r.Node) {
		return
	}
	i := int(r.Slot) * x.lanes
	copy(x.arena[r.Node][i:i+x.lanes], vs)
	x.markPresent(int32(r.Node), r.Slot)
}

// AccSlot adds v into the slot's lane-0 value (missing reads as the ring
// Zero). Multi-lane accumulation goes through AccLanes: presence is
// per-slot, so accumulating lane by lane into an absent slot would mark it
// present after the first lane and read stale values on the rest.
func (x *Exec) AccSlot(r SlotRef, v ring.Value) {
	if x.transport != nil && !x.transport.Owns(r.Node) {
		return
	}
	cur := x.R.Zero()
	i := int(r.Slot) * x.lanes
	if x.present(int32(r.Node), r.Slot) {
		cur = x.arena[r.Node][i]
	}
	x.arena[r.Node][i] = x.R.Add(cur, v)
	x.markPresent(int32(r.Node), r.Slot)
}

// MustLanes returns the live lane slice of a slot that must be present
// (len = Lanes). The slice aliases the arena; callers read it, they do not
// keep or mutate it.
func (x *Exec) MustLanes(r SlotRef) []ring.Value {
	if !x.present(int32(r.Node), r.Slot) {
		panic(fmt.Sprintf("lbm: node %d missing slot %d", r.Node, r.Slot))
	}
	i := int(r.Slot) * x.lanes
	return x.arena[r.Node][i : i+x.lanes]
}

// AccLanes adds vs[l] into lane l of the slot for every lane, with the
// slot's presence resolved once before any lane is touched (an absent slot
// reads as the ring Zero on every lane).
func (x *Exec) AccLanes(r SlotRef, vs []ring.Value) {
	if x.transport != nil && !x.transport.Owns(r.Node) {
		return
	}
	i := int(r.Slot) * x.lanes
	dst := x.arena[r.Node][i : i+x.lanes]
	if x.present(int32(r.Node), r.Slot) {
		for l, v := range vs {
			dst[l] = x.R.Add(dst[l], v)
		}
	} else {
		zero := x.R.Zero()
		for l, v := range vs {
			dst[l] = x.R.Add(zero, v)
		}
	}
	x.markPresent(int32(r.Node), r.Slot)
}

// ClearSlot removes the value at a slot (the compiled Del). Clearing an
// absent slot is a no-op, matching map deletion.
func (x *Exec) ClearSlot(r SlotRef) {
	if x.present(int32(r.Node), r.Slot) {
		x.stamp[r.Node][r.Slot] = x.epoch - 1
		x.live[r.Node]--
	}
}

// Reset clears all arenas and statistics, returning the executor to its
// freshly-constructed state (engine settings kept, collector detached so a
// pooled executor never leaks a previous request's profile). Presence is
// epoch-stamped, so no arena is swept.
func (x *Exec) Reset() {
	x.epoch++
	if x.epoch == 0 { // stamp wrap: hard-clear once every 2^32 resets
		for i := range x.stamp {
			for j := range x.stamp[i] {
				x.stamp[i][j] = 0
			}
		}
		x.epoch = 1
	}
	for i := range x.live {
		x.live[i] = 0
	}
	x.stats = Stats{SendLoad: x.stats.SendLoad, RecvLoad: x.stats.RecvLoad, RoundBytes: x.stats.RoundBytes[:0]}
	for i := range x.stats.SendLoad {
		x.stats.SendLoad[i] = 0
		x.stats.RecvLoad[i] = 0
	}
	x.collector = nil
	x.injector = nil
	x.transport = nil
	x.netRound = 0
}

// Run executes every round of the compiled plan, replaying its phase spans
// on the collector exactly as the map engine replays Plan spans.
func (x *Exec) Run(cp *CompiledPlan) error {
	if len(cp.NumSlots) != x.N {
		return fmt.Errorf("lbm: compiled plan for %d computers on a %d-computer executor", len(cp.NumSlots), x.N)
	}
	if cp.HasSub && x.field == nil {
		return fmt.Errorf("lbm: OpSub requires a field, ring %s is not one", x.R.Name())
	}
	rounds := cp.NumRounds()
	if x.collector == nil || len(cp.Spans) == 0 {
		for t := 0; t < rounds; t++ {
			if err := x.runRound(cp, t); err != nil {
				return fmt.Errorf("round %d: %w", t, err)
			}
		}
		return nil
	}
	return runWithSpans(x.collector, cp.Spans, rounds, func(t int) error {
		return x.runRound(cp, t)
	})
}

// runRound executes one compiled round: gather against the round-start
// state, StoreLimit pre-check, deliver, then stats. Constraint checking
// happened once at compile time.
func (x *Exec) runRound(cp *CompiledPlan, t int) error {
	if x.transport != nil {
		return x.runRoundVia(cp, t)
	}
	lo, hi := int(cp.RoundOff[t]), int(cp.RoundOff[t+1])
	if hi == lo {
		return nil
	}
	if x.injector != nil {
		if err := x.injectRound(cp, lo, hi); err != nil {
			return err
		}
	}
	size := (hi - lo) * x.lanes
	if cap(x.payload) < size {
		x.payload = make([]ring.Value, size)
	}
	payload := x.payload[:size]
	if err := x.gather(cp, lo, hi, payload); err != nil {
		return err
	}
	if x.StoreLimit > 0 {
		if err := x.checkStoreLimit(cp, lo, hi); err != nil {
			return err
		}
	}
	x.deliver(cp, lo, hi, payload)

	real := cp.Real[t]
	if real > 0 {
		x.stats.Rounds++
		x.stats.Messages += int64(real)
		x.stats.RoundBytes = append(x.stats.RoundBytes, int64(real)*valueWireBytes)
		c := x.collector
		var locals int64
		for i := lo; i < hi; i++ {
			if cp.From[i] != cp.To[i] {
				x.stats.SendLoad[cp.From[i]]++
				x.stats.RecvLoad[cp.To[i]]++
				if c != nil {
					c.OnSend(cp.From[i], cp.To[i])
				}
			} else {
				locals++
			}
		}
		x.stats.LocalCopies += locals
		if c != nil {
			c.OnRound(int(real), int(locals))
		}
	} else {
		// A round of only local copies costs nothing. Stats count plan
		// instructions, not lane values, so the lane factor stays out.
		x.stats.LocalCopies += int64(hi - lo)
	}
	return nil
}

func (x *Exec) gather(cp *CompiledPlan, lo, hi int, payload []ring.Value) error {
	K := x.lanes
	read := func(a, b int) error {
		if K == 1 {
			for i := a; i < b; i++ {
				from, slot := cp.From[i], cp.SrcSlot[i]
				if x.stamp[from][slot] != x.epoch {
					return x.missingErr(cp, i)
				}
				payload[i-lo] = x.arena[from][slot]
			}
			return nil
		}
		for i := a; i < b; i++ {
			from, slot := cp.From[i], cp.SrcSlot[i]
			if x.stamp[from][slot] != x.epoch {
				return x.missingErr(cp, i)
			}
			copy(payload[(i-lo)*K:(i-lo+1)*K], x.arena[from][int(slot)*K:])
		}
		return nil
	}
	if x.Workers <= 1 || hi-lo < x.ParBatch {
		return read(lo, hi)
	}
	var wg sync.WaitGroup
	errs := make([]error, x.Workers)
	chunk := (hi - lo + x.Workers - 1) / x.Workers
	for w := 0; w < x.Workers; w++ {
		a := lo + w*chunk
		b := a + chunk
		if b > hi {
			b = hi
		}
		if a >= b {
			break
		}
		wg.Add(1)
		go func(w, a, b int) {
			defer wg.Done()
			errs[w] = read(a, b)
		}(w, a, b)
	}
	wg.Wait()
	for _, e := range errs {
		if e != nil {
			return e
		}
	}
	return nil
}

// missingErr names the missing source as helpfully as the slot addressing
// allows (the key itself when the plan carries its key table).
func (x *Exec) missingErr(cp *CompiledPlan, i int) error {
	from, slot := cp.From[i], cp.SrcSlot[i]
	if cp.Keys != nil {
		return fmt.Errorf("lbm: node %d cannot send missing key %v", from, cp.Keys[from][slot])
	}
	return fmt.Errorf("lbm: node %d cannot send missing key (slot %d)", from, slot)
}

// checkStoreLimit mirrors Machine.checkStoreLimit: distinct new destination
// slots counted per node against the prospective post-delivery store sizes,
// before anything is delivered.
func (x *Exec) checkStoreLimit(cp *CompiledPlan, lo, hi int) error {
	var seen map[SlotRef]struct{}
	add := map[int32]int{}
	for i := lo; i < hi; i++ {
		to, dst := cp.To[i], cp.DstSlot[i]
		if x.transport != nil && !x.transport.Owns(to) {
			// Non-owned stores live (and are limit-checked) elsewhere.
			continue
		}
		if x.present(to, dst) {
			continue
		}
		ref := SlotRef{Node: NodeID(to), Slot: dst}
		if seen == nil {
			seen = map[SlotRef]struct{}{}
		} else if _, dup := seen[ref]; dup {
			continue
		}
		seen[ref] = struct{}{}
		add[to]++
		if after := int(x.live[to]) + add[to]; after > x.StoreLimit {
			return fmt.Errorf("lbm: node %d exceeds the store limit (%d > %d values)", to, after, x.StoreLimit)
		}
	}
	return nil
}

// applyInstr delivers instruction i's payload lanes into the destination
// slot: one presence resolution, then every lane. The single-lane shape is
// kept branch-lean — it is the PR-3 hot path the batched form amortizes.
func (x *Exec) applyInstr(cp *CompiledPlan, i, lo int, payload []ring.Value) {
	to, dst := cp.To[i], cp.DstSlot[i]
	K := x.lanes
	if K == 1 {
		v := payload[i-lo]
		switch cp.Ops[i] {
		case OpAcc:
			cur := x.R.Zero()
			if x.present(to, dst) {
				cur = x.arena[to][dst]
			}
			x.arena[to][dst] = x.R.Add(cur, v)
		case OpSub:
			cur := x.R.Zero()
			if x.present(to, dst) {
				cur = x.arena[to][dst]
			}
			x.arena[to][dst] = x.field.Sub(cur, v)
		default:
			x.arena[to][dst] = v
		}
		return
	}
	vs := payload[(i-lo)*K : (i-lo+1)*K]
	ds := x.arena[to][int(dst)*K : (int(dst)+1)*K]
	switch cp.Ops[i] {
	case OpAcc:
		if x.present(to, dst) {
			for l, v := range vs {
				ds[l] = x.R.Add(ds[l], v)
			}
		} else {
			zero := x.R.Zero()
			for l, v := range vs {
				ds[l] = x.R.Add(zero, v)
			}
		}
	case OpSub:
		if x.present(to, dst) {
			for l, v := range vs {
				ds[l] = x.field.Sub(ds[l], v)
			}
		} else {
			zero := x.R.Zero()
			for l, v := range vs {
				ds[l] = x.field.Sub(zero, v)
			}
		}
	default:
		copy(ds, vs)
	}
}

func (x *Exec) deliver(cp *CompiledPlan, lo, hi int, payload []ring.Value) {
	if x.Workers <= 1 || hi-lo < x.ParBatch {
		for i := lo; i < hi; i++ {
			x.applyInstr(cp, i, lo, payload)
			x.markPresent(cp.To[i], cp.DstSlot[i])
		}
		return
	}
	// The parallel engine shards by receiver (a node may be the target of
	// one real message and several local copies in one round); live counts
	// and stamps are per-node state, so receiver sharding keeps them
	// race-free. Peak tracking merges afterwards, as in the map engine.
	var wg sync.WaitGroup
	var peakMu sync.Mutex
	peak := x.stats.PeakStore
	for w := 0; w < x.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			localPeak := 0
			for i := lo; i < hi; i++ {
				to := cp.To[i]
				if int(to)%x.Workers != w {
					continue
				}
				dst := cp.DstSlot[i]
				x.applyInstr(cp, i, lo, payload)
				if x.stamp[to][dst] != x.epoch {
					x.stamp[to][dst] = x.epoch
					x.live[to]++
				}
				if int(x.live[to]) > localPeak {
					localPeak = int(x.live[to])
				}
			}
			peakMu.Lock()
			if localPeak > peak {
				peak = localPeak
			}
			peakMu.Unlock()
		}(w)
	}
	wg.Wait()
	x.stats.PeakStore = peak
}
