// Package lbm implements the (supported) low-bandwidth machine of the
// paper's §2 and Definition 6.3: n computers, synchronous rounds, one
// message sent and one received per computer per round, each message
// carrying one ring element (an O(log n)-bit word).
//
// An algorithm in the supported model consists of arbitrary free
// preprocessing over the *support* (the indicator matrices and the layout)
// that produces a communication Plan, followed by a run-time execution in
// which the planned messages carry actual values. The Machine executes
// plans, validates the one-send/one-receive constraint on every round,
// counts rounds and per-node loads exactly, and interleaves free local
// computation steps between rounds.
package lbm

import "fmt"

// Kind tags the role of a value in a node-local store.
type Kind uint8

const (
	// KA addresses an element A_ij as Key{KA, i, j, 0}.
	KA Kind = iota
	// KB addresses an element B_jk as Key{KB, j, k, 0}.
	KB
	// KX addresses an output element X_ik as Key{KX, i, k, 0}.
	KX
	// KP addresses a partial product or partial sum contributing to X_ik;
	// Seq disambiguates independent partials for the same output position.
	KP
	// KT addresses generic scratch values owned by routing primitives.
	KT
	// KStage is reserved for the vnet compiler's per-round source
	// snapshots; algorithm code must not use it.
	KStage Kind = 15
	// KindUser is the first Kind value available to algorithm packages for
	// their own scratch namespaces.
	KindUser Kind = 16
)

func (k Kind) String() string {
	switch k {
	case KA:
		return "A"
	case KB:
		return "B"
	case KX:
		return "X"
	case KP:
		return "P"
	case KT:
		return "T"
	case KStage:
		return "S"
	}
	return fmt.Sprintf("U%d", uint8(k))
}

// Key addresses one value within a node-local store.
type Key struct {
	Kind Kind
	I, J int32
	Seq  int32
}

func (k Key) String() string {
	if k.Seq == 0 {
		return fmt.Sprintf("%v(%d,%d)", k.Kind, k.I, k.J)
	}
	return fmt.Sprintf("%v(%d,%d)#%d", k.Kind, k.I, k.J, k.Seq)
}

// AKey addresses input element A_ij.
func AKey(i, j int32) Key { return Key{Kind: KA, I: i, J: j} }

// BKey addresses input element B_jk.
func BKey(j, k int32) Key { return Key{Kind: KB, I: j, J: k} }

// XKey addresses output element X_ik.
func XKey(i, k int32) Key { return Key{Kind: KX, I: i, J: k} }

// PKey addresses a partial value for output X_ik with disambiguator seq.
func PKey(i, k, seq int32) Key { return Key{Kind: KP, I: i, J: k, Seq: seq} }

// TKey addresses a scratch value.
func TKey(a, b, seq int32) Key { return Key{Kind: KT, I: a, J: b, Seq: seq} }
