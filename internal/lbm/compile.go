package lbm

import (
	"encoding/gob"
	"fmt"
	"io"
)

// This file is the lowering pass of the execution spine: it turns a Plan —
// rounds of Sends addressed by (node, Key) — into a CompiledPlan, a flat
// slot-addressed instruction stream. The supported model's premise (§2)
// makes this sound: every routing and addressing decision is a function of
// the sparsity structure alone, so the per-node occupancy analysis that
// assigns each key a dense arena slot is free preprocessing, and run time
// becomes a pure array program with no hashing and no allocation.

// SlotSpace performs the occupancy analysis: it assigns every (node, Key)
// pair ever touched by a pipeline a dense slot in that node's value arena.
// One SlotSpace is shared across every compiled artifact of a pipeline
// (plans, local product tasks, cleanup sweeps), so a key staged by one plan
// and consumed by a later one resolves to the same slot.
type SlotSpace struct {
	n    int
	idx  []map[Key]int32
	keys [][]Key
}

// NewSlotSpace returns an empty slot space for n computers.
func NewSlotSpace(n int) *SlotSpace {
	s := &SlotSpace{n: n, idx: make([]map[Key]int32, n), keys: make([][]Key, n)}
	for i := range s.idx {
		s.idx[i] = map[Key]int32{}
	}
	return s
}

// N returns the number of computers the space was built for.
func (s *SlotSpace) N() int { return s.n }

// Slot returns the slot of key k at node, assigning the next free slot on
// first sight.
func (s *SlotSpace) Slot(node NodeID, k Key) int32 {
	if sl, ok := s.idx[node][k]; ok {
		return sl
	}
	sl := int32(len(s.keys[node]))
	s.idx[node][k] = sl
	s.keys[node] = append(s.keys[node], k)
	return sl
}

// Lookup returns the slot of key k at node without assigning one.
func (s *SlotSpace) Lookup(node NodeID, k Key) (int32, bool) {
	sl, ok := s.idx[node][k]
	return sl, ok
}

// Ref returns a SlotRef for key k at node, assigning a slot if needed.
func (s *SlotSpace) Ref(node NodeID, k Key) SlotRef {
	return SlotRef{Node: node, Slot: s.Slot(node, k)}
}

// Sizes returns the per-node arena sizes (number of assigned slots).
func (s *SlotSpace) Sizes() []int32 {
	out := make([]int32, s.n)
	for i := range out {
		out[i] = int32(len(s.keys[i]))
	}
	return out
}

// KeyOf returns the key assigned to a slot (the reverse of Slot).
func (s *SlotSpace) KeyOf(node NodeID, slot int32) Key { return s.keys[node][slot] }

// EachKey visits every assigned (node, key, slot) triple in deterministic
// order (by node, then by slot assignment order).
func (s *SlotSpace) EachKey(f func(node NodeID, k Key, slot int32)) {
	for node := range s.keys {
		for slot, k := range s.keys[node] {
			f(NodeID(node), k, int32(slot))
		}
	}
}

// KeyTable returns a copy of the per-node slot→key tables, used to make a
// standalone CompiledPlan self-describing for serialization.
func (s *SlotSpace) KeyTable() [][]Key {
	out := make([][]Key, s.n)
	for i := range out {
		out[i] = append([]Key(nil), s.keys[i]...)
	}
	return out
}

// SlotRef addresses one arena slot of one computer — the compiled
// equivalent of a (node, Key) pair.
type SlotRef struct {
	Node NodeID
	Slot int32
}

// CompiledPlan is a Plan lowered to a flat slot-addressed instruction
// stream in structure-of-arrays form: instruction i moves the value in slot
// SrcSlot[i] of node From[i] into slot DstSlot[i] of node To[i] under
// Ops[i]. RoundOff is the round index: round t is the instruction range
// [RoundOff[t], RoundOff[t+1]). The model constraints (node IDs in range,
// one send and one receive per computer per round) are validated once at
// compile time instead of on every execution.
type CompiledPlan struct {
	// N is the machine size the plan was compiled for.
	N int
	// NumSlots are the per-node arena sizes observed at compile time. An
	// executor's arenas must be at least this large; a shared SlotSpace may
	// have grown past it by the time the pipeline's last plan is compiled.
	NumSlots []int32
	// Keys, when non-nil, is the slot→key table of a standalone compile —
	// it makes a serialized CompiledPlan self-describing, so a decoder can
	// resolve external (node, Key) addresses to slots.
	Keys [][]Key

	From, To         []int32
	SrcSlot, DstSlot []int32
	Ops              []Op
	// RoundOff has len(rounds)+1 entries; Real[t] is the number of real
	// (cross-node) messages of round t, precomputed so the executor's
	// stats replay does no per-round counting work.
	RoundOff []int32
	Real     []int32
	// Spans are the source plan's phase annotations, replayed identically
	// to the map engine when a collector is attached.
	Spans []PhaseSpan
	// HasSub records whether any instruction uses OpSub, so the executor
	// can reject a non-field ring once per run instead of per instruction.
	HasSub bool
}

// NumRounds returns the number of rounds in the compiled plan.
func (cp *CompiledPlan) NumRounds() int { return len(cp.RoundOff) - 1 }

// NumInstr returns the total number of instructions.
func (cp *CompiledPlan) NumInstr() int { return len(cp.From) }

// AddNodeLoads accumulates the plan's per-node real-message loads into
// send and recv (indexed by NodeID, length ≥ N). Loads are a compile-time
// property of the structure: the same counts an execution would charge to
// Stats.SendLoad/RecvLoad, available without running the plan. Partition
// balancers (internal/dist) consume them.
func (cp *CompiledPlan) AddNodeLoads(send, recv []int64) {
	for i, from := range cp.From {
		if to := cp.To[i]; from != to {
			send[from]++
			recv[to]++
		}
	}
}

// MemoryBytes estimates the resident size of the compiled form: the
// instruction arrays plus the round index. Serving caches use it as the
// LRU cost of a cached plan.
func (cp *CompiledPlan) MemoryBytes() int64 {
	n := int64(len(cp.From)) * (4 + 4 + 4 + 4 + 1) // SoA instruction arrays
	n += int64(len(cp.RoundOff)+len(cp.Real)) * 4
	n += int64(len(cp.NumSlots)) * 4
	for _, ks := range cp.Keys {
		n += int64(len(ks)) * 16
	}
	for _, s := range cp.Spans {
		n += int64(len(s.Label)) + 16 + int64(len(s.Metrics))*24
	}
	return n
}

// Compile lowers a plan to its slot-addressed executable form using a
// fresh, self-contained slot space; the machine size is inferred from the
// largest node ID referenced (use CompileInto with an explicit SlotSpace to
// share a slot space — and hence arenas — across the several plans of a
// pipeline). The result carries its own slot→key table, so it can be
// serialized and later executed against freshly loaded arenas.
func Compile(p *Plan) (*CompiledPlan, error) {
	n := 1
	for _, r := range p.Rounds {
		for _, s := range r {
			if int(s.From) >= n {
				n = int(s.From) + 1
			}
			if int(s.To) >= n {
				n = int(s.To) + 1
			}
		}
	}
	space := NewSlotSpace(n)
	cp, err := CompileInto(space, p)
	if err != nil {
		return nil, err
	}
	cp.Keys = space.KeyTable()
	return cp, nil
}

// CompileInto lowers a plan against a caller-owned slot space, assigning
// slots for every key the plan touches. Pipelines that interleave several
// plans with local computation over shared keys compile them all into one
// space so every artifact agrees on the addressing.
func CompileInto(space *SlotSpace, p *Plan) (*CompiledPlan, error) {
	n := space.N()
	if n < 1 {
		return nil, fmt.Errorf("lbm: compile: machine size %d", n)
	}
	total := 0
	for _, r := range p.Rounds {
		total += len(r)
	}
	cp := &CompiledPlan{
		N:        n,
		From:     make([]int32, 0, total),
		To:       make([]int32, 0, total),
		SrcSlot:  make([]int32, 0, total),
		DstSlot:  make([]int32, 0, total),
		Ops:      make([]Op, 0, total),
		RoundOff: make([]int32, 1, len(p.Rounds)+1),
		Real:     make([]int32, 0, len(p.Rounds)),
	}
	sentAt := make([]int, n)
	recvAt := make([]int, n)
	for i := range sentAt {
		sentAt[i] = -1
		recvAt[i] = -1
	}
	for t, r := range p.Rounds {
		var real int32
		for _, s := range r {
			if s.From < 0 || int(s.From) >= n || s.To < 0 || int(s.To) >= n {
				return nil, fmt.Errorf("lbm: compile: round %d: send %v -> %v out of range (n=%d)", t, s.From, s.To, n)
			}
			if s.Op > OpSub {
				return nil, fmt.Errorf("lbm: compile: round %d: unknown op %d", t, s.Op)
			}
			if s.Op == OpSub {
				cp.HasSub = true
			}
			if s.From != s.To {
				if sentAt[s.From] == t {
					return nil, fmt.Errorf("lbm: compile: node %d sends twice in round %d (key %v)", s.From, t, s.Src)
				}
				if recvAt[s.To] == t {
					return nil, fmt.Errorf("lbm: compile: node %d receives twice in round %d (key %v)", s.To, t, s.Dst)
				}
				sentAt[s.From] = t
				recvAt[s.To] = t
				real++
			}
			cp.From = append(cp.From, int32(s.From))
			cp.To = append(cp.To, int32(s.To))
			cp.SrcSlot = append(cp.SrcSlot, space.Slot(s.From, s.Src))
			cp.DstSlot = append(cp.DstSlot, space.Slot(s.To, s.Dst))
			cp.Ops = append(cp.Ops, s.Op)
		}
		cp.RoundOff = append(cp.RoundOff, int32(len(cp.From)))
		cp.Real = append(cp.Real, real)
	}
	for _, s := range p.Spans {
		if s.Start < 0 || s.End < s.Start || s.End > len(p.Rounds) {
			return nil, fmt.Errorf("lbm: compile: span %q covers rounds [%d,%d) of a %d-round plan",
				s.Label, s.Start, s.End, len(p.Rounds))
		}
	}
	cp.Spans = append(cp.Spans, p.Spans...)
	cp.NumSlots = space.Sizes()
	return cp, nil
}

// Validate statically checks a compiled plan's invariants: consistent array
// lengths, a monotone round index, node IDs in range, slots within the
// declared arena sizes, one send and one receive per node per round, and
// well-formed spans. Decoded compiled plans cross the same trust boundary
// as decoded Plans, so they are never handed to an executor unchecked.
func (cp *CompiledPlan) Validate() error {
	if cp.N < 1 {
		return fmt.Errorf("lbm: compiled plan: machine size %d", cp.N)
	}
	if len(cp.NumSlots) != cp.N {
		return fmt.Errorf("lbm: compiled plan: %d arena sizes for %d nodes", len(cp.NumSlots), cp.N)
	}
	if cp.Keys != nil {
		if len(cp.Keys) != cp.N {
			return fmt.Errorf("lbm: compiled plan: %d key tables for %d nodes", len(cp.Keys), cp.N)
		}
		for v, ks := range cp.Keys {
			if int32(len(ks)) != cp.NumSlots[v] {
				return fmt.Errorf("lbm: compiled plan: node %d key table has %d entries for %d slots", v, len(ks), cp.NumSlots[v])
			}
		}
	}
	ni := len(cp.From)
	if len(cp.To) != ni || len(cp.SrcSlot) != ni || len(cp.DstSlot) != ni || len(cp.Ops) != ni {
		return fmt.Errorf("lbm: compiled plan: ragged instruction arrays")
	}
	if len(cp.RoundOff) < 1 || cp.RoundOff[0] != 0 || int(cp.RoundOff[len(cp.RoundOff)-1]) != ni {
		return fmt.Errorf("lbm: compiled plan: round index does not cover the instruction stream")
	}
	if len(cp.Real) != len(cp.RoundOff)-1 {
		return fmt.Errorf("lbm: compiled plan: %d per-round counts for %d rounds", len(cp.Real), len(cp.RoundOff)-1)
	}
	sentAt := make([]int, cp.N)
	recvAt := make([]int, cp.N)
	for i := range sentAt {
		sentAt[i] = -1
		recvAt[i] = -1
	}
	hasSub := false
	for t := 0; t < len(cp.RoundOff)-1; t++ {
		lo, hi := cp.RoundOff[t], cp.RoundOff[t+1]
		if lo > hi {
			return fmt.Errorf("lbm: compiled plan: round index not monotone at round %d", t)
		}
		var real int32
		for i := lo; i < hi; i++ {
			from, to := cp.From[i], cp.To[i]
			if from < 0 || int(from) >= cp.N || to < 0 || int(to) >= cp.N {
				return fmt.Errorf("lbm: compiled plan: round %d: send %d -> %d out of range (n=%d)", t, from, to, cp.N)
			}
			if cp.SrcSlot[i] < 0 || cp.SrcSlot[i] >= cp.NumSlots[from] ||
				cp.DstSlot[i] < 0 || cp.DstSlot[i] >= cp.NumSlots[to] {
				return fmt.Errorf("lbm: compiled plan: round %d: slot out of range", t)
			}
			if cp.Ops[i] > OpSub {
				return fmt.Errorf("lbm: compiled plan: round %d: unknown op %d", t, cp.Ops[i])
			}
			if cp.Ops[i] == OpSub {
				hasSub = true
			}
			if from == to {
				continue
			}
			if sentAt[from] == t {
				return fmt.Errorf("lbm: compiled plan: node %d sends twice in round %d", from, t)
			}
			if recvAt[to] == t {
				return fmt.Errorf("lbm: compiled plan: node %d receives twice in round %d", to, t)
			}
			sentAt[from] = t
			recvAt[to] = t
			real++
		}
		if real != cp.Real[t] {
			return fmt.Errorf("lbm: compiled plan: round %d declares %d real messages, has %d", t, cp.Real[t], real)
		}
	}
	if hasSub != cp.HasSub {
		return fmt.Errorf("lbm: compiled plan: HasSub=%v disagrees with the instruction stream", cp.HasSub)
	}
	rounds := len(cp.RoundOff) - 1
	for _, s := range cp.Spans {
		if s.Start < 0 || s.End < s.Start || s.End > rounds {
			return fmt.Errorf("lbm: compiled plan: span %q covers rounds [%d,%d) of a %d-round plan",
				s.Label, s.Start, s.End, rounds)
		}
	}
	return nil
}

// ---------------------------------------------------------------------------
// Compiled plan serialization

// CompiledPlanFormatVersion tags every serialized compiled plan; the same
// bump discipline as PlanFormatVersion applies.
const CompiledPlanFormatVersion = 1

// compiledPlanMagic guards against feeding arbitrary gob streams (including
// serialized *Plans*) to DecodeCompiledPlan.
const compiledPlanMagic = "lbmm.cplan"

type compiledPlanEnvelope struct {
	Magic   string
	Version int
	Plan    CompiledPlan
}

// Encode writes the compiled plan in versioned gob form. Only standalone
// compiles (which carry their slot→key table) are serializable: without the
// table a decoder could not load values into the arenas.
func (cp *CompiledPlan) Encode(w io.Writer) error {
	if cp.Keys == nil {
		return fmt.Errorf("lbm: encode compiled plan: no key table (compiled into a shared slot space)")
	}
	return gob.NewEncoder(w).Encode(compiledPlanEnvelope{
		Magic: compiledPlanMagic, Version: CompiledPlanFormatVersion, Plan: *cp,
	})
}

// DecodeCompiledPlan reads a compiled plan written by Encode and validates
// it for a machine with n computers, with the same magic/version/validation
// discipline as DecodePlan: bad magic, a version mismatch, a machine-size
// mismatch, or any violated structural invariant fails loudly before the
// plan can reach an executor.
func DecodeCompiledPlan(r io.Reader, n int) (*CompiledPlan, error) {
	var env compiledPlanEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("lbm: decode compiled plan: %w", err)
	}
	if env.Magic != compiledPlanMagic {
		return nil, fmt.Errorf("lbm: decode compiled plan: bad magic %q (not a serialized compiled plan)", env.Magic)
	}
	if env.Version != CompiledPlanFormatVersion {
		return nil, fmt.Errorf("lbm: decode compiled plan: format version %d, this build reads only %d",
			env.Version, CompiledPlanFormatVersion)
	}
	cp := &env.Plan
	if cp.N != n {
		return nil, fmt.Errorf("lbm: decode compiled plan: compiled for %d computers, machine has %d", cp.N, n)
	}
	if cp.Keys == nil {
		return nil, fmt.Errorf("lbm: decode compiled plan: missing key table")
	}
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	return cp, nil
}
