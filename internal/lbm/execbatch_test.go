package lbm

import (
	"math/rand"
	"reflect"
	"testing"

	"lbmm/internal/ring"
)

// laneLoads derives k independent value assignments over one shared load
// structure: lane l gets the seed loads with values perturbed by a
// lane-specific rng, so every lane exercises the same (node, key) pattern
// with different numbers — the contract the batched engine is built on.
func laneLoads(rng *rand.Rand, base []load, lanes int) [][]load {
	out := make([][]load, lanes)
	for l := range out {
		ls := make([]load, len(base))
		copy(ls, base)
		for i := range ls {
			ls[i].val = ring.Value(rng.Intn(7))
		}
		out[l] = ls
	}
	return out
}

// runMachineBatch executes the plan on the map-backed batched oracle.
func runMachineBatch(t *testing.T, p *Plan, perLane [][]load, r ring.Semiring, opts ...Option) (*MachineBatch, error) {
	t.Helper()
	mb := NewMachineBatch(6, len(perLane), r, opts...)
	for l, loads := range perLane {
		for _, ld := range loads {
			mb.PutLane(ld.node, ld.key, l, ld.val)
		}
	}
	return mb, mb.Run(p)
}

// runExecBatch lowers the plan into a caller-owned slot space and executes
// it on a lane-strided Exec carrying every lane at once.
func runExecBatch(t *testing.T, p *Plan, perLane [][]load, r ring.Semiring, opts ...Option) (*SlotSpace, *Exec, error) {
	t.Helper()
	sp := NewSlotSpace(6)
	for _, ld := range perLane[0] {
		sp.Slot(ld.node, ld.key)
	}
	cp, err := CompileInto(sp, p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	x := NewExecBatch(sp.Sizes(), len(perLane), r, opts...)
	for l, loads := range perLane {
		for _, ld := range loads {
			x.PutLane(sp.Ref(ld.node, ld.key), l, ld.val)
		}
	}
	return sp, x, x.Run(cp)
}

// compareLanes checks that every lane of the batched executor matches the
// corresponding oracle machine over the whole slot space.
func compareLanes(t *testing.T, sp *SlotSpace, mb *MachineBatch, x *Exec) {
	t.Helper()
	for l := 0; l < mb.Lanes(); l++ {
		m := mb.Lane(l)
		sp.EachKey(func(node NodeID, k Key, slot int32) {
			mv, mok := m.Get(node, k)
			xv, xok := x.GetLane(SlotRef{Node: node, Slot: slot}, l)
			if mok != xok || mv != xv {
				t.Errorf("lane %d node %d key %v: map (%v,%v) vs batched (%v,%v)",
					l, node, k, mv, mok, xv, xok)
			}
		})
	}
}

// TestExecBatchParityRandom is the batched engine-parity property test: on
// randomized plans a lane-strided Exec carrying k value assignments must
// reproduce, lane for lane, what k independent map machines produce — and
// the shared instruction walk must report the same Stats the scalar run
// does (presence and message accounting are per-slot, not per-lane).
func TestExecBatchParityRandom(t *testing.T) {
	rings := []struct {
		r   ring.Semiring
		sub bool
	}{
		{ring.Counting{}, false},
		{ring.MinPlus{}, false},
		{ring.Real{}, true},
		{ring.NewGFp(1009), true},
	}
	for _, rc := range rings {
		for seed := int64(0); seed < 6; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p, base := randomPlan(rng, 6, 10, rc.sub)
			for _, lanes := range []int{1, 3, 8} {
				perLane := laneLoads(rng, base, lanes)
				mb, merr := runMachineBatch(t, p, perLane, rc.r)
				if merr != nil {
					t.Fatalf("%s seed %d lanes %d: map: %v", rc.r.Name(), seed, lanes, merr)
				}
				for _, opts := range [][]Option{
					nil,
					{WithWorkers(3), WithParBatch(1)},
				} {
					sp, x, xerr := runExecBatch(t, p, perLane, rc.r, opts...)
					if xerr != nil {
						t.Fatalf("%s seed %d lanes %d: batched: %v", rc.r.Name(), seed, lanes, xerr)
					}
					compareLanes(t, sp, mb, x)
					if !reflect.DeepEqual(mb.Stats(), x.Stats()) {
						t.Errorf("%s seed %d lanes %d: stats differ:\n map     %+v\n batched %+v",
							rc.r.Name(), seed, lanes, mb.Stats(), x.Stats())
					}
				}
			}
		}
	}
}

// TestExecBatchReset checks that a lane-strided executor recycled through
// Reset carries no value leakage between batches: a second batch with
// different lane values must match its own oracle exactly.
func TestExecBatchReset(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	p, base := randomPlan(rng, 6, 8, true)
	sp := NewSlotSpace(6)
	for _, ld := range base {
		sp.Slot(ld.node, ld.key)
	}
	cp, err := CompileInto(sp, p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	x := NewExecBatch(sp.Sizes(), 4, ring.Real{})
	for round := 0; round < 3; round++ {
		perLane := laneLoads(rng, base, 4)
		x.Reset()
		for l, loads := range perLane {
			for _, ld := range loads {
				x.PutLane(sp.Ref(ld.node, ld.key), l, ld.val)
			}
		}
		if err := x.Run(cp); err != nil {
			t.Fatalf("round %d: run: %v", round, err)
		}
		mb, merr := runMachineBatch(t, p, perLane, ring.Real{})
		if merr != nil {
			t.Fatalf("round %d: map: %v", round, merr)
		}
		compareLanes(t, sp, mb, x)
	}
}

// TestExecBatchLaneAccessors pins the lane accessor contract: PutLane
// writes one lane, MustLanes exposes the live stride, AccLanes folds into
// every lane with presence resolved once.
func TestExecBatchLaneAccessors(t *testing.T) {
	x := NewExecBatch([]int32{2}, 3, ring.Counting{})
	ref := SlotRef{Node: 0, Slot: 0}
	if x.Lanes() != 3 {
		t.Fatalf("Lanes() = %d, want 3", x.Lanes())
	}
	if _, ok := x.GetLane(ref, 0); ok {
		t.Fatal("GetLane on empty slot reported present")
	}
	for l := 0; l < 3; l++ {
		x.PutLane(ref, l, ring.Value(l+1))
	}
	vs := x.MustLanes(ref)
	if !reflect.DeepEqual(vs, []ring.Value{1, 2, 3}) {
		t.Fatalf("MustLanes = %v, want [1 2 3]", vs)
	}
	x.AccLanes(ref, []ring.Value{10, 20, 30})
	for l, want := range []ring.Value{11, 22, 33} {
		got, ok := x.GetLane(ref, l)
		if !ok || got != want {
			t.Errorf("lane %d: got (%v,%v), want %v", l, got, ok, want)
		}
	}
	// AccLanes into an absent slot must not see stale values.
	other := SlotRef{Node: 0, Slot: 1}
	x.AccLanes(other, []ring.Value{5, 6, 7})
	for l, want := range []ring.Value{5, 6, 7} {
		got, ok := x.GetLane(other, l)
		if !ok || got != want {
			t.Errorf("absent-slot lane %d: got (%v,%v), want %v", l, got, ok, want)
		}
	}
}
