package lbm

import (
	"errors"
	"fmt"

	"lbmm/internal/ring"
)

// This file is the communication seam of the execution spine. Both engines
// walk a plan's rounds; the point where a round's real messages leave their
// senders and reach their receivers — previously implicit in the in-memory
// gather/deliver — is factored behind Transport so the same instruction walk
// drives an in-process loopback or a mesh of TCP peers (internal/dist).
//
// The contract mirrors the model: rounds are synchronous barriers. Every
// participant walks the identical plan, so all of them observe the same
// round sequence and the same per-round real-message count; a round with at
// least one real message performs exactly one Send per owned sender followed
// by exactly one Deliver (the barrier), and the one-receive-per-round
// invariant makes (round, destination) a unique payload address. Rounds of
// only free local copies never touch the transport.
//
// A nil transport is the default and is not merely Loopback spelled
// differently: it selects the original single-process fast path, with no
// ownership checks and no per-round map traffic. Loopback routes every real
// message through the full seam while owning every node, which the
// differential tests hold to byte-identical results, Stats and fault
// provenance against the nil-transport engines.

// ErrDuplicateDelivery is the typed violation of the one-receive-per-round
// contract: two payloads addressed to one destination node inside a single
// network round. Transports reject the second send (or receipt) with an
// error wrapping this sentinel instead of silently clobbering the first
// payload — the engines never produce such a round (compile-time and
// checkRound validation), so a duplicate means a corrupted peer or a broken
// transport, and the execution must fail loudly.
var ErrDuplicateDelivery = errors.New("lbm: duplicate payload for one destination in one round")

// valueWireBytes is the model-level size of one ring value on the wire
// (ring.Value is a float64). Stats.RoundBytes counts payload values at this
// size; the framing overhead of a real backend is measured separately by its
// net/* counters.
const valueWireBytes = 8

// Transport moves one round's real messages between nodes. Implementations
// are used by a single execution at a time (engines are not concurrent
// internally), but several executions may each hold their own Transport.
type Transport interface {
	// Owns reports whether this participant hosts node v's store. Non-owned
	// stores are inert: writes to them are dropped and their sends are some
	// other participant's job.
	Owns(v NodeID) bool
	// Send queues the payload of one real message of the given network round
	// for delivery to the store of dst (which may be local). The payload
	// slice must remain untouched by the caller until Deliver returns; it
	// carries one value per lane.
	Send(round int, dst NodeID, payload []ring.Value) error
	// Deliver is the round barrier: it flushes queued sends, waits for every
	// peer, and returns the payloads addressed to locally-owned nodes, keyed
	// by destination (unique per round by the one-receive invariant). It is
	// called exactly once per network round by every participant, after all
	// of that participant's Sends for the round.
	Deliver(round int) (map[NodeID][]ring.Value, error)
}

// Loopback is the in-process Transport: it owns every node and stashes each
// round's payloads in memory, so Deliver returns them without any wire. It
// exists to exercise the full transport seam — ownership checks, Send and
// barrier ordering — while staying bit-identical to the nil-transport
// engines, which the differential tests assert.
type Loopback struct {
	inbox map[NodeID][]ring.Value
}

// Owns reports true: a loopback participant hosts every node.
func (lb *Loopback) Owns(NodeID) bool { return true }

// Send stashes the payload under its destination. A second payload for the
// same destination within one round is a contract violation and returns an
// error wrapping ErrDuplicateDelivery.
func (lb *Loopback) Send(round int, dst NodeID, payload []ring.Value) error {
	if lb.inbox == nil {
		lb.inbox = make(map[NodeID][]ring.Value)
	}
	if _, dup := lb.inbox[dst]; dup {
		return fmt.Errorf("lbm: loopback round %d, node %d: %w", round, dst, ErrDuplicateDelivery)
	}
	lb.inbox[dst] = payload
	return nil
}

// Deliver hands back the round's stash.
func (lb *Loopback) Deliver(round int) (map[NodeID][]ring.Value, error) {
	in := lb.inbox
	lb.inbox = nil
	return in, nil
}

// MergeStats combines the per-participant statistics of one partitioned
// execution into the whole-run view a single-process engine would report.
// Per-owned-node charges (Messages, LocalCopies, SendLoad, RecvLoad) sum
// across the disjoint partitions; run-global measures every participant
// observed identically (Rounds, RoundBytes, PeakStore as the max over the
// per-node trajectories it hosts) merge by max.
func MergeStats(parts ...Stats) Stats {
	var out Stats
	for _, p := range parts {
		if p.Rounds > out.Rounds {
			out.Rounds = p.Rounds
		}
		if p.PeakStore > out.PeakStore {
			out.PeakStore = p.PeakStore
		}
		out.Messages += p.Messages
		out.LocalCopies += p.LocalCopies
		if len(p.SendLoad) > len(out.SendLoad) {
			out.SendLoad = append(out.SendLoad, make([]int64, len(p.SendLoad)-len(out.SendLoad))...)
			out.RecvLoad = append(out.RecvLoad, make([]int64, len(p.RecvLoad)-len(out.RecvLoad))...)
		}
		for i, v := range p.SendLoad {
			out.SendLoad[i] += v
		}
		for i, v := range p.RecvLoad {
			out.RecvLoad[i] += v
		}
		if len(p.RoundBytes) > len(out.RoundBytes) {
			out.RoundBytes = append(out.RoundBytes, make([]int64, len(p.RoundBytes)-len(out.RoundBytes))...)
		}
		for i, v := range p.RoundBytes {
			if v > out.RoundBytes[i] {
				out.RoundBytes[i] = v
			}
		}
	}
	return out
}

// WithTransport attaches a transport to a machine or executor. nil (the
// default) keeps the original in-memory fast path.
func WithTransport(t Transport) Option {
	return func(m *Machine) { m.transport = t }
}

// Owns reports whether this machine hosts node v's store (always true
// without a transport).
func (m *Machine) Owns(v NodeID) bool {
	return m.transport == nil || m.transport.Owns(v)
}

// Owns reports whether this executor hosts node v's store (always true
// without a transport).
func (x *Exec) Owns(v NodeID) bool {
	return x.transport == nil || x.transport.Owns(v)
}

// runRoundVia executes one round through the machine's transport: validate,
// inject, gather owned payloads against the round-start state, exchange real
// messages at the barrier, apply deliveries in instruction order, then
// charge the owned share of the stats. With Loopback (owns-all) every step
// reduces to the nil-transport RunRound exactly.
func (m *Machine) runRoundVia(r Round) error {
	real, err := m.checkRound(r)
	if err != nil {
		return err
	}
	// Fault injection covers the full round on every participant — the walk
	// depends only on the plan, so all of them reach the same verdict and
	// abort before anything is sent, leaving no frame in flight.
	if m.injector != nil {
		if err := m.injectRound(r); err != nil {
			return err
		}
	}
	tr := m.transport
	vals := make([]ring.Value, len(r))
	have := make([]bool, len(r))
	for idx, s := range r {
		if !tr.Owns(s.From) {
			continue
		}
		v, ok := m.stores[s.From][s.Src]
		if !ok {
			return fmt.Errorf("lbm: node %d cannot send missing key %v", s.From, s.Src)
		}
		vals[idx] = v
		have[idx] = true
	}
	if m.StoreLimit > 0 {
		if err := m.checkStoreLimit(r); err != nil {
			return err
		}
	}
	var inbound map[NodeID][]ring.Value
	if real > 0 {
		rt := m.stats.Rounds // network round index: the pre-increment counter
		for idx, s := range r {
			if s.From == s.To || !have[idx] {
				continue
			}
			if err := tr.Send(rt, s.To, vals[idx:idx+1]); err != nil {
				return err
			}
		}
		// The barrier runs whenever the round carries real messages, even on
		// a participant that owns none of them: every peer must ack.
		if inbound, err = tr.Deliver(rt); err != nil {
			return err
		}
	}
	for idx, s := range r {
		if s.From == s.To {
			if !have[idx] {
				continue
			}
			m.applyDelivery(s, vals[idx])
			continue
		}
		if !tr.Owns(s.To) {
			continue
		}
		vs, ok := inbound[s.To]
		if !ok {
			return fmt.Errorf("lbm: transport delivered no payload for node %d in network round %d", s.To, m.stats.Rounds)
		}
		m.applyDelivery(s, vs[0])
	}
	if real > 0 {
		m.stats.Rounds++
		m.stats.RoundBytes = append(m.stats.RoundBytes, real*valueWireBytes)
		c := m.collector
		var locals, ownedLocals, ownedReal int64
		for _, s := range r {
			if s.From != s.To {
				if tr.Owns(s.From) {
					ownedReal++
					m.stats.SendLoad[s.From]++
					if c != nil {
						c.OnSend(s.From, s.To)
					}
				}
				if tr.Owns(s.To) {
					m.stats.RecvLoad[s.To]++
				}
			} else {
				locals++
				if tr.Owns(s.From) {
					ownedLocals++
				}
			}
		}
		m.stats.Messages += ownedReal
		m.stats.LocalCopies += ownedLocals
		if c != nil {
			c.OnRound(int(real), int(locals))
		}
	} else if len(r) > 0 {
		var owned int64
		for _, s := range r {
			if tr.Owns(s.From) {
				owned++
			}
		}
		m.stats.LocalCopies += owned
	}
	return nil
}

// applyDelivery merges one payload value into the receiver's store with peak
// tracking, the single-send form of deliver.
func (m *Machine) applyDelivery(s Send, v ring.Value) {
	st := m.stores[s.To]
	m.applyOp(st, s.Dst, s.Op, v)
	if len(st) > m.stats.PeakStore {
		m.stats.PeakStore = len(st)
	}
}

// runRoundVia is the compiled engine's transport round: the same shape as
// Machine.runRoundVia over the SoA instruction range, carrying all lanes of
// each message in one payload.
func (x *Exec) runRoundVia(cp *CompiledPlan, t int) error {
	lo, hi := int(cp.RoundOff[t]), int(cp.RoundOff[t+1])
	if hi == lo {
		return nil
	}
	if x.injector != nil {
		if err := x.injectRound(cp, lo, hi); err != nil {
			return err
		}
	}
	tr := x.transport
	K := x.lanes
	// Gather owned payloads against the round-start state into a fresh
	// buffer: its sub-slices are handed to the transport, which may hold them
	// until the barrier, so the shared scratch of the fast path cannot back
	// them. Capacity is exact, so sub-slices never move.
	buf := make([]ring.Value, 0, (hi-lo)*K)
	vals := make([][]ring.Value, hi-lo)
	for i := lo; i < hi; i++ {
		from, slot := cp.From[i], cp.SrcSlot[i]
		if !tr.Owns(from) {
			continue
		}
		if x.stamp[from][slot] != x.epoch {
			return x.missingErr(cp, i)
		}
		n := len(buf)
		buf = append(buf, x.arena[from][int(slot)*K:(int(slot)+1)*K]...)
		vals[i-lo] = buf[n : n+K]
	}
	if x.StoreLimit > 0 {
		if err := x.checkStoreLimit(cp, lo, hi); err != nil {
			return err
		}
	}
	real := int64(cp.Real[t])
	var inbound map[NodeID][]ring.Value
	if real > 0 {
		rt := x.stats.Rounds
		for i := lo; i < hi; i++ {
			if cp.From[i] == cp.To[i] || vals[i-lo] == nil {
				continue
			}
			if err := tr.Send(rt, cp.To[i], vals[i-lo]); err != nil {
				return err
			}
		}
		var err error
		if inbound, err = tr.Deliver(rt); err != nil {
			return err
		}
	}
	for i := lo; i < hi; i++ {
		to := cp.To[i]
		if cp.From[i] == to {
			if vals[i-lo] == nil {
				continue
			}
			x.applyValues(cp, i, vals[i-lo])
			continue
		}
		if !tr.Owns(to) {
			continue
		}
		vs, ok := inbound[to]
		if !ok {
			return fmt.Errorf("lbm: transport delivered no payload for node %d in network round %d", to, x.stats.Rounds)
		}
		if len(vs) != K {
			return fmt.Errorf("lbm: transport payload for node %d carries %d values, want %d lanes", to, len(vs), K)
		}
		x.applyValues(cp, i, vs)
	}
	if real > 0 {
		x.stats.Rounds++
		x.stats.RoundBytes = append(x.stats.RoundBytes, real*valueWireBytes)
		c := x.collector
		var locals, ownedLocals, ownedReal int64
		for i := lo; i < hi; i++ {
			from, to := cp.From[i], cp.To[i]
			if from != to {
				if tr.Owns(from) {
					ownedReal++
					x.stats.SendLoad[from]++
					if c != nil {
						c.OnSend(from, to)
					}
				}
				if tr.Owns(to) {
					x.stats.RecvLoad[to]++
				}
			} else {
				locals++
				if tr.Owns(from) {
					ownedLocals++
				}
			}
		}
		x.stats.Messages += ownedReal
		x.stats.LocalCopies += ownedLocals
		if c != nil {
			c.OnRound(int(real), int(locals))
		}
	} else {
		var owned int64
		for i := lo; i < hi; i++ {
			if tr.Owns(cp.From[i]) {
				owned++
			}
		}
		x.stats.LocalCopies += owned
	}
	return nil
}

// applyValues delivers one instruction's payload lanes into the destination
// slot and marks it present — applyInstr with an explicit payload slice
// instead of the round scratch layout.
func (x *Exec) applyValues(cp *CompiledPlan, i int, vs []ring.Value) {
	to, dst := cp.To[i], cp.DstSlot[i]
	K := x.lanes
	if K == 1 {
		v := vs[0]
		switch cp.Ops[i] {
		case OpAcc:
			cur := x.R.Zero()
			if x.present(to, dst) {
				cur = x.arena[to][dst]
			}
			x.arena[to][dst] = x.R.Add(cur, v)
		case OpSub:
			cur := x.R.Zero()
			if x.present(to, dst) {
				cur = x.arena[to][dst]
			}
			x.arena[to][dst] = x.field.Sub(cur, v)
		default:
			x.arena[to][dst] = v
		}
		x.markPresent(to, dst)
		return
	}
	ds := x.arena[to][int(dst)*K : (int(dst)+1)*K]
	switch cp.Ops[i] {
	case OpAcc:
		if x.present(to, dst) {
			for l, v := range vs {
				ds[l] = x.R.Add(ds[l], v)
			}
		} else {
			zero := x.R.Zero()
			for l, v := range vs {
				ds[l] = x.R.Add(zero, v)
			}
		}
	case OpSub:
		if x.present(to, dst) {
			for l, v := range vs {
				ds[l] = x.field.Sub(ds[l], v)
			}
		} else {
			zero := x.R.Zero()
			for l, v := range vs {
				ds[l] = x.field.Sub(zero, v)
			}
		}
	default:
		copy(ds, vs)
	}
	x.markPresent(to, dst)
}
