package lbm

import (
	"fmt"
	"strings"
)

// Trace records a per-round message timeline with phase labels, for
// understanding where an algorithm's round budget goes. Tracing is off by
// default; enable it with WithTrace or EnableTrace.
type Trace struct {
	// PerRound[i] is the number of real messages in the i-th counted round.
	PerRound []int
	// Marks are phase labels: Marks[r] annotates the boundary *before*
	// counted round r.
	Marks map[int][]string
}

// WithTrace enables round tracing on a new machine.
func WithTrace() Option { return func(m *Machine) { m.EnableTrace() } }

// EnableTrace switches tracing on (no-op if already on).
func (m *Machine) EnableTrace() {
	if m.trace == nil {
		m.trace = &Trace{Marks: map[int][]string{}}
	}
}

// Trace returns the recorded trace, or nil when tracing is off.
func (m *Machine) Trace() *Trace { return m.trace }

// Mark annotates the current position in the round timeline with a phase
// label (free; no-op when tracing is off).
func (m *Machine) Mark(label string) {
	if m.trace == nil {
		return
	}
	r := len(m.trace.PerRound)
	m.trace.Marks[r] = append(m.trace.Marks[r], label)
}

// record appends one counted round with its real-message count.
func (tr *Trace) record(realMsgs int) {
	tr.PerRound = append(tr.PerRound, realMsgs)
}

// Timeline renders the trace as a compact text histogram: one line per
// phase segment with its round span, message volume, and a sparkline of
// per-round sizes.
func (tr *Trace) Timeline() string {
	if tr == nil {
		return "(tracing disabled)\n"
	}
	type segment struct {
		label    string
		from, to int // round range [from, to)
	}
	var segs []segment
	current := "start"
	from := 0
	for r := 0; r <= len(tr.PerRound); r++ {
		labels, marked := tr.Marks[r]
		if marked && r > from {
			segs = append(segs, segment{label: current, from: from, to: r})
			from = r
		}
		if marked {
			current = strings.Join(labels, "+")
			if r == from && len(segs) == 0 && r == 0 {
				// Label at the very start replaces the default.
			}
		}
	}
	if from < len(tr.PerRound) {
		segs = append(segs, segment{label: current, from: from, to: len(tr.PerRound)})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s  %s\n", "phase", "rounds", "messages", "per-round profile")
	for _, s := range segs {
		total := 0
		peak := 0
		for _, v := range tr.PerRound[s.from:s.to] {
			total += v
			if v > peak {
				peak = v
			}
		}
		fmt.Fprintf(&b, "%-28s %10d %10d  %s\n",
			s.label, s.to-s.from, total, spark(tr.PerRound[s.from:s.to], peak))
	}
	return b.String()
}

// spark renders up to 40 buckets of the round sizes as a unicode sparkline.
func spark(vals []int, peak int) string {
	if len(vals) == 0 || peak == 0 {
		return ""
	}
	const width = 40
	levels := []rune("▁▂▃▄▅▆▇█")
	buckets := len(vals)
	if buckets > width {
		buckets = width
	}
	out := make([]rune, buckets)
	for i := 0; i < buckets; i++ {
		lo := i * len(vals) / buckets
		hi := (i + 1) * len(vals) / buckets
		if hi == lo {
			hi = lo + 1
		}
		mx := 0
		for _, v := range vals[lo:hi] {
			if v > mx {
				mx = v
			}
		}
		idx := mx * (len(levels) - 1) / peak
		out[i] = levels[idx]
	}
	return string(out)
}
