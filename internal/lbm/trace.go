package lbm

import (
	"fmt"
	"strings"

	"lbmm/internal/obsv"
)

// Trace is the legacy flat view of a recorded execution profile: a
// per-round message timeline with boundary labels. It is now a thin
// read-only adapter over the machine's obsv.Profile collector — new code
// should use Machine.Profile() directly, which additionally carries nested
// phase spans, per-node loads and structural counters.
type Trace struct {
	// PerRound[i] is the number of real messages in the i-th counted round.
	PerRound []int
	// Marks are phase labels: Marks[r] annotates the boundary *before*
	// counted round r. Labels placed before rounds that end up empty are
	// carried forward to the next counted round (never silently dropped);
	// labels after the final counted round appear at r == len(PerRound).
	Marks map[int][]string
}

// WithTrace enables round tracing on a new machine by attaching a fresh
// obsv.Profile collector.
func WithTrace() Option { return func(m *Machine) { m.EnableTrace() } }

// EnableTrace switches tracing on (no-op if a collector is already
// attached).
func (m *Machine) EnableTrace() {
	if m.collector == nil {
		m.collector = obsv.NewProfile()
	}
}

// Trace returns a snapshot of the recorded trace, or nil when no profile
// collector is attached.
func (m *Machine) Trace() *Trace {
	p := m.Profile()
	if p == nil {
		return nil
	}
	tr := &Trace{PerRound: p.PerRoundMessages(), Marks: map[int][]string{}}
	for _, mk := range p.Marks() {
		tr.Marks[mk.Round] = append(tr.Marks[mk.Round], mk.Labels...)
	}
	return tr
}

// Mark annotates the current position in the round timeline with a phase
// label (free; no-op when no collector is attached). The label anchors to
// the next counted round: if the rounds that follow are all empty or
// local-only, the label merges into the next real round's boundary instead
// of vanishing.
func (m *Machine) Mark(label string) {
	if m.collector != nil {
		m.collector.Mark(label)
	}
}

// Timeline renders the trace as a compact text histogram: one line per
// phase segment with its round span, message volume, and a sparkline of
// per-round sizes. Trailing labels with no rounds after them render as
// zero-round segments.
func (tr *Trace) Timeline() string {
	if tr == nil {
		return "(tracing disabled)\n"
	}
	type segment struct {
		label    string
		from, to int // round range [from, to)
	}
	var segs []segment
	current := "start"
	from := 0
	for r := 0; r <= len(tr.PerRound); r++ {
		labels, marked := tr.Marks[r]
		if !marked {
			continue
		}
		if r > from {
			segs = append(segs, segment{label: current, from: from, to: r})
		}
		current = strings.Join(labels, "+")
		from = r
	}
	if from < len(tr.PerRound) || tr.Marks[from] != nil {
		segs = append(segs, segment{label: current, from: from, to: len(tr.PerRound)})
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %10s  %s\n", "phase", "rounds", "messages", "per-round profile")
	for _, s := range segs {
		total := 0
		peak := 0
		for _, v := range tr.PerRound[s.from:s.to] {
			total += v
			if v > peak {
				peak = v
			}
		}
		fmt.Fprintf(&b, "%-28s %10d %10d  %s\n",
			s.label, s.to-s.from, total, spark(tr.PerRound[s.from:s.to], peak))
	}
	return b.String()
}

// spark renders up to 40 buckets of the round sizes as a unicode sparkline.
func spark(vals []int, peak int) string {
	if len(vals) == 0 || peak == 0 {
		return ""
	}
	const width = 40
	levels := []rune("▁▂▃▄▅▆▇█")
	buckets := len(vals)
	if buckets > width {
		buckets = width
	}
	out := make([]rune, buckets)
	for i := 0; i < buckets; i++ {
		lo := i * len(vals) / buckets
		hi := (i + 1) * len(vals) / buckets
		if hi == lo {
			hi = lo + 1
		}
		mx := 0
		for _, v := range vals[lo:hi] {
			if v > mx {
				mx = v
			}
		}
		idx := mx * (len(levels) - 1) / peak
		out[i] = levels[idx]
	}
	return string(out)
}
