package lbm

import (
	"errors"
	"fmt"
)

// This file is the fault-injection seam of the execution spine. The model
// assumes a perfect synchronous network: every round each computer sends at
// most one message and receives at most one message, and every sent message
// arrives before the round barrier (§2). A production deployment cannot
// assume that, so both engines accept an Injector — a deterministic oracle
// deciding which messages a fault strikes — and turn every injected fault
// into the detection a real synchronous runtime would perform at the round
// barrier: a dropped, delayed or straggling message is a missing delivery,
// a duplicated message violates the one-receive invariant, a corrupted
// payload fails its checksum. Detection surfaces as a typed *ErrFault
// carrying the network round and the node that observed the violation, so a
// supervisor (the serving layer's retry/fallback policy, the chaos
// differential harness) can reason about the failure instead of pattern
// matching error strings.
//
// Rounds are numbered by a per-run network round counter: every executed
// round that carries at least one real (cross-node) message advances it,
// rounds of only free local copies do not. The counter spans all plans of a
// pipeline, so the map and compiled engines — which execute the identical
// round sequence for a prepared structure — agree on the index of every
// message and hence, under a shared Injector, fail identically. The chaos
// harness (internal/chaos) holds them to exactly that.

// FaultKind classifies an injected network fault.
type FaultKind uint8

const (
	// FaultNone is the absence of a fault (an Injector's clean verdict).
	FaultNone FaultKind = iota
	// FaultDrop loses a message: the receiver detects a missing delivery at
	// the round barrier.
	FaultDrop
	// FaultDuplicate delivers a message twice: the second copy violates the
	// receiver's one-receive-per-round invariant.
	FaultDuplicate
	// FaultCorrupt flips payload bits in flight: the receiver's checksum
	// rejects the message, which is then as good as lost.
	FaultCorrupt
	// FaultDelay holds a message past the round barrier: the receiver
	// detects a missing delivery in the round it was due.
	FaultDelay
	// FaultStraggle marks a whole computer late for a round: none of its
	// messages make the barrier. Attribution names the straggler itself.
	FaultStraggle
)

// String names the kind the way docs/CHAOS.md does.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultCorrupt:
		return "corrupt"
	case FaultDelay:
		return "delay"
	case FaultStraggle:
		return "straggle"
	default:
		return fmt.Sprintf("fault(%d)", uint8(k))
	}
}

// ErrFault is the typed error surfaced when an executor detects an injected
// network fault. Both engines produce identical ErrFault values for the
// same injector on the same prepared structure.
type ErrFault struct {
	// Kind says what struck the message.
	Kind FaultKind
	// Round is the global network round index (0-based, counted across all
	// plans of the run; rounds without real messages don't count).
	Round int
	// Node is the computer that detected the violation: the receiver for
	// drop/duplicate/corrupt/delay, the straggler itself for straggle.
	Node NodeID
	// From, To are the endpoints of the struck message.
	From, To NodeID
}

// Error describes the detected violation in round/node terms.
func (e *ErrFault) Error() string {
	switch e.Kind {
	case FaultDuplicate:
		return fmt.Sprintf("lbm: fault: node %d received twice in network round %d (duplicated message %d→%d)",
			e.Node, e.Round, e.From, e.To)
	case FaultCorrupt:
		return fmt.Sprintf("lbm: fault: node %d rejected a corrupt payload in network round %d (message %d→%d)",
			e.Node, e.Round, e.From, e.To)
	case FaultStraggle:
		return fmt.Sprintf("lbm: fault: node %d straggled past the round %d barrier (message %d→%d undelivered)",
			e.Node, e.Round, e.From, e.To)
	default: // drop, delay: a missing delivery at the barrier
		return fmt.Sprintf("lbm: fault: node %d missing a delivery in network round %d (%s of message %d→%d)",
			e.Node, e.Round, e.Kind, e.From, e.To)
	}
}

// AsFault unwraps an *ErrFault from an error chain.
func AsFault(err error) (*ErrFault, bool) {
	var e *ErrFault
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// IsFault reports whether the error chain carries an injected-fault
// detection.
func IsFault(err error) bool {
	_, ok := AsFault(err)
	return ok
}

// Injector decides, deterministically, which faults strike which messages.
// Implementations must be pure functions of their arguments (plus their own
// immutable configuration): both engines consult the injector for the same
// (round, ordinal) sequence and must reach the same verdicts, and a single
// injector may be shared by concurrent executions.
type Injector interface {
	// Decide returns the fault striking the ord-th real message of global
	// network round `round` (messages ordered as planned), or FaultNone.
	Decide(round, ord int, from, to NodeID) FaultKind
	// Straggles reports whether node misses the barrier of the given round
	// entirely (checked for every sender of the round before per-message
	// faults).
	Straggles(round int, node NodeID) bool
}

// WithInjector attaches a fault injector to a machine or executor. A nil
// injector (the default) is the zero-overhead path: the fault seam is a
// single nil check per round.
func WithInjector(inj Injector) Option {
	return func(m *Machine) { m.injector = inj }
}

// injectRound is the shared detection walk: it visits the round's real
// messages in plan order, advances the network round counter, and returns
// the first detected fault. next reports each real message; it is called
// until it returns done=true.
func injectRound(inj Injector, netRound *int, next func() (from, to NodeID, done bool)) error {
	t := *netRound
	ord := 0
	for {
		from, to, done := next()
		if done {
			break
		}
		if inj.Straggles(t, from) {
			return &ErrFault{Kind: FaultStraggle, Round: t, Node: from, From: from, To: to}
		}
		if k := inj.Decide(t, ord, from, to); k != FaultNone {
			return &ErrFault{Kind: k, Round: t, Node: to, From: from, To: to}
		}
		ord++
	}
	if ord > 0 {
		*netRound = t + 1
	}
	return nil
}

// injectRound consults the machine's injector for the upcoming round and
// reports the first detected fault before any state changes — the round
// barrier either completes cleanly or the run aborts with provenance.
func (m *Machine) injectRound(r Round) error {
	i := 0
	return injectRound(m.injector, &m.netRound, func() (NodeID, NodeID, bool) {
		for i < len(r) {
			s := r[i]
			i++
			if s.From != s.To {
				return s.From, s.To, false
			}
		}
		return 0, 0, true
	})
}

// injectRound is the compiled engine's twin of Machine.injectRound over the
// SoA instruction range [lo, hi) of one round.
func (x *Exec) injectRound(cp *CompiledPlan, lo, hi int) error {
	i := lo
	return injectRound(x.injector, &x.netRound, func() (NodeID, NodeID, bool) {
		for i < hi {
			from, to := cp.From[i], cp.To[i]
			i++
			if from != to {
				return NodeID(from), NodeID(to), false
			}
		}
		return 0, 0, true
	})
}
