package lbm

import (
	"fmt"

	"lbmm/internal/ring"
)

// MachineBatch is the map engine's batched execution path: k value
// assignments ("lanes") over one shared plan sequence, executed the
// trivially-correct way — one independent map-backed Machine per lane, each
// walking every plan in full. It exists as the oracle the lane-strided
// compiled batch (NewExecBatch) is differentially tested against: by
// construction a MachineBatch run IS k independent Machine runs, so holding
// Exec's one-walk-updates-all-lanes form to a MachineBatch's outputs and
// per-lane Stats proves the batched walk equivalent to k sequential
// multiplies.
//
// MachineBatch is not a fast path and never will be: the batching win lives
// in the compiled engine, where the instruction decode, presence
// bookkeeping and stats replay amortize over lanes. Here every lane pays
// the full map walk, which is exactly what makes it trustworthy.
type MachineBatch struct {
	ms []*Machine
}

// NewMachineBatch returns a batched map machine with n computers per lane
// over ring r. Options apply to every lane machine identically. lanes < 1
// is treated as 1.
func NewMachineBatch(n, lanes int, r ring.Semiring, opts ...Option) *MachineBatch {
	if lanes < 1 {
		lanes = 1
	}
	mb := &MachineBatch{ms: make([]*Machine, lanes)}
	for l := range mb.ms {
		mb.ms[l] = New(n, r, opts...)
	}
	return mb
}

// Lanes returns the number of value assignments the batch carries.
func (mb *MachineBatch) Lanes() int { return len(mb.ms) }

// Lane returns the underlying machine of one lane (the oracle handle the
// differential tests compare slot by slot).
func (mb *MachineBatch) Lane(l int) *Machine { return mb.ms[l] }

// PutLane stores a value at node under key on one lane.
func (mb *MachineBatch) PutLane(node NodeID, k Key, lane int, v ring.Value) {
	mb.ms[lane].Put(node, k, v)
}

// GetLane reads the value stored at node under key on one lane.
func (mb *MachineBatch) GetLane(node NodeID, k Key, lane int) (ring.Value, bool) {
	return mb.ms[lane].Get(node, k)
}

// Run executes every round of the plan on every lane. Lanes share the
// structure, so they either all succeed or all fail identically; the first
// lane's error is returned (later lanes are not run past it).
func (mb *MachineBatch) Run(p *Plan) error {
	for l, m := range mb.ms {
		if err := m.Run(p); err != nil {
			return fmt.Errorf("lane %d: %w", l, err)
		}
	}
	return nil
}

// Stats returns lane 0's statistics. Every lane executed the identical
// round sequence, so all lanes report the same Stats; the batched compiled
// engine reports this same value once for the whole batch.
func (mb *MachineBatch) Stats() Stats { return mb.ms[0].Stats() }
