package lbm

import (
	"fmt"

	"lbmm/internal/matrix"
)

// Layout assigns every input element of A and B and every output element of
// X to an owning computer. Like everything in the supported model, a layout
// is a function of the supports only; the paper notes (§2) that algorithms
// are insensitive to the distribution up to an additive O(d) permutation
// cost, while lower bounds hold for any fixed support-dependent layout.
type Layout struct {
	N int
	A map[[2]int32]NodeID
	B map[[2]int32]NodeID
	X map[[2]int32]NodeID
}

// OwnerA returns the computer initially holding A_ij (the p(i,j) of §3.3).
func (l *Layout) OwnerA(i, j int32) NodeID { return l.owner(l.A, i, j, "A") }

// OwnerB returns the computer initially holding B_jk.
func (l *Layout) OwnerB(j, k int32) NodeID { return l.owner(l.B, j, k, "B") }

// OwnerX returns the computer that must report X_ik.
func (l *Layout) OwnerX(i, k int32) NodeID { return l.owner(l.X, i, k, "X") }

func (l *Layout) owner(m map[[2]int32]NodeID, i, j int32, what string) NodeID {
	v, ok := m[[2]int32{i, j}]
	if !ok {
		panic(fmt.Sprintf("lbm: layout has no owner for %s(%d,%d)", what, i, j))
	}
	return v
}

// MaxPerNode returns, per matrix, the largest number of elements any single
// computer owns — the d of Lemma 3.1's input assumption.
func (l *Layout) MaxPerNode() (a, b, x int) {
	count := func(m map[[2]int32]NodeID) int {
		per := make([]int, l.N)
		mx := 0
		for _, v := range m {
			per[v]++
			if per[v] > mx {
				mx = per[v]
			}
		}
		return mx
	}
	return count(l.A), count(l.B), count(l.X)
}

// RowLayout is the paper's canonical layout for uniformly sparse instances:
// computer i holds row i of A, row i of B, and reports row i of X.
func RowLayout(ahat, bhat, xhat *matrix.Support) *Layout {
	l := &Layout{
		N: ahat.N,
		A: make(map[[2]int32]NodeID, ahat.NNZ),
		B: make(map[[2]int32]NodeID, bhat.NNZ),
		X: make(map[[2]int32]NodeID, xhat.NNZ),
	}
	for i, row := range ahat.Rows {
		for _, j := range row {
			l.A[[2]int32{int32(i), j}] = NodeID(i)
		}
	}
	for j, row := range bhat.Rows {
		for _, k := range row {
			l.B[[2]int32{int32(j), k}] = NodeID(j)
		}
	}
	for i, row := range xhat.Rows {
		for _, k := range row {
			l.X[[2]int32{int32(i), k}] = NodeID(i)
		}
	}
	return l
}

// BalancedLayout spreads the entries of each matrix over the n computers in
// row-major round-robin order, so each computer owns at most ⌈nnz/n⌉
// elements of each matrix. This is the "each computer holds at most d
// elements" layout the paper assumes for average-sparse inputs.
func BalancedLayout(ahat, bhat, xhat *matrix.Support) *Layout {
	l := &Layout{
		N: ahat.N,
		A: make(map[[2]int32]NodeID, ahat.NNZ),
		B: make(map[[2]int32]NodeID, bhat.NNZ),
		X: make(map[[2]int32]NodeID, xhat.NNZ),
	}
	assign := func(s *matrix.Support, dst map[[2]int32]NodeID) {
		next := 0
		for i, row := range s.Rows {
			for _, j := range row {
				dst[[2]int32{int32(i), j}] = NodeID(next % s.N)
				next++
			}
		}
	}
	assign(ahat, l.A)
	assign(bhat, l.B)
	assign(xhat, l.X)
	return l
}

// LoadInputs places the values of A and B into their owners' stores. The
// value matrices must realize exactly the supports the layout was built
// from.
func LoadInputs(m *Machine, l *Layout, a, b *matrix.Sparse) {
	for i, row := range a.Rows {
		for _, c := range row {
			m.Put(l.OwnerA(int32(i), c.Col), AKey(int32(i), c.Col), c.Val)
		}
	}
	for j, row := range b.Rows {
		for _, c := range row {
			m.Put(l.OwnerB(int32(j), c.Col), BKey(int32(j), c.Col), c.Val)
		}
	}
}

// CollectX gathers the output values from their owners into a sparse matrix
// for verification. Every requested output position must be present at its
// owner; a missing position is reported as an error (it means the algorithm
// failed to deliver an output the model obliges it to produce). A partitioned
// machine collects only the outputs whose owner it hosts; the coordinator
// merges the disjoint partials.
func CollectX(m *Machine, l *Layout, xhat *matrix.Support) (*matrix.Sparse, error) {
	out := matrix.NewSparse(xhat.N, m.R)
	for i, row := range xhat.Rows {
		for _, k := range row {
			owner := l.OwnerX(int32(i), k)
			if !m.Owns(owner) {
				continue
			}
			v, ok := m.Get(owner, XKey(int32(i), k))
			if !ok {
				return nil, fmt.Errorf("lbm: owner of X(%d,%d) never received it", i, k)
			}
			out.Set(i, int(k), v)
		}
	}
	return out, nil
}

// ZeroOutputs initializes every output position of interest to the ring
// Zero at its owner. Algorithms that accumulate partial products into X
// keys call this first so that outputs with no triangles still get
// reported.
func ZeroOutputs(m *Machine, l *Layout, xhat *matrix.Support) {
	zero := m.R.Zero()
	for i, row := range xhat.Rows {
		for _, k := range row {
			m.Put(l.OwnerX(int32(i), k), XKey(int32(i), k), zero)
		}
	}
}
