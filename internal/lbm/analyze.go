package lbm

import "fmt"

// PlanAnalysis is the static profile of a Plan: everything the round
// structure determines without executing it. It is the tool behind the
// "certified lower bound" checks — a plan's per-node receive load bounds
// the rounds any valid schedule of the same traffic must pay — and a
// cross-check for the executed statistics.
type PlanAnalysis struct {
	// Rounds is the number of rounds with at least one real message.
	Rounds int
	// Messages is the total number of real (cross-node) messages.
	Messages int64
	// LocalCopies counts From==To sends.
	LocalCopies int64
	// SendLoad / RecvLoad are the per-node totals over the whole plan.
	SendLoad, RecvLoad map[NodeID]int64
	// MaxRoundSize is the largest number of real messages in one round.
	MaxRoundSize int
	// Violations lists model-constraint breaches found statically (a valid
	// plan has none; the executor would reject them too).
	Violations []string
}

// MaxSendLoad returns the plan's maximum per-node total sends.
func (a *PlanAnalysis) MaxSendLoad() int64 { return maxMap(a.SendLoad) }

// MaxRecvLoad returns the plan's maximum per-node total receives. Since a
// node receives at most one message per round, this value is a lower bound
// on the rounds of any plan delivering the same messages.
func (a *PlanAnalysis) MaxRecvLoad() int64 { return maxMap(a.RecvLoad) }

func maxMap(m map[NodeID]int64) int64 {
	var mx int64
	for _, v := range m {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// AnalyzePlan statically profiles a plan for a machine with n computers.
func AnalyzePlan(p *Plan, n int) *PlanAnalysis {
	a := &PlanAnalysis{
		SendLoad: map[NodeID]int64{},
		RecvLoad: map[NodeID]int64{},
	}
	for t, r := range p.Rounds {
		sent := map[NodeID]bool{}
		recv := map[NodeID]bool{}
		real := 0
		for _, s := range r {
			if s.From < 0 || int(s.From) >= n || s.To < 0 || int(s.To) >= n {
				a.Violations = append(a.Violations,
					fmt.Sprintf("round %d: send %d->%d out of range", t, s.From, s.To))
				continue
			}
			if s.From == s.To {
				a.LocalCopies++
				continue
			}
			if sent[s.From] {
				a.Violations = append(a.Violations,
					fmt.Sprintf("round %d: node %d sends twice", t, s.From))
			}
			if recv[s.To] {
				a.Violations = append(a.Violations,
					fmt.Sprintf("round %d: node %d receives twice", t, s.To))
			}
			sent[s.From] = true
			recv[s.To] = true
			a.SendLoad[s.From]++
			a.RecvLoad[s.To]++
			a.Messages++
			real++
		}
		if real > 0 {
			a.Rounds++
		}
		if real > a.MaxRoundSize {
			a.MaxRoundSize = real
		}
	}
	return a
}

// Valid reports whether the plan satisfies all model constraints.
func (a *PlanAnalysis) Valid() bool { return len(a.Violations) == 0 }

// CutTraffic counts the messages of a plan crossing a node bipartition —
// the quantity behind the paper's §6.3 communication-complexity bounds
// (Lemma 6.25): if Bob's side must receive k words, any schedule needs at
// least ⌈k / |Bob|⌉ rounds, and k rounds when Bob is a single computer.
func CutTraffic(p *Plan, alice map[NodeID]bool) (aliceToBob, bobToAlice int64) {
	for _, r := range p.Rounds {
		for _, s := range r {
			if s.From == s.To {
				continue
			}
			switch {
			case alice[s.From] && !alice[s.To]:
				aliceToBob++
			case !alice[s.From] && alice[s.To]:
				bobToAlice++
			}
		}
	}
	return aliceToBob, bobToAlice
}
