package lbm

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"lbmm/internal/ring"
)

// randomPlan builds a valid n-node plan of the given number of rounds:
// every round pairs a random permutation of senders with a random
// permutation of receivers (so the one-send/one-receive model constraint
// holds by construction), sources are drawn from keys known present at the
// node, and ops cycle through OpSet/OpAcc (and OpSub when sub is set).
// It returns the plan together with the initial (node, key, value) loads.
type load struct {
	node NodeID
	key  Key
	val  ring.Value
}

func randomPlan(rng *rand.Rand, n, rounds int, sub bool) (*Plan, []load) {
	present := make([][]Key, n)
	var loads []load
	for i := 0; i < n; i++ {
		for j := 0; j < 3; j++ {
			k := AKey(int32(i), int32(j))
			present[i] = append(present[i], k)
			loads = append(loads, load{NodeID(i), k, ring.Value(1 + rng.Intn(5))})
		}
	}
	p := &Plan{}
	for t := 0; t < rounds; t++ {
		senders := rng.Perm(n)
		receivers := rng.Perm(n)
		var r Round
		type delivery struct {
			node int
			key  Key
		}
		var delivered []delivery
		for i := 0; i < n; i++ {
			if rng.Intn(3) == 0 {
				continue // this node sits the round out
			}
			f, to := senders[i], receivers[i]
			src := present[f][rng.Intn(len(present[f]))]
			dst := TKey(int32(t%4), int32(to), int32(rng.Intn(3)))
			op := OpSet
			switch rng.Intn(3) {
			case 1:
				op = OpAcc
			case 2:
				if sub {
					op = OpSub
				} else {
					op = OpAcc
				}
			}
			r = append(r, Send{From: NodeID(f), To: NodeID(to), Src: src, Dst: dst, Op: op})
			delivered = append(delivered, delivery{to, dst})
		}
		p.Append(r)
		// Keys delivered this round become eligible sources from the next.
		for _, d := range delivered {
			seen := false
			for _, k := range present[d.node] {
				if k == d.key {
					seen = true
					break
				}
			}
			if !seen {
				present[d.node] = append(present[d.node], d.key)
			}
		}
	}
	p.Annotate("random", map[string]float64{"rounds": float64(rounds)})
	return p, loads
}

// runMap executes the plan on the map-backed reference machine.
func runMap(t *testing.T, p *Plan, loads []load, r ring.Semiring, opts ...Option) (*Machine, error) {
	t.Helper()
	m := New(6, r, opts...)
	for _, l := range loads {
		m.Put(l.node, l.key, l.val)
	}
	return m, m.Run(p)
}

// runCompiled lowers the plan into a caller-owned slot space (so the
// initial loads have known slots) and executes it on an Exec.
func runCompiled(t *testing.T, p *Plan, loads []load, r ring.Semiring, opts ...Option) (*SlotSpace, *Exec, error) {
	t.Helper()
	sp := NewSlotSpace(6)
	for _, l := range loads {
		sp.Slot(l.node, l.key)
	}
	cp, err := CompileInto(sp, p)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cp.Validate(); err != nil {
		t.Fatalf("validate: %v", err)
	}
	x := NewExec(sp.Sizes(), r, opts...)
	for _, l := range loads {
		x.PutSlot(sp.Ref(l.node, l.key), l.val)
	}
	return sp, x, x.Run(cp)
}

// compareStores checks that the machine and the executor hold exactly the
// same (node, key) → value mapping over the whole slot space.
func compareStores(t *testing.T, sp *SlotSpace, m *Machine, x *Exec) {
	t.Helper()
	sp.EachKey(func(node NodeID, k Key, slot int32) {
		mv, mok := m.Get(node, k)
		xv, xok := x.GetSlot(SlotRef{Node: node, Slot: slot})
		if mok != xok || mv != xv {
			t.Errorf("node %d key %v: map (%v,%v) vs compiled (%v,%v)", node, k, mv, mok, xv, xok)
		}
	})
}

// TestCompiledParityRandom is the engine-parity property test at the lbm
// layer: on randomized plans the compiled executor must reproduce the map
// machine's stores and Stats exactly, sequentially and under Workers.
func TestCompiledParityRandom(t *testing.T) {
	rings := []struct {
		r   ring.Semiring
		sub bool
	}{
		{ring.Counting{}, false},
		{ring.MinPlus{}, false},
		{ring.Real{}, true},
		{ring.NewGFp(1009), true},
	}
	for _, rc := range rings {
		for seed := int64(0); seed < 8; seed++ {
			rng := rand.New(rand.NewSource(seed))
			p, loads := randomPlan(rng, 6, 10, rc.sub)
			m, merr := runMap(t, p, loads, rc.r)
			if merr != nil {
				t.Fatalf("%s seed %d: map: %v", rc.r.Name(), seed, merr)
			}
			for _, opts := range [][]Option{
				nil,
				{WithWorkers(3), WithParBatch(1)},
			} {
				sp, x, xerr := runCompiled(t, p, loads, rc.r, opts...)
				if xerr != nil {
					t.Fatalf("%s seed %d: compiled: %v", rc.r.Name(), seed, xerr)
				}
				compareStores(t, sp, m, x)
				if !reflect.DeepEqual(m.Stats(), x.Stats()) {
					t.Errorf("%s seed %d: stats differ:\n map      %+v\n compiled %+v",
						rc.r.Name(), seed, m.Stats(), x.Stats())
				}
			}
		}
	}
}

// TestCompiledStoreLimitParity checks that the compiled executor enforces
// the per-node store limit with the same pre-delivery contract as the map
// machine: the offending round delivers nothing and counts nothing.
func TestCompiledStoreLimitParity(t *testing.T) {
	p := &Plan{}
	// Round 1: one delivery to node 2 (2 values, at the limit).
	p.Append(Round{{From: 0, To: 2, Src: AKey(0, 0), Dst: TKey(0, 0, 0), Op: OpSet}})
	// Round 2: a second new key pushes node 2 to 3 > limit 2.
	p.Append(Round{{From: 0, To: 2, Src: AKey(0, 1), Dst: TKey(0, 0, 1), Op: OpSet}})
	loads := []load{
		{0, AKey(0, 0), 1},
		{0, AKey(0, 1), 2},
		{2, AKey(2, 2), 9},
	}
	m, merr := runMap(t, p, loads, ring.Counting{}, WithStoreLimit(2))
	sp, x, xerr := runCompiled(t, p, loads, ring.Counting{}, WithStoreLimit(2))
	if merr == nil || xerr == nil {
		t.Fatalf("both engines must hit the limit: map=%v compiled=%v", merr, xerr)
	}
	if !strings.Contains(xerr.Error(), "store limit") {
		t.Errorf("compiled error = %v", xerr)
	}
	// Pre-delivery contract: the failed round left stores and stats alone,
	// so the two engines agree on everything up to the failure.
	compareStores(t, sp, m, x)
	if !reflect.DeepEqual(m.Stats(), x.Stats()) {
		t.Errorf("stats after failed round differ:\n map      %+v\n compiled %+v", m.Stats(), x.Stats())
	}
	if x.Stats().Rounds != 1 {
		t.Errorf("failed round must not count: %+v", x.Stats())
	}
	if _, ok := x.GetSlot(sp.Ref(2, TKey(0, 0, 1))); ok {
		t.Error("failed round must deliver nothing")
	}
}

// TestCompiledAccumulateOverwrite pins the op semantics on slots: OpAcc on
// an absent slot reads the ring zero, OpSet overwrites, OpSub needs a field.
func TestCompiledAccumulateOverwrite(t *testing.T) {
	p := &Plan{}
	dst := XKey(0, 0)
	p.Append(Round{{From: 0, To: 2, Src: AKey(0, 0), Dst: dst, Op: OpAcc}})
	p.Append(Round{{From: 1, To: 2, Src: AKey(1, 0), Dst: dst, Op: OpAcc}})
	p.Append(Round{{From: 0, To: 2, Src: AKey(0, 1), Dst: dst, Op: OpSet}})
	p.Append(Round{{From: 1, To: 2, Src: AKey(1, 1), Dst: dst, Op: OpSub}})
	loads := []load{
		{0, AKey(0, 0), 5}, {0, AKey(0, 1), 100},
		{1, AKey(1, 0), 3}, {1, AKey(1, 1), 40},
	}
	sp, x, err := runCompiled(t, p, loads, ring.Real{})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := x.GetSlot(sp.Ref(2, dst)); v != 60 {
		t.Errorf("value = %v, want 60", v)
	}
	// OpSub without a field is rejected before any round runs.
	spc := NewSlotSpace(6)
	cp, err := CompileInto(spc, p)
	if err != nil {
		t.Fatal(err)
	}
	xc := NewExec(spc.Sizes(), ring.Counting{})
	if err := xc.Run(cp); err == nil || !strings.Contains(err.Error(), "field") {
		t.Errorf("OpSub on a semiring must fail: %v", err)
	}
}

// TestCompiledResetReuse covers the pooled-arena contract: Reset returns
// the executor to its freshly constructed state, so a second identical run
// reproduces identical stores and Stats.
func TestCompiledResetReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	p, loads := randomPlan(rng, 6, 8, false)
	sp := NewSlotSpace(6)
	for _, l := range loads {
		sp.Slot(l.node, l.key)
	}
	cp, err := CompileInto(sp, p)
	if err != nil {
		t.Fatal(err)
	}
	x := NewExec(sp.Sizes(), ring.Counting{})
	var firstStats Stats
	first := map[SlotRef]ring.Value{}
	for run := 0; run < 3; run++ {
		for _, l := range loads {
			x.PutSlot(sp.Ref(l.node, l.key), l.val)
		}
		if err := x.Run(cp); err != nil {
			t.Fatalf("run %d: %v", run, err)
		}
		if run == 0 {
			firstStats = x.Stats()
			sp.EachKey(func(node NodeID, k Key, slot int32) {
				if v, ok := x.GetSlot(SlotRef{Node: node, Slot: slot}); ok {
					first[SlotRef{Node: node, Slot: slot}] = v
				}
			})
		} else {
			if !reflect.DeepEqual(firstStats, x.Stats()) {
				t.Errorf("run %d: stats drifted: %+v vs %+v", run, x.Stats(), firstStats)
			}
			count := 0
			sp.EachKey(func(node NodeID, k Key, slot int32) {
				ref := SlotRef{Node: node, Slot: slot}
				v, ok := x.GetSlot(ref)
				want, wok := first[ref]
				if ok != wok || v != want {
					t.Errorf("run %d: %v = (%v,%v), want (%v,%v)", run, ref, v, ok, want, wok)
				}
				if ok {
					count++
				}
			})
			if count != len(first) {
				t.Errorf("run %d: %d live slots, want %d", run, count, len(first))
			}
		}
		x.Reset()
		if x.Stats().Rounds != 0 || x.Stats().PeakStore != 0 {
			t.Fatalf("Reset left stats behind: %+v", x.Stats())
		}
		empty := true
		sp.EachKey(func(node NodeID, k Key, slot int32) {
			if _, ok := x.GetSlot(SlotRef{Node: node, Slot: slot}); ok {
				empty = false
			}
		})
		if !empty {
			t.Fatal("Reset left slots present")
		}
	}
}

// TestCompiledPlanGobRoundtrip serializes a standalone compile (which
// carries its slot→key table) and checks the decoded plan validates,
// deep-equals the original, and executes to the same result.
func TestCompiledPlanGobRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p, loads := randomPlan(rng, 6, 6, false)
	cp, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Keys == nil {
		t.Fatal("standalone compile must carry its key table")
	}
	var buf bytes.Buffer
	if err := cp.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeCompiledPlan(&buf, cp.N)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, back) {
		t.Fatalf("roundtrip mismatch:\n%+v\nvs\n%+v", cp, back)
	}
	// The decoded plan is self-describing: rebuild the load addressing from
	// its key table and execute. A standalone compile only has slots for
	// keys the plan references, so restrict both engines to those loads.
	slotOf := func(node NodeID, k Key) (int32, bool) {
		for s, key := range back.Keys[node] {
			if key == k {
				return int32(s), true
			}
		}
		return -1, false
	}
	var used []load
	x := NewExec(back.NumSlots, ring.Counting{})
	for _, l := range loads {
		if s, ok := slotOf(l.node, l.key); ok {
			x.PutSlot(SlotRef{Node: l.node, Slot: s}, l.val)
			used = append(used, l)
		}
	}
	if err := x.Run(back); err != nil {
		t.Fatal(err)
	}
	m, merr := runMap(t, p, used, ring.Counting{})
	if merr != nil {
		t.Fatal(merr)
	}
	if !reflect.DeepEqual(m.Stats(), x.Stats()) {
		t.Errorf("stats differ after roundtrip: %+v vs %+v", m.Stats(), x.Stats())
	}
	if _, err := DecodeCompiledPlan(bytes.NewReader([]byte("garbage")), cp.N); err == nil {
		t.Error("garbage decoded")
	}
	if _, err := DecodeCompiledPlan(bytes.NewReader(buf.Bytes()), cp.N+1); err == nil {
		t.Error("wrong machine size accepted")
	}
}

// TestCompiledValidateCatchesCorruption mutates a valid compiled plan field
// by field and checks Validate rejects each corruption — decoded plans
// cross a trust boundary and must never reach the executor unchecked.
func TestCompiledValidateCatchesCorruption(t *testing.T) {
	fresh := func() *CompiledPlan {
		rng := rand.New(rand.NewSource(11))
		p, _ := randomPlan(rng, 6, 5, false)
		cp, err := Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		return cp
	}
	if err := fresh().Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(cp *CompiledPlan)
	}{
		{"node out of range", func(cp *CompiledPlan) { cp.From[0] = int32(cp.N) }},
		{"negative node", func(cp *CompiledPlan) { cp.To[0] = -1 }},
		{"slot out of range", func(cp *CompiledPlan) { cp.SrcSlot[0] = cp.NumSlots[cp.From[0]] }},
		{"negative slot", func(cp *CompiledPlan) { cp.DstSlot[0] = -1 }},
		{"unknown op", func(cp *CompiledPlan) { cp.Ops[0] = OpSub + 1 }},
		{"round offsets not monotone", func(cp *CompiledPlan) { cp.RoundOff[1] = cp.RoundOff[2] + 1 }},
		{"arrays inconsistent", func(cp *CompiledPlan) { cp.To = cp.To[:len(cp.To)-1] }},
		{"span out of range", func(cp *CompiledPlan) { cp.Spans[0].End = cp.NumRounds() + 1 }},
		{"machine size", func(cp *CompiledPlan) { cp.N = 0 }},
	}
	for _, tc := range cases {
		cp := fresh()
		tc.mutate(cp)
		if err := cp.Validate(); err == nil {
			t.Errorf("%s: corruption not caught", tc.name)
		}
	}
}
