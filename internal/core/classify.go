package core

import (
	"fmt"
	"strings"

	"lbmm/internal/matrix"
)

// Band is the paper's Table 2 classification of an instance's complexity.
type Band uint8

const (
	// Band1Fast: upper bound O(d^1.867) semirings / O(d^1.832) fields
	// (Theorem 4.2); e.g. [US:US:AS].
	Band1Fast Band = iota
	// BandOutlier is the paper's open case [US:US:GM]: trivial O(d⁴) upper
	// bound, unknown whether O(d^1.832) is possible.
	BandOutlier
	// Band2Log: upper bound O(d² + log n) (Theorems 5.3/5.11), lower bound
	// Ω(log n) (Theorem 6.15); e.g. [BD:BD:BD].
	Band2Log
	// Band3Sqrt: lower bound Ω(√n) (Theorem 6.27); e.g. [BD:BD:GM].
	Band3Sqrt
	// Band4Conditional: a fast algorithm would improve dense matrix
	// multiplication (Theorem 6.19); e.g. [AS:AS:AS].
	Band4Conditional
)

func (b Band) String() string {
	switch b {
	case Band1Fast:
		return "1:fast"
	case BandOutlier:
		return "outlier"
	case Band2Log:
		return "2:d2+log"
	case Band3Sqrt:
		return "3:sqrt"
	case Band4Conditional:
		return "4:conditional"
	}
	return fmt.Sprintf("Band(%d)", uint8(b))
}

// Bounds returns the upper and lower bound strings of Table 2 for the band.
func (b Band) Bounds() (upper, lower string) {
	switch b {
	case Band1Fast:
		return "O(d^1.867) semiring / O(d^1.832) field", "Ω(d^λ) trivial"
	case BandOutlier:
		return "O(d^4) trivial", "Ω(d^λ) trivial"
	case Band2Log:
		return "O(d^2 + log n)", "Ω(d^λ), Ω(log n)"
	case Band3Sqrt:
		return "—", "Ω(√n)"
	case Band4Conditional:
		return "—", "Ω(n^{(λ-1)/2}) conditional"
	}
	return "?", "?"
}

// rank orders the classes by the containment lattice for the symmetric
// classification (RS and CS share a rank).
func rank(c matrix.Class) int {
	switch c {
	case matrix.US:
		return 0
	case matrix.RS, matrix.CS:
		return 1
	case matrix.BD:
		return 2
	case matrix.AS:
		return 3
	default:
		return 4
	}
}

// Classify maps the (unordered) triple of sparsity classes to its Table 2
// band. The paper's results are symmetric in the three matrices; the
// footnoted († ) permutation-specific lower bounds are reported at the band
// level of their strongest variant, matching the table's presentation.
func Classify(a, b, x matrix.Class) Band {
	// Sort ranks ascending.
	r := []int{rank(a), rank(b), rank(x)}
	if r[0] > r[1] {
		r[0], r[1] = r[1], r[0]
	}
	if r[1] > r[2] {
		r[1], r[2] = r[2], r[1]
	}
	if r[0] > r[1] {
		r[0], r[1] = r[1], r[0]
	}
	const (
		us = 0
		bd = 2
		as = 3
		gm = 4
	)
	switch {
	// [US:US:US] … [US:US:AS].
	case r[0] == us && r[1] == us && r[2] <= as:
		return Band1Fast
	// [US:US:GM] — the open outlier.
	case r[0] == us && r[1] == us && r[2] == gm:
		return BandOutlier
	// [US:BD:BD] … [US:AS:GM]: one US, at most one GM.
	case r[0] == us && r[1] <= as && r[2] <= gm:
		return Band2Log
	// [BD:BD:BD] … [BD:AS:AS]: smallest ≤ BD, no GM.
	case r[0] <= bd && r[2] <= as:
		return Band2Log
	// [AS:AS:AS] … [GM:GM:GM]: all at least AS — conditional (the
	// strongest statement for these rows; those that also dominate
	// {US,GM,GM} or {BD,BD,GM} additionally carry the Ω(√n) bound).
	case r[0] >= as:
		return Band4Conditional
	// [US:GM:GM] / [BD:BD:GM] … — Ω(√n).
	default:
		return Band3Sqrt
	}
}

// TableRow is one row of the regenerated Table 2.
type TableRow struct {
	Classes [3]matrix.Class
	Band    Band
	Upper   string
	Lower   string
}

// Table2 enumerates every multiset of {US, BD, AS, GM} (the classes the
// paper's Table 2 ranges over) with its classification.
func Table2() []TableRow {
	classes := []matrix.Class{matrix.US, matrix.BD, matrix.AS, matrix.GM}
	var rows []TableRow
	for i, ca := range classes {
		for j := i; j < len(classes); j++ {
			for k := j; k < len(classes); k++ {
				cb, cx := classes[j], classes[k]
				band := Classify(ca, cb, cx)
				up, lo := band.Bounds()
				rows = append(rows, TableRow{
					Classes: [3]matrix.Class{ca, cb, cx},
					Band:    band, Upper: up, Lower: lo,
				})
			}
		}
	}
	return rows
}

// FormatTable2 renders the classification like the paper's Table 2.
func FormatTable2() string {
	out := fmt.Sprintf("%-14s %-10s %-40s %s\n", "Sparsity", "Band", "Upper bound", "Lower bound")
	for _, row := range Table2() {
		name := fmt.Sprintf("[%v:%v:%v]", row.Classes[0], row.Classes[1], row.Classes[2])
		out += fmt.Sprintf("%-14s %-10s %-40s %s\n", name, row.Band, row.Upper, row.Lower)
	}
	return out
}

// Table2Extended enumerates every multiset over all six classes
// (US, RS, CS, BD, AS, GM) — the paper's table ranges over four; the
// extension covers the row/column-sparse sub-cases explicitly.
func Table2Extended() []TableRow {
	classes := []matrix.Class{matrix.US, matrix.RS, matrix.CS, matrix.BD, matrix.AS, matrix.GM}
	var rows []TableRow
	for i, ca := range classes {
		for j := i; j < len(classes); j++ {
			for k := j; k < len(classes); k++ {
				cb, cx := classes[j], classes[k]
				band := Classify(ca, cb, cx)
				up, lo := band.Bounds()
				rows = append(rows, TableRow{
					Classes: [3]matrix.Class{ca, cb, cx},
					Band:    band, Upper: up, Lower: lo,
				})
			}
		}
	}
	return rows
}

// MarshalJSON encodes the band by name.
func (b Band) MarshalJSON() ([]byte, error) {
	return []byte(`"` + b.String() + `"`), nil
}

// UnmarshalJSON decodes a band name.
func (b *Band) UnmarshalJSON(data []byte) error {
	s := strings.Trim(string(data), `"`)
	for _, cand := range []Band{Band1Fast, BandOutlier, Band2Log, Band3Sqrt, Band4Conditional} {
		if cand.String() == s {
			*b = cand
			return nil
		}
	}
	return fmt.Errorf("core: unknown band %q", s)
}
