package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func TestMultiplyAutoVariousRings(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, r := range ring.All() {
		n, d := 24, 3
		inst := workload.Instance(matrix.US, matrix.US, matrix.US, n, d, 11)
		a := matrix.Random(inst.Ahat, r, 1)
		b := matrix.Random(inst.Bhat, r, 2)
		x, rep, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: d})
		if err != nil {
			t.Fatalf("%s: %v", r.Name(), err)
		}
		want := matrix.MulReference(a, b, inst.Xhat)
		if !matrix.Equal(x, want) {
			t.Fatalf("%s: wrong product", r.Name())
		}
		if rep.Rounds == 0 && inst.CountTriangles() > 0 {
			t.Errorf("%s: zero rounds reported", r.Name())
		}
		if rep.Band != Band1Fast {
			t.Errorf("US:US:US classified as %v", rep.Band)
		}
	}
	_ = rng
}

func TestMultiplyForcedAlgorithms(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Instance(matrix.US, matrix.BD, matrix.AS, 20, 2, 3)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	want := matrix.MulReference(a, b, inst.Xhat)
	for _, name := range []string{"auto", "theorem42", "lemma31", "trivial", "baseline"} {
		x, rep, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 2, Algorithm: name})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !matrix.Equal(x, want) {
			t.Fatalf("%s: wrong product", name)
		}
		_ = rep
	}
	if _, _, err := Multiply(a, b, inst.Xhat, Options{Ring: r, Algorithm: "nope"}); err == nil {
		t.Error("unknown algorithm accepted")
	}
}

func TestMultiplyDimensionMismatch(t *testing.T) {
	a := matrix.NewSparse(3, ring.Counting{})
	b := matrix.NewSparse(4, ring.Counting{})
	if _, _, err := Multiply(a, b, matrix.NewSupport(3, nil), Options{Ring: ring.Counting{}}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMultiplyInfersD(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, 16, 2, 5)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	_, rep, err := Multiply(a, b, inst.Xhat, Options{Ring: r})
	if err != nil {
		t.Fatal(err)
	}
	if rep.D < 1 || rep.D > 2 {
		t.Errorf("inferred d = %d", rep.D)
	}
}

func TestMultiplyWorkersEngine(t *testing.T) {
	r := ring.NewGFp(101)
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, 24, 3, 9)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	x1, _, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 3, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(x1, x2) {
		t.Error("workers engine changed the result")
	}
}

func TestClassifyBands(t *testing.T) {
	cases := []struct {
		a, b, x matrix.Class
		want    Band
	}{
		{matrix.US, matrix.US, matrix.US, Band1Fast},
		{matrix.US, matrix.US, matrix.AS, Band1Fast},
		{matrix.US, matrix.AS, matrix.US, Band1Fast}, // symmetric
		{matrix.US, matrix.US, matrix.GM, BandOutlier},
		{matrix.GM, matrix.US, matrix.US, BandOutlier},
		{matrix.US, matrix.BD, matrix.BD, Band2Log},
		{matrix.US, matrix.AS, matrix.GM, Band2Log},
		{matrix.BD, matrix.BD, matrix.BD, Band2Log},
		{matrix.BD, matrix.AS, matrix.AS, Band2Log},
		{matrix.RS, matrix.AS, matrix.AS, Band2Log}, // RS ⊆ BD
		{matrix.CS, matrix.CS, matrix.AS, Band2Log},
		{matrix.US, matrix.GM, matrix.GM, Band3Sqrt},
		{matrix.BD, matrix.BD, matrix.GM, Band3Sqrt},
		{matrix.BD, matrix.AS, matrix.GM, Band3Sqrt},
		{matrix.AS, matrix.AS, matrix.AS, Band4Conditional},
		{matrix.AS, matrix.AS, matrix.GM, Band4Conditional},
		{matrix.GM, matrix.GM, matrix.GM, Band4Conditional},
	}
	for _, c := range cases {
		if got := Classify(c.a, c.b, c.x); got != c.want {
			t.Errorf("Classify(%v,%v,%v) = %v, want %v", c.a, c.b, c.x, got, c.want)
		}
	}
}

func TestClassifySymmetry(t *testing.T) {
	classes := []matrix.Class{matrix.US, matrix.RS, matrix.CS, matrix.BD, matrix.AS, matrix.GM}
	for _, a := range classes {
		for _, b := range classes {
			for _, x := range classes {
				base := Classify(a, b, x)
				perms := [][3]matrix.Class{
					{a, x, b}, {b, a, x}, {b, x, a}, {x, a, b}, {x, b, a},
				}
				for _, p := range perms {
					if got := Classify(p[0], p[1], p[2]); got != base {
						t.Fatalf("Classify not symmetric: (%v,%v,%v)=%v vs perm %v=%v",
							a, b, x, base, p, got)
					}
				}
			}
		}
	}
}

func TestTable2Coverage(t *testing.T) {
	rows := Table2()
	// 4 classes, multisets of size 3: C(4+3-1,3) = 20.
	if len(rows) != 20 {
		t.Fatalf("table 2 has %d rows, want 20", len(rows))
	}
	counts := map[Band]int{}
	for _, r := range rows {
		counts[r.Band]++
	}
	for _, b := range []Band{Band1Fast, BandOutlier, Band2Log, Band3Sqrt, Band4Conditional} {
		if counts[b] == 0 {
			t.Errorf("band %v missing from table", b)
		}
	}
	out := FormatTable2()
	if !strings.Contains(out, "[US:US:GM]") || !strings.Contains(out, "outlier") {
		t.Error("formatted table incomplete")
	}
}

func TestBandStringsAndBounds(t *testing.T) {
	for _, b := range []Band{Band1Fast, BandOutlier, Band2Log, Band3Sqrt, Band4Conditional} {
		if b.String() == "" {
			t.Error("empty band name")
		}
		up, lo := b.Bounds()
		if up == "?" || lo == "?" {
			t.Errorf("band %v has no bounds", b)
		}
	}
}

func TestMultiplyUnsupportedMode(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, 20, 2, 3)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	want := matrix.MulReference(a, b, inst.Xhat)
	x, rep, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 2, Unsupported: true})
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(x, want) {
		t.Fatal("wrong product in unsupported mode")
	}
	if rep.SupportWords == 0 || rep.DisseminationRounds == 0 {
		t.Errorf("dissemination not reported: %+v", rep.Result)
	}
	// The supported run of the same instance must be much cheaper.
	_, supRep, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if supRep.Rounds >= rep.Rounds {
		t.Errorf("supported (%d) not cheaper than unsupported (%d)", supRep.Rounds, rep.Rounds)
	}
}

func TestTable2Extended(t *testing.T) {
	rows := Table2Extended()
	// C(6+3-1, 3) = 56 multisets.
	if len(rows) != 56 {
		t.Fatalf("extended table has %d rows, want 56", len(rows))
	}
	// The RS/CS rows inherit their BD-based classification: e.g.
	// {RS, CS, AS} is class 2 and {RS, CS, GM} carries the Ω(√n) bound
	// (Lemma 6.23 is literally RS×CS=GM).
	found := map[string]Band{}
	for _, r := range rows {
		found[fmt.Sprintf("%v%v%v", r.Classes[0], r.Classes[1], r.Classes[2])] = r.Band
	}
	if found["RSCSAS"] != Band2Log {
		t.Errorf("[RS:CS:AS] = %v", found["RSCSAS"])
	}
	if found["RSCSGM"] != Band3Sqrt {
		t.Errorf("[RS:CS:GM] = %v", found["RSCSGM"])
	}
	if found["USRSCS"] != Band2Log {
		t.Errorf("[US:RS:CS] = %v", found["USRSCS"])
	}
}

func TestPrepareAndReuse(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, 24, 3, 11)
	p, err := Prepare(inst.Ahat, inst.Bhat, inst.Xhat, Options{Ring: r, D: 3})
	if err != nil {
		t.Fatal(err)
	}
	if p.Band != Band1Fast {
		t.Errorf("band %v", p.Band)
	}
	var rounds int
	for seed := int64(0); seed < 3; seed++ {
		a := matrix.Random(inst.Ahat, r, seed)
		b := matrix.Random(inst.Bhat, r, seed+9)
		x, rep, err := p.Multiply(a, b)
		if err != nil {
			t.Fatal(err)
		}
		if !matrix.Equal(x, matrix.MulReference(a, b, inst.Xhat)) {
			t.Fatalf("seed %d: wrong product", seed)
		}
		if seed > 0 && rep.Rounds != rounds {
			t.Fatalf("rounds vary: %d vs %d", rep.Rounds, rounds)
		}
		rounds = rep.Rounds
	}
	// Non-preparable algorithms are rejected.
	if _, err := Prepare(inst.Ahat, inst.Bhat, inst.Xhat, Options{Ring: r, Algorithm: "trivial"}); err == nil {
		t.Error("trivial has no prepared form")
	}
	if _, err := Prepare(inst.Ahat, matrix.NewSupport(5, nil), inst.Xhat, Options{Ring: r}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestMultiplyTraceOption(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, 16, 2, 5)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	_, rep, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 2, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Timeline == "" {
		t.Error("trace requested but no timeline")
	}
	// SkipVerify path.
	if _, _, err := Multiply(a, b, inst.Xhat, Options{Ring: r, D: 2, SkipVerify: true}); err != nil {
		t.Fatal(err)
	}
	// Default ring (Real).
	ar := matrix.Random(inst.Ahat, ring.Real{}, 1)
	br := matrix.Random(inst.Bhat, ring.Real{}, 2)
	if _, rep, err := Multiply(ar, br, inst.Xhat, Options{D: 2}); err != nil || rep == nil {
		t.Fatal(err)
	}
}
