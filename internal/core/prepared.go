package core

import (
	"fmt"

	"lbmm/internal/algo"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// Prepared is a multiplication whose supported-model preprocessing — every
// routing decision — has been computed once for a fixed sparsity structure
// and can be reused for any number of value sets (the natural API for
// iterative workloads such as repeated tropical relaxations over a fixed
// graph). Rounds are a function of the structure only, so every Multiply
// costs exactly the same number of rounds.
type Prepared struct {
	inner *algo.Prepared
	// Classes and Band classify the prepared structure (Table 2).
	Classes [3]matrix.Class
	Band    Band
	// D is the sparsity parameter used.
	D int
	// Algorithm is the algorithm as requested at Prepare time ("auto",
	// "theorem42" or "lemma31"; "" normalizes to "auto"). It is part of the
	// content address: Fingerprint keys on the request, not on what "auto"
	// resolved to, so the same field must survive a store round trip.
	Algorithm string
}

// Prepare preprocesses the multiplication for the given supports. Options:
// Ring and D as in Multiply; Algorithm may be "auto", "theorem42" or
// "lemma31" (the trivial/baseline/unsupported algorithms have no prepared
// form).
func Prepare(ahat, bhat, xhat *matrix.Support, opts Options) (*Prepared, error) {
	if ahat.N != bhat.N || ahat.N != xhat.N {
		return nil, fmt.Errorf("core: dimension mismatch %d/%d/%d", ahat.N, bhat.N, xhat.N)
	}
	r := opts.Ring
	if r == nil {
		r = ring.Real{}
	}
	d := ResolveD(opts.D, ahat, bhat, xhat)
	inst := graph.NewInstance(d, ahat, bhat, xhat)
	alg := opts.Algorithm
	if alg == "" {
		alg = "auto"
	}
	p := &Prepared{D: d, Algorithm: alg}
	p.Classes[0], p.Classes[1], p.Classes[2] = inst.Classify()
	p.Band = Classify(p.Classes[0], p.Classes[1], p.Classes[2])

	var inner *algo.Prepared
	var err error
	switch opts.Algorithm {
	case "", "auto":
		if p.Band == Band1Fast {
			inner, err = algo.PrepareTheorem42(r, inst, algo.Theorem42Opts{})
		} else {
			inner, err = algo.PrepareLemma31(r, inst)
		}
	case "theorem42":
		inner, err = algo.PrepareTheorem42(r, inst, algo.Theorem42Opts{})
	case "lemma31":
		inner, err = algo.PrepareLemma31(r, inst)
	default:
		return nil, fmt.Errorf("core: algorithm %q has no prepared form", opts.Algorithm)
	}
	if err != nil {
		return nil, err
	}
	switch opts.Engine {
	case "", string(algo.EngineCompiled):
		inner.Engine = algo.EngineCompiled
	case string(algo.EngineMap):
		inner.Engine = algo.EngineMap
	default:
		return nil, fmt.Errorf("core: unknown engine %q (want %q or %q)", opts.Engine, algo.EngineCompiled, algo.EngineMap)
	}
	p.inner = inner
	return p, nil
}

// CompiledBytes reports the estimated resident size of the prepared
// multiplication's compiled form (instruction streams, slot tables and one
// executor's arenas). Serving caches use it as the memory cost of a cached
// entry.
func (p *Prepared) CompiledBytes() int64 {
	if p == nil || p.inner == nil {
		return 0
	}
	return p.inner.CompiledBytes()
}

// NodeLoads returns the per-node real-message loads recorded in the
// compiled plans' stats profile: send[v]/recv[v] equal the SendLoad[v]/
// RecvLoad[v] every execution of this structure charges, derived from the
// instruction streams without running anything. Load-aware partitioning
// (internal/dist, docs/DIST.md) bins nodes by these loads. Nil when the
// prepared form has no compiled twin.
func (p *Prepared) NodeLoads() (send, recv []int64) {
	if p == nil || p.inner == nil {
		return nil, nil
	}
	return p.inner.NodeLoads()
}

// Multiply executes the prepared plans on one value set. The values must
// lie within the prepared structure; positions of the structure without a
// value are ring zeros. Multiply is safe for concurrent use: the prepared
// plans are read-only and every call runs on a fresh machine.
func (p *Prepared) Multiply(a, b *matrix.Sparse) (*matrix.Sparse, *Report, error) {
	return p.MultiplyTraced(a, b, false)
}

// MultiplyTraced is Multiply with an optional per-call execution profile
// (Report.Profile / Report.Timeline), recorded without mutating the shared
// prepared state — the serving layer uses it for per-request traces.
func (p *Prepared) MultiplyTraced(a, b *matrix.Sparse, trace bool) (*matrix.Sparse, *Report, error) {
	return p.MultiplyOpts(a, b, ExecOpts{Trace: trace})
}

// ExecOpts are per-call execution options for MultiplyOpts. The zero value
// is a plain Multiply on the prepared engine.
type ExecOpts struct {
	// Trace records a per-call execution profile into the Report.
	Trace bool
	// Engine overrides the prepared engine for this call only: "" keeps the
	// prepared default, "compiled" and "map" force an engine. The serving
	// layer's fault fallback re-serves a request on "map" after a compiled
	// fault without touching the shared Prepared.
	Engine string
	// Injector subjects the execution to deterministic fault injection
	// (chaos testing, docs/CHAOS.md); nil runs a perfect network.
	Injector lbm.Injector
	// Transport routes every real message of the execution through an
	// explicit communication backend (docs/DIST.md): lbm.Loopback for the
	// in-process seam, a dist.Mesh endpoint for real sockets. nil keeps the
	// original single-process fast path.
	Transport lbm.Transport
}

// MultiplyOpts executes the prepared plans on one value set with per-call
// execution options. Like Multiply it is safe for concurrent use.
func (p *Prepared) MultiplyOpts(a, b *matrix.Sparse, opts ExecOpts) (*matrix.Sparse, *Report, error) {
	var mopts []lbm.Option
	if opts.Trace {
		mopts = append(mopts, lbm.WithTrace())
	}
	if opts.Injector != nil {
		mopts = append(mopts, lbm.WithInjector(opts.Injector))
	}
	if opts.Transport != nil {
		mopts = append(mopts, lbm.WithTransport(opts.Transport))
	}
	var (
		x   *matrix.Sparse
		res *algo.Result
		err error
	)
	switch opts.Engine {
	case "":
		x, res, err = p.inner.MultiplyWith(a, b, mopts...)
	case string(algo.EngineCompiled), string(algo.EngineMap):
		x, res, err = p.inner.MultiplyOn(algo.Engine(opts.Engine), a, b, mopts...)
	default:
		return nil, nil, fmt.Errorf("core: unknown engine %q (want %q or %q)", opts.Engine, algo.EngineCompiled, algo.EngineMap)
	}
	if err != nil {
		return nil, nil, err
	}
	return x, &Report{Result: *res, Classes: p.Classes, D: p.D, Band: p.Band}, nil
}

// MultiplyBatch executes the prepared plans on k value sets in one batched
// run: on the compiled engine every lane shares one instruction-stream
// walk, so the batch pays roughly one multiply's decode and bookkeeping
// regardless of k. Outputs come back lane for lane (outs[l] = as[l]·bs[l]);
// the Report describes the whole batch (Report.Lanes = k). A fault fails
// the whole batch — lanes share every round, so there is no partial
// success. Safe for concurrent use, like Multiply.
func (p *Prepared) MultiplyBatch(as, bs []*matrix.Sparse, opts ExecOpts) ([]*matrix.Sparse, *Report, error) {
	var mopts []lbm.Option
	if opts.Trace {
		mopts = append(mopts, lbm.WithTrace())
	}
	if opts.Injector != nil {
		mopts = append(mopts, lbm.WithInjector(opts.Injector))
	}
	if opts.Transport != nil {
		mopts = append(mopts, lbm.WithTransport(opts.Transport))
	}
	var (
		outs []*matrix.Sparse
		res  *algo.Result
		err  error
	)
	switch opts.Engine {
	case "":
		outs, res, err = p.inner.MultiplyBatchWith(as, bs, mopts...)
	case string(algo.EngineCompiled), string(algo.EngineMap):
		outs, res, err = p.inner.MultiplyBatchOn(algo.Engine(opts.Engine), as, bs, mopts...)
	default:
		return nil, nil, fmt.Errorf("core: unknown engine %q (want %q or %q)", opts.Engine, algo.EngineCompiled, algo.EngineMap)
	}
	if err != nil {
		return nil, nil, err
	}
	return outs, &Report{Result: *res, Classes: p.Classes, D: p.D, Band: p.Band}, nil
}
