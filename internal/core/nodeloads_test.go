package core

import (
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestNodeLoadsMatchExecutedStats pins the compile-time load profile against
// ground truth: the per-node send/receive counts NodeLoads derives from the
// compiled instruction streams must equal the SendLoad/RecvLoad an actual
// execution records. Loads are a function of structure only, so one value
// set suffices.
func TestNodeLoadsMatchExecutedStats(t *testing.T) {
	for _, tc := range []struct {
		alg string
		wl  string
	}{
		{"lemma31", "blocks"},
		{"lemma31", "powerlaw"},
		{"theorem42", "blocks"},
		{"theorem42", "powerlaw"},
	} {
		t.Run(tc.alg+"/"+tc.wl, func(t *testing.T) {
			inst := workload.Blocks(32, 3)
			if tc.wl == "powerlaw" {
				inst = workload.PowerLaw(32, 3, 42)
			}
			r := ring.Counting{}
			prep, err := Prepare(inst.Ahat, inst.Bhat, inst.Xhat, Options{
				Ring: r, D: 3, Algorithm: tc.alg, Engine: "compiled",
			})
			if err != nil {
				t.Fatalf("prepare: %v", err)
			}
			send, recv := prep.NodeLoads()
			if send == nil || recv == nil {
				t.Fatal("compiled plan reports no load profile")
			}
			a := matrix.Random(inst.Ahat, r, 1)
			b := matrix.Random(inst.Bhat, r, 2)
			_, rep, err := prep.Multiply(a, b)
			if err != nil {
				t.Fatalf("multiply: %v", err)
			}
			if len(send) != len(rep.Stats.SendLoad) || len(recv) != len(rep.Stats.RecvLoad) {
				t.Fatalf("load profile covers %d/%d nodes, execution recorded %d/%d",
					len(send), len(recv), len(rep.Stats.SendLoad), len(rep.Stats.RecvLoad))
			}
			for v := range send {
				if send[v] != rep.Stats.SendLoad[v] {
					t.Errorf("node %d: profiled send load %d, executed %d", v, send[v], rep.Stats.SendLoad[v])
				}
				if recv[v] != rep.Stats.RecvLoad[v] {
					t.Errorf("node %d: profiled recv load %d, executed %d", v, recv[v], rep.Stats.RecvLoad[v])
				}
			}
		})
	}
}

// TestNodeLoadsEngineIndependent pins that the load profile is a property
// of the compiled structure, not the engine choice: a map-engine
// preparation still compiles the plan, so both engines report the identical
// profile.
func TestNodeLoadsEngineIndependent(t *testing.T) {
	inst := workload.Blocks(16, 2)
	mk := func(engine string) (sendLoads, recvLoads []int64) {
		prep, err := Prepare(inst.Ahat, inst.Bhat, inst.Xhat, Options{
			Ring: ring.Counting{}, D: 2, Engine: engine,
		})
		if err != nil {
			t.Fatalf("prepare %s: %v", engine, err)
		}
		return prep.NodeLoads()
	}
	sendMap, recvMap := mk("map")
	sendComp, recvComp := mk("compiled")
	if sendMap == nil || sendComp == nil {
		t.Fatal("an engine reported no load profile")
	}
	for v := range sendComp {
		if sendMap[v] != sendComp[v] || recvMap[v] != recvComp[v] {
			t.Fatalf("node %d: map engine profile (%d,%d) differs from compiled (%d,%d)",
				v, sendMap[v], recvMap[v], sendComp[v], recvComp[v])
		}
	}
}
