package core_test

import (
	"fmt"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// ExampleMultiply multiplies two tiny sparse matrices over the counting
// semiring and reports the complexity classification.
func ExampleMultiply() {
	const n = 4
	r := ring.Counting{}
	a := matrix.NewSparse(n, r)
	b := matrix.NewSparse(n, r)
	for i := 0; i < n; i++ {
		a.Set(i, (i+1)%n, 2) // cycle shift, US(1)
		b.Set(i, i, 3)       // diagonal, US(1)
	}
	xhat := matrix.NewSupport(n, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}})

	x, rep, err := core.Multiply(a, b, xhat, core.Options{Ring: r})
	if err != nil {
		panic(err)
	}
	fmt.Println("X(0,1) =", x.Get(0, 1))
	fmt.Printf("classes [%v:%v:%v], band %v\n",
		rep.Classes[0], rep.Classes[1], rep.Classes[2], rep.Band)
	// Output:
	// X(0,1) = 6
	// classes [US:US:US], band 1:fast
}

// ExampleClassify reproduces single rows of the paper's Table 2.
func ExampleClassify() {
	band := core.Classify(matrix.BD, matrix.BD, matrix.BD)
	upper, lower := band.Bounds()
	fmt.Println(band)
	fmt.Println(upper)
	fmt.Println(lower)
	// Output:
	// 2:d2+log
	// O(d^2 + log n)
	// Ω(d^λ), Ω(log n)
}
