package core

import (
	"sync"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestPreparedMultiplyConcurrent locks in the concurrency contract of
// Prepared.Multiply: prepare once, then hammer the plan from many goroutines
// with distinct value sets. Run under -race (the CI race job does), every
// product must match the reference, and — the supported model's promise —
// every execution of the one plan must cost the identical number of rounds.
func TestPreparedMultiplyConcurrent(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Blocks(32, 4)
	prep, err := Prepare(inst.Ahat, inst.Bhat, inst.Xhat, Options{Ring: r})
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perGoroutine = 3
	rounds := make([]int, goroutines*perGoroutine)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < perGoroutine; k++ {
				seed := int64(1 + 2*(g*perGoroutine+k))
				a := matrix.Random(inst.Ahat, r, seed)
				b := matrix.Random(inst.Bhat, r, seed+1)
				x, rep, err := prep.Multiply(a, b)
				if err != nil {
					t.Errorf("goroutine %d: %v", g, err)
					return
				}
				want := matrix.MulReference(a, b, inst.Xhat)
				if !matrix.Equal(x, want) {
					t.Errorf("goroutine %d: wrong product for seed %d", g, seed)
					return
				}
				rounds[g*perGoroutine+k] = rep.Rounds
			}
		}(g)
	}
	wg.Wait()
	for i, rd := range rounds {
		if rd != rounds[0] {
			t.Errorf("execution %d took %d rounds, execution 0 took %d — rounds must depend on structure only",
				i, rd, rounds[0])
		}
	}
}
