package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// fingerprintDomain versions the fingerprint serialization itself: any
// change to the byte layout below must bump it, so plans cached under the
// old scheme can never be served for a key computed under the new one.
const fingerprintDomain = "lbmm.fp.v1"

// ResolveD returns the sparsity parameter Multiply and Prepare would use:
// d itself when positive, otherwise the smallest d making every given
// support average-sparse (⌈max nnz/n⌉, at least 1).
func ResolveD(d int, supports ...*matrix.Support) int {
	if d > 0 {
		return d
	}
	for _, s := range supports {
		if need := (s.NNZ + s.N - 1) / s.N; need > d {
			d = need
		}
	}
	if d == 0 {
		d = 1
	}
	return d
}

// Fingerprint canonically identifies a prepared multiplication: SHA-256
// over a deterministic serialization of the three supports together with
// everything else Prepare's output depends on — the ring, the requested
// algorithm, and the *resolved* sparsity parameter (so D: 0 and an explicit
// equal D produce the same key). Two structurally equal supports fingerprint
// identically regardless of how their entry lists were ordered at
// construction, because Support stores rows sorted.
//
// The fingerprint is the serving layer's cache key (content addressing):
// equal fingerprints mean Prepare is guaranteed to produce an equivalent
// plan, so a cached *Prepared may be reused for any value set realizing the
// structure.
func Fingerprint(ahat, bhat, xhat *matrix.Support, opts Options) (string, error) {
	if ahat.N != bhat.N || ahat.N != xhat.N {
		return "", fmt.Errorf("core: dimension mismatch %d/%d/%d", ahat.N, bhat.N, xhat.N)
	}
	r := opts.Ring
	if r == nil {
		r = ring.Real{}
	}
	alg := opts.Algorithm
	if alg == "" {
		alg = "auto"
	}
	d := ResolveD(opts.D, ahat, bhat, xhat)

	h := sha256.New()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	writeStr := func(s string) {
		writeInt(int64(len(s)))
		h.Write([]byte(s))
	}
	writeStr(fingerprintDomain)
	writeStr(r.Name())
	writeStr(alg)
	writeInt(int64(d))
	writeInt(int64(ahat.N))
	for _, s := range []*matrix.Support{ahat, bhat, xhat} {
		writeInt(int64(s.NNZ))
		for i, row := range s.Rows {
			if len(row) == 0 {
				continue
			}
			writeInt(int64(i))
			writeInt(int64(len(row)))
			for _, j := range row {
				binary.LittleEndian.PutUint32(buf[:4], uint32(j))
				h.Write(buf[:4])
			}
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}
