package core_test

import (
	"testing"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func BenchmarkBatch16Theorem42Real(b *testing.B) {
	r := ring.Real{}
	inst := workload.Instance(matrix.US, matrix.US, matrix.US, 64, 4, 42)
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, core.Options{Ring: r, D: 4, Algorithm: "theorem42", Engine: "compiled"})
	if err != nil {
		b.Fatal(err)
	}
	const k = 16
	as := make([]*matrix.Sparse, k)
	bs := make([]*matrix.Sparse, k)
	for l := 0; l < k; l++ {
		as[l] = matrix.Random(inst.Ahat, r, int64(2*l+1))
		bs[l] = matrix.Random(inst.Bhat, r, int64(2*l+2))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := prep.MultiplyBatch(as, bs, core.ExecOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}
