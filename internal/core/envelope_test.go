package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// envInstance builds a small instance and its prepared multiplication.
func envPrepared(t *testing.T, opts Options) (*Prepared, *matrix.Support, *matrix.Support, *matrix.Support) {
	t.Helper()
	inst := workload.Blocks(20, 4)
	p, err := Prepare(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		t.Fatalf("prepare: %v", err)
	}
	return p, inst.Ahat, inst.Bhat, inst.Xhat
}

// TestEnvelopeRoundTrip checks Encode → DecodePrepared preserves the
// product, the classification metadata and the content address.
func TestEnvelopeRoundTrip(t *testing.T) {
	opts := Options{Ring: ring.NewGFp(257), Algorithm: "theorem42"}
	p, ahat, bhat, xhat := envPrepared(t, opts)
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodePrepared(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if q.Classes != p.Classes || q.Band != p.Band || q.D != p.D || q.Algorithm != p.Algorithm {
		t.Fatalf("metadata changed over round trip: %+v vs %+v", q, p)
	}

	wantFP, err := Fingerprint(ahat, bhat, xhat, opts)
	if err != nil {
		t.Fatalf("fingerprint: %v", err)
	}
	for _, pp := range []*Prepared{p, q} {
		got, err := pp.Fingerprint()
		if err != nil {
			t.Fatalf("prepared fingerprint: %v", err)
		}
		if got != wantFP {
			t.Fatalf("fingerprint %s, want %s", got, wantFP)
		}
	}

	a := matrix.Random(ahat, opts.Ring, 1)
	b := matrix.Random(bhat, opts.Ring, 2)
	want, _, err := p.Multiply(a, b)
	if err != nil {
		t.Fatalf("original multiply: %v", err)
	}
	got, rep, err := q.Multiply(a, b)
	if err != nil {
		t.Fatalf("restored multiply: %v", err)
	}
	if !matrix.Equal(got, want) {
		t.Fatalf("restored product differs")
	}
	if rep.Band != p.Band {
		t.Fatalf("report band %v, want %v", rep.Band, p.Band)
	}
}

// TestEnvelopeRejectsFutureVersion writes an envelope stamped with the next
// format version and checks the reader rejects it with the typed version
// error — cleanly, not as corruption (satellite: cross-version behavior).
func TestEnvelopeRejectsFutureVersion(t *testing.T) {
	p, _, _, _ := envPrepared(t, Options{Ring: ring.Counting{}})
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	// Re-frame the same payload under version N+1, as a future build would.
	var env preparedEnvelope
	if err := gob.NewDecoder(bytes.NewReader(buf.Bytes())).Decode(&env); err != nil {
		t.Fatalf("reframe decode: %v", err)
	}
	env.Version = PreparedFormatVersion + 1
	var future bytes.Buffer
	if err := gob.NewEncoder(&future).Encode(&env); err != nil {
		t.Fatalf("reframe encode: %v", err)
	}
	_, err := DecodePrepared(bytes.NewReader(future.Bytes()))
	if !errors.Is(err, ErrEnvelopeVersion) {
		t.Fatalf("future envelope version: err=%v, want ErrEnvelopeVersion", err)
	}
	if errors.Is(err, ErrEnvelope) {
		t.Fatalf("version mismatch misreported as corruption: %v", err)
	}

	// Same for a future inner compiled-plan version.
	env.Version = PreparedFormatVersion
	env.PlanVersion++
	future.Reset()
	if err := gob.NewEncoder(&future).Encode(&env); err != nil {
		t.Fatalf("reframe encode: %v", err)
	}
	if _, err := DecodePrepared(bytes.NewReader(future.Bytes())); !errors.Is(err, ErrEnvelopeVersion) {
		t.Fatalf("future plan version: err=%v, want ErrEnvelopeVersion", err)
	}
}

// TestEnvelopeRejectsCorruption checks damaged envelopes surface ErrEnvelope.
func TestEnvelopeRejectsCorruption(t *testing.T) {
	p, _, _, _ := envPrepared(t, Options{Ring: ring.Counting{}})
	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := buf.Bytes()

	// Wrong magic.
	var env preparedEnvelope
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&env); err != nil {
		t.Fatalf("reframe: %v", err)
	}
	env.Magic = "lbmm.postcard"
	var bad bytes.Buffer
	if err := gob.NewEncoder(&bad).Encode(&env); err != nil {
		t.Fatalf("reframe encode: %v", err)
	}
	if _, err := DecodePrepared(bytes.NewReader(bad.Bytes())); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("bad magic: err=%v, want ErrEnvelope", err)
	}

	// Truncations.
	for _, n := range []int{0, 1, len(raw) / 3, len(raw) - 1} {
		if _, err := DecodePrepared(bytes.NewReader(raw[:n])); !errors.Is(err, ErrEnvelope) {
			t.Fatalf("truncation to %d: err=%v, want ErrEnvelope", n, err)
		}
	}

	// Metadata that disagrees with the decoded structure.
	env.Magic = preparedMagic
	env.D++
	bad.Reset()
	if err := gob.NewEncoder(&bad).Encode(&env); err != nil {
		t.Fatalf("reframe encode: %v", err)
	}
	if _, err := DecodePrepared(bytes.NewReader(bad.Bytes())); !errors.Is(err, ErrEnvelope) {
		t.Fatalf("d mismatch: err=%v, want ErrEnvelope", err)
	}
}
