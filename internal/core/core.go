// Package core is the public API of the library: supported low-bandwidth
// sparse matrix multiplication with automatic algorithm selection and the
// paper's Table 2 classification engine.
//
// The typical call sequence is
//
//	x, report, err := core.Multiply(a, b, xhat, core.Options{Ring: ring.Counting{}})
//
// which classifies the instance, picks the fastest applicable algorithm
// (Theorem 4.2 for class-1 instances, Lemma 3.1 for class-2, the trivial
// router otherwise), simulates it on n virtual computers at message
// granularity, and returns the masked product together with the measured
// round statistics.
package core

import (
	"fmt"

	"lbmm/internal/algo"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// Options configures Multiply.
type Options struct {
	// Ring selects the algebra; defaults to ring.Real{}.
	Ring ring.Semiring
	// D is the sparsity parameter the classes are measured at; 0 infers
	// the smallest d making all three matrices average-sparse
	// (⌈max nnz/n⌉).
	D int
	// Algorithm forces a specific algorithm: "auto" (default),
	// "theorem42", "lemma31", "trivial", "baseline".
	Algorithm string
	// Engine selects the prepared execution engine: "" or "compiled" (the
	// slot-addressed compiled form, default) or "map" (the reference
	// map-backed machine). Only the prepared path distinguishes engines.
	Engine string
	// Workers selects the goroutine execution engine (0 = sequential).
	Workers int
	// SkipVerify disables the built-in check against the sequential
	// reference product (useful for large benchmarks).
	SkipVerify bool
	// Trace records a phase-annotated per-round timeline into the Report.
	Trace bool
	// Unsupported drops the supported-model assumption: the computers
	// first disseminate the sparsity structure at run time
	// (Θ(nnz + log n) rounds, reported in the Report), then run the
	// selected algorithm. This is the trivial baseline for the paper's
	// §1.6 open direction.
	Unsupported bool
}

// Report describes how a product was computed.
type Report struct {
	// Result carries the algorithm-level measurements (rounds, phases,
	// loads).
	algo.Result
	// Classes are the sparsity classes of Â, B̂, X̂ at parameter D.
	Classes [3]matrix.Class
	// D is the sparsity parameter used.
	D int
	// Band is the Table 2 classification of the instance.
	Band Band
}

// Multiply computes the masked product X = A·B restricted to xhat in the
// supported low-bandwidth model and returns it with a Report.
func Multiply(a, b *matrix.Sparse, xhat *matrix.Support, opts Options) (*matrix.Sparse, *Report, error) {
	if a.N != b.N || a.N != xhat.N {
		return nil, nil, fmt.Errorf("core: dimension mismatch %d/%d/%d", a.N, b.N, xhat.N)
	}
	r := opts.Ring
	if r == nil {
		r = ring.Real{}
	}
	ahat := a.Support()
	bhat := b.Support()
	d := ResolveD(opts.D, ahat, bhat, xhat)
	inst := graph.NewInstance(d, ahat, bhat, xhat)
	rep := &Report{D: d}
	rep.Classes[0], rep.Classes[1], rep.Classes[2] = inst.Classify()
	rep.Band = Classify(rep.Classes[0], rep.Classes[1], rep.Classes[2])

	var alg algo.Algorithm
	switch opts.Algorithm {
	case "", "auto":
		alg = autoSelect(rep.Band)
	case "theorem42":
		alg = algo.Theorem42(algo.Theorem42Opts{})
	case "lemma31":
		alg = algo.LemmaOnly
	case "trivial":
		alg = algo.TrivialSparse
	case "baseline":
		alg = algo.BaselineNaiveVirtual(0)
	default:
		return nil, nil, fmt.Errorf("core: unknown algorithm %q", opts.Algorithm)
	}
	if opts.Unsupported {
		alg = algo.Unsupported(alg)
	}

	var mopts []lbm.Option
	if opts.Workers > 1 {
		mopts = append(mopts, lbm.WithWorkers(opts.Workers))
	}
	if opts.Trace {
		mopts = append(mopts, lbm.WithTrace())
	}
	res, got, err := algo.Solve(r, inst, a, b, alg, mopts...)
	if err != nil {
		return nil, nil, err
	}
	if !opts.SkipVerify {
		if err := algo.Verify(got, a, b, xhat); err != nil {
			return nil, nil, fmt.Errorf("core: internal verification failed: %w", err)
		}
	}
	rep.Result = *res
	return got, rep, nil
}

func autoSelect(b Band) algo.Algorithm {
	switch b {
	case Band1Fast:
		return algo.Theorem42(algo.Theorem42Opts{})
	case Band2Log:
		return algo.LemmaOnly
	default:
		// Hard bands still have correct (if slow) algorithms: Lemma 3.1
		// handles any triangle set; its cost simply reflects the hardness.
		return algo.LemmaOnly
	}
}
