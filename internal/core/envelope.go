package core

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"lbmm/internal/algo"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
)

// PreparedFormatVersion is the serialization version of the prepared-plan
// envelope. Bump it on any incompatible change to the envelope layout or to
// the inner snapshot; readers reject other versions with
// ErrEnvelopeVersion, so a store populated by one build is never
// misinterpreted by another.
const PreparedFormatVersion = 1

// preparedMagic guards against feeding arbitrary gob streams (including the
// other envelope kinds in this module) to DecodePrepared.
const preparedMagic = "lbmm.prep"

// ErrEnvelope reports a prepared-plan envelope that is structurally invalid:
// wrong magic, truncated or corrupt payload, or inner state that fails
// validation. Store readers treat it as "this entry is damaged" —
// quarantine and recompile, never serve.
var ErrEnvelope = errors.New("core: invalid prepared-plan envelope")

// ErrEnvelopeVersion reports an envelope written under a different format
// version (outer or inner). It is distinct from ErrEnvelope because the
// entry is not damaged — it is simply from another build generation — but
// the remedy is the same: recompile from structure.
var ErrEnvelopeVersion = errors.New("core: prepared-plan envelope version mismatch")

// preparedEnvelope is the on-disk frame of a serialized Prepared. The inner
// snapshot travels as an opaque byte payload rather than a nested gob
// stream: gob's decoder buffers reads, so two sequential decoders on one
// stream would fight over bytes.
type preparedEnvelope struct {
	Magic   string
	Version int
	// PlanVersion pins the format of the compiled plans embedded in the
	// payload (lbm.CompiledPlanFormatVersion at write time).
	PlanVersion int
	// Algorithm is the requested algorithm — fingerprint input, see
	// Prepared.Algorithm.
	Algorithm string
	Classes   [3]matrix.Class
	Band      Band
	D         int
	Payload   []byte
}

// Encode writes the prepared multiplication as a versioned envelope. Only
// the compiled execution state is serialized; a Prepared restored from the
// stream serves compiled multiplies identically but has no map-engine form
// (see algo.ErrNoMapForm).
func (p *Prepared) Encode(w io.Writer) error {
	if p == nil || p.inner == nil {
		return fmt.Errorf("core: nothing to encode")
	}
	var payload bytes.Buffer
	if err := p.inner.EncodeCompiled(&payload); err != nil {
		return fmt.Errorf("core: encode prepared: %w", err)
	}
	env := preparedEnvelope{
		Magic:       preparedMagic,
		Version:     PreparedFormatVersion,
		PlanVersion: lbm.CompiledPlanFormatVersion,
		Algorithm:   p.Algorithm,
		Classes:     p.Classes,
		Band:        p.Band,
		D:           p.D,
		Payload:     payload.Bytes(),
	}
	return gob.NewEncoder(w).Encode(&env)
}

// DecodePrepared restores a Prepared from a stream written by Encode. Any
// structural damage — bad magic, gob corruption, inner validation failure,
// metadata that disagrees with the decoded structure — returns an error
// wrapping ErrEnvelope; a clean version mismatch returns one wrapping
// ErrEnvelopeVersion. Callers (the plan store) quarantine on the former and
// silently recompile on either; a decoded plan is never served unchecked.
func DecodePrepared(r io.Reader) (*Prepared, error) {
	var env preparedEnvelope
	if err := gob.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEnvelope, err)
	}
	if env.Magic != preparedMagic {
		return nil, fmt.Errorf("%w: magic %q (want %q)", ErrEnvelope, env.Magic, preparedMagic)
	}
	if env.Version != PreparedFormatVersion {
		return nil, fmt.Errorf("%w: envelope version %d (this build reads %d)",
			ErrEnvelopeVersion, env.Version, PreparedFormatVersion)
	}
	if env.PlanVersion != lbm.CompiledPlanFormatVersion {
		return nil, fmt.Errorf("%w: compiled-plan version %d (this build reads %d)",
			ErrEnvelopeVersion, env.PlanVersion, lbm.CompiledPlanFormatVersion)
	}
	inner, err := algo.DecodeCompiledPrepared(bytes.NewReader(env.Payload))
	if err != nil {
		return nil, fmt.Errorf("%w: %w", ErrEnvelope, err)
	}
	switch env.Algorithm {
	case "auto", "theorem42", "lemma31":
	default:
		return nil, fmt.Errorf("%w: algorithm %q", ErrEnvelope, env.Algorithm)
	}
	if env.D != inner.Inst.D {
		return nil, fmt.Errorf("%w: envelope d=%d but plan compiled for d=%d", ErrEnvelope, env.D, inner.Inst.D)
	}
	// Reclassify from the decoded supports rather than trusting the stored
	// bands: classification is cheap and derivable, and the stored copy only
	// serves readers that inspect envelopes without decoding payloads.
	p := &Prepared{inner: inner, D: env.D, Algorithm: env.Algorithm}
	p.Classes[0], p.Classes[1], p.Classes[2] = inner.Inst.Classify()
	p.Band = Classify(p.Classes[0], p.Classes[1], p.Classes[2])
	if p.Classes != env.Classes || p.Band != env.Band {
		return nil, fmt.Errorf("%w: stored classification %v/%v disagrees with structure %v/%v",
			ErrEnvelope, env.Classes, env.Band, p.Classes, p.Band)
	}
	return p, nil
}

// Fingerprint recomputes the content address of the prepared structure —
// the same key Fingerprint(ahat, bhat, xhat, opts) produced when the plan
// was first prepared. Store readers compare it against the file name to
// detect entries that decode cleanly but were stored under the wrong key.
func (p *Prepared) Fingerprint() (string, error) {
	if p == nil || p.inner == nil {
		return "", fmt.Errorf("core: no prepared structure to fingerprint")
	}
	inst := p.inner.Inst
	return Fingerprint(inst.Ahat, inst.Bhat, inst.Xhat, Options{
		Ring:      p.inner.R,
		D:         p.D,
		Algorithm: p.Algorithm,
	})
}
