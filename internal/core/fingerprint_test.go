package core

import (
	"math/rand"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// fpSupports builds three related supports from an entry list given in any
// order.
func fpSupports(n int, entries [][2]int) (a, b, x *matrix.Support) {
	return matrix.NewSupport(n, entries), matrix.NewSupport(n, entries), matrix.NewSupport(n, entries)
}

// TestFingerprintDeterministic feeds the same structure through differently
// ordered construction paths — a shuffled entry slice and a Go map (whose
// iteration order changes run to run) — and demands the identical key.
func TestFingerprintDeterministic(t *testing.T) {
	const n = 32
	var entries [][2]int
	rng := rand.New(rand.NewSource(7))
	for len(entries) < 3*n {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	opts := Options{Ring: ring.Counting{}}

	a1, b1, x1 := fpSupports(n, entries)
	want, err := Fingerprint(a1, b1, x1, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Shuffled slice order.
	shuffled := append([][2]int(nil), entries...)
	rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
	a2, b2, x2 := fpSupports(n, shuffled)
	if got, _ := Fingerprint(a2, b2, x2, opts); got != want {
		t.Errorf("shuffled construction changed the fingerprint:\n%s\n%s", got, want)
	}

	// Map-iteration order (randomized by the runtime).
	set := map[[2]int]struct{}{}
	for _, e := range entries {
		set[e] = struct{}{}
	}
	for trial := 0; trial < 5; trial++ {
		var fromMap [][2]int
		for e := range set {
			fromMap = append(fromMap, e)
		}
		a3, b3, x3 := fpSupports(n, fromMap)
		if got, _ := Fingerprint(a3, b3, x3, opts); got != want {
			t.Fatalf("map-order construction changed the fingerprint (trial %d)", trial)
		}
	}
}

// TestFingerprintDiscriminates checks that every plan-relevant input is
// part of the key, and that the plan-irrelevant ones are not.
func TestFingerprintDiscriminates(t *testing.T) {
	const n = 16
	entries := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}}
	a, b, x := fpSupports(n, entries)
	base, err := Fingerprint(a, b, x, Options{Ring: ring.Counting{}})
	if err != nil {
		t.Fatal(err)
	}

	// Different structure.
	a2 := matrix.NewSupport(n, append(append([][2]int(nil), entries...), [2]int{5, 5}))
	if got, _ := Fingerprint(a2, b, x, Options{Ring: ring.Counting{}}); got == base {
		t.Error("structure change not reflected")
	}
	// Different ring.
	if got, _ := Fingerprint(a, b, x, Options{Ring: ring.Boolean{}}); got == base {
		t.Error("ring change not reflected")
	}
	// Different algorithm ("" normalizes to "auto").
	if got, _ := Fingerprint(a, b, x, Options{Ring: ring.Counting{}, Algorithm: "lemma31"}); got == base {
		t.Error("algorithm change not reflected")
	}
	if got, _ := Fingerprint(a, b, x, Options{Ring: ring.Counting{}, Algorithm: "auto"}); got != base {
		t.Error(`"" and "auto" should share a key`)
	}
	// D: 0 resolves to the inferred d, so an explicit equal d shares the key.
	d := ResolveD(0, a, b, x)
	if got, _ := Fingerprint(a, b, x, Options{Ring: ring.Counting{}, D: d}); got != base {
		t.Error("explicit resolved d should share the key with D: 0")
	}
	if got, _ := Fingerprint(a, b, x, Options{Ring: ring.Counting{}, D: d + 3}); got == base {
		t.Error("d change not reflected")
	}
	// Execution-engine fields are not part of the plan identity.
	if got, _ := Fingerprint(a, b, x, Options{Ring: ring.Counting{}, Workers: 8, Trace: true, SkipVerify: true}); got != base {
		t.Error("engine options must not change the key")
	}

	// Dimension mismatch errors.
	if _, err := Fingerprint(a, b, matrix.NewSupport(n+1, nil), Options{}); err == nil {
		t.Error("dimension mismatch accepted")
	}
}
