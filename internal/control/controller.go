// Package control closes the loop on the serving layer's batching policy.
// The static MaxBatch/MaxDelay pair of batch.Config treats every plan
// fingerprint the same: a cold structure pays the full coalesce delay for a
// batch of one, while a hot structure may launch at a size far below the
// lane sweet spot because the window was tuned for average traffic. The
// Controller replaces that pair with a per-fingerprint decision driven by
// an EWMA of the key's arrival rate and the launch outcomes the coalescer
// reports back:
//
//   - cold keys (expected lane-mates within the window < HotLanes) launch
//     immediately — no parked delay for traffic that will never coalesce;
//   - hot keys grow their window toward the lane cap: the delay is the time
//     the current rate needs to fill MaxBatch lanes, clamped to MaxDelay,
//     so delay is shed automatically as load lightens;
//   - launch feedback trims the estimate: a timeout launch that caught
//     almost nothing decays the rate (the key is colder than measured), a
//     full launch nudges it up.
//
// Decisions are exported as control/* counters and the clock is injectable,
// so the policy is deterministic under test.
package control

import (
	"sync"
	"time"

	"lbmm/internal/batch"
	"lbmm/internal/obsv"
)

// Counter names published by the controller (gauges noted).
const (
	MetricImmediate = "control/immediate" // cold decisions: launch alone, now
	MetricBatched   = "control/batched"   // hot decisions: open/extend a window
	MetricGrow      = "control/grow"      // full launches that raised a key's rate estimate
	MetricShrink    = "control/shrink"    // near-empty timeout launches that decayed it
	MetricKeys      = "control/keys"      // gauge: fingerprints with live state
	MetricEvicted   = "control/evicted"   // key states dropped at the MaxKeys bound
)

// Config tunes a Controller. The zero value of every field gets a sensible
// default.
type Config struct {
	// MaxBatch is the lane cap a hot key grows toward (default 16 — the
	// measured per-lane throughput sweet spot, BENCH_PR5.json).
	MaxBatch int
	// MaxDelay is the ceiling on any coalesce window (default 2ms).
	MaxDelay time.Duration
	// HotLanes is how many lane-mates must be expected inside a MaxDelay
	// window before a key counts as hot (default 2: a window that cannot
	// even pair requests is pure added latency).
	HotLanes float64
	// Alpha is the EWMA weight of the newest inter-arrival gap (default
	// 0.3). Higher values track bursts faster; lower values smooth them.
	Alpha float64
	// ColdAfter forgets a key's rate estimate when its last arrival is older
	// than this (default 10×MaxDelay... floored at 1s): yesterday's hot
	// structure must re-earn its window.
	ColdAfter time.Duration
	// MaxKeys bounds the per-fingerprint state (default 4096). Beyond it
	// the stalest key is evicted — the working set a serving process batches
	// for is the plan cache's, which is far smaller.
	MaxKeys int
	// Clock supplies the time (default time.Now). Tests inject a manual
	// clock so decisions are a pure function of the scripted arrivals.
	Clock func() time.Time
	// Metrics receives the control/* counters; a fresh set when nil.
	Metrics *obsv.CounterSet
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 1 {
		c.MaxBatch = 16
	}
	if c.MaxDelay <= 0 {
		c.MaxDelay = 2 * time.Millisecond
	}
	if c.HotLanes <= 0 {
		c.HotLanes = 2
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.ColdAfter <= 0 {
		c.ColdAfter = 10 * c.MaxDelay
		if c.ColdAfter < time.Second {
			c.ColdAfter = time.Second
		}
	}
	if c.MaxKeys <= 0 {
		c.MaxKeys = 4096
	}
	if c.Clock == nil {
		c.Clock = time.Now
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewCounterSet()
	}
	return c
}

// keyState is one fingerprint's arrival model.
type keyState struct {
	last    time.Time     // previous arrival
	ewmaGap time.Duration // smoothed inter-arrival gap; 0 = no estimate yet
}

// Controller is the per-fingerprint adaptive batch policy. All methods are
// safe for concurrent use; Decide is shaped to plug straight into
// batch.Config.Decide and Observe into the launch callback.
type Controller struct {
	cfg     Config
	metrics *obsv.CounterSet

	mu   sync.Mutex
	keys map[string]*keyState
}

// New builds a controller.
func New(cfg Config) *Controller {
	cfg = cfg.withDefaults()
	return &Controller{
		cfg:     cfg,
		metrics: cfg.Metrics,
		keys:    map[string]*keyState{},
	}
}

// Decide records one arrival for the key and returns the policy governing
// it right now. The first arrival of a key — and any arrival after a
// ColdAfter silence — is cold by construction: there is no evidence a
// window would catch anything, so the lane launches immediately.
func (c *Controller) Decide(key string) batch.Policy {
	now := c.cfg.Clock()
	c.mu.Lock()
	st := c.keys[key]
	if st == nil {
		st = &keyState{last: now}
		c.evictLocked()
		c.keys[key] = st
		c.metrics.Set(MetricKeys, int64(len(c.keys)))
		c.mu.Unlock()
		c.metrics.Add(MetricImmediate, 1)
		return batch.Policy{MaxBatch: 1}
	}
	gap := now.Sub(st.last)
	st.last = now
	if gap > c.cfg.ColdAfter || st.ewmaGap > c.cfg.ColdAfter {
		// The key went quiet: restart the estimate rather than average a
		// silence into it.
		st.ewmaGap = 0
		c.mu.Unlock()
		c.metrics.Add(MetricImmediate, 1)
		return batch.Policy{MaxBatch: 1}
	}
	if st.ewmaGap == 0 {
		st.ewmaGap = gap
	} else {
		st.ewmaGap = time.Duration((1-c.cfg.Alpha)*float64(st.ewmaGap) + c.cfg.Alpha*float64(gap))
	}
	pol := c.policyLocked(st)
	c.mu.Unlock()
	if pol.MaxBatch <= 1 {
		c.metrics.Add(MetricImmediate, 1)
	} else {
		c.metrics.Add(MetricBatched, 1)
	}
	return pol
}

// policyLocked derives the policy from a key's current rate estimate.
// Caller holds the lock.
func (c *Controller) policyLocked(st *keyState) batch.Policy {
	if st.ewmaGap <= 0 {
		return batch.Policy{MaxBatch: 1}
	}
	// Lanes a full MaxDelay window is expected to catch at the current rate.
	expect := float64(c.cfg.MaxDelay) / float64(st.ewmaGap)
	if expect < c.cfg.HotLanes {
		return batch.Policy{MaxBatch: 1}
	}
	target := int(expect)
	if target > c.cfg.MaxBatch {
		target = c.cfg.MaxBatch
	}
	// The window only needs to be long enough to fill the target: under
	// heavy load the delay collapses toward target×gap, well below the
	// ceiling — light load is the only regime that waits the full MaxDelay.
	delay := time.Duration(target) * st.ewmaGap
	if delay > c.cfg.MaxDelay {
		delay = c.cfg.MaxDelay
	}
	if delay <= 0 {
		delay = c.cfg.MaxDelay
	}
	return batch.Policy{MaxBatch: target, MaxDelay: delay}
}

// Observe feeds one launch outcome back into the key's estimate: the
// coalescer reports how many lanes the group actually caught and why it
// launched. A timeout launch of a single lane means the window was armed on
// an overestimated rate — decay it so the next decision goes immediate
// sooner; a full launch means the rate supports at least this batch —
// tighten the gap estimate toward what the launch demonstrated. Shrink and
// flush launches are policy artifacts, not demand evidence (a shrink fires
// exactly when this controller judged the key colder — counting it as a
// full launch would heat the estimate in positive feedback), so they leave
// the estimate untouched.
func (c *Controller) Observe(key string, lanes int, why batch.Reason) {
	c.mu.Lock()
	st := c.keys[key]
	if st == nil {
		c.mu.Unlock()
		return
	}
	switch {
	case why == batch.ReasonTimeout && lanes <= 1 && st.ewmaGap > 0:
		st.ewmaGap = time.Duration(float64(st.ewmaGap) * 2)
		c.mu.Unlock()
		c.metrics.Add(MetricShrink, 1)
	case why == batch.ReasonFull && st.ewmaGap > 0:
		st.ewmaGap = time.Duration(float64(st.ewmaGap) * 0.9)
		c.mu.Unlock()
		c.metrics.Add(MetricGrow, 1)
	default:
		c.mu.Unlock()
	}
}

// evictLocked makes room for one more key by dropping the stalest state
// when the bound is reached. Caller holds the lock.
func (c *Controller) evictLocked() {
	if len(c.keys) < c.cfg.MaxKeys {
		return
	}
	var victim string
	var oldest time.Time
	for k, st := range c.keys {
		if victim == "" || st.last.Before(oldest) {
			victim, oldest = k, st.last
		}
	}
	delete(c.keys, victim)
	c.metrics.Add(MetricEvicted, 1)
}

// Keys reports how many fingerprints currently hold state (introspection
// for tests and metrics).
func (c *Controller) Keys() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.keys)
}
