package control

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"lbmm/internal/batch"
	"lbmm/internal/obsv"
)

// manualClock is a scripted clock: tests advance it explicitly, so every
// decision is a pure function of the arrival schedule.
type manualClock struct {
	mu  sync.Mutex
	now time.Time
}

func newManualClock() *manualClock {
	return &manualClock{now: time.Unix(1_700_000_000, 0)}
}

func (m *manualClock) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.now
}

func (m *manualClock) Advance(d time.Duration) {
	m.mu.Lock()
	m.now = m.now.Add(d)
	m.mu.Unlock()
}

func newTestController(clk *manualClock, ms *obsv.CounterSet) *Controller {
	return New(Config{
		MaxBatch: 16,
		MaxDelay: 2 * time.Millisecond,
		Metrics:  ms,
		Clock:    clk.Now,
	})
}

// A key's first arrival — and arrivals at a trickle — must launch
// immediately: no coalesce delay for traffic that will never find
// lane-mates.
func TestColdKeyLaunchesImmediately(t *testing.T) {
	clk := newManualClock()
	ms := obsv.NewCounterSet()
	c := newTestController(clk, ms)

	pol := c.Decide("fp1")
	if pol.MaxBatch > 1 {
		t.Fatalf("first arrival: want immediate policy, got %+v", pol)
	}
	// One request per second: expected lane-mates inside a 2ms window is
	// 0.002 — stone cold, every decision immediate.
	for i := 0; i < 5; i++ {
		clk.Advance(time.Second)
		if pol = c.Decide("fp1"); pol.MaxBatch > 1 {
			t.Fatalf("trickle arrival %d: want immediate policy, got %+v", i, pol)
		}
	}
	if got := ms.Get(MetricImmediate); got != 6 {
		t.Fatalf("control/immediate = %d, want 6", got)
	}
	if got := ms.Get(MetricBatched); got != 0 {
		t.Fatalf("control/batched = %d, want 0", got)
	}
}

// A hot key's window must grow toward the lane cap, with the delay clamped
// to the time the measured rate needs to fill it.
func TestHotKeyGrowsTowardCap(t *testing.T) {
	clk := newManualClock()
	c := newTestController(clk, obsv.NewCounterSet())

	// 10k arrivals/sec: a 2ms window holds 20 expected lane-mates, which is
	// above the cap of 16 — the policy must saturate at MaxBatch=16 with a
	// delay of roughly 16 × 100µs = 1.6ms, below the 2ms ceiling.
	var pol batch.Policy
	c.Decide("hot")
	for i := 0; i < 40; i++ {
		clk.Advance(100 * time.Microsecond)
		pol = c.Decide("hot")
	}
	if pol.MaxBatch != 16 {
		t.Fatalf("hot policy batch = %d, want the cap 16 (policy %+v)", pol.MaxBatch, pol)
	}
	if pol.MaxDelay <= 0 || pol.MaxDelay > 2*time.Millisecond {
		t.Fatalf("hot policy delay = %s, want within (0, 2ms]", pol.MaxDelay)
	}
	if pol.MaxDelay > 1800*time.Microsecond {
		t.Fatalf("hot policy delay = %s, want ≈16×gap (≤1.8ms): heavy load must shed delay below the ceiling", pol.MaxDelay)
	}
}

// Between cold and saturated: a moderate rate gets a moderate batch target,
// not the cap and not immediate.
func TestModerateLoadIntermediateTarget(t *testing.T) {
	clk := newManualClock()
	c := newTestController(clk, obsv.NewCounterSet())

	// 2.5k/sec: 2ms window holds 5 expected lane-mates.
	var pol batch.Policy
	c.Decide("warm")
	for i := 0; i < 40; i++ {
		clk.Advance(400 * time.Microsecond)
		pol = c.Decide("warm")
	}
	if pol.MaxBatch < 2 || pol.MaxBatch > 8 {
		t.Fatalf("moderate policy batch = %d, want an intermediate target in [2, 8]", pol.MaxBatch)
	}
}

// A hot key that goes quiet must be cold again on return: the silence is
// not averaged into the rate.
func TestSilenceResetsToCold(t *testing.T) {
	clk := newManualClock()
	c := newTestController(clk, obsv.NewCounterSet())

	c.Decide("k")
	for i := 0; i < 20; i++ {
		clk.Advance(100 * time.Microsecond)
		c.Decide("k")
	}
	if pol := c.Decide("k"); pol.MaxBatch <= 1 {
		t.Fatalf("key should be hot before the silence, got %+v", pol)
	}
	clk.Advance(time.Minute)
	if pol := c.Decide("k"); pol.MaxBatch > 1 {
		t.Fatalf("after a minute of silence the key must be cold again, got %+v", pol)
	}
	// And the arrival right after is still rebuilding the estimate from
	// scratch — one fresh gap, not the stale pre-silence rate.
	clk.Advance(time.Second)
	if pol := c.Decide("k"); pol.MaxBatch > 1 {
		t.Fatalf("slow post-silence arrivals must stay cold, got %+v", pol)
	}
}

// Launch feedback: a timeout launch that caught one lane decays the rate
// estimate (shrink); a full launch tightens it (grow).
func TestObserveFeedback(t *testing.T) {
	clk := newManualClock()
	ms := obsv.NewCounterSet()
	c := newTestController(clk, ms)

	c.Decide("k")
	for i := 0; i < 20; i++ {
		clk.Advance(150 * time.Microsecond)
		c.Decide("k")
	}
	before := c.Decide("k")
	if before.MaxBatch <= 1 {
		t.Fatalf("setup: key should be hot, got %+v", before)
	}
	// Repeated near-empty timeout launches must drive the policy back to
	// immediate without any change in the arrival schedule.
	for i := 0; i < 12; i++ {
		c.Observe("k", 1, batch.ReasonTimeout)
	}
	clk.Advance(150 * time.Microsecond)
	after := c.Decide("k")
	if after.MaxBatch > 1 {
		t.Fatalf("after shrink feedback the policy must be immediate, got %+v", after)
	}
	if got := ms.Get(MetricShrink); got != 12 {
		t.Fatalf("control/shrink = %d, want 12", got)
	}

	// Full launches on a hot key tighten the estimate: the target must not
	// decrease, and grow feedback is counted.
	clk2 := newManualClock()
	ms2 := obsv.NewCounterSet()
	c2 := newTestController(clk2, ms2)
	c2.Decide("k")
	for i := 0; i < 20; i++ {
		clk2.Advance(400 * time.Microsecond)
		c2.Decide("k")
	}
	base := c2.Decide("k")
	for i := 0; i < 5; i++ {
		c2.Observe("k", base.MaxBatch, batch.ReasonFull)
	}
	clk2.Advance(400 * time.Microsecond)
	grown := c2.Decide("k")
	if grown.MaxBatch < base.MaxBatch {
		t.Fatalf("grow feedback must not shrink the target: %d -> %d", base.MaxBatch, grown.MaxBatch)
	}
	if got := ms2.Get(MetricGrow); got != 5 {
		t.Fatalf("control/grow = %d, want 5", got)
	}

	// Shrink launches are policy artifacts — the coalescer launched because
	// a decision dropped the cap, not because demand filled a batch — and
	// must leave the estimate and the grow/shrink ledger untouched: a twin
	// controller fed the identical schedule minus the shrink observes must
	// land on the identical policy.
	for i := 0; i < 5; i++ {
		c2.Observe("k", grown.MaxBatch, batch.ReasonShrink)
	}
	clk2.Advance(400 * time.Microsecond)
	afterShrink := c2.Decide("k")

	clk3 := newManualClock()
	c3 := newTestController(clk3, obsv.NewCounterSet())
	c3.Decide("k")
	for i := 0; i < 20; i++ {
		clk3.Advance(400 * time.Microsecond)
		c3.Decide("k")
	}
	c3.Decide("k")
	for i := 0; i < 5; i++ {
		c3.Observe("k", base.MaxBatch, batch.ReasonFull)
	}
	clk3.Advance(400 * time.Microsecond)
	c3.Decide("k")
	clk3.Advance(400 * time.Microsecond)
	if want := c3.Decide("k"); afterShrink != want {
		t.Fatalf("shrink launches changed the policy: %+v, want %+v", afterShrink, want)
	}
	if ms2.Get(MetricGrow) != 5 || ms2.Get(MetricShrink) != 0 {
		t.Fatalf("shrink launches must not count as feedback: grow=%d shrink=%d",
			ms2.Get(MetricGrow), ms2.Get(MetricShrink))
	}
}

// The per-key state is bounded: the stalest fingerprint is evicted at the
// MaxKeys cap.
func TestKeyStateBounded(t *testing.T) {
	clk := newManualClock()
	ms := obsv.NewCounterSet()
	c := New(Config{MaxKeys: 8, Metrics: ms, Clock: clk.Now})

	for i := 0; i < 50; i++ {
		clk.Advance(time.Millisecond)
		c.Decide(fmt.Sprintf("fp%d", i))
	}
	if got := c.Keys(); got > 8 {
		t.Fatalf("controller holds %d key states, want <= 8", got)
	}
	if got := ms.Get(MetricEvicted); got != 42 {
		t.Fatalf("control/evicted = %d, want 42", got)
	}
}

// The controller must be race-clean when plugged into a concurrent
// coalescer: many goroutines deciding and observing across keys.
func TestControllerConcurrent(t *testing.T) {
	c := New(Config{})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			key := fmt.Sprintf("fp%d", g%3)
			for i := 0; i < 500; i++ {
				pol := c.Decide(key)
				c.Observe(key, pol.MaxBatch, batch.ReasonFull)
			}
		}(g)
	}
	wg.Wait()
}
