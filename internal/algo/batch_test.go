package algo

import (
	"fmt"
	"reflect"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestMultiplyBatchDifferential is the batched differential property test
// over the full algorithm × ring matrix: MultiplyBatch over k random value
// assignments must equal k independent Multiply calls, on both engines,
// lane for lane — and the compiled batch's Stats must equal a scalar run's
// (one shared walk, per-slot accounting).
func TestMultiplyBatchDifferential(t *testing.T) {
	preps := []struct {
		name string
		mk   func(r ring.Semiring, seed int64) (*Prepared, error)
	}{
		{"lemma31/blocks", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareLemma31(r, workload.Blocks(32, 4))
		}},
		{"lemma31/mixed", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareLemma31(r, workload.Mixed(40, 4, seed))
		}},
		{"theorem42/blocks", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Blocks(32, 4), Theorem42Opts{})
		}},
		{"theorem42/mixed", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Mixed(40, 4, seed), Theorem42Opts{})
		}},
	}
	rings := []ring.Semiring{ring.Counting{}, ring.MinPlus{}, ring.Real{}, ring.NewGFp(1009)}

	for _, pf := range preps {
		for _, r := range rings {
			seed := int64(1)
			label := fmt.Sprintf("%s/%s", pf.name, r.Name())
			p, err := pf.mk(r, seed)
			if err != nil {
				t.Fatalf("%s: prepare: %v", label, err)
			}
			const k = 5
			as := make([]*matrix.Sparse, k)
			bs := make([]*matrix.Sparse, k)
			want := make([]*matrix.Sparse, k)
			var wantStats lbm.Stats
			for l := 0; l < k; l++ {
				as[l] = matrix.Random(p.Inst.Ahat, r, 100*seed+int64(2*l))
				bs[l] = matrix.Random(p.Inst.Bhat, r, 100*seed+int64(2*l+1))
				x, res, err := p.MultiplyOn(EngineCompiled, as[l], bs[l])
				if err != nil {
					t.Fatalf("%s: scalar lane %d: %v", label, l, err)
				}
				want[l] = x
				wantStats = res.Stats
			}
			for _, e := range []struct {
				name   string
				engine Engine
				opts   []lbm.Option
			}{
				{"map", EngineMap, nil},
				{"compiled/seq", EngineCompiled, nil},
				{"compiled/par", EngineCompiled, []lbm.Option{lbm.WithWorkers(4), lbm.WithParBatch(1)}},
			} {
				outs, res, err := p.MultiplyBatchOn(e.engine, as, bs, e.opts...)
				if err != nil {
					t.Fatalf("%s: %s: %v", label, e.name, err)
				}
				if len(outs) != k || res.Lanes != k {
					t.Fatalf("%s: %s: got %d outputs, Lanes=%d, want %d", label, e.name, len(outs), res.Lanes, k)
				}
				for l := 0; l < k; l++ {
					if !matrix.Equal(outs[l], want[l]) {
						t.Errorf("%s: %s: lane %d output differs from independent Multiply", label, e.name, l)
					}
				}
				if e.engine == EngineCompiled && !reflect.DeepEqual(res.Stats, wantStats) {
					t.Errorf("%s: %s: batch stats differ from scalar run\n got %+v\nwant %+v",
						label, e.name, res.Stats, wantStats)
				}
			}
		}
	}
}

// TestMultiplyBatchValidation pins the batch input contract: empty batches,
// mismatched lane counts and out-of-structure lanes are rejected with the
// offending lane named.
func TestMultiplyBatchValidation(t *testing.T) {
	r := ring.Counting{}
	p, err := PrepareLemma31(r, workload.Blocks(16, 4))
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(p.Inst.Ahat, r, 1)
	b := matrix.Random(p.Inst.Bhat, r, 2)
	if _, _, err := p.MultiplyBatch(nil, nil); err == nil {
		t.Error("empty batch accepted")
	}
	if _, _, err := p.MultiplyBatch([]*matrix.Sparse{a, a}, []*matrix.Sparse{b}); err == nil {
		t.Error("mismatched lane counts accepted")
	}
	bad := matrix.NewSparse(p.Inst.Ahat.N, r)
	bad.Set(0, p.Inst.Ahat.N-1, 1)
	if within(bad, p.Inst.Ahat) == nil {
		t.Skip("random structure covers the probe position")
	}
	if _, _, err := p.MultiplyBatch([]*matrix.Sparse{a, bad}, []*matrix.Sparse{b, b}); err == nil {
		t.Error("out-of-structure lane accepted")
	}
}

// TestMultiplyBatchSingleLane pins that a 1-lane batch goes through the
// scalar pool and matches Multiply exactly (the coalescer's k=1 case).
func TestMultiplyBatchSingleLane(t *testing.T) {
	r := ring.Real{}
	p, err := PrepareTheorem42(r, workload.Blocks(32, 4), Theorem42Opts{})
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(p.Inst.Ahat, r, 3)
	b := matrix.Random(p.Inst.Bhat, r, 4)
	want, _, err := p.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	outs, res, err := p.MultiplyBatch([]*matrix.Sparse{a}, []*matrix.Sparse{b})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lanes != 1 || !matrix.Equal(outs[0], want) {
		t.Errorf("single-lane batch mismatch (Lanes=%d)", res.Lanes)
	}
}
