package algo

import (
	"fmt"
	"math"

	"lbmm/internal/cluster"
	"lbmm/internal/fewtri"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/params"
	"lbmm/internal/ring"
	"lbmm/internal/vnet"
)

// Prepared is the supported model's preprocessing reified: every routing
// decision for a given support, computed once and reusable for any number
// of value sets. This is exactly the paper's setting — "the sparsity
// structure is globally known in advance … while the values of the nonzero
// elements are revealed at run time" — so amortizing the (free-in-model,
// costly-on-host) planning over repeated products with the same structure
// is the natural API for iterative workloads.
type Prepared struct {
	Inst   *graph.Instance
	Layout *lbm.Layout
	R      ring.Semiring
	Name   string

	// Engine selects the execution engine for Multiply/MultiplyWith. The
	// zero value runs the compiled engine; set EngineMap for the reference
	// map-backed Machine.
	Engine Engine

	phase1   []*cluster.PlannedBatch
	fewtri   *fewtri.Job
	compiled *compiledPrepared
	meta     Result
}

// engine resolves the effective engine: compiled by default, map when
// requested (or when no compiled form exists).
func (p *Prepared) engine() Engine {
	if p.Engine == EngineMap || p.compiled == nil {
		return EngineMap
	}
	return EngineCompiled
}

// PrepareLemma31 preprocesses the Lemma 3.1 (Theorems 5.3/5.11) algorithm.
func PrepareLemma31(r ring.Semiring, inst *graph.Instance) (*Prepared, error) {
	l := ChooseLayout(inst)
	tris := inst.Triangles()
	job, err := fewtri.Plan(inst.N, l, tris, 0)
	if err != nil {
		return nil, err
	}
	p := &Prepared{
		Inst: inst, Layout: l, R: r, Name: "lemma31",
		fewtri: job,
		meta:   Result{Name: "lemma31", Triangles: len(tris), Kappa: job.Kappa},
	}
	if p.compiled, err = compilePrepared(p); err != nil {
		return nil, fmt.Errorf("algo: compile: %w", err)
	}
	return p, nil
}

// PrepareTheorem42 preprocesses the two-phase algorithm: the full
// Lemma 4.13 clustering schedule plus the Lemma 3.1 residual job.
func PrepareTheorem42(r ring.Semiring, inst *graph.Instance, opts Theorem42Opts) (*Prepared, error) {
	if opts.NaivePhase2 {
		return nil, fmt.Errorf("algo: the naive-phase-2 reconstruction has no prepared form")
	}
	l := ChooseLayout(inst)
	_, isField := ring.AsField(r)
	alpha := opts.Alpha
	if alpha == 0 {
		if isField {
			alpha = 1.832
		} else {
			alpha = 1.867
		}
	}
	d := inst.D
	tris := inst.Triangles()
	p := &Prepared{Inst: inst, Layout: l, R: r, Name: "theorem42"}
	p.meta = Result{Name: "theorem42", Triangles: len(tris)}

	lambda := params.LambdaSemiring
	if isField {
		lambda = params.LambdaStrassen
	}
	net := vnet.Roles(inst.N)
	residual := tris
	for _, st := range params.Schedule(lambda, 1e-5, alpha) {
		targetResidual := int(math.Pow(float64(d), st.Beta) * float64(inst.N))
		if len(residual) <= targetResidual {
			continue
		}
		minGain := int(math.Pow(float64(d), 3-4*st.Epsilon) / 24)
		if minGain < 2 {
			minGain = 2
		}
		batches, rest := cluster.Partition(residual, inst.N, d, cluster.PartitionOpts{
			MinGain:        minGain,
			TargetResidual: targetResidual,
		})
		if len(batches) == 0 {
			break
		}
		for _, b := range batches {
			pb, err := cluster.PlanBatch(net, inst.N, l, b, isField)
			if err != nil {
				return nil, err
			}
			p.phase1 = append(p.phase1, pb)
			p.meta.Batches++
			p.meta.Cluster.CubeClusters += pb.Stats.CubeClusters
			p.meta.Cluster.StrassenClusters += pb.Stats.StrassenClusters
		}
		residual = rest
	}
	p.meta.Residual = len(residual)
	job, err := fewtri.Plan(inst.N, l, residual, 0)
	if err != nil {
		return nil, err
	}
	p.fewtri = job
	p.meta.Kappa = job.Kappa
	if p.compiled, err = compilePrepared(p); err != nil {
		return nil, fmt.Errorf("algo: compile: %w", err)
	}
	return p, nil
}

// Multiply runs the prepared plans on one value set. The values must
// realize (a subset of) the prepared supports: positions outside the known
// structure are rejected, positions inside it but absent load as the ring
// Zero (the supported model's "indicator" semantics, §2.1).
//
// Multiply is safe for concurrent use from multiple goroutines: every call
// executes on its own fresh machine, and all prepared state (instance,
// layout, planned batches, the Lemma 3.1 job) is read-only after Prepare.
func (p *Prepared) Multiply(a, b *matrix.Sparse) (*matrix.Sparse, *Result, error) {
	return p.MultiplyWith(a, b)
}

// MultiplyWith is Multiply with per-call machine options — the serving
// layer's entry point for per-request tracing (lbm.WithTrace) and fault
// injection (lbm.WithInjector) without touching shared prepared state.
func (p *Prepared) MultiplyWith(a, b *matrix.Sparse, mopts ...lbm.Option) (*matrix.Sparse, *Result, error) {
	return p.MultiplyOn(p.engine(), a, b, mopts...)
}

// MultiplyOn is MultiplyWith on an explicit engine, overriding the prepared
// default for this call only. Concurrent callers may pick different engines
// on one shared Prepared (the field-free dispatch the serving layer's
// compiled→map fault fallback needs). A compiled request on a preparation
// without a compiled form degrades to the map engine, mirroring the default
// dispatch.
func (p *Prepared) MultiplyOn(e Engine, a, b *matrix.Sparse, mopts ...lbm.Option) (*matrix.Sparse, *Result, error) {
	if err := within(a, p.Inst.Ahat); err != nil {
		return nil, nil, fmt.Errorf("algo: A %w", err)
	}
	if err := within(b, p.Inst.Bhat); err != nil {
		return nil, nil, fmt.Errorf("algo: B %w", err)
	}
	if e == EngineCompiled && p.compiled != nil {
		return p.multiplyCompiled(a, b, mopts...)
	}
	if p.fewtri == nil {
		// Restored from a snapshot: the compiled form exists but the
		// map-engine planning state was never serialized.
		return nil, nil, ErrNoMapForm
	}
	m := lbm.New(p.Inst.N, p.R, mopts...)
	// Load every support position explicitly (absent value = ring Zero, per
	// Sparse.Get), so the fixed plans find all their sources.
	for i, row := range p.Inst.Ahat.Rows {
		for _, j := range row {
			m.Put(p.Layout.OwnerA(int32(i), j), lbm.AKey(int32(i), j), a.Get(i, int(j)))
		}
	}
	for j, row := range p.Inst.Bhat.Rows {
		for _, k := range row {
			m.Put(p.Layout.OwnerB(int32(j), k), lbm.BKey(int32(j), k), b.Get(j, int(k)))
		}
	}
	lbm.ZeroOutputs(m, p.Layout, p.Inst.Xhat)

	before := 0
	for _, pb := range p.phase1 {
		if err := pb.Run(m); err != nil {
			return nil, nil, err
		}
	}
	vnet.CleanupStaging(m)
	phase1 := m.Rounds() - before
	if err := fewtri.Run(m, p.fewtri); err != nil {
		return nil, nil, err
	}
	got, err := lbm.CollectX(m, p.Layout, p.Inst.Xhat)
	if err != nil {
		return nil, nil, err
	}
	res := p.meta
	res.Engine = string(EngineMap)
	res.Stats = m.Stats()
	res.Rounds = res.Stats.Rounds
	res.Phase1Rounds = phase1
	res.Phase2Rounds = res.Rounds - phase1
	res.Profile = m.Profile()
	if tr := m.Trace(); tr != nil {
		res.Timeline = tr.Timeline()
	}
	return got, &res, nil
}

// within checks that m's stored entries all lie inside sup. It walks the
// sparse rows directly — materializing m.Support() just to validate would
// dominate the per-value-set cost of a prepared multiply.
func within(m *matrix.Sparse, sup *matrix.Support) error {
	if m.N != sup.N {
		return fmt.Errorf("dimension %d outside prepared structure %d", m.N, sup.N)
	}
	for i, row := range m.Rows {
		// Both row lists are sorted, so a tandem walk beats a binary search
		// per entry.
		sr := sup.Rows[i]
		k := 0
		for _, c := range row {
			for k < len(sr) && sr[k] < c.Col {
				k++
			}
			if k == len(sr) || sr[k] != c.Col {
				return fmt.Errorf("value at (%d,%d) outside the prepared structure", i, c.Col)
			}
			k++
		}
	}
	return nil
}
