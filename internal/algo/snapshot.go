package algo

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"

	"lbmm/internal/cluster"
	"lbmm/internal/fewtri"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// ErrNoMapForm reports that a Prepared holds only its compiled form: it was
// restored from a serialized snapshot, which carries the lowered instruction
// streams but not the map-engine planning state (planned batches, the
// Lemma 3.1 job). Requesting EngineMap on such a preparation fails with this
// error; callers that fall back to the map engine on faults must treat it as
// "recompile from structure" rather than "execute differently".
var ErrNoMapForm = errors.New("algo: prepared form restored from snapshot has no map engine")

// wireLoadRef is the exported form of loadRef.
type wireLoadRef struct {
	I, J int32
	Ref  lbm.SlotRef
}

// wireMeta carries the preparation-time Result skeleton — the fields that
// are functions of the structure, not of any particular run. It is a
// separate struct rather than a zeroed Result because gob refuses types
// with unexported-only fields (Result.Profile) even when the pointer is
// nil.
type wireMeta struct {
	Name                string
	Batches             int
	Cluster             cluster.ExecStats
	Kappa               int
	Triangles, Residual int
}

// preparedWire is the gob form of a compiled-only Prepared. It carries the
// supports (so the decoded form can validate inputs and rebuild its
// instance), the ring identity, the lowered instruction state, and the
// structural metadata of the preparation — everything Multiply and
// MultiplyBatch need on the compiled engine, and nothing the map engine
// would need.
type preparedWire struct {
	Name string
	// Ring is the ring's Name(); RingP carries the GF(p) modulus, which the
	// name alone does not pin.
	Ring  string
	RingP int64
	N, D  int
	// ARows/BRows/XRows are the support row lists of Â, B̂, X̂.
	ARows, BRows, XRows [][]int32
	// Meta is the preparation-time Result skeleton (triangle counts, batch
	// counts, κ).
	Meta wireMeta
	// Sizes is the per-node arena geometry of the shared SlotSpace.
	Sizes        []int32
	LoadA, LoadB []wireLoadRef
	X            []wireLoadRef
	Phase1       []*cluster.CompiledBatch
	StagingClear []lbm.SlotRef
	Few          *fewtri.CompiledJob
}

// EncodeCompiled writes the prepared form's compiled state as a gob stream.
// It fails if the preparation has no compiled form (nothing worth
// persisting: re-planning is exactly as expensive as decoding would be).
func (p *Prepared) EncodeCompiled(w io.Writer) error {
	cp := p.compiled
	if cp == nil {
		return fmt.Errorf("algo: %q has no compiled form to encode", p.Name)
	}
	meta := wireMeta{
		Name:      p.meta.Name,
		Batches:   p.meta.Batches,
		Cluster:   p.meta.Cluster,
		Kappa:     p.meta.Kappa,
		Triangles: p.meta.Triangles,
		Residual:  p.meta.Residual,
	}
	pw := preparedWire{
		Name:         p.Name,
		Ring:         p.R.Name(),
		N:            p.Inst.N,
		D:            p.Inst.D,
		ARows:        p.Inst.Ahat.Rows,
		BRows:        p.Inst.Bhat.Rows,
		XRows:        p.Inst.Xhat.Rows,
		Meta:         meta,
		Sizes:        cp.sizes,
		LoadA:        exportRefs(cp.loadA),
		LoadB:        exportRefs(cp.loadB),
		X:            exportRefs(cp.x),
		Phase1:       cp.phase1,
		StagingClear: cp.stagingClear,
		Few:          cp.few,
	}
	if f, ok := p.R.(ring.GFp); ok {
		pw.RingP = f.P
	}
	return gob.NewEncoder(w).Encode(&pw)
}

// DecodeCompiledPrepared restores a Prepared from a stream written by
// EncodeCompiled. The result is compiled-only: Multiply and MultiplyBatch
// run exactly as on a freshly prepared form, while EngineMap requests fail
// with ErrNoMapForm.
//
// Decoded state crosses a trust boundary (the plan store's files are
// outside the process), so everything is validated before an executor can
// touch it: supports are rebuilt with range and sortedness checks, load
// refs are matched one-to-one against the support entries, and every slot
// reference in every embedded program is bounds-checked against the arena
// geometry.
func DecodeCompiledPrepared(r io.Reader) (*Prepared, error) {
	var pw preparedWire
	if err := gob.NewDecoder(r).Decode(&pw); err != nil {
		return nil, fmt.Errorf("algo: decode prepared: %w", err)
	}
	rg, err := ringFromWire(pw.Ring, pw.RingP)
	if err != nil {
		return nil, fmt.Errorf("algo: decode prepared: %w", err)
	}
	if pw.D < 1 {
		return nil, fmt.Errorf("algo: decode prepared: sparsity parameter d=%d", pw.D)
	}
	ahat, err := matrix.SupportFromRows(pw.N, pw.ARows)
	if err != nil {
		return nil, fmt.Errorf("algo: decode prepared: Ahat: %w", err)
	}
	bhat, err := matrix.SupportFromRows(pw.N, pw.BRows)
	if err != nil {
		return nil, fmt.Errorf("algo: decode prepared: Bhat: %w", err)
	}
	xhat, err := matrix.SupportFromRows(pw.N, pw.XRows)
	if err != nil {
		return nil, fmt.Errorf("algo: decode prepared: Xhat: %w", err)
	}
	if len(pw.Sizes) != pw.N {
		return nil, fmt.Errorf("algo: decode prepared: %d arenas for %d nodes", len(pw.Sizes), pw.N)
	}
	for v, sz := range pw.Sizes {
		if sz < 0 {
			return nil, fmt.Errorf("algo: decode prepared: negative arena size at node %d", v)
		}
	}
	cp := &compiledPrepared{sizes: pw.Sizes}
	if cp.loadA, err = importRefs(pw.LoadA, ahat, pw.Sizes); err != nil {
		return nil, fmt.Errorf("algo: decode prepared: A loads: %w", err)
	}
	if cp.loadB, err = importRefs(pw.LoadB, bhat, pw.Sizes); err != nil {
		return nil, fmt.Errorf("algo: decode prepared: B loads: %w", err)
	}
	if cp.x, err = importRefs(pw.X, xhat, pw.Sizes); err != nil {
		return nil, fmt.Errorf("algo: decode prepared: X slots: %w", err)
	}
	for i, cb := range pw.Phase1 {
		if cb == nil {
			return nil, fmt.Errorf("algo: decode prepared: phase-1 batch %d missing", i)
		}
		if err := cb.ValidateRefs(pw.Sizes); err != nil {
			return nil, fmt.Errorf("algo: decode prepared: phase-1 batch %d: %w", i, err)
		}
	}
	cp.phase1 = pw.Phase1
	for _, ref := range pw.StagingClear {
		if err := checkSlotRef(ref, pw.Sizes); err != nil {
			return nil, fmt.Errorf("algo: decode prepared: staging sweep: %w", err)
		}
	}
	cp.stagingClear = pw.StagingClear
	if pw.Few == nil {
		return nil, fmt.Errorf("algo: decode prepared: phase-2 job missing")
	}
	if err := pw.Few.ValidateRefs(pw.Sizes); err != nil {
		return nil, fmt.Errorf("algo: decode prepared: phase-2 job: %w", err)
	}
	cp.few = pw.Few
	cp.finish(rg)

	inst := graph.NewInstance(pw.D, ahat, bhat, xhat)
	p := &Prepared{
		Inst:     inst,
		Layout:   ChooseLayout(inst),
		R:        rg,
		Name:     pw.Name,
		compiled: cp,
		meta: Result{
			Name:      pw.Meta.Name,
			Batches:   pw.Meta.Batches,
			Cluster:   pw.Meta.Cluster,
			Kappa:     pw.Meta.Kappa,
			Triangles: pw.Meta.Triangles,
			Residual:  pw.Meta.Residual,
		},
	}
	return p, nil
}

// exportRefs converts internal load refs to their wire form.
func exportRefs(refs []loadRef) []wireLoadRef {
	out := make([]wireLoadRef, len(refs))
	for i, lr := range refs {
		out[i] = wireLoadRef{I: lr.i, J: lr.j, Ref: lr.ref}
	}
	return out
}

// importRefs converts wire load refs back, insisting they enumerate sup's
// entries in exactly row-major order (the order compilePrepared emits and
// the batched loader's merge-walk depends on) with every slot in range.
func importRefs(refs []wireLoadRef, sup *matrix.Support, sizes []int32) ([]loadRef, error) {
	if len(refs) != sup.NNZ {
		return nil, fmt.Errorf("%d refs for %d support entries", len(refs), sup.NNZ)
	}
	out := make([]loadRef, len(refs))
	k := 0
	for i, row := range sup.Rows {
		for _, j := range row {
			lr := refs[k]
			if lr.I != int32(i) || lr.J != j {
				return nil, fmt.Errorf("ref %d is (%d,%d), want support entry (%d,%d)", k, lr.I, lr.J, i, j)
			}
			if err := checkSlotRef(lr.Ref, sizes); err != nil {
				return nil, fmt.Errorf("ref %d (%d,%d): %w", k, lr.I, lr.J, err)
			}
			out[k] = loadRef{i: lr.I, j: lr.J, ref: lr.Ref}
			k++
		}
	}
	return out, nil
}

// checkSlotRef bounds-checks one slot reference against the arena geometry.
func checkSlotRef(r lbm.SlotRef, sizes []int32) error {
	if r.Node < 0 || int(r.Node) >= len(sizes) {
		return fmt.Errorf("node %d out of range (n=%d)", r.Node, len(sizes))
	}
	if r.Slot < 0 || r.Slot >= sizes[r.Node] {
		return fmt.Errorf("slot %d out of range at node %d (%d slots)", r.Slot, r.Node, sizes[r.Node])
	}
	return nil
}

// ringFromWire reconstructs the ring a snapshot was prepared over. GF(p)
// carries its modulus explicitly — the name alone maps to the default
// modulus, which would silently change the arithmetic.
func ringFromWire(name string, p int64) (ring.Semiring, error) {
	if name == "gfp" {
		return ring.ParseGFp(p)
	}
	rg, err := matrix.RingByName(name)
	if err != nil {
		return nil, err
	}
	return rg, nil
}
