package algo

import (
	"fmt"

	"lbmm/internal/fewtri"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// MultiplyBatch runs the prepared plans on k value sets at once. Every lane
// must realize (a subset of) the prepared supports — same contract as
// Multiply — and the lanes share one instruction-stream walk on the
// compiled engine: the batch pays one presence check, one decode and one
// stats update per instruction regardless of k, which is where the batching
// throughput win lives. Outputs come back lane for lane: outs[l] is
// as[l]·bs[l].
//
// The returned Result describes the whole batch (Lanes = k); Stats and
// Rounds are per-batch, not per-lane, because the batch really did execute
// one round sequence.
func (p *Prepared) MultiplyBatch(as, bs []*matrix.Sparse) ([]*matrix.Sparse, *Result, error) {
	return p.MultiplyBatchWith(as, bs)
}

// MultiplyBatchWith is MultiplyBatch with per-call machine options — the
// serving layer's entry point for batch tracing and fault injection. A
// fault fails the whole batch: lanes share every round, so there is no
// per-lane partial success.
func (p *Prepared) MultiplyBatchWith(as, bs []*matrix.Sparse, mopts ...lbm.Option) ([]*matrix.Sparse, *Result, error) {
	return p.MultiplyBatchOn(p.engine(), as, bs, mopts...)
}

// MultiplyBatchOn is MultiplyBatchWith on an explicit engine. The map
// engine runs k independent multiplies — definitionally the oracle the
// compiled lane-strided walk is differentially tested against — so the two
// engines return identical lane outputs, and the serving layer's
// compiled→map fault fallback works for batches exactly as for scalars.
func (p *Prepared) MultiplyBatchOn(e Engine, as, bs []*matrix.Sparse, mopts ...lbm.Option) ([]*matrix.Sparse, *Result, error) {
	if len(as) == 0 {
		return nil, nil, fmt.Errorf("algo: empty batch")
	}
	if len(as) != len(bs) {
		return nil, nil, fmt.Errorf("algo: batch lanes mismatched: %d A values vs %d B values", len(as), len(bs))
	}
	for l := range as {
		if err := within(as[l], p.Inst.Ahat); err != nil {
			return nil, nil, fmt.Errorf("algo: lane %d: A %w", l, err)
		}
		if err := within(bs[l], p.Inst.Bhat); err != nil {
			return nil, nil, fmt.Errorf("algo: lane %d: B %w", l, err)
		}
	}
	if e == EngineCompiled && p.compiled != nil {
		return p.multiplyCompiledBatch(as, bs, mopts...)
	}
	outs := make([]*matrix.Sparse, len(as))
	var res *Result
	for l := range as {
		out, r, err := p.MultiplyOn(EngineMap, as[l], bs[l], mopts...)
		if err != nil {
			return nil, nil, fmt.Errorf("lane %d: %w", l, err)
		}
		outs[l] = out
		if res == nil {
			res = r
		}
	}
	res.Lanes = len(as)
	return outs, res, nil
}

// multiplyCompiledBatch is the lane-strided compiled path: one executor
// whose arenas carry k lanes per slot, loaded lane by lane and walked once.
func (p *Prepared) multiplyCompiledBatch(as, bs []*matrix.Sparse, mopts ...lbm.Option) ([]*matrix.Sparse, *Result, error) {
	cp := p.compiled
	K := len(as)
	x, pool := cp.execFor(K)
	x.Configure(mopts...)
	defer func() {
		x.Reset()
		pool.Put(x)
	}()
	// Load refs are in row-major sorted order (compilePrepared walks the
	// support rows), and within() pinned every lane's entries inside the
	// support — so one cursor per lane merge-walks the sorted rows instead
	// of binary-searching every position, and PutLanes writes each slot's
	// lanes contiguously.
	zero := p.R.Zero()
	buf := make([]ring.Value, K)
	rows := make([][]matrix.Cell, K)
	pos := make([]int, K)
	load := func(refs []loadRef, ms []*matrix.Sparse) {
		row := int32(-1)
		for _, lr := range refs {
			if lr.i != row {
				row = lr.i
				for l, m := range ms {
					rows[l] = m.Rows[row]
					pos[l] = 0
				}
			}
			for l := 0; l < K; l++ {
				cells, k := rows[l], pos[l]
				for k < len(cells) && cells[k].Col < lr.j {
					k++
				}
				if k < len(cells) && cells[k].Col == lr.j {
					buf[l] = cells[k].Val
					k++
				} else {
					buf[l] = zero
				}
				pos[l] = k
			}
			x.PutLanes(lr.ref, buf)
		}
	}
	load(cp.loadA, as)
	load(cp.loadB, bs)
	for l := range buf {
		buf[l] = zero
	}
	for _, lr := range cp.x {
		x.PutLanes(lr.ref, buf)
	}
	for _, cb := range cp.phase1 {
		if err := cb.Run(x); err != nil {
			return nil, nil, err
		}
	}
	for _, ref := range cp.stagingClear {
		x.ClearSlot(ref)
	}
	phase1 := x.Rounds()
	if err := fewtri.RunCompiled(x, cp.few); err != nil {
		return nil, nil, err
	}
	outs := make([]*matrix.Sparse, K)
	for l := range outs {
		outs[l] = matrix.NewSparse(p.Inst.Xhat.N, p.R)
	}
	for _, lr := range cp.x {
		if !x.Owns(lr.ref.Node) {
			// A partitioned run collects each output at the participant that
			// owns it; the coordinator merges the disjoint partials.
			continue
		}
		if _, ok := x.GetLane(lr.ref, 0); !ok {
			return nil, nil, fmt.Errorf("lbm: owner of X(%d,%d) never received it", lr.i, lr.j)
		}
		vs := x.MustLanes(lr.ref)
		// cp.x is row-major sorted, so appending keeps the row invariant;
		// ring zeros are skipped exactly as Sparse.Set drops them.
		for l := 0; l < K; l++ {
			if p.R.Eq(vs[l], zero) {
				continue
			}
			outs[l].Rows[lr.i] = append(outs[l].Rows[lr.i], matrix.Cell{Col: lr.j, Val: vs[l]})
		}
	}
	res := p.meta
	res.Engine = string(EngineCompiled)
	res.Lanes = K
	res.Stats = x.Stats()
	res.Rounds = res.Stats.Rounds
	res.Phase1Rounds = phase1
	res.Phase2Rounds = res.Rounds - phase1
	res.Profile = x.Profile()
	if tr := x.Trace(); tr != nil {
		res.Timeline = tr.Timeline()
	}
	return outs, &res, nil
}
