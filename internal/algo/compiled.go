package algo

import (
	"fmt"
	"sync"

	"lbmm/internal/cluster"
	"lbmm/internal/fewtri"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
)

// Engine selects the execution engine of a prepared multiplication.
type Engine string

const (
	// EngineCompiled runs the slot-addressed compiled form (the default):
	// value loading, every communication phase, the local products and the
	// output collection all resolve to dense arena slots computed at Prepare
	// time.
	EngineCompiled Engine = "compiled"
	// EngineMap runs the reference map-backed Machine — the differential
	// oracle the compiled engine is tested against.
	EngineMap Engine = "map"
)

// loadRef binds one matrix position (i, j) to its arena slot.
type loadRef struct {
	i, j int32
	ref  lbm.SlotRef
}

// compiledPrepared is the compiled twin of a Prepared: the whole pipeline
// — input loading, phase-1 batches, the staging sweep, the Lemma 3.1 job
// and output collection — lowered against one shared SlotSpace, so Multiply
// is a pure array program. Executors are recycled through a pool; in steady
// state a multiplication allocates no store memory at all.
type compiledPrepared struct {
	sizes        []int32
	loadA, loadB []loadRef
	// x holds the output slots in Xhat row order: zero-initialized before
	// the run, collected after it.
	x            []loadRef
	phase1       []*cluster.CompiledBatch
	stagingClear []lbm.SlotRef
	few          *fewtri.CompiledJob
	bytes        int64
	r            ring.Semiring
	pool         sync.Pool
	// lanePools holds one executor pool per batched lane count (lanes > 1):
	// arenas are sized slots×lanes, so executors only recycle within their
	// own lane count. Key int → value *sync.Pool of *lbm.Exec.
	lanePools sync.Map
}

// execFor returns a pooled executor carrying the given lane count, plus the
// pool to return it to after Reset.
func (cp *compiledPrepared) execFor(lanes int) (*lbm.Exec, *sync.Pool) {
	if lanes <= 1 {
		return cp.pool.Get().(*lbm.Exec), &cp.pool
	}
	pi, ok := cp.lanePools.Load(lanes)
	if !ok {
		sizes, r := cp.sizes, cp.r
		pi, _ = cp.lanePools.LoadOrStore(lanes, &sync.Pool{
			New: func() any { return lbm.NewExecBatch(sizes, lanes, r) },
		})
	}
	pool := pi.(*sync.Pool)
	return pool.Get().(*lbm.Exec), pool
}

// compilePrepared lowers a Prepared into its compiled twin. The lowering
// order mirrors execution order, so the occupancy analysis sees keys in the
// same sequence the map engine would create them.
func compilePrepared(p *Prepared) (*compiledPrepared, error) {
	sp := lbm.NewSlotSpace(p.Inst.N)
	cp := &compiledPrepared{}
	for i, row := range p.Inst.Ahat.Rows {
		for _, j := range row {
			cp.loadA = append(cp.loadA, loadRef{i: int32(i), j: j,
				ref: sp.Ref(p.Layout.OwnerA(int32(i), j), lbm.AKey(int32(i), j))})
		}
	}
	for j, row := range p.Inst.Bhat.Rows {
		for _, k := range row {
			cp.loadB = append(cp.loadB, loadRef{i: int32(j), j: k,
				ref: sp.Ref(p.Layout.OwnerB(int32(j), k), lbm.BKey(int32(j), k))})
		}
	}
	for i, row := range p.Inst.Xhat.Rows {
		for _, k := range row {
			cp.x = append(cp.x, loadRef{i: int32(i), j: k,
				ref: sp.Ref(p.Layout.OwnerX(int32(i), k), lbm.XKey(int32(i), k))})
		}
	}
	for _, pb := range p.phase1 {
		cb, err := pb.Compile(sp)
		if err != nil {
			return nil, err
		}
		cp.phase1 = append(cp.phase1, cb)
	}
	// The staging sweep: every vnet staging key the phase-1 plans can have
	// created is known now (fewtri routes with plain keys only), so snapshot
	// their slots — clearing an absent slot is a no-op, exactly like
	// vnet.CleanupStaging deleting only present keys.
	sp.EachKey(func(node lbm.NodeID, k lbm.Key, slot int32) {
		if k.Kind == lbm.KStage {
			cp.stagingClear = append(cp.stagingClear, lbm.SlotRef{Node: node, Slot: slot})
		}
	})
	few, err := fewtri.Compile(sp, p.fewtri)
	if err != nil {
		return nil, err
	}
	cp.few = few
	cp.sizes = sp.Sizes()
	cp.finish(p.R)
	return cp, nil
}

// finish completes a compiled form whose instruction state is in place —
// whether freshly lowered or decoded from a serialized snapshot: it prices
// the resident size and arms the executor pool for the given ring.
func (cp *compiledPrepared) finish(r ring.Semiring) {
	cp.bytes = int64(len(cp.loadA)+len(cp.loadB)+len(cp.x)) * 16
	cp.bytes += int64(len(cp.stagingClear)) * 8
	for _, cb := range cp.phase1 {
		cp.bytes += cb.MemoryBytes()
	}
	cp.bytes += cp.few.MemoryBytes()
	for _, sz := range cp.sizes {
		cp.bytes += int64(sz) * 12 // arena value + epoch stamp
	}
	sizes := cp.sizes
	cp.r = r
	cp.pool.New = func() any { return lbm.NewExec(sizes, r) }
}

// CompiledBytes reports the estimated resident size of the compiled form
// (instruction streams, slot tables and one executor's arenas). Serving
// caches use it as the memory cost of a cached Prepared.
func (p *Prepared) CompiledBytes() int64 {
	if p.compiled == nil {
		return 0
	}
	return p.compiled.bytes
}

// NodeLoads returns the per-node real-message loads of the prepared
// multiplication's compiled pipeline: send[v] and recv[v] are exactly the
// Stats.SendLoad[v]/RecvLoad[v] any execution of this structure will charge
// — rounds are a function of the structure only, so the loads are a
// compile-time property and need no execution. The load-aware partition
// balancer (internal/dist) consumes them. Returns nils when no compiled
// form exists (map-only algorithms).
func (p *Prepared) NodeLoads() (send, recv []int64) {
	cp := p.compiled
	if cp == nil {
		return nil, nil
	}
	send = make([]int64, p.Inst.N)
	recv = make([]int64, p.Inst.N)
	for _, cb := range cp.phase1 {
		cb.AddNodeLoads(send, recv)
	}
	cp.few.AddNodeLoads(send, recv)
	return send, recv
}

// multiplyCompiled is MultiplyWith on the compiled engine.
func (p *Prepared) multiplyCompiled(a, b *matrix.Sparse, mopts ...lbm.Option) (*matrix.Sparse, *Result, error) {
	cp := p.compiled
	x := cp.pool.Get().(*lbm.Exec)
	x.Configure(mopts...)
	defer func() {
		x.Reset()
		cp.pool.Put(x)
	}()
	for _, lr := range cp.loadA {
		x.PutSlot(lr.ref, a.Get(int(lr.i), int(lr.j)))
	}
	for _, lr := range cp.loadB {
		x.PutSlot(lr.ref, b.Get(int(lr.i), int(lr.j)))
	}
	zero := p.R.Zero()
	for _, lr := range cp.x {
		x.PutSlot(lr.ref, zero)
	}
	for _, cb := range cp.phase1 {
		if err := cb.Run(x); err != nil {
			return nil, nil, err
		}
	}
	for _, ref := range cp.stagingClear {
		x.ClearSlot(ref)
	}
	phase1 := x.Rounds()
	if err := fewtri.RunCompiled(x, cp.few); err != nil {
		return nil, nil, err
	}
	out := matrix.NewSparse(p.Inst.Xhat.N, p.R)
	for _, lr := range cp.x {
		if !x.Owns(lr.ref.Node) {
			// A partitioned run collects each output at the participant that
			// owns it; the coordinator merges the disjoint partials.
			continue
		}
		v, ok := x.GetSlot(lr.ref)
		if !ok {
			return nil, nil, fmt.Errorf("lbm: owner of X(%d,%d) never received it", lr.i, lr.j)
		}
		out.Set(int(lr.i), int(lr.j), v)
	}
	res := p.meta
	res.Engine = string(EngineCompiled)
	res.Stats = x.Stats()
	res.Rounds = res.Stats.Rounds
	res.Phase1Rounds = phase1
	res.Phase2Rounds = res.Rounds - phase1
	res.Profile = x.Profile()
	if tr := x.Trace(); tr != nil {
		res.Timeline = tr.Timeline()
	}
	return out, &res, nil
}
