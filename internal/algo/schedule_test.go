package algo

import (
	"testing"

	"lbmm/internal/ring"
)

func TestTheorem42ScheduleVsFlat(t *testing.T) {
	// Both drivers must be exact; on a mixed instance the scheduled driver
	// runs ≥ as many batches (finer thresholds) and leaves a residual no
	// larger than the flat one's target.
	inst := blockInstance(128, 8)
	sched := checkAlg(t, ring.Counting{}, inst, Theorem42(Theorem42Opts{}), 3)
	flat := checkAlg(t, ring.Counting{}, inst, Theorem42(Theorem42Opts{FlatSchedule: true}), 3)
	if sched.Triangles != flat.Triangles {
		t.Fatal("different instances?")
	}
	if sched.Residual > sched.Triangles || flat.Residual > flat.Triangles {
		t.Fatal("residual bookkeeping broken")
	}
}
