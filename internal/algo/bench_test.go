package algo

import (
	"fmt"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// BenchmarkPreparedMultiply measures the serve-many shape both engines are
// built for: structure prepared once, Multiply called repeatedly with fresh
// values. The compiled engine amortizes planning into slot-addressed arrays
// and recycles its arenas through a pool, so per-call allocation should be
// near zero; the map engine rebuilds its stores every call.
func BenchmarkPreparedMultiply(b *testing.B) {
	cases := []struct {
		name string
		mk   func(r ring.Semiring) (*Prepared, error)
		r    ring.Semiring
	}{
		{"lemma31/counting", func(r ring.Semiring) (*Prepared, error) {
			return PrepareLemma31(r, workload.Blocks(32, 4))
		}, ring.Counting{}},
		{"theorem42/real", func(r ring.Semiring) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Blocks(32, 4), Theorem42Opts{})
		}, ring.Real{}},
	}
	for _, c := range cases {
		p, err := c.mk(c.r)
		if err != nil {
			b.Fatal(err)
		}
		a := matrix.Random(p.Inst.Ahat, c.r, 1)
		bm := matrix.Random(p.Inst.Bhat, c.r, 2)
		for _, engine := range []Engine{EngineMap, EngineCompiled} {
			p.Engine = engine
			b.Run(fmt.Sprintf("%s/%s", c.name, engine), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, _, err := p.MultiplyWith(a, bm); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}
