package algo

import (
	"math/rand"
	"testing"
	"testing/quick"

	"lbmm/internal/lbm"

	"lbmm/internal/graph"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func randomSupport(rng *rand.Rand, n, nnz int) *matrix.Support {
	entries := make([][2]int, 0, nnz)
	for len(entries) < nnz {
		entries = append(entries, [2]int{rng.Intn(n), rng.Intn(n)})
	}
	return matrix.NewSupport(n, entries)
}

// blockInstance builds the extremal US(d) instance: n/d disjoint complete
// d×d blocks on each matrix, giving ~d²n triangles (the worst case of
// Corollary 4.6) with perfect clusters.
func blockInstance(n, d int) *graph.Instance {
	var es [][2]int
	for b := 0; b+d <= n; b += d {
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				es = append(es, [2]int{b + i, b + j})
			}
		}
	}
	s := matrix.NewSupport(n, es)
	return graph.NewInstance(d, s, s, s)
}

func usInstance(rng *rand.Rand, n, d int) *graph.Instance {
	us := func() *matrix.Support {
		var es [][2]int
		for t := 0; t < d; t++ {
			p := rng.Perm(n)
			for i, j := range p {
				es = append(es, [2]int{i, j})
			}
		}
		return matrix.NewSupport(n, es)
	}
	return graph.NewInstance(d, us(), us(), us())
}

func checkAlg(t *testing.T, r ring.Semiring, inst *graph.Instance, alg Algorithm, seed int64) *Result {
	t.Helper()
	a := matrix.Random(inst.Ahat, r, seed)
	b := matrix.Random(inst.Bhat, r, seed+1)
	res, got, err := Solve(r, inst, a, b, alg)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(got, a, b, inst.Xhat); err != nil {
		t.Fatalf("%s over %s: %v", res.Name, r.Name(), err)
	}
	return res
}

func TestAllAlgorithmsCorrectRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	algs := []Algorithm{TrivialSparse, BaselineNaiveVirtual(0), LemmaOnly, Theorem42(Theorem42Opts{})}
	for _, r := range ring.All() {
		for trial := 0; trial < 2; trial++ {
			n := 12 + rng.Intn(12)
			inst := graph.NewInstance(3,
				randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n), randomSupport(rng, n, 3*n))
			for _, alg := range algs {
				checkAlg(t, r, inst, alg, int64(trial))
			}
		}
	}
}

func TestAllAlgorithmsCorrectBlocks(t *testing.T) {
	algs := []Algorithm{TrivialSparse, BaselineNaiveVirtual(0), LemmaOnly, Theorem42(Theorem42Opts{})}
	for _, r := range []ring.Semiring{ring.Counting{}, ring.NewGFp(1009), ring.Real{}, ring.MinPlus{}} {
		inst := blockInstance(24, 4)
		for _, alg := range algs {
			res := checkAlg(t, r, inst, alg, 7)
			if res.Triangles == 0 {
				t.Fatal("block instance has no triangles")
			}
		}
	}
}

func TestAllAlgorithmsCorrectUS(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	inst := usInstance(rng, 32, 4)
	algs := []Algorithm{TrivialSparse, BaselineNaiveVirtual(0), LemmaOnly, Theorem42(Theorem42Opts{})}
	for _, alg := range algs {
		checkAlg(t, ring.Counting{}, inst, alg, 3)
	}
}

func TestTheorem42UsesClustersOnBlocks(t *testing.T) {
	// The block instance is perfectly clusterable: phase 1 must fire and
	// shrink the residual substantially.
	inst := blockInstance(32, 4)
	res := checkAlg(t, ring.Counting{}, inst, Theorem42(Theorem42Opts{}), 1)
	if res.Batches == 0 {
		t.Error("no clustered batches on the block instance")
	}
	if res.Residual >= res.Triangles {
		t.Error("phase 1 removed nothing")
	}
	// Field variant exercises Strassen clusters.
	resF := checkAlg(t, ring.NewGFp(997), inst, Theorem42(Theorem42Opts{}), 1)
	if resF.Cluster.StrassenClusters == 0 {
		t.Error("field run used no Strassen clusters")
	}
}

func TestTheorem42BeatsTrivialOnBlocks(t *testing.T) {
	// On the extremal instance the clustered phase should beat the O(d²)
	// trivial algorithm once d is large enough for the d^{4/3}-vs-d² gap to
	// overcome the simulation constants (role multiplexing, Euler colours).
	if testing.Short() {
		t.Skip("large instance")
	}
	n, d := 256, 32
	inst := blockInstance(n, d)
	triv := checkAlg(t, ring.Boolean{}, inst, TrivialSparse, 2)
	thm := checkAlg(t, ring.Boolean{}, inst, Theorem42(Theorem42Opts{}), 2)
	if thm.Rounds >= triv.Rounds {
		t.Errorf("theorem42 (%d rounds) did not beat trivial (%d rounds)", thm.Rounds, triv.Rounds)
	}
}

func TestLemma31BeatsBaselineOnHotPairs(t *testing.T) {
	// Instance with a hot B pair: B(0,0) participates in many triangles.
	// The naive baseline's owner of B row 0 re-sends the hot value once per
	// virtual consumer; Lemma 3.1's broadcast trees spread it in O(log).
	n := 96
	var ae, be, xe [][2]int
	for i := 0; i < n; i++ {
		ae = append(ae, [2]int{i, 0}) // A column 0 dense: every i uses j=0
		xe = append(xe, [2]int{i, 0})
	}
	be = append(be, [2]int{0, 0}) // single hot B element
	inst := graph.NewInstance(n,
		matrix.NewSupport(n, ae), matrix.NewSupport(n, be), matrix.NewSupport(n, xe))
	if inst.CountTriangles() != n {
		t.Fatalf("want %d triangles, got %d", n, inst.CountTriangles())
	}
	// Force fine-grained virtualization (κ=1) so the hot value has many
	// virtual consumers.
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 3)
	b := matrix.Random(inst.Bhat, r, 4)
	base, gotB, err := Solve(r, inst, a, b, BaselineNaiveVirtual(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(gotB, a, b, inst.Xhat); err != nil {
		t.Fatal(err)
	}
	lem, gotL, err := Solve(r, inst, a, b, LemmaOnlyKappa(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(gotL, a, b, inst.Xhat); err != nil {
		t.Fatal(err)
	}
	// The baseline's hot-value sender pays Θ(n) rounds; Lemma 3.1 pays
	// Θ(log n + small). Demand a clear separation.
	if lem.Rounds*2 >= base.Rounds {
		t.Errorf("lemma 3.1 (%d rounds) not clearly faster than naive baseline (%d rounds)",
			lem.Rounds, base.Rounds)
	}
}

func TestSPAA22ReconstructionCorrect(t *testing.T) {
	// The prior-work full reconstruction (clusters + naive phase 2) must be
	// exact on every ring and every instance family.
	rng := rand.New(rand.NewSource(13))
	alg := Theorem42(Theorem42Opts{NaivePhase2: true})
	for _, r := range []ring.Semiring{ring.Counting{}, ring.MinPlus{}, ring.NewGFp(1009)} {
		inst := graph.NewInstance(3,
			randomSupport(rng, 20, 60), randomSupport(rng, 20, 60), randomSupport(rng, 20, 60))
		res := checkAlg(t, r, inst, alg, 5)
		if res.Name != "spaa22-reconstruction" {
			t.Errorf("name = %s", res.Name)
		}
	}
	checkAlg(t, ring.Counting{}, blockInstance(24, 4), alg, 6)
	checkAlg(t, ring.Counting{}, usInstance(rng, 32, 4), alg, 7)
}

func TestUnsupportedMode(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	r := ring.Counting{}
	inst := graph.NewInstance(3,
		randomSupport(rng, 24, 60), randomSupport(rng, 24, 60), randomSupport(rng, 24, 40))
	res := checkAlg(t, r, inst, Unsupported(LemmaOnly), 5)
	words := inst.Ahat.NNZ + inst.Bhat.NNZ + inst.Xhat.NNZ
	if res.SupportWords != words {
		t.Errorf("support words %d, want %d", res.SupportWords, words)
	}
	// Dissemination dominates: ≥ words rounds (computer 0 receives them all
	// one per round), ≤ ~3·words + log n.
	if res.DisseminationRounds < words-24 { // entries already at 0 are local
		t.Errorf("dissemination rounds %d below gather floor", res.DisseminationRounds)
	}
	if res.DisseminationRounds > 4*words+40 {
		t.Errorf("dissemination rounds %d above pipeline bound", res.DisseminationRounds)
	}
	if res.Name != "unsupported+lemma31" {
		t.Errorf("name %q", res.Name)
	}
}

func TestDisseminationDeliversTheStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	r := ring.Counting{}
	n := 16
	inst := graph.NewInstance(2,
		randomSupport(rng, n, 30), randomSupport(rng, n, 30), randomSupport(rng, n, 20))
	m := lbm.New(n, r)
	l := ChooseLayout(inst)
	lbm.LoadInputs(m, l, matrix.Random(inst.Ahat, r, 1), matrix.Random(inst.Bhat, r, 2))
	if _, err := DisseminateSupport(m, l, inst); err != nil {
		t.Fatal(err)
	}
	// EVERY computer can reconstruct all three supports.
	for v := 0; v < n; v++ {
		if err := VerifyDissemination(m, lbm.NodeID(v), inst); err != nil {
			t.Fatal(err)
		}
	}
}

// TestQuickAllAlgorithmsAllClasses sweeps random (algorithm, ring, class
// triple) combinations through the full pipeline.
func TestQuickAllAlgorithmsAllClasses(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	rings := ring.All()
	algs := []Algorithm{TrivialSparse, LemmaOnly, Theorem42(Theorem42Opts{}),
		BaselineNaiveVirtual(0), Theorem42(Theorem42Opts{NaivePhase2: true})}
	classes := []matrix.Class{matrix.US, matrix.RS, matrix.CS, matrix.BD, matrix.AS}
	prop := func(seed int64) bool {
		n := 12 + rng.Intn(20)
		d := 1 + rng.Intn(3)
		ca := classes[rng.Intn(len(classes))]
		cb := classes[rng.Intn(len(classes))]
		cx := classes[rng.Intn(len(classes))]
		inst := workload.Instance(ca, cb, cx, n, d, seed)
		r := rings[rng.Intn(len(rings))]
		alg := algs[rng.Intn(len(algs))]
		a := matrix.Random(inst.Ahat, r, seed)
		b := matrix.Random(inst.Bhat, r, seed+1)
		_, got, err := Solve(r, inst, a, b, alg)
		if err != nil {
			t.Logf("solve error: %v", err)
			return false
		}
		return Verify(got, a, b, inst.Xhat) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
