package algo

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace files")

// goldenExport runs the fixed-seed reference execution whose trace is pinned
// in testdata: LemmaOnly on the extremal block instance. Everything in the
// pipeline is deterministic (seeded values, sorted message sets, sequential
// engine), so the JSON must be byte-identical run to run.
func goldenExport(t *testing.T) *obsv.Export {
	t.Helper()
	inst := workload.Blocks(16, 2)
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	res, got, err := Solve(r, inst, a, b, LemmaOnly, lbm.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(got, a, b, inst.Xhat); err != nil {
		t.Fatal(err)
	}
	e := res.Profile.Export()
	e.Meta = map[string]string{"algorithm": res.Name, "workload": "blocks(16,2)"}
	return e
}

func TestTraceExportGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenExport(t).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_lemma31_blocks.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace export drifted from golden file %s (run with -update if intended)\ngot:\n%s", path, buf.String())
	}
}

func TestTraceExportDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := goldenExport(t).WriteJSON(&a); err != nil {
		t.Fatal(err)
	}
	if err := goldenExport(t).WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("two identical runs exported different traces")
	}
}

// TestTheorem42PhaseRoundsTile pins the export invariant the CLI relies on:
// on a full two-phase run, the top-level phase round counts sum exactly to
// the total (gaps, if any, appear as explicit "(unphased)" spans).
func TestTheorem42PhaseRoundsTile(t *testing.T) {
	inst := workload.Mixed(32, 4, 7)
	r := ring.Boolean{}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	res, got, err := Solve(r, inst, a, b, Theorem42(Theorem42Opts{}), lbm.WithTrace())
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(got, a, b, inst.Xhat); err != nil {
		t.Fatal(err)
	}
	e := res.Profile.Export()
	if e.Rounds != res.Rounds {
		t.Errorf("export rounds %d != result rounds %d", e.Rounds, res.Rounds)
	}
	sum, at := 0, 0
	for _, s := range e.Phases {
		sum += s.Rounds
		if s.Start != at {
			t.Errorf("phase %q starts at %d, want %d", s.Label, s.Start, at)
		}
		at = s.End
	}
	if sum != e.Rounds || at != e.Rounds {
		t.Errorf("top-level phases sum to %d, tile to %d, total %d", sum, at, e.Rounds)
	}
	var msgs int64
	for _, s := range e.Phases {
		msgs += s.Messages
	}
	if msgs != e.Messages {
		t.Errorf("top-level phase messages sum to %d, total %d", msgs, e.Messages)
	}
}
