package algo

import (
	"math/rand"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func TestPreparedMultiplyManyValueSets(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	_ = rng
	for _, mk := range []func(ring.Semiring) (*Prepared, error){
		func(r ring.Semiring) (*Prepared, error) {
			return PrepareLemma31(r, workload.Blocks(32, 4))
		},
		func(r ring.Semiring) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Blocks(32, 4), Theorem42Opts{})
		},
		func(r ring.Semiring) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Mixed(32, 4, 9), Theorem42Opts{})
		},
	} {
		for _, r := range []ring.Semiring{ring.Counting{}, ring.NewGFp(1009), ring.MinPlus{}} {
			p, err := mk(r)
			if err != nil {
				t.Fatal(err)
			}
			prevRounds := -1
			for seed := int64(0); seed < 3; seed++ {
				a := matrix.Random(p.Inst.Ahat, r, seed)
				b := matrix.Random(p.Inst.Bhat, r, seed+50)
				x, res, err := p.Multiply(a, b)
				if err != nil {
					t.Fatal(err)
				}
				want := matrix.MulReference(a, b, p.Inst.Xhat)
				if !matrix.Equal(x, want) {
					t.Fatalf("%s over %s seed %d: wrong product", p.Name, r.Name(), seed)
				}
				// Rounds are a function of the support only: identical
				// across value sets.
				if prevRounds >= 0 && res.Rounds != prevRounds {
					t.Fatalf("%s: rounds changed across value sets (%d vs %d)",
						p.Name, res.Rounds, prevRounds)
				}
				prevRounds = res.Rounds
			}
		}
	}
}

func TestPreparedPartialValues(t *testing.T) {
	// Values may realize only part of the prepared support: missing
	// positions are ring zeros (§2.1 indicator semantics).
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	p, err := PrepareLemma31(r, inst)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.Random(inst.Ahat, r, 1)
	// Zero out half of A's entries.
	cnt := 0
	for i, row := range inst.Ahat.Rows {
		for _, j := range row {
			if cnt%2 == 0 {
				a.Set(i, int(j), 0)
			}
			cnt++
		}
	}
	b := matrix.Random(inst.Bhat, r, 2)
	x, _, err := p.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(x, matrix.MulReference(a, b, inst.Xhat)) {
		t.Fatal("partial-value product wrong")
	}
}

func TestPreparedRejectsOutsideStructure(t *testing.T) {
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	p, err := PrepareLemma31(r, inst)
	if err != nil {
		t.Fatal(err)
	}
	a := matrix.NewSparse(16, r)
	a.Set(0, 15, 7) // blocks of size 4: (0,15) is outside every block
	if inst.Ahat.Has(0, 15) {
		t.Skip("construction assumption failed")
	}
	b := matrix.Random(inst.Bhat, r, 2)
	if _, _, err := p.Multiply(a, b); err == nil {
		t.Error("value outside the prepared structure accepted")
	}
	// Dimension mismatch too.
	small := matrix.NewSparse(8, r)
	if _, _, err := p.Multiply(small, b); err == nil {
		t.Error("dimension mismatch accepted")
	}
}

func TestPreparedTheorem42RejectsNaive(t *testing.T) {
	if _, err := PrepareTheorem42(ring.Counting{}, workload.Blocks(16, 4), Theorem42Opts{NaivePhase2: true}); err == nil {
		t.Error("naive phase 2 has no prepared form and must be rejected")
	}
}

func TestPreparedMatchesOneShot(t *testing.T) {
	// Prepared execution and the one-shot Algorithm produce identical
	// results and (for theorem42 on the same structure) identical rounds.
	r := ring.NewGFp(997)
	inst := workload.Blocks(32, 4)
	a := matrix.Random(inst.Ahat, r, 3)
	b := matrix.Random(inst.Bhat, r, 4)

	p, err := PrepareTheorem42(r, inst, Theorem42Opts{})
	if err != nil {
		t.Fatal(err)
	}
	xPrep, resPrep, err := p.Multiply(a, b)
	if err != nil {
		t.Fatal(err)
	}
	resShot, xShot, err := Solve(r, inst, a, b, Theorem42(Theorem42Opts{}))
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(xPrep, xShot) {
		t.Fatal("prepared and one-shot products differ")
	}
	if resPrep.Rounds != resShot.Rounds {
		t.Errorf("prepared %d rounds vs one-shot %d", resPrep.Rounds, resShot.Rounds)
	}
}
