package algo

import (
	"fmt"
	"reflect"
	"testing"

	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestEnginesDifferential is the randomized differential property test of
// the execution spine: the sequential map engine (the reference oracle),
// the Workers>1 map engine, and the compiled engine (sequential and
// parallel) must produce identical outputs AND identical Stats on the same
// prepared structure and values, across the algorithm matrix — lemma31 and
// theorem42 (whose field variant takes the dense Strassen OpSub path) over
// semirings and fields.
func TestEnginesDifferential(t *testing.T) {
	preps := []struct {
		name string
		mk   func(r ring.Semiring, seed int64) (*Prepared, error)
	}{
		{"lemma31/blocks", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareLemma31(r, workload.Blocks(32, 4))
		}},
		{"lemma31/mixed", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareLemma31(r, workload.Mixed(40, 4, seed))
		}},
		{"theorem42/blocks", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Blocks(32, 4), Theorem42Opts{})
		}},
		{"theorem42/mixed", func(r ring.Semiring, seed int64) (*Prepared, error) {
			return PrepareTheorem42(r, workload.Mixed(40, 4, seed), Theorem42Opts{})
		}},
	}
	// Counting and MinPlus are plain semirings (OpAcc only); Real and GF(p)
	// are fields, steering theorem42's eligible clusters through distributed
	// Strassen and its signed OpSub accumulation.
	rings := []ring.Semiring{ring.Counting{}, ring.MinPlus{}, ring.Real{}, ring.NewGFp(1009)}

	engines := []struct {
		name   string
		engine Engine
		opts   []lbm.Option
	}{
		{"map/seq", EngineMap, nil},
		{"map/par", EngineMap, []lbm.Option{lbm.WithWorkers(4), lbm.WithParBatch(1)}},
		{"compiled/seq", EngineCompiled, nil},
		{"compiled/par", EngineCompiled, []lbm.Option{lbm.WithWorkers(4), lbm.WithParBatch(1)}},
	}

	for _, pf := range preps {
		for _, r := range rings {
			for seed := int64(1); seed <= 3; seed++ {
				label := fmt.Sprintf("%s/%s/seed%d", pf.name, r.Name(), seed)
				p, err := pf.mk(r, seed)
				if err != nil {
					t.Fatalf("%s: prepare: %v", label, err)
				}
				a := matrix.Random(p.Inst.Ahat, r, 10*seed+1)
				b := matrix.Random(p.Inst.Bhat, r, 10*seed+2)
				var refX *matrix.Sparse
				var refStats lbm.Stats
				for i, e := range engines {
					p.Engine = e.engine
					x, res, err := p.MultiplyWith(a, b, e.opts...)
					if err != nil {
						t.Fatalf("%s: %s: %v", label, e.name, err)
					}
					if i == 0 {
						want := matrix.MulReference(a, b, p.Inst.Xhat)
						if !matrix.Equal(x, want) {
							t.Fatalf("%s: %s: wrong product", label, e.name)
						}
						refX, refStats = x, res.Stats
						continue
					}
					if !matrix.Equal(x, refX) {
						t.Errorf("%s: %s: output differs from %s", label, e.name, engines[0].name)
					}
					if !reflect.DeepEqual(res.Stats, refStats) {
						t.Errorf("%s: %s: stats differ from %s\n got %+v\nwant %+v",
							label, e.name, engines[0].name, res.Stats, refStats)
					}
				}
			}
		}
	}
}

// TestEnginesDifferentialDense drives the dense cube and Strassen routines
// directly through a theorem42 preparation with aggressive clustering (the
// blocks workload clusters fully), comparing profiles on top of outputs:
// both engines must replay the identical phase-span tree.
func TestEnginesDifferentialProfiles(t *testing.T) {
	for _, r := range []ring.Semiring{ring.Counting{}, ring.Real{}} {
		p, err := PrepareTheorem42(r, workload.Blocks(32, 4), Theorem42Opts{})
		if err != nil {
			t.Fatal(err)
		}
		a := matrix.Random(p.Inst.Ahat, r, 7)
		b := matrix.Random(p.Inst.Bhat, r, 8)
		var timelines []string
		for _, engine := range []Engine{EngineMap, EngineCompiled} {
			p.Engine = engine
			_, res, err := p.MultiplyWith(a, b, lbm.WithTrace())
			if err != nil {
				t.Fatal(err)
			}
			if res.Profile == nil {
				t.Fatalf("%s/%s: no profile", r.Name(), engine)
			}
			timelines = append(timelines, res.Profile.Summary())
		}
		if timelines[0] != timelines[1] {
			t.Errorf("%s: phase profiles differ\n--- map ---\n%s\n--- compiled ---\n%s",
				r.Name(), timelines[0], timelines[1])
		}
	}
}
