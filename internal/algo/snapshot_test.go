package algo

import (
	"bytes"
	"errors"
	"testing"

	"lbmm/internal/graph"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// prepareFor builds a Prepared for an instance with the named algorithm.
func prepareFor(t *testing.T, r ring.Semiring, inst *graph.Instance, name string) *Prepared {
	t.Helper()
	var p *Prepared
	var err error
	switch name {
	case "lemma31":
		p, err = PrepareLemma31(r, inst)
	case "theorem42":
		p, err = PrepareTheorem42(r, inst, Theorem42Opts{})
	default:
		t.Fatalf("unknown algorithm %q", name)
	}
	if err != nil {
		t.Fatalf("prepare %s: %v", name, err)
	}
	return p
}

// TestSnapshotRoundTripDifferential checks that a decoded snapshot computes
// exactly what the original prepared form computes — scalar and batched —
// across workloads, rings and both algorithms.
func TestSnapshotRoundTripDifferential(t *testing.T) {
	cases := []struct {
		name string
		inst *graph.Instance
	}{
		{"blocks", workload.Blocks(24, 4)},
		{"mixed", workload.Mixed(28, 4, 7)},
		{"us", workload.Instance(matrix.US, matrix.US, matrix.US, 24, 3, 11)},
		{"hotpair", workload.HotPair(16)},
	}
	rings := []ring.Semiring{ring.Boolean{}, ring.MinPlus{}, ring.NewGFp(257), ring.Real{}}
	for _, tc := range cases {
		for _, r := range rings {
			for _, alg := range []string{"lemma31", "theorem42"} {
				t.Run(tc.name+"/"+r.Name()+"/"+alg, func(t *testing.T) {
					p := prepareFor(t, r, tc.inst, alg)

					var buf bytes.Buffer
					if err := p.EncodeCompiled(&buf); err != nil {
						t.Fatalf("encode: %v", err)
					}
					q, err := DecodeCompiledPrepared(bytes.NewReader(buf.Bytes()))
					if err != nil {
						t.Fatalf("decode: %v", err)
					}
					if q.Name != p.Name {
						t.Fatalf("name %q != %q", q.Name, p.Name)
					}
					if q.CompiledBytes() != p.CompiledBytes() {
						t.Fatalf("compiled bytes %d != %d", q.CompiledBytes(), p.CompiledBytes())
					}

					a := matrix.Random(tc.inst.Ahat, r, 1)
					b := matrix.Random(tc.inst.Bhat, r, 2)
					want, wres, err := p.Multiply(a, b)
					if err != nil {
						t.Fatalf("original multiply: %v", err)
					}
					got, gres, err := q.Multiply(a, b)
					if err != nil {
						t.Fatalf("restored multiply: %v", err)
					}
					if !matrix.Equal(got, want) {
						t.Fatalf("restored product differs from original")
					}
					if gres.Rounds != wres.Rounds {
						t.Fatalf("restored rounds %d != original %d", gres.Rounds, wres.Rounds)
					}
					if err := Verify(got, a, b, tc.inst.Xhat); err != nil {
						t.Fatalf("restored product wrong: %v", err)
					}

					// Batched lanes through the restored form.
					as := []*matrix.Sparse{a, matrix.Random(tc.inst.Ahat, r, 3)}
					bs := []*matrix.Sparse{b, matrix.Random(tc.inst.Bhat, r, 4)}
					wouts, _, err := p.MultiplyBatch(as, bs)
					if err != nil {
						t.Fatalf("original batch: %v", err)
					}
					gouts, _, err := q.MultiplyBatch(as, bs)
					if err != nil {
						t.Fatalf("restored batch: %v", err)
					}
					for l := range wouts {
						if !matrix.Equal(gouts[l], wouts[l]) {
							t.Fatalf("restored batch lane %d differs", l)
						}
					}
				})
			}
		}
	}
}

// TestSnapshotHasNoMapForm checks that map-engine requests on a restored
// preparation fail with the typed ErrNoMapForm, scalar and batched.
func TestSnapshotHasNoMapForm(t *testing.T) {
	inst := workload.Blocks(16, 4)
	r := ring.Counting{}
	p := prepareFor(t, r, inst, "lemma31")
	var buf bytes.Buffer
	if err := p.EncodeCompiled(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	q, err := DecodeCompiledPrepared(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	if _, _, err := q.MultiplyOn(EngineMap, a, b); !errors.Is(err, ErrNoMapForm) {
		t.Fatalf("map multiply on restored form: err=%v, want ErrNoMapForm", err)
	}
	if _, _, err := q.MultiplyBatchOn(EngineMap, []*matrix.Sparse{a}, []*matrix.Sparse{b}); !errors.Is(err, ErrNoMapForm) {
		t.Fatalf("map batch on restored form: err=%v, want ErrNoMapForm", err)
	}
	// The compiled engine still works.
	if _, _, err := q.Multiply(a, b); err != nil {
		t.Fatalf("compiled multiply on restored form: %v", err)
	}
}

// TestSnapshotRejectsTampering checks the decoder's validation: flipped
// bytes either fail gob decoding or fail a structural check — they never
// produce a usable Prepared that silently computes garbage refs.
func TestSnapshotRejectsTampering(t *testing.T) {
	inst := workload.Blocks(16, 4)
	p := prepareFor(t, ring.Counting{}, inst, "lemma31")
	var buf bytes.Buffer
	if err := p.EncodeCompiled(&buf); err != nil {
		t.Fatalf("encode: %v", err)
	}
	raw := buf.Bytes()
	// Truncations must always fail.
	for _, n := range []int{0, 1, len(raw) / 2, len(raw) - 1} {
		if _, err := DecodeCompiledPrepared(bytes.NewReader(raw[:n])); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", n)
		}
	}
	// A GFp snapshot with a composite modulus must be rejected.
	pg := prepareFor(t, ring.NewGFp(257), inst, "lemma31")
	var gbuf bytes.Buffer
	if err := pg.EncodeCompiled(&gbuf); err != nil {
		t.Fatalf("encode gfp: %v", err)
	}
	q, err := DecodeCompiledPrepared(bytes.NewReader(gbuf.Bytes()))
	if err != nil {
		t.Fatalf("decode gfp: %v", err)
	}
	if f, ok := q.R.(ring.GFp); !ok || f.P != 257 {
		t.Fatalf("restored ring %#v, want GFp(257)", q.R)
	}
}
