// Package algo assembles the paper's end-to-end algorithms from the
// building blocks:
//
//   - TrivialSparse — the O(d²)-round baseline for uniformly sparse
//     instances ([13]'s starting point): every triangle is processed at the
//     computer that owns its output element, after fetching the inputs.
//   - BaselineNaiveVirtual — a reconstruction of the prior work's second
//     phase: the same virtualization as Lemma 3.1 but with naive input
//     routing (hot values re-sent once per consumer, no anchors, no
//     broadcast trees). Its sender contention is what costs the prior work
//     the ε/2 in the exponent.
//   - LemmaOnly — Lemma 3.1 applied to the whole triangle set with the
//     natural budget; this is Theorems 5.3 and 5.11 (the O(d² + log n)
//     algorithms for [US:AS:GM] and [BD:AS:AS]).
//   - Theorem42 — the two-phase O(d^1.867)/O(d^1.832) algorithm: clustered
//     dense batches (phase 1) until the residual is small, then Lemma 3.1
//     (phase 2).
package algo

import (
	"fmt"
	"math"
	"sort"

	"lbmm/internal/cluster"
	"lbmm/internal/fewtri"
	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/params"
	"lbmm/internal/ring"
	"lbmm/internal/routing"
	"lbmm/internal/vnet"
)

// Result summarizes one algorithm execution.
type Result struct {
	Name string
	// Engine names the execution engine that produced the result ("map" or
	// "compiled"); empty for algorithms without a prepared form.
	Engine string
	// Rounds is the total number of communication rounds.
	Rounds int
	// Phase1Rounds / Phase2Rounds split Theorem 4.2's budget (zero for
	// single-phase algorithms).
	Phase1Rounds, Phase2Rounds int
	// Batches is the number of clusterings L used by phase 1.
	Batches int
	// Cluster reports how the clustered batches were executed.
	Cluster cluster.ExecStats
	// Kappa is the Lemma 3.1 budget used by phase 2 (or the whole run).
	Kappa int
	// Triangles is |T̂| and Residual the count left to phase 2.
	Triangles, Residual int
	// Stats is the machine's full measurement.
	Stats lbm.Stats
	// Timeline is the phase-annotated round profile, present when the
	// machine ran with tracing enabled.
	Timeline string
	// Profile is the full structured observability profile (phase spans,
	// per-node loads, counters), present when the machine ran with a
	// Profile collector (lbm.WithTrace or lbm.WithCollector).
	Profile *obsv.Profile
	// SupportWords / DisseminationRounds report the unsupported-mode
	// structure-dissemination phase (zero in the supported model).
	SupportWords        int
	DisseminationRounds int
	// Lanes is the number of value assignments a batched multiply carried
	// (zero for a scalar Multiply). Stats/Rounds are per-batch, not
	// per-lane: the whole batch paid one instruction walk.
	Lanes int
}

// Algorithm solves a loaded instance on a machine. Inputs must be loaded
// per the layout and outputs zeroed; on return every output of interest is
// at its owner.
type Algorithm func(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error)

// Solve is the common harness: it builds machine + layout, loads random or
// provided values, runs the algorithm, verifies the product against the
// reference multiplier, and returns the result.
func Solve(r ring.Semiring, inst *graph.Instance, a, b *matrix.Sparse, alg Algorithm, opts ...lbm.Option) (*Result, *matrix.Sparse, error) {
	m := lbm.New(inst.N, r, opts...)
	l := ChooseLayout(inst)
	lbm.LoadInputs(m, l, a, b)
	lbm.ZeroOutputs(m, l, inst.Xhat)
	res, err := alg(m, l, inst)
	if err != nil {
		return nil, nil, err
	}
	got, err := lbm.CollectX(m, l, inst.Xhat)
	if err != nil {
		return nil, nil, err
	}
	res.Stats = m.Stats()
	res.Rounds = res.Stats.Rounds
	res.Profile = m.Profile()
	if tr := m.Trace(); tr != nil {
		res.Timeline = tr.Timeline()
	}
	return res, got, nil
}

// ChooseLayout picks the canonical input/output distribution for an
// instance: the paper's row layout when every computer would hold O(d)
// elements of each matrix under it, and the balanced ⌈nnz/n⌉-per-computer
// layout otherwise (§2: sparse matrices come distributed d elements per
// computer; the algorithms may permute at O(d) extra cost, which the
// balanced layout realizes for free at load time).
func ChooseLayout(inst *graph.Instance) *lbm.Layout {
	limit := inst.D
	if limit < 1 {
		limit = 1
	}
	rowOK := inst.Ahat.MaxRowNNZ() <= limit &&
		inst.Bhat.MaxRowNNZ() <= limit &&
		inst.Xhat.MaxRowNNZ() <= limit
	if rowOK {
		return lbm.RowLayout(inst.Ahat, inst.Bhat, inst.Xhat)
	}
	return lbm.BalancedLayout(inst.Ahat, inst.Bhat, inst.Xhat)
}

// Verify checks an algorithm's output against the sequential reference.
func Verify(got, a, b *matrix.Sparse, xhat *matrix.Support) error {
	want := matrix.MulReference(a, b, xhat)
	if !matrix.Equal(got, want) {
		return fmt.Errorf("algo: product mismatch")
	}
	return nil
}

// ---------------------------------------------------------------------------
// TrivialSparse

// TrivialSparse processes every triangle at the computer owning its output
// element: inputs are fetched by one h-relation whose degree is the
// per-node triangle count — O(d²) rounds on uniformly sparse instances.
func TrivialSparse(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error) {
	tris := inst.Triangles()
	res := &Result{Name: "trivial-sparse", Triangles: len(tris)}

	type fetch struct {
		to  lbm.NodeID
		key lbm.Key
	}
	seen := map[fetch]bool{}
	var msgs []routing.Msg
	var clean []fetch
	add := func(from, to lbm.NodeID, key lbm.Key) {
		f := fetch{to, key}
		if seen[f] {
			return
		}
		seen[f] = true
		msgs = append(msgs, routing.Msg{From: from, To: to, Src: key, Dst: key, Op: lbm.OpSet})
		if from != to {
			clean = append(clean, f)
		}
	}
	for _, t := range tris {
		xo := l.OwnerX(t.I, t.K)
		add(l.OwnerA(t.I, t.J), xo, lbm.AKey(t.I, t.J))
		add(l.OwnerB(t.J, t.K), xo, lbm.BKey(t.J, t.K))
	}
	if err := m.Run(routing.Schedule(msgs, routing.Auto)); err != nil {
		return nil, fmt.Errorf("trivial-sparse: %w", err)
	}
	for _, t := range tris {
		xo := l.OwnerX(t.I, t.K)
		if !m.Owns(xo) {
			continue
		}
		av := m.MustGet(xo, lbm.AKey(t.I, t.J))
		bv := m.MustGet(xo, lbm.BKey(t.J, t.K))
		m.Acc(xo, lbm.XKey(t.I, t.K), m.R.Mul(av, bv))
	}
	for _, f := range clean {
		m.Del(f.to, f.key)
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// BaselineNaiveVirtual

// BaselineNaiveVirtual reconstructs the prior work's unbalanced-instance
// handling: the same I-side virtualization as Lemma 3.1, but inputs travel
// straight from their owners to every virtual computer that needs them (a
// hot element is re-sent once per consumer) and the per-virtual-node output
// partials travel straight to the output owners. On skewed instances the
// input owners and output owners become serial bottlenecks — the effect
// the anchor/broadcast-tree routing of Lemma 3.1 removes.
func BaselineNaiveVirtual(kappa int) Algorithm {
	return func(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error) {
		tris := inst.Triangles()
		k, err := runNaiveVirtual(m, l, inst.N, tris, kappa)
		if err != nil {
			return nil, err
		}
		return &Result{Name: "baseline-naive", Triangles: len(tris), Kappa: k}, nil
	}
}

// runNaiveVirtual processes an explicit triangle set with the naive
// virtualized router and returns the κ used.
func runNaiveVirtual(m *lbm.Machine, l *lbm.Layout, n int, tris []graph.Triangle, kappa int) (int, error) {
	k := kappa
	if k <= 0 {
		k = (3*len(tris) + n - 1) / n
		if k == 0 {
			k = 1
		}
	}
	if len(tris) == 0 {
		return k, nil
	}
	order := append([]graph.Triangle(nil), tris...)
	graph.SortTriangles(order)
	// Virtualize exactly like Lemma 3.1.
	vnodeOf := make([]int32, len(order))
	var hosts []lbm.NodeID
	count := 0
	var curI int32 = -1
	for idx, t := range order {
		if t.I != curI || count == k {
			hosts = append(hosts, lbm.NodeID(len(hosts)%n))
			curI = t.I
			count = 0
		}
		vnodeOf[idx] = int32(len(hosts) - 1)
		count++
	}

	// Naive input routing: one message per (vnode, input element).
	type need struct {
		vnode int32
		key   lbm.Key
	}
	seen := map[need]bool{}
	var msgs []routing.Msg
	var clean []fetchKey
	addNeed := func(v int32, from lbm.NodeID, key lbm.Key) {
		nd := need{v, key}
		if seen[nd] {
			return
		}
		seen[nd] = true
		msgs = append(msgs, routing.Msg{From: from, To: hosts[v], Src: key, Dst: key, Op: lbm.OpSet})
		if from != hosts[v] {
			clean = append(clean, fetchKey{hosts[v], key})
		}
	}
	for idx, t := range order {
		addNeed(vnodeOf[idx], l.OwnerA(t.I, t.J), lbm.AKey(t.I, t.J))
		addNeed(vnodeOf[idx], l.OwnerB(t.J, t.K), lbm.BKey(t.J, t.K))
	}
	if err := m.Run(routing.Schedule(msgs, routing.Auto)); err != nil {
		return k, fmt.Errorf("baseline input: %w", err)
	}

	// Local products, pre-aggregated per (vnode, output position).
	type part struct {
		vnode int32
		i, kk int32
	}
	parts := map[part]bool{}
	for idx, t := range order {
		v := vnodeOf[idx]
		// parts shapes the output routing plan, so every participant tracks
		// it; only the host's owner does the arithmetic.
		if m.Owns(hosts[v]) {
			av := m.MustGet(hosts[v], lbm.AKey(t.I, t.J))
			bv := m.MustGet(hosts[v], lbm.BKey(t.J, t.K))
			m.Acc(hosts[v], lbm.PKey(t.I, t.K, v), m.R.Mul(av, bv))
		}
		parts[part{v, t.I, t.K}] = true
	}

	// Naive output routing: each partial straight to the owner.
	var outs []routing.Msg
	for p := range parts {
		outs = append(outs, routing.Msg{
			From: hosts[p.vnode], To: l.OwnerX(p.i, p.kk),
			Src: lbm.PKey(p.i, p.kk, p.vnode), Dst: lbm.XKey(p.i, p.kk), Op: lbm.OpAcc,
		})
		clean = append(clean, fetchKey{hosts[p.vnode], lbm.PKey(p.i, p.kk, p.vnode)})
	}
	sortMsgs(outs)
	if err := m.Run(routing.Schedule(outs, routing.Auto)); err != nil {
		return k, fmt.Errorf("baseline output: %w", err)
	}
	for _, f := range clean {
		m.Del(f.host, f.key)
	}
	return k, nil
}

type fetchKey struct {
	host lbm.NodeID
	key  lbm.Key
}

// sortMsgs puts map-derived message sets into a deterministic order.
func sortMsgs(ms []routing.Msg) {
	lessKey := func(a, b lbm.Key) bool {
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.I != b.I {
			return a.I < b.I
		}
		if a.J != b.J {
			return a.J < b.J
		}
		return a.Seq < b.Seq
	}
	sort.Slice(ms, func(x, y int) bool {
		a, b := ms[x], ms[y]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		if a.Src != b.Src {
			return lessKey(a.Src, b.Src)
		}
		return lessKey(a.Dst, b.Dst)
	})
}

// ---------------------------------------------------------------------------
// LemmaOnly (Theorems 5.3 and 5.11)

// LemmaOnly processes the whole triangle set with Lemma 3.1 at the natural
// budget κ = ⌈3|T̂|/n⌉. For [US:AS:GM] instances |T̂| ≤ d²n (Lemma 5.1) and
// for [BD:AS:AS] instances |T̂| ≤ 2d²n (Lemma 5.9), so this runs in
// O(d² + log n) rounds — Theorems 5.3 and 5.11.
func LemmaOnly(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error) {
	tris := inst.Triangles()
	job, err := fewtri.Process(m, inst.N, l, tris, 0)
	if err != nil {
		return nil, err
	}
	return &Result{Name: "lemma31", Triangles: len(tris), Kappa: job.Kappa}, nil
}

// LemmaOnlyKappa is LemmaOnly with an explicit κ budget (the Lemma 3.1
// precondition |T̂| ≤ κn must hold).
func LemmaOnlyKappa(kappa int) Algorithm {
	return func(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error) {
		tris := inst.Triangles()
		job, err := fewtri.Process(m, inst.N, l, tris, kappa)
		if err != nil {
			return nil, err
		}
		return &Result{Name: "lemma31", Triangles: len(tris), Kappa: job.Kappa}, nil
	}
}

// ---------------------------------------------------------------------------
// Theorem 4.2

// Theorem42Opts tunes the two-phase driver.
type Theorem42Opts struct {
	// Alpha is the target exponent: the driver aims phase 2 at
	// κ = d^Alpha. Defaults to 1.867 for semirings and 1.832 for fields —
	// the paper's headline exponents.
	Alpha float64
	// MinGainDiv divides d³ for the cluster acceptance threshold
	// (Lemma 4.7's /24 constant family). Default 48.
	MinGainDiv int
	// NaivePhase2 replaces Lemma 3.1 by the prior work's naive-routing
	// phase 2 — the full SPAA 2022 algorithm reconstruction. With it the
	// driver aims at the prior exponents (1.927/1.907) instead.
	NaivePhase2 bool
	// FlatSchedule disables the Lemma 4.13 step schedule and uses a single
	// partition pass with the final κ target (the pre-Table-3/4 driver;
	// kept for ablation).
	FlatSchedule bool
}

// Theorem42 returns the two-phase algorithm of §4: clustered dense batches
// until the residual triangle count is at most d^α·n, then Lemma 3.1 on the
// residual. Over a field the clustered batches use distributed Strassen
// where exact.
func Theorem42(opts Theorem42Opts) Algorithm {
	return func(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error) {
		alpha := opts.Alpha
		if alpha == 0 {
			_, isField := ring.AsField(m.R)
			switch {
			case opts.NaivePhase2 && isField:
				alpha = 1.907
			case opts.NaivePhase2:
				alpha = 1.927
			case isField:
				alpha = 1.832
			default:
				alpha = 1.867
			}
		}
		gainDiv := opts.MinGainDiv
		if gainDiv <= 0 {
			gainDiv = 48
		}
		d := inst.D
		tris := inst.Triangles()
		res := &Result{Name: "theorem42", Triangles: len(tris)}

		kappaTarget := int(math.Ceil(math.Pow(float64(d), alpha)))
		if kappaTarget < 1 {
			kappaTarget = 1
		}

		// Phase 1 (Lemma 4.13's schedule): one Lemma 4.11 application per
		// step of the parameter table, each with its own cluster-density
		// threshold d^{3-4ε}/gainDiv and residual target d^β·n. The flat
		// variant collapses the schedule into a single pass at the final
		// target (ablation of the multi-step optimization).
		type step struct {
			minGain, targetResidual int
		}
		var steps []step
		if opts.FlatSchedule {
			mg := int(math.Pow(float64(d), 3)) / gainDiv
			steps = []step{{minGain: mg, targetResidual: kappaTarget * inst.N}}
		} else {
			lambda := params.LambdaSemiring
			if _, isField := ring.AsField(m.R); isField {
				lambda = params.LambdaStrassen
			}
			for _, st := range params.Schedule(lambda, 1e-5, alpha) {
				// Lemma 4.7's density threshold d^{3-4ε}/24 and
				// Lemma 4.11's residual target d^β·n for this step.
				steps = append(steps, step{
					minGain:        int(math.Pow(float64(d), 3-4*st.Epsilon) / 24),
					targetResidual: int(math.Pow(float64(d), st.Beta) * float64(inst.N)),
				})
			}
		}

		net := vnet.Roles(inst.N)
		before := m.Rounds()
		m.Mark("phase1:clusters")
		m.BeginPhase("phase1")
		m.Counter("kappa_target", float64(kappaTarget))
		residual := tris
		for _, st := range steps {
			if len(residual) <= st.targetResidual {
				continue
			}
			mg := st.minGain
			if mg < 2 {
				mg = 2
			}
			batches, rest := cluster.Partition(residual, inst.N, d, cluster.PartitionOpts{
				MinGain:        mg,
				TargetResidual: st.targetResidual,
			})
			if len(batches) == 0 {
				break
			}
			res.Batches += len(batches)
			cs, err := cluster.RunBatches(m, net, inst.N, l, batches)
			res.Cluster.CubeClusters += cs.CubeClusters
			res.Cluster.StrassenClusters += cs.StrassenClusters
			if err != nil {
				m.EndPhase()
				return nil, fmt.Errorf("theorem42 phase 1: %w", err)
			}
			residual = rest
		}
		res.Residual = len(residual)
		res.Phase1Rounds = m.Rounds() - before
		m.Counter("batches", float64(res.Batches))
		m.Counter("residual", float64(res.Residual))
		m.EndPhase()

		// Phase 2 on the residual: Lemma 3.1, or the naive router for the
		// prior-work reconstruction.
		before = m.Rounds()
		m.Mark("phase2:residual")
		m.BeginPhase("phase2")
		m.Counter("triangles", float64(len(residual)))
		if opts.NaivePhase2 {
			res.Name = "spaa22-reconstruction"
			kappa, err := runNaiveVirtual(m, l, inst.N, residual, 0)
			if err != nil {
				m.EndPhase()
				return nil, fmt.Errorf("spaa22 phase 2: %w", err)
			}
			res.Kappa = kappa
		} else {
			job, err := fewtri.Process(m, inst.N, l, residual, 0)
			if err != nil {
				m.EndPhase()
				return nil, fmt.Errorf("theorem42 phase 2: %w", err)
			}
			res.Kappa = job.Kappa
		}
		res.Phase2Rounds = m.Rounds() - before
		m.EndPhase()
		return res, nil
	}
}
