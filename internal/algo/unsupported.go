package algo

import (
	"fmt"

	"lbmm/internal/graph"
	"lbmm/internal/lbm"
	"lbmm/internal/routing"
)

// This file implements the trivial *unsupported*-model protocol, the
// baseline for the paper's §1.6 open direction ("eliminating the knowledge
// of the support is a major challenge for future work"). When the sparsity
// structure is NOT known in advance, the computers first disseminate it:
// every support entry (one O(log n)-bit word) is gathered to computer 0 and
// pipeline-broadcast to everyone, after which all computers know the full
// structure, can locally derive the same deterministic plan, and the
// supported algorithm runs unchanged. The dissemination costs
// Θ(nnz + log n) rounds — it dominates every supported algorithm in this
// repository, which is exactly why the paper's supported-model results are
// interesting.

// kindSupport holds disseminated support words.
const kindSupport = lbm.KindUser + 120

// encodeEntry packs (matrix id, i, j) into one ring value word. Exact for
// n < 2^24 (3·n² < 2^53).
func encodeEntry(which, i, j int, n int) float64 {
	return float64(which)*float64(n)*float64(n) + float64(i)*float64(n) + float64(j)
}

func decodeEntry(v float64, n int) (which, i, j int) {
	x := int64(v)
	n64 := int64(n)
	return int(x / (n64 * n64)), int(x / n64 % n64), int(x % n64)
}

// DisseminateSupport runs the support-dissemination protocol and returns
// the number of structure words moved. Afterwards every computer holds all
// support entries under Key{kindSupport, t, 0, 0} for t = 0..words-1.
func DisseminateSupport(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (int, error) {
	m.BeginPhase("unsupported")
	defer m.EndPhase()
	m.Mark("unsupported:gather")
	m.BeginPhase("gather")
	// Each owner sends the code word of each entry it holds to computer 0.
	type entry struct {
		owner lbm.NodeID
		code  float64
	}
	var entries []entry
	for i, row := range inst.Ahat.Rows {
		for _, j := range row {
			entries = append(entries, entry{l.OwnerA(int32(i), j), encodeEntry(0, i, int(j), inst.N)})
		}
	}
	for j, row := range inst.Bhat.Rows {
		for _, k := range row {
			entries = append(entries, entry{l.OwnerB(int32(j), k), encodeEntry(1, j, int(k), inst.N)})
		}
	}
	for i, row := range inst.Xhat.Rows {
		for _, k := range row {
			entries = append(entries, entry{l.OwnerX(int32(i), k), encodeEntry(2, i, int(k), inst.N)})
		}
	}

	// Stage the code words locally at their owners (free: the owner knows
	// its own entries), then gather.
	perOwner := map[lbm.NodeID]int32{}
	var msgs []routing.Msg
	for t, e := range entries {
		src := lbm.Key{Kind: kindSupport, I: -1 - perOwner[e.owner], J: int32(e.owner), Seq: 0}
		perOwner[e.owner]++
		m.Put(e.owner, src, e.code)
		dst := lbm.Key{Kind: kindSupport, I: int32(t), J: 0, Seq: 0}
		msgs = append(msgs, routing.Msg{From: e.owner, To: 0, Src: src, Dst: dst, Op: lbm.OpSet})
	}
	err := m.Run(routing.Schedule(msgs, routing.Auto))
	m.EndPhase()
	if err != nil {
		return 0, fmt.Errorf("unsupported gather: %w", err)
	}

	// Pipeline-broadcast the words to everyone.
	m.Mark("unsupported:broadcast")
	m.BeginPhase("broadcast")
	m.Counter("words", float64(len(entries)))
	nodes := make([]lbm.NodeID, m.N)
	for i := range nodes {
		nodes[i] = lbm.NodeID(i)
	}
	plan := routing.PipelinedBroadcast(nodes, len(entries), func(t int) lbm.Key {
		return lbm.Key{Kind: kindSupport, I: int32(t), J: 0, Seq: 0}
	})
	err = m.Run(plan)
	m.EndPhase()
	if err != nil {
		return 0, fmt.Errorf("unsupported broadcast: %w", err)
	}
	return len(entries), nil
}

// VerifyDissemination decodes the words held by a computer back into the
// three supports and checks them against the instance (test hook: proves
// the information really arrived, not just messages).
func VerifyDissemination(m *lbm.Machine, node lbm.NodeID, inst *graph.Instance) error {
	words := inst.Ahat.NNZ + inst.Bhat.NNZ + inst.Xhat.NNZ
	seen := [3]map[[2]int]bool{{}, {}, {}}
	for t := 0; t < words; t++ {
		v, ok := m.Get(node, lbm.Key{Kind: kindSupport, I: int32(t), J: 0, Seq: 0})
		if !ok {
			return fmt.Errorf("computer %d missing support word %d", node, t)
		}
		which, i, j := decodeEntry(v, inst.N)
		if which < 0 || which > 2 {
			return fmt.Errorf("computer %d: bad word %v", node, v)
		}
		seen[which][[2]int{i, j}] = true
	}
	check := func(which int, rows [][]int32) error {
		for i, row := range rows {
			for _, j := range row {
				if !seen[which][[2]int{i, int(j)}] {
					return fmt.Errorf("computer %d missing entry %d:(%d,%d)", node, which, i, j)
				}
			}
		}
		return nil
	}
	if err := check(0, inst.Ahat.Rows); err != nil {
		return err
	}
	if err := check(1, inst.Bhat.Rows); err != nil {
		return err
	}
	return check(2, inst.Xhat.Rows)
}

// Unsupported wraps a supported algorithm with the run-time support
// dissemination phase. The returned Result's SupportWords field reports the
// dissemination volume; its rounds are included in the total.
func Unsupported(alg Algorithm) Algorithm {
	return func(m *lbm.Machine, l *lbm.Layout, inst *graph.Instance) (*Result, error) {
		words, err := DisseminateSupport(m, l, inst)
		if err != nil {
			return nil, err
		}
		disseminationRounds := m.Rounds()
		res, err := alg(m, l, inst)
		if err != nil {
			return nil, err
		}
		res.Name = "unsupported+" + res.Name
		res.SupportWords = words
		res.DisseminationRounds = disseminationRounds
		return res, nil
	}
}
