package params_test

import (
	"fmt"

	"lbmm/internal/params"
)

// ExampleFinalExponent derives the paper's headline exponents from the
// fixpoint formula α* = (8+λ)/5.
func ExampleFinalExponent() {
	fmt.Printf("semiring: %.4f\n", params.FinalExponent(params.LambdaSemiring))
	fmt.Printf("field:    %.4f\n", params.FinalExponent(params.LambdaField))
	// Output:
	// semiring: 1.8667
	// field:    1.8313
}

// ExampleSchedule regenerates the first row of the paper's Table 3.
func ExampleSchedule() {
	steps := params.Schedule(params.LambdaSemiring, 1e-5, 1.867)
	s := steps[0]
	fmt.Printf("ε=%.5f β=%.5f\n", s.Epsilon, s.Beta)
	fmt.Println("steps:", len(steps))
	// Output:
	// ε=0.10672 β=1.89328
	// steps: 4
}
