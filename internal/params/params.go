// Package params reproduces the paper's exponent optimization: the step
// tables (Tables 3 and 4) that drive the two-phase algorithm of Theorem 4.2
// and the resulting headline exponents O(d^1.867) (semirings) and
// O(d^1.832) (fields).
//
// The recurrence (proof of Lemma 4.13): one application of Lemma 4.11 with
// parameters (δ, γ, ε) processes clustered batches in O(d^α) rounds where
//
//	α = 5ε − γ + 4δ + λ,
//
// λ being the exponent of the dense batch routine (Lemma 2.1: λ = 4/3 for
// semirings, λ = 1.156671 for fields with ω < 2.371552, λ = 2−2/log₂7 for
// our executable Strassen), and leaves a residual of ≤ d^β·n triangles with
// β = 2 − ε. The next step re-enters with γ' = 2 − β = ε. Choosing each ε
// maximal subject to α ≤ α* and iterating to the fixpoint β = α* yields
//
//	α* = (8 + λ)/5,
//
// i.e. 28/15 ≈ 1.8667 for semirings and ≈ 1.83134 for fields — the paper
// rounds these up to the printed 1.867 and 1.832 targets. Lemma 3.1 then
// finishes the residual in O(d^β + d + log d²) = O(d^α*) rounds.
package params

import (
	"fmt"
	"math"
)

// Step is one row of a parameter table.
type Step struct {
	Delta, Gamma, Epsilon, Alpha, Beta float64
}

// LambdaSemiring is the dense semiring exponent of Lemma 2.1 ([3]).
const LambdaSemiring = 4.0 / 3.0

// LambdaField is the dense field exponent of Lemma 2.1 with the ω bound of
// [23], as printed in the paper.
const LambdaField = 1.156671

// LambdaStrassen is the dense field exponent achieved by the *executable*
// distributed Strassen in this repository: 2 − 2/log₂7.
var LambdaStrassen = 2 - 2/math.Log2(7)

// FinalExponent returns the fixpoint exponent (8+λ)/5 of the two-phase
// optimization for a dense-batch exponent λ.
func FinalExponent(lambda float64) float64 { return (8 + lambda) / 5 }

// roundDown5 truncates to 5 decimals (the paper's printed precision).
func roundDown5(x float64) float64 { return math.Floor(x*1e5+1e-9) / 1e5 }

// round5 rounds to 5 decimals.
func round5(x float64) float64 { return math.Round(x*1e5) / 1e5 }

// Schedule generates the step table for dense exponent lambda, slack delta
// and target exponent target (pass 0 to use the printed-table convention:
// FinalExponent rounded up to 3 decimals). Each step uses the maximal ε
// (truncated to 5 decimals) with α ≤ target, matching the paper's tables.
func Schedule(lambda, delta, target float64) []Step {
	if target == 0 {
		target = math.Ceil(FinalExponent(lambda)*1e3) / 1e3
	}
	var steps []Step
	gamma := 0.0
	prevEps := -1.0
	for iter := 0; iter < 100; iter++ {
		eps := roundDown5((target + gamma - 4*delta - lambda) / 5)
		alpha := round5(5*eps - gamma + 4*delta + lambda)
		beta := round5(2 - eps)
		steps = append(steps, Step{Delta: delta, Gamma: gamma, Epsilon: eps, Alpha: alpha, Beta: beta})
		// Converged when the residual exponent meets the target, or when ε
		// stops improving at the printed precision (the fixpoint itself).
		if beta <= target || eps-prevEps < 1e-9 {
			break
		}
		prevEps = eps
		gamma = eps
	}
	return steps
}

// TableSemiring reproduces Table 3 (λ = 4/3, δ = 1e-5, target 1.867).
func TableSemiring() []Step { return Schedule(LambdaSemiring, 1e-5, 1.867) }

// TableField reproduces Table 4 (λ = 1.156671, δ = 1e-5, target 1.832).
func TableField() []Step { return Schedule(LambdaField, 1e-5, 1.832) }

// TableStrassen is the executable-field variant: the same optimization run
// at our distributed Strassen's λ = 2−2/log₂7 ≈ 1.2876, giving the target
// this repository's field pipeline can actually realize end to end.
func TableStrassen() []Step { return Schedule(LambdaStrassen, 1e-5, 0) }

// Format renders a step table like the paper's Tables 3/4.
func Format(steps []Step) string {
	out := "Step      δ        γ        ε        α        β\n"
	for i, s := range steps {
		out += fmt.Sprintf("%4d  %.5f  %.5f  %.5f  %.5f  %.5f\n",
			i+1, s.Delta, s.Gamma, s.Epsilon, s.Alpha, s.Beta)
	}
	return out
}

// Milestone is one point of the §1.2 progress figure.
type Milestone struct {
	Label    string
	Semiring float64
	Field    float64
}

// Milestones returns the exponent ladder of the §1.2 figure: the trivial
// bound, the prior work [13], this paper, and the conditional lower-bound
// milestones implied by dense matrix multiplication.
func Milestones() []Milestone {
	return []Milestone{
		{Label: "trivial", Semiring: 2, Field: 2},
		{Label: "Gupta et al. (SPAA 2022)", Semiring: 1.927, Field: 1.907},
		{Label: "this repo (executable field MM)", Semiring: 1.867, Field: math.Ceil(FinalExponent(LambdaStrassen)*1e3) / 1e3},
		{Label: "this work (Thm 4.2)", Semiring: 1.867, Field: 1.832},
		{Label: "milestone (d=n collapse)", Semiring: 4.0 / 3.0, Field: 1.157},
	}
}
