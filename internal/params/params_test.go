package params

import (
	"math"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// TestTable3Reproduced checks the semiring table against the paper's
// printed Table 3, digit for digit on γ, ε, β and within 2e-5 on α (the
// paper's α column shows independent rounding).
func TestTable3Reproduced(t *testing.T) {
	want := []Step{
		{0.00001, 0.00000, 0.10672, 1.86698, 1.89328},
		{0.00001, 0.10672, 0.12806, 1.86696, 1.87194},
		{0.00001, 0.12806, 0.13233, 1.86697, 1.86767},
		{0.00001, 0.13233, 0.13319, 1.86700, 1.86681},
	}
	got := TableSemiring()
	if len(got) != len(want) {
		t.Fatalf("table 3 has %d steps, want %d:\n%s", len(got), len(want), Format(got))
	}
	for i := range want {
		if !approx(got[i].Gamma, want[i].Gamma, 1e-9) ||
			!approx(got[i].Epsilon, want[i].Epsilon, 1e-5+1e-9) ||
			!approx(got[i].Beta, want[i].Beta, 1e-5+1e-9) ||
			!approx(got[i].Alpha, want[i].Alpha, 2e-5) {
			t.Errorf("step %d: got %+v want %+v", i+1, got[i], want[i])
		}
	}
}

// TestTable4Reproduced checks the field table against the paper's Table 4.
func TestTable4Reproduced(t *testing.T) {
	want := []Step{
		{0.00001, 0.00000, 0.13505, 1.83197, 1.86495},
		{0.00001, 0.13505, 0.16206, 1.83197, 1.83794},
		{0.00001, 0.16206, 0.16746, 1.83196, 1.83254},
		{0.00001, 0.16746, 0.16854, 1.83196, 1.83146},
	}
	got := TableField()
	if len(got) != len(want) {
		t.Fatalf("table 4 has %d steps, want %d:\n%s", len(got), len(want), Format(got))
	}
	for i := range want {
		if !approx(got[i].Gamma, want[i].Gamma, 1e-9) ||
			!approx(got[i].Epsilon, want[i].Epsilon, 1e-5+1e-9) ||
			!approx(got[i].Beta, want[i].Beta, 1e-5+1e-9) ||
			!approx(got[i].Alpha, want[i].Alpha, 2e-5) {
			t.Errorf("step %d: got %+v want %+v", i+1, got[i], want[i])
		}
	}
}

func TestFinalExponents(t *testing.T) {
	// (8+4/3)/5 = 28/15 rounds up to the paper's 1.867.
	if got := FinalExponent(LambdaSemiring); !approx(got, 28.0/15.0, 1e-12) {
		t.Errorf("semiring fixpoint = %v", got)
	}
	if math.Ceil(FinalExponent(LambdaSemiring)*1e3)/1e3 != 1.867 {
		t.Error("semiring target is not 1.867")
	}
	// (8+1.156671)/5 = 1.8313342 rounds up to 1.832.
	if math.Ceil(FinalExponent(LambdaField)*1e3)/1e3 != 1.832 {
		t.Error("field target is not 1.832")
	}
	// Strassen variant lands strictly between the two.
	fs := FinalExponent(LambdaStrassen)
	if !(FinalExponent(LambdaField) < fs && fs < FinalExponent(LambdaSemiring)) {
		t.Errorf("strassen fixpoint %v not between field and semiring", fs)
	}
}

func TestScheduleConvergesAndMonotone(t *testing.T) {
	for _, lambda := range []float64{LambdaSemiring, LambdaField, LambdaStrassen, 1.0, 1.3} {
		steps := Schedule(lambda, 1e-5, 0)
		if len(steps) == 0 || len(steps) > 50 {
			t.Fatalf("λ=%v: %d steps", lambda, len(steps))
		}
		target := math.Ceil(FinalExponent(lambda)*1e3) / 1e3
		for i, s := range steps {
			if s.Alpha > target+1e-4 {
				t.Errorf("λ=%v step %d: α=%v exceeds target %v", lambda, i, s.Alpha, target)
			}
			if i > 0 {
				if s.Epsilon < steps[i-1].Epsilon {
					t.Errorf("λ=%v: ε not monotone", lambda)
				}
				if s.Beta > steps[i-1].Beta {
					t.Errorf("λ=%v: β not decreasing", lambda)
				}
				if !approx(s.Gamma, steps[i-1].Epsilon, 1e-9) {
					t.Errorf("λ=%v: γ_t != ε_{t-1}", lambda)
				}
			}
		}
		last := steps[len(steps)-1]
		// Converged to the target, or stalled exactly at the fixpoint (the
		// λ=1.0 boundary case, where the target equals the fixpoint and the
		// truncated ε can approach but never pass it).
		if last.Beta > target+1e-4 {
			t.Errorf("λ=%v: schedule did not converge (β=%v > %v)", lambda, last.Beta, target)
		}
	}
}

func TestMilestonesShape(t *testing.T) {
	ms := Milestones()
	if len(ms) < 4 {
		t.Fatal("too few milestones")
	}
	// Strictly improving ladder for both columns until the conditional
	// milestone.
	for i := 1; i < len(ms); i++ {
		if ms[i].Semiring > ms[i-1].Semiring || ms[i].Field > ms[i-1].Field {
			t.Errorf("milestone %q does not improve", ms[i].Label)
		}
	}
	if ms[0].Semiring != 2 || ms[len(ms)-1].Field != 1.157 {
		t.Error("endpoints wrong")
	}
}

func TestFormat(t *testing.T) {
	out := Format(TableSemiring())
	if len(out) == 0 || out[0] != 'S' {
		t.Error("format output malformed")
	}
}
