package ring

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// drawing draws a "natural" element of r: Zero, One, or random, so identity
// and annihilation cases get exercised by the property tests.
func draw(r Semiring, rng *rand.Rand) Value {
	switch rng.Intn(4) {
	case 0:
		return r.Zero()
	case 1:
		return r.One()
	default:
		return r.Rand(rng)
	}
}

func forAllTriples(t *testing.T, r Semiring, prop func(a, b, c Value) bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		a, b, c := draw(r, rng), draw(r, rng), draw(r, rng)
		return prop(a, b, c)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Errorf("%s: %v", r.Name(), err)
	}
}

func TestSemiringAxioms(t *testing.T) {
	for _, r := range All() {
		r := r
		t.Run(r.Name(), func(t *testing.T) {
			forAllTriples(t, r, func(a, b, c Value) bool {
				// Add associative + commutative.
				if !r.Eq(r.Add(r.Add(a, b), c), r.Add(a, r.Add(b, c))) {
					return false
				}
				return r.Eq(r.Add(a, b), r.Add(b, a))
			})
			forAllTriples(t, r, func(a, b, c Value) bool {
				// Mul associative.
				return r.Eq(r.Mul(r.Mul(a, b), c), r.Mul(a, r.Mul(b, c)))
			})
			forAllTriples(t, r, func(a, b, c Value) bool {
				// Distributivity a(b+c) = ab + ac.
				return r.Eq(r.Mul(a, r.Add(b, c)), r.Add(r.Mul(a, b), r.Mul(a, c)))
			})
			forAllTriples(t, r, func(a, _, _ Value) bool {
				// Identities and annihilator.
				if !r.Eq(r.Add(a, r.Zero()), a) {
					return false
				}
				if !r.Eq(r.Mul(a, r.One()), a) {
					return false
				}
				if !r.Eq(r.Mul(r.One(), a), a) {
					return false
				}
				return r.Eq(r.Mul(a, r.Zero()), r.Zero())
			})
		})
	}
}

func TestFieldAxioms(t *testing.T) {
	for _, f := range Fields() {
		f := f
		t.Run(f.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(11))
			check := func(int64) bool {
				a, b := draw(f, rng), draw(f, rng)
				// a + (-a) = 0 and a - b = a + (-b).
				if !f.Eq(f.Add(a, f.Neg(a)), f.Zero()) {
					return false
				}
				return f.Eq(f.Sub(a, b), f.Add(a, f.Neg(b)))
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
				t.Error(err)
			}
		})
	}
}

func TestGFpArithmetic(t *testing.T) {
	f := NewGFp(7)
	if got := f.Mul(3, 5); got != 1 {
		t.Errorf("3*5 mod 7 = %v, want 1", got)
	}
	if got := f.Sub(2, 5); got != 4 {
		t.Errorf("2-5 mod 7 = %v, want 4", got)
	}
	if got := f.Neg(0); got != 0 {
		t.Errorf("-0 mod 7 = %v, want 0", got)
	}
	if got := f.Neg(3); got != 4 {
		t.Errorf("-3 mod 7 = %v, want 4", got)
	}
}

func TestGFpRejectsBadModulus(t *testing.T) {
	for _, p := range []int64{0, 1, 4, 9, 1 << 27} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGFp(%d) did not panic", p)
				}
			}()
			NewGFp(p)
		}()
	}
}

func TestTropicalIdentities(t *testing.T) {
	mp := MinPlus{}
	if !math.IsInf(mp.Zero(), 1) {
		t.Error("MinPlus zero must be +Inf")
	}
	if got := mp.Add(3, mp.Zero()); got != 3 {
		t.Errorf("min(3, +Inf) = %v", got)
	}
	if got := mp.Mul(3, mp.Zero()); !math.IsInf(got, 1) {
		t.Errorf("3 + Inf = %v, want +Inf (annihilator)", got)
	}
	xp := MaxPlus{}
	if !math.IsInf(xp.Zero(), -1) {
		t.Error("MaxPlus zero must be -Inf")
	}
}

func TestBooleanTruthTable(t *testing.T) {
	b := Boolean{}
	cases := []struct{ x, y, or, and Value }{
		{0, 0, 0, 0}, {0, 1, 1, 0}, {1, 0, 1, 0}, {1, 1, 1, 1},
	}
	for _, c := range cases {
		if got := b.Add(c.x, c.y); got != c.or {
			t.Errorf("%v OR %v = %v, want %v", c.x, c.y, got, c.or)
		}
		if got := b.Mul(c.x, c.y); got != c.and {
			t.Errorf("%v AND %v = %v, want %v", c.x, c.y, got, c.and)
		}
	}
}

func TestRandNeverZero(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, r := range All() {
		for i := 0; i < 200; i++ {
			if v := r.Rand(rng); r.Eq(v, r.Zero()) {
				t.Errorf("%s: Rand produced Zero", r.Name())
			}
		}
	}
}

func TestSumAndDot(t *testing.T) {
	c := Counting{}
	if got := Sum(c); got != 0 {
		t.Errorf("empty Sum = %v", got)
	}
	if got := Sum(c, 1, 2, 3); got != 6 {
		t.Errorf("Sum(1,2,3) = %v", got)
	}
	if got := Dot(c, []Value{1, 2, 3}, []Value{4, 5, 6}); got != 32 {
		t.Errorf("Dot = %v, want 32", got)
	}
	mp := MinPlus{}
	if got := Dot(mp, []Value{1, 2}, []Value{10, 5}); got != 7 {
		t.Errorf("tropical Dot = %v, want 7", got)
	}
	defer func() {
		if recover() == nil {
			t.Error("Dot length mismatch did not panic")
		}
	}()
	Dot(c, []Value{1}, []Value{})
}

func TestRealEqTolerance(t *testing.T) {
	r := Real{}
	if !r.Eq(1.0, 1.0+1e-12) {
		t.Error("Real.Eq should tolerate tiny relative error")
	}
	if r.Eq(1.0, 1.1) {
		t.Error("Real.Eq should reject 10% error")
	}
	if !r.Eq(0, 0) {
		t.Error("Real.Eq(0,0)")
	}
}

func TestAsField(t *testing.T) {
	if _, ok := AsField(Boolean{}); ok {
		t.Error("Boolean must not be a field")
	}
	if _, ok := AsField(Real{}); !ok {
		t.Error("Real must be a field")
	}
	if _, ok := AsField(NewGFp(13)); !ok {
		t.Error("GFp must be a field")
	}
}
