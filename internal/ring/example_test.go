package ring_test

import (
	"fmt"

	"lbmm/internal/ring"
)

// ExampleDot shows semiring dot products: the same vectors give a sum of
// products over Counting and a shortest path relaxation over MinPlus.
func ExampleDot() {
	a := []ring.Value{1, 2, 3}
	b := []ring.Value{4, 5, 6}
	fmt.Println(ring.Dot(ring.Counting{}, a, b))
	fmt.Println(ring.Dot(ring.MinPlus{}, a, b))
	// Output:
	// 32
	// 5
}

// ExampleNewGFp shows exact prime-field arithmetic.
func ExampleNewGFp() {
	f := ring.NewGFp(7)
	fmt.Println(f.Mul(3, 5))
	fmt.Println(f.Sub(2, 5))
	// Output:
	// 1
	// 4
}
