// Package ring provides the algebraic structures over which low-bandwidth
// matrix multiplication runs: semirings (Boolean, tropical, counting) and
// fields (reals, prime fields GF(p)).
//
// The paper distinguishes the two because its fastest algorithms use
// subtraction (fast dense matrix multiplication) and therefore need a field,
// while the O(d^1.867)-round algorithm works over any semiring.
//
// All elements are carried in a Value (a float64). Every discrete ring in
// this package uses only integers below 2^53, which float64 represents
// exactly, so arithmetic over Boolean, GF(p), counting and tropical rings is
// exact. One message in the low-bandwidth model carries exactly one Value.
package ring

import (
	"fmt"
	"math"
	"math/rand"
)

// Value is the runtime representation of a ring element. Discrete rings use
// exactly representable integers; MinPlus/MaxPlus additionally use ±Inf as
// their additive identities.
type Value = float64

// Semiring is a commutative semiring (S, Add, Mul, Zero, One): Add is
// associative and commutative with identity Zero; Mul is associative with
// identity One and distributes over Add; Zero annihilates under Mul.
type Semiring interface {
	// Name identifies the ring in stats and CLI output.
	Name() string
	// Zero is the additive identity.
	Zero() Value
	// One is the multiplicative identity.
	One() Value
	// Add is the semiring addition.
	Add(a, b Value) Value
	// Mul is the semiring multiplication.
	Mul(a, b Value) Value
	// Eq reports whether two values are equal as ring elements.
	Eq(a, b Value) bool
	// Rand draws a random element, used by tests and workload generators.
	// The result is never Zero, so generated sparse matrices have exactly
	// the requested support.
	Rand(rng *rand.Rand) Value
}

// Field extends Semiring with additive inverses. The distributed Strassen
// multiplier requires a Field.
type Field interface {
	Semiring
	// Neg returns the additive inverse.
	Neg(a Value) Value
	// Sub returns a - b.
	Sub(a, b Value) Value
}

// ---------------------------------------------------------------------------
// Boolean semiring ({0,1}, OR, AND)

// Boolean is the Boolean semiring ({0,1}, ∨, ∧). Matrix multiplication over
// Boolean computes reachability / witness existence; triangle *detection*
// reduces to it.
type Boolean struct{}

func (Boolean) Name() string          { return "boolean" }
func (Boolean) Zero() Value           { return 0 }
func (Boolean) One() Value            { return 1 }
func (Boolean) Add(a, b Value) Value  { return math.Max(a, b) }
func (Boolean) Mul(a, b Value) Value  { return math.Min(a, b) }
func (Boolean) Eq(a, b Value) bool    { return a == b }
func (Boolean) Rand(*rand.Rand) Value { return 1 }

// ---------------------------------------------------------------------------
// Counting semiring (ℕ, +, ×)

// Counting is the semiring of non-negative integers under ordinary addition
// and multiplication. Triangle *counting* reduces to matrix multiplication
// over Counting.
type Counting struct{}

func (Counting) Name() string         { return "counting" }
func (Counting) Zero() Value          { return 0 }
func (Counting) One() Value           { return 1 }
func (Counting) Add(a, b Value) Value { return a + b }
func (Counting) Mul(a, b Value) Value { return a * b }
func (Counting) Eq(a, b Value) bool   { return a == b }
func (Counting) Rand(rng *rand.Rand) Value {
	return Value(1 + rng.Intn(8))
}

// ---------------------------------------------------------------------------
// Tropical semirings

// MinPlus is the tropical semiring (ℝ ∪ {+∞}, min, +). One step of matrix
// "multiplication" over MinPlus relaxes shortest paths; the sparse product
// corresponds to a bounded-degree APSP relaxation round.
type MinPlus struct{}

func (MinPlus) Name() string         { return "minplus" }
func (MinPlus) Zero() Value          { return math.Inf(1) }
func (MinPlus) One() Value           { return 0 }
func (MinPlus) Add(a, b Value) Value { return math.Min(a, b) }
func (MinPlus) Mul(a, b Value) Value { return a + b }
func (MinPlus) Eq(a, b Value) bool   { return a == b }
func (MinPlus) Rand(rng *rand.Rand) Value {
	return Value(1 + rng.Intn(100))
}

// MaxPlus is the tropical semiring (ℝ ∪ {−∞}, max, +), used for longest or
// widest path style recurrences.
type MaxPlus struct{}

func (MaxPlus) Name() string         { return "maxplus" }
func (MaxPlus) Zero() Value          { return math.Inf(-1) }
func (MaxPlus) One() Value           { return 0 }
func (MaxPlus) Add(a, b Value) Value { return math.Max(a, b) }
func (MaxPlus) Mul(a, b Value) Value { return a + b }
func (MaxPlus) Eq(a, b Value) bool   { return a == b }
func (MaxPlus) Rand(rng *rand.Rand) Value {
	return Value(1 + rng.Intn(100))
}

// ---------------------------------------------------------------------------
// GF(p) prime fields

// GFp is the prime field ℤ/pℤ for a prime p. All arithmetic stays within
// exactly representable integers provided p < 2^26 (so products fit 2^52).
type GFp struct {
	P int64
}

// NewGFp returns GF(p). It panics if p is not a prime in (1, 2^26), since a
// composite modulus silently breaks field axioms and exactness.
func NewGFp(p int64) GFp {
	if p <= 1 || p >= 1<<26 || !isPrime(p) {
		panic("ring: GFp modulus must be a prime below 2^26")
	}
	return GFp{P: p}
}

// ParseGFp is NewGFp with an error instead of a panic, for moduli that
// arrive from untrusted inputs (serialized plans, wire requests).
func ParseGFp(p int64) (GFp, error) {
	if p <= 1 || p >= 1<<26 || !isPrime(p) {
		return GFp{}, fmt.Errorf("ring: GFp modulus %d is not a prime below 2^26", p)
	}
	return GFp{P: p}, nil
}

func isPrime(p int64) bool {
	if p < 2 {
		return false
	}
	for q := int64(2); q*q <= p; q++ {
		if p%q == 0 {
			return false
		}
	}
	return true
}

func (f GFp) Name() string { return "gfp" }
func (f GFp) Zero() Value  { return 0 }
func (f GFp) One() Value   { return 1 }
func (f GFp) Add(a, b Value) Value {
	return Value((int64(a) + int64(b)) % f.P)
}
func (f GFp) Mul(a, b Value) Value {
	return Value((int64(a) * int64(b)) % f.P)
}
func (f GFp) Eq(a, b Value) bool { return a == b }
func (f GFp) Neg(a Value) Value {
	if a == 0 {
		return 0
	}
	return Value(f.P - int64(a))
}
func (f GFp) Sub(a, b Value) Value {
	return Value(((int64(a)-int64(b))%f.P + f.P) % f.P)
}
func (f GFp) Rand(rng *rand.Rand) Value {
	return Value(1 + rng.Int63n(f.P-1))
}

// ---------------------------------------------------------------------------
// Real field

// Real is the field of float64 numbers. Because floating-point addition is
// not associative, Eq uses a relative tolerance; the distributed algorithms
// may accumulate partial sums in a different order than the reference
// multiplier.
type Real struct{}

func (Real) Name() string         { return "real" }
func (Real) Zero() Value          { return 0 }
func (Real) One() Value           { return 1 }
func (Real) Add(a, b Value) Value { return a + b }
func (Real) Mul(a, b Value) Value { return a * b }
func (Real) Neg(a Value) Value    { return -a }
func (Real) Sub(a, b Value) Value { return a - b }
func (Real) Eq(a, b Value) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*math.Max(scale, 1)
}
func (Real) Rand(rng *rand.Rand) Value {
	// Small integer values keep Real products exactly comparable in most
	// tests while still exercising float arithmetic.
	return Value(1 + rng.Intn(16))
}

// ---------------------------------------------------------------------------

// All returns one instance of every semiring in this package, for
// cross-ring table tests.
func All() []Semiring {
	return []Semiring{Boolean{}, Counting{}, MinPlus{}, MaxPlus{}, NewGFp(1009), Real{}}
}

// Fields returns one instance of every field in this package.
func Fields() []Field {
	return []Field{NewGFp(1009), Real{}}
}

// AsField reports r as a Field if it is one.
func AsField(r Semiring) (Field, bool) {
	f, ok := r.(Field)
	return f, ok
}

// Sum folds Add over vs, returning r.Zero() for an empty slice.
func Sum(r Semiring, vs ...Value) Value {
	acc := r.Zero()
	for _, v := range vs {
		acc = r.Add(acc, v)
	}
	return acc
}

// Dot returns the semiring dot product Σ_i a_i ⊗ b_i of two equal-length
// vectors. It panics if the lengths differ.
func Dot(r Semiring, a, b []Value) Value {
	if len(a) != len(b) {
		panic("ring: Dot length mismatch")
	}
	acc := r.Zero()
	for i := range a {
		acc = r.Add(acc, r.Mul(a[i], b[i]))
	}
	return acc
}
