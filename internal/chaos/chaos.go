// Package chaos is the fault-injection and chaos-testing layer of the
// repository. The supported low-bandwidth model assumes a perfect
// synchronous network — each round every computer sends and receives at
// most one message, and every message makes the barrier (§2). A production
// serving stack cannot assume that, so this package provides:
//
//   - FaultPlan: a declarative, seedable description of network faults —
//     per-round drop/duplicate/corrupt/delay rates and explicit per-node
//     straggler masks — that compiles into a deterministic lbm.Injector
//     shared by both execution engines;
//   - Differential: a chaos differential harness that runs randomized
//     (structure, ring, fault plan) cases through the map oracle and the
//     compiled engine and holds them to identical products on fault-free
//     runs and identical typed lbm.ErrFault detections (same kind, same
//     network round, same node) under injected faults.
//
// Determinism is the load-bearing property: an injector's verdict is a pure
// hash of (seed, round, ordinal), so a fault plan replays bit-identically
// across engines, runs and hosts. docs/CHAOS.md documents the model; the
// `lbmm chaos` subcommand runs the harness from the command line.
package chaos

import (
	"fmt"
	"sort"

	"lbmm/internal/lbm"
)

// Rates are per-message fault probabilities for one round (or the plan-wide
// default). Each message suffers at most one fault; the rates partition the
// unit interval, so their sum must not exceed 1.
type Rates struct {
	Drop, Duplicate, Corrupt, Delay float64
}

// total sums the rates (the probability a message is struck at all).
func (r Rates) total() float64 { return r.Drop + r.Duplicate + r.Corrupt + r.Delay }

// zero reports an all-clean rate set.
func (r Rates) zero() bool { return r.total() == 0 }

// RoundRates overrides the plan-wide rates for one network round — the
// per-round fault schedule of a plan.
type RoundRates struct {
	Round int
	Rates
}

// Straggler marks one computer late for the network rounds [From, To); a
// zero To masks just round From. Every message the straggler would send in
// a masked round misses the barrier.
type Straggler struct {
	Node     lbm.NodeID
	From, To int
}

// FaultPlan is a deterministic, seedable fault schedule. The zero value
// injects nothing. Plans are pure data: the same plan produces the same
// injector verdicts on every engine, run and host.
type FaultPlan struct {
	// Seed keys the per-message hash; two plans with equal rates but
	// different seeds strike different messages.
	Seed int64
	// Rates are the plan-wide per-message fault probabilities.
	Rates
	// Rounds overrides the rates for specific network rounds (the
	// per-round schedule); unlisted rounds use the plan-wide rates.
	Rounds []RoundRates
	// Stragglers are explicit per-node straggler masks.
	Stragglers []Straggler
	// FromRound/ToRound restrict injection to the network rounds
	// [FromRound, ToRound); a zero ToRound leaves the window open-ended.
	// Straggler masks carry their own windows and ignore this one.
	FromRound, ToRound int
}

// Validate rejects plans whose rates do not describe probabilities.
func (p FaultPlan) Validate() error {
	check := func(where string, r Rates) error {
		for _, v := range []float64{r.Drop, r.Duplicate, r.Corrupt, r.Delay} {
			if v < 0 || v > 1 {
				return fmt.Errorf("chaos: %s: rate %v outside [0,1]", where, v)
			}
		}
		if r.total() > 1 {
			return fmt.Errorf("chaos: %s: rates sum to %v > 1", where, r.total())
		}
		return nil
	}
	if err := check("plan", p.Rates); err != nil {
		return err
	}
	for _, rr := range p.Rounds {
		if rr.Round < 0 {
			return fmt.Errorf("chaos: round override for negative round %d", rr.Round)
		}
		if err := check(fmt.Sprintf("round %d", rr.Round), rr.Rates); err != nil {
			return err
		}
	}
	for _, s := range p.Stragglers {
		if s.Node < 0 {
			return fmt.Errorf("chaos: straggler mask for negative node %d", s.Node)
		}
	}
	return nil
}

// Quiet reports whether the plan can never strike a message.
func (p FaultPlan) Quiet() bool {
	if !p.Rates.zero() {
		return false
	}
	for _, rr := range p.Rounds {
		if !rr.Rates.zero() {
			return false
		}
	}
	return len(p.Stragglers) == 0
}

// Injector compiles the plan into its executable form. The result is
// immutable and safe for concurrent use by both engines at once.
func (p FaultPlan) Injector() (*Injector, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	in := &Injector{plan: p}
	if len(p.Rounds) > 0 {
		in.overrides = make(map[int]Rates, len(p.Rounds))
		for _, rr := range p.Rounds {
			in.overrides[rr.Round] = rr.Rates
		}
	}
	if len(p.Stragglers) > 0 {
		in.stragglers = make(map[lbm.NodeID][][2]int, len(p.Stragglers))
		for _, s := range p.Stragglers {
			to := s.To
			if to <= s.From {
				to = s.From + 1
			}
			in.stragglers[s.Node] = append(in.stragglers[s.Node], [2]int{s.From, to})
		}
		for _, spans := range in.stragglers {
			sort.Slice(spans, func(i, j int) bool { return spans[i][0] < spans[j][0] })
		}
	}
	return in, nil
}

// MustInjector is Injector for statically-known plans (tests, the CLI).
func (p FaultPlan) MustInjector() *Injector {
	in, err := p.Injector()
	if err != nil {
		panic(err)
	}
	return in
}

// Injector is a compiled FaultPlan implementing lbm.Injector. Verdicts are
// pure functions of (seed, round, ordinal): no state, no allocation, safe
// to share across engines and goroutines.
type Injector struct {
	plan       FaultPlan
	overrides  map[int]Rates
	stragglers map[lbm.NodeID][][2]int
}

// Plan returns the plan the injector was compiled from.
func (in *Injector) Plan() FaultPlan { return in.plan }

// rates resolves the effective rates for a round: the per-round override if
// one exists, the plan-wide rates if the round is inside the window, and
// all-clean otherwise.
func (in *Injector) rates(round int) Rates {
	if r, ok := in.overrides[round]; ok {
		return r
	}
	if round < in.plan.FromRound || (in.plan.ToRound > 0 && round >= in.plan.ToRound) {
		return Rates{}
	}
	return in.plan.Rates
}

// Decide implements lbm.Injector: the fault striking the ord-th real
// message of the given network round.
func (in *Injector) Decide(round, ord int, from, to lbm.NodeID) lbm.FaultKind {
	r := in.rates(round)
	if r.zero() {
		return lbm.FaultNone
	}
	u := unit(uint64(in.plan.Seed), uint64(round), uint64(ord))
	if u < r.Drop {
		return lbm.FaultDrop
	}
	u -= r.Drop
	if u < r.Duplicate {
		return lbm.FaultDuplicate
	}
	u -= r.Duplicate
	if u < r.Corrupt {
		return lbm.FaultCorrupt
	}
	u -= r.Corrupt
	if u < r.Delay {
		return lbm.FaultDelay
	}
	return lbm.FaultNone
}

// Straggles implements lbm.Injector: whether the node's straggler mask
// covers the round.
func (in *Injector) Straggles(round int, node lbm.NodeID) bool {
	for _, span := range in.stragglers[node] {
		if span[0] > round {
			return false
		}
		if round < span[1] {
			return true
		}
	}
	return false
}

// unit hashes (seed, round, ord) to a uniform float64 in [0, 1) with a
// splitmix64 finalizer — the determinism the whole layer rests on.
func unit(seed, round, ord uint64) float64 {
	z := seed ^ (round * 0x9e3779b97f4a7c15) ^ (ord * 0xbf58476d1ce4e5b9)
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return float64(z>>11) / float64(1<<53)
}
