package chaos

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"

	"lbmm/internal/algo"
	"lbmm/internal/dist"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// DiffConfig sizes a differential run.
type DiffConfig struct {
	// Cases is the number of randomized (structure, ring, fault plan)
	// cases; 0 means 200 (the acceptance floor).
	Cases int
	// Seed keys every random choice; equal seeds replay equal runs.
	Seed int64
	// Log, when non-nil, receives one line per case (the CLI's -v).
	Log func(format string, args ...any)
}

// DiffResult summarizes a differential run.
type DiffResult struct {
	// Cases is the number of cases executed.
	Cases int
	// Clean counts fault-free executions that agreed across engines and
	// matched the sequential reference product (every case contributes one).
	Clean int
	// Faulted counts armed cases where both engines detected the identical
	// typed fault.
	Faulted int
	// Survived counts armed cases whose injector never struck (low rates or
	// a missed window); their outputs still had to agree.
	Survived int
	// FaultsByKind tallies the detected faults by kind name.
	FaultsByKind map[string]int
	// Failures lists every differential violation, human-readably. A clean
	// harness run has none.
	Failures []string
}

// OK reports whether the run found no differential violations.
func (r *DiffResult) OK() bool { return len(r.Failures) == 0 }

// Summary renders the run one screen high.
func (r *DiffResult) Summary() string {
	s := fmt.Sprintf("chaos differential: %d cases — %d clean, %d faulted identically, %d survived injection (each across direct, loopback and tcp-mesh transports)",
		r.Cases, r.Clean, r.Faulted, r.Survived)
	if len(r.FaultsByKind) > 0 {
		s += "\nfaults by kind:"
		for _, k := range []lbm.FaultKind{lbm.FaultDrop, lbm.FaultDuplicate, lbm.FaultCorrupt, lbm.FaultDelay, lbm.FaultStraggle} {
			if c := r.FaultsByKind[k.String()]; c > 0 {
				s += fmt.Sprintf(" %s=%d", k, c)
			}
		}
	}
	if !r.OK() {
		s += fmt.Sprintf("\nFAILURES (%d):", len(r.Failures))
		for _, f := range r.Failures {
			s += "\n  " + f
		}
	}
	return s
}

// diffCase is one randomized draw: a prepared structure, values, and an
// armed-or-quiet fault plan. as/bs are the batched lanes (lane 0 is a/b; the
// extra lanes exercise the lane-strided walk against per-lane references).
type diffCase struct {
	label  string
	prep   *algo.Prepared
	a, b   *matrix.Sparse
	as, bs []*matrix.Sparse
	plan   FaultPlan
	armed  bool
}

// Differential runs the chaos differential harness: every case first
// executes fault-free on the map oracle and the compiled engine (outputs
// must agree with each other and with the sequential reference product),
// then — when armed — re-executes both engines under one shared injector
// and requires either a clean survival with agreeing outputs or the
// identical typed lbm.ErrFault (same kind, same network round, same node)
// from both. Fault-free replays after a fault check that a detection leaves
// no state behind (the compiled engine recycles pooled executors).
//
// The harness also spans the transport axis: each case re-runs the compiled
// engine through the loopback seam and across a three-participant localhost
// TCP mesh (one shared trio of dist.Mesh endpoints, reused for every case —
// faults strike before any frame leaves a sender, so a detection leaves the
// sockets clean). Products, merged statistics and typed fault provenance
// must all be identical to the nil-transport engines. A batched leg widens
// the same plan to three value-set lanes and requires the single lane-strided
// walk — nil transport, loopback and mesh alike — to reproduce every lane's
// scalar product exactly.
func Differential(cfg DiffConfig) *DiffResult {
	cases := cfg.Cases
	if cases <= 0 {
		cases = 200
	}
	res := &DiffResult{FaultsByKind: map[string]int{}}
	logf := cfg.Log
	if logf == nil {
		logf = func(string, ...any) {}
	}
	meshes, stop, err := dist.NewLocalMesh(3)
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("transport axis: local mesh: %v", err))
		meshes = nil
	} else {
		defer stop()
	}
	for c := 0; c < cases; c++ {
		rng := rand.New(rand.NewSource(cfg.Seed + int64(c)*7919))
		dc, err := drawCase(c, rng)
		if err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("case %d (%s): draw: %v", c, dc.label, err))
			continue
		}
		res.Cases++
		runCase(res, c, dc, meshes, logf)
	}
	return res
}

// drawCase randomizes one case: structure family and size, ring, algorithm,
// values, and a fault plan (quiet for 1 case in 5).
func drawCase(c int, rng *rand.Rand) (*diffCase, error) {
	ns := []int{16, 24, 32}
	ds := []int{2, 3}
	n := ns[rng.Intn(len(ns))]
	d := ds[rng.Intn(len(ds))]
	rings := []ring.Semiring{ring.Counting{}, ring.MinPlus{}, ring.Real{}, ring.NewGFp(1009)}
	r := rings[rng.Intn(len(rings))]

	structSeed := rng.Int63()
	var inst = workload.Mixed(n, d, structSeed)
	family := "mixed"
	switch rng.Intn(3) {
	case 0:
		inst = workload.Blocks(n, d)
		family = "blocks"
	case 1:
		inst = workload.PowerLaw(n, d, structSeed)
		family = "powerlaw"
	}

	var prep *algo.Prepared
	var err error
	algName := "lemma31"
	if rng.Intn(2) == 0 {
		algName = "theorem42"
		prep, err = algo.PrepareTheorem42(r, inst, algo.Theorem42Opts{})
	} else {
		prep, err = algo.PrepareLemma31(r, inst)
	}
	dc := &diffCase{
		label: fmt.Sprintf("%s/n%d/d%d/%s/%s", family, n, d, r.Name(), algName),
	}
	if err != nil {
		return dc, err
	}
	dc.prep = prep
	dc.a = matrix.Random(prep.Inst.Ahat, r, rng.Int63())
	dc.b = matrix.Random(prep.Inst.Bhat, r, rng.Int63())
	dc.as, dc.bs = []*matrix.Sparse{dc.a}, []*matrix.Sparse{dc.b}
	for l := 1; l < 3; l++ {
		dc.as = append(dc.as, matrix.Random(prep.Inst.Ahat, r, rng.Int63()))
		dc.bs = append(dc.bs, matrix.Random(prep.Inst.Bhat, r, rng.Int63()))
	}
	dc.plan, dc.armed = drawPlan(rng, prep.Inst.N)
	return dc, nil
}

// drawPlan randomizes a fault plan over the profiles the harness covers:
// quiet, one emphasized kind, mixed low rates, a guaranteed-strike round
// override, and straggler masks.
func drawPlan(rng *rand.Rand, n int) (FaultPlan, bool) {
	p := FaultPlan{Seed: rng.Int63()}
	switch rng.Intn(6) {
	case 0: // quiet: the armed path must be inert
		return p, false
	case 1: // one kind, low rate
		rate := 0.002 + 0.05*rng.Float64()
		switch rng.Intn(4) {
		case 0:
			p.Drop = rate
		case 1:
			p.Duplicate = rate
		case 2:
			p.Corrupt = rate
		case 3:
			p.Delay = rate
		}
	case 2: // mixed low rates
		p.Drop = 0.01 * rng.Float64()
		p.Duplicate = 0.01 * rng.Float64()
		p.Corrupt = 0.01 * rng.Float64()
		p.Delay = 0.01 * rng.Float64()
	case 3: // guaranteed strike in one scheduled round
		p.Rounds = []RoundRates{{Round: rng.Intn(8), Rates: Rates{Drop: 1}}}
	case 4: // straggler mask over a short window
		p.Stragglers = []Straggler{{
			Node: lbm.NodeID(rng.Intn(n)),
			From: rng.Intn(6),
			To:   0, // single round
		}}
	case 5: // windowed plan-wide rates
		p.Drop = 0.2
		p.FromRound = rng.Intn(4)
		p.ToRound = p.FromRound + 1 + rng.Intn(3)
	}
	return p, true
}

// runEngine executes one engine under an optional injector and transport.
func runEngine(dc *diffCase, e algo.Engine, inj lbm.Injector, t lbm.Transport) (*matrix.Sparse, lbm.Stats, error) {
	var mopts []lbm.Option
	if inj != nil {
		mopts = append(mopts, lbm.WithInjector(inj))
	}
	if t != nil {
		mopts = append(mopts, lbm.WithTransport(t))
	}
	x, res, err := dc.prep.MultiplyOn(e, dc.a, dc.b, mopts...)
	if err != nil {
		return nil, lbm.Stats{}, err
	}
	return x, res.Stats, nil
}

// runEngineBatch is runEngine over the case's batched lanes: one k-lane
// walk through the shared plan instead of k scalar walks.
func runEngineBatch(dc *diffCase, e algo.Engine, inj lbm.Injector, t lbm.Transport) ([]*matrix.Sparse, lbm.Stats, error) {
	var mopts []lbm.Option
	if inj != nil {
		mopts = append(mopts, lbm.WithInjector(inj))
	}
	if t != nil {
		mopts = append(mopts, lbm.WithTransport(t))
	}
	xs, res, err := dc.prep.MultiplyBatchOn(e, dc.as, dc.bs, mopts...)
	if err != nil {
		return nil, lbm.Stats{}, err
	}
	return xs, res.Stats, nil
}

// runMesh executes the compiled engine on every rank of the TCP trio at
// once (the injector is a read-only hash, safe to share). It returns either
// the merged product and merged statistics, or — when every rank detected
// the identical typed fault — that fault. Divergent verdicts across ranks
// are a differential violation and come back as an untyped error.
func runMesh(dc *diffCase, meshes []*dist.Mesh, inj lbm.Injector) (*matrix.Sparse, lbm.Stats, error) {
	n := len(meshes)
	outs := make([]*matrix.Sparse, n)
	stats := make([]lbm.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rk := range meshes {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			outs[rk], stats[rk], errs[rk] = runEngine(dc, algo.EngineCompiled, inj, meshes[rk])
		}(rk)
	}
	wg.Wait()

	if errs[0] != nil {
		f0, ok := lbm.AsFault(errs[0])
		for rk := 1; rk < n; rk++ {
			f, okk := lbm.AsFault(errs[rk])
			if !ok || !okk || *f != *f0 {
				return nil, lbm.Stats{}, fmt.Errorf("mesh ranks diverged: rank 0 %v, rank %d %v", errs[0], rk, errs[rk])
			}
		}
		return nil, lbm.Stats{}, errs[0]
	}
	for rk := 1; rk < n; rk++ {
		if errs[rk] != nil {
			return nil, lbm.Stats{}, fmt.Errorf("mesh ranks diverged: rank 0 clean, rank %d %v", rk, errs[rk])
		}
	}
	merged := matrix.NewSparse(dc.a.N, dc.a.R)
	for _, x := range outs {
		for i, row := range x.Rows {
			for _, c := range row {
				merged.Set(i, int(c.Col), c.Val)
			}
		}
	}
	return merged, lbm.MergeStats(stats...), nil
}

// runMeshBatch is runMesh over the case's batched lanes: every rank walks
// the plan once with k lanes, and the disjoint per-rank partials merge lane
// for lane.
func runMeshBatch(dc *diffCase, meshes []*dist.Mesh, inj lbm.Injector) ([]*matrix.Sparse, lbm.Stats, error) {
	n := len(meshes)
	outs := make([][]*matrix.Sparse, n)
	stats := make([]lbm.Stats, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for rk := range meshes {
		wg.Add(1)
		go func(rk int) {
			defer wg.Done()
			outs[rk], stats[rk], errs[rk] = runEngineBatch(dc, algo.EngineCompiled, inj, meshes[rk])
		}(rk)
	}
	wg.Wait()

	if errs[0] != nil {
		f0, ok := lbm.AsFault(errs[0])
		for rk := 1; rk < n; rk++ {
			f, okk := lbm.AsFault(errs[rk])
			if !ok || !okk || *f != *f0 {
				return nil, lbm.Stats{}, fmt.Errorf("batched mesh ranks diverged: rank 0 %v, rank %d %v", errs[0], rk, errs[rk])
			}
		}
		return nil, lbm.Stats{}, errs[0]
	}
	for rk := 1; rk < n; rk++ {
		if errs[rk] != nil {
			return nil, lbm.Stats{}, fmt.Errorf("batched mesh ranks diverged: rank 0 clean, rank %d %v", rk, errs[rk])
		}
	}
	merged := make([]*matrix.Sparse, len(dc.as))
	for l := range merged {
		merged[l] = matrix.NewSparse(dc.a.N, dc.a.R)
	}
	for _, xs := range outs {
		for l, x := range xs {
			for i, row := range x.Rows {
				for _, c := range row {
					merged[l].Set(i, int(c.Col), c.Val)
				}
			}
		}
	}
	return merged, lbm.MergeStats(stats...), nil
}

// runCase executes the differential protocol for one case, appending any
// violation to res.Failures.
func runCase(res *DiffResult, c int, dc *diffCase, meshes []*dist.Mesh, logf func(string, ...any)) {
	fail := func(format string, args ...any) {
		res.Failures = append(res.Failures, fmt.Sprintf("case %d (%s): %s", c, dc.label, fmt.Sprintf(format, args...)))
	}

	// Phase 1: fault-free differential (also the reference for replays).
	want := matrix.MulReference(dc.a, dc.b, dc.prep.Inst.Xhat)
	xMap, _, errMap := runEngine(dc, algo.EngineMap, nil, nil)
	xComp, stComp, errComp := runEngine(dc, algo.EngineCompiled, nil, nil)
	if errMap != nil || errComp != nil {
		fail("fault-free run errored: map=%v compiled=%v", errMap, errComp)
		return
	}
	if !matrix.Equal(xMap, want) {
		fail("map engine product differs from the sequential reference")
		return
	}
	if !matrix.Equal(xComp, want) {
		fail("compiled engine product differs from the sequential reference")
		return
	}
	res.Clean++

	// Phase 1b: the transport axis, fault-free. Loopback must be
	// bit-identical to the nil-transport engine — product and Stats both —
	// and a partitioned TCP mesh run must merge back to the same product
	// and the same Stats.
	xLoop, stLoop, errLoop := runEngine(dc, algo.EngineCompiled, nil, &lbm.Loopback{})
	if errLoop != nil {
		fail("loopback run errored: %v", errLoop)
		return
	}
	if !matrix.Equal(xLoop, want) {
		fail("loopback product differs from the sequential reference")
		return
	}
	if !reflect.DeepEqual(stLoop, stComp) {
		fail("loopback stats differ from the nil-transport stats: %+v vs %+v", stLoop, stComp)
		return
	}
	if meshes != nil {
		xTCP, stTCP, errTCP := runMesh(dc, meshes, nil)
		if errTCP != nil {
			fail("tcp mesh run errored: %v", errTCP)
			return
		}
		if !matrix.Equal(xTCP, want) {
			fail("tcp mesh product differs from the sequential reference")
			return
		}
		if !reflect.DeepEqual(stTCP, stComp) {
			fail("merged tcp stats differ from the nil-transport stats: %+v vs %+v", stTCP, stComp)
			return
		}
	}

	// Phase 1c: batched lanes. One k-lane walk through the shared plan must
	// be bit-identical, lane for lane, to k scalar runs — the per-lane
	// products equal the per-lane sequential references (which phases 1 and
	// 1b pinned to the scalar engine and transport runs), and the loopback
	// and merged mesh statistics equal the nil-transport batched walk's.
	wants := make([]*matrix.Sparse, len(dc.as))
	wants[0] = want
	for l := 1; l < len(dc.as); l++ {
		wants[l] = matrix.MulReference(dc.as[l], dc.bs[l], dc.prep.Inst.Xhat)
	}
	xsB, stB, errB := runEngineBatch(dc, algo.EngineCompiled, nil, nil)
	if errB != nil {
		fail("batched run errored: %v", errB)
		return
	}
	for l, x := range xsB {
		if !matrix.Equal(x, wants[l]) {
			fail("batched lane %d differs from its scalar reference", l)
			return
		}
	}
	xsBL, stBL, errBL := runEngineBatch(dc, algo.EngineCompiled, nil, &lbm.Loopback{})
	if errBL != nil {
		fail("batched loopback run errored: %v", errBL)
		return
	}
	for l, x := range xsBL {
		if !matrix.Equal(x, wants[l]) {
			fail("batched loopback lane %d differs from its scalar reference", l)
			return
		}
	}
	if !reflect.DeepEqual(stBL, stB) {
		fail("batched loopback stats differ from the nil-transport batched stats: %+v vs %+v", stBL, stB)
		return
	}
	if meshes != nil {
		xsBM, stBM, errBM := runMeshBatch(dc, meshes, nil)
		if errBM != nil {
			fail("batched tcp mesh run errored: %v", errBM)
			return
		}
		for l, x := range xsBM {
			if !matrix.Equal(x, wants[l]) {
				fail("batched tcp mesh lane %d differs from its scalar reference", l)
				return
			}
		}
		if !reflect.DeepEqual(stBM, stB) {
			fail("merged batched tcp stats differ from the nil-transport batched stats: %+v vs %+v", stBM, stB)
			return
		}
	}

	if !dc.armed && dc.plan.Quiet() {
		// Quiet plans still exercise the injector seam: verdicts must all be
		// clean and the products unchanged.
		inj := dc.plan.MustInjector()
		if x, _, err := runEngine(dc, algo.EngineCompiled, inj, nil); err != nil || !matrix.Equal(x, want) {
			fail("quiet injector perturbed the compiled engine: err=%v", err)
		}
		return
	}

	// Phase 2: the armed differential under one shared injector.
	inj := dc.plan.MustInjector()
	xMapF, _, errMapF := runEngine(dc, algo.EngineMap, inj, nil)
	xCompF, _, errCompF := runEngine(dc, algo.EngineCompiled, inj, nil)
	switch {
	case errMapF == nil && errCompF == nil:
		if !matrix.Equal(xMapF, want) || !matrix.Equal(xCompF, want) {
			fail("injection survived but a product changed")
			return
		}
		res.Survived++
	case errMapF != nil && errCompF != nil:
		fm, okm := lbm.AsFault(errMapF)
		fc, okc := lbm.AsFault(errCompF)
		if !okm || !okc {
			fail("untyped failure under injection: map=%v compiled=%v", errMapF, errCompF)
			return
		}
		if *fm != *fc {
			fail("engines detected different faults: map=%+v compiled=%+v", fm, fc)
			return
		}
		res.Faulted++
		res.FaultsByKind[fm.Kind.String()]++
		logf("case %d (%s): both engines detected %v at round %d node %d", c, dc.label, fm.Kind, fm.Round, fm.Node)
	default:
		fail("engines disagree on whether a fault struck: map=%v compiled=%v", errMapF, errCompF)
		return
	}

	// Phase 2b: the armed transport axis under the same plan. The loopback
	// run and every rank of the mesh must reach the identical verdict —
	// the same typed fault as the nil-transport engines, or a survival
	// with the reference product.
	xLoopF, _, errLoopF := runEngine(dc, algo.EngineCompiled, inj, &lbm.Loopback{})
	if !sameVerdict(errCompF, errLoopF) {
		fail("loopback verdict differs under injection: plain=%v loopback=%v", errCompF, errLoopF)
		return
	}
	if errLoopF == nil && !matrix.Equal(xLoopF, want) {
		fail("loopback survived injection but the product changed")
		return
	}
	if meshes != nil {
		xTCPF, _, errTCPF := runMesh(dc, meshes, inj)
		if !sameVerdict(errCompF, errTCPF) {
			fail("tcp mesh verdict differs under injection: plain=%v tcp=%v", errCompF, errTCPF)
			return
		}
		if errTCPF == nil && !matrix.Equal(xTCPF, want) {
			fail("tcp mesh survived injection but the product changed")
			return
		}
	}

	// Phase 3: fault-free replay — a detection must leave no residue (the
	// compiled engine recycles pooled executors across calls).
	xMapR, _, errMapR := runEngine(dc, algo.EngineMap, nil, nil)
	xCompR, _, errCompR := runEngine(dc, algo.EngineCompiled, nil, nil)
	if errMapR != nil || errCompR != nil {
		fail("fault-free replay errored: map=%v compiled=%v", errMapR, errCompR)
		return
	}
	if !matrix.Equal(xMapR, want) || !matrix.Equal(xCompR, want) {
		fail("fault-free replay product differs after an injected run")
	}
}

// sameVerdict reports whether two runs agreed on the fault outcome: both
// clean, or both the identical typed fault.
func sameVerdict(a, b error) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	fa, oka := lbm.AsFault(a)
	fb, okb := lbm.AsFault(b)
	return oka && okb && *fa == *fb
}
