package chaos

import (
	"testing"

	"lbmm/internal/lbm"
)

// TestInjectorDeterminism: verdicts are pure functions of the plan — two
// injectors compiled from the same plan agree on every probe, and verdicts
// don't depend on call order.
func TestInjectorDeterminism(t *testing.T) {
	plan := FaultPlan{Seed: 42, Rates: Rates{Drop: 0.2, Duplicate: 0.1, Corrupt: 0.1, Delay: 0.1}}
	a := plan.MustInjector()
	b := plan.MustInjector()
	var struck int
	for round := 0; round < 64; round++ {
		for ord := 0; ord < 16; ord++ {
			ka := a.Decide(round, ord, 0, 1)
			kb := b.Decide(round, ord, 0, 1)
			if ka != kb {
				t.Fatalf("verdicts diverge at (%d,%d): %v vs %v", round, ord, ka, kb)
			}
			if ka != lbm.FaultNone {
				struck++
			}
		}
	}
	// 1024 probes at total rate 0.5: the hash would have to be badly broken
	// to strike fewer than 300 or more than 700.
	if struck < 300 || struck > 700 {
		t.Errorf("struck %d/1024 probes at total rate 0.5", struck)
	}
	// Replaying a single probe after the sweep must not change its verdict.
	if a.Decide(3, 2, 0, 1) != b.Decide(3, 2, 0, 1) {
		t.Error("replayed probe diverged")
	}
}

// TestInjectorSeedSensitivity: different seeds strike different messages.
func TestInjectorSeedSensitivity(t *testing.T) {
	p1 := FaultPlan{Seed: 1, Rates: Rates{Drop: 0.3}}.MustInjector()
	p2 := FaultPlan{Seed: 2, Rates: Rates{Drop: 0.3}}.MustInjector()
	same := true
	for round := 0; round < 32 && same; round++ {
		for ord := 0; ord < 8; ord++ {
			if p1.Decide(round, ord, 0, 1) != p2.Decide(round, ord, 0, 1) {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("seeds 1 and 2 produced identical verdict streams")
	}
}

// TestRoundOverridesAndWindow pins the rate-resolution precedence: a round
// override beats the plan-wide window, and the window excludes rounds
// outside [FromRound, ToRound).
func TestRoundOverridesAndWindow(t *testing.T) {
	in := FaultPlan{
		Seed:      7,
		Rates:     Rates{Drop: 1},
		FromRound: 2, ToRound: 4,
		Rounds: []RoundRates{{Round: 10, Rates: Rates{Corrupt: 1}}},
	}.MustInjector()
	cases := []struct {
		round int
		want  lbm.FaultKind
	}{
		{0, lbm.FaultNone},     // before the window
		{1, lbm.FaultNone},     // before the window
		{2, lbm.FaultDrop},     // inside
		{3, lbm.FaultDrop},     // inside
		{4, lbm.FaultNone},     // ToRound is exclusive
		{10, lbm.FaultCorrupt}, // override beats the window exclusion
	}
	for _, c := range cases {
		if got := in.Decide(c.round, 0, 0, 1); got != c.want {
			t.Errorf("round %d: verdict %v, want %v", c.round, got, c.want)
		}
	}
}

// TestStragglerMasks pins mask semantics: [From, To) windows, To=0 masking
// a single round, and per-node isolation.
func TestStragglerMasks(t *testing.T) {
	in := FaultPlan{Stragglers: []Straggler{
		{Node: 3, From: 2, To: 5},
		{Node: 3, From: 9},
		{Node: 1, From: 0, To: 1},
	}}.MustInjector()
	probe := []struct {
		round int
		node  lbm.NodeID
		want  bool
	}{
		{1, 3, false}, {2, 3, true}, {4, 3, true}, {5, 3, false},
		{8, 3, false}, {9, 3, true}, {10, 3, false},
		{0, 1, true}, {1, 1, false}, {0, 2, false},
	}
	for _, c := range probe {
		if got := in.Straggles(c.round, c.node); got != c.want {
			t.Errorf("Straggles(%d, %d) = %v, want %v", c.round, c.node, got, c.want)
		}
	}
}

// TestFaultPlanValidate rejects non-probability rates.
func TestFaultPlanValidate(t *testing.T) {
	bad := []FaultPlan{
		{Rates: Rates{Drop: -0.1}},
		{Rates: Rates{Drop: 1.5}},
		{Rates: Rates{Drop: 0.6, Corrupt: 0.6}},
		{Rounds: []RoundRates{{Round: 1, Rates: Rates{Delay: 2}}}},
		{Rounds: []RoundRates{{Round: -1, Rates: Rates{Delay: 0.1}}}},
		{Stragglers: []Straggler{{Node: -2}}},
	}
	for i, p := range bad {
		if _, err := p.Injector(); err == nil {
			t.Errorf("plan %d validated, want error", i)
		}
	}
	ok := FaultPlan{Seed: 1, Rates: Rates{Drop: 0.5, Duplicate: 0.5}}
	if _, err := ok.Injector(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestQuiet classifies plans that can never strike.
func TestQuiet(t *testing.T) {
	if !(FaultPlan{Seed: 5}).Quiet() {
		t.Error("zero plan not quiet")
	}
	armed := []FaultPlan{
		{Rates: Rates{Delay: 0.1}},
		{Rounds: []RoundRates{{Round: 3, Rates: Rates{Drop: 1}}}},
		{Stragglers: []Straggler{{Node: 0}}},
	}
	for i, p := range armed {
		if p.Quiet() {
			t.Errorf("armed plan %d reported quiet", i)
		}
	}
}
