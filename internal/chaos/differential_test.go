package chaos

import (
	"testing"
)

// TestChaosDifferential is the acceptance harness: ≥200 randomized
// (structure, ring, fault plan) cases through map-vs-compiled with
// identical products on fault-free runs and identical typed faults under
// injection. Short mode keeps a representative slice for quick CI laps.
func TestChaosDifferential(t *testing.T) {
	cases := 200
	if testing.Short() {
		cases = 40
	}
	res := Differential(DiffConfig{Cases: cases, Seed: 1, Log: t.Logf})
	if res.Cases != cases {
		t.Errorf("executed %d cases, want %d", res.Cases, cases)
	}
	if !res.OK() {
		for _, f := range res.Failures {
			t.Error(f)
		}
	}
	if res.Clean != cases {
		t.Errorf("clean fault-free runs %d, want %d", res.Clean, res.Cases)
	}
	// The draw profile guarantees a healthy mix: some cases must actually
	// have faulted (guaranteed-strike profiles exist) and each armed
	// non-strike must have survived cleanly.
	if res.Faulted == 0 {
		t.Error("no case detected a fault — injection is inert")
	}
	if len(res.FaultsByKind) < 2 {
		t.Errorf("fault kinds seen: %v, want at least 2", res.FaultsByKind)
	}
	t.Log(res.Summary())
}

// TestDifferentialReplayStability: the same seed must reproduce the same
// tallies — the harness itself is deterministic.
func TestDifferentialReplayStability(t *testing.T) {
	a := Differential(DiffConfig{Cases: 15, Seed: 99})
	b := Differential(DiffConfig{Cases: 15, Seed: 99})
	if a.Clean != b.Clean || a.Faulted != b.Faulted || a.Survived != b.Survived {
		t.Errorf("replay diverged: %+v vs %+v", a, b)
	}
	if !a.OK() || !b.OK() {
		t.Errorf("replay runs failed: %v / %v", a.Failures, b.Failures)
	}
}
