package chaos

// Drill is the process-kill counterpart of FaultPlan: a seedable schedule
// of which member of an N-node fleet dies in each drill round. Fault plans
// strike messages inside one execution; a Drill strikes whole processes —
// the failure the shard tier's membership ring (internal/shard) exists to
// absorb. Like every verdict in this package it is a pure hash of
// (seed, round), so a drill replays identically across runs, hosts and the
// CI harness.
type Drill struct {
	// Seed keys the victim selection; equal seeds replay equal drills.
	Seed int64
}

// Victim returns the index in [0, n) of the member to kill in the given
// drill round. n <= 0 returns -1 (nothing to kill).
func (d Drill) Victim(round, n int) int {
	if n <= 0 {
		return -1
	}
	return int(uint64(unit(uint64(d.Seed), uint64(round), 0x6472696c6c) * float64(n)))
}

// Victims returns the first rounds victims of the drill — the full
// schedule a multi-round failover test walks through.
func (d Drill) Victims(rounds, n int) []int {
	out := make([]int, 0, rounds)
	for r := 0; r < rounds; r++ {
		out = append(out, d.Victim(r, n))
	}
	return out
}
