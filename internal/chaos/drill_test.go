package chaos

import "testing"

func TestDrillVictimInRange(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, -7, 1 << 40} {
		d := Drill{Seed: seed}
		for round := 0; round < 200; round++ {
			for _, n := range []int{1, 2, 3, 5, 16} {
				v := d.Victim(round, n)
				if v < 0 || v >= n {
					t.Fatalf("seed %d round %d n %d: victim %d out of range", seed, round, n, v)
				}
			}
		}
	}
}

func TestDrillDeterministic(t *testing.T) {
	a := Drill{Seed: 42}.Victims(64, 5)
	b := Drill{Seed: 42}.Victims(64, 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("round %d: equal seeds disagree (%d vs %d)", i, a[i], b[i])
		}
	}
	c := Drill{Seed: 43}.Victims(64, 5)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("seeds 42 and 43 produced identical 64-round schedules")
	}
}

func TestDrillEmptyFleet(t *testing.T) {
	if v := (Drill{Seed: 1}).Victim(0, 0); v != -1 {
		t.Fatalf("n=0: got %d, want -1", v)
	}
	if v := (Drill{Seed: 1}).Victim(3, -2); v != -1 {
		t.Fatalf("n<0: got %d, want -1", v)
	}
}

func TestDrillSpreadsVictims(t *testing.T) {
	// Over many rounds every member of a small fleet should be hit at
	// least once — the schedule is a hash, not a constant.
	const n = 4
	hit := make([]bool, n)
	for _, v := range (Drill{Seed: 7}).Victims(256, n) {
		hit[v] = true
	}
	for i, h := range hit {
		if !h {
			t.Fatalf("member %d never chosen as victim in 256 rounds", i)
		}
	}
}
