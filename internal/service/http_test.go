package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func getJSON(t *testing.T, h http.Handler, path string, into any) {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", path, rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), into); err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
}

func supportPositions(s *matrix.Support) []wirePos {
	var out []wirePos
	for i, row := range s.Rows {
		for _, j := range row {
			out = append(out, wirePos{i, int(j)})
		}
	}
	return out
}

// TestHTTPEndToEnd drives the acceptance scenario over the wire: the first
// /v1/multiply compiles and caches, the second — same structure, different
// values — is a cache hit (visible in /metrics), returns the correct product
// and reports the identical round count.
func TestHTTPEndToEnd(t *testing.T) {
	srv := NewServer(Config{CacheSize: 8})
	h := NewHandler(srv)
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	xpos := supportPositions(inst.Xhat)

	var rounds [2]int
	var fps [2]string
	for i := 0; i < 2; i++ {
		a := matrix.Random(inst.Ahat, r, int64(10*i+1))
		b := matrix.Random(inst.Bhat, r, int64(10*i+2))
		rec := postJSON(t, h, "/v1/multiply", wireMultiplyRequest{
			N: inst.N, Ring: "counting",
			A: sparseEntries(a), B: sparseEntries(b), Xhat: xpos,
			Trace: i == 1,
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("multiply %d: status %d: %s", i+1, rec.Code, rec.Body)
		}
		var resp wireMultiplyResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatal(err)
		}
		wantCache := "miss"
		if i == 1 {
			wantCache = "hit"
		}
		if resp.Cache != wantCache {
			t.Errorf("request %d: cache %q, want %q", i+1, resp.Cache, wantCache)
		}
		got, err := buildSparse(inst.N, r, resp.X, "x")
		if err != nil {
			t.Fatal(err)
		}
		if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(got, want) {
			t.Errorf("request %d: wrong product", i+1)
		}
		if i == 1 {
			if resp.Profile == nil {
				t.Error("trace requested but no profile in response")
			} else if resp.Profile.Rounds != resp.Rounds {
				t.Errorf("profile rounds %d != response rounds %d", resp.Profile.Rounds, resp.Rounds)
			}
		} else if resp.Profile != nil {
			t.Error("profile returned without trace")
		}
		rounds[i], fps[i] = resp.Rounds, resp.Fingerprint
	}
	if rounds[0] != rounds[1] {
		t.Errorf("rounds differ across one cached plan: %d vs %d", rounds[0], rounds[1])
	}
	if fps[0] != fps[1] || fps[0] == "" {
		t.Errorf("fingerprints %q vs %q, want equal and nonempty", fps[0], fps[1])
	}

	var metrics map[string]int64
	getJSON(t, h, "/metrics", &metrics)
	if metrics[MetricCacheHits] != 1 || metrics[MetricCacheMisses] != 1 {
		t.Errorf("/metrics = %v, want 1 hit / 1 miss", metrics)
	}
	if metrics[MetricServed] != 2 {
		t.Errorf("served = %d, want 2", metrics[MetricServed])
	}

	var health map[string]string
	getJSON(t, h, "/healthz", &health)
	if health["status"] != "ok" {
		t.Errorf("healthz = %v", health)
	}
}

// TestHTTPPrepareAndClassify exercises the structure-only endpoints and
// checks prepare warms the cache used by multiply.
func TestHTTPPrepareAndClassify(t *testing.T) {
	srv := NewServer(Config{CacheSize: 8})
	h := NewHandler(srv)
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)

	rec := postJSON(t, h, "/v1/prepare", wirePrepareRequest{
		N: inst.N, Ring: "counting",
		Ahat: supportPositions(inst.Ahat), Bhat: supportPositions(inst.Bhat), Xhat: supportPositions(inst.Xhat),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("prepare: status %d: %s", rec.Code, rec.Body)
	}
	var prep wirePrepareResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &prep); err != nil {
		t.Fatal(err)
	}
	if prep.Cache != "miss" || prep.Fingerprint == "" || prep.Band == "" {
		t.Errorf("prepare response %+v", prep)
	}

	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	rec = postJSON(t, h, "/v1/multiply", wireMultiplyRequest{
		N: inst.N, Ring: "counting",
		A: sparseEntries(a), B: sparseEntries(b), Xhat: supportPositions(inst.Xhat),
	})
	var mul wireMultiplyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &mul); err != nil {
		t.Fatal(err)
	}
	if mul.Cache != "hit" || mul.Fingerprint != prep.Fingerprint {
		t.Errorf("multiply after prepare: cache %q fingerprint match %v", mul.Cache, mul.Fingerprint == prep.Fingerprint)
	}

	rec = postJSON(t, h, "/v1/classify", wireClassifyRequest{
		N:    inst.N,
		Ahat: supportPositions(inst.Ahat), Bhat: supportPositions(inst.Bhat), Xhat: supportPositions(inst.Xhat),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("classify: status %d: %s", rec.Code, rec.Body)
	}
	var cls wireClassifyResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &cls); err != nil {
		t.Fatal(err)
	}
	if cls.Band != prep.Band || cls.D != prep.D || cls.Upper == "" {
		t.Errorf("classify %+v disagrees with prepare %+v", cls, prep)
	}
}

// TestHTTPBadInput checks wire-level validation and status mapping.
func TestHTTPBadInput(t *testing.T) {
	h := NewHandler(NewServer(Config{}))

	cases := []struct {
		name string
		body any
		want int
	}{
		{"unknown ring", wireMultiplyRequest{N: 4, Ring: "quaternion"}, http.StatusBadRequest},
		{"zero n", wireMultiplyRequest{N: 0}, http.StatusBadRequest},
		{"huge n", wireMultiplyRequest{N: maxWireN + 1}, http.StatusBadRequest},
		{"index out of range", wireMultiplyRequest{N: 4, A: []wireEntry{{9, 0, 1}}}, http.StatusBadRequest},
		{"fractional index", wireMultiplyRequest{N: 4, A: []wireEntry{{0.5, 0, 1}}}, http.StatusBadRequest},
		{"unknown field", map[string]any{"n": 4, "bogus": true}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		if rec := postJSON(t, h, "/v1/multiply", tc.body); rec.Code != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, rec.Code, tc.want, rec.Body)
		}
	}

	// Support position validation on the structure endpoints.
	if rec := postJSON(t, h, "/v1/classify", wireClassifyRequest{N: 4, Ahat: []wirePos{{4, 0}}}); rec.Code != http.StatusBadRequest {
		t.Errorf("classify bad position: status %d", rec.Code)
	}

	// Method mismatch on a registered pattern.
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/multiply", nil))
	if rec.Code != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/multiply: status %d, want 405", rec.Code)
	}
}

// TestHTTPMultiplyBatch drives POST /v1/multiply/batch over the wire: k
// same-structure lanes come back as k correct products with one shared
// batch report, and a mixed-structure batch is a 400.
func TestHTTPMultiplyBatch(t *testing.T) {
	srv := NewServer(Config{CacheSize: 8})
	defer srv.Close()
	h := NewHandler(srv)
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	xpos := supportPositions(inst.Xhat)

	const k = 3
	lanes := make([]wireBatchLane, k)
	as := make([]*matrix.Sparse, k)
	bs := make([]*matrix.Sparse, k)
	for i := 0; i < k; i++ {
		as[i] = matrix.Random(inst.Ahat, r, int64(40*i+1))
		bs[i] = matrix.Random(inst.Bhat, r, int64(40*i+2))
		lanes[i] = wireBatchLane{A: sparseEntries(as[i]), B: sparseEntries(bs[i])}
	}
	rec := postJSON(t, h, "/v1/multiply/batch", wireMultiplyBatchRequest{
		N: inst.N, Ring: "counting", Lanes: lanes, Xhat: xpos, Trace: true,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch multiply: status %d: %s", rec.Code, rec.Body)
	}
	var resp wireMultiplyBatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.BatchLanes != k || len(resp.Lanes) != k {
		t.Fatalf("batch_lanes=%d len(lanes)=%d, want %d", resp.BatchLanes, len(resp.Lanes), k)
	}
	if resp.Profile == nil {
		t.Error("trace requested but no profile in response")
	}
	for i := 0; i < k; i++ {
		got, err := buildSparse(inst.N, r, resp.Lanes[i], "x")
		if err != nil {
			t.Fatal(err)
		}
		if want := matrix.MulReference(as[i], bs[i], inst.Xhat); !matrix.Equal(got, want) {
			t.Errorf("lane %d: wrong product", i)
		}
	}

	// A lane with a different structure must be rejected as the caller's
	// error, not served or crashed on.
	other := workload.Blocks(32, 4)
	bad := append([]wireBatchLane{}, lanes...)
	bad[1] = wireBatchLane{
		A: sparseEntries(matrix.Random(other.Ahat, r, 1)),
		B: sparseEntries(matrix.Random(other.Bhat, r, 2)),
	}
	rec = postJSON(t, h, "/v1/multiply/batch", wireMultiplyBatchRequest{
		N: inst.N, Ring: "counting", Lanes: bad, Xhat: xpos,
	})
	if rec.Code != http.StatusBadRequest {
		t.Errorf("mixed-structure batch: status %d, want 400: %s", rec.Code, rec.Body)
	}
}

// TestHTTPOverloadSetsRetryAfter pins the shed contract on the wire: an
// ErrOverloaded surfaces as 503 WITH a Retry-After header, so shedding
// turns client retry storms into backoff instead of an immediate hammer.
func TestHTTPOverloadSetsRetryAfter(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4, BatchSize: 4, BatchDelay: time.Millisecond})
	h := NewHandler(srv)
	r := ring.Counting{}
	inst := workload.Blocks(16, 4)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	body := wireMultiplyRequest{
		N: inst.N, Ring: "counting",
		A: sparseEntries(a), B: sparseEntries(b), Xhat: supportPositions(inst.Xhat),
	}
	// A closed server sheds every batched request — the deterministic way to
	// get ErrOverloaded over HTTP.
	srv.Close()
	rec := postJSON(t, h, "/v1/multiply", body)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("Retry-After"); got != "1" {
		t.Fatalf("Retry-After = %q, want \"1\"", got)
	}
}
