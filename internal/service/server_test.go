package service

import (
	"context"
	"errors"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestServerMultiplyCacheHit is the serving layer's core promise: the first
// request for a structure compiles, a second request with the same structure
// but different values is a cache hit, returns the correct product, and —
// because rounds depend on structure only — reports the identical round
// count.
func TestServerMultiplyCacheHit(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4})
	ctx := context.Background()
	r := ring.Counting{}
	inst := workload.Blocks(32, 4)
	opts := core.Options{Ring: r}

	var resps [2]*MultiplyResponse
	for i := range resps {
		a := matrix.Random(inst.Ahat, r, int64(10*i+1))
		b := matrix.Random(inst.Bhat, r, int64(10*i+2))
		resp, err := srv.Multiply(ctx, &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(resp.X, want) {
			t.Fatalf("request %d: wrong product", i+1)
		}
		resps[i] = resp
	}
	if resps[0].CacheHit {
		t.Error("first request reported a cache hit")
	}
	if !resps[1].CacheHit {
		t.Error("second request (same structure, new values) missed the cache")
	}
	if resps[0].Fingerprint != resps[1].Fingerprint {
		t.Error("same structure produced different fingerprints")
	}
	if resps[0].Report.Rounds != resps[1].Report.Rounds {
		t.Errorf("rounds differ across executions of one plan: %d vs %d",
			resps[0].Report.Rounds, resps[1].Report.Rounds)
	}
	m := srv.Metrics()
	if m[MetricCacheHits] != 1 || m[MetricCacheMisses] != 1 || m[MetricServed] != 2 {
		t.Errorf("metrics = %v, want 1 hit / 1 miss / 2 served", m)
	}
}

// TestServerPrepareWarms checks that warming via /v1/prepare makes the first
// Multiply for that structure a hit, and that the trace flag yields a
// per-request profile.
func TestServerPrepareWarms(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4})
	ctx := context.Background()
	r := ring.Counting{}
	inst := workload.Blocks(32, 4)
	opts := core.Options{Ring: r}

	prep, err := srv.Prepare(ctx, &PrepareRequest{Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if prep.CacheHit {
		t.Error("first prepare reported a hit")
	}
	if !srv.Cache().Contains(prep.Fingerprint) {
		t.Fatal("prepare did not cache the plan")
	}

	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	resp, err := srv.Multiply(ctx, &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: opts, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("multiply after prepare missed the cache")
	}
	if resp.Fingerprint != prep.Fingerprint {
		t.Error("prepare and multiply disagree on the fingerprint")
	}
	if resp.Profile == nil {
		t.Error("Trace: true returned no profile")
	} else if resp.Profile.Rounds != resp.Report.Rounds {
		t.Errorf("profile rounds %d != report rounds %d", resp.Profile.Rounds, resp.Report.Rounds)
	}
}

// TestServerLoadShed fills the single worker and the admission queue, then
// checks the next request is shed with ErrOverloaded before any work, and
// that a queued request beyond its deadline times out.
func TestServerLoadShed(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 1, Deadline: time.Minute})
	ctx := context.Background()

	// Occupy the only worker.
	release, err := srv.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the queue with one waiter.
	waiterCtx, cancelWaiter := context.WithCancel(ctx)
	waiterDone := make(chan error, 1)
	go func() {
		rel, err := srv.admit(waiterCtx)
		if err == nil {
			rel()
		}
		waiterDone <- err
	}()
	waitFor(t, func() bool { return srv.queued.Load() == 1 })

	// Queue full: the public API sheds without touching the cache.
	inst := workload.Blocks(16, 4)
	_, err = srv.Classify(ctx, &ClassifyRequest{Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("classify with full queue: err = %v, want ErrOverloaded", err)
	}
	if m := srv.Metrics(); m[MetricShed] != 1 {
		t.Errorf("shed counter = %d, want 1", m[MetricShed])
	}

	// A queued waiter whose context ends leaves the queue with its error.
	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	if m := srv.Metrics(); m[MetricDeadlineExceeded] != 1 {
		t.Errorf("deadline counter = %d, want 1", m[MetricDeadlineExceeded])
	}

	// With the worker released, a short-deadline request that must queue
	// behind a held worker times out with DeadlineExceeded.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := srv.admit(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("short-deadline admit: err = %v, want DeadlineExceeded", err)
	}

	release()
	if rel, err := srv.admit(ctx); err != nil {
		t.Errorf("admit after release: %v", err)
	} else {
		rel()
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
