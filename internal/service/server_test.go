package service

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestServerMultiplyCacheHit is the serving layer's core promise: the first
// request for a structure compiles, a second request with the same structure
// but different values is a cache hit, returns the correct product, and —
// because rounds depend on structure only — reports the identical round
// count.
func TestServerMultiplyCacheHit(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4})
	ctx := context.Background()
	r := ring.Counting{}
	inst := workload.Blocks(32, 4)
	opts := core.Options{Ring: r}

	var resps [2]*MultiplyResponse
	for i := range resps {
		a := matrix.Random(inst.Ahat, r, int64(10*i+1))
		b := matrix.Random(inst.Bhat, r, int64(10*i+2))
		resp, err := srv.Multiply(ctx, &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: opts})
		if err != nil {
			t.Fatal(err)
		}
		if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(resp.X, want) {
			t.Fatalf("request %d: wrong product", i+1)
		}
		resps[i] = resp
	}
	if resps[0].CacheHit {
		t.Error("first request reported a cache hit")
	}
	if !resps[1].CacheHit {
		t.Error("second request (same structure, new values) missed the cache")
	}
	if resps[0].Fingerprint != resps[1].Fingerprint {
		t.Error("same structure produced different fingerprints")
	}
	if resps[0].Report.Rounds != resps[1].Report.Rounds {
		t.Errorf("rounds differ across executions of one plan: %d vs %d",
			resps[0].Report.Rounds, resps[1].Report.Rounds)
	}
	m := srv.Metrics()
	if m[MetricCacheHits] != 1 || m[MetricCacheMisses] != 1 || m[MetricServed] != 2 {
		t.Errorf("metrics = %v, want 1 hit / 1 miss / 2 served", m)
	}
}

// TestServerPrepareWarms checks that warming via /v1/prepare makes the first
// Multiply for that structure a hit, and that the trace flag yields a
// per-request profile.
func TestServerPrepareWarms(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4})
	ctx := context.Background()
	r := ring.Counting{}
	inst := workload.Blocks(32, 4)
	opts := core.Options{Ring: r}

	prep, err := srv.Prepare(ctx, &PrepareRequest{Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat, Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	if prep.CacheHit {
		t.Error("first prepare reported a hit")
	}
	if !srv.Cache().Contains(prep.Fingerprint) {
		t.Fatal("prepare did not cache the plan")
	}

	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	resp, err := srv.Multiply(ctx, &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: opts, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !resp.CacheHit {
		t.Error("multiply after prepare missed the cache")
	}
	if resp.Fingerprint != prep.Fingerprint {
		t.Error("prepare and multiply disagree on the fingerprint")
	}
	if resp.Profile == nil {
		t.Error("Trace: true returned no profile")
	} else if resp.Profile.Rounds != resp.Report.Rounds {
		t.Errorf("profile rounds %d != report rounds %d", resp.Profile.Rounds, resp.Report.Rounds)
	}
}

// TestServerLoadShed fills the single worker and the admission queue, then
// checks the next request is shed with ErrOverloaded before any work, and
// that a queued request beyond its deadline times out.
func TestServerLoadShed(t *testing.T) {
	srv := NewServer(Config{Workers: 1, QueueDepth: 1, Deadline: time.Minute})
	ctx := context.Background()

	// Occupy the only worker.
	release, err := srv.admit(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Fill the queue with one waiter.
	waiterCtx, cancelWaiter := context.WithCancel(ctx)
	waiterDone := make(chan error, 1)
	go func() {
		rel, err := srv.admit(waiterCtx)
		if err == nil {
			rel()
		}
		waiterDone <- err
	}()
	waitFor(t, func() bool { return srv.queued.Load() == 1 })

	// Queue full: the public API sheds without touching the cache.
	inst := workload.Blocks(16, 4)
	_, err = srv.Classify(ctx, &ClassifyRequest{Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat})
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("classify with full queue: err = %v, want ErrOverloaded", err)
	}
	if m := srv.Metrics(); m[MetricShed] != 1 {
		t.Errorf("shed counter = %d, want 1", m[MetricShed])
	}

	// A queued waiter whose caller hangs up is attributed to serve/canceled,
	// not serve/deadline_exceeded — the deadline never fired.
	cancelWaiter()
	if err := <-waiterDone; !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled waiter: err = %v, want context.Canceled", err)
	}
	if m := srv.Metrics(); m[MetricCanceled] != 1 || m[MetricDeadlineExceeded] != 0 {
		t.Errorf("canceled = %d deadline = %d, want 1 / 0",
			m[MetricCanceled], m[MetricDeadlineExceeded])
	}

	// With the worker released, a short-deadline request that must queue
	// behind a held worker times out with DeadlineExceeded.
	shortCtx, cancel := context.WithTimeout(ctx, 20*time.Millisecond)
	defer cancel()
	if _, err := srv.admit(shortCtx); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("short-deadline admit: err = %v, want DeadlineExceeded", err)
	}
	if m := srv.Metrics(); m[MetricDeadlineExceeded] != 1 || m[MetricCanceled] != 1 {
		t.Errorf("deadline = %d canceled = %d, want 1 / 1",
			m[MetricDeadlineExceeded], m[MetricCanceled])
	}

	release()
	if rel, err := srv.admit(ctx); err != nil {
		t.Errorf("admit after release: %v", err)
	} else {
		rel()
	}
}

// TestServerBurstOnIdleNotShed is the regression for shedding with free
// worker slots: admission may only count a request against QueueDepth after
// it fails to take a slot, so a burst of QueueDepth+1 requests on an idle
// server with enough workers is never shed.
func TestServerBurstOnIdleNotShed(t *testing.T) {
	srv := NewServer(Config{Workers: 4, QueueDepth: 1})
	ctx := context.Background()

	// The mechanism, deterministically: even with the waiter count racing
	// above the bound (simulated directly), a free slot admits immediately.
	srv.queued.Store(int64(srv.cfg.QueueDepth) + 3)
	rel, err := srv.admit(ctx)
	if err != nil {
		t.Fatalf("admit with free workers shed: %v", err)
	}
	rel()
	srv.queued.Store(0)

	// The scenario: a concurrent burst of Workers requests (> QueueDepth+1)
	// on an idle server must all be admitted.
	start := make(chan struct{})
	rels := make(chan func(), srv.cfg.Workers)
	errs := make(chan error, srv.cfg.Workers)
	for i := 0; i < srv.cfg.Workers; i++ {
		go func() {
			<-start
			rel, err := srv.admit(ctx)
			if err != nil {
				errs <- err
				return
			}
			rels <- rel
		}()
	}
	close(start)
	for i := 0; i < srv.cfg.Workers; i++ {
		select {
		case rel := <-rels:
			defer rel()
		case err := <-errs:
			t.Fatalf("burst request %d rejected on an idle server: %v", i, err)
		}
	}
	if m := srv.Metrics(); m[MetricShed] != 0 {
		t.Errorf("shed = %d on an idle burst, want 0", m[MetricShed])
	}
}

// TestServerAdmitMetricsHammer drives admit/release from many goroutines
// while concurrently scraping the metrics snapshot (the /metrics path) —
// run under -race this checks the gauges are published without data races,
// and afterwards both gauges must have settled to zero because they are set
// from the atomic results of the same operations they report.
func TestServerAdmitMetricsHammer(t *testing.T) {
	srv := NewServer(Config{Workers: 2, QueueDepth: 2, Deadline: time.Minute})
	ctx := context.Background()
	const (
		goroutines = 8
		laps       = 200
	)
	done := make(chan struct{})
	go func() { // concurrent scraper
		for {
			select {
			case <-done:
				return
			default:
				_ = srv.Metrics()
			}
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < laps; i++ {
				rel, err := srv.admit(ctx)
				if err != nil {
					if !errors.Is(err, ErrOverloaded) {
						t.Errorf("admit: %v", err)
						return
					}
					continue // shed under pressure is expected
				}
				rel()
			}
		}()
	}
	wg.Wait()
	close(done)
	m := srv.Metrics()
	if m[MetricQueueDepth] != 0 || m[MetricActiveWorkers] != 0 {
		t.Errorf("gauges did not settle: queue_depth=%d active=%d, want 0/0",
			m[MetricQueueDepth], m[MetricActiveWorkers])
	}
	if srv.queued.Load() != 0 || srv.active.Load() != 0 {
		t.Errorf("internal counters did not settle: queued=%d active=%d",
			srv.queued.Load(), srv.active.Load())
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in time")
		}
		time.Sleep(time.Millisecond)
	}
}
