package service

import (
	"context"
	"fmt"
	"time"
)

// MultiplySubmit is the streaming entry point: it validates, admits and
// plan-resolves the request like Multiply, but instead of parking the
// calling goroutine until the result is ready it registers deliver to be
// invoked exactly once with the outcome and returns. A non-nil return error
// means the request was rejected synchronously (validation, admission or
// plan failure) and deliver will never be called.
//
// deliver runs on the batch runner's goroutine (or, without a coalescer, on
// the execution goroutine): it must not block for long — the streaming
// session hands it a bounded outbox sized so that enqueueing a result can
// never stall a worker.
//
// Backpressure: Submit blocks in admission control exactly like Multiply —
// the caller's read loop stalls when every worker slot is busy and the
// queue is full of waiters, which is the natural pipelining limit. The slot
// is released as soon as the lane is parked (batched mode) or execution
// ends (scalar mode); k coalesced lanes still cost one worker.
func (s *Server) MultiplySubmit(ctx context.Context, req *MultiplyRequest, deliver func(*MultiplyResponse, error)) error {
	if deliver == nil {
		return fmt.Errorf("%w: submit needs a deliver callback", ErrInvalid)
	}
	if req.A == nil || req.B == nil || req.Xhat == nil {
		return fmt.Errorf("%w: multiply needs A, B and Xhat", ErrInvalid)
	}
	if n := req.A.Support().N; n != req.B.Support().N || n != req.Xhat.N {
		return fmt.Errorf("%w: dimension mismatch %d/%d/%d",
			ErrInvalid, n, req.B.Support().N, req.Xhat.N)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return err
	}
	prep, fp, hit, err := s.prepared(req.A.Support(), req.B.Support(), req.Xhat, req.Options)
	if err != nil {
		release()
		s.metrics.Add(MetricErrors, 1)
		return err
	}
	if s.coal != nil {
		lane := &batchLane{
			prep:     prep,
			a:        req.A,
			b:        req.B,
			trace:    req.Trace,
			enqueued: time.Now(),
			fp:       fp,
			hit:      hit,
			deliver:  deliver,
		}
		err := s.coal.Submit(fp, lane)
		release()
		if err != nil {
			s.metrics.Add(MetricShed, 1)
			return ErrOverloaded
		}
		return nil
	}
	// No coalescer: execute on a fresh goroutine holding the admitted slot.
	// The goroutine is doing the multiply, not parked waiting on one — the
	// session's read loop stays free to pipeline the next submit.
	go func() {
		defer release()
		x, rep, err := s.execute(prep, req.A, req.B, req.Trace)
		if err != nil {
			s.metrics.Add(MetricErrors, 1)
			deliver(nil, err)
			return
		}
		resp := &MultiplyResponse{X: x, Report: rep, Fingerprint: fp, CacheHit: hit}
		if req.Trace && rep.Profile != nil {
			resp.Profile = rep.Profile.Export()
		}
		s.metrics.Add(MetricServed, 1)
		deliver(resp, nil)
	}()
	return nil
}
