package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
)

// maxWireN bounds the declared dimension of HTTP requests: supports
// allocate O(n) row slices before any entry is read, so an unauthenticated
// request must not pick n freely.
const maxWireN = 1 << 20

// wireEntry is one value cell [i, j, value]; wirePos one support position
// [i, j]. Indices are written as JSON numbers and must be integers in
// [0, n).
type (
	wireEntry = [3]float64
	wirePos   = [2]int
)

// wireMultiplyRequest is the body of POST /v1/multiply.
type wireMultiplyRequest struct {
	N         int         `json:"n"`
	Ring      string      `json:"ring,omitempty"`      // boolean|counting|minplus|maxplus|gfp|real (default real)
	Algorithm string      `json:"algorithm,omitempty"` // auto|theorem42|lemma31 (default auto)
	D         int         `json:"d,omitempty"`
	A         []wireEntry `json:"a"`
	B         []wireEntry `json:"b"`
	Xhat      []wirePos   `json:"xhat"`
	Trace     bool        `json:"trace,omitempty"`
}

// wireMultiplyReport is the how-it-was-served block shared by the scalar
// and batched multiply responses (embedded, so its fields flatten into the
// enclosing JSON object).
type wireMultiplyReport struct {
	Rounds       int          `json:"rounds"`
	Phase1Rounds int          `json:"phase1_rounds"`
	Phase2Rounds int          `json:"phase2_rounds"`
	Messages     int64        `json:"messages"`
	PeakStore    int          `json:"peak_store"`
	Algorithm    string       `json:"algorithm"`
	Classes      [3]string    `json:"classes"`
	Band         string       `json:"band"`
	D            int          `json:"d"`
	Fingerprint  string       `json:"fingerprint"`
	Cache        string       `json:"cache"` // "hit" or "miss"
	Profile      *obsv.Export `json:"profile,omitempty"`
}

// wireMultiplyResponse is the body of a successful /v1/multiply.
type wireMultiplyResponse struct {
	X []wireEntry `json:"x"`
	wireMultiplyReport
}

// wireBatchLane is one value set of POST /v1/multiply/batch.
type wireBatchLane struct {
	A []wireEntry `json:"a"`
	B []wireEntry `json:"b"`
}

// wireMultiplyBatchRequest is the body of POST /v1/multiply/batch: k value
// sets over one shared sparsity structure, multiplied as a single batched
// run.
type wireMultiplyBatchRequest struct {
	N         int             `json:"n"`
	Ring      string          `json:"ring,omitempty"`
	Algorithm string          `json:"algorithm,omitempty"`
	D         int             `json:"d,omitempty"`
	Lanes     []wireBatchLane `json:"lanes"`
	Xhat      []wirePos       `json:"xhat"`
	Trace     bool            `json:"trace,omitempty"`
}

// wireMultiplyBatchResponse is the body of a successful batch multiply:
// per-lane products plus the shared batch report (rounds, messages etc.
// were paid once for the whole batch).
type wireMultiplyBatchResponse struct {
	Lanes      [][]wireEntry `json:"lanes"`
	BatchLanes int           `json:"batch_lanes"`
	wireMultiplyReport
}

// multiplyReportWire assembles the report/trace block of a multiply
// response — the per-request setup the scalar and batched handlers share.
func multiplyReportWire(rep *core.Report, fp string, hit bool, profile *obsv.Export) wireMultiplyReport {
	return wireMultiplyReport{
		Rounds:       rep.Rounds,
		Phase1Rounds: rep.Phase1Rounds,
		Phase2Rounds: rep.Phase2Rounds,
		Messages:     rep.Stats.Messages,
		PeakStore:    rep.Stats.PeakStore,
		Algorithm:    rep.Name,
		Classes:      classNames(rep.Classes),
		Band:         rep.Band.String(),
		D:            rep.D,
		Fingerprint:  fp,
		Cache:        cacheWord(hit),
		Profile:      profile,
	}
}

// wirePrepareRequest is the body of POST /v1/prepare.
type wirePrepareRequest struct {
	N         int       `json:"n"`
	Ring      string    `json:"ring,omitempty"`
	Algorithm string    `json:"algorithm,omitempty"`
	D         int       `json:"d,omitempty"`
	Ahat      []wirePos `json:"ahat"`
	Bhat      []wirePos `json:"bhat"`
	Xhat      []wirePos `json:"xhat"`
}

type wirePrepareResponse struct {
	Fingerprint string    `json:"fingerprint"`
	Cache       string    `json:"cache"`
	Classes     [3]string `json:"classes"`
	Band        string    `json:"band"`
	D           int       `json:"d"`
}

// wireClassifyRequest is the body of POST /v1/classify.
type wireClassifyRequest struct {
	N    int       `json:"n"`
	D    int       `json:"d,omitempty"`
	Ahat []wirePos `json:"ahat"`
	Bhat []wirePos `json:"bhat"`
	Xhat []wirePos `json:"xhat"`
}

type wireClassifyResponse struct {
	Classes [3]string `json:"classes"`
	Band    string    `json:"band"`
	D       int       `json:"d"`
	Upper   string    `json:"upper"`
	Lower   string    `json:"lower"`
}

type wireError struct {
	Error string `json:"error"`
}

// NewHandler mounts the serving API onto a fresh mux:
//
//	POST /v1/multiply        multiply values through the plan cache
//	POST /v1/multiply/batch  multiply k same-structure value sets as one batch
//	POST /v1/prepare         warm the cache for a structure
//	POST /v1/classify        Table 2 classification of a structure
//	GET  /healthz            liveness
//	GET  /metrics            JSON snapshot of every service counter
func NewHandler(s *Server) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/multiply", func(w http.ResponseWriter, r *http.Request) {
		handleMultiply(s, w, r)
	})
	mux.HandleFunc("POST /v1/multiply/batch", func(w http.ResponseWriter, r *http.Request) {
		handleMultiplyBatch(s, w, r)
	})
	mux.HandleFunc("POST /v1/prepare", func(w http.ResponseWriter, r *http.Request) {
		handlePrepare(s, w, r)
	})
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		handleClassify(s, w, r)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok"})
	})
	mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Metrics())
	})
	return mux
}

func handleMultiply(s *Server, w http.ResponseWriter, r *http.Request) {
	var req wireMultiplyRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ringSR, err := resolveRing(req.Ring)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	a, err := buildSparse(req.N, ringSR, req.A, "a")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	b, err := buildSparse(req.N, ringSR, req.B, "b")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	xhat, err := buildSupport(req.N, req.Xhat, "xhat")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Multiply(r.Context(), &MultiplyRequest{
		A: a, B: b, Xhat: xhat,
		Options: core.Options{Ring: ringSR, D: req.D, Algorithm: req.Algorithm},
		Trace:   req.Trace,
	})
	if err != nil {
		writeServeErr(w, err)
		return
	}
	out := &wireMultiplyResponse{
		X:                  sparseEntries(resp.X),
		wireMultiplyReport: multiplyReportWire(resp.Report, resp.Fingerprint, resp.CacheHit, resp.Profile),
	}
	writeJSON(w, http.StatusOK, out)
}

func handleMultiplyBatch(s *Server, w http.ResponseWriter, r *http.Request) {
	var req wireMultiplyBatchRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ringSR, err := resolveRing(req.Ring)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	lanes := make([]BatchLane, len(req.Lanes))
	for l, wl := range req.Lanes {
		a, err := buildSparse(req.N, ringSR, wl.A, fmt.Sprintf("lanes[%d].a", l))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		b, err := buildSparse(req.N, ringSR, wl.B, fmt.Sprintf("lanes[%d].b", l))
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		lanes[l] = BatchLane{A: a, B: b}
	}
	xhat, err := buildSupport(req.N, req.Xhat, "xhat")
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.MultiplyBatch(r.Context(), &MultiplyBatchRequest{
		Lanes: lanes, Xhat: xhat,
		Options: core.Options{Ring: ringSR, D: req.D, Algorithm: req.Algorithm},
		Trace:   req.Trace,
	})
	if err != nil {
		writeServeErr(w, err)
		return
	}
	out := &wireMultiplyBatchResponse{
		Lanes:              make([][]wireEntry, len(resp.X)),
		BatchLanes:         len(resp.X),
		wireMultiplyReport: multiplyReportWire(resp.Report, resp.Fingerprint, resp.CacheHit, resp.Profile),
	}
	for l, x := range resp.X {
		out.Lanes[l] = sparseEntries(x)
	}
	writeJSON(w, http.StatusOK, out)
}

func handlePrepare(s *Server, w http.ResponseWriter, r *http.Request) {
	var req wirePrepareRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	ringSR, err := resolveRing(req.Ring)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	supports, err := buildSupports(req.N, req.Ahat, req.Bhat, req.Xhat)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Prepare(r.Context(), &PrepareRequest{
		Ahat: supports[0], Bhat: supports[1], Xhat: supports[2],
		Options: core.Options{Ring: ringSR, D: req.D, Algorithm: req.Algorithm},
	})
	if err != nil {
		writeServeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &wirePrepareResponse{
		Fingerprint: resp.Fingerprint,
		Cache:       cacheWord(resp.CacheHit),
		Classes:     classNames(resp.Classes),
		Band:        resp.Band.String(),
		D:           resp.D,
	})
}

func handleClassify(s *Server, w http.ResponseWriter, r *http.Request) {
	var req wireClassifyRequest
	if err := decodeBody(r, &req); err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	supports, err := buildSupports(req.N, req.Ahat, req.Bhat, req.Xhat)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	resp, err := s.Classify(r.Context(), &ClassifyRequest{
		Ahat: supports[0], Bhat: supports[1], Xhat: supports[2], D: req.D,
	})
	if err != nil {
		writeServeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, &wireClassifyResponse{
		Classes: classNames(resp.Classes),
		Band:    resp.Band.String(),
		D:       resp.D,
		Upper:   resp.Upper,
		Lower:   resp.Lower,
	})
}

// ---------------------------------------------------------------------------
// wire helpers

func decodeBody(r *http.Request, into any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

func resolveRing(name string) (ring.Semiring, error) {
	if name == "" {
		name = "real"
	}
	return matrix.RingByName(name)
}

func checkN(n int) error {
	if n < 1 || n > maxWireN {
		return fmt.Errorf("n must be in [1, %d], got %d", maxWireN, n)
	}
	return nil
}

func buildSparse(n int, r ring.Semiring, entries []wireEntry, what string) (*matrix.Sparse, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	m := matrix.NewSparse(n, r)
	for _, e := range entries {
		i, j := int(e[0]), int(e[1])
		if float64(i) != e[0] || float64(j) != e[1] || i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("%s: entry (%g,%g) is not a valid index pair for n=%d", what, e[0], e[1], n)
		}
		m.Set(i, j, e[2])
	}
	return m, nil
}

func buildSupport(n int, positions []wirePos, what string) (*matrix.Support, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	for _, p := range positions {
		if p[0] < 0 || p[0] >= n || p[1] < 0 || p[1] >= n {
			return nil, fmt.Errorf("%s: position (%d,%d) out of range for n=%d", what, p[0], p[1], n)
		}
	}
	return matrix.NewSupport(n, positions), nil
}

func buildSupports(n int, ahat, bhat, xhat []wirePos) ([3]*matrix.Support, error) {
	var out [3]*matrix.Support
	for idx, in := range []struct {
		pos  []wirePos
		what string
	}{{ahat, "ahat"}, {bhat, "bhat"}, {xhat, "xhat"}} {
		s, err := buildSupport(n, in.pos, in.what)
		if err != nil {
			return out, err
		}
		out[idx] = s
	}
	return out, nil
}

func sparseEntries(m *matrix.Sparse) []wireEntry {
	out := make([]wireEntry, 0, m.NNZ())
	for i, row := range m.Rows {
		for _, c := range row {
			out = append(out, wireEntry{float64(i), float64(c.Col), c.Val})
		}
	}
	return out
}

func classNames(cs [3]matrix.Class) [3]string {
	return [3]string{cs[0].String(), cs[1].String(), cs[2].String()}
}

func cacheWord(hit bool) string {
	if hit {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeErr(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, wireError{Error: err.Error()})
}

// statusClientClosedRequest is the (nginx-conventional) status for a
// request whose caller hung up while it waited for admission; Go's net/http
// has no named constant for it.
const statusClientClosedRequest = 499

// writeServeErr maps server-side errors to status codes — the error
// taxonomy of docs/SERVICE.md: invalid requests are 400 (retrying unchanged
// cannot succeed), load shedding 503 (retryable), deadline expiry 504,
// caller cancellation 499, a network fault that survived the retry and
// fallback policy 500 with its round/node provenance in the body, anything
// else 500.
func writeServeErr(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, ErrInvalid):
		writeErr(w, http.StatusBadRequest, err)
	case errors.Is(err, ErrOverloaded):
		// Shed means "come back, just not immediately": a Retry-After turns
		// client retry storms into backoff instead of hammering.
		w.Header().Set("Retry-After", "1")
		writeErr(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded):
		writeErr(w, http.StatusGatewayTimeout, err)
	case errors.Is(err, context.Canceled):
		writeErr(w, statusClientClosedRequest, err)
	default:
		writeErr(w, http.StatusInternalServerError, err)
	}
}
