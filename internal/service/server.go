package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"lbmm/internal/algo"
	"lbmm/internal/batch"
	"lbmm/internal/control"
	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/planstore"
)

// ErrOverloaded is returned (and mapped to HTTP 503) when the server sheds
// a request because the admission queue is full. Callers should back off
// and retry; the request was rejected before any work happened.
var ErrOverloaded = errors.New("service: overloaded, request shed")

// ErrInvalid is wrapped by every request-validation failure (and mapped to
// HTTP 400): malformed requests are the caller's fault, not the server's,
// and retrying them unchanged cannot succeed.
var ErrInvalid = errors.New("service: invalid request")

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// CacheSize bounds the number of prepared plans kept (default 128).
	CacheSize int
	// CacheBytes additionally bounds the total compiled size of the cached
	// plans (Prepared.CompiledBytes); 0 disables the byte bound.
	CacheBytes int64
	// Workers bounds concurrent plan executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// before new ones are shed with ErrOverloaded (default 4×Workers).
	QueueDepth int
	// Deadline caps a request's total time in the server — queue wait plus
	// a pre-execution check — when the caller's context carries no earlier
	// deadline (default 30s). Plan execution itself is not preempted; the
	// deadline is admission control, not a watchdog.
	Deadline time.Duration
	// FaultBudget is how many times an execution that fails with a typed
	// network fault (lbm.ErrFault) is retried on the compiled engine before
	// the request degrades to the map engine (default 1; negative disables
	// retries). Non-fault errors are never retried.
	FaultBudget int
	// FaultInjector, when non-nil, supplies the fault injector for each
	// execution attempt — the hook chaos drills use to exercise the retry
	// and fallback paths on a live server. engine is "compiled" or "map";
	// attempt counts from zero across one request. A nil return runs that
	// attempt on a perfect network.
	FaultInjector func(engine string, attempt int) lbm.Injector
	// BatchSize enables dynamic batching when > 1: /v1/multiply requests
	// sharing one plan fingerprint coalesce into lanes of a single batched
	// run, at most BatchSize lanes per run (default 0: batching off).
	BatchSize int
	// BatchDelay bounds how long a request waits for lane-mates before its
	// batch launches anyway (default 2ms when batching is on). Negative
	// values are rejected by Validate — silently clamping would turn an
	// operator typo into batching being quietly disabled.
	BatchDelay time.Duration
	// BatchAdaptive replaces the static BatchSize/BatchDelay launch policy
	// with the per-fingerprint controller (internal/control): BatchSize
	// becomes the lane cap a hot fingerprint grows toward and BatchDelay the
	// window ceiling, while cold fingerprints launch immediately and delay
	// is shed under light load. Implies batching: a zero BatchSize defaults
	// to 16 lanes. Decisions are exported as control/* counters on Metrics.
	BatchAdaptive bool
	// Metrics receives the service counters; a fresh set when nil.
	Metrics *obsv.CounterSet
	// Store, when non-nil, adds a persistent second cache tier behind the
	// in-memory one: on a memory miss the fingerprint is looked up in the
	// store, and a decoded entry is re-registered without recompiling; only
	// a miss in both tiers compiles (counted as serve/compiles), with the
	// fresh plan written back asynchronously. Open it over the same metrics
	// set so the store/* counters land beside the serve/* ones.
	Store *planstore.Store
}

// Validate rejects configurations that are contradictions rather than
// omissions (omitted knobs get defaults; nonsense knobs get errors).
// NewServer panics on an invalid config — call Validate first when the
// values come from flags or the environment.
func (c Config) Validate() error {
	if c.BatchDelay < 0 {
		return fmt.Errorf("service: batch delay must be >= 0, got %s", c.BatchDelay)
	}
	if c.BatchSize < 0 {
		return fmt.Errorf("service: batch size must be >= 0, got %d", c.BatchSize)
	}
	if c.CacheBytes < 0 {
		return fmt.Errorf("service: cache byte bound must be >= 0 (0 disables it), got %d", c.CacheBytes)
	}
	return nil
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.FaultBudget == 0 {
		c.FaultBudget = 1
	} else if c.FaultBudget < 0 {
		c.FaultBudget = 0
	}
	if c.BatchAdaptive && c.BatchSize <= 1 {
		c.BatchSize = 16
	}
	if c.BatchSize > 1 && c.BatchDelay == 0 {
		c.BatchDelay = 2 * time.Millisecond
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewCounterSet()
	}
	return c
}

// Counter names published by the server.
const (
	MetricRequests         = "serve/requests"
	MetricServed           = "serve/served"
	MetricShed             = "serve/shed"
	MetricDeadlineExceeded = "serve/deadline_exceeded"
	MetricCanceled         = "serve/canceled"
	MetricErrors           = "serve/errors"
	MetricFaults           = "serve/faults"
	MetricRetries          = "serve/retries"
	MetricFallbacks        = "serve/fallbacks"
	MetricQueueDepth       = "serve/queue_depth" // gauge
	MetricActiveWorkers    = "serve/active"      // gauge
	// MetricCompiles counts plans compiled from structure — misses of every
	// cache tier. A warm restart against a populated store serves its whole
	// working set with this counter at zero.
	MetricCompiles = "serve/compiles"

	// Batching metrics (docs/SERVICE.md "Batching"). MetricBatchSize is a
	// histogram prefix: the counter set carries batch/size/le_N cumulative
	// buckets plus batch/size/count and batch/size/sum.
	MetricBatchSize   = "batch/size"
	MetricBatchLanes  = "batch/lanes"   // gauge: lanes executing right now
	MetricBatchWaitNs = "batch/wait_ns" // total ns lanes spent waiting to launch
	MetricBatchLaunch = "batch/launch_" // + reason: full|timeout|immediate|flush|shrink

	// MetricGoroutines is a scrape-time gauge of the process goroutine
	// count — the streaming soak drill asserts it stays bounded while
	// hundreds of lanes are in flight (no per-request parking).
	MetricGoroutines = "go/goroutines"
)

// Server serves multiplications from a prepared-plan cache behind a bounded
// worker pool. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *obsv.CounterSet
	workers chan struct{}
	queued  atomic.Int64
	active  atomic.Int64

	// Dynamic batching (nil coalescer when BatchSize <= 1): requests park
	// in the coalescer keyed by plan fingerprint; runBatch executes each
	// launched group on one worker slot and fans results back per lane.
	// ctrl is non-nil only under BatchAdaptive: it decides each key's
	// launch policy and is fed every launch outcome.
	coal      *batch.Coalescer[*batchLane]
	ctrl      *control.Controller
	batchHist *obsv.Histogram
	laneCount atomic.Int64

	// storeWG tracks asynchronous plan-store write-backs so Close can drain
	// them: a server shutting down right after compiling must not lose the
	// write that would make the next process start warm.
	storeWG sync.WaitGroup
}

// NewServer builds a server from the config. It panics if the config fails
// Validate — call Validate first for flag- or environment-sourced values.
func NewServer(cfg Config) *Server {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCacheBytes(cfg.CacheSize, cfg.CacheBytes, cfg.Metrics),
		metrics: cfg.Metrics,
		workers: make(chan struct{}, cfg.Workers),
	}
	s.batchHist = obsv.NewHistogram(cfg.Metrics, MetricBatchSize, []int64{1, 2, 4, 8, 16, 32, 64})
	if cfg.BatchSize > 1 {
		bcfg := batch.Config{
			MaxBatch: cfg.BatchSize,
			MaxDelay: cfg.BatchDelay,
		}
		if cfg.BatchAdaptive {
			s.ctrl = control.New(control.Config{
				MaxBatch: cfg.BatchSize,
				MaxDelay: cfg.BatchDelay,
				Metrics:  cfg.Metrics,
			})
			bcfg.Decide = s.ctrl.Decide
		}
		s.coal = batch.New[*batchLane](bcfg, s.runBatch)
	}
	return s
}

// Close drains the server's background work: pending batch groups launch
// immediately, in-flight batches finish, later batched requests are shed,
// and every asynchronous plan-store write-back completes. A server without
// batching or a store has nothing to drain.
func (s *Server) Close() {
	if s.coal != nil {
		s.coal.Close()
	}
	s.storeWG.Wait()
}

// Cache exposes the server's plan cache (read-mostly introspection).
func (s *Server) Cache() *Cache { return s.cache }

// Metrics returns a snapshot of every service counter. The queue-depth and
// active-worker gauges are overlaid from the live atomics at scrape time:
// the in-flight Sets are best-effort (a delayed write can land out of
// order), but a scrape always publishes the current values.
func (s *Server) Metrics() map[string]int64 {
	m := s.metrics.Snapshot()
	m[MetricQueueDepth] = s.queued.Load()
	m[MetricActiveWorkers] = s.active.Load()
	m[MetricGoroutines] = int64(runtime.NumGoroutine())
	return m
}

// Config returns the resolved (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// admit applies admission control: a request that can take a worker slot
// immediately is admitted without ever counting as a waiter; otherwise it
// joins the bounded queue and blocks until a slot frees or its context
// expires. Only genuine waiters count against QueueDepth, so a burst on an
// idle server is never shed while slots are free. On success the returned
// release function must be called when the request finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	s.metrics.Add(MetricRequests, 1)
	select {
	case s.workers <- struct{}{}:
		s.metrics.Set(MetricActiveWorkers, s.active.Add(1))
		return s.release, nil
	default:
	}
	// All workers are busy: this request is a waiter. Gauges are set from
	// the atomic result of the same Add, not a separate Load, so concurrent
	// admissions cannot publish a stale depth over a fresher one.
	q := s.queued.Add(1)
	if q > int64(s.cfg.QueueDepth) {
		s.metrics.Set(MetricQueueDepth, s.queued.Add(-1))
		s.metrics.Add(MetricShed, 1)
		return nil, ErrOverloaded
	}
	s.metrics.Set(MetricQueueDepth, q)
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	select {
	case s.workers <- struct{}{}:
		s.metrics.Set(MetricQueueDepth, s.queued.Add(-1))
		s.metrics.Set(MetricActiveWorkers, s.active.Add(1))
		return s.release, nil
	case <-ctx.Done():
		s.metrics.Set(MetricQueueDepth, s.queued.Add(-1))
		if errors.Is(ctx.Err(), context.Canceled) {
			s.metrics.Add(MetricCanceled, 1)
		} else {
			s.metrics.Add(MetricDeadlineExceeded, 1)
		}
		return nil, ctx.Err()
	}
}

// release returns a worker slot taken by admit.
func (s *Server) release() {
	<-s.workers
	s.metrics.Set(MetricActiveWorkers, s.active.Add(-1))
}

// prepared resolves the plan for the given supports and options through the
// cache tiers — in-memory first, then the persistent store, compiling from
// structure only when both miss — returning the plan, its fingerprint, and
// whether it was served without compiling (either tier hit).
//
// The in-memory tier's singleflight covers both lower tiers: concurrent
// requests for one fingerprint share a single store read or compile. A
// fresh compile is written back to the store asynchronously (the request
// does not wait on disk); Close drains those writes. Store read errors are
// deliberately not fatal — a damaged or cross-version entry was already
// quarantined by the store, and the request falls through to a compile
// exactly as if the tier had missed.
func (s *Server) prepared(ahat, bhat, xhat *matrix.Support, opts core.Options) (*core.Prepared, string, bool, error) {
	// The serving layer always runs the default (compiled) engine; the
	// fingerprint is engine-agnostic, so a cached plan must not inherit an
	// engine override from whichever request compiled it first.
	opts.Engine = ""
	fp, err := core.Fingerprint(ahat, bhat, xhat, opts)
	if err != nil {
		return nil, "", false, err
	}
	storeHit := false
	prep, hit, err := s.cache.Get(fp, func() (*core.Prepared, error) {
		if s.cfg.Store != nil {
			if p, err := s.cfg.Store.Get(fp); err == nil {
				storeHit = true
				return p, nil
			}
		}
		s.metrics.Add(MetricCompiles, 1)
		p, err := core.Prepare(ahat, bhat, xhat, opts)
		if err == nil && s.cfg.Store != nil {
			s.storeWG.Add(1)
			go func() {
				defer s.storeWG.Done()
				// Best-effort: a failed write-back costs the next process a
				// recompile, nothing else.
				_ = s.cfg.Store.Put(fp, p)
			}()
		}
		return p, err
	})
	if err != nil {
		return nil, fp, false, err
	}
	return prep, fp, hit || storeHit, nil
}

// MultiplyRequest is one serving-layer multiplication: values A and B, the
// output support of interest, and the plan options. The sparsity structure
// of the request is (A.Support(), B.Support(), Xhat) — two requests share a
// cached plan exactly when those structures, the ring, the algorithm and
// the resolved d coincide.
type MultiplyRequest struct {
	A, B *matrix.Sparse
	Xhat *matrix.Support
	// Options: Ring, D and Algorithm select the plan as in core.Prepare
	// ("auto", "theorem42" or "lemma31"; the execution-engine and
	// verification fields are ignored by the serving layer).
	Options core.Options
	// Trace records a per-request execution profile into the response.
	Trace bool
}

// MultiplyResponse carries the product and how it was served.
type MultiplyResponse struct {
	X           *matrix.Sparse
	Report      *core.Report
	Fingerprint string
	// CacheHit reports whether a ready prepared plan existed on arrival.
	CacheHit bool
	// Profile is the lbmm.trace.v1 export of this execution when Trace was
	// requested.
	Profile *obsv.Export
}

// runFaultPolicy drives one request (scalar or batched) through the
// server's fault policy: up to FaultBudget retries on the compiled engine
// when an attempt fails with a typed network fault (counted as
// serve/retries), then one graceful degradation onto the map engine
// (counted as serve/fallbacks). Non-fault errors return immediately; a
// fault surviving even the fallback surfaces to the caller with its
// provenance intact. run performs one attempt with the given options.
func (s *Server) runFaultPolicy(trace bool, run func(core.ExecOpts) error) error {
	attempt := 0
	inject := func(engine string) lbm.Injector {
		if s.cfg.FaultInjector == nil {
			return nil
		}
		inj := s.cfg.FaultInjector(engine, attempt)
		attempt++
		return inj
	}
	var err error
	for try := 0; try <= s.cfg.FaultBudget; try++ {
		err = run(core.ExecOpts{
			Trace:    trace,
			Engine:   string(algo.EngineCompiled),
			Injector: inject(string(algo.EngineCompiled)),
		})
		if err == nil {
			return nil
		}
		if !lbm.IsFault(err) {
			return err
		}
		s.metrics.Add(MetricFaults, 1)
		if try < s.cfg.FaultBudget {
			s.metrics.Add(MetricRetries, 1)
		}
	}
	s.metrics.Add(MetricFallbacks, 1)
	faultErr := err
	err = run(core.ExecOpts{
		Trace:    trace,
		Engine:   string(algo.EngineMap),
		Injector: inject(string(algo.EngineMap)),
	})
	if errors.Is(err, algo.ErrNoMapForm) {
		// The plan was restored from the persistent store, which carries
		// only the compiled form — there is no map engine to degrade to.
		// Surface the compiled fault with its provenance rather than the
		// capability error: the caller's remedy (retry the request) is the
		// same, and the fault is what actually happened.
		return faultErr
	}
	if err != nil && lbm.IsFault(err) {
		s.metrics.Add(MetricFaults, 1)
	}
	return err
}

// execute runs a prepared plan on one value set under the fault policy.
func (s *Server) execute(prep *core.Prepared, a, b *matrix.Sparse, trace bool) (*matrix.Sparse, *core.Report, error) {
	var x *matrix.Sparse
	var rep *core.Report
	err := s.runFaultPolicy(trace, func(opts core.ExecOpts) error {
		var attemptErr error
		x, rep, attemptErr = prep.MultiplyOpts(a, b, opts)
		return attemptErr
	})
	if err != nil {
		return nil, nil, err
	}
	return x, rep, nil
}

// executeBatch runs a prepared plan on k value sets as one batched run
// under the same fault policy. A fault fails (and retries, and finally
// degrades) the whole batch: lanes share every round, so there is no
// per-lane partial success — the caller fans the one outcome out to every
// lane.
func (s *Server) executeBatch(prep *core.Prepared, as, bs []*matrix.Sparse, trace bool) ([]*matrix.Sparse, *core.Report, error) {
	var outs []*matrix.Sparse
	var rep *core.Report
	err := s.runFaultPolicy(trace, func(opts core.ExecOpts) error {
		var attemptErr error
		outs, rep, attemptErr = prep.MultiplyBatch(as, bs, opts)
		return attemptErr
	})
	if err != nil {
		return nil, nil, err
	}
	return outs, rep, nil
}

// Multiply serves one multiplication: admission control, plan-cache lookup
// (compiling on a miss), then execution of the prepared plan against the
// request's values under the fault policy.
func (s *Server) Multiply(ctx context.Context, req *MultiplyRequest) (*MultiplyResponse, error) {
	if req.A == nil || req.B == nil || req.Xhat == nil {
		return nil, fmt.Errorf("%w: multiply needs A, B and Xhat", ErrInvalid)
	}
	if n := req.A.Support().N; n != req.B.Support().N || n != req.Xhat.N {
		return nil, fmt.Errorf("%w: dimension mismatch %d/%d/%d",
			ErrInvalid, n, req.B.Support().N, req.Xhat.N)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	prep, fp, hit, err := s.prepared(req.A.Support(), req.B.Support(), req.Xhat, req.Options)
	if err != nil {
		release()
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	if s.coal != nil {
		return s.multiplyCoalesced(ctx, req, prep, fp, hit, release)
	}
	defer release()
	x, rep, err := s.execute(prep, req.A, req.B, req.Trace)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	resp := &MultiplyResponse{X: x, Report: rep, Fingerprint: fp, CacheHit: hit}
	if req.Trace && rep.Profile != nil {
		resp.Profile = rep.Profile.Export()
	}
	s.metrics.Add(MetricServed, 1)
	return resp, nil
}

// PrepareRequest warms the cache for an explicit structure (no values).
type PrepareRequest struct {
	Ahat, Bhat, Xhat *matrix.Support
	Options          core.Options
}

// PrepareResponse reports the cached plan's identity and classification.
type PrepareResponse struct {
	Fingerprint string
	CacheHit    bool
	Classes     [3]matrix.Class
	Band        core.Band
	D           int
}

// Prepare compiles (or finds) the plan for a structure so later Multiply
// calls with matching values start hot.
func (s *Server) Prepare(ctx context.Context, req *PrepareRequest) (*PrepareResponse, error) {
	if req.Ahat == nil || req.Bhat == nil || req.Xhat == nil {
		return nil, fmt.Errorf("%w: prepare needs Ahat, Bhat and Xhat", ErrInvalid)
	}
	if req.Ahat.N != req.Bhat.N || req.Ahat.N != req.Xhat.N {
		return nil, fmt.Errorf("%w: dimension mismatch %d/%d/%d",
			ErrInvalid, req.Ahat.N, req.Bhat.N, req.Xhat.N)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	prep, fp, hit, err := s.prepared(req.Ahat, req.Bhat, req.Xhat, req.Options)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	s.metrics.Add(MetricServed, 1)
	return &PrepareResponse{
		Fingerprint: fp, CacheHit: hit,
		Classes: prep.Classes, Band: prep.Band, D: prep.D,
	}, nil
}

// ClassifyRequest asks for the Table 2 classification of a structure.
type ClassifyRequest struct {
	Ahat, Bhat, Xhat *matrix.Support
	D                int
}

// ClassifyResponse is the classification with its Table 2 bounds.
type ClassifyResponse struct {
	Classes      [3]matrix.Class
	Band         core.Band
	D            int
	Upper, Lower string
}

// Classify runs the classification engine. It goes through admission
// control like every other request: class predicates (degeneracy orders in
// particular) are support-sized work, not constant-time.
func (s *Server) Classify(ctx context.Context, req *ClassifyRequest) (*ClassifyResponse, error) {
	if req.Ahat == nil || req.Bhat == nil || req.Xhat == nil {
		return nil, fmt.Errorf("%w: classify needs Ahat, Bhat and Xhat", ErrInvalid)
	}
	if req.Ahat.N != req.Bhat.N || req.Ahat.N != req.Xhat.N {
		return nil, fmt.Errorf("%w: dimension mismatch %d/%d/%d",
			ErrInvalid, req.Ahat.N, req.Bhat.N, req.Xhat.N)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	d := core.ResolveD(req.D, req.Ahat, req.Bhat, req.Xhat)
	var classes [3]matrix.Class
	classes[0] = req.Ahat.Classify(d)
	classes[1] = req.Bhat.Classify(d)
	classes[2] = req.Xhat.Classify(d)
	band := core.Classify(classes[0], classes[1], classes[2])
	up, lo := band.Bounds()
	s.metrics.Add(MetricServed, 1)
	return &ClassifyResponse{Classes: classes, Band: band, D: d, Upper: up, Lower: lo}, nil
}
