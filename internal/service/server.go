package service

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
)

// ErrOverloaded is returned (and mapped to HTTP 503) when the server sheds
// a request because the admission queue is full. Callers should back off
// and retry; the request was rejected before any work happened.
var ErrOverloaded = errors.New("service: overloaded, request shed")

// Config tunes a Server. The zero value gets sensible defaults.
type Config struct {
	// CacheSize bounds the number of prepared plans kept (default 128).
	CacheSize int
	// CacheBytes additionally bounds the total compiled size of the cached
	// plans (Prepared.CompiledBytes); 0 disables the byte bound.
	CacheBytes int64
	// Workers bounds concurrent plan executions (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds how many admitted requests may wait for a worker
	// before new ones are shed with ErrOverloaded (default 4×Workers).
	QueueDepth int
	// Deadline caps a request's total time in the server — queue wait plus
	// a pre-execution check — when the caller's context carries no earlier
	// deadline (default 30s). Plan execution itself is not preempted; the
	// deadline is admission control, not a watchdog.
	Deadline time.Duration
	// Metrics receives the service counters; a fresh set when nil.
	Metrics *obsv.CounterSet
}

func (c Config) withDefaults() Config {
	if c.CacheSize <= 0 {
		c.CacheSize = 128
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Deadline <= 0 {
		c.Deadline = 30 * time.Second
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewCounterSet()
	}
	return c
}

// Counter names published by the server.
const (
	MetricRequests         = "serve/requests"
	MetricServed           = "serve/served"
	MetricShed             = "serve/shed"
	MetricDeadlineExceeded = "serve/deadline_exceeded"
	MetricErrors           = "serve/errors"
	MetricQueueDepth       = "serve/queue_depth" // gauge
	MetricActiveWorkers    = "serve/active"      // gauge
)

// Server serves multiplications from a prepared-plan cache behind a bounded
// worker pool. All methods are safe for concurrent use.
type Server struct {
	cfg     Config
	cache   *Cache
	metrics *obsv.CounterSet
	workers chan struct{}
	queued  atomic.Int64
	active  atomic.Int64
}

// NewServer builds a server from the config.
func NewServer(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		cache:   NewCacheBytes(cfg.CacheSize, cfg.CacheBytes, cfg.Metrics),
		metrics: cfg.Metrics,
		workers: make(chan struct{}, cfg.Workers),
	}
}

// Cache exposes the server's plan cache (read-mostly introspection).
func (s *Server) Cache() *Cache { return s.cache }

// Metrics returns a snapshot of every service counter.
func (s *Server) Metrics() map[string]int64 { return s.metrics.Snapshot() }

// Config returns the resolved (defaulted) configuration.
func (s *Server) Config() Config { return s.cfg }

// admit applies admission control: it bounds the number of waiters, then
// blocks until a worker slot frees or the deadline passes. On success the
// returned release function must be called when the request finishes.
func (s *Server) admit(ctx context.Context) (release func(), err error) {
	s.metrics.Add(MetricRequests, 1)
	if q := s.queued.Add(1); q > int64(s.cfg.QueueDepth) {
		s.queued.Add(-1)
		s.metrics.Add(MetricShed, 1)
		return nil, ErrOverloaded
	}
	s.metrics.Set(MetricQueueDepth, s.queued.Load())
	if _, has := ctx.Deadline(); !has {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.Deadline)
		defer cancel()
	}
	select {
	case s.workers <- struct{}{}:
		s.queued.Add(-1)
		s.metrics.Set(MetricQueueDepth, s.queued.Load())
		s.metrics.Set(MetricActiveWorkers, s.active.Add(1))
		return func() {
			<-s.workers
			s.metrics.Set(MetricActiveWorkers, s.active.Add(-1))
		}, nil
	case <-ctx.Done():
		s.queued.Add(-1)
		s.metrics.Set(MetricQueueDepth, s.queued.Load())
		s.metrics.Add(MetricDeadlineExceeded, 1)
		return nil, ctx.Err()
	}
}

// prepared resolves (or compiles and caches) the plan for the given
// supports and options, returning the plan, its fingerprint, and whether it
// was a cache hit.
func (s *Server) prepared(ahat, bhat, xhat *matrix.Support, opts core.Options) (*core.Prepared, string, bool, error) {
	// The serving layer always runs the default (compiled) engine; the
	// fingerprint is engine-agnostic, so a cached plan must not inherit an
	// engine override from whichever request compiled it first.
	opts.Engine = ""
	fp, err := core.Fingerprint(ahat, bhat, xhat, opts)
	if err != nil {
		return nil, "", false, err
	}
	prep, hit, err := s.cache.Get(fp, func() (*core.Prepared, error) {
		return core.Prepare(ahat, bhat, xhat, opts)
	})
	if err != nil {
		return nil, fp, false, err
	}
	return prep, fp, hit, nil
}

// MultiplyRequest is one serving-layer multiplication: values A and B, the
// output support of interest, and the plan options. The sparsity structure
// of the request is (A.Support(), B.Support(), Xhat) — two requests share a
// cached plan exactly when those structures, the ring, the algorithm and
// the resolved d coincide.
type MultiplyRequest struct {
	A, B *matrix.Sparse
	Xhat *matrix.Support
	// Options: Ring, D and Algorithm select the plan as in core.Prepare
	// ("auto", "theorem42" or "lemma31"; the execution-engine and
	// verification fields are ignored by the serving layer).
	Options core.Options
	// Trace records a per-request execution profile into the response.
	Trace bool
}

// MultiplyResponse carries the product and how it was served.
type MultiplyResponse struct {
	X           *matrix.Sparse
	Report      *core.Report
	Fingerprint string
	// CacheHit reports whether a ready prepared plan existed on arrival.
	CacheHit bool
	// Profile is the lbmm.trace.v1 export of this execution when Trace was
	// requested.
	Profile *obsv.Export
}

// Multiply serves one multiplication: admission control, plan-cache lookup
// (compiling on a miss), then execution of the prepared plan against the
// request's values.
func (s *Server) Multiply(ctx context.Context, req *MultiplyRequest) (*MultiplyResponse, error) {
	if req.A == nil || req.B == nil || req.Xhat == nil {
		return nil, fmt.Errorf("service: multiply needs A, B and Xhat")
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	prep, fp, hit, err := s.prepared(req.A.Support(), req.B.Support(), req.Xhat, req.Options)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	x, rep, err := prep.MultiplyTraced(req.A, req.B, req.Trace)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	resp := &MultiplyResponse{X: x, Report: rep, Fingerprint: fp, CacheHit: hit}
	if req.Trace && rep.Profile != nil {
		resp.Profile = rep.Profile.Export()
	}
	s.metrics.Add(MetricServed, 1)
	return resp, nil
}

// PrepareRequest warms the cache for an explicit structure (no values).
type PrepareRequest struct {
	Ahat, Bhat, Xhat *matrix.Support
	Options          core.Options
}

// PrepareResponse reports the cached plan's identity and classification.
type PrepareResponse struct {
	Fingerprint string
	CacheHit    bool
	Classes     [3]matrix.Class
	Band        core.Band
	D           int
}

// Prepare compiles (or finds) the plan for a structure so later Multiply
// calls with matching values start hot.
func (s *Server) Prepare(ctx context.Context, req *PrepareRequest) (*PrepareResponse, error) {
	if req.Ahat == nil || req.Bhat == nil || req.Xhat == nil {
		return nil, fmt.Errorf("service: prepare needs Ahat, Bhat and Xhat")
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	prep, fp, hit, err := s.prepared(req.Ahat, req.Bhat, req.Xhat, req.Options)
	if err != nil {
		s.metrics.Add(MetricErrors, 1)
		return nil, err
	}
	s.metrics.Add(MetricServed, 1)
	return &PrepareResponse{
		Fingerprint: fp, CacheHit: hit,
		Classes: prep.Classes, Band: prep.Band, D: prep.D,
	}, nil
}

// ClassifyRequest asks for the Table 2 classification of a structure.
type ClassifyRequest struct {
	Ahat, Bhat, Xhat *matrix.Support
	D                int
}

// ClassifyResponse is the classification with its Table 2 bounds.
type ClassifyResponse struct {
	Classes      [3]matrix.Class
	Band         core.Band
	D            int
	Upper, Lower string
}

// Classify runs the classification engine. It goes through admission
// control like every other request: class predicates (degeneracy orders in
// particular) are support-sized work, not constant-time.
func (s *Server) Classify(ctx context.Context, req *ClassifyRequest) (*ClassifyResponse, error) {
	if req.Ahat == nil || req.Bhat == nil || req.Xhat == nil {
		return nil, fmt.Errorf("service: classify needs Ahat, Bhat and Xhat")
	}
	if req.Ahat.N != req.Bhat.N || req.Ahat.N != req.Xhat.N {
		return nil, fmt.Errorf("service: dimension mismatch %d/%d/%d", req.Ahat.N, req.Bhat.N, req.Xhat.N)
	}
	release, err := s.admit(ctx)
	if err != nil {
		return nil, err
	}
	defer release()
	d := core.ResolveD(req.D, req.Ahat, req.Bhat, req.Xhat)
	var classes [3]matrix.Class
	classes[0] = req.Ahat.Classify(d)
	classes[1] = req.Bhat.Classify(d)
	classes[2] = req.Xhat.Classify(d)
	band := core.Classify(classes[0], classes[1], classes[2])
	up, lo := band.Bounds()
	s.metrics.Add(MetricServed, 1)
	return &ClassifyResponse{Classes: classes, Band: band, D: d, Upper: up, Lower: lo}, nil
}
