package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
	"lbmm/internal/obsv"
	"lbmm/internal/planstore"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// storeServer builds a server whose cache is backed by a plan store over
// dir, with its own metrics set.
func storeServer(t *testing.T, dir string) (*Server, *obsv.CounterSet) {
	t.Helper()
	ms := obsv.NewCounterSet()
	st, err := planstore.Open(dir, 0, ms)
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return NewServer(Config{Workers: 2, Metrics: ms, Store: st}), ms
}

// TestWarmRestartServesWithoutRecompiling is the plan store's core promise:
// a second server process (simulated here by a second Server over the same
// directory with fresh metrics) serves a structure the first one compiled
// with zero compiles and a store hit — and the identical round count, since
// rounds are a function of structure only.
func TestWarmRestartServesWithoutRecompiling(t *testing.T) {
	dir := t.TempDir()
	inst := workload.Mixed(24, 3, 9)
	r := ring.NewGFp(257)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	req := func() *MultiplyRequest {
		return &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: core.Options{Ring: r}}
	}

	s1, ms1 := storeServer(t, dir)
	resp1, err := s1.Multiply(context.Background(), req())
	if err != nil {
		t.Fatalf("cold multiply: %v", err)
	}
	s1.Close() // drains the async write-back
	if got := ms1.Get(MetricCompiles); got != 1 {
		t.Fatalf("cold process: serve/compiles = %d, want 1", got)
	}
	if got := ms1.Get(planstore.MetricWrites); got != 1 {
		t.Fatalf("cold process: store/writes = %d, want 1", got)
	}

	s2, ms2 := storeServer(t, dir)
	defer s2.Close()
	resp2, err := s2.Multiply(context.Background(), req())
	if err != nil {
		t.Fatalf("warm multiply: %v", err)
	}
	if got := ms2.Get(MetricCompiles); got != 0 {
		t.Fatalf("warm process: serve/compiles = %d, want 0", got)
	}
	if got := ms2.Get(planstore.MetricHits); got < 1 {
		t.Fatalf("warm process: store/hits = %d, want >= 1", got)
	}
	if !resp2.CacheHit {
		t.Fatalf("warm response not flagged as cache hit")
	}
	if resp2.Fingerprint != resp1.Fingerprint {
		t.Fatalf("fingerprint changed across restart: %s vs %s", resp2.Fingerprint, resp1.Fingerprint)
	}
	if !matrix.Equal(resp2.X, resp1.X) {
		t.Fatalf("warm product differs from cold product")
	}
	if resp2.Report.Rounds != resp1.Report.Rounds {
		t.Fatalf("warm rounds %d != cold rounds %d", resp2.Report.Rounds, resp1.Report.Rounds)
	}

	// Third request on the warm server: in-memory tier now, still zero
	// compiles, no second store read.
	hits := ms2.Get(planstore.MetricHits)
	if _, err := s2.Multiply(context.Background(), req()); err != nil {
		t.Fatalf("second warm multiply: %v", err)
	}
	if got := ms2.Get(MetricCompiles); got != 0 {
		t.Fatalf("memory-tier hit still compiled: serve/compiles = %d", got)
	}
	if got := ms2.Get(planstore.MetricHits); got != hits {
		t.Fatalf("memory-tier hit read the store again: store/hits %d -> %d", hits, got)
	}
}

// TestWarmRestartQuarantinesCorruptEntry: a damaged store entry must never
// be served — the server quarantines it, recompiles, still answers
// correctly, and repairs the store by writing the fresh plan back.
func TestWarmRestartQuarantinesCorruptEntry(t *testing.T) {
	dir := t.TempDir()
	inst := workload.Mixed(24, 3, 10)
	r := ring.Counting{}
	a := matrix.Random(inst.Ahat, r, 3)
	b := matrix.Random(inst.Bhat, r, 4)
	req := func() *MultiplyRequest {
		return &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: core.Options{Ring: r}}
	}

	s1, _ := storeServer(t, dir)
	resp1, err := s1.Multiply(context.Background(), req())
	if err != nil {
		t.Fatalf("cold multiply: %v", err)
	}
	s1.Close()

	// Truncate the stored entry.
	path := filepath.Join(dir, resp1.Fingerprint[:2], resp1.Fingerprint+".prep")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read entry: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatalf("truncate entry: %v", err)
	}

	s2, ms2 := storeServer(t, dir)
	resp2, err := s2.Multiply(context.Background(), req())
	if err != nil {
		t.Fatalf("multiply over corrupt store: %v", err)
	}
	s2.Close()
	if !matrix.Equal(resp2.X, resp1.X) {
		t.Fatalf("product served over corrupt store differs")
	}
	if got := ms2.Get(MetricCompiles); got != 1 {
		t.Fatalf("corrupt entry not recompiled: serve/compiles = %d, want 1", got)
	}
	if got := ms2.Get(planstore.MetricQuarantined); got != 1 {
		t.Fatalf("store/quarantined = %d, want 1", got)
	}
	// The write-back repaired the store: a third process starts warm again.
	s3, ms3 := storeServer(t, dir)
	defer s3.Close()
	if _, err := s3.Multiply(context.Background(), req()); err != nil {
		t.Fatalf("multiply after repair: %v", err)
	}
	if got := ms3.Get(MetricCompiles); got != 0 {
		t.Fatalf("store not repaired by write-back: serve/compiles = %d, want 0", got)
	}
}
