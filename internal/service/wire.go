package service

import (
	"context"
	"errors"
	"net/http"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
)

// Exported wire vocabulary for other transports (internal/stream speaks the
// same payload schema as POST /v1/multiply, framed differently). The aliases
// keep the JSON shape defined in one place.
type (
	// WireEntry is one value cell [i, j, value].
	WireEntry = wireEntry
	// WirePos is one support position [i, j].
	WirePos = wirePos
	// WireMultiply is the multiply payload: the body of POST /v1/multiply
	// and the "submit" payload of a lbmm.stream.v1 frame.
	WireMultiply = wireMultiplyRequest
	// WireReport is the how-it-was-served block of a multiply response.
	WireReport = wireMultiplyReport
)

// ParseWireMultiply builds the in-memory request from its wire payload,
// validating dimension bounds and indices exactly like the HTTP handler.
// Errors are the caller's fault (map to ErrInvalid semantics).
func ParseWireMultiply(wm *WireMultiply) (*MultiplyRequest, error) {
	ringSR, err := resolveRing(wm.Ring)
	if err != nil {
		return nil, err
	}
	a, err := buildSparse(wm.N, ringSR, wm.A, "a")
	if err != nil {
		return nil, err
	}
	b, err := buildSparse(wm.N, ringSR, wm.B, "b")
	if err != nil {
		return nil, err
	}
	xhat, err := buildSupport(wm.N, wm.Xhat, "xhat")
	if err != nil {
		return nil, err
	}
	return &MultiplyRequest{
		A: a, B: b, Xhat: xhat,
		Options: core.Options{Ring: ringSR, D: wm.D, Algorithm: wm.Algorithm},
		Trace:   wm.Trace,
	}, nil
}

// WireEntries flattens a sparse matrix to wire cells.
func WireEntries(m *matrix.Sparse) []WireEntry { return sparseEntries(m) }

// BuildWireReport assembles a response's report block.
func BuildWireReport(resp *MultiplyResponse) WireReport {
	return multiplyReportWire(resp.Report, resp.Fingerprint, resp.CacheHit, resp.Profile)
}

// ErrStatus maps a serving-layer error to its HTTP status code — the same
// taxonomy writeServeErr applies to the scalar endpoints, exported so other
// transports report identical codes.
func ErrStatus(err error) int {
	switch {
	case errors.Is(err, ErrInvalid):
		return http.StatusBadRequest
	case errors.Is(err, ErrOverloaded):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return statusClientClosedRequest
	default:
		return http.StatusInternalServerError
	}
}
