package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"testing"

	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestRequestFingerprintMatchesServer is the routing invariant the shard
// tier stands on: the fingerprint a router computes from a request body —
// without building matrices or compiling — must equal the fingerprint the
// server keys its cache (and the shared plan store) by. If these ever
// diverge, requests are routed to shards that will never have the plan warm.
func TestRequestFingerprintMatchesServer(t *testing.T) {
	srv := NewServer(Config{CacheSize: 8})
	defer srv.Close()
	h := NewHandler(srv)
	r := ring.Counting{}
	inst := workload.Mixed(20, 3, 11)
	a := matrix.Random(inst.Ahat, r, 1)
	b := matrix.Random(inst.Bhat, r, 2)
	xpos := supportPositions(inst.Xhat)

	encode := func(v any) []byte {
		t.Helper()
		body, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}

	cases := []struct {
		path string
		body []byte
	}{
		{"/v1/multiply", encode(wireMultiplyRequest{
			N: inst.N, Ring: "counting", A: sparseEntries(a), B: sparseEntries(b), Xhat: xpos,
		})},
		{"/v1/multiply/batch", encode(wireMultiplyBatchRequest{
			N: inst.N, Ring: "counting", Xhat: xpos,
			Lanes: []wireBatchLane{
				{A: sparseEntries(a), B: sparseEntries(b)},
				{A: sparseEntries(matrix.Random(inst.Ahat, r, 3)), B: sparseEntries(matrix.Random(inst.Bhat, r, 4))},
			},
		})},
		{"/v1/prepare", encode(wirePrepareRequest{
			N: inst.N, Ring: "counting",
			Ahat: supportPositions(inst.Ahat), Bhat: supportPositions(inst.Bhat), Xhat: xpos,
		})},
	}

	var want string
	for _, tc := range cases {
		routed, err := RequestFingerprint(tc.path, tc.body)
		if err != nil {
			t.Fatalf("RequestFingerprint(%s): %v", tc.path, err)
		}
		var raw json.RawMessage = tc.body
		rec := postJSON(t, h, tc.path, raw)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc.path, rec.Code, rec.Body)
		}
		var resp struct {
			Fingerprint string `json:"fingerprint"`
		}
		if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
			t.Fatalf("%s: %v", tc.path, err)
		}
		if resp.Fingerprint != routed {
			t.Fatalf("%s: server fingerprint %s, router computed %s", tc.path, resp.Fingerprint, routed)
		}
		// All three bodies describe the same structure over the same options,
		// so the router must map them all to the same shard.
		if want == "" {
			want = routed
		} else if routed != want {
			t.Fatalf("%s: fingerprint %s differs from multiply's %s", tc.path, routed, want)
		}
	}

	// Duplicate entries collapse the way Sparse.Set overwrites, so a body
	// with a repeated cell must not change the route.
	dup := wireMultiplyRequest{N: inst.N, Ring: "counting", A: sparseEntries(a), B: sparseEntries(b), Xhat: xpos}
	dup.A = append(dup.A, dup.A[0])
	got, err := RequestFingerprint("/v1/multiply", encode(dup))
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("duplicate entry changed the fingerprint: %s vs %s", got, want)
	}

	// Malformed bodies must error (the router then lets the wire layer 400)
	// rather than route garbage.
	if _, err := RequestFingerprint("/v1/multiply", []byte("{")); err == nil {
		t.Fatal("truncated body fingerprinted")
	}
	if _, err := RequestFingerprint("/v1/multiply/batch", encode(wireMultiplyBatchRequest{N: 8})); err == nil {
		t.Fatal("laneless batch fingerprinted")
	}
	if _, err := RequestFingerprint("/v1/classify", []byte("{}")); err == nil {
		t.Fatal("non-routed path fingerprinted")
	}
	bad := wireMultiplyRequest{N: 4, A: []wireEntry{{9, 0, 1}}}
	if _, err := RequestFingerprint("/v1/multiply", encode(bad)); err == nil {
		t.Fatal("out-of-range index fingerprinted")
	}
}

// TestRequestFingerprintBadBodies is the regression suite for the routing
// seam's failure surface: every malformed, truncated or invalid body must
// come back as a typed ErrBadRequest — never a panic, never a fingerprint
// that would route a damaged request to a shard.
func TestRequestFingerprintBadBodies(t *testing.T) {
	valid := []byte(`{"n":4,"a":[[0,1,1]],"b":[[1,2,1]],"xhat":[[0,2]]}`)
	if _, err := RequestFingerprint("/v1/multiply", valid); err != nil {
		t.Fatalf("control body failed: %v", err)
	}

	cases := []struct {
		name string
		path string
		body []byte
	}{
		{"nil body", "/v1/multiply", nil},
		{"empty body", "/v1/multiply", []byte("")},
		{"not json", "/v1/multiply", []byte("not json at all")},
		{"wrong top-level type", "/v1/multiply", []byte(`[1,2,3]`)},
		{"truncated object", "/v1/multiply", []byte(`{"n":4,"a":[[0,`)},
		{"entry not an array", "/v1/multiply", []byte(`{"n":4,"a":[5],"b":[],"xhat":[]}`)},
		{"fractional index", "/v1/multiply", []byte(`{"n":4,"a":[[0.5,1,1]],"b":[],"xhat":[]}`)},
		{"negative index", "/v1/multiply", []byte(`{"n":4,"a":[[-1,0,1]],"b":[],"xhat":[]}`)},
		{"index out of range", "/v1/multiply", []byte(`{"n":4,"a":[[4,0,1]],"b":[],"xhat":[]}`)},
		{"unknown ring", "/v1/multiply", []byte(`{"n":4,"ring":"octonion","a":[],"b":[],"xhat":[]}`)},
		{"batch truncated", "/v1/multiply/batch", []byte(`{"n":4,"lanes":[{"a":`)},
		{"batch without lanes", "/v1/multiply/batch", []byte(`{"n":4,"xhat":[]}`)},
		{"prepare truncated", "/v1/prepare", []byte(`{"n":4,"ahat"`)},
		{"prepare bad position", "/v1/prepare", []byte(`{"n":4,"ahat":[[7,0]],"bhat":[],"xhat":[]}`)},
		{"unrouted path", "/v1/classify", []byte(`{}`)},
		{"empty path", "", valid},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fp, err := RequestFingerprint(tc.path, tc.body)
			if err == nil {
				t.Fatalf("fingerprinted as %q, want an error", fp)
			}
			if !errors.Is(err, ErrBadRequest) {
				t.Fatalf("error %v is not ErrBadRequest", err)
			}
			if fp != "" {
				t.Fatalf("error case returned a fingerprint %q", fp)
			}
		})
	}
}
