package service

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// TestConfigValidate pins the config-validation contract: negative batch
// delay, batch size and cache byte bound are rejected; valid configs
// (including the zero value) pass.
func TestConfigValidate(t *testing.T) {
	for _, bad := range []Config{
		{BatchDelay: -time.Millisecond},
		{BatchSize: -1},
		{CacheBytes: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v passed validation", bad)
		}
	}
	for _, ok := range []Config{
		{},
		{BatchSize: 16, BatchDelay: time.Millisecond},
		{CacheBytes: 0}, // 0 disables the byte bound, it is not "no space"
	} {
		if err := ok.Validate(); err != nil {
			t.Errorf("config %+v rejected: %v", ok, err)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("NewServer accepted a negative batch delay")
		}
	}()
	NewServer(Config{BatchDelay: -time.Second})
}

// TestServerBatchCoalesce is the tentpole's serving-layer acceptance: k
// concurrent same-structure requests on a batching server coalesce into
// one batched run, every caller gets its own correct product, and the
// batch metrics record one full launch of k lanes.
func TestServerBatchCoalesce(t *testing.T) {
	const k = 4
	srv := NewServer(Config{
		CacheSize:  4,
		BatchSize:  k,
		BatchDelay: 500 * time.Millisecond, // the size trigger should win
	})
	defer srv.Close()
	ctx := context.Background()
	r := ring.Counting{}
	inst := workload.Blocks(32, 4)
	opts := core.Options{Ring: r}

	// Warm the cache so every lane resolves the same prepared plan and the
	// requests differ only in values.
	if _, err := srv.Prepare(ctx, &PrepareRequest{Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat, Options: opts}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := matrix.Random(inst.Ahat, r, int64(10*i+1))
			b := matrix.Random(inst.Bhat, r, int64(10*i+2))
			resp, err := srv.Multiply(ctx, &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: opts})
			if err != nil {
				errs[i] = err
				return
			}
			if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(resp.X, want) {
				errs[i] = errors.New("wrong product")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
	}
	m := srv.Metrics()
	if m[MetricBatchSize+"/count"] != 1 || m[MetricBatchSize+"/sum"] != k {
		t.Errorf("batch size histogram: count=%d sum=%d, want 1 batch of %d lanes",
			m[MetricBatchSize+"/count"], m[MetricBatchSize+"/sum"], k)
	}
	if m[MetricBatchLaunch+"full"] != 1 {
		t.Errorf("launch_full=%d, want 1 (size trigger)", m[MetricBatchLaunch+"full"])
	}
	if m[MetricServed] != k+1 { // k multiplies + 1 prepare
		t.Errorf("served=%d, want %d", m[MetricServed], k+1)
	}
	if m[MetricBatchWaitNs] <= 0 {
		t.Error("coalesce wait counter never moved")
	}
}

// TestServerBatchTimeoutLaunch pins the delay trigger: a lone request on a
// batching server launches as a 1-lane batch after BatchDelay rather than
// waiting forever for lane-mates.
func TestServerBatchTimeoutLaunch(t *testing.T) {
	srv := NewServer(Config{
		CacheSize:  4,
		BatchSize:  64,
		BatchDelay: 2 * time.Millisecond,
	})
	defer srv.Close()
	req, want := faultReq(ring.Counting{}, 5)
	resp, err := srv.Multiply(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(resp.X, want) {
		t.Error("wrong product")
	}
	m := srv.Metrics()
	if m[MetricBatchLaunch+"timeout"] != 1 {
		t.Errorf("launch_timeout=%d, want 1", m[MetricBatchLaunch+"timeout"])
	}
	if m[MetricBatchSize+"/le_1"] != 1 {
		t.Errorf("le_1=%d, want 1 (single-lane batch)", m[MetricBatchSize+"/le_1"])
	}
}

// TestServerBatchFaultWholeBatch: a chaos fault on the compiled engine
// fails (and here, retries then degrades) the whole batch through the
// existing policy, and every lane still receives its correct product from
// the map fallback.
func TestServerBatchFaultWholeBatch(t *testing.T) {
	const k = 3
	srv := NewServer(Config{
		CacheSize:  4,
		BatchSize:  k,
		BatchDelay: 500 * time.Millisecond,
		FaultInjector: func(engine string, attempt int) lbm.Injector {
			if engine == "compiled" {
				return dropAll()
			}
			return nil
		},
	})
	defer srv.Close()
	ctx := context.Background()
	r := ring.MinPlus{}
	inst := workload.Blocks(16, 4)
	opts := core.Options{Ring: r}
	if _, err := srv.Prepare(ctx, &PrepareRequest{Ahat: inst.Ahat, Bhat: inst.Bhat, Xhat: inst.Xhat, Options: opts}); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errs := make([]error, k)
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			a := matrix.Random(inst.Ahat, r, int64(20*i+1))
			b := matrix.Random(inst.Bhat, r, int64(20*i+2))
			resp, err := srv.Multiply(ctx, &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: opts})
			if err != nil {
				errs[i] = err
				return
			}
			if want := matrix.MulReference(a, b, inst.Xhat); !matrix.Equal(resp.X, want) {
				errs[i] = errors.New("wrong product")
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("lane %d: %v", i, err)
		}
	}
	m := srv.Metrics()
	// One batch, default budget 1: two compiled attempts fault, one retry,
	// one fallback — for the whole batch, not per lane.
	if m[MetricFaults] != 2 || m[MetricRetries] != 1 || m[MetricFallbacks] != 1 {
		t.Errorf("faults=%d retries=%d fallbacks=%d, want 2/1/1 for the whole batch",
			m[MetricFaults], m[MetricRetries], m[MetricFallbacks])
	}
}

// TestServerMultiplyBatchExplicit drives the explicit batched API: lanes
// sharing one structure multiply correctly in one run (Report.Lanes = k,
// one round sequence); a lane with a different structure is rejected with
// the lane named.
func TestServerMultiplyBatchExplicit(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4})
	defer srv.Close()
	ctx := context.Background()
	r := ring.Real{}
	inst := workload.Blocks(32, 4)
	opts := core.Options{Ring: r}

	const k = 3
	lanes := make([]BatchLane, k)
	want := make([]*matrix.Sparse, k)
	for i := range lanes {
		a := matrix.Random(inst.Ahat, r, int64(30*i+1))
		b := matrix.Random(inst.Bhat, r, int64(30*i+2))
		lanes[i] = BatchLane{A: a, B: b}
		want[i] = matrix.MulReference(a, b, inst.Xhat)
	}
	resp, err := srv.MultiplyBatch(ctx, &MultiplyBatchRequest{Lanes: lanes, Xhat: inst.Xhat, Options: opts, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Report.Lanes != k {
		t.Errorf("Report.Lanes = %d, want %d", resp.Report.Lanes, k)
	}
	if resp.Profile == nil {
		t.Error("trace requested but no profile returned")
	}
	for i := range want {
		if !matrix.Equal(resp.X[i], want[i]) {
			t.Errorf("lane %d: wrong product", i)
		}
	}

	// A lane whose structure differs from lane 0 must be rejected as the
	// caller's error (400), naming the lane.
	other := workload.Blocks(16, 4)
	bad := append([]BatchLane{}, lanes...)
	bad[1] = BatchLane{A: matrix.Random(other.Ahat, r, 1), B: matrix.Random(other.Bhat, r, 2)}
	_, err = srv.MultiplyBatch(ctx, &MultiplyBatchRequest{Lanes: bad, Xhat: inst.Xhat, Options: opts})
	if !errors.Is(err, ErrInvalid) {
		t.Fatalf("mixed-structure batch: err = %v, want ErrInvalid", err)
	}
	if !strings.Contains(err.Error(), "lane 1") {
		t.Errorf("error does not name the offending lane: %v", err)
	}
}

// TestServerBatchDrain pins Close's contract: a request parked when the
// server closes is flushed (it completes, it is not lost), and requests
// after Close are shed.
func TestServerBatchDrain(t *testing.T) {
	srv := NewServer(Config{
		CacheSize:  4,
		BatchSize:  64,
		BatchDelay: time.Hour, // only Close can launch it
	})
	req, want := faultReq(ring.Counting{}, 9)
	done := make(chan error, 1)
	go func() {
		resp, err := srv.Multiply(context.Background(), req)
		if err == nil && !matrix.Equal(resp.X, want) {
			err = errors.New("wrong product")
		}
		done <- err
	}()
	// Wait until the request is parked in the coalescer, then drain.
	for i := 0; srv.coal.Pending() == 0 && i < 1000; i++ {
		time.Sleep(time.Millisecond)
	}
	srv.Close()
	if err := <-done; err != nil {
		t.Fatalf("flushed request: %v", err)
	}
	if m := srv.Metrics(); m[MetricBatchLaunch+"flush"] != 1 {
		t.Errorf("launch_flush=%d, want 1", m[MetricBatchLaunch+"flush"])
	}
	req2, _ := faultReq(ring.Counting{}, 11)
	if _, err := srv.Multiply(context.Background(), req2); !errors.Is(err, ErrOverloaded) {
		t.Errorf("request after Close: err = %v, want ErrOverloaded", err)
	}
}

// TestServerCloseFlushesOpenWindowExactlyOnce parks several same-structure
// requests in an open coalesce window (the delay is an hour; only Close can
// launch them) and closes the server mid-window. Every parked caller must
// get its own correct product — no lane dropped — and the flush must launch
// exactly one batch: launch_flush is 1 and every lane rode in it.
func TestServerCloseFlushesOpenWindowExactlyOnce(t *testing.T) {
	const k = 5
	srv := NewServer(Config{
		CacheSize:  4,
		Workers:    2,
		BatchSize:  64,
		BatchDelay: time.Hour,
	})
	type outcome struct {
		seed int64
		err  error
	}
	done := make(chan outcome, k)
	for i := 0; i < k; i++ {
		go func(seed int64) {
			req, want := faultReq(ring.Counting{}, seed)
			resp, err := srv.Multiply(context.Background(), req)
			if err == nil && !matrix.Equal(resp.X, want) {
				err = errors.New("wrong product")
			}
			done <- outcome{seed, err}
		}(int64(20 + 2*i))
	}
	for i := 0; srv.coal.Pending() < k && i < 2000; i++ {
		time.Sleep(time.Millisecond)
	}
	if got := srv.coal.Pending(); got != k {
		t.Fatalf("parked %d lanes, want %d", got, k)
	}
	srv.Close()
	for i := 0; i < k; i++ {
		if out := <-done; out.err != nil {
			t.Fatalf("flushed lane (seed %d): %v", out.seed, out.err)
		}
	}
	m := srv.Metrics()
	if m[MetricBatchLaunch+"flush"] != 1 {
		t.Errorf("launch_flush=%d, want exactly 1", m[MetricBatchLaunch+"flush"])
	}
	if m[MetricBatchLaunch+"full"] != 0 || m[MetricBatchLaunch+"timeout"] != 0 {
		t.Errorf("non-flush launches during drain: %v", m)
	}
	if m[MetricServed] != k {
		t.Errorf("served=%d, want %d", m[MetricServed], k)
	}
	if m[MetricShed] != 0 {
		t.Errorf("shed=%d during drain, want 0", m[MetricShed])
	}
}

// TestServerCloseHammer races a stream of batching multiplies against
// Server.Close across several rounds, under the race detector. The contract:
// every call completes — with a correct product or ErrOverloaded (closed ==
// shedding to the caller) — and none hangs or panics in the closing window.
func TestServerCloseHammer(t *testing.T) {
	const goroutines, perG = 8, 6
	for round := 0; round < 4; round++ {
		srv := NewServer(Config{
			CacheSize:  4,
			BatchSize:  4,
			BatchDelay: time.Millisecond,
		})
		var wg sync.WaitGroup
		var served, shed int64
		var mu sync.Mutex
		start := make(chan struct{})
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(seed int64) {
				defer wg.Done()
				req, want := faultReq(ring.Counting{}, seed)
				<-start
				for j := 0; j < perG; j++ {
					resp, err := srv.Multiply(context.Background(), req)
					switch {
					case err == nil:
						if !matrix.Equal(resp.X, want) {
							t.Errorf("round %d: wrong product", round)
						}
						mu.Lock()
						served++
						mu.Unlock()
					case errors.Is(err, ErrOverloaded):
						mu.Lock()
						shed++
						mu.Unlock()
					default:
						t.Errorf("round %d: unexpected error %v", round, err)
					}
				}
			}(int64(40 + 2*g))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			time.Sleep(time.Duration(round) * 500 * time.Microsecond)
			srv.Close()
		}()
		close(start)
		wg.Wait()
		if served+shed != goroutines*perG {
			t.Fatalf("round %d: %d served + %d shed != %d calls", round, served, shed, goroutines*perG)
		}
	}
}
