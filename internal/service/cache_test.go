package service

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"

	"lbmm/internal/core"
	"lbmm/internal/obsv"
)

// compileStub returns a distinct (empty) Prepared so tests can tell plans
// apart by pointer without paying real compilations.
func compileStub() (*core.Prepared, error) { return &core.Prepared{}, nil }

func TestCacheHitMissCounting(t *testing.T) {
	m := obsv.NewCounterSet()
	c := NewCache(4, m)

	p1, hit, err := c.Get("a", compileStub)
	if err != nil || hit {
		t.Fatalf("first Get: hit=%v err=%v, want miss", hit, err)
	}
	p2, hit, err := c.Get("a", compileStub)
	if err != nil || !hit {
		t.Fatalf("second Get: hit=%v err=%v, want hit", hit, err)
	}
	if p1 != p2 {
		t.Error("hit returned a different plan than the one compiled")
	}
	snap := m.Snapshot()
	if snap[MetricCacheHits] != 1 || snap[MetricCacheMisses] != 1 {
		t.Errorf("counters = %v, want 1 hit / 1 miss", snap)
	}
	if snap[MetricCacheSize] != 1 {
		t.Errorf("size gauge = %d, want 1", snap[MetricCacheSize])
	}
}

// TestCacheLRUEviction fills a capacity-3 cache, touches the oldest entry to
// refresh it, inserts one more, and checks that the least recently *used*
// (not least recently inserted) key fell out.
func TestCacheLRUEviction(t *testing.T) {
	m := obsv.NewCounterSet()
	c := NewCache(3, m)
	for _, k := range []string{"a", "b", "c"} {
		c.Get(k, compileStub)
	}
	c.Get("a", compileStub) // hit: refreshes a; LRU order now a,c,b
	c.Get("d", compileStub) // evicts b

	if c.Contains("b") {
		t.Error("b should have been evicted (least recently used)")
	}
	want := []string{"d", "a", "c"}
	got := c.Keys()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("Keys() = %v, want %v", got, want)
	}
	snap := m.Snapshot()
	if snap[MetricCacheEvictions] != 1 {
		t.Errorf("evictions = %d, want 1", snap[MetricCacheEvictions])
	}
	if snap[MetricCacheSize] != 3 || c.Len() != 3 {
		t.Errorf("size = %d/%d, want 3", snap[MetricCacheSize], c.Len())
	}
}

// TestCacheSingleflight launches N concurrent misses on one fingerprint and
// requires exactly one compilation; everyone gets the same plan, and the
// joiners are counted as joins, not extra misses.
func TestCacheSingleflight(t *testing.T) {
	const n = 16
	m := obsv.NewCounterSet()
	c := NewCache(4, m)

	var compiles atomic.Int64
	gate := make(chan struct{})
	compile := func() (*core.Prepared, error) {
		compiles.Add(1)
		<-gate // hold every concurrent Get in the inflight path
		return &core.Prepared{}, nil
	}

	var wg sync.WaitGroup
	plans := make([]*core.Prepared, n)
	started := make(chan struct{}, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			started <- struct{}{}
			p, hit, err := c.Get("same", compile)
			if err != nil || hit {
				t.Errorf("goroutine %d: hit=%v err=%v, want inflight miss", i, hit, err)
			}
			plans[i] = p
		}(i)
	}
	for i := 0; i < n; i++ {
		<-started
	}
	close(gate)
	wg.Wait()

	if got := compiles.Load(); got != 1 {
		t.Fatalf("%d compilations for %d concurrent misses, want 1", got, n)
	}
	for i := 1; i < n; i++ {
		if plans[i] != plans[0] {
			t.Fatalf("goroutine %d got a different plan", i)
		}
	}
	snap := m.Snapshot()
	if snap[MetricCacheMisses] != 1 {
		t.Errorf("misses = %d, want 1", snap[MetricCacheMisses])
	}
	if snap[MetricCacheJoins] != n-1 {
		t.Errorf("joins = %d, want %d", snap[MetricCacheJoins], n-1)
	}
	if snap[MetricCacheInflight] != 0 {
		t.Errorf("inflight gauge = %d after settle, want 0", snap[MetricCacheInflight])
	}
}

// TestCacheCompileError checks an error reaches every waiter and nothing is
// cached, so the next Get retries the compile.
func TestCacheCompileError(t *testing.T) {
	c := NewCache(4, nil)
	boom := errors.New("boom")
	fail := func() (*core.Prepared, error) { return nil, boom }

	if _, _, err := c.Get("k", fail); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if c.Contains("k") || c.Len() != 0 {
		t.Error("failed compile was cached")
	}
	if _, hit, err := c.Get("k", compileStub); err != nil || hit {
		t.Errorf("retry after error: hit=%v err=%v, want fresh miss", hit, err)
	}
}
