package service

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbmm/internal/core"
	"lbmm/internal/obsv"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// realPlan compiles an actual prepared plan (nonzero CompiledBytes) for a
// blocks structure of the given size — the byte-budget tests need entries
// with real, distinct costs, which stubs cannot fake.
func realPlan(t *testing.T, n int) (string, *core.Prepared) {
	t.Helper()
	inst := workload.Blocks(n, 4)
	opts := core.Options{Ring: ring.Counting{}}
	fp, err := core.Fingerprint(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		t.Fatal(err)
	}
	prep, err := core.Prepare(inst.Ahat, inst.Bhat, inst.Xhat, opts)
	if err != nil {
		t.Fatal(err)
	}
	if prep.CompiledBytes() <= 0 {
		t.Fatalf("plan for n=%d has no compiled size", n)
	}
	return fp, prep
}

// TestCacheByteBudgetEvictionOrder drives mixed hit/miss traffic through a
// byte-bounded cache: the budget admits two plans; after a hit refreshes
// the older one, inserting a third must evict the least recently *used*
// entry (not the oldest inserted), and the byte gauge must track exactly.
func TestCacheByteBudgetEvictionOrder(t *testing.T) {
	fp1, p1 := realPlan(t, 16)
	fp2, p2 := realPlan(t, 24)
	fp3, p3 := realPlan(t, 32)

	m := obsv.NewCounterSet()
	// Budget fits p1+p2 but not a third plan on top.
	budget := p1.CompiledBytes() + p2.CompiledBytes()
	c := NewCacheBytes(16, budget, m)

	get := func(fp string, p *core.Prepared) {
		t.Helper()
		if _, _, err := c.Get(fp, func() (*core.Prepared, error) { return p, nil }); err != nil {
			t.Fatal(err)
		}
	}
	get(fp1, p1) // miss
	get(fp2, p2) // miss: bytes = budget exactly, nothing evicted
	if c.Len() != 2 || c.Bytes() != budget {
		t.Fatalf("after two inserts: len=%d bytes=%d, want 2/%d", c.Len(), c.Bytes(), budget)
	}
	get(fp1, p1) // hit: refreshes fp1, so fp2 is now least recently used
	get(fp3, p3) // miss: over budget, evicts fp2 (and fp1 too if still over)

	if c.Contains(fp2) {
		t.Error("fp2 survived eviction despite being least recently used")
	}
	if !c.Contains(fp3) {
		t.Error("the newly inserted plan was evicted")
	}
	if got := c.Bytes(); got > budget && c.Len() > 1 {
		t.Errorf("bytes=%d over budget %d with %d entries", got, budget, c.Len())
	}
	snap := m.Snapshot()
	if snap[MetricCacheEvictions] < 1 {
		t.Errorf("evictions=%d, want >= 1", snap[MetricCacheEvictions])
	}
	if snap[MetricCacheBytes] != c.Bytes() {
		t.Errorf("byte gauge %d out of sync with cache %d", snap[MetricCacheBytes], c.Bytes())
	}
}

// TestCacheByteBudgetOversizedEntry pins the documented corner: a single
// plan larger than the whole budget is still cached (an empty cache serves
// nothing), and admitting a second entry brings the total back under
// budget by evicting down to one.
func TestCacheByteBudgetOversizedEntry(t *testing.T) {
	fp1, p1 := realPlan(t, 32)
	fp2, p2 := realPlan(t, 16)
	c := NewCacheBytes(16, p1.CompiledBytes()/2, nil)
	c.Get(fp1, func() (*core.Prepared, error) { return p1, nil })
	if !c.Contains(fp1) || c.Len() != 1 {
		t.Fatal("oversized single entry was not cached")
	}
	c.Get(fp2, func() (*core.Prepared, error) { return p2, nil })
	if c.Len() != 1 {
		t.Errorf("len=%d after second insert over budget, want 1", c.Len())
	}
	if c.Contains(fp1) {
		t.Error("LRU entry survived while over budget")
	}
}

// TestCacheBytesZeroDisablesBudget verifies the `-cache-mb 0` path: with
// maxBytes 0 the byte bound is off, so plans accumulate to the count bound
// no matter their size — the zero value must mean "unbounded bytes", not
// "no space".
func TestCacheBytesZeroDisablesBudget(t *testing.T) {
	fp1, p1 := realPlan(t, 16)
	fp2, p2 := realPlan(t, 24)
	fp3, p3 := realPlan(t, 32)
	m := obsv.NewCounterSet()
	c := NewCacheBytes(16, 0, m)
	for _, e := range []struct {
		fp string
		p  *core.Prepared
	}{{fp1, p1}, {fp2, p2}, {fp3, p3}} {
		e := e
		c.Get(e.fp, func() (*core.Prepared, error) { return e.p, nil })
	}
	if c.Len() != 3 {
		t.Fatalf("len=%d, want 3 (byte bound disabled)", c.Len())
	}
	if m.Snapshot()[MetricCacheEvictions] != 0 {
		t.Error("byte bound evicted entries despite being disabled")
	}
	if want := p1.CompiledBytes() + p2.CompiledBytes() + p3.CompiledBytes(); c.Bytes() != want {
		t.Errorf("bytes=%d, want %d (accounting still runs when the bound is off)", c.Bytes(), want)
	}
}

// TestCacheByteBudgetSingleflight: k concurrent requests missing on the
// same fingerprint in a byte-bounded cache must collapse into exactly one
// compilation, one cached entry, and one entry's worth of bytes.
func TestCacheByteBudgetSingleflight(t *testing.T) {
	fp, p := realPlan(t, 16)
	c := NewCacheBytes(16, 4*p.CompiledBytes(), obsv.NewCounterSet())

	const k = 8
	var compiles atomic.Int64
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got, _, err := c.Get(fp, func() (*core.Prepared, error) {
				compiles.Add(1)
				<-gate // hold the compile so every other request joins it
				return p, nil
			})
			if err != nil || got != p {
				t.Errorf("Get: prep=%p err=%v", got, err)
			}
		}()
	}
	// Let the requests pile up on the flight before releasing the compile.
	for compiles.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if n := compiles.Load(); n != 1 {
		t.Errorf("%d compilations for %d concurrent misses, want 1", n, k)
	}
	if c.Len() != 1 || c.Bytes() != p.CompiledBytes() {
		t.Errorf("len=%d bytes=%d, want 1 entry costing %d", c.Len(), c.Bytes(), p.CompiledBytes())
	}
}
