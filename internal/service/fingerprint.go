package service

import (
	"encoding/json"
	"errors"
	"fmt"

	"lbmm/internal/core"
	"lbmm/internal/matrix"
)

// ErrBadRequest marks a fingerprinting failure caused by the request
// itself — malformed or truncated JSON, invalid entries, a missing lane, an
// unknown ring, or a path without a fingerprint schema. Routers test for it
// with errors.Is and fall through to local handling, where the HTTP layer
// produces its canonical 400; a fingerprint is never computed from a body
// that failed to validate, so a damaged request cannot route to the wrong
// shard.
var ErrBadRequest = errors.New("service: unfingerprintable request")

// RequestFingerprint computes the plan fingerprint a server would use for
// the body of a serving-API request, without building value matrices or
// compiling anything. This is what the shard tier routes by: a front-end
// only needs the sparsity structure (entry positions), the ring, the
// algorithm and d to know which shard owns the plan.
//
// path selects the wire schema: "/v1/multiply", "/v1/multiply/batch"
// (fingerprinted by lane 0 — the handler enforces that all lanes share it)
// or "/v1/prepare". Bodies that fail to decode or validate return an error;
// routers should fall through to local handling, where the HTTP layer
// produces its usual 400.
func RequestFingerprint(path string, body []byte) (fp string, err error) {
	// Every failure is the request's fault: tag the whole surface so a
	// router's errors.Is check can't miss a path.
	defer func() {
		if err != nil && !errors.Is(err, ErrBadRequest) {
			err = fmt.Errorf("%w: %w", ErrBadRequest, err)
		}
	}()
	switch path {
	case "/v1/multiply":
		var req wireMultiplyRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		return structureFingerprint(req.N, req.Ring, req.Algorithm, req.D, req.A, req.B, req.Xhat)
	case "/v1/multiply/batch":
		var req wireMultiplyBatchRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		if len(req.Lanes) == 0 {
			return "", fmt.Errorf("batch multiply needs lanes")
		}
		return structureFingerprint(req.N, req.Ring, req.Algorithm, req.D, req.Lanes[0].A, req.Lanes[0].B, req.Xhat)
	case "/v1/prepare":
		var req wirePrepareRequest
		if err := json.Unmarshal(body, &req); err != nil {
			return "", fmt.Errorf("bad request body: %w", err)
		}
		supports, err := buildSupports(req.N, req.Ahat, req.Bhat, req.Xhat)
		if err != nil {
			return "", err
		}
		return optionsFingerprint(supports[0], supports[1], supports[2], req.Ring, req.Algorithm, req.D)
	}
	return "", fmt.Errorf("no fingerprint for path %q", path)
}

// structureFingerprint fingerprints a value-carrying request from the
// positions of its entries: the structure is (A's positions, B's positions,
// Xhat), exactly what (*Sparse).Support() of the built matrices would hold.
func structureFingerprint(n int, ringName, alg string, d int, a, b []wireEntry, xhat []wirePos) (string, error) {
	ahat, err := supportOfEntries(n, a, "a")
	if err != nil {
		return "", err
	}
	bhat, err := supportOfEntries(n, b, "b")
	if err != nil {
		return "", err
	}
	xs, err := buildSupport(n, xhat, "xhat")
	if err != nil {
		return "", err
	}
	return optionsFingerprint(ahat, bhat, xs, ringName, alg, d)
}

// supportOfEntries builds the support of a wire value list (positions only,
// duplicates collapsed — matching Sparse.Set overwrite semantics).
func supportOfEntries(n int, entries []wireEntry, what string) (*matrix.Support, error) {
	if err := checkN(n); err != nil {
		return nil, err
	}
	pos := make([][2]int, 0, len(entries))
	for _, e := range entries {
		i, j := int(e[0]), int(e[1])
		if float64(i) != e[0] || float64(j) != e[1] || i < 0 || i >= n || j < 0 || j >= n {
			return nil, fmt.Errorf("%s: entry (%g,%g) is not a valid index pair for n=%d", what, e[0], e[1], n)
		}
		pos = append(pos, [2]int{i, j})
	}
	return matrix.NewSupport(n, pos), nil
}

// optionsFingerprint resolves the wire options the way Server.prepared does
// (engine cleared: the fingerprint is engine-agnostic) and hashes.
func optionsFingerprint(ahat, bhat, xhat *matrix.Support, ringName, alg string, d int) (string, error) {
	r, err := resolveRing(ringName)
	if err != nil {
		return "", err
	}
	return core.Fingerprint(ahat, bhat, xhat, core.Options{Ring: r, D: d, Algorithm: alg})
}
