package service

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"testing"

	"lbmm/internal/chaos"
	"lbmm/internal/core"
	"lbmm/internal/lbm"
	"lbmm/internal/matrix"
	"lbmm/internal/ring"
	"lbmm/internal/workload"
)

// dropAll is an injector that drops the first real message it sees —
// guaranteed to fault any plan with network traffic.
func dropAll() lbm.Injector {
	return chaos.FaultPlan{Rates: chaos.Rates{Drop: 1}}.MustInjector()
}

func faultReq(r ring.Semiring, seed int64) (*MultiplyRequest, *matrix.Sparse) {
	inst := workload.Blocks(16, 4)
	a := matrix.Random(inst.Ahat, r, seed)
	b := matrix.Random(inst.Bhat, r, seed+1)
	want := matrix.MulReference(a, b, inst.Xhat)
	return &MultiplyRequest{A: a, B: b, Xhat: inst.Xhat, Options: core.Options{Ring: r}}, want
}

// TestServerFaultRetry: a fault on the first compiled attempt is retried
// within the budget and the retry serves the correct product — no fallback.
func TestServerFaultRetry(t *testing.T) {
	srv := NewServer(Config{
		CacheSize: 4,
		FaultInjector: func(engine string, attempt int) lbm.Injector {
			if engine == "compiled" && attempt == 0 {
				return dropAll()
			}
			return nil
		},
	})
	req, want := faultReq(ring.Counting{}, 1)
	resp, err := srv.Multiply(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(resp.X, want) {
		t.Error("retried request served a wrong product")
	}
	m := srv.Metrics()
	if m[MetricFaults] != 1 || m[MetricRetries] != 1 || m[MetricFallbacks] != 0 {
		t.Errorf("faults=%d retries=%d fallbacks=%d, want 1/1/0",
			m[MetricFaults], m[MetricRetries], m[MetricFallbacks])
	}
	if m[MetricServed] != 1 || m[MetricErrors] != 0 {
		t.Errorf("served=%d errors=%d, want 1/0", m[MetricServed], m[MetricErrors])
	}
}

// TestServerFaultFallback is the graceful-degradation acceptance check: when
// the compiled engine faults on every attempt, the request is re-served on
// the map engine, the product is still correct, and serve/fallbacks counts
// the degradation.
func TestServerFaultFallback(t *testing.T) {
	srv := NewServer(Config{
		CacheSize: 4,
		FaultInjector: func(engine string, attempt int) lbm.Injector {
			if engine == "compiled" {
				return dropAll()
			}
			return nil
		},
	})
	req, want := faultReq(ring.MinPlus{}, 7)
	resp, err := srv.Multiply(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !matrix.Equal(resp.X, want) {
		t.Error("fallback served a wrong product")
	}
	m := srv.Metrics()
	// Default budget 1: two compiled attempts fault, one retry, one fallback.
	if m[MetricFaults] != 2 || m[MetricRetries] != 1 || m[MetricFallbacks] != 1 {
		t.Errorf("faults=%d retries=%d fallbacks=%d, want 2/1/1",
			m[MetricFaults], m[MetricRetries], m[MetricFallbacks])
	}
	if m[MetricServed] != 1 || m[MetricErrors] != 0 {
		t.Errorf("served=%d errors=%d, want 1/0", m[MetricServed], m[MetricErrors])
	}
}

// TestServerFaultExhausted: when even the map fallback faults, the caller
// gets the typed lbm.ErrFault with its provenance, counted as an error.
func TestServerFaultExhausted(t *testing.T) {
	srv := NewServer(Config{
		CacheSize:     4,
		FaultInjector: func(string, int) lbm.Injector { return dropAll() },
	})
	req, _ := faultReq(ring.Counting{}, 3)
	_, err := srv.Multiply(context.Background(), req)
	f, ok := lbm.AsFault(err)
	if !ok {
		t.Fatalf("err = %v, want a typed lbm.ErrFault", err)
	}
	if f.Kind != lbm.FaultDrop || f.Round < 0 || f.Node < 0 {
		t.Errorf("fault lost provenance: %+v", f)
	}
	m := srv.Metrics()
	if m[MetricFallbacks] != 1 || m[MetricErrors] != 1 || m[MetricServed] != 0 {
		t.Errorf("fallbacks=%d errors=%d served=%d, want 1/1/0",
			m[MetricFallbacks], m[MetricErrors], m[MetricServed])
	}
	// serve/faults counts every faulted attempt: 2 compiled + 1 map.
	if m[MetricFaults] != 3 {
		t.Errorf("faults=%d, want 3", m[MetricFaults])
	}
}

// TestServerInvalidRequests: malformed requests fail upfront with ErrInvalid
// — before admission, with nothing admitted or cached — exactly as Classify
// always did.
func TestServerInvalidRequests(t *testing.T) {
	srv := NewServer(Config{CacheSize: 4})
	ctx := context.Background()
	r := ring.Counting{}
	i16 := workload.Blocks(16, 4)
	i32 := workload.Blocks(32, 4)
	a16 := matrix.Random(i16.Ahat, r, 1)
	b16 := matrix.Random(i16.Bhat, r, 2)
	b32 := matrix.Random(i32.Bhat, r, 2)

	cases := []struct {
		name string
		err  func() error
	}{
		{"multiply nil values", func() error {
			_, err := srv.Multiply(ctx, &MultiplyRequest{A: a16, Xhat: i16.Xhat})
			return err
		}},
		{"multiply dim mismatch", func() error {
			_, err := srv.Multiply(ctx, &MultiplyRequest{A: a16, B: b32, Xhat: i16.Xhat})
			return err
		}},
		{"multiply xhat mismatch", func() error {
			_, err := srv.Multiply(ctx, &MultiplyRequest{A: a16, B: b16, Xhat: i32.Xhat})
			return err
		}},
		{"prepare dim mismatch", func() error {
			_, err := srv.Prepare(ctx, &PrepareRequest{Ahat: i16.Ahat, Bhat: i32.Bhat, Xhat: i16.Xhat})
			return err
		}},
		{"classify dim mismatch", func() error {
			_, err := srv.Classify(ctx, &ClassifyRequest{Ahat: i16.Ahat, Bhat: i32.Bhat, Xhat: i16.Xhat})
			return err
		}},
	}
	for _, c := range cases {
		if err := c.err(); !errors.Is(err, ErrInvalid) {
			t.Errorf("%s: err = %v, want ErrInvalid", c.name, err)
		}
	}
	m := srv.Metrics()
	if m[MetricRequests] != 0 || m[MetricErrors] != 0 {
		t.Errorf("invalid requests touched admission: requests=%d errors=%d",
			m[MetricRequests], m[MetricErrors])
	}
}

// TestWriteServeErrTaxonomy pins the HTTP status for every class in the
// error taxonomy (docs/SERVICE.md).
func TestWriteServeErrTaxonomy(t *testing.T) {
	fault := &lbm.ErrFault{Kind: lbm.FaultDrop, Round: 2, Node: 3, From: 1, To: 3}
	cases := []struct {
		err  error
		want int
	}{
		{errors.New("wrap: " + ErrInvalid.Error()), http.StatusInternalServerError},
		{ErrInvalid, http.StatusBadRequest},
		{errors.Join(ErrInvalid, errors.New("detail")), http.StatusBadRequest},
		{ErrOverloaded, http.StatusServiceUnavailable},
		{context.DeadlineExceeded, http.StatusGatewayTimeout},
		{context.Canceled, statusClientClosedRequest},
		{fault, http.StatusInternalServerError},
		{errors.New("boom"), http.StatusInternalServerError},
	}
	for _, c := range cases {
		rec := httptest.NewRecorder()
		writeServeErr(rec, c.err)
		if rec.Code != c.want {
			t.Errorf("writeServeErr(%v) = %d, want %d", c.err, rec.Code, c.want)
		}
	}
}
